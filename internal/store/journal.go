package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"
)

// Record is one journal entry: a job submission or a terminal result.
// Submissions carry the raw spec so a restart can re-expand and resume
// the job; terminal records carry the status (and, for completed jobs,
// the raw result) so a restart can serve finished jobs without
// recomputing anything. A submission with no matching terminal record
// is an interrupted job — the resume signal.
type Record struct {
	// Op is the record kind: OpSubmit or OpFinish.
	Op string `json:"op"`
	// Kind is the job family ("sweep" or "advise"), ID its job id.
	Kind string `json:"kind"`
	ID   string `json:"id"`
	Name string `json:"name,omitempty"`
	// Time is when the record was appended (submission or finish time).
	Time time.Time `json:"time"`
	// Total is the job's point count (submissions).
	Total int `json:"total,omitempty"`
	// Spec is the verbatim submitted spec or query JSON (submissions).
	Spec json.RawMessage `json:"spec,omitempty"`
	// Status is the terminal status (finishes); Error the failure
	// message of a failed job.
	Status string `json:"status,omitempty"`
	Error  string `json:"error,omitempty"`
	// Result is the terminal result JSON (finishes of completed jobs).
	Result json.RawMessage `json:"result,omitempty"`
}

// Journal record ops.
const (
	OpSubmit = "submit"
	OpFinish = "finish"
)

// Journal is an append-only record log with per-record checksum
// framing: one record per line, "crc32(payload) payload\n". A process
// killed mid-append can only ever leave a torn final line, which the
// next open detects (bad checksum or missing newline), cleanly
// truncates away, and never surfaces as a phantom record. Appends are
// fsynced: once Append returns, the record survives a crash.
type Journal struct {
	mu   sync.Mutex
	path string
	f    *os.File
	recs []Record
	// skipped counts bytes of torn trailing data discarded at open.
	skipped int64
}

// OpenJournal opens (creating if needed) the journal at path, recovers
// every intact record, and truncates any torn tail so subsequent
// appends extend a clean prefix.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening journal: %w", err)
	}
	j := &Journal{path: path, f: f}
	good, err := j.recover()
	if err != nil {
		f.Close()
		return nil, err
	}
	// Drop the torn tail (if any) and position appends after the last
	// intact record.
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: truncating journal tail: %w", err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: seeking journal: %w", err)
	}
	return j, nil
}

// recover scans the journal from the start, parsing intact records and
// stopping at the first torn or corrupt line. It returns the byte
// offset of the end of the intact prefix.
func (j *Journal) recover() (int64, error) {
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return 0, fmt.Errorf("store: reading journal: %w", err)
	}
	size, err := j.f.Seek(0, io.SeekEnd)
	if err != nil {
		return 0, fmt.Errorf("store: reading journal: %w", err)
	}
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return 0, fmt.Errorf("store: reading journal: %w", err)
	}
	var good int64
	sc := bufio.NewScanner(j.f)
	sc.Buffer(make([]byte, 64<<10), maxEntryBytes)
	for sc.Scan() {
		line := sc.Bytes()
		lineEnd := good + int64(len(line)) + 1 // +1 for the newline
		// A final line without its newline is torn even if it parses:
		// the append was cut mid-write.
		if lineEnd > size {
			break
		}
		rec, ok := parseRecord(line)
		if !ok {
			break
		}
		j.recs = append(j.recs, rec)
		good = lineEnd
		noteJournal(journalOpRecovered)
	}
	// Scanner errors (e.g. an oversized torn line) end recovery at the
	// last good offset, same as a checksum mismatch.
	j.skipped = size - good
	if j.skipped > 0 {
		noteJournal(journalOpSkipped)
	}
	return good, nil
}

// parseRecord decodes one "crc payload" line, rejecting checksum
// mismatches and malformed payloads.
func parseRecord(line []byte) (Record, bool) {
	var rec Record
	sep := bytes.IndexByte(line, ' ')
	if sep != 8 {
		return rec, false
	}
	var want uint32
	if _, err := fmt.Sscanf(string(line[:sep]), "%08x", &want); err != nil {
		return rec, false
	}
	payload := line[sep+1:]
	if crc32.ChecksumIEEE(payload) != want {
		return rec, false
	}
	// Unknown fields are tolerated: the checksum already guarantees the
	// payload is exactly what some (possibly newer) writer appended.
	if err := json.Unmarshal(payload, &rec); err != nil {
		return rec, false
	}
	return rec, true
}

// Append durably appends one record.
func (j *Journal) Append(rec Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encoding journal record: %w", err)
	}
	line := fmt.Sprintf("%08x %s\n", crc32.ChecksumIEEE(payload), payload)
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("store: journal closed")
	}
	if _, err := j.f.WriteString(line); err != nil {
		return fmt.Errorf("store: appending journal record: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("store: syncing journal: %w", err)
	}
	j.recs = append(j.recs, rec)
	noteJournal(journalOpAppended)
	return nil
}

// Records returns a copy of every intact record, recovered and
// appended, in journal order.
func (j *Journal) Records() []Record {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]Record(nil), j.recs...)
}

// SkippedBytes reports how many bytes of torn trailing data the open
// discarded — nonzero exactly when the previous process died mid-append.
func (j *Journal) SkippedBytes() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.skipped
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close releases the journal file. Further Appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
