// Package topo models single-node GPU interconnects: NVLink with NVSwitch
// on NVIDIA systems and Infinity Fabric on AMD systems (Fig. 2(b) of the
// paper). The paper's experiments are single-node, so the topology reduces
// to per-pair and per-ring achievable bandwidths plus hop latencies; those
// are exactly what the collective cost models consume.
package topo

import (
	"fmt"

	"overlapsim/internal/hw"
)

// Kind distinguishes switched fabrics from directly attached meshes.
type Kind int

// Topology kinds.
const (
	// Switched is NVLink + NVSwitch: every GPU pair communicates at full
	// per-GPU link bandwidth with a single switch hop.
	Switched Kind = iota
	// Mesh is Infinity Fabric: GPUs are directly attached; a pair shares
	// a subset of the GPU's links.
	Mesh
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Switched:
		return "switched"
	case Mesh:
		return "mesh"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// meshP2PShare is the fraction of a GPU's aggregate Infinity Fabric
// bandwidth available on the direct link to one particular peer.
const meshP2PShare = 0.5

// Topology describes the interconnect of one system.
type Topology struct {
	kind Kind
	sys  hw.System
}

// ForSystem builds the topology for a system: switched for NVIDIA GPUs,
// mesh for AMD GPUs, matching the server designs in §II-A.
func ForSystem(sys hw.System) *Topology {
	k := Switched
	if sys.GPU.Vendor == hw.AMD {
		k = Mesh
	}
	return &Topology{kind: k, sys: sys}
}

// Kind returns the topology kind.
func (t *Topology) Kind() Kind { return t.kind }

// N returns the number of GPUs.
func (t *Topology) N() int { return t.sys.N }

// GPU returns the GPU spec of the node.
func (t *Topology) GPU() *hw.GPUSpec { return t.sys.GPU }

// RingBW returns the achievable per-direction ring bandwidth in bytes/s —
// the rate at which one GPU can simultaneously send to its ring successor
// and receive from its predecessor. Both fabrics sustain this at the
// derated unidirectional link rate.
func (t *Topology) RingBW() float64 {
	return t.sys.GPU.UniLinkBW()
}

// P2PBW returns the achievable bandwidth of a single pairwise transfer in
// bytes/s. On a switched fabric a pair enjoys the GPU's full unidirectional
// bandwidth; on a mesh it gets only the directly attached links.
func (t *Topology) P2PBW(src, dst int) float64 {
	t.check(src)
	t.check(dst)
	bw := t.sys.GPU.UniLinkBW()
	if t.kind == Mesh {
		bw *= meshP2PShare
	}
	return bw
}

// HopLatency returns the latency of one collective step or P2P transfer
// setup in seconds.
func (t *Topology) HopLatency() float64 {
	lat := t.sys.GPU.LinkLatency
	if t.kind == Switched {
		// One extra switch traversal.
		lat *= 1.5
	}
	return lat
}

func (t *Topology) check(g int) {
	if g < 0 || g >= t.sys.N {
		panic(fmt.Sprintf("topo: GPU index %d out of range [0,%d)", g, t.sys.N))
	}
}
