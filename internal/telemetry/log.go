package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync/atomic"
)

// NewLogger builds a slog.Logger writing to w at the given level
// ("debug", "info", "warn", "error") in the given format ("text" or
// "json"). The zero values default to info-level text logging.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	lv, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("telemetry: unknown log format %q (want text or json)", format)
	}
	return slog.New(h), nil
}

// ParseLevel resolves a log level name; the empty string means info.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "", "info":
		return slog.LevelInfo, nil
	case "debug":
		return slog.LevelDebug, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("telemetry: unknown log level %q (want debug, info, warn or error)", s)
}

// NopLogger returns a logger that discards everything — the default for
// embedders that did not configure logging.
func NopLogger() *slog.Logger {
	return slog.New(slog.DiscardHandler)
}

// reqIDKey is the context key request IDs travel under.
type reqIDKey struct{}

// reqSeq numbers requests within the process; reqPrefix distinguishes
// processes, so IDs stay meaningful across daemon restarts in one log
// stream.
var (
	reqSeq    atomic.Uint64
	reqPrefix = func() string {
		var b [3]byte
		if _, err := rand.Read(b[:]); err != nil {
			return "req"
		}
		return hex.EncodeToString(b[:])
	}()
)

// WithRequestID returns ctx carrying a fresh request ID, plus the ID.
// If ctx already carries one (e.g. an internal sub-request), it is
// reused.
func WithRequestID(ctx context.Context) (context.Context, string) {
	if id := RequestID(ctx); id != "" {
		return ctx, id
	}
	id := fmt.Sprintf("%s-%06d", reqPrefix, reqSeq.Add(1))
	return context.WithValue(ctx, reqIDKey{}, id), id
}

// RequestID returns the request ID carried by ctx, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(reqIDKey{}).(string)
	return id
}
