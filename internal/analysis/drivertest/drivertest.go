// Package drivertest runs analyzers over a corpus module and compares
// their findings against `// want` expectations written in the corpus
// sources — the analysistest workflow, rebuilt on the repository's own
// driver so analyzer tests read the same way they would upstream.
//
// An expectation is a line comment on the offending line:
//
//	out = append(out, k) // want `map iteration appends`
//
// Each backquoted or double-quoted string is a regular expression that
// must match the message of exactly one finding reported on that line;
// findings with no matching expectation, and expectations with no
// matching finding, fail the test. Corpora live in their analyzer's
// testdata directory as self-contained modules (their own go.mod), so
// ordinary `go build ./...` and `go list ./...` over the repository
// never see them.
package drivertest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"overlapsim/internal/analysis/driver"
)

// expectation is one want pattern awaiting a finding on its line.
type expectation struct {
	rx      *regexp.Regexp
	matched bool
}

// patternRE extracts the quoted patterns of a want comment.
var patternRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// Run loads the corpus module rooted at dir (a path relative to the
// test's working directory), applies the analyzers, and reports any
// mismatch between findings and want expectations through t.
func Run(t *testing.T, dir string, analyzers []*driver.Analyzer, patterns ...string) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := driver.Load(abs, patterns)
	if err != nil {
		t.Fatalf("loading corpus %s: %v", dir, err)
	}
	findings, err := prog.Run(analyzers)
	if err != nil {
		t.Fatalf("running analyzers over %s: %v", dir, err)
	}

	wants := map[string][]*expectation{} // "filename:line" -> pending expectations
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					pos := prog.Fset.Position(c.Slash)
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					for _, m := range patternRE.FindAllStringSubmatch(strings.TrimPrefix(text, "want "), -1) {
						pat := m[1]
						if strings.HasPrefix(m[0], "`") {
							pat = m[2]
						}
						rx, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", key, pat, err)
						}
						wants[key] = append(wants[key], &expectation{rx: rx})
					}
				}
			}
		}
	}

	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Position.Filename, f.Position.Line)
		matched := false
		for _, e := range wants[key] {
			if !e.matched && e.rx.MatchString(f.Message) {
				e.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	keys := make([]string, 0, len(wants))
	for key := range wants {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		for _, e := range wants[key] {
			if !e.matched {
				t.Errorf("%s: no finding matched want `%s`", key, e.rx)
			}
		}
	}
}
