package sweep

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"overlapsim/internal/core"
	"overlapsim/internal/report"
)

// testSpec is a small but multi-axis grid of real catalog entries.
func testSpec() *Spec {
	return &Spec{
		Name:         "test",
		GPUs:         []string{"H100", "MI250"},
		Models:       []string{"GPT-3 XL"},
		Parallelisms: []string{"fsdp", "pp"},
		Formats:      []string{"fp16"},
		Batches:      []int{8},
	}
}

func TestSpecExpansionCount(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want int
	}{
		{"minimal", Spec{GPUs: []string{"H100"}, Models: []string{"GPT-3 XL"}}, 1},
		{"two axes", *testSpec(), 4},
		{"full grid", Spec{
			GPUs:         []string{"A100", "H100"},
			GPUCounts:    []int{4, 8},
			Models:       []string{"GPT-3 XL", "GPT-3 2.7B"},
			Parallelisms: []string{"fsdp", "pp", "ddp"},
			Batches:      []int{8, 16},
			Formats:      []string{"fp16", "bf16"},
			PowerCapsW:   []float64{0, 300},
			MatrixUnits:  []bool{true, false},
		}, 2 * 2 * 2 * 3 * 2 * 2 * 2 * 2},
	}
	for _, tc := range cases {
		if got := tc.spec.Size(); got != tc.want {
			t.Errorf("%s: Size() = %d, want %d", tc.name, got, tc.want)
		}
		exps, cfgs, err := tc.spec.Expand()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if len(exps) != tc.want || len(cfgs) != tc.want {
			t.Errorf("%s: expanded to %d experiments / %d configs, want %d",
				tc.name, len(exps), len(cfgs), tc.want)
		}
	}
}

// The TP-degree axis multiplies the grid and threads through to the
// configs; strategy names resolve against the registry, so "tp" expands
// without sweep (or core) naming it.
func TestSpecExpansionTPDegrees(t *testing.T) {
	spec := Spec{
		GPUs:         []string{"H100"},
		GPUCounts:    []int{8},
		Models:       []string{"GPT-3 XL"},
		Parallelisms: []string{"tp"},
		TPDegrees:    []int{2, 4, 8},
		Batches:      []int{8},
	}
	if got := spec.Size(); got != 3 {
		t.Fatalf("Size() = %d, want 3", got)
	}
	exps, cfgs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range exps {
		if cfgs[i].TPDegree != e.TPDegree || cfgs[i].TPDegree != []int{2, 4, 8}[i] {
			t.Errorf("point %d: degree %d / %d", i, e.TPDegree, cfgs[i].TPDegree)
		}
		if cfgs[i].Parallelism != "tp" {
			t.Errorf("point %d: parallelism %q", i, cfgs[i].Parallelism)
		}
	}
	bad := spec
	bad.TPDegrees = []int{-2}
	if _, _, err := bad.Expand(); err == nil {
		t.Error("negative TP degree accepted")
	}

	// The axis is inert for strategies that ignore the knob: a mixed
	// fsdp+tp spec expands one fsdp point, not one per degree.
	mixed := spec
	mixed.Parallelisms = []string{"fsdp", "tp"}
	exps, cfgs, err = mixed.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) != 1+3 {
		t.Fatalf("mixed spec expanded to %d points, want 4", len(exps))
	}
	var fsdpPts, tpPts int
	for i := range cfgs {
		switch cfgs[i].Parallelism {
		case "fsdp":
			fsdpPts++
			if cfgs[i].TPDegree != 0 {
				t.Errorf("fsdp point carries TP degree %d", cfgs[i].TPDegree)
			}
		case "tp":
			tpPts++
		}
	}
	if fsdpPts != 1 || tpPts != 3 {
		t.Errorf("mixed spec: %d fsdp / %d tp points, want 1 / 3", fsdpPts, tpPts)
	}
	if mixed.Size() != len(exps) {
		t.Errorf("Size() = %d, want the exact expansion count %d", mixed.Size(), len(exps))
	}
}

// Overlapping axis values (and knobs that canonicalize away) must
// collapse: the expansion is deduplicated by canonical fingerprint, so a
// dup-axis spec runs exactly its unique configurations.
func TestSpecExpansionDedupesByFingerprint(t *testing.T) {
	spec := Spec{
		GPUs:       []string{"H100", "H100", "A100"},
		Models:     []string{"GPT-3 XL"},
		Batches:    []int{8, 8},
		PowerCapsW: []float64{0, 300, 0},
	}
	// 3 GPUs x 2 batches x 3 caps = 18 cartesian points, 4 unique:
	// {H100, A100} x bs=8 x {uncapped, 300 W}.
	if got := spec.Size(); got != 18 {
		t.Fatalf("Size() = %d, want the pre-dedup bound 18", got)
	}
	exps, cfgs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) != 4 || len(cfgs) != 4 {
		t.Fatalf("expanded to %d experiments / %d configs, want 4 unique", len(exps), len(cfgs))
	}
	keys := make(map[string]int)
	for i, cfg := range cfgs {
		key, err := cfg.Fingerprint()
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := keys[key]; dup {
			t.Errorf("points %d and %d share fingerprint %s", prev, i, key)
		}
		keys[key] = i
	}
	// First-coordinate-wins ordering: the deduped grid stays row-major.
	wantOrder := []struct {
		gpu string
		cap float64
	}{{"H100", 0}, {"H100", 300}, {"A100", 0}, {"A100", 300}}
	for i, w := range wantOrder {
		if exps[i].GPU != w.gpu || exps[i].PowerCapW != w.cap {
			t.Errorf("point %d = %s cap %g, want %s cap %g",
				i, exps[i].GPU, exps[i].PowerCapW, w.gpu, w.cap)
		}
	}
}

func TestSpecExpansionErrors(t *testing.T) {
	cases := map[string]Spec{
		"no gpus":     {Models: []string{"GPT-3 XL"}},
		"no models":   {GPUs: []string{"H100"}},
		"bad gpu":     {GPUs: []string{"B200"}, Models: []string{"GPT-3 XL"}},
		"bad model":   {GPUs: []string{"H100"}, Models: []string{"GPT-5"}},
		"bad par":     {GPUs: []string{"H100"}, Models: []string{"GPT-3 XL"}, Parallelisms: []string{"tensor"}},
		"bad format":  {GPUs: []string{"H100"}, Models: []string{"GPT-3 XL"}, Formats: []string{"fp8"}},
		"bad batch":   {GPUs: []string{"H100"}, Models: []string{"GPT-3 XL"}, Batches: []int{-1}},
		"bad cap":     {GPUs: []string{"H100"}, Models: []string{"GPT-3 XL"}, PowerCapsW: []float64{-5}},
		"bad gpus n":  {GPUs: []string{"H100"}, Models: []string{"GPT-3 XL"}, GPUCounts: []int{-2}},
		"bad freqcap": {GPUs: []string{"H100"}, Models: []string{"GPT-3 XL"}, Base: Experiment{FreqCap: 1.5}},
	}
	for name, spec := range cases {
		if _, _, err := spec.Expand(); err == nil {
			t.Errorf("%s: expansion succeeded, want error", name)
		}
	}
}

// Size must saturate rather than wrap, so an adversarial spec cannot
// sneak a huge grid past a size limit via integer overflow.
func TestSpecSizeSaturates(t *testing.T) {
	axis := make([]string, 1<<16)
	batches := make([]int, 1<<16)
	caps := make([]float64, 1<<16)
	counts := make([]int, 1<<16)
	s := Spec{GPUs: axis, Models: axis, Batches: batches, PowerCapsW: caps, GPUCounts: counts}
	if got := s.Size(); got != math.MaxInt {
		t.Errorf("Size() = %d, want saturation at MaxInt", got)
	}
}

func TestParseSpecRejectsUnknownFields(t *testing.T) {
	_, err := ParseSpec(strings.NewReader(`{"gpus":["H100"],"models":["GPT-3 XL"],"batchez":[8]}`))
	if err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestRunnerCacheHitMiss(t *testing.T) {
	_, cfgs, err := testSpec().Expand()
	if err != nil {
		t.Fatal(err)
	}
	cache := NewMemCache()
	r := &Runner{Workers: 2, Cache: cache}

	cold, err := r.Run(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHits != 0 || cold.CacheMisses != len(cfgs) {
		t.Errorf("cold run: %d hits / %d misses, want 0 / %d",
			cold.CacheHits, cold.CacheMisses, len(cfgs))
	}
	if cache.Len() != len(cfgs) {
		t.Errorf("cache holds %d entries, want %d", cache.Len(), len(cfgs))
	}

	warm, err := r.Run(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheHits != len(cfgs) || warm.CacheMisses != 0 {
		t.Errorf("warm run: %d hits / %d misses, want %d / 0",
			warm.CacheHits, warm.CacheMisses, len(cfgs))
	}
	for i := range warm.Points {
		if !warm.Points[i].CacheHit {
			t.Errorf("point %d not served from cache", i)
		}
		if warm.Points[i].Res == nil {
			t.Fatalf("point %d has no result", i)
		}
		if got, want := warm.Points[i].Res.Overlapped.Mean.E2E, cold.Points[i].Res.Overlapped.Mean.E2E; got != want {
			t.Errorf("point %d cached E2E %g differs from computed %g", i, got, want)
		}
	}
}

func TestDirCachePersistsAcrossInstances(t *testing.T) {
	dir := t.TempDir()
	_, cfgs, err := (&Spec{GPUs: []string{"H100"}, Models: []string{"GPT-3 XL"}}).Expand()
	if err != nil {
		t.Fatal(err)
	}

	c1, err := NewDirCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Cache: c1}
	if _, err := r.Run(context.Background(), cfgs); err != nil {
		t.Fatal(err)
	}

	// A fresh instance over the same directory — as a separate process
	// would see it — serves every point from disk.
	c2, err := NewDirCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := (&Runner{Cache: c2}).Run(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheHits != len(cfgs) {
		t.Errorf("warm run hit %d/%d points", warm.CacheHits, len(cfgs))
	}
}

func TestDirCacheCorruptEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	c, err := NewDirCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := strings.Repeat("ab", 32)
	if err := os.WriteFile(filepath.Join(dir, key+".json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Error("corrupt entry served as a hit")
	}
	if _, ok := c.Get("../../etc/passwd"); ok {
		t.Error("traversal key served as a hit")
	}
	if err := c.Put("../escape", &core.Result{}); err == nil {
		t.Error("traversal key accepted for Put")
	}
}

// One bad point must not abort the sweep: the worker pool collects the
// error and every other point still completes.
func TestRunnerFailSoftErrorAggregation(t *testing.T) {
	_, good, err := (&Spec{GPUs: []string{"H100"}, Models: []string{"GPT-3 XL"}, Parallelisms: []string{"fsdp", "pp"}}).Expand()
	if err != nil {
		t.Fatal(err)
	}
	bad := good[0]
	bad.Parallelism = "warp" // not registered; rejected by core.RunMode
	cfgs := []core.Config{good[0], bad, good[1]}

	res, err := (&Runner{Workers: 2, Cache: NewMemCache()}).Run(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 1 {
		t.Fatalf("failures = %d, want 1", res.Failures)
	}
	if res.Points[1].Err == nil || res.Points[1].Res != nil {
		t.Error("bad point not recorded as failed")
	}
	if res.Points[0].Res == nil || res.Points[2].Res == nil {
		t.Error("good points did not complete alongside the failure")
	}
	agg := res.Err()
	if agg == nil || !strings.Contains(agg.Error(), "1/3 points failed") {
		t.Errorf("aggregate error = %v", agg)
	}
}

// OOM is an expected outcome (the paper's skipped configurations), kept
// distinct from failures.
func TestRunnerClassifiesOOM(t *testing.T) {
	exp := Experiment{GPU: "A100", Model: "GPT-3 13B", Parallelism: "ddp"}
	cfg, err := exp.Config()
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&Runner{}).Run(context.Background(), []core.Config{cfg})
	if err != nil {
		t.Fatal(err)
	}
	if res.OOMs != 1 || res.Failures != 0 {
		t.Fatalf("OOMs=%d failures=%d, want 1/0", res.OOMs, res.Failures)
	}
	if res.Points[0].OOM == nil {
		t.Error("OOM detail missing")
	}
	if res.Err() != nil {
		t.Errorf("OOM counted as failure: %v", res.Err())
	}
}

// Cancelling mid-sweep stops dispatch, marks undispatched points with
// the context error, and reports the cancellation.
func TestRunnerCancellation(t *testing.T) {
	_, cfgs, err := testSpec().Expand()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	r := &Runner{Workers: 1, Cache: NewMemCache()}
	r.OnPoint = func(Point) { cancel() } // cancel after the first point lands
	res, err := r.Run(ctx, cfgs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	done, cancelled := 0, 0
	for _, p := range res.Points {
		switch {
		case p.Res != nil:
			done++
		case errors.Is(p.Err, context.Canceled):
			cancelled++
		}
	}
	if done == 0 || cancelled == 0 || done+cancelled != len(cfgs) {
		t.Errorf("done=%d cancelled=%d of %d", done, cancelled, len(cfgs))
	}
}

func TestRowsAndAggregate(t *testing.T) {
	_, cfgs, err := testSpec().Expand()
	if err != nil {
		t.Fatal(err)
	}
	res, err := (&Runner{Cache: NewMemCache()}).Run(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	rows := Rows(res)
	if len(rows) != len(cfgs) {
		t.Fatalf("%d rows for %d points", len(rows), len(cfgs))
	}
	for _, r := range rows {
		if r.Status != "ok" {
			t.Errorf("row %q status %q", r.Label, r.Status)
		}
		if r.E2EOvl <= 0 || r.E2ESeq <= 0 {
			t.Errorf("row %q has empty metrics", r.Label)
		}
	}
	agg := report.AggregateSweep(rows)
	if agg.Points != len(cfgs) || agg.OK != len(cfgs) || agg.Hits != 0 {
		t.Errorf("aggregate %+v", agg)
	}
	if !strings.Contains(agg.String(), "4 points: 4 ok") {
		t.Errorf("aggregate string %q", agg.String())
	}
	var sb strings.Builder
	if err := report.SweepTable(&sb, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "H100x4 FSDP GPT-3 XL bs=8 FP16") {
		t.Errorf("table missing config label:\n%s", sb.String())
	}
}
