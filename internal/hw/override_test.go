package hw

import (
	"strings"
	"testing"
)

// overrideGPUJSON returns a minimal valid GPU definition named like the
// built-in H100 but with a recognizably different memory size, with or
// without the override marker.
func overrideGPUJSON(override bool) string {
	ov := ""
	if override {
		ov = `"override": true,`
	}
	return `{"gpus": [{
		"name": "H100", ` + ov + `
		"vendor": "NVIDIA", "sms": 132, "boost_mhz": 1980,
		"mem_gb": 141, "mem_bw_gbs": 3350,
		"link_bw_gbs": 900, "tdp_w": 700,
		"vector_tflops": {"fp32": 66.9, "fp16": 133.8, "bf16": 133.8},
		"matrix_tflops": {"tf32": 494.7, "fp32": 494.7, "fp16": 989.4, "bf16": 989.4}
	}]}`
}

func TestLoadDuplicateGPUWithoutOverrideErrors(t *testing.T) {
	reg := NewRegistry()
	err := reg.Load(strings.NewReader(overrideGPUJSON(false)))
	if err == nil {
		t.Fatal("loading a GPU named like a built-in without override must error")
	}
	if !strings.Contains(err.Error(), "override") {
		t.Errorf("error should point at the override escape hatch, got: %v", err)
	}
	// The failed load must not have shadowed the built-in.
	if g := reg.GPU("H100"); g == nil || g.MemGB != 80 {
		t.Fatalf("built-in H100 corrupted after rejected load: %+v", g)
	}
}

func TestLoadDuplicateGPUWithOverrideReplaces(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Load(strings.NewReader(overrideGPUJSON(true))); err != nil {
		t.Fatalf("override load: %v", err)
	}
	g := reg.GPU("H100")
	if g == nil || g.MemGB != 141 {
		t.Fatalf("override did not replace the built-in: %+v", g)
	}
	// The default registry must be untouched: override shadows, never
	// writes through.
	if g := ByName("H100"); g == nil || g.MemGB != 80 {
		t.Fatalf("override leaked into the default registry: %+v", g)
	}
	// The shadowing entry must not duplicate the name in listings.
	count := 0
	for _, n := range reg.GPUNames() {
		if n == "H100" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("H100 listed %d times after override, want 1", count)
	}
}

func TestLoadLocalDuplicateGPUOverride(t *testing.T) {
	reg := NewRegistry()
	first := `{"gpus": [{
		"name": "CalGPU", "vendor": "NVIDIA", "sms": 100, "boost_mhz": 1500,
		"mem_gb": 40, "mem_bw_gbs": 2000, "link_bw_gbs": 600, "tdp_w": 400,
		"vector_tflops": {"fp32": 20}
	}]}`
	if err := reg.Load(strings.NewReader(first)); err != nil {
		t.Fatalf("first load: %v", err)
	}
	second := strings.Replace(first, `"mem_gb": 40`, `"mem_gb": 80`, 1)
	if err := reg.Load(strings.NewReader(second)); err == nil {
		t.Fatal("re-loading the same local name without override must error")
	}
	second = strings.Replace(second, `"name": "CalGPU",`, `"name": "CalGPU", "override": true,`, 1)
	if err := reg.Load(strings.NewReader(second)); err != nil {
		t.Fatalf("override re-load: %v", err)
	}
	if g := reg.GPU("CalGPU"); g == nil || g.MemGB != 80 {
		t.Fatalf("local override did not replace: %+v", g)
	}
	count := 0
	for _, n := range reg.GPUNames() {
		if n == "CalGPU" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("CalGPU listed %d times after local override, want 1", count)
	}
}

func TestLoadDuplicateSystemOverride(t *testing.T) {
	reg := NewRegistry()
	without := `{"systems": [{"name": "H100x8", "gpu": "H100", "gpus_per_node": 4}]}`
	err := reg.Load(strings.NewReader(without))
	if err == nil {
		t.Fatal("loading a system named like a built-in without override must error")
	}
	if !strings.Contains(err.Error(), "override") {
		t.Errorf("error should point at the override escape hatch, got: %v", err)
	}

	with := `{"systems": [{"name": "H100x8", "override": true, "gpu": "H100", "gpus_per_node": 4}]}`
	if err := reg.Load(strings.NewReader(with)); err != nil {
		t.Fatalf("override load: %v", err)
	}
	sys, err := reg.System("H100x8")
	if err != nil {
		t.Fatal(err)
	}
	if sys.N != 4 {
		t.Fatalf("override did not replace the built-in system: N=%d", sys.N)
	}
	// Default registry untouched.
	if sys, err := SystemByName("H100x8"); err != nil || sys.N != 8 {
		t.Fatalf("override leaked into the default registry: %+v, %v", sys, err)
	}
	count := 0
	for _, n := range reg.SystemNames() {
		if n == "H100x8" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("H100x8 listed %d times after override, want 1", count)
	}
	// Systems() must resolve every listed name, including the shadowed one.
	if got := len(reg.Systems()); got != len(reg.SystemNames()) {
		t.Errorf("Systems() returned %d entries for %d names", got, len(reg.SystemNames()))
	}
}
