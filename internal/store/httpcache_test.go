package store

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"overlapsim/internal/core"
)

// peerServer is a minimal in-memory implementation of the peer cache
// protocol, standing in for a remote overlapd.
type peerServer struct {
	mu      sync.Mutex
	entries map[string][]byte
	gets    int
	puts    int
}

func newPeerServer() *peerServer {
	return &peerServer{entries: make(map[string][]byte)}
}

func (p *peerServer) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+CachePathPrefix+"{fp}", func(w http.ResponseWriter, r *http.Request) {
		p.mu.Lock()
		defer p.mu.Unlock()
		p.gets++
		b, ok := p.entries[r.PathValue("fp")]
		if !ok {
			http.Error(w, "miss", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
	})
	mux.HandleFunc("PUT "+CachePathPrefix+"{fp}", func(w http.ResponseWriter, r *http.Request) {
		var res core.Result
		if err := json.NewDecoder(r.Body).Decode(&res); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		b, _ := json.Marshal(&res)
		p.mu.Lock()
		defer p.mu.Unlock()
		p.puts++
		p.entries[r.PathValue("fp")] = b
		w.WriteHeader(http.StatusNoContent)
	})
	return mux
}

func TestHTTPCacheRoundTrip(t *testing.T) {
	peer := newPeerServer()
	ts := httptest.NewServer(peer.handler())
	defer ts.Close()

	c, err := NewHTTPCache([]string{ts.URL}, ts.Client())
	if err != nil {
		t.Fatal(err)
	}
	key, res := testEntry(t, 8)

	if _, ok := c.Get(key); ok {
		t.Fatal("hit on an empty peer")
	}
	if err := c.Put(key, res); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(key)
	if !ok {
		t.Fatal("miss after Put")
	}
	if got.Config.Batch != res.Config.Batch {
		t.Errorf("round-tripped batch %d, want %d", got.Config.Batch, res.Config.Batch)
	}
	if peer.puts != 1 || peer.gets != 2 {
		t.Errorf("peer saw %d puts / %d gets, want 1 / 2", peer.puts, peer.gets)
	}
}

// Every failure mode degrades to a miss: the mesh can cost recomputation
// but never an error surfaced to the sweep.
func TestHTTPCacheFailuresDegradeToMiss(t *testing.T) {
	garbage := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("not json"))
	}))
	defer garbage.Close()
	down := httptest.NewServer(http.NotFoundHandler())
	down.Close() // refused connections from here on

	key, res := testEntry(t, 8)
	for name, url := range map[string]string{"corrupt body": garbage.URL, "unreachable": down.URL} {
		c, err := NewHTTPCache([]string{url}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := c.Get(key); ok {
			t.Errorf("%s: Get reported a hit", name)
		}
		if err := c.Put(key, res); err == nil && name == "unreachable" {
			t.Errorf("%s: Put to a dead peer returned nil error", name)
		}
	}
}

func TestHTTPCacheRejectsInvalidPeers(t *testing.T) {
	for _, peers := range [][]string{nil, {}, {"not-a-url"}, {"//missing-scheme"}, {"http://"}} {
		if _, err := NewHTTPCache(peers, nil); err == nil {
			t.Errorf("NewHTTPCache(%q) accepted an invalid peer set", peers)
		}
	}
}

// Rendezvous hashing: every replica computes the same owner for a key
// regardless of peer-list order, and multiple peers share the keyspace.
func TestHTTPCacheOwnerIsOrderInvariant(t *testing.T) {
	peers := []string{"http://a:1", "http://b:1", "http://c:1"}
	reversed := []string{"http://c:1", "http://b:1", "http://a:1"}
	ca, err := NewHTTPCache(peers, nil)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := NewHTTPCache(reversed, nil)
	if err != nil {
		t.Fatal(err)
	}
	owners := make(map[string]bool)
	for i := 0; i < 64; i++ {
		key, _ := testEntry(t, i+1)
		a, b := ca.owner(key), cb.owner(key)
		if a != b {
			t.Fatalf("key %s: owner %s vs %s across peer-list orders", key, a, b)
		}
		owners[a] = true
	}
	if len(owners) < 2 {
		t.Errorf("64 keys all mapped to one owner; rendezvous hashing is not spreading")
	}
}

// Removing a peer only remaps the keys it owned; everything else stays
// put. This is why a mesh survives replica churn without a reshuffle.
func TestHTTPCacheOwnerStableUnderPeerLoss(t *testing.T) {
	full, _ := NewHTTPCache([]string{"http://a:1", "http://b:1", "http://c:1"}, nil)
	less, _ := NewHTTPCache([]string{"http://a:1", "http://b:1"}, nil)
	for i := 0; i < 64; i++ {
		key, _ := testEntry(t, i+1)
		was := full.owner(key)
		if was == "http://c:1" {
			continue // orphaned keys may land anywhere
		}
		if now := less.owner(key); now != was {
			t.Errorf("key %s moved %s -> %s though its owner never left", key, was, now)
		}
	}
}
