package core

import (
	"context"
	"strings"
	"testing"

	"overlapsim/internal/exec"
	"overlapsim/internal/hw"
	"overlapsim/internal/model"
	"overlapsim/internal/power"
	"overlapsim/internal/precision"
)

func tinyModel() model.Config {
	return model.Config{Name: "tiny", Arch: model.GPT3, NominalParams: 1e8,
		Layers: 8, Heads: 4, Hidden: 256, FFN: 1024, Vocab: 2048, SeqLen: 128}
}

func tinyCfg(par Parallelism) Config {
	return Config{
		System:      hw.SystemH100x4(),
		Model:       tinyModel(),
		Parallelism: par,
		Batch:       8,
		Format:      precision.FP16,
		MatrixUnits: true,
	}
}

func TestRunFSDP(t *testing.T) {
	res, err := Run(context.Background(), tinyCfg(FSDP))
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res)
}

func TestRunPipeline(t *testing.T) {
	res, err := Run(context.Background(), tinyCfg(Pipeline))
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res)
}

// checkResult asserts the structural invariants every characterization
// must satisfy.
func checkResult(t *testing.T, res *Result) {
	t.Helper()
	c := res.Char
	if res.Sequential.Mean.E2E < res.Overlapped.Mean.E2E {
		t.Errorf("sequential E2E %g below overlapped %g",
			res.Sequential.Mean.E2E, res.Overlapped.Mean.E2E)
	}
	if c.E2EIdeal > res.Overlapped.Mean.E2E+1e-12 {
		t.Errorf("ideal E2E %g above overlapped %g", c.E2EIdeal, res.Overlapped.Mean.E2E)
	}
	if c.ComputeSlowdown < 0 {
		t.Errorf("negative compute slowdown %g", c.ComputeSlowdown)
	}
	if c.OverlapRatio < 0 || c.OverlapRatio > 1 {
		t.Errorf("overlap ratio %g outside [0,1]", c.OverlapRatio)
	}
	if len(res.Overlapped.GPUPower) != res.Config.System.N {
		t.Errorf("power stats for %d GPUs, want %d", len(res.Overlapped.GPUPower), res.Config.System.N)
	}
	if res.Overlapped.AvgTDP <= 0 || res.Overlapped.EnergyJ <= 0 {
		t.Error("missing power accounting")
	}
	if res.Overlapped.PeakTDP < res.Overlapped.AvgTDP {
		t.Error("peak power below average")
	}
}

func TestRunModeTrace(t *testing.T) {
	cfg := tinyCfg(FSDP)
	cfg.TraceInterval = power.TraceInterval
	res, err := RunMode(context.Background(), cfg, exec.Overlapped)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Traces) != 4 {
		t.Fatalf("traces for %d GPUs, want 4", len(res.Traces))
	}
	if len(res.Traces[0]) == 0 {
		t.Error("empty trace")
	}
}

func TestPowerCapSlowsExecution(t *testing.T) {
	base, err := Run(context.Background(), tinyCfg(FSDP))
	if err != nil {
		t.Fatal(err)
	}
	capped := tinyCfg(FSDP)
	capped.Caps = power.Caps{PowerW: 150}
	cres, err := Run(context.Background(), capped)
	if err != nil {
		t.Fatal(err)
	}
	if cres.Overlapped.Mean.E2E <= base.Overlapped.Mean.E2E {
		t.Errorf("150W cap did not slow execution: %g vs %g",
			cres.Overlapped.Mean.E2E, base.Overlapped.Mean.E2E)
	}
	if cres.Overlapped.AvgTDP >= base.Overlapped.AvgTDP {
		t.Error("cap did not reduce average power")
	}
}

func TestOOMPropagates(t *testing.T) {
	cfg := tinyCfg(FSDP)
	cfg.System = hw.SystemA100x4()
	cfg.Model = model.GPT3_13B()
	if _, err := Run(context.Background(), cfg); err == nil {
		t.Fatal("13B on A100x4 must OOM")
	}
}

func TestUnknownParallelism(t *testing.T) {
	cfg := tinyCfg(FSDP)
	cfg.Parallelism = "warp" // not in the registry
	_, err := Run(context.Background(), cfg)
	if err == nil {
		t.Fatal("unknown parallelism must fail")
	}
	if !strings.Contains(err.Error(), `"warp"`) || !strings.Contains(err.Error(), "fsdp") {
		t.Errorf("error %v should name the unknown strategy and list registered ones", err)
	}
}

func TestLabel(t *testing.T) {
	if tinyCfg(FSDP).Label() == "" || FSDP.String() != "FSDP" || Pipeline.String() != "PP" {
		t.Error("labels")
	}
}

func TestJitterReproducible(t *testing.T) {
	cfg := tinyCfg(FSDP)
	cfg.JitterSigma = 0.03
	cfg.Seed = 7
	a, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Overlapped.Mean.E2E != b.Overlapped.Mean.E2E {
		t.Error("same seed must reproduce exactly")
	}
}
