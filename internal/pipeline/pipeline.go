// Package pipeline implements the pipeline-parallel executor of
// Fig. 3(b): the model's layers are partitioned into stages, one per GPU;
// microbatches flow through the pipeline with activations sent forward and
// gradients sent backward between adjacent stages.
//
// Overlapped mode runs the 1F1B (PipeDream-flush) schedule with
// asynchronous sends and receives on dedicated link streams, so transfers
// overlap the next microbatch's computation. Sequential mode runs the
// GPipe wavefront schedule with blocking communication — every transfer is
// serialized against both endpoints' computation. (Blocking 1F1B deadlocks
// by construction, which is why real frameworks require async P2P; the
// GPipe wavefront has identical bubble fraction, so the sequential
// baseline remains temporally comparable.)
//
// The package registers itself with the strategy registry under "pp"
// (alias "pipeline").
package pipeline

import (
	"fmt"

	"overlapsim/internal/collective"
	"overlapsim/internal/exec"
	"overlapsim/internal/gpu"
	"overlapsim/internal/kernels"
	"overlapsim/internal/model"
	"overlapsim/internal/sim"
	"overlapsim/internal/strategy"
)

// Schedule selects the pipeline schedule for overlapped execution.
type Schedule int

// Schedules.
const (
	// OneFOneB is the 1F1B (PipeDream-flush) schedule.
	OneFOneB Schedule = iota
	// GPipe runs all forwards then all backwards.
	GPipe
)

// String returns the schedule name.
func (s Schedule) String() string {
	switch s {
	case OneFOneB:
		return "1F1B"
	case GPipe:
		return "GPipe"
	default:
		return fmt.Sprintf("Schedule(%d)", int(s))
	}
}

// Strategy implements strategy.Strategy for pipeline parallelism. The
// zero value schedules 1F1B in overlapped mode; a custom instance can
// carry a different overlapped-mode schedule.
type Strategy struct {
	// Schedule selects the overlapped-mode schedule (sequential mode
	// always runs the blocking GPipe wavefront).
	Schedule Schedule
}

func init() { strategy.Register(Strategy{}) }

// Name implements strategy.Strategy.
func (Strategy) Name() string { return "pp" }

// Describe implements strategy.Strategy.
func (Strategy) Describe() strategy.Info {
	return strategy.Info{
		Name:       "pp",
		Aliases:    []string{"pipeline"},
		Display:    "PP",
		Summary:    "pipeline parallelism: layer stages with 1F1B microbatch scheduling and early-posted P2P transfers",
		Knobs:      []string{"micro_batch"},
		MicroBatch: true,
	}
}

// Build implements strategy.Strategy.
func (s Strategy) Build(cl *gpu.Cluster, p strategy.Params) (*exec.Plan, error) {
	return BuildSchedule(cl, p, s.Schedule)
}

// CanonicalParams implements strategy.Canonicalizer: it makes the
// implicit microbatch default explicit so equivalent configs fingerprint
// identically (core.Canonicalize relies on this being the single source
// of the default).
func (Strategy) CanonicalParams(p strategy.Params, gpus int) strategy.Params {
	if p.MicroBatch <= 0 {
		p.MicroBatch = DefaultMicroBatch(p.Batch)
	}
	return p
}

// DefaultMicroBatch returns the microbatch size used when none is
// requested.
func DefaultMicroBatch(batch int) int {
	if batch < 2 {
		return batch
	}
	return 2
}

// withDefaults resolves the implicit defaults; the microbatch default
// has a single source in CanonicalParams so runtime behavior and
// fingerprint canonicalization cannot drift apart.
func withDefaults(p strategy.Params) (strategy.Params, error) {
	p = Strategy{}.CanonicalParams(p.WithCommonDefaults(), 0)
	if p.Batch%p.MicroBatch != 0 {
		return p, fmt.Errorf("pipeline: batch %d not divisible by microbatch %d", p.Batch, p.MicroBatch)
	}
	return p, nil
}

// op is one scheduled step of a stage.
type op struct {
	fwd bool
	mb  int
}

// stageSchedule returns the op order of stage s.
func stageSchedule(sched Schedule, s, nStages, m int) []op {
	var ops []op
	switch sched {
	case GPipe:
		for j := 0; j < m; j++ {
			ops = append(ops, op{fwd: true, mb: j})
		}
		for j := 0; j < m; j++ {
			ops = append(ops, op{fwd: false, mb: j})
		}
	default: // 1F1B
		warm := nStages - 1 - s
		if warm > m {
			warm = m
		}
		for j := 0; j < warm; j++ {
			ops = append(ops, op{fwd: true, mb: j})
		}
		for j := 0; j < m-warm; j++ {
			ops = append(ops, op{fwd: true, mb: warm + j})
			ops = append(ops, op{fwd: false, mb: j})
		}
		for j := m - warm; j < m; j++ {
			ops = append(ops, op{fwd: false, mb: j})
		}
	}
	return ops
}

// Build constructs the multi-iteration pipeline task graph on a fresh
// engine bound to the cluster with the default 1F1B overlapped schedule.
func Build(cl *gpu.Cluster, p strategy.Params) (*exec.Plan, error) {
	return BuildSchedule(cl, p, OneFOneB)
}

// BuildSchedule is Build with an explicit overlapped-mode schedule.
func BuildSchedule(cl *gpu.Cluster, cfg strategy.Params, sched Schedule) (*exec.Plan, error) {
	cfg, err := withDefaults(cfg)
	if err != nil {
		return nil, err
	}
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	g := cl.GPU()
	n := cl.N()
	if n < 2 {
		return nil, fmt.Errorf("pipeline: need at least 2 stages, have %d GPUs", n)
	}
	if cfg.Model.Layers < n {
		return nil, fmt.Errorf("pipeline: %d layers cannot fill %d stages", cfg.Model.Layers, n)
	}
	if !cfg.SkipMemoryCheck {
		est := cfg.Model.FootprintPipeline(cfg.Batch, cfg.MicroBatch, n, cfg.Format, cfg.Checkpoint)
		if est.Total() > g.MemBytes() {
			return nil, &model.ErrOOM{
				Model:     fmt.Sprintf("%s (PP bs=%d mb=%d %s)", cfg.Model.Name, cfg.Batch, cfg.MicroBatch, cfg.Format),
				GPU:       g.Name,
				NeedBytes: est.Total(),
				HaveBytes: g.MemBytes(),
			}
		}
	}

	eng := sim.NewEngine(cl)
	eng.AddObserver(cl)

	total := cfg.Warmup + cfg.Iterations
	mbs := cfg.Batch / cfg.MicroBatch
	// Per iteration: per stage one forward and one backward per
	// microbatch, the inter-stage transfers, and the optimizer.
	estimate := total * (2*n*mbs + 2*(n-1)*mbs + n)
	b := &builder{cfg: cfg, sched: sched, eng: eng, cl: cl, n: n,
		batch: exec.NewBatch(eng, estimate)}
	b.prepare()
	plan := &exec.Plan{Engine: eng, Cluster: cl, Warmup: cfg.Warmup, Symmetry: exec.SymmetryNone}
	for it := 0; it < total; it++ {
		plan.Iterations = append(plan.Iterations, b.buildIteration(it))
	}
	return plan, nil
}

type builder struct {
	cfg   strategy.Params
	sched Schedule
	eng   *sim.Engine
	cl    *gpu.Cluster
	batch *exec.Batch
	n     int

	computeS []*sim.Stream
	fwdLink  []*sim.Stream // fwdLink[s]: transfers stage s -> s+1
	bwdLink  []*sim.Stream // bwdLink[s]: transfers stage s+1 -> s
	chain    *exec.Chain
	prep     *collective.Preparer

	fwdOp    []exec.Op // per stage, pre-boxed fused kernels
	bwdOp    []exec.Op
	optOp    []exec.Op
	actBytes float64

	prevIterEnd []*sim.Task
}

func (b *builder) sequential() bool { return b.cfg.Mode == exec.Sequential }

// prepare builds streams and the per-stage fused kernel descriptors.
func (b *builder) prepare() {
	m := b.cfg.Model
	for d := 0; d < b.n; d++ {
		b.computeS = append(b.computeS, b.eng.NewStream(fmt.Sprintf("compute%d", d), d))
	}
	if b.sequential() {
		b.chain = exec.NewChain()
	} else {
		for s := 0; s < b.n-1; s++ {
			b.fwdLink = append(b.fwdLink, b.eng.NewStream(fmt.Sprintf("link.fwd.%d", s), s))
			b.bwdLink = append(b.bwdLink, b.eng.NewStream(fmt.Sprintf("link.bwd.%d", s), s+1))
		}
	}
	b.prevIterEnd = make([]*sim.Task, b.n)

	micro := b.cfg.MicroBatch
	layers := splitLayers(m.Layers, b.n)
	headF := m.HeadKernels(micro, b.cfg.Format, b.cfg.MatrixUnits, true)
	headB := m.HeadKernels(micro, b.cfg.Format, b.cfg.MatrixUnits, false)
	for s := 0; s < b.n; s++ {
		var fParts, bParts []kernels.Desc
		if s == 0 {
			fParts = append(fParts, headF[0]) // embedding lookup
		}
		for l := 0; l < layers[s]; l++ {
			fParts = append(fParts, m.ForwardLayerKernels(micro, b.cfg.Format, b.cfg.MatrixUnits)...)
		}
		if s == b.n-1 {
			fParts = append(fParts, headF[1:]...) // LM head + loss
			bParts = append(bParts, headB[:2]...) // LM head gradients
		}
		for l := 0; l < layers[s]; l++ {
			bParts = append(bParts, m.BackwardLayerKernels(micro, b.cfg.Format, b.cfg.MatrixUnits, b.cfg.Checkpoint)...)
		}
		if s == 0 {
			bParts = append(bParts, headB[2]) // embedding gradient scatter
		}
		b.fwdOp = append(b.fwdOp, exec.KernelOp(kernels.Fuse(fmt.Sprintf("fwd.stage%d", s), fParts...)))
		b.bwdOp = append(b.bwdOp, exec.KernelOp(kernels.Fuse(fmt.Sprintf("bwd.stage%d", s), bParts...)))
		stageParams := float64(layers[s])*m.ParamsPerLayer() + m.EmbedParams()/float64(b.n)
		b.optOp = append(b.optOp, exec.KernelOp(m.OptimizerKernel(stageParams)))
	}
	b.actBytes = float64(micro) * float64(m.SeqLen) * float64(m.Hidden) * float64(b.cfg.Format.Bytes())
}

// splitLayers distributes layers over stages as evenly as possible.
func splitLayers(layers, stages int) []int {
	out := make([]int, stages)
	base := layers / stages
	rem := layers % stages
	for s := range out {
		out[s] = base
		if s < rem {
			out[s]++
		}
	}
	return out
}

// xferKey identifies a transfer between stages for one microbatch.
type xferKey struct {
	link int // stage index of the lower endpoint (link s connects s and s+1)
	fwd  bool
	mb   int
}

// gateHolder defers binding a transfer to its producer task (the producer
// may be created after the consumer references the transfer).
type gateHolder struct {
	task *sim.Task
}

// Done implements collective.Gate.
func (g *gateHolder) Done() bool { return g.task != nil && g.task.Done() }

// buildIteration appends one training iteration and returns its tasks.
func (b *builder) buildIteration(it int) []*sim.Task {
	start := len(b.eng.Tasks())
	m := b.cfg.Batch / b.cfg.MicroBatch

	xfers := make(map[xferKey]*sim.Task)
	gates := make(map[xferKey]*gateHolder)
	getXfer := func(k xferKey) *sim.Task {
		if t, ok := xfers[k]; ok {
			return t
		}
		src, dst := k.link, k.link+1
		name := fmt.Sprintf("it%d.send.fwd.s%d.mb%d", it, k.link, k.mb)
		if !k.fwd {
			src, dst = k.link+1, k.link
			name = fmt.Sprintf("it%d.send.bwd.s%d.mb%d", it, k.link, k.mb)
		}
		cd := collective.Desc{Name: name, Op: collective.SendRecv, Bytes: b.actBytes, N: 2, Src: src, Dst: dst}
		if b.prep == nil {
			b.prep = collective.NewPreparer(b.cl.Fabric())
		}
		cd, work := b.prep.Prepare(cd)
		var t *sim.Task
		if b.sequential() {
			s := b.eng.NewStream("seq."+name, src)
			t = b.eng.NewTask(name, sim.KindComm, work, cd, s)
		} else {
			// Overlapped transfers are posted early: the kernel becomes
			// resident at its queue slot and spins until the producer
			// (set via setProducer) finishes.
			g := &gateHolder{}
			gates[k] = g
			cd.Gate = g
			if k.fwd {
				t = b.eng.NewTask(name, sim.KindComm, work, cd, b.fwdLink[k.link])
			} else {
				t = b.eng.NewTask(name, sim.KindComm, work, cd, b.bwdLink[k.link])
			}
		}
		xfers[k] = t
		return t
	}
	setProducer := func(k xferKey, producer *sim.Task, xfer *sim.Task) {
		if b.sequential() {
			xfer.After(producer)
			return
		}
		gates[k].task = producer
	}

	sched := b.sched
	if b.sequential() {
		sched = GPipe
	}

	lastB := make([]*sim.Task, b.n)
	fwdTask := make([][]*sim.Task, b.n)
	for s := range fwdTask {
		fwdTask[s] = make([]*sim.Task, m)
	}
	// prevCompute tracks each stage's two latest compute ops; in
	// overlapped mode a receive is posted (becomes a resident, spinning
	// kernel) two schedule slots ahead, so the transfer for the next
	// operation overlaps the current one — Megatron's overlap_p2p_comm
	// behaviour.
	prevCompute := make([][2]*sim.Task, b.n)
	for s := range prevCompute {
		prevCompute[s] = [2]*sim.Task{b.prevIterEnd[s], b.prevIterEnd[s]}
	}
	pushCompute := func(s int, t *sim.Task) {
		prevCompute[s] = [2]*sim.Task{prevCompute[s][1], t}
	}
	// Receives are posted two schedule slots ahead, so each transfer's
	// kernel is resident through the consumer's preceding compute op —
	// Megatron's overlap_p2p_comm behaviour, and the source of pipeline
	// parallelism's compute-communication co-residency.
	postRecv := func(recv *sim.Task, s int, fwd bool) {
		if b.sequential() {
			b.chain.Order(recv, s)
			return
		}
		if p := prevCompute[s][0]; p != nil {
			recv.After(p)
		}
	}

	for s := 0; s < b.n; s++ {
		for _, o := range stageSchedule(sched, s, b.n, m) {
			if o.fwd {
				var recv *sim.Task
				if s > 0 {
					recv = getXfer(xferKey{link: s - 1, fwd: true, mb: o.mb})
					postRecv(recv, s, true)
				}
				t := b.eng.NewTask(fmt.Sprintf("it%d.fwd.s%d.mb%d", it, s, o.mb),
					sim.KindCompute, b.fwdOp[s].Work, b.fwdOp[s].Payload, b.computeS[s])
				if recv != nil {
					t.After(recv)
				}
				if p := b.prevIterEnd[s]; p != nil {
					t.After(p)
				}
				if b.sequential() {
					b.chain.Order(t, s)
				}
				fwdTask[s][o.mb] = t
				pushCompute(s, t)
				if s < b.n-1 {
					k := xferKey{link: s, fwd: true, mb: o.mb}
					send := getXfer(k)
					setProducer(k, t, send)
					if b.sequential() {
						b.chain.Order(send, s)
					}
				}
			} else {
				var recv *sim.Task
				if s < b.n-1 {
					recv = getXfer(xferKey{link: s, fwd: false, mb: o.mb})
					postRecv(recv, s, false)
				}
				t := b.eng.NewTask(fmt.Sprintf("it%d.bwd.s%d.mb%d", it, s, o.mb),
					sim.KindCompute, b.bwdOp[s].Work, b.bwdOp[s].Payload, b.computeS[s])
				if recv != nil {
					t.After(recv)
				}
				t.After(fwdTask[s][o.mb])
				if b.sequential() {
					b.chain.Order(t, s)
				}
				lastB[s] = t
				pushCompute(s, t)
				if s > 0 {
					k := xferKey{link: s - 1, fwd: false, mb: o.mb}
					send := getXfer(k)
					setProducer(k, t, send)
					if b.sequential() {
						b.chain.Order(send, s)
					}
				}
			}
		}
	}

	// Per-stage optimizer step after the stage's last backward.
	opts := make([]*sim.Task, b.n)
	for s := 0; s < b.n; s++ {
		t := b.eng.NewTask(fmt.Sprintf("it%d.opt.s%d", it, s),
			sim.KindCompute, b.optOp[s].Work, b.optOp[s].Payload, b.computeS[s])
		t.After(lastB[s])
		if b.sequential() {
			b.chain.Order(t, s)
		}
		opts[s] = t
	}
	b.prevIterEnd = opts

	return b.eng.Tasks()[start:]
}
