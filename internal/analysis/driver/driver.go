// Package driver is a self-contained analysis harness: the working core
// of golang.org/x/tools/go/analysis (Analyzer, Pass, diagnostics, a
// multichecker runner) reimplemented on the standard library alone, so
// the overlaplint analyzers build in environments without the x/tools
// module. Packages are enumerated and compiled through `go list
// -export`; dependencies import through the toolchain's export data, so
// a full run over the repository type-checks only the module's own
// sources.
//
// The API mirrors go/analysis closely enough that porting an analyzer
// onto the upstream framework is a mechanical change of import paths:
// an Analyzer has a Name, a Doc and a Run func over a Pass carrying the
// FileSet, syntax, types.Package and types.Info of one package.
//
// On top of the upstream shape the driver adds one convention shared by
// every analyzer: the suppression directive
//
//	//overlaplint:allow <analyzer> <reason>
//
// written on the offending line or on its own line directly above.
// The reason is mandatory — an exception that cannot say why it exists
// is a finding, not an exception. Malformed or unknown directives are
// reported as findings of the reserved analyzer name "overlaplint".
package driver

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in findings and allow directives.
	Name string
	// Doc is the one-paragraph description `overlaplint -help` prints.
	Doc string
	// Run applies the check to one package, reporting findings through
	// the pass. A returned error aborts the whole run (it means the
	// analyzer is broken, not that the code has findings).
	Run func(*Pass) error
}

// A Pass connects an Analyzer to one package of the loaded program.
type Pass struct {
	Analyzer *Analyzer
	// Fset is the program-wide file set; positions from any loaded
	// package (including dependencies' export data) resolve through it.
	Fset *token.FileSet
	// Files is the package's parsed syntax, comments included.
	Files []*ast.File
	// Pkg and TypesInfo are the type-checked package and its maps.
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding before position resolution.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Finding is one resolved diagnostic of one analyzer.
type Finding struct {
	// Analyzer is the reporting analyzer's name ("overlaplint" for
	// directive-hygiene findings from the driver itself).
	Analyzer string
	// Position locates the finding in the source.
	Position token.Position
	// Message describes it.
	Message string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Position, f.Analyzer, f.Message)
}

// DirectivePrefix introduces a suppression comment.
const DirectivePrefix = "//overlaplint:"

// directive is one parsed //overlaplint:allow comment.
type directive struct {
	analyzer string
	line     int
}

// parseDirectives extracts the file's allow directives, reporting
// malformed ones (bad verb, unknown analyzer, missing reason) through
// report. known holds the acceptable analyzer names.
func parseDirectives(fset *token.FileSet, file *ast.File, known map[string]bool, report func(Finding)) []directive {
	var out []directive
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, DirectivePrefix) {
				continue
			}
			pos := fset.Position(c.Slash)
			bad := func(format string, args ...any) {
				report(Finding{Analyzer: "overlaplint", Position: pos, Message: fmt.Sprintf(format, args...)})
			}
			rest := strings.TrimPrefix(c.Text, DirectivePrefix)
			verb, args, _ := strings.Cut(rest, " ")
			if verb != "allow" {
				bad("unknown directive %q (only %sallow is defined)", DirectivePrefix+verb, DirectivePrefix)
				continue
			}
			name, reason, _ := strings.Cut(strings.TrimSpace(args), " ")
			if name == "" {
				bad("%sallow needs an analyzer name and a reason", DirectivePrefix)
				continue
			}
			if !known[name] {
				names := make([]string, 0, len(known))
				for n := range known {
					names = append(names, n)
				}
				sort.Strings(names)
				bad("%sallow of unknown analyzer %q (have %s)", DirectivePrefix, name, strings.Join(names, ", "))
				continue
			}
			if strings.TrimSpace(reason) == "" {
				bad("%sallow %s needs a reason — say why the exception is intentional", DirectivePrefix, name)
				continue
			}
			out = append(out, directive{analyzer: name, line: pos.Line})
		}
	}
	return out
}

// Run applies every analyzer to every target package and returns the
// surviving findings sorted by position. Findings suppressed by an
// allow directive on their line (or the line directly above) are
// dropped; directive-hygiene findings are always kept.
func (prog *Program) Run(analyzers []*Analyzer) ([]Finding, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var findings []Finding
	for _, pkg := range prog.Packages {
		// allowed[line] is the set of analyzer names suppressed there.
		allowed := map[int]map[string]bool{}
		for _, file := range pkg.Files {
			for _, d := range parseDirectives(prog.Fset, file, known, func(f Finding) {
				findings = append(findings, f)
			}) {
				if allowed[d.line] == nil {
					allowed[d.line] = map[string]bool{}
				}
				allowed[d.line][d.analyzer] = true
			}
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      prog.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			pass.report = func(d Diagnostic) {
				pos := prog.Fset.Position(d.Pos)
				if allowed[pos.Line][a.Name] || allowed[pos.Line-1][a.Name] {
					return
				}
				findings = append(findings, Finding{Analyzer: a.Name, Position: pos, Message: d.Message})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
