package opt

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"overlapsim/internal/core"
	"overlapsim/internal/sweep"
)

// searchQuery is a space small enough to evaluate exhaustively but
// structured enough that search beats the grid: the power-cap axis (in
// physical order) trades time against power/energy, while the larger
// batch and fp32 planes are dominated and should stay mostly
// unexplored.
func searchQuery() *Query {
	return &Query{
		Name: "test-advise",
		Spec: sweep.Spec{
			Name:       "test-space",
			GPUs:       []string{"A100"},
			Models:     []string{"GPT-3 XL"},
			Batches:    []int{8, 16},
			Formats:    []string{"fp16", "fp32"},
			PowerCapsW: []float64{100, 150, 200, 250, 300, 350, 400, 0},
		},
		Objectives: []string{"time_per_iter_s", "energy_per_iter_j"},
		SeedEvals:  8,
	}
}

// exhaustiveFrontier evaluates the whole space and returns the exact
// Pareto frontier keys, in Front order.
func exhaustiveFrontier(t *testing.T, q *Query) ([]string, int) {
	t.Helper()
	objs, _, err := q.resolve()
	if err != nil {
		t.Fatal(err)
	}
	space, err := NewSpace(&q.Spec, q.Constraints.MaxGPUs)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := make([]core.Config, len(space.Cands))
	for i, c := range space.Cands {
		cfgs[i] = c.Config
	}
	res, err := (&sweep.Runner{Cache: sweep.NewMemCache()}).Run(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	var vecs [][]float64
	var keys []string
	for i := range res.Points {
		p := &res.Points[i]
		if p.Res == nil {
			t.Fatalf("exhaustive point %d failed: %v %v", i, p.Err, p.OOM)
		}
		vec := make([]float64, len(objs))
		for j, o := range objs {
			v, ok := o.Extract(p)
			if !ok {
				t.Fatalf("objective %s not extractable at point %d", o.Name, i)
			}
			vec[j] = v
		}
		vecs = append(vecs, vec)
		keys = append(keys, p.Key)
	}
	idx := Front(vecs, keys)
	out := make([]string, len(idx))
	for i, j := range idx {
		out[i] = keys[j]
	}
	return out, len(space.Cands)
}

// The acceptance test: on a space small enough to check exhaustively,
// the search must recover the exact global Pareto frontier while
// evaluating strictly fewer fresh configurations than the full grid.
func TestAdvisorMatchesExhaustiveFrontierWithFewerEvals(t *testing.T) {
	q := searchQuery()
	wantKeys, n := exhaustiveFrontier(t, q)
	if len(wantKeys) == 0 || len(wantKeys) == n {
		t.Fatalf("degenerate exhaustive frontier: %d of %d points", len(wantKeys), n)
	}

	adv, err := (&Advisor{Runner: &sweep.Runner{Cache: sweep.NewMemCache()}}).
		Run(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if adv.Stats.FreshEvals >= n {
		t.Errorf("search evaluated %d fresh configs, want strictly fewer than the %d-point grid",
			adv.Stats.FreshEvals, n)
	}
	if adv.Stats.Evaluated != adv.Stats.FreshEvals {
		t.Errorf("cold-cache run: evaluated %d != fresh %d", adv.Stats.Evaluated, adv.Stats.FreshEvals)
	}
	gotKeys := make([]string, len(adv.Frontier.Points))
	for i, p := range adv.Frontier.Points {
		gotKeys[i] = p.Key
	}
	if len(gotKeys) != len(wantKeys) {
		t.Fatalf("advisor frontier has %d points, exhaustive has %d\n got: %v\nwant: %v",
			len(gotKeys), len(wantKeys), gotKeys, wantKeys)
	}
	for i := range wantKeys {
		if gotKeys[i] != wantKeys[i] {
			t.Errorf("frontier point %d: key %s, want %s", i, gotKeys[i], wantKeys[i])
		}
	}
	t.Logf("frontier %d/%d points recovered with %d/%d evals in %d rounds",
		len(gotKeys), n, adv.Stats.Evaluated, n, adv.Stats.Rounds)
}

// Same seed, fresh caches: the advice must marshal to identical bytes.
// Warm cache: the frontier (and everything but the cache counters) must
// still be byte-identical.
func TestAdvisorDeterministicBytes(t *testing.T) {
	run := func(r *sweep.Runner) *Advice {
		t.Helper()
		adv, err := (&Advisor{Runner: r}).Run(context.Background(), searchQuery())
		if err != nil {
			t.Fatal(err)
		}
		return adv
	}
	marshal := func(v any) []byte {
		t.Helper()
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	cache := sweep.NewMemCache()
	cold := run(&sweep.Runner{Cache: cache})
	cold2 := run(&sweep.Runner{Cache: sweep.NewMemCache()})
	if a, b := marshal(cold), marshal(cold2); !bytes.Equal(a, b) {
		t.Errorf("two cold runs differ:\n%s\n%s", a, b)
	}

	warm := run(&sweep.Runner{Cache: cache, Workers: 4})
	if warm.Stats.CacheHits != warm.Stats.Evaluated {
		t.Errorf("warm run: %d hits for %d evaluations", warm.Stats.CacheHits, warm.Stats.Evaluated)
	}
	if warm.Stats.FreshEvals != 0 {
		t.Errorf("warm run simulated %d fresh configs, want 0", warm.Stats.FreshEvals)
	}
	if a, b := marshal(cold.Frontier), marshal(warm.Frontier); !bytes.Equal(a, b) {
		t.Errorf("frontier bytes differ between cold and warm runs:\n%s\n%s", a, b)
	}
	if a, b := marshal(cold.Recommended), marshal(warm.Recommended); !bytes.Equal(a, b) {
		t.Errorf("recommendation differs between cold and warm runs:\n%s\n%s", a, b)
	}
}

// No returned point may be dominated by any point the run evaluated —
// even when the search is budget-truncated below convergence. The
// evaluated set is captured through the runner's OnPoint hook.
func TestAdvisorFrontierNeverDominatedByEvaluated(t *testing.T) {
	objs, _, err := searchQuery().resolve()
	if err != nil {
		t.Fatal(err)
	}
	for _, maxEvals := range []int{4, 9, 14, 0} {
		var mu sync.Mutex
		var seen []sweep.Point
		runner := &sweep.Runner{
			Cache: sweep.NewMemCache(),
			OnPoint: func(p sweep.Point) {
				mu.Lock()
				seen = append(seen, p)
				mu.Unlock()
			},
		}
		q := searchQuery()
		q.MaxEvals = maxEvals
		adv, err := (&Advisor{Runner: runner}).Run(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if maxEvals > 0 && adv.Stats.Evaluated > maxEvals {
			t.Errorf("max_evals=%d: evaluated %d", maxEvals, adv.Stats.Evaluated)
		}
		if len(seen) != adv.Stats.Evaluated {
			t.Fatalf("max_evals=%d: hook saw %d points, stats say %d", maxEvals, len(seen), adv.Stats.Evaluated)
		}
		for _, p := range adv.Frontier.Points {
			for i := range seen {
				vec := make([]float64, len(objs))
				ok := true
				for j, o := range objs {
					vec[j], ok = o.Extract(&seen[i])
					if !ok {
						break
					}
				}
				if ok && Dominates(vec, p.Values) {
					t.Errorf("max_evals=%d: returned point %s dominated by evaluated %s",
						maxEvals, p.Label, seen[i].Config.Label())
				}
			}
		}
	}
}

func TestAdvisorConstraintsAndRecommendation(t *testing.T) {
	// Unconstrained: recommendation minimizes time (first objective by
	// default ordering here).
	q := searchQuery()
	q.Objectives = []string{"time_per_iter_s", "energy_per_iter_j", "avg_power_w"}
	q.Minimize = "time_per_iter_s"
	a := &Advisor{Runner: &sweep.Runner{Cache: sweep.NewMemCache()}}
	adv, err := a.Run(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if adv.Recommended == nil {
		t.Fatal("no recommendation on an unconstrained feasible space")
	}
	fastest := adv.Recommended.Values[0]
	for _, p := range adv.Frontier.Points {
		if p.Values[0] < fastest {
			t.Errorf("recommended %s (%.4fs) is not the fastest frontier point (%s at %.4fs)",
				adv.Recommended.Label, fastest, p.Label, p.Values[0])
		}
	}
	if idx := adv.RecommendedIndex(); idx < 0 || adv.Frontier.Points[idx].Key != adv.Recommended.Key {
		t.Errorf("RecommendedIndex() = %d does not locate the recommendation", idx)
	}

	// A board-power budget must flip the recommendation to a capped
	// config and exclude over-budget points from the frontier.
	qc := searchQuery()
	qc.Objectives = []string{"time_per_iter_s", "energy_per_iter_j", "avg_power_w"}
	qc.Minimize = "time_per_iter_s"
	qc.Constraints.MaxBoardPowerW = 800 // 4xA100 well under 4x400W TDP
	advc, err := a.Run(context.Background(), qc)
	if err != nil {
		t.Fatal(err)
	}
	if advc.Recommended == nil {
		t.Fatal("no recommendation under a satisfiable power budget")
	}
	powIdx := 2
	for _, p := range advc.Frontier.Points {
		if p.Values[powIdx] > 800 {
			t.Errorf("frontier point %s draws %.0f W over the 800 W budget", p.Label, p.Values[powIdx])
		}
	}
	if advc.Stats.Infeasible == 0 {
		t.Error("an 800 W budget on this space should mark some points infeasible")
	}
	if advc.Recommended.Key == adv.Recommended.Key {
		t.Errorf("recommendation did not move under the power budget (still %s)", advc.Recommended.Label)
	}

	// An unsatisfiable budget yields an empty frontier with a note.
	qi := searchQuery()
	qi.Constraints.MaxTimePerIterS = 1e-9
	advi, err := a.Run(context.Background(), qi)
	if err != nil {
		t.Fatal(err)
	}
	if len(advi.Frontier.Points) != 0 || advi.Recommended != nil || advi.Note == "" {
		t.Errorf("unsatisfiable constraints: %d frontier points, rec %v, note %q",
			len(advi.Frontier.Points), advi.Recommended, advi.Note)
	}
}

// When every seed evaluation violates the constraints, the search must
// keep probing (anchored on everything evaluated, without decaying its
// budget) until it finds the feasible region — and then recover that
// region's exact frontier. Regression: an early version broke out of
// refinement as soon as the incumbent frontier was empty.
func TestAdvisorRecoversFromAllInfeasibleSeed(t *testing.T) {
	q := searchQuery()
	// seed_evals=1 seeds only the all-zeros corner: batch 8, fp16,
	// cap 100 W — the slowest configuration, excluded by this time
	// budget. Feasibility starts two cap steps away.
	q.SeedEvals = 1
	q.Constraints.MaxTimePerIterS = 0.4
	adv, err := (&Advisor{Runner: &sweep.Runner{Cache: sweep.NewMemCache()}}).
		Run(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(adv.Frontier.Points) == 0 {
		t.Fatalf("advisor gave up with an unexplored feasible region: %+v", adv.Stats)
	}
	if adv.Stats.Infeasible == 0 {
		t.Error("the seed corner should have been infeasible")
	}
	for _, p := range adv.Frontier.Points {
		if p.Values[0] > 0.4 {
			t.Errorf("frontier point %s breaks the 0.4 s budget (%.4f s)", p.Label, p.Values[0])
		}
	}

	// The recovered frontier must be the exact frontier of the feasible
	// subset of the exhaustively evaluated space.
	objs, _, err := q.resolve()
	if err != nil {
		t.Fatal(err)
	}
	space, err := NewSpace(&q.Spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := make([]core.Config, len(space.Cands))
	for i, c := range space.Cands {
		cfgs[i] = c.Config
	}
	res, err := (&sweep.Runner{Cache: sweep.NewMemCache()}).Run(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	var vecs [][]float64
	var keys []string
	for i := range res.Points {
		p := &res.Points[i]
		if !q.Constraints.feasible(p) {
			continue
		}
		vec := make([]float64, len(objs))
		for j, o := range objs {
			vec[j], _ = o.Extract(p)
		}
		vecs = append(vecs, vec)
		keys = append(keys, p.Key)
	}
	idx := Front(vecs, keys)
	if len(idx) != len(adv.Frontier.Points) {
		t.Fatalf("recovered %d frontier points, exhaustive feasible frontier has %d",
			len(adv.Frontier.Points), len(idx))
	}
	for i, j := range idx {
		if adv.Frontier.Points[i].Key != keys[j] {
			t.Errorf("frontier point %d: key %s, want %s", i, adv.Frontier.Points[i].Key, keys[j])
		}
	}
}

func TestQueryValidateAndParse(t *testing.T) {
	q := searchQuery()
	n, err := q.Validate()
	if err != nil {
		t.Fatal(err)
	}
	if n != 32 {
		t.Errorf("Validate() = %d candidates, want 32", n)
	}
	bad := []Query{
		{Spec: searchQuery().Spec, Objectives: []string{"nope"}},
		{Spec: searchQuery().Spec, Objectives: []string{"avg_power_w", "avg_power_w"}},
		{Spec: searchQuery().Spec, Minimize: "energy_per_iter_j", Objectives: []string{"avg_power_w"}},
		{Spec: searchQuery().Spec, SeedEvals: -1},
		{Spec: sweep.Spec{Models: []string{"GPT-3 XL"}}},
	}
	for i, b := range bad {
		if _, err := b.Validate(); err == nil {
			t.Errorf("bad query %d validated", i)
		}
	}

	if _, err := ParseQuery(strings.NewReader(`{"spec":{"gpus":["A100"],"models":["GPT-3 XL"]},"objektives":[]}`)); err == nil {
		t.Error("unknown query field accepted")
	}
	parsed, err := ParseQuery(strings.NewReader(`{"name":"q","spec":{"gpus":["A100"],"models":["GPT-3 XL"]},"objectives":["avg_power_w"],"constraints":{"max_gpus":8}}`))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Name != "q" || parsed.Constraints.MaxGPUs != 8 || len(parsed.Objectives) != 1 {
		t.Errorf("parsed query %+v", parsed)
	}
}

func TestAdvisorCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := (&Advisor{Runner: &sweep.Runner{Cache: sweep.NewMemCache()}}).
		Run(ctx, searchQuery())
	if err == nil {
		t.Fatal("cancelled advisor run returned no error")
	}
}
