package core

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"

	"overlapsim/internal/exec"
	"overlapsim/internal/hw"
	"overlapsim/internal/model"
)

// The platform redesign replaced the closed hardware catalog with a
// name-keyed registry and gave hw.System a multi-node dimension.
// Canonical fingerprints are content addresses for persisted caches, so
// a config built from a registry name must hash byte-identically to one
// built from the legacy constructor — and both must match the pinned
// pre-redesign values of fingerprint_regression_test.go.
func TestRegistrySystemsFingerprintLikeConstructors(t *testing.T) {
	ctors := map[string]func() hw.System{
		"A100x4":  hw.SystemA100x4,
		"H100x4":  hw.SystemH100x4,
		"H100x8":  hw.SystemH100x8,
		"MI210x4": hw.SystemMI210x4,
		"MI250x4": hw.SystemMI250x4,
	}
	for name, ctor := range ctors {
		viaCtor := tinyCfg(FSDP)
		viaCtor.System = ctor()
		viaName, err := tinyCfg(FSDP).ResolveSystem(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		a, b := mustFingerprint(t, viaCtor), mustFingerprint(t, viaName)
		if a != b {
			t.Errorf("%s: registry name hashes %s, constructor %s", name, b, a)
		}
		ja, err := viaCtor.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		jb, err := viaName.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if string(ja) != string(jb) {
			t.Errorf("%s: canonical JSON differs between registry and constructor", name)
		}
	}
	// And the pinned pre-redesign hash still holds through the registry
	// path (the other systems are covered by the regression table).
	viaName, err := tinyCfg(FSDP).ResolveSystem("h100x4") // case-insensitive
	if err != nil {
		t.Fatal(err)
	}
	const want = "58a2ac4a1ae98dddd5a760a8d09b47a28f504651de154485f523b105d9c97eec"
	if got := mustFingerprint(t, viaName); got != want {
		t.Errorf("registry-resolved H100x4 fingerprint drifted:\n got %s\nwant %s", got, want)
	}
}

// Inert platform fields must canonicalize away: a node count of one, a
// NIC that is never crossed, and a fabric naming the vendor default all
// describe the same hardware as the bare system.
func TestCanonicalizeClearsInertPlatformFields(t *testing.T) {
	base := tinyCfg(FSDP)
	want := mustFingerprint(t, base)

	oneNode := base
	oneNode.System.Nodes = 1
	if mustFingerprint(t, oneNode) != want {
		t.Error("Nodes == 1 must hash like the single-node system")
	}
	nicked := base
	nic := hw.DefaultNIC()
	nicked.System.Nodes = 1
	nicked.System.NIC = &nic
	if mustFingerprint(t, nicked) != want {
		t.Error("a NIC on a single-node system is inert and must not change the address")
	}
	vendorFabric := base
	vendorFabric.System.Fabric = hw.FabricSwitched // H100's default
	if mustFingerprint(t, vendorFabric) != want {
		t.Error("the vendor-default fabric spelled out must not change the address")
	}
	defaultNIC := base
	defaultNIC.System = hw.NewMultiNode(hw.H100(), 4, 2)
	explicitNIC := defaultNIC
	nic2 := hw.DefaultNIC()
	explicitNIC.System.NIC = &nic2
	if mustFingerprint(t, defaultNIC) != mustFingerprint(t, explicitNIC) {
		t.Error("the default NIC spelled out must hash like the implicit default")
	}

	// Genuine platform changes must move the address.
	seen := map[string]string{want: "base"}
	for name, mutate := range map[string]func(*Config){
		"nodes":  func(c *Config) { c.System = hw.NewMultiNode(hw.H100(), 4, 2) },
		"fabric": func(c *Config) { c.System.Fabric = hw.FabricMesh },
		"nic": func(c *Config) {
			c.System = hw.NewMultiNode(hw.H100(), 4, 2)
			c.System.NIC = &hw.NICSpec{BWGBs: 25, Latency: 5e-6}
		},
	} {
		cfg := base
		mutate(&cfg)
		fp := mustFingerprint(t, cfg)
		if prev, dup := seen[fp]; dup {
			t.Errorf("%s: collides with %s", name, prev)
		}
		seen[fp] = name
	}
}

// loadTestHardware registers the test's custom GPU and systems exactly
// once (the hw registry is process-global).
var loadTestHardware = sync.OnceValue(func() error {
	return hw.Load(strings.NewReader(`{
	  "gpus": [{
	    "name": "TestChip",
	    "vendor": "NVIDIA",
	    "year": 2026,
	    "sms": 160,
	    "boost_mhz": 2000,
	    "mem_gb": 96,
	    "mem_bw_gbs": 4000,
	    "link_bw_gbs": 1200,
	    "tdp_w": 900,
	    "vector_tflops": {"fp32": 80, "fp16": 160, "bf16": 160},
	    "matrix_tflops": {"tf32": 500, "fp32": 500, "fp16": 1000, "bf16": 1000}
	  }],
	  "systems": [
	    {"name": "TestChip-node", "gpu": "TestChip", "gpus_per_node": 4},
	    {"name": "TestChip-pod", "gpu": "TestChip", "gpus_per_node": 4, "nodes": 2,
	     "nic": {"bw_gbs": 50, "latency_s": 1e-5}}
	  ]
	}`))
})

// A JSON-loaded custom system must run through core.Run with zero edits
// to this package — the acceptance bar for the open platform layer.
func TestCustomSystemRunsThroughCore(t *testing.T) {
	if err := loadTestHardware(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"TestChip-node", "TestChip-pod"} {
		cfg, err := tinyCfg(FSDP).ResolveSystem(name)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Overlapped.Mean.E2E <= 0 || res.Sequential.Mean.E2E <= 0 {
			t.Errorf("%s: degenerate iteration times", name)
		}
		if _, err := cfg.Fingerprint(); err != nil {
			t.Errorf("%s: fingerprint: %v", name, err)
		}
	}
}

// For a bandwidth-bound workload, spanning two nodes over a NIC must
// cost more than the same GPU count on one NVLink node: the inter-node
// tier is the bottleneck the paper's hierarchical-interconnect
// discussion predicts. (Tiny latency-bound payloads can legitimately go
// the other way — hierarchical rings take fewer latency steps.)
func TestMultiNodeSlowerThanSingleNode(t *testing.T) {
	single := tinyCfg(FSDP)
	single.Model = model.GPT3XL()
	single.System = hw.NewSystem(hw.H100(), 8)
	multi := single
	multi.System = hw.NewMultiNode(hw.H100(), 4, 2)

	rs, err := Run(context.Background(), single)
	if err != nil {
		t.Fatal(err)
	}
	rm, err := Run(context.Background(), multi)
	if err != nil {
		t.Fatal(err)
	}
	if rm.Overlapped.Mean.E2E <= rs.Overlapped.Mean.E2E {
		t.Errorf("8 GPUs across 2 nodes (%.3fms) not slower than one node (%.3fms)",
			rm.Overlapped.Mean.E2E*1e3, rs.Overlapped.Mean.E2E*1e3)
	}
}

// The concurrent modes must each draw from an independent deterministic
// jitter stream: RunMode reproduces Run's measurement for the same mode
// regardless of what the sibling simulated, and the seed actually feeds
// the stream. (Exact run-to-run reproducibility of Run itself is covered
// by TestJitterReproducible in core_test.go.)
func TestJitterModeStreams(t *testing.T) {
	cfg := tinyCfg(FSDP)
	cfg.JitterSigma = 0.05
	cfg.Seed = 42

	a, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	// RunMode must agree with Run for the same mode: the per-mode seed
	// derivation is shared, not dependent on who launches the simulation.
	ovl, err := RunMode(context.Background(), cfg, exec.Overlapped)
	if err != nil {
		t.Fatal(err)
	}
	if ovl.Mean.E2E != a.Overlapped.Mean.E2E {
		t.Error("RunMode and Run disagree on the overlapped jitter stream")
	}

	// A different seed must actually move the measurement.
	cfg2 := cfg
	cfg2.Seed = 43
	c, err := Run(context.Background(), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if c.Overlapped.Mean.E2E == a.Overlapped.Mean.E2E {
		t.Error("changing the seed left the jittered measurement unchanged")
	}
}

// The two modes must not share a jitter stream: their derived seeds (and
// hence first draws) differ for every base seed.
func TestModeSeedsIndependent(t *testing.T) {
	for _, seed := range []int64{0, 1, 42, -7, math.MaxInt64} {
		o, s := modeSeed(seed, exec.Overlapped), modeSeed(seed, exec.Sequential)
		if o == s {
			t.Errorf("seed %d: both modes derived %d", seed, o)
		}
		if o == seed && s == seed {
			t.Errorf("seed %d: derivation is the identity for both modes", seed)
		}
	}
	if modeSeed(1, exec.Overlapped) != modeSeed(1, exec.Overlapped) {
		t.Error("mode seed derivation must be deterministic")
	}
}
