package sim

import (
	"context"
	"errors"
	"testing"
)

func TestRunContextCancelled(t *testing.T) {
	e := NewEngine(nil)
	s := e.NewStream("s", 0)
	e.NewTask("work", KindHost, 1, nil, s)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := e.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext = %v, want context.Canceled", err)
	}
}

func TestRunContextBackgroundCompletes(t *testing.T) {
	e := NewEngine(nil)
	s := e.NewStream("s", 0)
	task := e.NewTask("work", KindHost, 1, nil, s)
	if err := e.RunContext(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !task.Done() || task.End() != 1 {
		t.Errorf("task done=%v end=%g, want done at t=1", task.Done(), task.End())
	}
}
