package calib

import (
	"bytes"
	"context"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"overlapsim/internal/collective"
	"overlapsim/internal/hw"
	"overlapsim/internal/topo"
)

// Regenerate the golden overlay after an intentional model change with:
//
//	go test ./internal/calib -run TestFitGoldenOverlay -update-golden
var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata golden files with the current fit output")

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}

func checkClose(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if e := relErr(got, want); e > tol {
		t.Errorf("%s: fitted %.6g, ground truth %.6g (rel err %.2g > %.2g)", name, got, want, e, tol)
	}
}

// TestFitRecoversGroundTruth is the fit's accuracy contract: synthetic
// measurements generated exactly from the model's closed forms must
// recover the generating parameters to float precision, because every
// fitter is an exact least-squares inversion of those forms.
func TestFitRecoversGroundTruth(t *testing.T) {
	gt, gtSys := groundTruth(t, nil, "H100x8")
	p := syntheticProfile(t, "H100", "H100x8", gt, gtSys, false)

	f, err := Fit(context.Background(), p, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const tol = 1e-6
	checkClose(t, "MaxEff", f.GPU.MaxEff, gt.MaxEff, tol)
	checkClose(t, "KHalfMatrix", f.GPU.KHalfMatrix, gt.KHalfMatrix, tol)
	checkClose(t, "KHalfMatrixTF32", f.GPU.KHalfMatrixTF32, gt.KHalfMatrixTF32, tol)
	checkClose(t, "KHalfVector", f.GPU.KHalfVector, gt.KHalfVector, tol)
	checkClose(t, "MemHeadroom", f.GPU.MemHeadroom, gt.MemHeadroom, tol)
	checkClose(t, "AlgEff", f.GPU.AlgEff, gt.AlgEff, tol)
	checkClose(t, "LinkLatency", f.GPU.LinkLatency, gt.LinkLatency, tol)
	checkClose(t, "IdleW", f.GPU.Power.IdleW, gt.Power.IdleW, tol)

	if f.GPU.Name != "H100-cal" || f.System.Name != "H100x8-cal" {
		t.Errorf("suffix naming: got %q / %q", f.GPU.Name, f.System.Name)
	}
	if f.System.GPU != f.GPU {
		t.Error("fitted system does not carry the fitted GPU")
	}
}

// TestFitRecoversNICTier runs the same contract on a 2-node pod: the
// spanning collective points must land the NIC tier's efficiency and
// latency, with the intra-node parameters untouched by the extra tier.
func TestFitRecoversNICTier(t *testing.T) {
	reg := podRegistry(t)
	gt, gtSys := groundTruth(t, reg, "CalPod")
	p := syntheticProfile(t, "H100", "CalPod", gt, gtSys, false)

	f, err := Fit(context.Background(), p, FitOptions{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	const tol = 1e-6
	checkClose(t, "AlgEff", f.GPU.AlgEff, gt.AlgEff, tol)
	checkClose(t, "LinkLatency", f.GPU.LinkLatency, gt.LinkLatency, tol)
	if f.System.NIC == nil {
		t.Fatal("multi-node fit produced no NIC spec")
	}
	checkClose(t, "NIC.AlgEff", f.System.NIC.AlgEff, gtSys.NIC.AlgEff, tol)
	checkClose(t, "NIC.Latency", f.System.NIC.Latency, gtSys.NIC.Latency, tol)
	checkClose(t, "NIC.BWGBs", f.System.NIC.BWGBs, gtSys.NIC.BWGBs, tol)
}

// TestNICDecomposeMirrorsCollective pins the fitter's two-tier
// decomposition to the collective package's: for every op, rank count
// and payload, reassembling nicDecompose's phases must reproduce
// collective.Time exactly. This is what licenses the NIC fitter to
// subtract the intra-node phase and regress on the residual.
func TestNICDecomposeMirrorsCollective(t *testing.T) {
	reg := podRegistry(t)
	sys, err := reg.System("CalPod")
	if err != nil {
		t.Fatal(err)
	}
	fabric := topo.ForSystem(sys)
	nic := sys.NICSpec()
	hop := hopFactor(sys)
	ops := []collective.Op{
		collective.AllReduce, collective.AllGather,
		collective.ReduceScatter, collective.Broadcast, collective.AllToAll,
	}
	for _, op := range ops {
		for ranks := 2; ranks <= sys.TotalGPUs(); ranks++ {
			for _, mb := range []float64{0.25, 4, 64} {
				d := collective.Desc{Name: op.String(), Op: op, Bytes: mb * (1 << 20), N: ranks}
				intraT, nicWire, nicSteps := nicDecompose(d, sys, sys.GPU, hop)
				got := intraT + nicWire/nic.BW() + nicSteps*nic.Latency
				want := collective.Time(d, fabric)
				if relErr(got, want) > 1e-12 {
					t.Errorf("%s ranks=%d bytes=%g: mirror %.12g, collective.Time %.12g",
						op, ranks, d.Bytes, got, want)
				}
			}
		}
	}
}

// TestFitGoldenOverlay is the byte-determinism contract: equal profile
// bytes produce byte-identical overlays, now and across revisions
// (golden file). The profile includes step measurements, so the power
// fitter's simulation replay is inside the determinism boundary.
func TestFitGoldenOverlay(t *testing.T) {
	gt, gtSys := groundTruth(t, nil, "H100x8")
	p := syntheticProfile(t, "H100", "H100x8", gt, gtSys, true)

	overlay := func() []byte {
		f, err := Fit(context.Background(), p, FitOptions{})
		if err != nil {
			t.Fatal(err)
		}
		out, err := f.Overlay()
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := overlay(), overlay()
	if !bytes.Equal(a, b) {
		t.Fatal("two fits of the same profile produced different overlay bytes")
	}

	golden := filepath.Join("testdata", "overlay_h100x8.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, a, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, len(a))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden overlay (regenerate with -update-golden): %v", err)
	}
	if !bytes.Equal(a, want) {
		t.Errorf("overlay drifted from golden file (regenerate with -update-golden if intended)\ngot:\n%s\nwant:\n%s", a, want)
	}
}

// TestOverlayFixedPoint closes the loop: fitting in override mode,
// loading the overlay, and re-fitting the same profile against the
// calibrated hardware must reproduce the overlay byte for byte. The
// fitters are exact inversions of the measurements, so a second pass
// has nothing left to move.
func TestOverlayFixedPoint(t *testing.T) {
	gt, gtSys := groundTruth(t, nil, "H100x8")
	p := syntheticProfile(t, "H100", "H100x8", gt, gtSys, false)

	f1, err := Fit(context.Background(), p, FitOptions{Override: true})
	if err != nil {
		t.Fatal(err)
	}
	if f1.GPU.Name != "H100" || f1.System.Name != "H100x8" {
		t.Fatalf("override fit must keep stock names, got %q / %q", f1.GPU.Name, f1.System.Name)
	}
	o1, err := f1.Overlay()
	if err != nil {
		t.Fatal(err)
	}

	reg := hw.NewRegistry()
	if err := reg.Load(bytes.NewReader(o1)); err != nil {
		t.Fatalf("overlay does not load: %v", err)
	}
	if g := reg.GPU("H100"); relErr(g.MaxEff, gt.MaxEff) > 1e-6 {
		t.Errorf("loaded overlay lost the fitted MaxEff: %g", g.MaxEff)
	}
	loaded, err := reg.System("H100x8")
	if err != nil {
		t.Fatal(err)
	}
	if c := loaded.Canonical(); c.Name != f1.System.Name || c.N != f1.System.N {
		t.Errorf("loaded system shape drifted: %+v vs %+v", c, f1.System)
	}

	f2, err := Fit(context.Background(), p, FitOptions{Registry: reg, Override: true})
	if err != nil {
		t.Fatal(err)
	}
	o2, err := f2.Overlay()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(o1, o2) {
		t.Errorf("re-fit against the calibrated hardware moved the overlay\nfirst:\n%s\nsecond:\n%s", o1, o2)
	}
}
