package collective

import (
	"testing"

	"overlapsim/internal/hw"
	"overlapsim/internal/topo"
)

func TestTreeBeatsRingForSmallPayloads(t *testing.T) {
	tp := topo.ForSystem(hw.NewSystem(hw.H100(), 8))
	small := Desc{Op: AllReduce, Bytes: 4 << 10, N: 8}
	if BestAlgo(small, tp) != Tree {
		t.Errorf("4KiB all-reduce over 8 ranks should pick tree (ring %g vs tree %g)",
			TimeWith(small, tp, Ring), TimeWith(small, tp, Tree))
	}
	big := Desc{Op: AllReduce, Bytes: 1 << 30, N: 8}
	if BestAlgo(big, tp) != Ring {
		t.Error("1GiB all-reduce should pick ring")
	}
}

func TestAutoNeverSlower(t *testing.T) {
	tp := topo.ForSystem(hw.NewSystem(hw.MI250(), 4))
	for _, bytes := range []float64{1 << 10, 1 << 16, 1 << 22, 1 << 28} {
		d := Desc{Op: AllReduce, Bytes: bytes, N: 4}
		auto := TimeWith(d, tp, Auto)
		if auto > TimeWith(d, tp, Ring)+1e-15 || auto > TimeWith(d, tp, Tree)+1e-15 {
			t.Errorf("auto slower than a fixed algorithm at %g bytes", bytes)
		}
	}
}

func TestTreeUnsupportedFallsBack(t *testing.T) {
	tp := topo.ForSystem(hw.NewSystem(hw.H100(), 4))
	d := Desc{Op: ReduceScatter, Bytes: 1 << 10, N: 4}
	if TimeWith(d, tp, Tree) != Time(d, tp) {
		t.Error("reduce-scatter has no tree variant; must fall back to ring")
	}
	if BestAlgo(d, tp) != Ring {
		t.Error("unsupported op must report ring")
	}
}

func TestTreeDepth(t *testing.T) {
	cases := map[int]int{2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4}
	for n, want := range cases {
		if got := treeDepth(n); got != want {
			t.Errorf("treeDepth(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestTreeSteps(t *testing.T) {
	ar := Desc{Op: AllReduce, Bytes: 1, N: 8}
	if TreeSteps(ar) != 6 {
		t.Errorf("tree all-reduce over 8 ranks: %d steps, want 6", TreeSteps(ar))
	}
	bc := Desc{Op: Broadcast, Bytes: 1, N: 8}
	if TreeSteps(bc) != 3 {
		t.Errorf("tree broadcast: %d steps, want 3", TreeSteps(bc))
	}
}

func TestAlgoString(t *testing.T) {
	if Ring.String() != "ring" || Tree.String() != "tree" || Auto.String() != "auto" {
		t.Error("algo names")
	}
}
