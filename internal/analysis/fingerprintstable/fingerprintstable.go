// Package fingerprintstable guards the canonical config encoding that
// content-addresses every sweep and advisor cache. It walks the struct
// type graph reachable from core.Config's canonical JSON and enforces
// the change discipline that has kept fingerprints byte-identical
// across three redesigns:
//
//   - every exported field carries an explicit json tag, so a rename of
//     the Go identifier cannot silently rename the encoded key;
//   - fields frozen in the baseline must keep exactly their recorded
//     tag — renaming the key or toggling omitempty changes bytes, which
//     aliases or orphans every cached result addressed by the old
//     encoding;
//   - fields added after the freeze must be omitempty, so configs that
//     do not use the new knob keep their pre-existing fingerprints (the
//     TPDegree/Nodes/Fabric/NIC discipline from the strategy and
//     platform redesigns).
//
// Types with a custom MarshalJSON (core.Parallelism's legacy-enum
// encoding) are their own contract and stop the walk. A deliberate
// encoding change is made by bumping core's fingerprintVersion and
// regenerating Baseline together (`overlaplint -write-baseline`) — the
// analyzer's error message says so, which is the point: the two must
// never drift apart silently.
package fingerprintstable

import (
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"strings"

	"overlapsim/internal/analysis/driver"
)

// Config parameterizes the analyzer for tests; the package-level
// Analyzer uses the repository root and baseline below.
type Config struct {
	// RootPkg and RootType name the struct whose canonical JSON is the
	// fingerprint input.
	RootPkg, RootType string
	// Baseline maps "pkgpath.Type.Field" to the exact json tag value
	// frozen with the current fingerprintVersion.
	Baseline map[string]string
}

// Analyzer checks overlapsim's core.Config graph against Baseline.
var Analyzer = New(Config{
	RootPkg:  "overlapsim/internal/core",
	RootType: "Config",
	Baseline: Baseline,
})

// New returns the analyzer for the given root and baseline.
func New(cfg Config) *driver.Analyzer {
	return &driver.Analyzer{
		Name: "fingerprintstable",
		Doc: "walk the struct graph reachable from the canonical config encoding " +
			"and require explicit json tags, baseline-exact tags on frozen " +
			"fields, and omitempty on fields added since the freeze — the " +
			"change shapes that break fingerprint (cache-address) compatibility",
		Run: func(pass *driver.Pass) error {
			if pass.Pkg.Path() != cfg.RootPkg {
				return nil
			}
			root := pass.Pkg.Scope().Lookup(cfg.RootType)
			if root == nil {
				return fmt.Errorf("root type %s not found in %s", cfg.RootType, cfg.RootPkg)
			}
			walk(root.Type(), func(field *types.Var, key, tag string, hasTag bool) {
				switch {
				case !hasTag || strings.HasPrefix(tag, ","):
					pass.Reportf(field.Pos(), "%s is reachable from the canonical config encoding but has no explicit json name: tag it json:%q (frozen fields) or json:%q (new fields) so renaming the Go field cannot change fingerprint bytes", key, field.Name(), field.Name()+",omitempty")
				case cfg.Baseline[key] != "":
					if tag != cfg.Baseline[key] {
						pass.Reportf(field.Pos(), "%s changes the frozen canonical encoding: json tag is %q but the fingerprint baseline froze %q — this re-addresses every cached result; if the change is deliberate, bump fingerprintVersion and regenerate the baseline together", key, tag, cfg.Baseline[key])
					}
				default:
					if !hasOption(tag, "omitempty") {
						pass.Reportf(field.Pos(), "%s is new since the fingerprint freeze but is not omitempty: configs that leave it zero would change encoding and lose their cache addresses — tag it json:%q (and add it to the baseline)", key, field.Name()+",omitempty")
					}
				}
			})
			return nil
		},
	}
}

// A BaselineEntry is one frozen field of the canonical encoding.
type BaselineEntry struct{ Key, Tag string }

// EmitBaseline computes the baseline map from the current json tags of
// the default root's type graph — the content of baseline.go after a
// deliberate re-freeze. Fields still missing explicit tags are skipped;
// the checking run reports them.
func EmitBaseline(prog *driver.Program) ([]BaselineEntry, error) {
	const rootPkg, rootType = "overlapsim/internal/core", "Config"
	for _, pkg := range prog.Packages {
		if pkg.Path != rootPkg {
			continue
		}
		root := pkg.Types.Scope().Lookup(rootType)
		if root == nil {
			return nil, fmt.Errorf("root type %s not found in %s", rootType, rootPkg)
		}
		var entries []BaselineEntry
		walk(root.Type(), func(_ *types.Var, key, tag string, hasTag bool) {
			if hasTag && !strings.HasPrefix(tag, ",") {
				entries = append(entries, BaselineEntry{Key: key, Tag: tag})
			}
		})
		sort.Slice(entries, func(i, j int) bool { return entries[i].Key < entries[j].Key })
		return entries, nil
	}
	return nil, fmt.Errorf("package %s not among the loaded packages", rootPkg)
}

// walk descends through the types the encoder would visit, calling
// onField for every exported non-embedded struct field that
// participates in the encoding.
func walk(root types.Type, onField func(field *types.Var, key, tag string, hasTag bool)) {
	seen := map[*types.Named]bool{}
	var visit func(t types.Type)
	visit = func(t types.Type) {
		switch t := t.(type) {
		case *types.Pointer:
			visit(t.Elem())
		case *types.Slice:
			visit(t.Elem())
		case *types.Array:
			visit(t.Elem())
		case *types.Map:
			visit(t.Elem()) // keys encode via their String/TextMarshaler form
		case *types.Named:
			if seen[t] {
				return
			}
			seen[t] = true
			if hasCustomMarshal(t) {
				return // its encoding is its own (tested) contract, not tag-driven
			}
			if st, ok := t.Underlying().(*types.Struct); ok {
				prefix := t.Obj().Name()
				if p := t.Obj().Pkg(); p != nil {
					prefix = p.Path() + "." + prefix
				}
				for i := 0; i < st.NumFields(); i++ {
					field := st.Field(i)
					if !field.Exported() {
						continue // encoding/json ignores unexported fields
					}
					tag, hasTag := reflect.StructTag(st.Tag(i)).Lookup("json")
					if tag == "-" {
						continue // excluded from the encoding entirely
					}
					if !field.Embedded() {
						onField(field, prefix+"."+field.Name(), tag, hasTag)
					}
					visit(field.Type())
				}
				return
			}
			visit(t.Underlying())
		}
	}
	visit(root)
}

// hasOption reports whether the json tag value carries the option.
func hasOption(tag, opt string) bool {
	for _, o := range strings.Split(tag, ",")[1:] {
		if o == opt {
			return true
		}
	}
	return false
}

// hasCustomMarshal reports whether T or *T defines MarshalJSON.
func hasCustomMarshal(t *types.Named) bool {
	for _, typ := range []types.Type{t, types.NewPointer(t)} {
		if obj, _, _ := types.LookupFieldOrMethod(typ, true, t.Obj().Pkg(), "MarshalJSON"); obj != nil {
			if _, ok := obj.(*types.Func); ok {
				return true
			}
		}
	}
	return false
}
