package calib

import (
	"fmt"
	"io"

	"overlapsim/internal/report"
)

// reportHeaders are the per-scenario error table columns.
var reportHeaders = []string{
	"scenario", "measured ms",
	"stock ms", "stock err",
	"cal ms", "cal err",
	"stock W err", "cal W err",
	"stock J err", "cal J err",
}

func scenarioCells(scs []Scenario) [][]string {
	rows := make([][]string, 0, len(scs))
	for _, sc := range scs {
		rows = append(rows, []string{
			sc.Label, report.Ms(sc.MeasuredStepS),
			report.Ms(sc.Stock.StepS), report.Pct(sc.Stock.StepErr),
			report.Ms(sc.Calibrated.StepS), report.Pct(sc.Calibrated.StepErr),
			report.Pct(sc.Stock.PowerErr), report.Pct(sc.Calibrated.PowerErr),
			report.Pct(sc.Stock.EnergyErr), report.Pct(sc.Calibrated.EnergyErr),
		})
	}
	return rows
}

// WriteTable renders the validation report as an aligned text table
// followed by the aggregate error lines.
func (r *Report) WriteTable(w io.Writer) error {
	if err := report.Table(w, reportHeaders, scenarioCells(r.Scenarios)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "\nstock      MAPE %s (step %s, energy %s, power %s)\n",
		report.Pct(r.StockError.MAPE), report.Pct(r.StockError.StepMAPE),
		report.Pct(r.StockError.EnergyMAPE), report.Pct(r.StockError.PowerMAPE)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "calibrated MAPE %s (step %s, energy %s, power %s)\n",
		report.Pct(r.CalibratedError.MAPE), report.Pct(r.CalibratedError.StepMAPE),
		report.Pct(r.CalibratedError.EnergyMAPE), report.Pct(r.CalibratedError.PowerMAPE)); err != nil {
		return err
	}
	verdict := "calibration improved the aggregate error"
	if !r.Improved {
		verdict = "calibration did NOT improve the aggregate error"
	}
	_, err := fmt.Fprintf(w, "%s\n", verdict)
	return err
}

// WriteCSV renders the per-scenario table as CSV with the same columns.
func (r *Report) WriteCSV(w io.Writer) error {
	return report.CSV(w, reportHeaders, scenarioCells(r.Scenarios))
}

// BenchRows renders the report as Markdown table rows for BENCH.md's
// accuracy trajectory: one row per scenario plus an aggregate row.
func (r *Report) BenchRows(w io.Writer) error {
	for _, sc := range r.Scenarios {
		if _, err := fmt.Fprintf(w, "| %s | %s | %s | %s | %s | %s |\n",
			sc.Label, report.Ms(sc.MeasuredStepS),
			report.Pct(sc.Stock.StepErr), report.Pct(sc.Calibrated.StepErr),
			report.Pct(sc.Stock.PowerErr), report.Pct(sc.Calibrated.PowerErr)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "| **aggregate MAPE** | — | %s | %s | %s | %s |\n",
		report.Pct(r.StockError.MAPE), report.Pct(r.CalibratedError.MAPE),
		report.Pct(r.StockError.PowerMAPE), report.Pct(r.CalibratedError.PowerMAPE))
	return err
}
