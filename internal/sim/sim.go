// Package sim implements a deterministic discrete-event simulation engine
// with fluid (rate-based) task execution.
//
// The engine models a set of streams (FIFO command queues, one or more per
// device) executing tasks. A task carries an abstract amount of work (FLOPs
// for compute kernels, bytes for communication) and consumes it at a rate
// that a Platform recomputes every time the set of running tasks changes.
// Between such epochs all rates are constant, so task completion times are
// exact; this is the classic fluid processor-sharing formulation used by
// architectural simulators to model bandwidth and execution-unit contention
// without cycle-level detail.
//
// Dependencies form a DAG across streams: a task starts only when all its
// dependencies have finished and it is at the head of every stream it is
// enqueued on. Enqueuing one task on several streams models rendezvous
// operations such as collectives, which occupy the communication queue of
// every participating GPU simultaneously.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
)

// Kind classifies a task for rate computation and tracing.
type Kind int

// Task kinds.
const (
	// KindCompute is a compute kernel (work measured in FLOPs).
	KindCompute Kind = iota
	// KindComm is a communication operation (work measured in bytes on the
	// wire per participant).
	KindComm
	// KindHost is host-side or fixed-latency work (work measured in
	// seconds; executed at rate 1).
	KindHost
)

// String returns a short human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case KindCompute:
		return "compute"
	case KindComm:
		return "comm"
	case KindHost:
		return "host"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// state is the lifecycle of a task.
type state int

const (
	statePending state = iota
	stateRunning
	stateDone
)

// Task is one unit of simulated work. Create tasks with Engine.NewTask and
// configure them before Engine.Run is called.
type Task struct {
	name    string
	kind    Kind
	work    float64
	payload any

	streams []*Stream
	deps    int
	succs   []*Task
	onDone  []func(now float64)

	remaining float64
	rate      float64
	st        state
	started   bool
	start     float64
	end       float64

	seq    int     // creation order, for deterministic iteration
	eng    *Engine // owning engine (for slab allocation in After)
	mirror *Task   // class-representative counterpart when collapsed (see symmetry.go)
}

// Name returns the task's diagnostic name.
func (t *Task) Name() string { return t.name }

// Kind returns the task's kind.
func (t *Task) Kind() Kind { return t.kind }

// Work returns the total abstract work of the task.
func (t *Task) Work() float64 { return t.work }

// Payload returns the opaque payload attached at creation (for example a
// kernel or collective descriptor used by the Platform to compute rates).
func (t *Task) Payload() any { return t.payload }

// Streams returns the streams the task occupies.
func (t *Task) Streams() []*Stream { return t.streams }

// SetRate sets the task's current execution rate in work units per second.
// It must only be called by the Platform from within Rates.
func (t *Task) SetRate(r float64) {
	if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
		//overlaplint:allow nopanic engine invariant: rates are computed by the Platform, not user input; NaN or negative means a model bug
		panic(fmt.Sprintf("sim: invalid rate %v for task %q", r, t.name))
	}
	t.rate = r
}

// Rate returns the rate most recently assigned by the Platform.
func (t *Task) Rate() float64 { return t.rate }

// Start returns the simulated time at which the task started running. Valid
// only after the task has started.
func (t *Task) Start() float64 { return t.start }

// End returns the simulated time at which the task finished. Valid only
// after Engine.Run returns.
func (t *Task) End() float64 { return t.end }

// Done reports whether the task has finished.
func (t *Task) Done() bool { return t.st == stateDone }

// Running reports whether the task is currently executing.
func (t *Task) Running() bool { return t.st == stateRunning }

// After declares that t must not start before each of deps has finished.
// It must be called before Engine.Run.
func (t *Task) After(deps ...*Task) *Task {
	for _, d := range deps {
		if d == nil {
			continue
		}
		if d.st == stateDone {
			continue
		}
		if d.succs == nil && d.eng != nil {
			// First successor: hand out a small slab chunk instead of a
			// dedicated heap slice — most tasks gate only a couple of
			// followers, and fan-out tasks fall back to regular append
			// growth past the chunk.
			d.succs = d.eng.succChunk()
		}
		d.succs = append(d.succs, t)
		t.deps++
	}
	return t
}

// OnDone registers a callback invoked when the task completes. Callbacks may
// create new tasks and enqueue them on streams.
func (t *Task) OnDone(f func(now float64)) *Task {
	t.onDone = append(t.onDone, f)
	return t
}

// Stream is a FIFO command queue. Tasks enqueued on a stream execute in
// order; at most one task per stream runs at a time.
type Stream struct {
	name   string
	device int
	queue  []*Task
	head   int
	seq    int
	dirty  bool // queued for admission recheck (see Engine.markDirty)
}

// Name returns the stream's diagnostic name.
func (s *Stream) Name() string { return s.name }

// Device returns the device index the stream belongs to.
func (s *Stream) Device() int { return s.device }

// Len returns the number of tasks not yet completed on the stream.
func (s *Stream) Len() int { return len(s.queue) - s.head }

func (s *Stream) headTask() *Task {
	if s.head < len(s.queue) {
		return s.queue[s.head]
	}
	return nil
}

func (s *Stream) pop(t *Task) {
	if s.headTask() != t {
		//overlaplint:allow nopanic engine invariant: pop is only ever called on the stream head by the scheduler
		panic("sim: pop of non-head task")
	}
	s.queue[s.head] = nil
	s.head++
}

// Platform assigns execution rates to running tasks. Rates must be set via
// Task.SetRate for every task in running; a rate of zero stalls the task
// until the running set changes again.
type Platform interface {
	Rates(now float64, running []*Task)
}

// PlatformFunc adapts a function to the Platform interface.
type PlatformFunc func(now float64, running []*Task)

// Rates implements Platform.
func (f PlatformFunc) Rates(now float64, running []*Task) { f(now, running) }

// Observer is notified of every constant-rate segment of simulated time.
// Observers are used for power sampling and energy integration.
type Observer interface {
	Segment(t0, t1 float64, running []*Task)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(t0, t1 float64, running []*Task)

// Segment implements Observer.
func (f ObserverFunc) Segment(t0, t1 float64, running []*Task) { f(t0, t1, running) }

// Engine drives the simulation.
//
// The scheduler is incremental: instead of rescanning every stream and
// re-sorting the whole running set each epoch, the engine keeps a dirty
// set of streams whose head admissibility may have changed (initial
// creation, a pop exposing a new head, an enqueue on an empty queue, a
// dependency count reaching zero) and rechecks only those; the running
// set is kept ordered by task creation sequence through sorted insertion,
// so platforms observe exactly the ordering the original full-sort
// produced. Task objects and their small successor/stream slices come
// from slab arenas, turning graph construction into pointer bumps.
type Engine struct {
	platform  Platform
	streams   []*Stream
	tasks     []*Task
	running   []*Task // ordered by Task.seq
	observers []Observer
	now       float64
	nextSeq   int
	ran       bool

	dirty []*Stream // streams queued for admission recheck

	taskArena []Task  // slab the next tasks are carved from
	taskNext  int     // next free slot in taskArena
	succArena []*Task // slab for initial succ chunks
	succNext  int
	strmArena []*Stream // slab for per-task stream sets
	strmNext  int
	doneTmp   []*Task // retirement scratch, reused across epochs

	ghosts []*Task     // collapsed tasks awaiting timeline reconstruction (symmetry.go)
	pool   *Pool       // optional workers for wide epoch scans (parallel.go)
	scanSc []shardScan // per-shard scan scratch, padded against false sharing

	// Self-stats (see Stats). Plain ints, incremented from the single
	// scheduler goroutine: counting stays off the allocation path and
	// costs one add per event, so instrumented runs schedule
	// bit-identically to uninstrumented ones.
	stEpochs      int64
	stInstant     int64
	stAdmitPasses int64
	stRechecks    int64
	stAdmissions  int64
	stMaxRunning  int
	stSlabAllocs  int64
	stArenaBytes  int64
	stReserved    int64
	stCollapsed   int64
	stGhosts      int
}

// timeEps is the tolerance used when comparing simulated times and residual
// work, to absorb floating-point rounding across epochs.
const timeEps = 1e-12

// taskChunk is the slab granularity for task allocation when the caller
// did not Reserve capacity up front.
const taskChunk = 256

// succChunkLen is the successor capacity handed to a task on its first
// After edge; fan-out tasks grow past it with ordinary append doubling.
const succChunkLen = 2

// NewEngine returns an engine whose task rates are provided by p.
func NewEngine(p Platform) *Engine {
	if p == nil {
		p = PlatformFunc(func(now float64, running []*Task) {
			for _, t := range running {
				t.SetRate(1)
			}
		})
	}
	return &Engine{platform: p}
}

// Reserve pre-sizes the engine's task storage for about n additional
// tasks — one slab allocation instead of chunked growth. Builders that
// know their plan size call it once up front; it is purely an allocation
// hint and never required for correctness.
func (e *Engine) Reserve(n int) {
	if n <= 0 {
		return
	}
	e.stReserved += int64(n)
	if free := len(e.taskArena) - e.taskNext; free < n {
		e.taskArena = make([]Task, n)
		e.taskNext = 0
		e.noteSlab(int64(n) * taskBytes)
	}
	if cap(e.tasks)-len(e.tasks) < n {
		grown := make([]*Task, len(e.tasks), len(e.tasks)+n)
		copy(grown, e.tasks)
		e.tasks = grown
	}
	if free := len(e.succArena) - e.succNext; free < n*succChunkLen {
		e.succArena = make([]*Task, n*succChunkLen)
		e.succNext = 0
		e.noteSlab(int64(n*succChunkLen) * ptrBytes)
	}
	if free := len(e.strmArena) - e.strmNext; free < n {
		e.strmArena = make([]*Stream, n)
		e.strmNext = 0
		e.noteSlab(int64(n) * ptrBytes)
	}
}

// noteSlab records one arena slab allocation for Stats.
func (e *Engine) noteSlab(bytes int64) {
	e.stSlabAllocs++
	e.stArenaBytes += bytes
}

// allocTask carves the next task from the slab arena.
func (e *Engine) allocTask() *Task {
	if e.taskNext == len(e.taskArena) {
		e.taskArena = make([]Task, taskChunk)
		e.taskNext = 0
		e.noteSlab(taskChunk * taskBytes)
	}
	t := &e.taskArena[e.taskNext]
	e.taskNext++
	return t
}

// succChunk hands out a fixed-capacity successor slice from the slab.
func (e *Engine) succChunk() []*Task {
	if e.succNext+succChunkLen > len(e.succArena) {
		e.succArena = make([]*Task, taskChunk*succChunkLen)
		e.succNext = 0
		e.noteSlab(taskChunk * succChunkLen * ptrBytes)
	}
	c := e.succArena[e.succNext : e.succNext : e.succNext+succChunkLen]
	e.succNext += succChunkLen
	return c
}

// strmChunk hands out a fixed-capacity stream slice from the slab.
func (e *Engine) strmChunk(n int) []*Stream {
	if e.strmNext+n > len(e.strmArena) {
		size := taskChunk
		if size < n {
			size = n
		}
		e.strmArena = make([]*Stream, size)
		e.strmNext = 0
		e.noteSlab(int64(size) * ptrBytes)
	}
	c := e.strmArena[e.strmNext : e.strmNext : e.strmNext+n]
	e.strmNext += n
	return c
}

// markDirty queues a stream for an admission recheck. Admission state of
// a stream head changes only when the stream pops or gains a head, or
// when the head's dependency count reaches zero; every such event lands
// here, which is what lets admit skip untouched streams.
func (e *Engine) markDirty(s *Stream) {
	if !s.dirty {
		s.dirty = true
		e.dirty = append(e.dirty, s)
	}
}

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Tasks returns every task created on the engine, in creation order.
func (e *Engine) Tasks() []*Task { return e.tasks }

// AddObserver registers an observer for constant-rate segments.
func (e *Engine) AddObserver(o Observer) { e.observers = append(e.observers, o) }

// NewStream creates a stream bound to the given device index.
func (e *Engine) NewStream(name string, device int) *Stream {
	s := &Stream{name: name, device: device, seq: len(e.streams)}
	e.streams = append(e.streams, s)
	e.markDirty(s)
	return s
}

// NewTask creates a task with the given diagnostic name, kind, total work
// and opaque payload, enqueued on the given streams in order. Work must be
// non-negative; zero-work tasks complete immediately upon starting.
func (e *Engine) NewTask(name string, kind Kind, work float64, payload any, streams ...*Stream) *Task {
	if work < 0 || math.IsNaN(work) || math.IsInf(work, 0) {
		//overlaplint:allow nopanic engine invariant: task work is computed by executor code, not user input; NaN or negative means a model bug
		panic(fmt.Sprintf("sim: invalid work %v for task %q", work, name))
	}
	if len(streams) == 0 {
		//overlaplint:allow nopanic engine invariant: executors always enqueue tasks on at least one stream
		panic(fmt.Sprintf("sim: task %q enqueued on no stream", name))
	}
	t := e.allocTask()
	*t = Task{
		name:      name,
		kind:      kind,
		work:      work,
		payload:   payload,
		remaining: work,
		seq:       e.nextSeq,
		eng:       e,
	}
	e.nextSeq++
	// Dedup the stream set without a map: the overwhelmingly common case
	// is one or two streams, where a quadratic scan is both faster and
	// allocation-free. Rendezvous tasks over many streams stay quadratic
	// in their (small) stream count.
	t.streams = e.strmChunk(len(streams))
enqueue:
	for _, s := range streams {
		if s == nil {
			//overlaplint:allow nopanic engine invariant: executors never pass nil streams
			panic(fmt.Sprintf("sim: nil stream for task %q", name))
		}
		for _, prev := range t.streams {
			if prev == s {
				continue enqueue
			}
		}
		t.streams = append(t.streams, s)
		s.queue = append(s.queue, t)
		if len(s.queue)-s.head == 1 {
			// The task became the stream's head (the queue was drained):
			// its admissibility must be rechecked.
			e.markDirty(s)
		}
	}
	e.tasks = append(e.tasks, t)
	return t
}

// ErrDeadlock is returned by Run when unfinished tasks remain but none can
// make progress (circular dependencies, or every runnable task stalled at
// rate zero).
var ErrDeadlock = errors.New("sim: deadlock: unfinished tasks cannot make progress")

// Run executes the simulation until every task has completed. It returns
// ErrDeadlock (wrapped with diagnostics) if progress stops.
func (e *Engine) Run() error {
	//overlaplint:allow ctxflow compat entrypoint: Run() is the no-context convenience wrapper; cancellable callers use RunContext
	return e.RunContext(context.Background())
}

// RunContext executes the simulation like Run, additionally stopping
// between constant-rate epochs when ctx is cancelled. On cancellation it
// returns ctx.Err(); completed tasks keep their measurements but the
// simulation is not resumable.
func (e *Engine) RunContext(ctx context.Context) error {
	e.ran = true
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		e.admit()
		if len(e.running) == 0 {
			if e.pendingCount() == 0 {
				e.finalizeGhosts()
				return nil
			}
			return fmt.Errorf("%w: %s", ErrDeadlock, e.diagnose())
		}
		if len(e.running) > e.stMaxRunning {
			e.stMaxRunning = len(e.running)
		}
		e.stEpochs++
		e.platform.Rates(e.now, e.running)

		dt, stalled, instant := e.scanRunning()
		if instant {
			// Complete without advancing time (no observer segment).
			e.stInstant++
			e.finishCompleted()
			continue
		}
		if stalled {
			return fmt.Errorf("%w: all %d running tasks stalled at rate 0 at t=%g: %s",
				ErrDeadlock, len(e.running), e.now, e.diagnose())
		}

		t0, t1 := e.now, e.now+dt
		if len(e.observers) > 0 {
			for _, o := range e.observers {
				o.Segment(t0, t1, e.running)
			}
		}
		retiring := e.decrementRunning(dt)
		e.now = t1
		if retiring {
			e.finishCompleted()
		}
	}
}

// SetPool attaches a worker pool used to parallelize the per-epoch scan
// and decrement passes once the running set is wide enough to pay for
// the barrier. The pool is borrowed, not owned: the caller closes it.
// Pooled passes are bit-identical to serial ones — each shard computes
// the same per-task arithmetic, and the shard merge (an exact float min
// plus boolean ORs) is order-independent.
func (e *Engine) SetPool(p *Pool) { e.pool = p }

// poolMinRunning is the running-set width below which the per-epoch
// passes stay serial: under ~256 tasks the pool barrier costs more than
// the scan it splits.
const poolMinRunning = 256

// shardScan is one worker's slice of the fused epoch scan, padded so
// that adjacent workers' results never share a cache line.
type shardScan struct {
	dt       float64
	stalled  bool
	instant  bool
	retiring bool
	_        [117]byte
}

// scanRunning is the fused per-epoch pass over the running set: it finds
// instant completions (zero-work tasks, already-exhausted residuals),
// the stall condition, and the minimum-completion candidate that bounds
// the epoch — the quantities the scheduler previously collected in three
// separate scans.
func (e *Engine) scanRunning() (dt float64, stalled, instant bool) {
	if e.pool != nil && len(e.running) >= poolMinRunning {
		return e.scanRunningPooled()
	}
	dt = math.Inf(1)
	stalled = true
	for _, t := range e.running {
		if t.remaining <= timeEps {
			instant = true
		}
		if t.rate <= 0 {
			continue
		}
		stalled = false
		if d := t.remaining / t.rate; d < dt {
			dt = d
		}
	}
	return dt, stalled, instant
}

func (e *Engine) scanRunningPooled() (float64, bool, bool) {
	w := e.pool.Workers()
	if cap(e.scanSc) < w {
		e.scanSc = make([]shardScan, w)
	}
	res := e.scanSc[:w]
	for i := range res {
		res[i] = shardScan{dt: math.Inf(1), stalled: true}
	}
	e.pool.RunRange(len(e.running), func(shard, lo, hi int) {
		dt := math.Inf(1)
		stalled := true
		instant := false
		for _, t := range e.running[lo:hi] {
			if t.remaining <= timeEps {
				instant = true
			}
			if t.rate <= 0 {
				continue
			}
			stalled = false
			if d := t.remaining / t.rate; d < dt {
				dt = d
			}
		}
		res[shard] = shardScan{dt: dt, stalled: stalled, instant: instant}
	})
	dt := math.Inf(1)
	stalled := true
	instant := false
	for i := range res {
		if res[i].dt < dt {
			dt = res[i].dt
		}
		stalled = stalled && res[i].stalled
		instant = instant || res[i].instant
	}
	return dt, stalled, instant
}

// decrementRunning advances every running task by dt at its current rate
// and reports whether any task exhausted its work.
func (e *Engine) decrementRunning(dt float64) bool {
	if e.pool != nil && len(e.running) >= poolMinRunning {
		return e.decrementRunningPooled(dt)
	}
	retiring := false
	for _, t := range e.running {
		t.remaining -= t.rate * dt
		if t.remaining <= timeEps {
			retiring = true
		}
	}
	return retiring
}

func (e *Engine) decrementRunningPooled(dt float64) bool {
	w := e.pool.Workers()
	if cap(e.scanSc) < w {
		e.scanSc = make([]shardScan, w)
	}
	res := e.scanSc[:w]
	for i := range res {
		res[i].retiring = false
	}
	e.pool.RunRange(len(e.running), func(shard, lo, hi int) {
		retiring := false
		for _, t := range e.running[lo:hi] {
			t.remaining -= t.rate * dt
			if t.remaining <= timeEps {
				retiring = true
			}
		}
		res[shard].retiring = retiring
	})
	for i := range res {
		if res[i].retiring {
			return true
		}
	}
	return false
}

// admit moves ready stream heads into the running set, rechecking only
// the streams whose admission state may have changed since the last
// epoch. Admission never pops a stream, so it cannot make further heads
// ready within the same call; newly admitted tasks are inserted at their
// creation-sequence position so the running set stays seq-ordered without
// a per-epoch sort.
func (e *Engine) admit() {
	e.stAdmitPasses++
	e.stRechecks += int64(len(e.dirty))
	for _, s := range e.dirty {
		s.dirty = false
		t := s.headTask()
		if t == nil || t.st != statePending || t.deps > 0 {
			continue
		}
		if !headOfAll(t) {
			continue
		}
		t.st = stateRunning
		if !t.started {
			t.started = true
			t.start = e.now
		}
		e.stAdmissions++
		e.insertRunning(t)
	}
	e.dirty = e.dirty[:0]
}

// insertRunning places t into the seq-ordered running set. Admissions
// overwhelmingly arrive in creation order, so the common case is a plain
// append; out-of-order admissions binary-search their slot.
func (e *Engine) insertRunning(t *Task) {
	n := len(e.running)
	if n == 0 || e.running[n-1].seq < t.seq {
		e.running = append(e.running, t)
		return
	}
	lo, hi := 0, n
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if e.running[mid].seq < t.seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	e.running = append(e.running, nil)
	copy(e.running[lo+1:], e.running[lo:])
	e.running[lo] = t
}

func headOfAll(t *Task) bool {
	for _, s := range t.streams {
		if s.headTask() != t {
			return false
		}
	}
	return true
}

// finishCompleted retires every running task whose work is exhausted and
// fires completion callbacks. Retirement is what feeds the dirty set:
// each pop exposes a new stream head, and each dependency count reaching
// zero re-candidates the successor's streams.
func (e *Engine) finishCompleted() {
	done := e.doneTmp[:0]
	keep := e.running[:0]
	for _, t := range e.running {
		if t.remaining <= timeEps {
			done = append(done, t)
		} else {
			keep = append(keep, t)
		}
	}
	e.running = keep
	for _, t := range done {
		t.st = stateDone
		t.end = e.now
		t.remaining = 0
		for _, s := range t.streams {
			s.pop(t)
			e.markDirty(s)
		}
		for _, succ := range t.succs {
			succ.deps--
			if succ.deps == 0 && succ.st == statePending {
				for _, s := range succ.streams {
					e.markDirty(s)
				}
			}
		}
	}
	// Callbacks fire after all pops/dep updates so that they observe a
	// consistent queue state and may enqueue follow-on work.
	for _, t := range done {
		for _, f := range t.onDone {
			f(e.now)
		}
	}
	e.doneTmp = done[:0]
}

func (e *Engine) pendingCount() int {
	n := 0
	for _, t := range e.tasks {
		if t.st != stateDone {
			n++
		}
	}
	return n
}

// diagnose summarizes stuck state for deadlock errors.
func (e *Engine) diagnose() string {
	n := 0
	var first *Task
	for _, t := range e.tasks {
		if t.st == stateDone {
			continue
		}
		n++
		if first == nil {
			first = t
		}
	}
	if first == nil {
		return "no pending tasks"
	}
	return fmt.Sprintf("%d unfinished tasks; first=%q (deps=%d, kind=%s)",
		n, first.name, first.deps, first.kind)
}
