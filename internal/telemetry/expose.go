package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WriteText renders the registry in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, each with HELP and
// TYPE lines, histograms expanded into cumulative _bucket/_sum/_count
// series. Output is deterministic for a given registry state.
func (r *Registry) WriteText(w io.Writer) error {
	for _, f := range r.families() {
		if err := f.writeText(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *Family) writeText(w io.Writer) error {
	f.mu.RLock()
	keys := append([]string(nil), f.order...)
	children := make([]metric, len(keys))
	for i, k := range keys {
		children[i] = f.children[k]
	}
	f.mu.RUnlock()
	if len(keys) == 0 {
		return nil
	}

	var b strings.Builder
	if f.help != "" {
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)

	// Sort series by key for deterministic output (creation order varies
	// with request interleaving).
	idx := make([]int, len(keys))
	for i := range idx {
		idx[i] = i
	}
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && keys[idx[j]] < keys[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}

	for _, i := range idx {
		values := splitKey(keys[i], len(f.labels))
		switch m := children[i].(type) {
		case *Counter:
			b.WriteString(f.name)
			writeLabels(&b, f.labels, values, "", "")
			b.WriteByte(' ')
			b.WriteString(strconv.FormatUint(m.Value(), 10))
			b.WriteByte('\n')
		case *Gauge:
			b.WriteString(f.name)
			writeLabels(&b, f.labels, values, "", "")
			b.WriteByte(' ')
			b.WriteString(formatFloat(m.Value()))
			b.WriteByte('\n')
		case *Histogram:
			cum := uint64(0)
			for bi, bound := range m.bounds {
				cum += m.counts[bi].Load()
				b.WriteString(f.name + "_bucket")
				writeLabels(&b, f.labels, values, "le", formatFloat(bound))
				b.WriteByte(' ')
				b.WriteString(strconv.FormatUint(cum, 10))
				b.WriteByte('\n')
			}
			b.WriteString(f.name + "_bucket")
			writeLabels(&b, f.labels, values, "le", "+Inf")
			b.WriteByte(' ')
			b.WriteString(strconv.FormatUint(m.Count(), 10))
			b.WriteByte('\n')
			b.WriteString(f.name + "_sum")
			writeLabels(&b, f.labels, values, "", "")
			b.WriteByte(' ')
			b.WriteString(formatFloat(m.Sum()))
			b.WriteByte('\n')
			b.WriteString(f.name + "_count")
			writeLabels(&b, f.labels, values, "", "")
			b.WriteByte(' ')
			b.WriteString(strconv.FormatUint(m.Count(), 10))
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// splitKey recovers the label values from a child key.
func splitKey(key string, n int) []string {
	if n == 0 {
		return nil
	}
	return strings.SplitN(key, labelSep, n)
}

// writeLabels renders a label set, appending one extra pair (the
// histogram "le" bound) when extraKey is non-empty.
func writeLabels(b *strings.Builder, keys, values []string, extraKey, extraVal string) {
	if len(keys) == 0 && extraKey == "" {
		return
	}
	b.WriteByte('{')
	first := true
	for i, k := range keys {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeValue(values[i]))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if !first {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(escapeValue(extraVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
var valueEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeHelp(s string) string  { return helpEscaper.Replace(s) }
func escapeValue(s string) string { return valueEscaper.Replace(s) }

// Handler returns an http.Handler serving the text exposition.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}

// BucketSnapshot is one cumulative histogram bucket in a snapshot.
type BucketSnapshot struct {
	// LE is the bucket's upper bound; +Inf is rendered as "+Inf".
	LE string `json:"le"`
	// Count is the cumulative observation count at this bound.
	Count uint64 `json:"count"`
}

// SampleSnapshot is one series of a family snapshot.
type SampleSnapshot struct {
	// Labels are the series' label values (absent for scalar families).
	Labels map[string]string `json:"labels,omitempty"`
	// Value is the counter or gauge value.
	Value float64 `json:"value"`
	// Count, Sum and Buckets are present for histograms.
	Count   uint64           `json:"count,omitempty"`
	Sum     float64          `json:"sum,omitempty"`
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
}

// FamilySnapshot is the JSON mirror of one metric family.
type FamilySnapshot struct {
	Name    string           `json:"name"`
	Help    string           `json:"help,omitempty"`
	Type    Type             `json:"type"`
	Samples []SampleSnapshot `json:"samples"`
}

// Snapshot returns a point-in-time JSON-encodable view of every family,
// sorted by name — the /v1/stats mirror of the /metrics exposition.
func (r *Registry) Snapshot() []FamilySnapshot {
	fams := r.families()
	out := make([]FamilySnapshot, 0, len(fams))
	for _, f := range fams {
		f.mu.RLock()
		keys := append([]string(nil), f.order...)
		children := make([]metric, len(keys))
		for i, k := range keys {
			children[i] = f.children[k]
		}
		f.mu.RUnlock()
		if len(keys) == 0 {
			continue
		}
		// Deterministic series order, matching the text exposition.
		sort.Sort(&keyedChildren{keys, children})
		snap := FamilySnapshot{Name: f.name, Help: f.help, Type: f.typ}
		for i, key := range keys {
			var s SampleSnapshot
			if len(f.labels) > 0 {
				values := splitKey(key, len(f.labels))
				s.Labels = make(map[string]string, len(f.labels))
				for li, lk := range f.labels {
					s.Labels[lk] = values[li]
				}
			}
			switch m := children[i].(type) {
			case *Counter:
				s.Value = float64(m.Value())
			case *Gauge:
				s.Value = m.Value()
			case *Histogram:
				s.Count = m.Count()
				s.Sum = m.Sum()
				cum := uint64(0)
				for bi, bound := range m.bounds {
					cum += m.counts[bi].Load()
					s.Buckets = append(s.Buckets, BucketSnapshot{LE: formatFloat(bound), Count: cum})
				}
				s.Buckets = append(s.Buckets, BucketSnapshot{LE: "+Inf", Count: m.Count()})
			}
			snap.Samples = append(snap.Samples, s)
		}
		out = append(out, snap)
	}
	return out
}

// keyedChildren sorts a (key, metric) pair of slices by key.
type keyedChildren struct {
	keys     []string
	children []metric
}

func (kc *keyedChildren) Len() int           { return len(kc.keys) }
func (kc *keyedChildren) Less(i, j int) bool { return kc.keys[i] < kc.keys[j] }
func (kc *keyedChildren) Swap(i, j int) {
	kc.keys[i], kc.keys[j] = kc.keys[j], kc.keys[i]
	kc.children[i], kc.children[j] = kc.children[j], kc.children[i]
}
