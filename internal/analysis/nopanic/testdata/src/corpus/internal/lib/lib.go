// Package lib is an internal library package: every process-exit below
// is a finding unless an allow directive documents the invariant.
package lib

import (
	"errors"
	"log"
	"os"
)

func Explode() {
	panic("boom") // want `panic in a library package`
}

func Quit(err error) {
	log.Fatalf("fatal: %v", err) // want `log\.Fatalf in a library package exits the process`
}

func Leave() {
	os.Exit(1) // want `os\.Exit in a library package`
}

// Handled is the required shape: reachable failures return errors.
func Handled() error {
	return errors.New("returned, not panicked")
}

var registry = map[string]bool{}

// MustRegister shows the sanctioned exception: an init-time
// registration collision fails the process loudly, behind a directive.
func MustRegister(name string) {
	if registry[name] {
		//overlaplint:allow nopanic corpus case: init-time registration must fail the process loudly
		panic("duplicate registration " + name)
	}
	registry[name] = true
}
