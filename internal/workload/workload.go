// Package workload defines the experiment grids behind every table and
// figure of the paper's evaluation, and a parallel grid runner that
// executes them on the simulator. Infeasible configurations (out of HBM)
// are reported as skipped, reproducing the memory gating the paper
// observes on the A100.
package workload

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"overlapsim/internal/core"
	"overlapsim/internal/hw"
	"overlapsim/internal/model"
	"overlapsim/internal/power"
	"overlapsim/internal/precision"
)

// Point is one grid point: a configuration plus its outcome.
type Point struct {
	// Cfg is the experiment configuration.
	Cfg core.Config
	// Res is the characterization result (nil if skipped or failed).
	Res *core.Result
	// OOM is non-nil when the configuration did not fit in HBM.
	OOM *model.ErrOOM
	// Err is any other failure.
	Err error
}

// Skipped reports whether the point was infeasible.
func (p Point) Skipped() bool { return p.OOM != nil }

// Systems returns the four 4-GPU systems of the main evaluation grid.
func Systems() []hw.System {
	return []hw.System{
		hw.SystemA100x4(),
		hw.SystemH100x4(),
		hw.SystemMI210x4(),
		hw.SystemMI250x4(),
	}
}

// EvalBatches are the global batch sizes swept in the evaluation figures.
func EvalBatches() []int { return []int{8, 16, 32, 64} }

// Figure1a returns the Fig. 1(a) grid: overlap amount versus model size
// under FSDP on the 8×H100 system.
func Figure1a() []core.Config {
	var out []core.Config
	for _, m := range model.Zoo() {
		for _, bs := range []int{8, 16, 32} {
			out = append(out, core.Config{
				System:      hw.SystemH100x8(),
				Model:       m,
				Parallelism: "fsdp",
				Batch:       bs,
				Format:      precision.FP16,
				MatrixUnits: true,
			})
		}
	}
	return out
}

// Figure1b returns the Fig. 1(b) grid: overlap amount versus batch size
// under pipeline parallelism with GPT-3 2.7B on the 4×A100 system.
func Figure1b() []core.Config {
	var out []core.Config
	for _, bs := range EvalBatches() {
		out = append(out, core.Config{
			System:      hw.SystemA100x4(),
			Model:       model.GPT3_2_7B(),
			Parallelism: "pp",
			Batch:       bs,
			Format:      precision.FP16,
			MatrixUnits: true,
		})
	}
	return out
}

// MainGrid returns the grid behind Figures 4, 5 and 6: every system ×
// every Table II model × the batch sweep × both distribution strategies,
// in FP16 with matrix units (the paper's base configuration).
func MainGrid() []core.Config {
	var out []core.Config
	for _, sys := range Systems() {
		for _, m := range model.Zoo() {
			for _, bs := range EvalBatches() {
				for _, par := range []core.Parallelism{"fsdp", "pp"} {
					out = append(out, core.Config{
						System:      sys,
						Model:       m,
						Parallelism: par,
						Batch:       bs,
						Format:      precision.FP16,
						MatrixUnits: true,
					})
				}
			}
		}
	}
	return out
}

// Figure7 returns the Fig. 7 configuration: the MI250 LLaMA-2 13B power
// trace at 1 ms sampling.
func Figure7() core.Config {
	return core.Config{
		System:        hw.SystemMI250x4(),
		Model:         model.LLaMA2_13B(),
		Parallelism:   "fsdp",
		Batch:         8,
		Format:        precision.FP16,
		MatrixUnits:   true,
		TraceInterval: power.TraceInterval,
	}
}

// Figure9Caps are the power caps swept on the 4×A100 system (watts; 0
// means uncapped).
func Figure9Caps() []float64 { return []float64{0, 400, 350, 300, 250, 200, 150, 100} }

// Figure9 returns the Fig. 9 grid: power capping on the 4×A100 system.
func Figure9() []core.Config {
	var out []core.Config
	for _, cap := range Figure9Caps() {
		out = append(out, core.Config{
			System:      hw.SystemA100x4(),
			Model:       model.GPT3_2_7B(),
			Parallelism: "fsdp",
			Batch:       16,
			Format:      precision.FP16,
			MatrixUnits: true,
			Caps:        power.Caps{PowerW: cap},
		})
	}
	return out
}

// PrecisionModels are the workloads used in the precision and Tensor-Core
// ablations (Figures 10 and 11).
func PrecisionModels() []model.Config {
	return []model.Config{model.GPT3XL(), model.GPT3_2_7B(), model.GPT3_6_7B()}
}

// Figure10 returns the Fig. 10 grid: FP32 (general datapath) versus FP16
// (matrix datapath) on the 4×H100 system.
func Figure10() []core.Config {
	var out []core.Config
	for _, m := range PrecisionModels() {
		for _, bs := range []int{8, 16} {
			out = append(out,
				core.Config{System: hw.SystemH100x4(), Model: m, Parallelism: "fsdp",
					Batch: bs, Format: precision.FP32, MatrixUnits: false},
				core.Config{System: hw.SystemH100x4(), Model: m, Parallelism: "fsdp",
					Batch: bs, Format: precision.FP16, MatrixUnits: true},
			)
		}
	}
	return out
}

// Figure11 returns the Fig. 11 grid: FP32 on the general datapath versus
// TF32 on Tensor Cores, on the 4×H100 system.
func Figure11() []core.Config {
	var out []core.Config
	for _, m := range PrecisionModels() {
		for _, bs := range []int{8, 16} {
			out = append(out,
				core.Config{System: hw.SystemH100x4(), Model: m, Parallelism: "fsdp",
					Batch: bs, Format: precision.FP32, MatrixUnits: false},
				core.Config{System: hw.SystemH100x4(), Model: m, Parallelism: "fsdp",
					Batch: bs, Format: precision.FP32, MatrixUnits: true},
			)
		}
	}
	return out
}

// RunGrid executes the configurations concurrently (one simulation per
// worker) and returns points in input order.
func RunGrid(ctx context.Context, cfgs []core.Config) []Point {
	pts := make([]Point, len(cfgs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				pts[i] = RunPoint(ctx, cfgs[i])
			}
		}()
	}
	for i := range cfgs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return pts
}

// RunPoint executes one configuration, classifying OOM separately.
func RunPoint(ctx context.Context, cfg core.Config) Point {
	res, err := core.Run(ctx, cfg)
	pt := Point{Cfg: cfg, Res: res}
	if err != nil {
		var oom *model.ErrOOM
		if errors.As(err, &oom) {
			pt.OOM = oom
		} else {
			pt.Err = fmt.Errorf("workload: %s: %w", cfg.Label(), err)
		}
	}
	return pt
}
