//go:build ignore

// Command gen regenerates profile_h100x8.json, the example measured
// profile for the calibration walkthrough. It plays the role of the
// profiling scripts you would run on a real machine: it perturbs the
// stock H100 into a plausible "physical" device (lower GEMM ceiling,
// later saturation knees, a less efficient NVLink ring, a hotter power
// envelope) and then measures that device — matmul sweep, collective
// bus-bandwidth sweep, end-to-end training steps — recording only the
// numbers a profiler could observe. The calibration fit must then
// recover the perturbations from the measurements alone.
//
// Usage (from the repository root):
//
//	go run examples/calibration/gen.go
//	go run ./cmd/calibrate fit -profile examples/calibration/profile_h100x8.json \
//	    -out examples/calibration/overlay_h100x8.json
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"

	"overlapsim/internal/calib"
	"overlapsim/internal/collective"
	"overlapsim/internal/core"
	"overlapsim/internal/hw"
	"overlapsim/internal/model"
	"overlapsim/internal/precision"
	"overlapsim/internal/topo"
)

const out = "examples/calibration/profile_h100x8.json"

func main() {
	log.SetFlags(0)
	log.SetPrefix("gen: ")

	sys, err := hw.SystemByName("H100x8")
	if err != nil {
		log.Fatal(err)
	}

	// The "real" machine: stock H100x8 with every calibration
	// parameter deviating from the datasheet the way silicon does.
	g := sys.GPU
	g.MaxEff = 0.93
	g.KHalfMatrix = 5200
	g.KHalfMatrixTF32 = 3500
	g.KHalfVector = 170
	g.MemHeadroom = 0.88
	g.AlgEff = 0.58
	g.LinkLatency = 4.2e-6
	g.Power.IdleW = 88
	g.Power.VectorW *= 1.06
	g.Power.MatrixW *= 1.06
	g.Power.MemW *= 1.06
	g.Power.CommW *= 1.06
	g.Power.SurgeW = 330
	sys.GPU = g

	p := &calib.Profile{
		Version: calib.SchemaVersion,
		Name:    "example H100x8 node",
		GPU:     "H100", System: "H100x8",
		Power:       &calib.PowerProfile{IdleW: g.Power.IdleW},
		Matmuls:     matmuls(g),
		Collectives: collectives(sys),
		Steps:       steps(sys),
	}
	if err := p.Validate(); err != nil {
		log.Fatalf("generated profile invalid: %v", err)
	}
	raw, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: %d matmul, %d collective, %d step points\n",
		out, len(p.Matmuls), len(p.Collectives), len(p.Steps))
}

// matmuls sweeps the GEMM inner dimension across the three datapaths
// (FP16 matrix units, FP32-as-TF32, FP32 vector), plus one skinny
// memory-bound shape that exposes the achievable HBM bandwidth.
func matmuls(g *hw.GPUSpec) []calib.MatmulPoint {
	var pts []calib.MatmulPoint
	for _, k := range []int{512, 1024, 2048, 4096, 8192, 16384} {
		for _, c := range []struct {
			dtype string
			mu    bool
		}{
			{"fp16", true},
			{"fp32", true},
			{"fp32", false},
		} {
			format, err := precision.Parse(c.dtype)
			if err != nil {
				log.Fatal(err)
			}
			eff := precision.EffectiveGEMMFormat(format, c.mu)
			path := precision.PathFor(eff, c.mu)
			frac := g.GEMMEff(float64(k), path, eff)
			pts = append(pts, calib.MatmulPoint{
				M: 8192, N: 8192, K: k, Dtype: c.dtype, MatrixUnits: c.mu,
				TFLOPs: frac * g.PeakFLOPS(path, eff) / 1e12,
			})
		}
	}
	const m, n, k = 64, 64, 65536
	bytes := float64(m*k+k*n+m*n) * float64(precision.FP16.Bytes())
	flops := 2 * float64(m) * float64(n) * float64(k)
	pts = append(pts, calib.MatmulPoint{
		M: m, N: n, K: k, Dtype: "fp16", MatrixUnits: true,
		TFLOPs: flops / (bytes / g.MemBW()) / 1e12,
	})
	return pts
}

// collectives sweeps op, rank count and payload, reporting each point
// as the bus bandwidth an nccl-tests-style harness would print.
func collectives(sys hw.System) []calib.CollectivePoint {
	fabric := topo.ForSystem(sys)
	var pts []calib.CollectivePoint
	for _, op := range []collective.Op{collective.AllReduce, collective.AllGather, collective.Broadcast} {
		for _, r := range []int{2, sys.N} {
			for _, mb := range []float64{1, 16, 256} {
				d := collective.Desc{Name: op.String(), Op: op, Bytes: mb * (1 << 20), N: r}
				secs := collective.Time(d, fabric)
				pts = append(pts, calib.CollectivePoint{
					Op: op.String(), Bytes: d.Bytes, Ranks: r,
					BusGBs: collective.BusBW(d, secs) / 1e9,
				})
			}
		}
	}
	return pts
}

// steps measures end-to-end training steps with their power envelope —
// the numbers a per-step timer plus nvidia-smi would record.
func steps(sys hw.System) []calib.StepPoint {
	var pts []calib.StepPoint
	for _, par := range []string{"fsdp", "ddp"} {
		p, err := core.ParseParallelism(par)
		if err != nil {
			log.Fatal(err)
		}
		cfg := core.Config{
			System: sys, Parallelism: p,
			Batch: 8, Format: precision.FP16, MatrixUnits: true,
		}
		cfg.Model, err = model.ByName("GPT-3 XL")
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.Run(context.Background(), cfg)
		if err != nil {
			log.Fatalf("measuring %s step: %v", par, err)
		}
		ovl := res.Overlapped
		pts = append(pts, calib.StepPoint{
			Model: "GPT-3 XL", Parallelism: par, Batch: 8,
			Format: "fp16", MatrixUnits: true,
			StepMS:     ovl.Mean.E2E * 1e3,
			AvgPowerW:  ovl.AvgTDP * sys.GPU.TDPW,
			PeakPowerW: ovl.PeakTDP * sys.GPU.TDPW,
		})
	}
	return pts
}
