package service

import (
	"log/slog"
	"net/http"
	"strconv"
	"time"

	"overlapsim/internal/telemetry"
)

// statusRecorder captures the response status for metrics and logging.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the wrapped writer so streaming handlers (the SSE
// endpoints) work through the instrumentation envelope.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the wrapped writer to http.NewResponseController.
func (r *statusRecorder) Unwrap() http.ResponseWriter {
	return r.ResponseWriter
}

// instrument wraps a handler with the standard observability envelope:
// a per-request ID on the context, request/latency/in-flight metrics
// labeled by the route pattern (never the raw URL, which is unbounded),
// and one structured log line per request. 5xx responses log at error
// level, 4xx at warn, the rest at debug — so an info-level production
// logger stays quiet on healthy traffic.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, reqID := telemetry.WithRequestID(r.Context())
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		mInFlight.Inc()
		start := time.Now()
		h(rec, r.WithContext(ctx))
		elapsed := time.Since(start)
		mInFlight.Dec()
		//overlaplint:allow metriclabels route is the mux registration pattern (finite set), and status codes are bounded by the HTTP spec
		mRequests.With(route, strconv.Itoa(rec.status)).Inc()
		//overlaplint:allow metriclabels route is the mux registration pattern (finite set), never the raw URL
		mDuration.With(route).Observe(elapsed.Seconds())

		level := slog.LevelDebug
		switch {
		case rec.status >= 500:
			level = slog.LevelError
		case rec.status >= 400:
			level = slog.LevelWarn
		}
		s.log.LogAttrs(ctx, level, "request",
			slog.String("req_id", reqID),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.String("route", route),
			slog.Int("status", rec.status),
			slog.Duration("elapsed", elapsed),
			slog.String("remote", r.RemoteAddr),
		)
	}
}

// handle registers an instrumented handler. The pattern doubles as the
// metric route label, with the method prefix kept so GET and DELETE on
// the same path stay distinct series.
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, s.instrument(pattern, h))
}
