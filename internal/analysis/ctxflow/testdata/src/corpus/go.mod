module corpus

go 1.24
