package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// SSE progress streaming: GET /v1/{sweeps,advise}/{id}/events replaces
// poll-only status with a push stream. Each event's data is the same
// jobBody the status endpoint serves (without points), so clients need
// one schema for both. Events are coalescing state snapshots, not a
// change log: a slow consumer skips intermediate states and always
// lands on the latest, and the stream always ends with a "done" event
// carrying the terminal status.

// subscribe registers a progress subscriber and returns its nudge
// channel plus an unsubscribe func. The channel has capacity 1: every
// job update makes a non-blocking send, so a subscriber that fell
// behind still wakes exactly once with the latest state.
func (j *job) subscribe() (<-chan struct{}, func()) {
	ch := make(chan struct{}, 1)
	j.mu.Lock()
	if j.subs == nil {
		j.subs = make(map[chan struct{}]struct{})
	}
	j.subs[ch] = struct{}{}
	j.mu.Unlock()
	return ch, func() {
		j.mu.Lock()
		delete(j.subs, ch)
		j.mu.Unlock()
	}
}

// notifyLocked nudges every subscriber. Callers must hold j.mu.
func (j *job) notifyLocked() {
	for ch := range j.subs {
		select {
		case ch <- struct{}{}:
		default: // subscriber already has a pending nudge
		}
	}
}

// handleEvents streams a job's progress as server-sent events:
// "progress" events while the job runs, one final "done" event with the
// terminal status, then EOF. Connecting to an already-finished job
// yields the "done" event immediately.
func (s *Server) handleEvents(kind jobKind) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j := s.lookup(r.PathValue("id"), kind)
		if j == nil {
			writeError(w, http.StatusNotFound, "unknown %s %q", kind, r.PathValue("id"))
			return
		}
		flusher, ok := w.(http.Flusher)
		if !ok {
			writeError(w, http.StatusNotImplemented, "streaming unsupported by this connection")
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.Header().Set("X-Accel-Buffering", "no") // defeat proxy buffering
		w.WriteHeader(http.StatusOK)

		ch, unsubscribe := j.subscribe()
		defer unsubscribe()
		// Keepalive comments defeat intermediary idle timeouts: a sweep
		// can legitimately go minutes between progress events, and a
		// proxy that reaps the idle connection does so silently — the
		// client never receives the terminal "done". Comment lines are
		// invisible to EventSource consumers, so the event schema is
		// unchanged.
		keepalive := time.NewTicker(s.opts.KeepAlive)
		defer keepalive.Stop()
		for {
			body := j.body(false)
			if body.Status != statusRunning {
				// Terminal: one final event, then close the stream.
				_ = writeSSE(w, "done", body)
				flusher.Flush()
				return
			}
			if err := writeSSE(w, "progress", body); err != nil {
				return
			}
			flusher.Flush()
		idle:
			select {
			case <-r.Context().Done():
				return
			case <-s.ctx.Done():
				// Server shutdown: end the stream so the HTTP drain can
				// complete; clients reconnect to the restarted server.
				return
			case <-keepalive.C:
				if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
					return
				}
				flusher.Flush()
				goto idle
			case <-ch:
			}
		}
	}
}

// writeSSE writes one server-sent event with a JSON payload.
// json.Marshal never emits raw newlines, so the payload is always a
// single well-formed data line.
func writeSSE(w http.ResponseWriter, event string, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
	return err
}
