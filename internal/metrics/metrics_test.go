package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCharacterizeEquations(t *testing.T) {
	seq := Iteration{
		E2E:               1.3,
		ComputeKernelTime: 1.0,
		CommKernelTime:    0.3,
	}
	ovl := Iteration{
		E2E:                   1.15,
		ComputeKernelTime:     1.1, // 10% slowdown
		CommKernelTime:        0.3,
		OverlappedComputeTime: 0.44,
		OverlappedCommTime:    0.25,
	}
	c := Characterize(seq, ovl)
	if math.Abs(c.ComputeSlowdown-0.1) > 1e-9 {
		t.Errorf("Eq.1 slowdown = %g, want 0.1", c.ComputeSlowdown)
	}
	if math.Abs(c.OverlapRatio-0.4) > 1e-9 {
		t.Errorf("Eq.2 ratio = %g, want 0.4", c.OverlapRatio)
	}
	if want := 1.15 - 0.1; math.Abs(c.E2EIdeal-want) > 1e-9 {
		t.Errorf("Eq.4 ideal = %g, want %g", c.E2EIdeal, want)
	}
	if want := c.E2EIdeal + 0.25; math.Abs(c.E2ESeqDerived-want) > 1e-9 {
		t.Errorf("Eq.5 derived = %g, want %g", c.E2ESeqDerived, want)
	}
	if want := (1.3 - 1.15) / 1.15; math.Abs(c.SeqPenalty-want) > 1e-9 {
		t.Errorf("seq penalty = %g, want %g", c.SeqPenalty, want)
	}
	if want := (1.15 - c.E2EIdeal) / c.E2EIdeal; math.Abs(c.IdealGap-want) > 1e-9 {
		t.Errorf("ideal gap = %g, want %g", c.IdealGap, want)
	}
}

func TestCharacterizeZeroSafe(t *testing.T) {
	c := Characterize(Iteration{}, Iteration{})
	if c.ComputeSlowdown != 0 || c.OverlapRatio != 0 || c.SeqPenalty != 0 {
		t.Errorf("zero inputs must yield zero metrics: %+v", c)
	}
}

func TestMean(t *testing.T) {
	its := []Iteration{
		{E2E: 1, ComputeKernelTime: 2, CommKernelTime: 3, OverlappedComputeTime: 1, OverlappedCommTime: 0.5},
		{E2E: 3, ComputeKernelTime: 4, CommKernelTime: 5, OverlappedComputeTime: 2, OverlappedCommTime: 1.5},
	}
	m := Mean(its)
	if m.E2E != 2 || m.ComputeKernelTime != 3 || m.CommKernelTime != 4 ||
		m.OverlappedComputeTime != 1.5 || m.OverlappedCommTime != 1 {
		t.Errorf("mean = %+v", m)
	}
}

func TestMeanEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Mean of nothing must panic")
		}
	}()
	Mean(nil)
}

func TestOverlapRatioGuard(t *testing.T) {
	if (Iteration{}).OverlapRatio() != 0 {
		t.Error("no compute time: ratio 0")
	}
	it := Iteration{ComputeKernelTime: 2, OverlappedComputeTime: 1}
	if it.OverlapRatio() != 0.5 {
		t.Errorf("ratio = %g", it.OverlapRatio())
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{0.1, 0.2, 0.3, 0.4, math.NaN()})
	if s.N != 4 {
		t.Errorf("N = %d, want 4 (NaN dropped)", s.N)
	}
	if math.Abs(s.Mean-0.25) > 1e-9 || s.Min != 0.1 || s.Max != 0.4 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.P50-0.25) > 1e-9 {
		t.Errorf("p50 = %g, want 0.25", s.P50)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Errorf("N = %d", s.N)
	}
	if !math.IsNaN(s.Percentile(0.5)) {
		t.Error("percentile of empty summary should be NaN")
	}
}

func TestPercentileEndpoints(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.Percentile(0) != 1 || s.Percentile(1) != 3 {
		t.Errorf("endpoints = %g, %g", s.Percentile(0), s.Percentile(1))
	}
}

// Property: Eq.5 identity E2ESeqDerived = E2EIdeal + hidden comm always
// holds, and E2EIdeal <= overlapped E2E whenever the slowdown is
// non-negative.
func TestQuickCharacterizeIdentities(t *testing.T) {
	f := func(cSeq, extra, e2e, hidden uint16) bool {
		seq := Iteration{ComputeKernelTime: float64(cSeq%1000)/100 + 0.1, E2E: float64(e2e%1000)/100 + 1}
		ovl := Iteration{
			ComputeKernelTime:  seq.ComputeKernelTime + float64(extra%200)/100,
			E2E:                seq.E2E * 0.95,
			OverlappedCommTime: float64(hidden%100) / 100,
		}
		c := Characterize(seq, ovl)
		if math.Abs(c.E2ESeqDerived-(c.E2EIdeal+ovl.OverlappedCommTime)) > 1e-9 {
			return false
		}
		return c.E2EIdeal <= ovl.E2E+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Summarize bounds — Min <= Mean <= Max and quantiles are
// monotone.
func TestQuickSummaryBounds(t *testing.T) {
	f := func(vals []uint16) bool {
		if len(vals) == 0 || len(vals) > 100 {
			return true
		}
		fl := make([]float64, len(vals))
		for i, v := range vals {
			fl[i] = float64(v)
		}
		s := Summarize(fl)
		if s.Min > s.Mean+1e-9 || s.Mean > s.Max+1e-9 {
			return false
		}
		return s.Percentile(0.25) <= s.Percentile(0.75)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
