// Package exec holds the plumbing shared by the distribution-strategy
// executors: execution modes (overlapped versus sequential), the plan a
// built schedule produces, per-iteration measurement extraction, and the
// dependency chaining used to serialize communication against computation
// in sequential mode.
package exec

import (
	"context"
	"errors"
	"fmt"

	"overlapsim/internal/gpu"
	"overlapsim/internal/metrics"
	"overlapsim/internal/sim"
	"overlapsim/internal/trace"
)

// Mode selects how communication is scheduled relative to computation.
type Mode int

// Execution modes (§IV-D: the measured Overlapping and Sequential
// scenarios; Ideal is derived, not executed).
const (
	// Overlapped runs communication on dedicated streams concurrently
	// with computation, as the training frameworks do by default.
	Overlapped Mode = iota
	// Sequential serializes every communication operation against the
	// computation of its participating devices: no overlap, no
	// contention.
	Sequential
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case Overlapped:
		return "overlapped"
	case Sequential:
		return "sequential"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Plan is a fully built simulation ready to run.
type Plan struct {
	// Engine is the simulation engine with all tasks enqueued.
	Engine *sim.Engine
	// Cluster is the device platform (also the power observer).
	Cluster *gpu.Cluster
	// Iterations groups the created tasks by training iteration,
	// warmups first.
	Iterations [][]*sim.Task
	// Warmup is the number of leading iterations excluded from
	// measurement.
	Warmup int

	ran bool
}

// Run executes the simulation.
func (p *Plan) Run() error {
	//overlaplint:allow ctxflow compat entrypoint: Run() is the no-context convenience wrapper; cancellable callers use RunContext
	return p.RunContext(context.Background())
}

// RunContext executes the simulation, stopping early with ctx.Err() when
// ctx is cancelled. A cancelled plan cannot be re-run.
func (p *Plan) RunContext(ctx context.Context) error {
	if p.ran {
		return fmt.Errorf("exec: plan already ran")
	}
	p.ran = true
	return p.Engine.RunContext(ctx)
}

// ErrNotRun is returned when a plan's measurements are requested before
// the plan has executed.
var ErrNotRun = errors.New("exec: plan has not run")

// EngineStats reports the engine's scheduling self-stats (epochs, dirty
// rechecks, arena usage — see sim.Stats). Valid at any time; most useful
// after the plan has run, when it describes the whole execution.
func (p *Plan) EngineStats() sim.Stats {
	return p.Engine.Stats()
}

// MeasuredIterations returns the per-iteration measurements of the
// non-warmup iterations. Kernel times are per-GPU means (devices are
// symmetric under FSDP; under pipeline parallelism the mean is the paper's
// per-GPU aggregation); E2E is the span of the iteration's tasks. It
// returns ErrNotRun if the plan has not executed yet.
func (p *Plan) MeasuredIterations() ([]metrics.Iteration, error) {
	if !p.ran {
		return nil, fmt.Errorf("MeasuredIterations: %w", ErrNotRun)
	}
	var out []metrics.Iteration
	for i := p.Warmup; i < len(p.Iterations); i++ {
		out = append(out, IterationMeasurement(p.Iterations[i]))
	}
	return out, nil
}

// MeasuredTimeline returns the merged kernel timeline of the measured
// iterations (for overlap-ratio and trace reporting). It returns
// ErrNotRun if the plan has not executed yet.
func (p *Plan) MeasuredTimeline() (*trace.Timeline, error) {
	if !p.ran {
		return nil, fmt.Errorf("MeasuredTimeline: %w", ErrNotRun)
	}
	tl := trace.New()
	for i := p.Warmup; i < len(p.Iterations); i++ {
		for _, t := range p.Iterations[i] {
			tl.AddTask(t)
		}
	}
	return tl, nil
}

// IterationMeasurement extracts the paper's per-iteration measurement from
// one iteration's completed tasks. Kernel times are averaged across the
// devices present so that Eq. 4's subtraction of the absolute compute
// slowdown from the wall-clock E2E is dimensionally per-GPU.
func IterationMeasurement(tasks []*sim.Task) metrics.Iteration {
	tl := trace.FromTasks(tasks)
	var it metrics.Iteration
	devs := tl.Devices()
	if len(devs) == 0 {
		return it
	}
	for _, d := range devs {
		computeT, commT, computeOv, commOv := tl.DeviceOverlap(d)
		it.ComputeKernelTime += computeT
		it.CommKernelTime += commT
		it.OverlappedComputeTime += computeOv
		it.OverlappedCommTime += commOv
	}
	n := float64(len(devs))
	it.ComputeKernelTime /= n
	it.CommKernelTime /= n
	it.OverlappedComputeTime /= n
	it.OverlappedCommTime /= n
	// The iteration window opens at the first compute kernel (early-posted
	// communication belongs to the window of the data it carries) and
	// closes when everything has drained.
	_, end := tl.Span()
	start, _, ok := tl.KindSpan(sim.KindCompute)
	if !ok {
		start, _ = tl.Span()
	}
	it.E2E = end - start
	return it
}

// Chain serializes operations per device through explicit dependencies —
// the sequential-mode mechanism. Unlike stream FIFO order, dependency
// chaining cannot deadlock on rendezvous operations, because the per-device
// orders are generated from one legal global schedule.
type Chain struct {
	last map[int]*sim.Task
}

// NewChain returns an empty chain.
func NewChain() *Chain { return &Chain{last: make(map[int]*sim.Task)} }

// Order makes t run after every previously ordered operation on each of
// the listed devices, then records t as those devices' latest operation.
func (c *Chain) Order(t *sim.Task, devices ...int) {
	for _, d := range devices {
		if prev := c.last[d]; prev != nil && prev != t {
			t.After(prev)
		}
	}
	for _, d := range devices {
		c.last[d] = t
	}
}

// Last returns the most recent operation ordered on the device, or nil.
func (c *Chain) Last(device int) *sim.Task { return c.last[device] }
