package report

import "io"

// Frontier rendering: an advisor frontier is a set of sweep rows (the
// schemas are shared — see SweepRow) plus a recommendation, so the
// table/CSV forms are the sweep renderers with a leading "pick" column
// marking the recommended configuration.

// frontierHeaders prepends the pick marker to the shared sweep schema.
var frontierHeaders = append([]string{"pick"}, sweepHeaders...)

// frontierCells renders the rows with the pick marker on row rec
// (rec < 0 marks nothing).
func frontierCells(rows []SweepRow, rec int) [][]string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		mark := ""
		if i == rec {
			mark = "*"
		}
		out[i] = append([]string{mark}, r.cells()...)
	}
	return out
}

// FrontierTable writes the frontier rows as an aligned text table, with
// "*" in the pick column of the recommended row (rec is its index; pass
// a negative rec when no configuration satisfied the constraints).
func FrontierTable(w io.Writer, rows []SweepRow, rec int) error {
	return Table(w, frontierHeaders, frontierCells(rows, rec))
}

// FrontierCSV writes the frontier rows as CSV with the same columns.
func FrontierCSV(w io.Writer, rows []SweepRow, rec int) error {
	return CSV(w, frontierHeaders, frontierCells(rows, rec))
}
