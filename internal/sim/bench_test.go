package sim

import (
	"fmt"
	"testing"
)

// buildSyntheticDAG constructs the raw-engine microbenchmark workload:
// per rank one compute stream holding a chain of `depth` tasks, plus one
// shared communication stream whose rendezvous-free collectives gate
// every rank's next chain link — the dependency shape of an FSDP
// iteration with the strategy and platform layers stripped away. The
// platform is processor sharing on the comm stream, so rates change on
// every admission and the scheduler's epoch machinery is fully
// exercised.
func buildSyntheticDAG(e *Engine, ranks, depth int) {
	streams := make([]*Stream, ranks)
	for r := range streams {
		streams[r] = e.NewStream(fmt.Sprintf("compute%d", r), r)
	}
	comm := e.NewStream("comm", 0)
	prev := make([]*Task, ranks)
	for d := 0; d < depth; d++ {
		coll := e.NewTask(fmt.Sprintf("coll.%d", d), KindComm, 1, nil, comm)
		for r := 0; r < ranks; r++ {
			t := e.NewTask(fmt.Sprintf("c%d.%d", r, d), KindCompute, 1+float64(r%3), nil, streams[r])
			t.After(coll, prev[r])
			prev[r] = t
		}
	}
}

// sharedRatePlatform runs compute tasks at unit rate and splits unit
// bandwidth across concurrent comm tasks.
func sharedRatePlatform() Platform {
	return PlatformFunc(func(now float64, running []*Task) {
		nComm := 0
		for _, t := range running {
			if t.Kind() == KindComm {
				nComm++
			}
		}
		for _, t := range running {
			if t.Kind() == KindComm {
				t.SetRate(1 / float64(nComm))
			} else {
				t.SetRate(1)
			}
		}
	})
}

// BenchmarkEngineSyntheticDAG measures raw scheduler throughput —
// admission, epoch advance, retirement — without any platform physics:
// ns/op here is the floor every simulated configuration pays per task.
func BenchmarkEngineSyntheticDAG(b *testing.B) {
	for _, shape := range []struct{ ranks, depth int }{
		{8, 64},
		{64, 64},
		{256, 32},
	} {
		b.Run(fmt.Sprintf("ranks=%d/depth=%d", shape.ranks, shape.depth), func(b *testing.B) {
			tasks := shape.ranks*shape.depth + shape.depth
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e := NewEngine(sharedRatePlatform())
				buildSyntheticDAG(e, shape.ranks, shape.depth)
				if err := e.Run(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(tasks), "tasks")
		})
	}
}

// BenchmarkEngineObserved is the synthetic DAG with a no-op observer
// registered, isolating the per-segment observer dispatch cost that the
// no-observer fast path removes.
func BenchmarkEngineObserved(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine(sharedRatePlatform())
		e.AddObserver(ObserverFunc(func(t0, t1 float64, running []*Task) {}))
		buildSyntheticDAG(e, 64, 64)
		if err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
