// Package fp is a miniature canonical-config graph for the
// fingerprintstable corpus: a frozen root with a compliant field, a
// renamed field, an untagged field, post-freeze additions with and
// without omitempty, a nested struct reached through the walk, and a
// custom-marshaler leaf that stops it.
package fp

type Config struct {
	Kept     string `json:"Kept"`
	Renamed  string `json:"renamed_now"` // want `changes the frozen canonical encoding`
	Untagged int    // want `has no explicit json name`
	Added    int    `json:"Added"` // want `new since the fingerprint freeze but is not omitempty`
	AddedOK  int    `json:"AddedOK,omitempty"`
	Skipped  string `json:"-"`
	Nested   Nested `json:"Nested,omitempty"`
	Leaf     Opaque `json:"Leaf,omitempty"`

	internal int
}

type Nested struct {
	Inner string `json:"Inner"`
	Fresh int    `json:"Fresh"` // want `new since the fingerprint freeze but is not omitempty`
}

// Opaque encodes itself: the walk must stop here and never report its
// untagged field.
type Opaque struct {
	Secret string
}

func (Opaque) MarshalJSON() ([]byte, error) { return []byte(`"opaque"`), nil }

// Use keeps the unexported field referenced.
func (c Config) Use() int { return c.internal }
