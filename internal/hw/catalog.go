package hw

import "overlapsim/internal/precision"

// The catalog entries below reproduce Table I of the paper plus the
// additional datasheet numbers (memory bandwidth, SM counts, clocks) and
// the calibrated contention/power coefficients documented in EXPERIMENTS.md.

// A100 is the NVIDIA A100-SXM4-40GB.
func A100() *GPUSpec {
	return &GPUSpec{
		Name:     "A100",
		Vendor:   NVIDIA,
		Year:     2020,
		SMs:      108,
		BoostMHz: 1410,

		MemGB:       40,
		MemBWGBs:    1555,
		MemHeadroom: 0.85,

		LinkBWGBs:   600,
		LinkLatency: 6e-6,
		AlgEff:      0.50,

		TDPW: 400,

		VectorTFLOPS: map[precision.Format]float64{
			precision.FP32: 19.5,
			precision.FP16: 78.0,
			precision.BF16: 39.0,
		},
		MatrixTFLOPS: map[precision.Format]float64{
			precision.TF32: 156.0,
			precision.FP32: 156.0, // executed as TF32
			precision.FP16: 312.0,
			precision.BF16: 312.0,
		},
		TableFP32TFLOPS: 19.5,
		TableFP16TFLOPS: 312,

		KHalfVector:     192,
		KHalfMatrix:     2560,
		KHalfMatrixTF32: 1792,
		MaxEff:          0.90,

		Power: PowerParams{
			IdleW:   55,
			VectorW: 340,
			MatrixW: 430,
			MemW:    170,
			CommW:   70,
			SurgeW:  150,
			FMin:    0.30,
			FreqExp: 2.0,
		},
		Contention: ContentionParams{
			CollSMsReduce:  14,
			CollSMsCopy:    5,
			HBMPerWireByte: 2.5,
			SerializeFrac:  0.12,
		},
	}
}

// H100 is the NVIDIA H100-SXM5-80GB.
func H100() *GPUSpec {
	return &GPUSpec{
		Name:     "H100",
		Vendor:   NVIDIA,
		Year:     2022,
		SMs:      132,
		BoostMHz: 1980,

		MemGB:       80,
		MemBWGBs:    3350,
		MemHeadroom: 0.85,

		LinkBWGBs:   900,
		LinkLatency: 5e-6,
		AlgEff:      0.50,

		TDPW: 700,

		VectorTFLOPS: map[precision.Format]float64{
			precision.FP32: 66.9,
			precision.FP16: 133.8,
			precision.BF16: 133.8,
		},
		MatrixTFLOPS: map[precision.Format]float64{
			precision.TF32: 494.7,
			precision.FP32: 494.7, // executed as TF32
			precision.FP16: 989.4,
			precision.BF16: 989.4,
		},
		TableFP32TFLOPS: 66.9,
		TableFP16TFLOPS: 1979, // Table I prints the sparsity peak

		KHalfVector:     192,
		KHalfMatrix:     6144,
		KHalfMatrixTF32: 4096,
		MaxEff:          0.90,

		Power: PowerParams{
			IdleW:   80,
			VectorW: 520,
			MatrixW: 1050,
			MemW:    300,
			CommW:   120,
			SurgeW:  300,
			FMin:    0.30,
			FreqExp: 2.0,
		},
		Contention: ContentionParams{
			CollSMsReduce:  20,
			CollSMsCopy:    6,
			HBMPerWireByte: 2.5,
			SerializeFrac:  0.15,
		},
	}
}

// MI210 is the AMD Instinct MI210 (one Aldebaran GCD).
func MI210() *GPUSpec {
	return &GPUSpec{
		Name:     "MI210",
		Vendor:   AMD,
		Year:     2021,
		SMs:      104,
		BoostMHz: 1700,

		MemGB:       64,
		MemBWGBs:    1638,
		MemHeadroom: 0.85,

		LinkBWGBs:   300,
		LinkLatency: 8e-6,
		AlgEff:      0.32,

		TDPW: 300,

		VectorTFLOPS: map[precision.Format]float64{
			precision.FP32: 22.6,
			precision.FP16: 45.3,
			precision.BF16: 45.3,
		},
		MatrixTFLOPS: map[precision.Format]float64{
			precision.TF32: 45.3, // matrix FP32 (AMD has no TF32 mode)
			precision.FP32: 45.3,
			precision.FP16: 181.0,
			precision.BF16: 181.0,
		},
		TableFP32TFLOPS: 22.6,
		TableFP16TFLOPS: 181.0,

		KHalfVector:     192,
		KHalfMatrix:     3072,
		KHalfMatrixTF32: 2048,
		MaxEff:          0.85,

		Power: PowerParams{
			IdleW:   42,
			VectorW: 250,
			MatrixW: 420,
			MemW:    130,
			CommW:   55,
			SurgeW:  100,
			FMin:    0.30,
			FreqExp: 2.0,
		},
		Contention: ContentionParams{
			CollSMsReduce:  24,
			CollSMsCopy:    8,
			HBMPerWireByte: 3.0,
			SerializeFrac:  0.50,
		},
	}
}

// MI250 is the AMD Instinct MI250 (both Aldebaran GCDs, presented as one
// device as in Table I).
func MI250() *GPUSpec {
	return &GPUSpec{
		Name:     "MI250",
		Vendor:   AMD,
		Year:     2021,
		SMs:      208,
		BoostMHz: 1700,

		MemGB:       128,
		MemBWGBs:    3277,
		MemHeadroom: 0.85,

		LinkBWGBs:   300,
		LinkLatency: 8e-6,
		AlgEff:      0.32,

		TDPW: 560,

		VectorTFLOPS: map[precision.Format]float64{
			precision.FP32: 45.3,
			precision.FP16: 90.5,
			precision.BF16: 90.5,
		},
		MatrixTFLOPS: map[precision.Format]float64{
			precision.TF32: 90.5,
			precision.FP32: 90.5,
			precision.FP16: 362.1,
			precision.BF16: 362.1,
		},
		TableFP32TFLOPS: 45.3,
		TableFP16TFLOPS: 362.1,

		KHalfVector:     192,
		KHalfMatrix:     3072,
		KHalfMatrixTF32: 2048,
		MaxEff:          0.85,

		Power: PowerParams{
			IdleW:   90,
			VectorW: 430,
			MatrixW: 700,
			MemW:    240,
			CommW:   90,
			SurgeW:  200,
			FMin:    0.30,
			FreqExp: 2.0,
		},
		Contention: ContentionParams{
			// The MI250's two GCDs share one Infinity Fabric endpoint and
			// the RCCL kernels span both dies, so collectives occupy
			// proportionally more CUs and interfere more with compute;
			// this is the configuration where the paper observes its
			// worst-case 40% compute slowdown.
			CollSMsReduce:  40,
			CollSMsCopy:    16,
			HBMPerWireByte: 3.0,
			SerializeFrac:  0.62,
		},
	}
}

// Catalog returns the GPUs of Table I in the paper's order. The registry
// (Names, ByName, All) is the open superset; Catalog stays the paper's
// closed set so report tables and regression tests keep their shape.
func Catalog() []*GPUSpec {
	return []*GPUSpec{A100(), H100(), MI210(), MI250()}
}

// Standard systems used in the paper's experiments. They are also
// registered under their names, so "H100x8" resolves through
// SystemByName everywhere a user-defined system would.
var (
	// SystemA100x4 is the 4×A100 NVLink/NVSwitch node.
	SystemA100x4 = func() System { return NewSystem(A100(), 4) }
	// SystemH100x4 is the 4×H100 node used for the precision and
	// Tensor-Core ablations.
	SystemH100x4 = func() System { return NewSystem(H100(), 4) }
	// SystemH100x8 is the 8×H100 DGX node of Fig. 1(a).
	SystemH100x8 = func() System { return NewSystem(H100(), 8) }
	// SystemMI210x4 is the 4×MI210 Infinity Fabric node.
	SystemMI210x4 = func() System { return NewSystem(MI210(), 4) }
	// SystemMI250x4 is the 4×MI250 Infinity Fabric node.
	SystemMI250x4 = func() System { return NewSystem(MI250(), 4) }
)

// The Table I parts and the paper's systems self-register, exactly like
// the stock strategies do in their packages.
func init() {
	Register(A100)
	Register(H100)
	Register(MI210)
	Register(MI250)
	RegisterSystem(SystemA100x4)
	RegisterSystem(SystemH100x4)
	RegisterSystem(SystemH100x8)
	RegisterSystem(SystemMI210x4)
	RegisterSystem(SystemMI250x4)
}
