// Package strategy defines the open distribution-strategy API: a Strategy
// turns a shared parameter set into an executable plan on a cluster, and a
// name-keyed registry lets implementations plug in without the harness
// knowing them at compile time (mgpusim-style builder registration).
//
// The paper studies three strategies (FSDP, pipeline, DDP — §II-B), but
// the overlap design space is much wider; the registry is how new
// schemes (tensor parallelism, MoE routing, hybrid shardings, ...) join
// every consumer — core.Run, sweep grids, the overlapd catalog — by
// registering themselves in an init function:
//
//	func init() { strategy.Register(Strategy{}) }
//
// Implementations live in their own packages (internal/fsdp,
// internal/pipeline, internal/ddp, internal/tp); internal/strategy/all
// links the stock set into a binary with one blank import.
package strategy

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"overlapsim/internal/exec"
	"overlapsim/internal/gpu"
	"overlapsim/internal/model"
	"overlapsim/internal/precision"
)

// Params is the single shared parameter set every strategy builds from,
// replacing the former per-strategy Config triplication. A strategy reads
// the knobs it understands and ignores the rest; Describe reports which
// knobs those are so canonicalization can zero the inert ones.
type Params struct {
	// Model is the workload.
	Model model.Config
	// Batch is the global batch size.
	Batch int
	// MicroBatch is the pipeline microbatch size (0 picks the strategy
	// default; only read when Info.MicroBatch).
	MicroBatch int
	// Format is the training numeric format.
	Format precision.Format
	// MatrixUnits enables Tensor-Core/Matrix-Core GEMM execution.
	MatrixUnits bool
	// Checkpoint enables full activation recomputation.
	Checkpoint bool
	// PrefetchDepth bounds communication lookahead in overlapped mode
	// (FSDP parameter gathers; 0 picks the strategy default).
	PrefetchDepth int
	// GradAccumSteps accumulates gradients over this many micro-steps
	// before synchronizing (only read when Info.GradAccum; 0 or 1
	// disables).
	GradAccumSteps int
	// BucketBytes is the gradient-bucket size triggering a DDP all-reduce
	// (0 picks the strategy default).
	BucketBytes float64
	// TPDegree is the tensor-parallel group size (only read when
	// Info.TPDegree; 0 picks the strategy default of the whole node).
	TPDegree int
	// Iterations is the number of measured iterations (0 means 2).
	Iterations int
	// Warmup is the number of unmeasured leading iterations (0 means 1,
	// negative means none).
	Warmup int
	// Mode selects overlapped or sequential execution.
	Mode exec.Mode
	// SkipMemoryCheck disables the HBM-capacity feasibility gate.
	SkipMemoryCheck bool
}

// WithCommonDefaults resolves the parameter defaults every strategy
// shares — measured/warmup iteration counts and the paper's base batch —
// so implementations (and config canonicalization) cannot silently
// diverge on them. Strategy-specific knobs keep their own defaulting.
func (p Params) WithCommonDefaults() Params {
	if p.Iterations <= 0 {
		p.Iterations = 2
	}
	if p.Warmup == 0 {
		p.Warmup = 1
	}
	if p.Warmup < 0 {
		p.Warmup = 0
	}
	if p.Batch <= 0 {
		p.Batch = 8
	}
	return p
}

// Info describes a strategy for catalogs, CLIs and canonicalization.
type Info struct {
	// Name is the registry key: the conventional lowercase spelling
	// ("fsdp", "pp", "ddp", "tp").
	Name string
	// Aliases are additional accepted spellings ("pipeline" for "pp").
	Aliases []string
	// Display is the short uppercase label used in result tables ("FSDP").
	Display string
	// Summary is a one-line description for the catalog.
	Summary string
	// Knobs names the strategy-specific settings reachable through the
	// experiment vocabulary (sweep specs, POST /v1/experiments), e.g.
	// "micro_batch", "tp_degree" — only spellings those surfaces accept.
	Knobs []string
	// MicroBatch reports whether the strategy reads Params.MicroBatch.
	MicroBatch bool
	// GradAccum reports whether the strategy reads Params.GradAccumSteps.
	GradAccum bool
	// TPDegree reports whether the strategy reads Params.TPDegree.
	TPDegree bool
}

// Strategy is one distribution strategy: it names itself, describes its
// knobs, and compiles Params into an executable plan on a cluster.
type Strategy interface {
	// Name returns the canonical registry name (lowercase).
	Name() string
	// Describe returns the strategy's catalog metadata.
	Describe() Info
	// Build constructs the multi-iteration task graph on a fresh engine
	// bound to the cluster.
	Build(cl *gpu.Cluster, p Params) (*exec.Plan, error)
}

// Canonicalizer is implemented by strategies whose knobs have implicit,
// context-dependent defaults (the pipeline microbatch, the TP degree).
// CanonicalParams returns p with those defaults made explicit so that
// equivalent configs fingerprint — and therefore cache — identically;
// gpus is the node size the config targets.
type Canonicalizer interface {
	CanonicalParams(p Params, gpus int) Params
}

var (
	mu      sync.RWMutex
	byName  = make(map[string]Strategy)
	byAlias = make(map[string]string)
	order   []string
)

// Register adds a strategy to the registry under its canonical name and
// aliases. It panics on an empty name or a duplicate registration —
// registration happens in init functions, where a collision is a
// programming error that must fail the build loudly, not a runtime
// condition to handle.
func Register(s Strategy) {
	info := s.Describe()
	name := strings.ToLower(strings.TrimSpace(s.Name()))
	if name == "" {
		//overlaplint:allow nopanic init-time registration: a malformed strategy must fail process start loudly
		panic("strategy: Register with empty name")
	}
	if info.Name != name {
		//overlaplint:allow nopanic init-time registration: a malformed strategy must fail process start loudly
		panic(fmt.Sprintf("strategy: %q describes itself as %q", name, info.Name))
	}
	mu.Lock()
	defer mu.Unlock()
	if _, dup := byName[name]; dup {
		//overlaplint:allow nopanic init-time registration: a name collision must fail process start loudly
		panic(fmt.Sprintf("strategy: duplicate registration of %q", name))
	}
	if owner, dup := byAlias[name]; dup {
		//overlaplint:allow nopanic init-time registration: a name collision must fail process start loudly
		panic(fmt.Sprintf("strategy: name %q already aliased to %q", name, owner))
	}
	byName[name] = s
	order = append(order, name)
	for _, a := range info.Aliases {
		a = strings.ToLower(strings.TrimSpace(a))
		if a == "" || a == name {
			continue
		}
		if _, dup := byName[a]; dup {
			//overlaplint:allow nopanic init-time registration: an alias collision must fail process start loudly
			panic(fmt.Sprintf("strategy: alias %q of %q collides with a registered strategy", a, name))
		}
		if owner, dup := byAlias[a]; dup {
			//overlaplint:allow nopanic init-time registration: an alias collision must fail process start loudly
			panic(fmt.Sprintf("strategy: alias %q of %q already claimed by %q", a, name, owner))
		}
		byAlias[a] = name
	}
}

// Lookup resolves a strategy by name or alias, case-insensitively. The
// error lists the registered names so callers can surface actionable
// messages.
func Lookup(name string) (Strategy, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	mu.RLock()
	defer mu.RUnlock()
	if canonical, ok := byAlias[key]; ok {
		key = canonical
	}
	if s, ok := byName[key]; ok {
		return s, nil
	}
	return nil, fmt.Errorf("strategy: unknown strategy %q (have %s)", name, strings.Join(namesLocked(), ", "))
}

// CanonicalName resolves a name or alias to the registry's canonical
// spelling; unknown names are returned lowercased unchanged.
func CanonicalName(name string) string {
	key := strings.ToLower(strings.TrimSpace(name))
	mu.RLock()
	defer mu.RUnlock()
	if canonical, ok := byAlias[key]; ok {
		return canonical
	}
	return key
}

// Names returns the registered canonical names, sorted.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	out := append([]string(nil), order...)
	sort.Strings(out)
	return out
}

// All returns every registered strategy in sorted-name order.
func All() []Strategy {
	mu.RLock()
	defer mu.RUnlock()
	out := make([]Strategy, 0, len(byName))
	for _, n := range namesLocked() {
		out = append(out, byName[n])
	}
	return out
}
