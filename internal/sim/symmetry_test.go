package sim

import (
	"fmt"
	"math"
	"testing"
)

// intEq is the payload comparator the sim-level tests use: payloads are
// plain ints (template indices), equal across symmetric ranks.
func intEq(a, b any) bool { return a == b }

// flatRate runs every task at a rate derived purely from its payload, so
// a collapsed run and a full run rate identical tasks identically.
func flatRate(now float64, running []*Task) {
	for _, t := range running {
		t.SetRate(float64(t.Payload().(int)%3) + 0.5)
	}
}

// symDAG builds ranks identical single-stream schedules plus one shared
// source and one shared sink on an extra device — the shape the strategy
// builders produce (per-rank compute chains hanging off shared
// collectives). Returns the engine and all tasks by [rank][slot].
func symDAG(ranks, slots int, perturb func(rank, slot int, work float64) float64) (*Engine, [][]*Task) {
	e := NewEngine(PlatformFunc(flatRate))
	shared := e.NewStream("shared", ranks)
	src := e.NewTask("src", KindCompute, 1, 100, shared)
	tasks := make([][]*Task, ranks)
	for r := 0; r < ranks; r++ {
		s := e.NewStream(fmt.Sprintf("rank%d", r), r)
		tasks[r] = make([]*Task, slots)
		for i := 0; i < slots; i++ {
			work := float64(i%5) + 0.5
			if perturb != nil {
				work = perturb(r, i, work)
			}
			t := e.NewTask(fmt.Sprintf("r%d.%d", r, i), KindCompute, work, i, s)
			if i == 0 {
				t.After(src)
			} else {
				t.After(tasks[r][i-1])
				if i >= 2 {
					t.After(tasks[r][i-2]) // redundant edge: preds alignment must still pair
				}
			}
			tasks[r][i] = t
		}
	}
	sink := e.NewTask("sink", KindCompute, 1, 101, shared)
	for r := 0; r < ranks; r++ {
		sink.After(tasks[r][slots-1])
	}
	return e, tasks
}

func classShape(classes []Class) []int {
	var out []int
	for _, c := range classes {
		out = append(out, len(c.Members))
	}
	return out
}

func TestDetectClasses(t *testing.T) {
	cases := []struct {
		name    string
		build   func() *Engine
		want    []int // class sizes in detection order
		collaps int   // classes with >1 member
	}{
		{
			name: "identical ranks merge",
			build: func() *Engine {
				e, _ := symDAG(4, 6, nil)
				return e
			},
			// devices 0..3 are one class, the shared device its own.
			want:    []int{4, 1},
			collaps: 1,
		},
		{
			name: "perturbed rank splits",
			build: func() *Engine {
				e, _ := symDAG(4, 6, func(rank, slot int, w float64) float64 {
					if rank == 2 && slot == 3 {
						return w * 2
					}
					return w
				})
				return e
			},
			want:    []int{3, 1, 1},
			collaps: 1,
		},
		{
			name: "all distinct",
			build: func() *Engine {
				e, _ := symDAG(3, 4, func(rank, slot int, w float64) float64 {
					return w + float64(rank)
				})
				return e
			},
			want:    []int{1, 1, 1, 1},
			collaps: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := tc.build()
			classes := e.DetectClasses(intEq)
			got := classShape(classes)
			if len(got) != len(tc.want) {
				t.Fatalf("classes %v, want sizes %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("classes %v, want sizes %v", got, tc.want)
				}
			}
			multi := 0
			for _, c := range classes {
				if len(c.Members) > 1 {
					multi++
				}
			}
			if multi != tc.collaps {
				t.Fatalf("collapsible classes = %d, want %d", multi, tc.collaps)
			}
		})
	}
}

func TestDetectClassesVetoes(t *testing.T) {
	t.Run("rendezvous task", func(t *testing.T) {
		e := NewEngine(PlatformFunc(flatRate))
		s0 := e.NewStream("a", 0)
		s1 := e.NewStream("b", 1)
		e.NewTask("x", KindCompute, 1, 0, s0)
		e.NewTask("y", KindCompute, 1, 0, s1)
		e.NewTask("rv", KindComm, 1, 1, s0, s1) // touches both devices
		for _, c := range e.DetectClasses(intEq) {
			if len(c.Members) > 1 {
				t.Fatalf("rendezvous devices merged: %v", c.Members)
			}
		}
	})
	t.Run("onDone callback", func(t *testing.T) {
		e := NewEngine(PlatformFunc(flatRate))
		s0 := e.NewStream("a", 0)
		s1 := e.NewStream("b", 1)
		e.NewTask("x", KindCompute, 1, 0, s0).OnDone(func(now float64) {})
		e.NewTask("y", KindCompute, 1, 0, s1)
		for _, c := range e.DetectClasses(intEq) {
			if len(c.Members) > 1 {
				t.Fatalf("device with completion callback merged: %v", c.Members)
			}
		}
	})
	t.Run("nil eq", func(t *testing.T) {
		e, _ := symDAG(2, 2, nil)
		if got := e.DetectClasses(nil); got != nil {
			t.Fatalf("DetectClasses(nil) = %v, want nil", got)
		}
	})
	t.Run("already ran", func(t *testing.T) {
		e, _ := symDAG(2, 2, nil)
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		if got := e.DetectClasses(intEq); got != nil {
			t.Fatalf("DetectClasses after run = %v, want nil", got)
		}
	})
}

// TestCollapseBitIdentical is the sim-level differential: a collapsed
// run must reproduce the full run's every task time bit for bit,
// including the reconstructed ghosts.
func TestCollapseBitIdentical(t *testing.T) {
	const ranks, slots = 6, 9
	ref, refTasks := symDAG(ranks, slots, nil)
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}

	e, tasks := symDAG(ranks, slots, nil)
	classes := e.DetectClasses(intEq)
	ghosts := e.Collapse(classes)
	if want := (ranks - 1) * slots; ghosts != want {
		t.Fatalf("Collapse ghosted %d tasks, want %d", ghosts, want)
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < ranks; r++ {
		for i := 0; i < slots; i++ {
			g, f := tasks[r][i], refTasks[r][i]
			if !g.Done() {
				t.Fatalf("task r%d.%d not reconstructed", r, i)
			}
			if math.Float64bits(g.Start()) != math.Float64bits(f.Start()) ||
				math.Float64bits(g.End()) != math.Float64bits(f.End()) {
				t.Fatalf("task r%d.%d diverged: collapsed [%g,%g] vs full [%g,%g]",
					r, i, g.Start(), g.End(), f.Start(), f.End())
			}
		}
	}
	st := e.Stats()
	if st.CollapsedClasses != 1 || st.GhostTasks != ghosts {
		t.Fatalf("stats = %d classes / %d ghosts, want 1 / %d",
			st.CollapsedClasses, st.GhostTasks, ghosts)
	}
}

// TestCollapseGhostEdgeTransfer pins the dependency bookkeeping: the
// shared sink depends on every rank's last task, so collapsing must
// transfer the ghost ranks' edges onto the representative — otherwise
// the sink either deadlocks (deps never decremented) or starts early
// (decremented at mark time instead of at the mirror's finish).
func TestCollapseGhostEdgeTransfer(t *testing.T) {
	e, tasks := symDAG(4, 3, nil)
	classes := e.DetectClasses(intEq)
	if e.Collapse(classes) == 0 {
		t.Fatal("nothing collapsed")
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	ref, refTasks := symDAG(4, 3, nil)
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	// The engines enqueue src first and sink last; compare sink times via
	// the tasks slice bounds.
	last := tasks[3][2]
	refLast := refTasks[3][2]
	if math.Float64bits(last.End()) != math.Float64bits(refLast.End()) {
		t.Fatalf("ghost end %g != reference %g", last.End(), refLast.End())
	}
	if e.Now() != ref.Now() {
		t.Fatalf("terminal time diverged: %g vs %g", e.Now(), ref.Now())
	}
}

func TestPoolRunRange(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	if p.Workers() != 4 {
		t.Fatalf("Workers() = %d, want 4", p.Workers())
	}
	const n = 103
	hits := make([]int, n)
	p.RunRange(n, func(shard, lo, hi int) {
		for i := lo; i < hi; i++ {
			hits[i]++
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d covered %d times", i, h)
		}
	}
	// n smaller than workers: still exactly-once.
	small := make([]int, 2)
	p.RunRange(2, func(shard, lo, hi int) {
		for i := lo; i < hi; i++ {
			small[i]++
		}
	})
	if small[0] != 1 || small[1] != 1 {
		t.Fatalf("small range coverage = %v", small)
	}
}

func TestPoolNil(t *testing.T) {
	if NewPool(1) != nil {
		t.Fatal("NewPool(1) should be nil (serial)")
	}
	var p *Pool
	if p.Workers() != 1 {
		t.Fatalf("nil pool Workers() = %d, want 1", p.Workers())
	}
	ran := false
	p.RunRange(5, func(shard, lo, hi int) {
		if shard != 0 || lo != 0 || hi != 5 {
			t.Fatalf("nil pool shard = (%d,%d,%d)", shard, lo, hi)
		}
		ran = true
	})
	if !ran {
		t.Fatal("nil pool RunRange did not run")
	}
	p.Close() // must not panic
}

// TestPooledRunBitIdentical runs a wide DAG serially and on a pool and
// demands bit-identical schedules: the pooled epoch scan must merge its
// shard results in shard order, reproducing the serial reduction.
func TestPooledRunBitIdentical(t *testing.T) {
	build := func() (*Engine, [][]*Task) {
		// Streams are FIFO, so the running set is one task per rank plus
		// the shared stream: 300 ranks keeps it above poolMinRunning and
		// the pooled scan path actually executes.
		return symDAG(300, 4, func(rank, slot int, w float64) float64 {
			return w + float64((rank*7+slot)%4)/8
		})
	}
	ref, refTasks := build()
	if err := ref.Run(); err != nil {
		t.Fatal(err)
	}
	e, tasks := build()
	e.SetPool(NewPool(4))
	err := e.Run()
	e.SetPool(nil)
	if err != nil {
		t.Fatal(err)
	}
	for r := range tasks {
		for i := range tasks[r] {
			if math.Float64bits(tasks[r][i].End()) != math.Float64bits(refTasks[r][i].End()) {
				t.Fatalf("task r%d.%d diverged pooled vs serial: %g vs %g",
					r, i, tasks[r][i].End(), refTasks[r][i].End())
			}
		}
	}
}
