package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"overlapsim/internal/core"
	"overlapsim/internal/hw"
	"overlapsim/internal/model"
	"overlapsim/internal/precision"
)

// stressGrid builds a large grid of cheap configurations: one tiny model
// across many batch sizes and seeds, so dozens of simulations race on
// the worker pool while staying fast enough for -race CI runs.
func stressGrid(n int) []core.Config {
	tiny := model.Config{Name: "tiny", Arch: model.GPT3, NominalParams: 1e8,
		Layers: 4, Heads: 4, Hidden: 256, FFN: 1024, Vocab: 2048, SeqLen: 128}
	cfgs := make([]core.Config, 0, n)
	for i := 0; i < n; i++ {
		cfgs = append(cfgs, core.Config{
			System:      hw.SystemH100x4(),
			Model:       tiny,
			Parallelism: "fsdp",
			Batch:       8 * (1 + i%4),
			Format:      precision.FP16,
			MatrixUnits: true,
			Iterations:  1,
			Warmup:      -1,           // explicit zero warmup keeps each point cheap
			Seed:        int64(i / 4), // distinct fingerprints across the grid
		})
	}
	return cfgs
}

// TestCancelStressDrainsCleanly cancels a large sweep mid-flight and
// asserts the runner's draining contract: Run returns the context error
// with every point accounted for (done, failed-with-ctx, or untouched),
// no goroutine keeps writing afterwards, and the directory cache holds
// only complete, re-loadable entries — a torn cache write would surface
// here as a corrupt JSON file.
func TestCancelStressDrainsCleanly(t *testing.T) {
	dir := t.TempDir()
	cache, err := NewDirCache(dir)
	if err != nil {
		t.Fatal(err)
	}

	cfgs := stressGrid(64)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var completed atomic.Int32
	r := &Runner{
		Workers: 8,
		Cache:   cache,
		OnPoint: func(p Point) {
			// Cancel from inside a worker callback once a handful of
			// points have landed — mid-flight by construction.
			if completed.Add(1) == 5 {
				cancel()
			}
		},
	}
	res, err := r.Run(ctx, cfgs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep returned %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled sweep returned nil result")
	}
	if len(res.Points) != len(cfgs) {
		t.Fatalf("result holds %d points, want %d", len(res.Points), len(cfgs))
	}

	// Every point must be in a terminal state: a real result, a context
	// error, or untouched-and-marked; sums must reconcile.
	okPts, ctxPts := 0, 0
	for i, p := range res.Points {
		switch {
		case p.Res != nil:
			okPts++
		case p.Err != nil:
			if !errors.Is(p.Err, context.Canceled) {
				t.Errorf("point %d failed with non-cancellation error: %v", i, p.Err)
			}
			ctxPts++
		case p.OOM != nil:
			t.Errorf("point %d reported OOM on a tiny model", i)
		default:
			t.Errorf("point %d in limbo: no result, no error", i)
		}
	}
	if okPts+ctxPts != len(cfgs) {
		t.Errorf("points do not reconcile: %d ok + %d cancelled != %d", okPts, ctxPts, len(cfgs))
	}
	if okPts == 0 {
		t.Error("cancellation landed before any point completed; stress premise broken")
	}
	if res.Failures != ctxPts {
		t.Errorf("Failures = %d, want %d", res.Failures, ctxPts)
	}

	// Cache integrity: every entry present must be complete and
	// re-loadable, and must correspond to a successful point.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "put-") {
			t.Errorf("orphaned temp file %s left in cache dir", e.Name())
			continue
		}
		key := strings.TrimSuffix(e.Name(), ".json")
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("cache entry %s unreadable: %v", e.Name(), err)
		}
		var res core.Result
		if err := json.Unmarshal(b, &res); err != nil {
			t.Errorf("cache entry %s corrupt (torn write?): %v", e.Name(), err)
		}
		got, ok := cache.Get(key)
		if !ok || got == nil {
			t.Errorf("cache entry %s not re-loadable through DirCache.Get", e.Name())
		}
	}

	// A re-run of the same grid against the warm cache must serve every
	// previously completed point from the cache and finish the rest.
	res2, err := (&Runner{Workers: 8, Cache: cache}).Run(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if res2.CacheHits < okPts {
		t.Errorf("re-run hit cache %d times, want at least the %d completed points", res2.CacheHits, okPts)
	}
	for i, p := range res2.Points {
		if p.Res == nil {
			t.Errorf("re-run point %d failed: %v", i, p.Err)
		}
	}
}
