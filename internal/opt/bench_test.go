package opt

import (
	"context"
	"testing"

	"overlapsim/internal/sweep"
)

// BenchmarkAdvisor measures one full advisor query over the small test
// space: cold (every evaluation simulated) versus warm (every
// evaluation a cache hit) — the latter is the serving story: a repeated
// or overlapping advisor query costs search bookkeeping only.
func BenchmarkAdvisor(b *testing.B) {
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			adv, err := (&Advisor{Runner: &sweep.Runner{Cache: sweep.NewMemCache()}}).
				Run(context.Background(), searchQuery())
			if err != nil {
				b.Fatal(err)
			}
			if len(adv.Frontier.Points) == 0 {
				b.Fatal("empty frontier")
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		cache := sweep.NewMemCache()
		adv := &Advisor{Runner: &sweep.Runner{Cache: cache}}
		if _, err := adv.Run(context.Background(), searchQuery()); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out, err := adv.Run(context.Background(), searchQuery())
			if err != nil {
				b.Fatal(err)
			}
			if out.Stats.FreshEvals != 0 {
				b.Fatalf("warm query simulated %d configs", out.Stats.FreshEvals)
			}
		}
	})
}
