// Package report renders experiment results as aligned text tables and CSV
// series — one renderer per table/figure of the paper, so every artifact
// of the evaluation section can be regenerated as data.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table writes an aligned text table.
func Table(w io.Writer, headers []string, rows [][]string) error {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(headers))
		for i := range headers {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			parts[i] = pad(c, widths[i])
		}
		return strings.Join(parts, "  ")
	}
	if _, err := fmt.Fprintln(w, line(headers)); err != nil {
		return err
	}
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, strings.Join(sep, "  ")); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintln(w, line(r)); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// CSV writes rows as comma-separated values with a header line. Cells
// containing commas or quotes are quoted.
func CSV(w io.Writer, headers []string, rows [][]string) error {
	write := func(cells []string) error {
		out := make([]string, len(cells))
		for i, c := range cells {
			out[i] = csvCell(c)
		}
		_, err := fmt.Fprintln(w, strings.Join(out, ","))
		return err
	}
	if err := write(headers); err != nil {
		return err
	}
	for _, r := range rows {
		if err := write(r); err != nil {
			return err
		}
	}
	return nil
}

func csvCell(c string) string {
	if strings.ContainsAny(c, ",\"\n") {
		return `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
	}
	return c
}

// Pct formats a ratio as a percentage with one decimal.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// Ms formats seconds as milliseconds with two decimals.
func Ms(v float64) string { return fmt.Sprintf("%.2f", v*1e3) }

// TDP formats a TDP-normalized power value.
func TDP(v float64) string { return fmt.Sprintf("%.2fx", v) }

// F formats a float with the given precision.
func F(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }
