package sweep

import "overlapsim/internal/report"

// Rows converts a sweep result into report rows, in grid order.
func Rows(res *Result) []report.SweepRow {
	rows := make([]report.SweepRow, len(res.Points))
	for i := range res.Points {
		rows[i] = row(&res.Points[i])
	}
	return rows
}

func row(p *Point) report.SweepRow {
	r := report.SweepRow{Label: p.Config.Label()}
	switch {
	case p.OOM != nil:
		r.Status = "OOM"
		r.Detail = p.OOM.Error()
	case p.Err != nil:
		r.Status = "error"
		r.Detail = p.Err.Error()
	case p.Res == nil:
		r.Status = "error"
		r.Detail = p.ErrString
	default:
		r.Status = "ok"
		if p.CacheHit {
			r.Status = "hit"
		}
		c := p.Res.Char
		r.E2EOvl = p.Res.Overlapped.Mean.E2E
		r.E2ESeq = p.Res.Sequential.Mean.E2E
		r.SeqPenalty = c.SeqPenalty
		r.OverlapRatio = c.OverlapRatio
		r.ComputeSlowdown = c.ComputeSlowdown
		r.AvgTDP = p.Res.Overlapped.AvgTDP
		r.PeakTDP = p.Res.Overlapped.PeakTDP
		r.EnergyJ = p.Res.Overlapped.EnergyJ
	}
	return r
}
