// Package kernels defines GPU kernel descriptors and their roofline cost
// model. A kernel is characterized by the floating-point work it performs,
// the HBM traffic it generates, the GEMM shape that determines datapath
// efficiency, and the numeric format/datapath it executes on. The device
// model (internal/gpu) turns descriptors into execution rates, applying
// contention; this package provides the contention-free baseline.
package kernels

import (
	"fmt"
	"math"

	"overlapsim/internal/hw"
	"overlapsim/internal/precision"
)

// Op classifies a kernel for reporting and datapath selection.
type Op int

// Kernel operation classes.
const (
	// OpGEMM is a dense matrix multiplication (linear layers, attention
	// score/value products).
	OpGEMM Op = iota
	// OpElementwise covers activations, residual adds, dropout, casts.
	OpElementwise
	// OpNorm covers LayerNorm/RMSNorm (reduction + scale).
	OpNorm
	// OpOptimizer is the Adam/AdamW parameter update.
	OpOptimizer
	// OpEmbedding is the embedding gather / LM-head projection tail.
	OpEmbedding
)

// String returns a short name for the op class.
func (o Op) String() string {
	switch o {
	case OpGEMM:
		return "gemm"
	case OpElementwise:
		return "elementwise"
	case OpNorm:
		return "norm"
	case OpOptimizer:
		return "optimizer"
	case OpEmbedding:
		return "embedding"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Desc describes one kernel invocation (or a fused aggregate of identical
// invocations — the simulator schedules per-layer aggregates).
type Desc struct {
	// Name is a diagnostic label.
	Name string
	// Op is the kernel class.
	Op Op
	// FLOPs is total floating-point operations.
	FLOPs float64
	// Bytes is total HBM traffic (reads + writes).
	Bytes float64
	// M, N, K are the effective GEMM dimensions (K is the reduction
	// dimension driving datapath saturation). Zero for non-GEMM kernels.
	M, N, K float64
	// Format is the arithmetic format.
	Format precision.Format
	// Path is the datapath the kernel executes on.
	Path precision.Datapath
	// Parts, when non-empty, marks this descriptor as a fused aggregate
	// of the listed kernels (see Fuse). Timing sums the parts; FLOPs and
	// Bytes hold the totals.
	Parts []Desc
}

// Fuse aggregates several kernels into one descriptor executed as a unit —
// the per-layer task granularity the executors schedule. Totals are summed;
// the headline GEMM shape, format and datapath come from the part with the
// most FLOPs.
func Fuse(name string, parts ...Desc) Desc {
	if len(parts) == 0 {
		//overlaplint:allow nopanic caller contract: Fuse arguments are kernel descriptors written in executor code, not user input
		panic("kernels: Fuse of no parts")
	}
	d := Desc{Name: name, Parts: append([]Desc(nil), parts...)}
	best := 0
	for i, p := range parts {
		if len(p.Parts) > 0 {
			//overlaplint:allow nopanic caller contract: Fuse arguments are kernel descriptors written in executor code, not user input
			panic(fmt.Sprintf("kernels: Fuse of already-fused part %q", p.Name))
		}
		d.FLOPs += p.FLOPs
		d.Bytes += p.Bytes
		if p.FLOPs > parts[best].FLOPs {
			best = i
		}
	}
	b := parts[best]
	d.Op = b.Op
	d.M, d.N, d.K = b.M, b.N, b.K
	d.Format = b.Format
	d.Path = b.Path
	return d
}

// FLOPsByPath splits the descriptor's FLOPs between the vector and matrix
// datapaths (fused descriptors split by part).
func (d Desc) FLOPsByPath() (vec, mat float64) {
	if len(d.Parts) == 0 {
		if d.Path == precision.Matrix {
			return 0, d.FLOPs
		}
		return d.FLOPs, 0
	}
	for _, p := range d.Parts {
		v, m := p.FLOPsByPath()
		vec += v
		mat += m
	}
	return vec, mat
}

// AI returns arithmetic intensity in FLOPs per HBM byte. Kernels with no
// memory traffic return +Inf.
func (d Desc) AI() float64 {
	if d.Bytes <= 0 {
		return math.Inf(1)
	}
	return d.FLOPs / d.Bytes
}

// Validate reports whether the descriptor is internally consistent.
func (d Desc) Validate() error {
	if d.FLOPs < 0 || d.Bytes < 0 {
		return fmt.Errorf("kernels: %q has negative work (flops=%g bytes=%g)", d.Name, d.FLOPs, d.Bytes)
	}
	if d.FLOPs == 0 && d.Bytes == 0 {
		return fmt.Errorf("kernels: %q has no work", d.Name)
	}
	if d.Op == OpGEMM && (d.M <= 0 || d.N <= 0 || d.K <= 0) {
		return fmt.Errorf("kernels: GEMM %q missing dimensions (m=%g n=%g k=%g)", d.Name, d.M, d.N, d.K)
	}
	return nil
}

// GEMM builds a descriptor for C[m×n] = A[m×k]·B[k×n] in the given format
// on the given datapath. batch multiplies work and traffic for batched
// GEMMs (for example per-head attention products).
func GEMM(name string, m, n, k, batch float64, f precision.Format, path precision.Datapath) Desc {
	if batch <= 0 {
		batch = 1
	}
	e := float64(f.Bytes())
	return Desc{
		Name:   name,
		Op:     OpGEMM,
		FLOPs:  2 * m * n * k * batch,
		Bytes:  (m*k + k*n + m*n) * e * batch,
		M:      m,
		N:      n,
		K:      k,
		Format: f,
		Path:   path,
	}
}

// Elementwise builds a descriptor for a pointwise kernel over elems
// elements with the given FLOPs per element; traffic is one read and one
// write per element plus rwExtra additional accesses per element.
func Elementwise(name string, elems, flopsPerElem, rwExtra float64, f precision.Format) Desc {
	e := float64(f.Bytes())
	return Desc{
		Name:   name,
		Op:     OpElementwise,
		FLOPs:  elems * flopsPerElem,
		Bytes:  elems * e * (2 + rwExtra),
		Format: f,
		Path:   precision.Vector,
	}
}

// Norm builds a descriptor for a LayerNorm/RMSNorm over elems elements
// (two passes over the data).
func Norm(name string, elems float64, f precision.Format) Desc {
	e := float64(f.Bytes())
	return Desc{
		Name:   name,
		Op:     OpNorm,
		FLOPs:  elems * 8,
		Bytes:  elems * e * 3,
		Format: f,
		Path:   precision.Vector,
	}
}

// AdamBytesPerParam is the HBM traffic of one AdamW update per parameter:
// FP32 master weight, two FP32 moments (read+write each), the FP16
// gradient read and the FP16 weight write-back.
const AdamBytesPerParam = 4*2 + 4*2 + 4*2 + 2 + 2

// Optimizer builds a descriptor for an AdamW step over params parameters.
// The optimizer state layout follows mixed-precision training (FP32 master
// weights and moments).
func Optimizer(name string, params float64) Desc {
	return Desc{
		Name:   name,
		Op:     OpOptimizer,
		FLOPs:  params * 14,
		Bytes:  params * AdamBytesPerParam,
		Format: precision.FP32,
		Path:   precision.Vector,
	}
}

// BaseTime returns the contention-free execution time of the kernel on g at
// full frequency: the roofline maximum of the compute and memory times.
func BaseTime(d Desc, g *hw.GPUSpec) float64 {
	return workTime(d, g, 1, 0, 0, 0)
}

// BaseRate returns the contention-free execution rate of the kernel in
// work units per second, where work is FLOPs for compute-classified
// kernels (or bytes when FLOPs is zero).
func BaseRate(d Desc, g *hw.GPUSpec) float64 {
	t := BaseTime(d, g)
	if t <= 0 {
		return math.Inf(1)
	}
	return Work(d) / t
}

// Work returns the abstract work units the simulator tracks for the
// kernel: FLOPs when nonzero, otherwise bytes.
func Work(d Desc) float64 {
	if d.FLOPs > 0 {
		return d.FLOPs
	}
	return d.Bytes
}

// Rate returns the kernel's execution rate in work units per second under
// the given contention state:
//
//	freq         — DVFS frequency factor in (0,1];
//	smStolen     — SMs occupied by co-resident collective kernels;
//	hbmStolen    — HBM bandwidth consumed by collectives, bytes/s;
//	serialize    — issue-rate derate while collectives are resident.
//
// The model is a contended roofline: the compute ceiling loses frequency,
// SMs and issue slots; the memory ceiling loses stolen bandwidth.
func Rate(d Desc, g *hw.GPUSpec, freq, smStolen, hbmStolen, serialize float64) float64 {
	t := workTime(d, g, freq, smStolen, hbmStolen, serialize)
	if t <= 0 {
		return math.Inf(1)
	}
	return Work(d) / t
}

// minMemFloor is the fraction of HBM bandwidth compute kernels always
// retain even under full communication pressure (hardware arbitration
// guarantees forward progress).
const minMemFloor = 0.15

func workTime(d Desc, g *hw.GPUSpec, freq, smStolen, hbmStolen, serialize float64) float64 {
	if len(d.Parts) > 0 {
		t := 0.0
		for _, p := range d.Parts {
			t += workTime(p, g, freq, smStolen, hbmStolen, serialize)
		}
		return t
	}
	if freq <= 0 {
		freq = g.Power.FMin
	}
	smFrac := 1 - smStolen/float64(g.SMs)
	if smFrac < 0.05 {
		smFrac = 0.05
	}
	issue := 1 - serialize
	if issue < 0.05 {
		issue = 0.05
	}

	peak := g.PeakFLOPS(d.Path, d.Format)
	eff := 1.0
	if d.Op == OpGEMM {
		eff = g.GEMMEff(d.K, d.Path, d.Format)
	} else {
		// Non-GEMM kernels are issue-limited well below vector peak.
		eff = 0.5
	}

	availMem := g.MemBW() - hbmStolen
	if floor := g.MemBW() * minMemFloor; availMem < floor {
		availMem = floor
	}

	var tCompute, tMem float64
	if d.FLOPs > 0 && peak > 0 {
		tCompute = d.FLOPs / (peak * eff * smFrac * freq * issue)
	}
	if d.Bytes > 0 {
		tMem = d.Bytes / (availMem * issue)
	}
	if d.FLOPs > 0 && peak == 0 {
		return math.Inf(1)
	}
	return math.Max(tCompute, tMem)
}

// Utilization returns the instantaneous utilization of the vector datapath,
// matrix datapath and memory system implied by the kernel running at the
// given rate (work units/s). The values feed the power model.
func Utilization(d Desc, g *hw.GPUSpec, rate float64) (uVec, uMat, uMem float64) {
	if rate <= 0 || math.IsInf(rate, 1) {
		return 0, 0, 0
	}
	w := Work(d)
	if w <= 0 {
		return 0, 0, 0
	}
	dur := w / rate
	if dur <= 0 {
		return 0, 0, 0
	}
	if d.FLOPs > 0 {
		flopRate := d.FLOPs / dur
		if peak := g.PeakFLOPS(d.Path, d.Format); peak > 0 {
			u := flopRate / peak
			if u > 1 {
				u = 1
			}
			switch d.Path {
			case precision.Matrix:
				uMat = u
			default:
				uVec = u
			}
		}
	}
	if d.Bytes > 0 {
		byteRate := d.Bytes / dur
		uMem = byteRate / g.MemBW()
		if uMem > 1 {
			uMem = 1
		}
	}
	return uVec, uMat, uMem
}
