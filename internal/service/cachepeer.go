package service

import (
	"encoding/json"
	"io"
	"net/http"

	"overlapsim/internal/core"
	"overlapsim/internal/store"
	"overlapsim/internal/sweep"
)

// The peer cache protocol: GET/PUT one immutable result by canonical
// fingerprint. This is what store.HTTPCache speaks, so any overlapd is
// a shard of the mesh just by running. Lookups are answered from the
// replica's *local* tiers (Options.LocalCache) — never through its own
// peer tier — so a mesh of replicas pointing at each other cannot
// recurse.

// localCache resolves the cache the protocol endpoints serve.
func (s *Server) localCache() sweep.Cache {
	if s.opts.LocalCache != nil {
		return s.opts.LocalCache
	}
	return s.opts.Cache
}

func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	fp := r.PathValue("fp")
	if !store.ValidFingerprint(fp) {
		writeError(w, http.StatusBadRequest, "invalid fingerprint %q", fp)
		return
	}
	res, ok := s.localCache().Get(fp)
	if !ok {
		writeError(w, http.StatusNotFound, "no entry for %s", fp)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleCachePut(w http.ResponseWriter, r *http.Request) {
	fp := r.PathValue("fp")
	if !store.ValidFingerprint(fp) {
		writeError(w, http.StatusBadRequest, "invalid fingerprint %q", fp)
		return
	}
	var res core.Result
	if err := json.NewDecoder(io.LimitReader(r.Body, maxSubmitBytes)).Decode(&res); err != nil {
		writeError(w, http.StatusBadRequest, "decoding cache entry: %v", err)
		return
	}
	// Content addressing is the integrity check: the entry must hash to
	// the fingerprint it claims, so a confused peer (or a hostile
	// client) cannot poison the cache with mismatched results.
	key, err := res.Config.Fingerprint()
	if err != nil {
		writeError(w, http.StatusBadRequest, "fingerprinting entry: %v", err)
		return
	}
	if key != fp {
		writeError(w, http.StatusConflict, "entry hashes to %s, not %s", key, fp)
		return
	}
	if err := s.localCache().Put(fp, &res); err != nil {
		writeError(w, http.StatusInternalServerError, "storing entry: %v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
