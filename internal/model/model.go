// Package model implements the workload zoo of Table II — GPT-3 XL, 2.7B,
// 6.7B and 13B, and LLaMA-2 13B — with the per-layer parameter, FLOP and
// activation accounting the executors and memory-feasibility checks need.
// Kernel sequences follow the standard decoder-block structure (fused into
// the per-layer task granularity the simulator schedules).
package model

import (
	"fmt"

	"overlapsim/internal/kernels"
	"overlapsim/internal/precision"
)

// Arch is a transformer architecture family.
type Arch int

// Architectures.
const (
	// GPT3 is the GPT-3 decoder block: LayerNorm, fused QKV attention,
	// 4h GELU MLP, learned positional embeddings.
	GPT3 Arch = iota
	// LLaMA2 is the LLaMA-2 decoder block: RMSNorm, attention without
	// biases, SwiGLU MLP.
	LLaMA2
)

// String returns the family name.
func (a Arch) String() string {
	switch a {
	case GPT3:
		return "GPT-3"
	case LLaMA2:
		return "LLaMA-2"
	default:
		return fmt.Sprintf("Arch(%d)", int(a))
	}
}

// Config describes one model (one Table II row).
type Config struct {
	// Name is the Table II label ("GPT-3 XL", ...).
	Name string `json:"Name"`
	// Arch is the block architecture.
	Arch Arch `json:"Arch"`
	// NominalParams is the marketing parameter count ("1.3B"), used only
	// for labels; exact counts come from TotalParams.
	NominalParams float64 `json:"NominalParams"`
	// Layers is the number of decoder blocks.
	Layers int `json:"Layers"`
	// Heads is the number of attention heads.
	Heads int `json:"Heads"`
	// Hidden is the model (embedding) dimension.
	Hidden int `json:"Hidden"`
	// FFN is the MLP intermediate dimension.
	FFN int `json:"FFN"`
	// Vocab is the vocabulary size.
	Vocab int `json:"Vocab"`
	// SeqLen is the training sequence length.
	SeqLen int `json:"SeqLen"`
}

// Validate reports whether the configuration is well formed.
func (c Config) Validate() error {
	switch {
	case c.Layers <= 0:
		return fmt.Errorf("model %q: layers=%d", c.Name, c.Layers)
	case c.Hidden <= 0:
		return fmt.Errorf("model %q: hidden=%d", c.Name, c.Hidden)
	case c.Heads <= 0 || c.Hidden%c.Heads != 0:
		return fmt.Errorf("model %q: heads=%d does not divide hidden=%d", c.Name, c.Heads, c.Hidden)
	case c.FFN <= 0:
		return fmt.Errorf("model %q: ffn=%d", c.Name, c.FFN)
	case c.Vocab <= 0:
		return fmt.Errorf("model %q: vocab=%d", c.Name, c.Vocab)
	case c.SeqLen <= 0:
		return fmt.Errorf("model %q: seqlen=%d", c.Name, c.SeqLen)
	}
	return nil
}

// ParamsPerLayer returns the exact parameter count of one decoder block.
func (c Config) ParamsPerLayer() float64 {
	h := float64(c.Hidden)
	ffn := float64(c.FFN)
	switch c.Arch {
	case LLaMA2:
		// Attention QKVO (no biases) + SwiGLU gate/up/down + 2 RMSNorms.
		return 4*h*h + 3*h*ffn + 2*h
	default:
		// Attention QKVO with biases + 2-layer MLP with biases + 2
		// LayerNorms (scale+shift).
		return 4*h*h + 4*h + 2*h*ffn + h + ffn + 4*h
	}
}

// EmbedParams returns the embedding (and tied LM head) parameter count.
func (c Config) EmbedParams() float64 {
	p := float64(c.Vocab) * float64(c.Hidden)
	if c.Arch == GPT3 {
		p += float64(c.SeqLen) * float64(c.Hidden) // learned positions
	}
	return p
}

// TotalParams returns the exact total parameter count.
func (c Config) TotalParams() float64 {
	return float64(c.Layers)*c.ParamsPerLayer() + c.EmbedParams() + float64(c.Hidden)
}

// headDim returns the per-head dimension.
func (c Config) headDim() float64 { return float64(c.Hidden) / float64(c.Heads) }

// ForwardLayerKernels returns the fused kernel sequence of one decoder
// block's forward pass for local batch size b: attention input norm + QKV,
// the attention core (scores, softmax, value product), output projection +
// residual, MLP up (+ gate for SwiGLU) + activation, MLP down + residual +
// second norm. GEMMs execute in the effective format for the matrix-unit
// setting; everything else stays on the vector datapath.
func (c Config) ForwardLayerKernels(b int, f precision.Format, matrixUnits bool) []kernels.Desc {
	gf := precision.EffectiveGEMMFormat(f, matrixUnits)
	path := precision.PathFor(gf, matrixUnits)
	h := float64(c.Hidden)
	ffn := float64(c.FFN)
	s := float64(c.SeqLen)
	bs := float64(b) * s
	hd := c.headDim()
	heads := float64(c.Heads) * float64(b)

	ks := []kernels.Desc{
		kernels.Norm("ln1", bs*h, f),
		kernels.GEMM("qkv", bs, 3*h, h, 1, gf, path),
		kernels.GEMM("attn.scores", s, s, hd, heads, gf, path),
		kernels.Elementwise("attn.softmax", heads*s*s, 5, 1, f),
		kernels.GEMM("attn.values", s, hd, s, heads, gf, path),
		kernels.GEMM("attn.proj", bs, h, h, 1, gf, path),
		kernels.Elementwise("residual1", bs*h, 1, 1, f),
		kernels.Norm("ln2", bs*h, f),
	}
	if c.Arch == LLaMA2 {
		ks = append(ks,
			kernels.GEMM("mlp.gate", bs, ffn, h, 1, gf, path),
			kernels.GEMM("mlp.up", bs, ffn, h, 1, gf, path),
			kernels.Elementwise("mlp.silu_mul", bs*ffn, 4, 1, f),
			kernels.GEMM("mlp.down", bs, h, ffn, 1, gf, path),
		)
	} else {
		ks = append(ks,
			kernels.GEMM("mlp.up", bs, ffn, h, 1, gf, path),
			kernels.Elementwise("mlp.gelu", bs*ffn, 8, 0, f),
			kernels.GEMM("mlp.down", bs, h, ffn, 1, gf, path),
		)
	}
	ks = append(ks, kernels.Elementwise("residual2", bs*h, 1, 1, f))
	return ks
}

// BackwardLayerKernels returns the kernel sequence of one block's backward
// pass. Every forward GEMM contributes a data-gradient and a
// weight-gradient GEMM of the same shape; pointwise and norm kernels
// re-traverse their activations. With recompute enabled (activation
// checkpointing) the forward kernels are replayed first, matching
// Megatron/DeepSpeed full-recompute behaviour.
func (c Config) BackwardLayerKernels(b int, f precision.Format, matrixUnits bool, recompute bool) []kernels.Desc {
	fwd := c.ForwardLayerKernels(b, f, matrixUnits)
	var ks []kernels.Desc
	if recompute {
		for _, k := range fwd {
			k.Name = "recompute." + k.Name
			ks = append(ks, k)
		}
	}
	for i := len(fwd) - 1; i >= 0; i-- {
		k := fwd[i]
		if k.Op == kernels.OpGEMM {
			dg := k
			dg.Name = "bwd.dgrad." + k.Name
			wg := k
			wg.Name = "bwd.wgrad." + k.Name
			ks = append(ks, dg, wg)
		} else {
			bk := k
			bk.Name = "bwd." + k.Name
			bk.FLOPs *= 1.5
			bk.Bytes *= 1.5
			ks = append(ks, bk)
		}
	}
	return ks
}

// HeadKernels returns the embedding lookup and LM-head kernels. fwd
// selects the forward (lookup + logits GEMM) or backward (logits gradient
// GEMMs + embedding gradient scatter) direction.
func (c Config) HeadKernels(b int, f precision.Format, matrixUnits bool, fwd bool) []kernels.Desc {
	gf := precision.EffectiveGEMMFormat(f, matrixUnits)
	path := precision.PathFor(gf, matrixUnits)
	h := float64(c.Hidden)
	v := float64(c.Vocab)
	bs := float64(b) * float64(c.SeqLen)
	if fwd {
		return []kernels.Desc{
			kernels.Elementwise("embed.lookup", bs*h, 1, 1, f),
			kernels.GEMM("lm_head", bs, v, h, 1, gf, path),
			kernels.Elementwise("loss.softmax_ce", bs*v, 5, 0, f),
		}
	}
	return []kernels.Desc{
		kernels.GEMM("bwd.lm_head.dgrad", bs, h, v, 1, gf, path),
		kernels.GEMM("bwd.lm_head.wgrad", h, v, bs, 1, gf, path),
		kernels.Elementwise("bwd.embed.scatter", bs*h, 1, 2, f),
	}
}

// OptimizerKernel returns the AdamW step over the given parameter count
// (pass the local shard size under FSDP).
func (c Config) OptimizerKernel(params float64) kernels.Desc {
	return kernels.Optimizer("adamw", params)
}

// IterationFLOPs returns the standard 6·P·tokens estimate of total
// floating-point work per training iteration at global batch size b
// (forward 2PT + backward 4PT), used for MFU-style reporting.
func (c Config) IterationFLOPs(b int) float64 {
	tokens := float64(b) * float64(c.SeqLen)
	return 6 * c.TotalParams() * tokens
}

// Zoo returns the Table II workloads in the paper's order.
func Zoo() []Config {
	return []Config{GPT3XL(), GPT3_2_7B(), GPT3_6_7B(), GPT3_13B(), LLaMA2_13B()}
}

// Names returns the zoo model names in the paper's order — the values
// ByName accepts, enumerated by the service catalog endpoint.
func Names() []string {
	var out []string
	for _, m := range Zoo() {
		out = append(out, m.Name)
	}
	return out
}

// ByName returns the zoo model with the given name, or an error.
func ByName(name string) (Config, error) {
	for _, m := range Zoo() {
		if m.Name == name {
			return m, nil
		}
	}
	return Config{}, fmt.Errorf("model: unknown model %q", name)
}

// defaultSeqLen is the training sequence length used across experiments
// (documented in DESIGN.md; the paper does not state one).
const defaultSeqLen = 1024

// GPT3XL is GPT-3 XL: 1.3B parameters, 24 layers, 32 heads, hidden 2048.
func GPT3XL() Config {
	return Config{Name: "GPT-3 XL", Arch: GPT3, NominalParams: 1.3e9,
		Layers: 24, Heads: 32, Hidden: 2048, FFN: 8192, Vocab: 50257, SeqLen: defaultSeqLen}
}

// GPT3_2_7B is GPT-3 2.7B: 32 layers, 32 heads, hidden 2560.
func GPT3_2_7B() Config {
	return Config{Name: "GPT-3 2.7B", Arch: GPT3, NominalParams: 2.7e9,
		Layers: 32, Heads: 32, Hidden: 2560, FFN: 10240, Vocab: 50257, SeqLen: defaultSeqLen}
}

// GPT3_6_7B is GPT-3 6.7B: 32 layers, 32 heads, hidden 4096.
func GPT3_6_7B() Config {
	return Config{Name: "GPT-3 6.7B", Arch: GPT3, NominalParams: 6.7e9,
		Layers: 32, Heads: 32, Hidden: 4096, FFN: 16384, Vocab: 50257, SeqLen: defaultSeqLen}
}

// GPT3_13B is GPT-3 13B: 40 layers, 40 heads, hidden 5120.
func GPT3_13B() Config {
	return Config{Name: "GPT-3 13B", Arch: GPT3, NominalParams: 13e9,
		Layers: 40, Heads: 40, Hidden: 5120, FFN: 20480, Vocab: 50257, SeqLen: defaultSeqLen}
}

// LLaMA2_13B is LLaMA-2 13B: 40 layers, 40 heads, hidden 5120, SwiGLU FFN
// 13824.
func LLaMA2_13B() Config {
	return Config{Name: "LLaMA2 13B", Arch: LLaMA2, NominalParams: 13e9,
		Layers: 40, Heads: 40, Hidden: 5120, FFN: 13824, Vocab: 32000, SeqLen: defaultSeqLen}
}
