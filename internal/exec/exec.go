// Package exec holds the plumbing shared by the distribution-strategy
// executors: execution modes (overlapped versus sequential), the plan a
// built schedule produces, per-iteration measurement extraction, and the
// dependency chaining used to serialize communication against computation
// in sequential mode.
package exec

import (
	"context"
	"errors"
	"fmt"

	"overlapsim/internal/gpu"
	"overlapsim/internal/metrics"
	"overlapsim/internal/sim"
	"overlapsim/internal/trace"
)

// Mode selects how communication is scheduled relative to computation.
type Mode int

// Execution modes (§IV-D: the measured Overlapping and Sequential
// scenarios; Ideal is derived, not executed).
const (
	// Overlapped runs communication on dedicated streams concurrently
	// with computation, as the training frameworks do by default.
	Overlapped Mode = iota
	// Sequential serializes every communication operation against the
	// computation of its participating devices: no overlap, no
	// contention.
	Sequential
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case Overlapped:
		return "overlapped"
	case Sequential:
		return "sequential"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Plan is a fully built simulation ready to run.
type Plan struct {
	// Engine is the simulation engine with all tasks enqueued.
	Engine *sim.Engine
	// Cluster is the device platform (also the power observer).
	Cluster *gpu.Cluster
	// Iterations groups the created tasks by training iteration,
	// warmups first.
	Iterations [][]*sim.Task
	// Warmup is the number of leading iterations excluded from
	// measurement.
	Warmup int
	// Symmetry is the builder's rank-symmetry annotation. It only
	// steers whether the runner probes for collapsible classes; the
	// collapse itself is gated on structural proof (see symmetry.go).
	Symmetry Symmetry
	// NoCollapse disables the symmetry fast path even when detection
	// would prove it (differential tests, reference benchmarks).
	NoCollapse bool
	// Parallel controls pooled epoch execution: 0 sizes a worker pool
	// automatically from the live task count, 1 forces serial execution,
	// n > 1 forces an n-worker pool.
	Parallel int

	ran        bool
	classes    []sim.Class
	ghostTasks int
}

// Run executes the simulation.
func (p *Plan) Run() error {
	//overlaplint:allow ctxflow compat entrypoint: Run() is the no-context convenience wrapper; cancellable callers use RunContext
	return p.RunContext(context.Background())
}

// RunContext executes the simulation, stopping early with ctx.Err() when
// ctx is cancelled. A cancelled plan cannot be re-run.
//
// Before running, the plan applies the rank-symmetry fast path: it
// detects structurally identical devices, simulates one representative
// per class, and reconstructs the ghost ranks' timelines and telemetry
// afterwards — bit-identical to the full simulation, O(classes) instead
// of O(ranks). Wide plans additionally execute their per-epoch scans on
// a worker pool (see Parallel). Collapse requires a deterministic rate
// model; jittered clusters always run in full.
func (p *Plan) RunContext(ctx context.Context) error {
	if p.ran {
		return fmt.Errorf("exec: plan already ran")
	}
	p.ran = true
	live := len(p.Engine.Tasks())
	collapsible := !p.NoCollapse && p.Symmetry != SymmetryNone &&
		(p.Cluster == nil || p.Cluster.Deterministic())
	if collapsible {
		classes := p.mergeableClasses(p.Engine.DetectClasses(PayloadEq))
		if ghosts := p.Engine.Collapse(classes); ghosts > 0 {
			p.classes = classes
			p.ghostTasks = ghosts
			live -= ghosts
			if p.Cluster != nil {
				p.Cluster.SetAliases(aliasVector(p.Cluster.N(), classes))
			}
		}
	}
	if pool := p.newPool(live); pool != nil {
		p.Engine.SetPool(pool)
		if p.Cluster != nil {
			p.Cluster.SetPool(pool)
		}
		defer func() {
			p.Engine.SetPool(nil)
			if p.Cluster != nil {
				p.Cluster.SetPool(nil)
			}
			pool.Close()
		}()
	}
	err := p.Engine.RunContext(ctx)
	if err == nil && p.ghostTasks > 0 && p.Cluster != nil {
		p.Cluster.FinalizeAliases()
	}
	return err
}

// GhostTasks reports how many tasks the symmetry fast path reconstructed
// instead of simulating (zero before the plan runs or when it ran in
// full).
func (p *Plan) GhostTasks() int { return p.ghostTasks }

// CollapsedClasses returns the symmetry classes the run actually merged.
func (p *Plan) CollapsedClasses() []sim.Class { return p.classes }

// ErrNotRun is returned when a plan's measurements are requested before
// the plan has executed.
var ErrNotRun = errors.New("exec: plan has not run")

// EngineStats reports the engine's scheduling self-stats (epochs, dirty
// rechecks, arena usage — see sim.Stats). Valid at any time; most useful
// after the plan has run, when it describes the whole execution.
func (p *Plan) EngineStats() sim.Stats {
	return p.Engine.Stats()
}

// MeasuredIterations returns the per-iteration measurements of the
// non-warmup iterations. Kernel times are per-GPU means (devices are
// symmetric under FSDP; under pipeline parallelism the mean is the paper's
// per-GPU aggregation); E2E is the span of the iteration's tasks. It
// returns ErrNotRun if the plan has not executed yet.
func (p *Plan) MeasuredIterations() ([]metrics.Iteration, error) {
	if !p.ran {
		return nil, fmt.Errorf("MeasuredIterations: %w", ErrNotRun)
	}
	alias := p.measureAlias()
	var out []metrics.Iteration
	for i := p.Warmup; i < len(p.Iterations); i++ {
		out = append(out, iterationMeasurement(p.Iterations[i], alias))
	}
	return out, nil
}

// measureAlias flattens the collapsed classes into a device→rep map for
// measurement extraction, or nil when the plan ran in full.
func (p *Plan) measureAlias() []int {
	if len(p.classes) == 0 {
		return nil
	}
	n := 0
	for _, c := range p.classes {
		for _, m := range c.Members {
			if m >= n {
				n = m + 1
			}
		}
	}
	if p.Cluster != nil && p.Cluster.N() > n {
		n = p.Cluster.N()
	}
	return aliasVector(n, p.classes)
}

// MeasuredTimeline returns the merged kernel timeline of the measured
// iterations (for overlap-ratio and trace reporting). It returns
// ErrNotRun if the plan has not executed yet.
func (p *Plan) MeasuredTimeline() (*trace.Timeline, error) {
	if !p.ran {
		return nil, fmt.Errorf("MeasuredTimeline: %w", ErrNotRun)
	}
	tl := trace.New()
	for i := p.Warmup; i < len(p.Iterations); i++ {
		for _, t := range p.Iterations[i] {
			tl.AddTask(t)
		}
	}
	return tl, nil
}

// IterationMeasurement extracts the paper's per-iteration measurement from
// one iteration's completed tasks. Kernel times are averaged across the
// devices present so that Eq. 4's subtraction of the absolute compute
// slowdown from the wall-clock E2E is dimensionally per-GPU.
func IterationMeasurement(tasks []*sim.Task) metrics.Iteration {
	return iterationMeasurement(tasks, nil)
}

// iterationMeasurement is IterationMeasurement with an optional
// device→representative alias map from a collapsed run. With aliases the
// timeline is built over representative devices only and each ghost
// device contributes its representative's cached per-device tuple — the
// same additions in the same device order as the full extraction, since
// a ghost's intervals are bitwise copies of its representative's. The
// result is bit-identical either way.
func iterationMeasurement(tasks []*sim.Task, alias []int) metrics.Iteration {
	var keep func(device int) bool
	if alias != nil {
		keep = func(device int) bool {
			return device >= len(alias) || alias[device] == device
		}
	}
	tl := trace.FromTasksKept(tasks, keep)
	var it metrics.Iteration
	devs := tl.Devices()
	if len(devs) == 0 {
		return it
	}
	n := 0.0
	if alias == nil {
		for _, d := range devs {
			computeT, commT, computeOv, commOv := tl.DeviceOverlap(d)
			it.ComputeKernelTime += computeT
			it.CommKernelTime += commT
			it.OverlappedComputeTime += computeOv
			it.OverlappedCommTime += commOv
		}
		n = float64(len(devs))
	} else {
		type overlap struct{ computeT, commT, computeOv, commOv float64 }
		cache := make(map[int]overlap, len(devs))
		for _, d := range devs {
			var o overlap
			o.computeT, o.commT, o.computeOv, o.commOv = tl.DeviceOverlap(d)
			cache[d] = o
		}
		for d := 0; d < len(alias); d++ {
			o, ok := cache[alias[d]]
			if !ok {
				continue // device without intervals in the full timeline either
			}
			it.ComputeKernelTime += o.computeT
			it.CommKernelTime += o.commT
			it.OverlappedComputeTime += o.computeOv
			it.OverlappedCommTime += o.commOv
			n++
		}
	}
	it.ComputeKernelTime /= n
	it.CommKernelTime /= n
	it.OverlappedComputeTime /= n
	it.OverlappedCommTime /= n
	// The iteration window opens at the first compute kernel (early-posted
	// communication belongs to the window of the data it carries) and
	// closes when everything has drained.
	_, end := tl.Span()
	start, _, ok := tl.KindSpan(sim.KindCompute)
	if !ok {
		start, _ = tl.Span()
	}
	it.E2E = end - start
	return it
}

// Chain serializes operations per device through explicit dependencies —
// the sequential-mode mechanism. Unlike stream FIFO order, dependency
// chaining cannot deadlock on rendezvous operations, because the per-device
// orders are generated from one legal global schedule.
type Chain struct {
	last map[int]*sim.Task
}

// NewChain returns an empty chain.
func NewChain() *Chain { return &Chain{last: make(map[int]*sim.Task)} }

// Order makes t run after every previously ordered operation on each of
// the listed devices, then records t as those devices' latest operation.
func (c *Chain) Order(t *sim.Task, devices ...int) {
	for _, d := range devices {
		if prev := c.last[d]; prev != nil && prev != t {
			t.After(prev)
		}
	}
	for _, d := range devices {
		c.last[d] = t
	}
}

// Last returns the most recent operation ordered on the device, or nil.
func (c *Chain) Last(device int) *sim.Task { return c.last[device] }
