package collective

import "overlapsim/internal/topo"

// Algo selects the collective algorithm. The zero value (Ring) matches
// what NCCL/RCCL use for the large, bandwidth-bound payloads of the
// paper's workloads; Tree is the latency-optimized variant NCCL switches
// to for small payloads; Auto picks the faster of the two, mirroring
// NCCL's tuning tables.
type Algo int

// Algorithms.
const (
	// Ring is the bandwidth-optimal ring algorithm.
	Ring Algo = iota
	// Tree is the latency-optimal binary-tree algorithm (all-reduce and
	// broadcast only).
	Tree
	// Auto selects the faster algorithm for the payload and topology.
	Auto
)

// String returns the algorithm name.
func (a Algo) String() string {
	switch a {
	case Ring:
		return "ring"
	case Tree:
		return "tree"
	case Auto:
		return "auto"
	default:
		return "algo?"
	}
}

// treeSupported reports whether the operation has a tree variant.
func treeSupported(op Op) bool {
	return op == AllReduce || op == Broadcast
}

// treeDepth returns ⌈log2 n⌉.
func treeDepth(n int) int {
	d := 0
	for v := n - 1; v > 0; v >>= 1 {
		d++
	}
	return d
}

// TreeWireBytesPerRank returns the per-rank wire traffic of the tree
// algorithm: an interior node forwards the full payload up and down for
// all-reduce (2S), and once for broadcast (S).
func TreeWireBytesPerRank(d Desc) float64 {
	if d.Op == AllReduce {
		return 2 * d.Bytes
	}
	return d.Bytes
}

// TreeSteps returns the latency-bound step count of the tree algorithm.
func TreeSteps(d Desc) int {
	depth := treeDepth(d.N)
	if d.Op == AllReduce {
		return 2 * depth
	}
	return depth
}

// treeTime returns the completion time of the tree algorithm on the
// fabric. The full payload crosses every tier (an interior node forwards
// it up and down), paying the tier's bandwidth and log-depth latency; on
// a single-tier fabric this is the classic closed form.
func treeTime(d Desc, f topo.Fabric) float64 {
	tiers := f.Tiers()
	spans := tierSpans(d, tiers)
	total := 0.0
	for i, k := range spans {
		if k < 2 {
			continue
		}
		steps := treeDepth(k)
		if d.Op == AllReduce {
			steps *= 2
		}
		total += TreeWireBytesPerRank(d)/tiers[i].BW + float64(steps)*tiers[i].StepLatency
	}
	return total
}

// TimeWith returns the completion time of the collective under the given
// algorithm. Auto picks the faster supported variant.
func TimeWith(d Desc, f topo.Fabric, a Algo) float64 {
	ring := Time(d, f)
	if a == Ring || !treeSupported(d.Op) {
		return ring
	}
	tree := treeTime(d, f)
	if a == Tree {
		return tree
	}
	if tree < ring {
		return tree
	}
	return ring
}

// BestAlgo returns the algorithm Auto would choose for the collective.
func BestAlgo(d Desc, f topo.Fabric) Algo {
	if !treeSupported(d.Op) {
		return Ring
	}
	if TimeWith(d, f, Tree) < TimeWith(d, f, Ring) {
		return Tree
	}
	return Ring
}
