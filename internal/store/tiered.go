package store

import (
	"errors"

	"overlapsim/internal/core"
	"overlapsim/internal/sweep"
)

// Tiered composes cache backends into one sweep.Cache, ordered fastest
// first. Get walks the tiers in order and, on a hit in a lower tier,
// promotes the entry into every tier above it (write-back promotion),
// so results fetched from disk or a peer are served from memory next
// time. Put writes through to every tier.
//
// Because entries are content-addressed and immutable, promotion and
// write-through need no coherence protocol: concurrent writers of the
// same key converge on identical bytes.
type Tiered struct {
	tiers []sweep.Cache
}

// NewTiered composes the given backends, fastest first, skipping nils.
func NewTiered(tiers ...sweep.Cache) *Tiered {
	t := &Tiered{}
	for _, c := range tiers {
		if c != nil {
			t.tiers = append(t.tiers, c)
		}
	}
	return t
}

// Tiers returns the composed backends in lookup order.
func (t *Tiered) Tiers() []sweep.Cache {
	return append([]sweep.Cache(nil), t.tiers...)
}

// Get implements sweep.Cache with write-back promotion.
func (t *Tiered) Get(key string) (*core.Result, bool) {
	for i, c := range t.tiers {
		res, ok := c.Get(key)
		if !ok {
			continue
		}
		// Promote into the faster tiers. Best effort: a failed promotion
		// costs a slower lookup later, never correctness — but it is not
		// silent, either: each failure lands on the per-backend put-error
		// series, where a persistently failing tier is visible.
		for j := 0; j < i; j++ {
			if err := t.tiers[j].Put(key, res); err == nil {
				mTieredPromotions.Inc()
			} else {
				sweep.NotePutError(t.tiers[j])
			}
		}
		return res, true
	}
	return nil, false
}

// Put implements sweep.Cache, writing through to every tier. It returns
// the joined errors of the tiers that failed; the entry is still stored
// in every tier that succeeded.
func (t *Tiered) Put(key string, res *core.Result) error {
	var errs []error
	for _, c := range t.tiers {
		if err := c.Put(key, res); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Name labels the composite on cache metrics.
func (t *Tiered) Name() string { return "tiered" }
