package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"overlapsim/internal/hw"
)

// FuzzCanonicalConfig asserts that canonicalization is a fixed point of
// the encode/parse cycle: for any config that parses at all,
//
//	CanonicalJSON(parse(CanonicalJSON(c))) == CanonicalJSON(c)
//
// If it were not, a config round-tripped through its own canonical
// encoding (a stored sweep spec, a cache key re-derived from a result
// file) would silently take a different content address than the run
// that produced it — the no-warmup/default-warmup aliasing this fuzz
// target originally caught.
func FuzzCanonicalConfig(f *testing.F) {
	seed := func(cfg Config) {
		b, err := json.Marshal(cfg)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	seed(tinyCfg(FSDP))
	seed(tinyCfg(Pipeline))
	tp := tinyCfg("tp")
	tp.TPDegree = 2
	seed(tp)
	neg := tinyCfg(FSDP)
	neg.Warmup = -3 // the non-idempotent corner: negatives must canonicalize to a fixed point
	seed(neg)
	jit := tinyCfg(FSDP)
	jit.JitterSigma = 0.01
	jit.Seed = 7 // jittered configs encode through the JitterScheme wrapper
	seed(jit)
	multi := tinyCfg(FSDP)
	multi.System = hw.NewMultiNode(hw.H100(), 4, 2)
	seed(multi)
	unknown := tinyCfg(FSDP)
	unknown.Parallelism = "not-a-registered-strategy"
	seed(unknown)

	f.Fuzz(func(t *testing.T, data []byte) {
		var cfg Config
		if json.Unmarshal(data, &cfg) != nil {
			t.Skip("not a config")
		}
		first, err := cfg.CanonicalJSON()
		if err != nil {
			t.Skip("not encodable")
		}
		var reparsed Config
		if err := json.Unmarshal(first, &reparsed); err != nil {
			t.Fatalf("canonical JSON does not re-parse: %v\n%s", err, first)
		}
		second, err := reparsed.CanonicalJSON()
		if err != nil {
			t.Fatalf("re-parsed canonical config does not encode: %v", err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("canonicalization is not a fixed point:\n first: %s\nsecond: %s", first, second)
		}
		fp1, err1 := cfg.Fingerprint()
		fp2, err2 := reparsed.Fingerprint()
		if err1 != nil || err2 != nil {
			t.Fatalf("fingerprint errors: %v, %v", err1, err2)
		}
		if fp1 != fp2 {
			t.Fatalf("round-tripped config changed address: %s vs %s", fp1, fp2)
		}
	})
}
