// Package hw is the open hardware platform layer: GPU specifications and
// system (node/cluster) descriptions, served from name-keyed registries
// that mirror the strategy registry. The four GPUs the paper evaluates
// (Table I) and its five single-node systems self-register as built-ins;
// user-defined GPUs and systems join through Register/RegisterSystem or
// the JSON schema Load accepts, and every consumer — core.Run, sweep
// grids, the overlapd catalog, the CLIs — resolves them by name.
//
// Peak-rate and capacity numbers of the built-ins come from vendor
// datasheets (the same sources as the paper's Table I); contention and
// power-component coefficients are calibration parameters whose values are
// justified against the paper's measurements in EXPERIMENTS.md.
package hw

import (
	"fmt"
	"strings"

	"overlapsim/internal/precision"
)

// Vendor identifies a GPU vendor, which selects the collective library
// behaviour (NCCL versus RCCL) in the contention model and supplies the
// default telemetry interval and fabric kind. Behaviour-determining
// properties (fabric kind, contention coefficients) are explicit spec
// fields, so a custom GPU is not locked to its vendor's defaults.
type Vendor int

// Vendors.
const (
	NVIDIA Vendor = iota
	AMD
)

// String returns the vendor name.
func (v Vendor) String() string {
	switch v {
	case NVIDIA:
		return "NVIDIA"
	case AMD:
		return "AMD"
	default:
		return fmt.Sprintf("Vendor(%d)", int(v))
	}
}

// ParseVendor resolves a vendor name, case-insensitively.
func ParseVendor(s string) (Vendor, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "NVIDIA":
		return NVIDIA, nil
	case "AMD":
		return AMD, nil
	default:
		return 0, fmt.Errorf("hw: unknown vendor %q (have NVIDIA, AMD)", s)
	}
}

// PowerParams are the component power model for one GPU. Components are
// peak draws in watts at full utilization and nominal frequency; see
// internal/power for how they compose.
type PowerParams struct {
	// IdleW is static power with no work running.
	IdleW float64 `json:"IdleW"`
	// VectorW is the vector (CUDA-core / stream-processor) datapath peak
	// dynamic power.
	VectorW float64 `json:"VectorW"`
	// MatrixW is the matrix-unit (Tensor Core / Matrix Core) datapath peak
	// dynamic power.
	MatrixW float64 `json:"MatrixW"`
	// MemW is HBM and memory-system peak dynamic power.
	MemW float64 `json:"MemW"`
	// CommW is interconnect (NVLink / Infinity Fabric PHY + copy engine)
	// peak dynamic power.
	CommW float64 `json:"CommW"`
	// SurgeW is the additional transient draw observed when compute and
	// communication are simultaneously active (di/dt and duplicated
	// LSU/L2 activity). This component reproduces the paper's finding that
	// overlapping execution shows up to ~25% higher peak power.
	SurgeW float64 `json:"SurgeW"`
	// FMin is the lowest DVFS frequency factor power capping can reach.
	FMin float64 `json:"FMin"`
	// FreqExp is the exponent of dynamic power in the frequency factor
	// (P_dyn ∝ f^FreqExp, capturing combined f·V² scaling).
	FreqExp float64 `json:"FreqExp"`
}

// ContentionParams govern how concurrent communication degrades compute on
// the same GPU. These are the simulator's representation of the effects the
// paper attributes its slowdowns to (§V-A).
type ContentionParams struct {
	// CollSMsReduce is the number of SMs/CUs a reducing collective
	// (all-reduce, reduce-scatter) occupies while running.
	CollSMsReduce int `json:"CollSMsReduce"`
	// CollSMsCopy is the number of SMs/CUs a pure-copy collective
	// (all-gather, broadcast, send/recv) occupies.
	CollSMsCopy int `json:"CollSMsCopy"`
	// HBMPerWireByte is the HBM traffic generated per byte moved on the
	// wire by a collective (read + write + reduction traffic).
	HBMPerWireByte float64 `json:"HBMPerWireByte"`
	// SerializeFrac is the fraction by which compute issue rate drops
	// while any collective kernel is resident, beyond explicit SM and
	// bandwidth stealing. It models collective-library scheduler
	// interference; RCCL's coarser kernel scheduling gives AMD parts a
	// larger value (the "architectural distinctions" of §IV-B).
	SerializeFrac float64 `json:"SerializeFrac"`
}

// GPUSpec describes one GPU model.
type GPUSpec struct {
	// Name is the marketing name used throughout reports ("A100", ...).
	Name string `json:"Name"`
	// Vendor selects NCCL- or RCCL-like collective behaviour.
	Vendor Vendor `json:"Vendor"`
	// Year is the launch year (Table I).
	Year int `json:"Year"`

	// SMs is the number of streaming multiprocessors (NVIDIA) or compute
	// units (AMD; both GCDs for MI250).
	SMs int `json:"SMs"`
	// BoostMHz is the nominal boost clock; frequency factors are relative
	// to it.
	BoostMHz int `json:"BoostMHz"`

	// MemGB is HBM capacity in GiB (Table I).
	MemGB float64 `json:"MemGB"`
	// MemBWGBs is peak HBM bandwidth in GB/s.
	MemBWGBs float64 `json:"MemBWGBs"`
	// MemHeadroom is the fraction of peak HBM bandwidth achievable by
	// well-tuned kernels.
	MemHeadroom float64 `json:"MemHeadroom"`

	// LinkBWGBs is the aggregate bidirectional interconnect bandwidth in
	// GB/s as marketed (NVLink 900/600, Infinity Fabric 300) — the numbers
	// the paper quotes in §IV-A.
	LinkBWGBs float64 `json:"LinkBWGBs"`
	// LinkLatency is the per-hop latency of one collective step in
	// seconds.
	LinkLatency float64 `json:"LinkLatency"`
	// AlgEff is the fraction of unidirectional link bandwidth a tuned
	// collective sustains (protocol + pipelining overheads).
	AlgEff float64 `json:"AlgEff"`

	// TDPW is the thermal design power in watts; power plots normalize to
	// it.
	TDPW float64 `json:"TDPW"`

	// VectorTFLOPS is peak dense TFLOPS on the vector datapath per format.
	VectorTFLOPS map[precision.Format]float64 `json:"VectorTFLOPS"`
	// MatrixTFLOPS is peak dense TFLOPS on the matrix datapath per format.
	MatrixTFLOPS map[precision.Format]float64 `json:"MatrixTFLOPS"`

	// TableFP32TFLOPS and TableFP16TFLOPS are the headline Table I numbers
	// (the FP16 entries are the vendor marketing peaks the paper prints).
	TableFP32TFLOPS float64 `json:"TableFP32TFLOPS"`
	TableFP16TFLOPS float64 `json:"TableFP16TFLOPS"`

	// KHalfVector, KHalfMatrix and KHalfMatrixTF32 parameterize the GEMM
	// saturation-efficiency curve eff(k) = MaxEff·k/(k+KHalf) on each
	// datapath: the reduction-dimension size at which the datapath reaches
	// half of its achievable efficiency. Matrix units need much larger
	// GEMMs to saturate than vector units, which is what makes low
	// precision and Tensor Cores cheap on small models and contended on
	// large ones (Figs. 10 and 11).
	KHalfVector     float64 `json:"KHalfVector"`
	KHalfMatrix     float64 `json:"KHalfMatrix"`
	KHalfMatrixTF32 float64 `json:"KHalfMatrixTF32"`
	// MaxEff is the asymptotic fraction of peak a perfect-size GEMM
	// reaches.
	MaxEff float64 `json:"MaxEff"`

	Power      PowerParams      `json:"Power"`
	Contention ContentionParams `json:"Contention"`
}

// PeakFLOPS returns the peak dense throughput in FLOP/s for the given
// datapath and format. It returns 0 if the combination is unsupported.
func (g *GPUSpec) PeakFLOPS(path precision.Datapath, f precision.Format) float64 {
	var tf float64
	switch path {
	case precision.Vector:
		tf = g.VectorTFLOPS[f]
	case precision.Matrix:
		tf = g.MatrixTFLOPS[f]
	}
	return tf * 1e12
}

// KHalf returns the saturation half-point of the GEMM efficiency curve for
// the given datapath and format.
func (g *GPUSpec) KHalf(path precision.Datapath, f precision.Format) float64 {
	if path == precision.Vector {
		return g.KHalfVector
	}
	if f == precision.TF32 || f == precision.FP32 {
		return g.KHalfMatrixTF32
	}
	return g.KHalfMatrix
}

// GEMMEff returns the achievable fraction of peak for a GEMM whose
// reduction dimension is k, on the given datapath and format.
func (g *GPUSpec) GEMMEff(k float64, path precision.Datapath, f precision.Format) float64 {
	if k <= 0 {
		return 0
	}
	kh := g.KHalf(path, f)
	return g.MaxEff * k / (k + kh)
}

// UniLinkBW returns the achievable unidirectional collective bandwidth in
// bytes/s: half the marketed bidirectional aggregate, derated by AlgEff.
func (g *GPUSpec) UniLinkBW() float64 {
	return g.LinkBWGBs / 2 * g.AlgEff * 1e9
}

// MemBW returns achievable HBM bandwidth in bytes/s.
func (g *GPUSpec) MemBW() float64 {
	return g.MemBWGBs * g.MemHeadroom * 1e9
}

// MemBytes returns HBM capacity in bytes.
func (g *GPUSpec) MemBytes() float64 {
	return g.MemGB * (1 << 30)
}

// Validate reports whether the spec is self-consistent enough to
// simulate. Registration and JSON loading gate on it so a broken custom
// GPU fails at definition time, not as a NaN mid-sweep.
func (g *GPUSpec) Validate() error {
	if g == nil {
		return fmt.Errorf("hw: nil GPU spec")
	}
	if strings.TrimSpace(g.Name) == "" {
		return fmt.Errorf("hw: GPU spec with empty name")
	}
	if g.SMs <= 0 || g.BoostMHz <= 0 {
		return fmt.Errorf("hw: %s: SMs and boost clock must be positive", g.Name)
	}
	if g.MemGB <= 0 || g.MemBWGBs <= 0 {
		return fmt.Errorf("hw: %s: memory capacity and bandwidth must be positive", g.Name)
	}
	if g.MemHeadroom <= 0 || g.MemHeadroom > 1 {
		return fmt.Errorf("hw: %s: memory headroom %g outside (0,1]", g.Name, g.MemHeadroom)
	}
	if g.LinkBWGBs <= 0 || g.LinkLatency < 0 {
		return fmt.Errorf("hw: %s: invalid interconnect parameters", g.Name)
	}
	if g.AlgEff <= 0 || g.AlgEff > 1 {
		return fmt.Errorf("hw: %s: collective efficiency %g outside (0,1]", g.Name, g.AlgEff)
	}
	if g.TDPW <= g.Power.IdleW {
		return fmt.Errorf("hw: %s: TDP %g not above idle power %g", g.Name, g.TDPW, g.Power.IdleW)
	}
	if g.PeakFLOPS(precision.Vector, precision.FP32) <= 0 {
		return fmt.Errorf("hw: %s: missing vector FP32 throughput", g.Name)
	}
	if g.MaxEff <= 0 || g.MaxEff > 1 {
		return fmt.Errorf("hw: %s: GEMM max efficiency %g outside (0,1]", g.Name, g.MaxEff)
	}
	if g.KHalfVector <= 0 || g.KHalfMatrix <= 0 || g.KHalfMatrixTF32 <= 0 {
		return fmt.Errorf("hw: %s: GEMM saturation half-points must be positive", g.Name)
	}
	if g.Power.FMin <= 0 || g.Power.FMin >= 1 {
		return fmt.Errorf("hw: %s: FMin %g outside (0,1)", g.Name, g.Power.FMin)
	}
	if g.Power.FreqExp <= 0 {
		return fmt.Errorf("hw: %s: frequency exponent must be positive", g.Name)
	}
	if g.Contention.CollSMsReduce < 0 || g.Contention.CollSMsCopy < 0 || g.Contention.HBMPerWireByte < 0 {
		return fmt.Errorf("hw: %s: contention parameters must be non-negative", g.Name)
	}
	if g.Contention.SerializeFrac < 0 || g.Contention.SerializeFrac >= 1 {
		return fmt.Errorf("hw: %s: serialize fraction %g outside [0,1)", g.Name, g.Contention.SerializeFrac)
	}
	return nil
}

// Fabric kinds a System may name for its intra-node interconnect. The
// empty string selects the vendor default (switched for NVIDIA, mesh for
// AMD), which is how the pre-registry catalog behaved.
const (
	FabricSwitched = "switched"
	FabricMesh     = "mesh"
)

// NICSpec describes the inter-node network tier of a multi-node system:
// the per-GPU share of the node's scale-out bandwidth (RDMA NICs) and the
// latency of one inter-node collective step.
type NICSpec struct {
	// BWGBs is the achievable unidirectional inter-node bandwidth per GPU
	// in GB/s (e.g. one 400 Gb/s NDR InfiniBand rail per GPU ≈ 50 GB/s
	// raw, derated below).
	BWGBs float64 `json:"BWGBs"`
	// Latency is the per-hop latency of one inter-node collective step in
	// seconds.
	Latency float64 `json:"Latency"`
	// AlgEff is the fraction of BWGBs a tuned collective sustains across
	// the NIC tier (0 picks DefaultNICAlgEff).
	AlgEff float64 `json:"AlgEff,omitempty"`
}

// DefaultNICAlgEff is the collective efficiency assumed on the NIC tier
// when a NICSpec leaves AlgEff zero.
const DefaultNICAlgEff = 0.80

// DefaultNIC is the inter-node tier assumed when a multi-node system does
// not specify one: a 400 Gb/s rail per GPU at RDMA latency.
func DefaultNIC() NICSpec {
	return NICSpec{BWGBs: 50, Latency: 10e-6, AlgEff: DefaultNICAlgEff}
}

// BW returns the achievable per-GPU inter-node collective bandwidth in
// bytes/s.
func (n NICSpec) BW() float64 {
	eff := n.AlgEff
	if eff == 0 {
		eff = DefaultNICAlgEff
	}
	return n.BWGBs * eff * 1e9
}

// Validate reports whether the NIC tier is usable.
func (n NICSpec) Validate() error {
	if n.BWGBs <= 0 {
		return fmt.Errorf("hw: NIC bandwidth %g GB/s must be positive", n.BWGBs)
	}
	if n.Latency < 0 {
		return fmt.Errorf("hw: NIC latency %g must be non-negative", n.Latency)
	}
	if n.AlgEff < 0 || n.AlgEff > 1 {
		return fmt.Errorf("hw: NIC efficiency %g outside [0,1]", n.AlgEff)
	}
	return nil
}

// System is a multi-GPU configuration: one or more identical nodes of N
// identical GPUs each, joined by an inter-node NIC tier when Nodes > 1.
// The zero values of the multi-node fields describe the paper's
// single-node systems (§IV-A) and — deliberately — encode to the exact
// canonical JSON the pre-registry System produced, so fingerprints and
// content-addressed sweep caches survive the redesign.
type System struct {
	// Name labels the system in reports and keys it in the registry
	// ("H100x8", "H100x8x4", ...).
	Name string `json:"Name"`
	// GPU is the device model every GPU in the system instantiates.
	GPU *GPUSpec `json:"GPU"`
	// N is the number of GPUs per node.
	N int `json:"N"`
	// Nodes is the number of nodes; 0 (and 1) mean a single node.
	Nodes int `json:"Nodes,omitempty"`
	// Fabric names the intra-node interconnect kind (FabricSwitched or
	// FabricMesh); empty selects the GPU vendor's default.
	Fabric string `json:"Fabric,omitempty"`
	// NIC is the inter-node tier; nil selects DefaultNIC when Nodes > 1
	// and is meaningless (and canonicalized away) on a single node.
	NIC *NICSpec `json:"NIC,omitempty"`
}

// NewSystem builds a single-node system of n identical GPUs.
func NewSystem(g *GPUSpec, n int) System {
	if g == nil {
		//overlaplint:allow nopanic constructor contract: user-supplied shapes are validated by sweep specs and registry Load before construction; a bad shape here is a programming error
		panic("hw: nil GPU spec")
	}
	if n < 1 {
		//overlaplint:allow nopanic constructor contract: user-supplied shapes are validated by sweep specs and registry Load before construction; a bad shape here is a programming error
		panic(fmt.Sprintf("hw: invalid GPU count %d", n))
	}
	return System{Name: fmt.Sprintf("%sx%d", g.Name, n), GPU: g, N: n}
}

// NewMultiNode builds a system of nodes identical nodes with perNode GPUs
// each, joined by the default NIC tier. Its name reads GPUxPerNodexNodes
// ("H100x8x4" is four 8-GPU H100 nodes).
func NewMultiNode(g *GPUSpec, perNode, nodes int) System {
	if g == nil {
		//overlaplint:allow nopanic constructor contract: user-supplied shapes are validated by sweep specs and registry Load before construction; a bad shape here is a programming error
		panic("hw: nil GPU spec")
	}
	if perNode < 1 || nodes < 1 {
		//overlaplint:allow nopanic constructor contract: user-supplied shapes are validated by sweep specs and registry Load before construction; a bad shape here is a programming error
		panic(fmt.Sprintf("hw: invalid shape %d GPUs x %d nodes", perNode, nodes))
	}
	s := System{Name: fmt.Sprintf("%sx%d", g.Name, perNode), GPU: g, N: perNode}
	if nodes > 1 {
		s.Name = fmt.Sprintf("%sx%dx%d", g.Name, perNode, nodes)
		s.Nodes = nodes
	}
	return s
}

// NodeCount returns the number of nodes (at least 1).
func (s System) NodeCount() int {
	if s.Nodes < 2 {
		return 1
	}
	return s.Nodes
}

// TotalGPUs returns the number of GPUs across all nodes — the rank count
// strategies shard over and the device count the cluster simulates.
func (s System) TotalGPUs() int {
	return s.N * s.NodeCount()
}

// NICSpec returns the effective inter-node tier: the explicit NIC when
// set, DefaultNIC otherwise.
func (s System) NICSpec() NICSpec {
	if s.NIC != nil {
		return *s.NIC
	}
	return DefaultNIC()
}

// Canonical returns the system with every inert multi-node field cleared:
// Nodes 1 becomes 0, and the fabric override and NIC tier are dropped
// when they cannot change behaviour. Two systems describing the same
// hardware therefore encode (and fingerprint) identically — in
// particular, legacy single-node systems keep their pre-registry bytes.
func (s System) Canonical() System {
	if s.Nodes < 2 {
		s.Nodes = 0
		s.NIC = nil // single-node systems never cross the NIC tier
	} else if s.NIC != nil {
		nic := *s.NIC
		if nic.AlgEff == DefaultNICAlgEff {
			nic.AlgEff = 0 // the explicit default, made implicit
		}
		if nic == (NICSpec{BWGBs: DefaultNIC().BWGBs, Latency: DefaultNIC().Latency}) {
			s.NIC = nil
		} else {
			s.NIC = &nic
		}
	}
	if s.GPU != nil && s.Fabric == DefaultFabric(s.GPU.Vendor) {
		s.Fabric = ""
	}
	return s
}

// DefaultFabric returns the intra-node fabric kind a vendor's systems use
// when a System does not name one: NVLink+NVSwitch for NVIDIA, Infinity
// Fabric meshes for AMD (§II-A).
func DefaultFabric(v Vendor) string {
	if v == AMD {
		return FabricMesh
	}
	return FabricSwitched
}

// FabricKind returns the effective intra-node fabric kind.
func (s System) FabricKind() string {
	if s.Fabric != "" {
		return s.Fabric
	}
	if s.GPU == nil {
		return FabricSwitched
	}
	return DefaultFabric(s.GPU.Vendor)
}

// Validate reports whether the system is well formed and simulable.
func (s System) Validate() error {
	if strings.TrimSpace(s.Name) == "" {
		return fmt.Errorf("hw: system with empty name")
	}
	if err := s.GPU.Validate(); err != nil {
		return fmt.Errorf("hw: system %s: %w", s.Name, err)
	}
	if s.N < 1 {
		return fmt.Errorf("hw: system %s: invalid per-node GPU count %d", s.Name, s.N)
	}
	if s.Nodes < 0 {
		return fmt.Errorf("hw: system %s: invalid node count %d", s.Name, s.Nodes)
	}
	switch s.Fabric {
	case "", FabricSwitched, FabricMesh:
	default:
		return fmt.Errorf("hw: system %s: unknown fabric %q (have %q, %q)",
			s.Name, s.Fabric, FabricSwitched, FabricMesh)
	}
	if s.NIC != nil {
		if err := s.NIC.Validate(); err != nil {
			return fmt.Errorf("hw: system %s: %w", s.Name, err)
		}
	}
	return nil
}
