package service

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"overlapsim/internal/telemetry"
)

// scrape fetches /metrics and returns the exposition text.
func scrape(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// metricValue extracts one sample's value from the exposition, or 0
// when the series does not exist yet. series is the full sample name
// including labels, e.g. `sweep_cache_requests_total{backend="mem",outcome="hit"}`.
func metricValue(t *testing.T, text, series string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("unparseable sample %q: %v", line, err)
			}
			return v
		}
	}
	return 0
}

// checkExposition is a minimal Prometheus text-format validator: every
// family has HELP/TYPE comments before its samples, every sample line
// parses as `name{labels} value`, and histogram families carry the
// cumulative +Inf bucket.
func checkExposition(t *testing.T, text string) {
	t.Helper()
	typed := map[string]string{}
	sampled := map[string]bool{}
	infBucket := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			t.Error("blank line in exposition")
			continue
		}
		if strings.HasPrefix(line, "# ") {
			fields := strings.Fields(line)
			if len(fields) < 4 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				t.Errorf("malformed comment %q", line)
				continue
			}
			if fields[1] == "TYPE" {
				typed[fields[2]] = fields[3]
			}
			continue
		}
		// Label values may contain spaces, so the value is what follows
		// the LAST space and the series name+labels everything before it.
		cut := strings.LastIndex(line, " ")
		if cut < 0 {
			t.Errorf("sample line %q has no value", line)
			continue
		}
		name, value := line[:cut], line[cut+1:]
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			t.Errorf("sample %q value does not parse: %v", line, err)
		}
		if base, labels, ok := strings.Cut(name, "{"); ok {
			if !strings.HasSuffix(labels, "}") {
				t.Errorf("unterminated labels in %q", line)
			}
			name = base
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if b, ok := strings.CutSuffix(name, suf); ok && typed[b] == "histogram" {
				base = b
				break
			}
		}
		if typed[base] == "" {
			t.Errorf("sample %q has no preceding # TYPE", line)
		}
		sampled[base] = true
		if strings.HasPrefix(line, base+"_bucket{") && strings.Contains(line, `le="+Inf"`) {
			infBucket[base] = true
		}
	}
	for name, typ := range typed {
		if typ == "histogram" && !infBucket[name] {
			t.Errorf("histogram %s lacks a +Inf bucket", name)
		}
		if !sampled[name] {
			t.Errorf("family %s has TYPE but no samples", name)
		}
	}
}

// The e2e telemetry contract: a cold sweep then the identical sweep
// again; the warm pass must raise the cache-hit counter by the grid
// size, the exposition must stay parseable throughout, and /v1/stats
// must mirror it in JSON.
func TestMetricsColdWarmSweep(t *testing.T) {
	_, ts := newTestServer(t)
	const hitSeries = `sweep_cache_requests_total{backend="mem",outcome="hit"}`
	const missSeries = `sweep_cache_requests_total{backend="mem",outcome="miss"}`

	before := scrape(t, ts)
	checkExposition(t, before)
	hits0 := metricValue(t, before, hitSeries)
	misses0 := metricValue(t, before, missSeries)

	spec := `{
		"name": "metrics-test",
		"gpus": ["H100"],
		"models": ["GPT-3 XL"],
		"parallelisms": ["fsdp", "pp"],
		"formats": ["fp16"]
	}`
	for pass := 0; pass < 2; pass++ {
		resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		sub := decode[submitBody](t, resp, http.StatusAccepted)
		if body := waitForJob(t, ts, sub.ID); body.Status != statusDone {
			t.Fatalf("pass %d finished as %q", pass, body.Status)
		}
	}

	after := scrape(t, ts)
	checkExposition(t, after)
	if d := metricValue(t, after, hitSeries) - hits0; d != 2 {
		t.Errorf("warm pass raised the hit counter by %g, want 2", d)
	}
	if d := metricValue(t, after, missSeries) - misses0; d != 2 {
		t.Errorf("cold pass raised the miss counter by %g, want 2", d)
	}
	// The HTTP middleware observed the traffic.
	if !strings.Contains(after, `overlapd_http_requests_total{route="POST /v1/sweeps",code="202"}`) {
		t.Error("request counter missing the sweep submissions")
	}
	if metricValue(t, after, `overlapd_jobs_running{kind="sweep"}`) != 0 {
		t.Error("finished jobs still gauged as running")
	}

	// The JSON mirror carries the same families plus the job ledger.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	stats := decode[statsBody](t, resp, http.StatusOK)
	if stats.UptimeS <= 0 {
		t.Errorf("uptime %g", stats.UptimeS)
	}
	if stats.Jobs["sweep"]["done"] != 2 {
		t.Errorf("job ledger %v, want 2 done sweeps", stats.Jobs)
	}
	found := false
	for _, fam := range stats.Metrics {
		if fam.Name == "sweep_cache_requests_total" {
			found = true
			if fam.Type != telemetry.TypeCounter {
				t.Errorf("snapshot type %q", fam.Type)
			}
		}
	}
	if !found {
		t.Error("snapshot missing sweep_cache_requests_total")
	}
}

// Engine self-stats must surface in the sweep job body: the aggregate
// footer names the task/epoch totals and the per-point results carry
// the per-run stats, identically on cold and warm passes (cached
// results replay the stats their simulation recorded).
func TestJobBodyCarriesEngineStats(t *testing.T) {
	_, ts := newTestServer(t)
	spec := `{"gpus": ["H100"], "models": ["GPT-3 XL"], "formats": ["fp16"]}`

	var aggs [2]string
	for pass := 0; pass < 2; pass++ {
		resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		sub := decode[submitBody](t, resp, http.StatusAccepted)
		body := waitForJob(t, ts, sub.ID)
		if body.Status != statusDone {
			t.Fatalf("pass %d finished as %q", pass, body.Status)
		}
		if !strings.Contains(body.Aggregate, "engine:") {
			t.Fatalf("aggregate lacks engine stats: %q", body.Aggregate)
		}
		aggs[pass] = body.Aggregate
		for _, p := range body.Points {
			if st := p.Res.Overlapped.Engine; st.Epochs <= 0 || st.TasksRetired <= 0 {
				t.Errorf("pass %d point %d engine stats empty: %+v", pass, p.Index, st)
			}
		}
		if pass == 1 && body.CacheMisses != 0 {
			t.Errorf("warm pass reports %d misses", body.CacheMisses)
		}
	}
	// Same engine totals either side of the cache.
	cut := func(s string) string { return s[strings.Index(s, "engine:"):] }
	if cut(aggs[0]) != cut(aggs[1]) {
		t.Errorf("engine stats differ across cache:\ncold: %s\nwarm: %s", aggs[0], aggs[1])
	}
}
