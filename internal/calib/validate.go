package calib

import (
	"context"
	"fmt"

	"overlapsim/internal/core"
	"overlapsim/internal/hw"
)

// Scenario is one step profile scored against the simulator: the
// measured numbers next to the stock and calibrated predictions, with
// fractional absolute errors.
type Scenario struct {
	// Label identifies the workload (core.Config.Label form).
	Label string `json:"label"`

	// Measured ground truth: step time (s), per-step energy across all
	// GPUs (J), mean per-GPU board power (W).
	MeasuredStepS  float64 `json:"measured_step_s"`
	MeasuredEnergy float64 `json:"measured_energy_j"`
	MeasuredAvgW   float64 `json:"measured_avg_w"`

	Stock      Prediction `json:"stock"`
	Calibrated Prediction `json:"calibrated"`
}

// Prediction is one system's simulated numbers for a scenario and their
// errors against the measurement.
type Prediction struct {
	StepS   float64 `json:"step_s"`
	EnergyJ float64 `json:"energy_j"`
	AvgW    float64 `json:"avg_w"`

	// StepErr, EnergyErr and PowerErr are fractional absolute errors
	// (|sim - measured| / measured).
	StepErr   float64 `json:"step_err"`
	EnergyErr float64 `json:"energy_err"`
	PowerErr  float64 `json:"power_err"`
}

// Aggregate summarizes one system's error over every scenario: the mean
// absolute percentage error per metric, and their mean as the single
// headline number.
type Aggregate struct {
	StepMAPE   float64 `json:"step_mape"`
	EnergyMAPE float64 `json:"energy_mape"`
	PowerMAPE  float64 `json:"power_mape"`
	// MAPE is the mean of the three per-metric MAPEs.
	MAPE float64 `json:"mape"`
}

// Report is the outcome of a validation run. It carries no timestamps
// or wall-clock fields (matching opt.Advice's conventions), so equal
// inputs render byte-identical JSON run to run.
type Report struct {
	Profile string `json:"profile,omitempty"`
	// GPU and System are the stock names; CalibratedGPU and
	// CalibratedSystem the fitted ones (equal to the stock names in
	// override mode).
	GPU              string `json:"gpu"`
	System           string `json:"system"`
	CalibratedGPU    string `json:"calibrated_gpu"`
	CalibratedSystem string `json:"calibrated_system"`

	Scenarios []Scenario `json:"scenarios"`

	StockError      Aggregate `json:"stock_error"`
	CalibratedError Aggregate `json:"calibrated_error"`
	// Improved reports whether calibration lowered the aggregate MAPE.
	Improved bool `json:"improved"`
	// Notes echo the fit's notes for provenance.
	Notes []string `json:"notes,omitempty"`
}

// Validate replays every step profile through the simulator twice — on
// the stock system and on the fitted one — and scores both against the
// measurements. It is the closing arc of the calibration loop: the same
// numbers that drove the fit judge it, and the calibrated system must
// beat stock on them or the fit is not earning its overlay.
func Validate(ctx context.Context, p *Profile, f *Fitted) (*Report, error) {
	if err := p.Validate(); err != nil {
		recordValidate(outcomeError)
		return nil, err
	}
	if f == nil || f.GPU == nil {
		recordValidate(outcomeError)
		return nil, fmt.Errorf("calib: validating a nil fit")
	}
	if len(p.Steps) == 0 {
		recordValidate(outcomeError)
		return nil, fmt.Errorf("calib: profile has no step measurements to validate against")
	}
	rep := &Report{
		Profile: p.Name,
		GPU:     f.BaseGPU, System: f.BaseSystem,
		CalibratedGPU: f.GPU.Name, CalibratedSystem: f.System.Name,
		Notes: f.Notes,
	}
	for i, st := range p.Steps {
		cfg, err := stepConfig(f.Base, st)
		if err != nil {
			recordValidate(outcomeError)
			return nil, fmt.Errorf("calib: step %d: %w", i, err)
		}
		sc := Scenario{
			Label:         cfg.Label(),
			MeasuredStepS: st.StepMS / 1e3,
			MeasuredAvgW:  st.AvgPowerW,
		}
		sc.MeasuredEnergy = st.EnergyJ
		if sc.MeasuredEnergy == 0 {
			sc.MeasuredEnergy = st.AvgPowerW * float64(f.Base.TotalGPUs()) * sc.MeasuredStepS
		}
		if sc.Stock, err = predict(ctx, cfg, f.Base, sc); err != nil {
			recordValidate(outcomeError)
			return nil, fmt.Errorf("calib: step %d on stock %s: %w", i, f.Base.Name, err)
		}
		cfg.System = f.System
		if sc.Calibrated, err = predict(ctx, cfg, f.System, sc); err != nil {
			recordValidate(outcomeError)
			return nil, fmt.Errorf("calib: step %d on calibrated %s: %w", i, f.System.Name, err)
		}
		rep.Scenarios = append(rep.Scenarios, sc)
	}
	rep.StockError = aggregate(rep.Scenarios, func(s Scenario) Prediction { return s.Stock })
	rep.CalibratedError = aggregate(rep.Scenarios, func(s Scenario) Prediction { return s.Calibrated })
	rep.Improved = rep.CalibratedError.MAPE < rep.StockError.MAPE
	recordValidate(outcomeOK)
	return rep, nil
}

// predict runs one scenario on one system and scores it against the
// measured columns already filled in sc. Simulated energy follows the
// sweep package's convention: board power times overlapped step time,
// summed over the GPUs.
func predict(ctx context.Context, cfg core.Config, sys hw.System, sc Scenario) (Prediction, error) {
	res, err := core.Run(ctx, cfg)
	if err != nil {
		return Prediction{}, err
	}
	ovl := res.Overlapped
	pr := Prediction{
		StepS: ovl.Mean.E2E,
		AvgW:  ovl.AvgTDP * sys.GPU.TDPW,
	}
	pr.EnergyJ = pr.AvgW * float64(sys.TotalGPUs()) * pr.StepS
	pr.StepErr = fracErr(pr.StepS, sc.MeasuredStepS)
	pr.EnergyErr = fracErr(pr.EnergyJ, sc.MeasuredEnergy)
	pr.PowerErr = fracErr(pr.AvgW, sc.MeasuredAvgW)
	return pr, nil
}

func fracErr(sim, measured float64) float64 {
	if measured <= 0 {
		return 0
	}
	d := sim - measured
	if d < 0 {
		d = -d
	}
	return d / measured
}

func aggregate(scs []Scenario, pick func(Scenario) Prediction) Aggregate {
	var a Aggregate
	for _, sc := range scs {
		p := pick(sc)
		a.StepMAPE += p.StepErr
		a.EnergyMAPE += p.EnergyErr
		a.PowerMAPE += p.PowerErr
	}
	n := float64(len(scs))
	a.StepMAPE /= n
	a.EnergyMAPE /= n
	a.PowerMAPE /= n
	a.MAPE = (a.StepMAPE + a.EnergyMAPE + a.PowerMAPE) / 3
	return a
}
