package precision

import "testing"

func TestBytes(t *testing.T) {
	cases := map[Format]int{FP32: 4, TF32: 4, FP16: 2, BF16: 2}
	for f, want := range cases {
		if got := f.Bytes(); got != want {
			t.Errorf("%v.Bytes() = %d, want %d", f, got, want)
		}
	}
}

func TestBytesUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unknown format should panic")
		}
	}()
	Format(99).Bytes()
}

func TestString(t *testing.T) {
	cases := map[Format]string{FP32: "FP32", TF32: "TF32", FP16: "FP16", BF16: "BF16"}
	for f, want := range cases {
		if f.String() != want {
			t.Errorf("%d.String() = %q", int(f), f.String())
		}
	}
	if Datapath(7).String() == "" || Vector.String() != "vector" || Matrix.String() != "matrix" {
		t.Error("datapath names")
	}
}

func TestPathFor(t *testing.T) {
	cases := []struct {
		f      Format
		matrix bool
		want   Datapath
	}{
		{FP32, false, Vector},
		{FP32, true, Vector}, // plain FP32 stays on the vector path
		{TF32, true, Matrix},
		{TF32, false, Vector},
		{FP16, true, Matrix},
		{FP16, false, Vector},
		{BF16, true, Matrix},
	}
	for _, c := range cases {
		if got := PathFor(c.f, c.matrix); got != c.want {
			t.Errorf("PathFor(%v, %v) = %v, want %v", c.f, c.matrix, got, c.want)
		}
	}
}

func TestEffectiveGEMMFormat(t *testing.T) {
	if EffectiveGEMMFormat(FP32, true) != TF32 {
		t.Error("FP32 with matrix units executes as TF32")
	}
	if EffectiveGEMMFormat(FP32, false) != FP32 {
		t.Error("FP32 without matrix units stays FP32")
	}
	if EffectiveGEMMFormat(FP16, true) != FP16 {
		t.Error("FP16 unchanged")
	}
}
