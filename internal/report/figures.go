package report

import (
	"fmt"
	"io"

	"overlapsim/internal/hw"
	"overlapsim/internal/metrics"
	"overlapsim/internal/model"
	"overlapsim/internal/workload"
)

// Table1 renders the paper's Table I (evaluated GPUs) from the catalog.
func Table1(w io.Writer) error {
	headers := []string{"Vendor", "GPU", "Year", "Peak FP32 (TFLOPS)", "Peak FP16 (TFLOPS)", "Memory (GB)"}
	var rows [][]string
	for _, g := range hw.Catalog() {
		rows = append(rows, []string{
			g.Vendor.String(), g.Name, fmt.Sprintf("%d", g.Year),
			F(g.TableFP32TFLOPS, 1), F(g.TableFP16TFLOPS, 1), F(g.MemGB, 0),
		})
	}
	return Table(w, headers, rows)
}

// Table2 renders the paper's Table II (workloads) from the model zoo.
func Table2(w io.Writer) error {
	headers := []string{"Model", "Parameters", "Layers", "Attention Heads", "Hidden Dimensions"}
	var rows [][]string
	for _, m := range model.Zoo() {
		rows = append(rows, []string{
			m.Name, fmt.Sprintf("%.1fB", m.NominalParams/1e9),
			fmt.Sprintf("%d", m.Layers), fmt.Sprintf("%d", m.Heads), fmt.Sprintf("%d", m.Hidden),
		})
	}
	return Table(w, headers, rows)
}

// pointHeaderCells are the identifying columns shared by grid renderers.
func pointCells(p workload.Point) []string {
	return []string{
		p.Cfg.System.Name,
		p.Cfg.Parallelism.String(),
		p.Cfg.Model.Name,
		fmt.Sprintf("%d", p.Cfg.Batch),
		p.Cfg.Format.String(),
	}
}

const oomCell = "OOM"

// OverlapFigure renders a Fig. 1-style series: overlap ratio and the
// absolute amount of overlapped computation per configuration.
func OverlapFigure(w io.Writer, pts []workload.Point) error {
	headers := []string{"System", "Par", "Model", "Batch", "Fmt",
		"OverlapRatio", "OverlappedCompute(ms)", "Compute(ms)", "Comm(ms)"}
	var rows [][]string
	for _, p := range pts {
		row := pointCells(p)
		if p.Skipped() {
			row = append(row, oomCell, oomCell, oomCell, oomCell)
		} else if p.Res != nil {
			m := p.Res.Overlapped.Mean
			row = append(row,
				Pct(p.Res.Char.OverlapRatio),
				Ms(m.OverlappedComputeTime),
				Ms(m.ComputeKernelTime),
				Ms(m.CommKernelTime))
		} else {
			continue
		}
		rows = append(rows, row)
	}
	return Table(w, headers, rows)
}

// SlowdownFigure renders the Fig. 4 series: compute slowdown (Eq. 1) per
// configuration, with the overlap ratio for context.
func SlowdownFigure(w io.Writer, pts []workload.Point) error {
	headers := []string{"System", "Par", "Model", "Batch", "Fmt",
		"ComputeSlowdown", "OverlapRatio"}
	var rows [][]string
	for _, p := range pts {
		row := pointCells(p)
		if p.Skipped() {
			row = append(row, oomCell, oomCell)
		} else if p.Res != nil {
			row = append(row, Pct(p.Res.Char.ComputeSlowdown), Pct(p.Res.Char.OverlapRatio))
		} else {
			continue
		}
		rows = append(rows, row)
	}
	return Table(w, headers, rows)
}

// E2EFigure renders the Fig. 5 series: ideal, overlapped and sequential
// end-to-end iteration latency.
func E2EFigure(w io.Writer, pts []workload.Point) error {
	headers := []string{"System", "Par", "Model", "Batch", "Fmt",
		"Ideal(ms)", "Overlapped(ms)", "Sequential(ms)", "SeqPenalty", "IdealGap"}
	var rows [][]string
	for _, p := range pts {
		row := pointCells(p)
		if p.Skipped() {
			row = append(row, oomCell, oomCell, oomCell, oomCell, oomCell)
		} else if p.Res != nil {
			c := p.Res.Char
			row = append(row,
				Ms(c.E2EIdeal),
				Ms(p.Res.Overlapped.Mean.E2E),
				Ms(p.Res.Sequential.Mean.E2E),
				Pct(c.SeqPenalty),
				Pct(c.IdealGap))
		} else {
			continue
		}
		rows = append(rows, row)
	}
	return Table(w, headers, rows)
}

// PowerFigure renders the Fig. 6 series: average and peak power (TDP
// normalized) for overlapped and sequential execution.
func PowerFigure(w io.Writer, pts []workload.Point) error {
	headers := []string{"System", "Par", "Model", "Batch", "Fmt",
		"AvgOvl(TDP)", "PeakOvl(TDP)", "AvgSeq(TDP)", "PeakSeq(TDP)", "EnergyOvl(kJ)"}
	var rows [][]string
	for _, p := range pts {
		row := pointCells(p)
		if p.Skipped() {
			row = append(row, oomCell, oomCell, oomCell, oomCell, oomCell)
		} else if p.Res != nil {
			row = append(row,
				TDP(p.Res.Overlapped.AvgTDP), TDP(p.Res.Overlapped.PeakTDP),
				TDP(p.Res.Sequential.AvgTDP), TDP(p.Res.Sequential.PeakTDP),
				F(p.Res.Overlapped.EnergyJ/1e3, 2))
		} else {
			continue
		}
		rows = append(rows, row)
	}
	return Table(w, headers, rows)
}

// PowerCapFigure renders the Fig. 9 series: execution time and compute
// slowdown versus power cap.
func PowerCapFigure(w io.Writer, pts []workload.Point) error {
	headers := []string{"Cap(W)", "E2EOvl(ms)", "E2ESeq(ms)", "ComputeSlowdown", "AvgOvl(TDP)", "FreqNote"}
	var rows [][]string
	var base float64
	for _, p := range pts {
		if p.Res == nil {
			continue
		}
		cap := "none"
		if p.Cfg.Caps.PowerW > 0 {
			cap = F(p.Cfg.Caps.PowerW, 0)
		}
		if base == 0 {
			base = p.Res.Overlapped.Mean.E2E
		}
		note := fmt.Sprintf("+%.0f%% vs uncapped", (p.Res.Overlapped.Mean.E2E/base-1)*100)
		rows = append(rows, []string{
			cap,
			Ms(p.Res.Overlapped.Mean.E2E),
			Ms(p.Res.Sequential.Mean.E2E),
			Pct(p.Res.Char.ComputeSlowdown),
			TDP(p.Res.Overlapped.AvgTDP),
			note,
		})
	}
	return Table(w, headers, rows)
}

// AblationFigure renders the Fig. 10/11 series: pairs of configurations
// (baseline vs. ablated) with slowdown and power.
func AblationFigure(w io.Writer, pts []workload.Point, variantName func(p workload.Point) string) error {
	headers := []string{"Model", "Batch", "Variant", "ComputeSlowdown", "OverlapRatio", "AvgPower(TDP)", "PeakPower(TDP)"}
	var rows [][]string
	for _, p := range pts {
		row := []string{p.Cfg.Model.Name, fmt.Sprintf("%d", p.Cfg.Batch), variantName(p)}
		if p.Skipped() {
			row = append(row, oomCell, oomCell, oomCell, oomCell)
		} else if p.Res != nil {
			row = append(row,
				Pct(p.Res.Char.ComputeSlowdown),
				Pct(p.Res.Char.OverlapRatio),
				TDP(p.Res.Overlapped.AvgTDP),
				TDP(p.Res.Overlapped.PeakTDP))
		} else {
			continue
		}
		rows = append(rows, row)
	}
	return Table(w, headers, rows)
}

// Headline summarizes the paper's abstract-level aggregates over a grid:
// mean/max compute slowdown and mean/max sequential penalty.
func Headline(w io.Writer, pts []workload.Point) error {
	var slow, seqPen []float64
	for _, p := range pts {
		if p.Res == nil {
			continue
		}
		slow = append(slow, p.Res.Char.ComputeSlowdown)
		seqPen = append(seqPen, p.Res.Char.SeqPenalty)
	}
	s := metrics.Summarize(slow)
	q := metrics.Summarize(seqPen)
	_, err := fmt.Fprintf(w,
		"compute slowdown from overlap : mean %s, max %s (paper: avg 18.9%%, max 40.0%%)\n"+
			"sequential penalty vs overlap : mean %s, max %s (paper: avg 10.2%%, max 26.6%%)\n",
		Pct(s.Mean), Pct(s.Max), Pct(q.Mean), Pct(q.Max))
	return err
}
