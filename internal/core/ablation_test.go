package core

// Ablation tests for the extension features: gradient accumulation (the
// §II-B mitigation), the DDP baseline strategy, and frequency capping.

import (
	"context"
	"testing"

	"overlapsim/internal/hw"
	"overlapsim/internal/model"
	"overlapsim/internal/power"
	"overlapsim/internal/precision"
)

// Gradient accumulation dilutes communication per unit of compute, so the
// compute slowdown and overlap ratio must fall.
func TestGradAccumReducesSlowdown(t *testing.T) {
	base := mustRun(t, Config{
		System: hw.SystemMI250x4(), Model: model.GPT3_6_7B(), Parallelism: FSDP,
		Batch: 8, Format: precision.FP16, MatrixUnits: true,
	})
	accum := mustRun(t, Config{
		System: hw.SystemMI250x4(), Model: model.GPT3_6_7B(), Parallelism: FSDP,
		Batch: 8, Format: precision.FP16, MatrixUnits: true, GradAccumSteps: 4,
	})
	if accum.Char.ComputeSlowdown >= base.Char.ComputeSlowdown {
		t.Errorf("grad accumulation did not reduce slowdown: %.1f%% vs %.1f%%",
			accum.Char.ComputeSlowdown*100, base.Char.ComputeSlowdown*100)
	}
	// Communication per unit of compute must fall: reduce-scatters happen
	// once per iteration instead of once per micro-step. (The overlap
	// ratio itself barely moves — parameter gathers still run every
	// micro-step under ZeRO-3.)
	baseRatio := base.Overlapped.Mean.CommKernelTime / base.Overlapped.Mean.ComputeKernelTime
	accumRatio := accum.Overlapped.Mean.CommKernelTime / accum.Overlapped.Mean.ComputeKernelTime
	if accumRatio >= baseRatio {
		t.Errorf("grad accumulation did not dilute communication: %.3f vs %.3f", accumRatio, baseRatio)
	}
}

// The DDP baseline runs end-to-end through the harness and moves less
// communication than FSDP for the same model (1×P of gradients versus
// ≈3×P of parameters+gradients).
func TestDDPBaseline(t *testing.T) {
	cfg := tinyCfg(DDP)
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res)
	fsdpRes := mustRun(t, tinyCfg(FSDP))
	if res.Overlapped.Mean.CommKernelTime >= fsdpRes.Overlapped.Mean.CommKernelTime {
		t.Errorf("DDP comm %.3fms should be below FSDP %.3fms",
			res.Overlapped.Mean.CommKernelTime*1e3, fsdpRes.Overlapped.Mean.CommKernelTime*1e3)
	}
}

// DDP's full replica OOMs where FSDP's sharded states fit.
func TestDDPMemoryWall(t *testing.T) {
	cfg := Config{System: hw.SystemH100x4(), Model: model.GPT3_13B(), Parallelism: DDP,
		Batch: 8, Format: precision.FP16, MatrixUnits: true}
	if _, err := Run(context.Background(), cfg); err == nil {
		t.Fatal("13B under DDP must OOM on 80GB GPUs")
	}
	cfg.Parallelism = FSDP
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatalf("13B under FSDP must fit: %v", err)
	}
}

// Frequency capping (the paper's other throttling axis) slows execution
// monotonically and cuts power.
func TestFrequencyCapping(t *testing.T) {
	base := mustRun(t, tinyCfg(FSDP))
	prev := base.Overlapped.Mean.E2E
	for _, f := range []float64{0.8, 0.6, 0.4} {
		cfg := tinyCfg(FSDP)
		cfg.Caps = power.Caps{FreqFactor: f}
		res := mustRun(t, cfg)
		if res.Overlapped.Mean.E2E < prev {
			t.Errorf("freq cap %g: E2E %.2fms fell below looser cap's %.2fms",
				f, res.Overlapped.Mean.E2E*1e3, prev*1e3)
		}
		if res.Overlapped.AvgTDP >= base.Overlapped.AvgTDP {
			t.Errorf("freq cap %g did not reduce average power", f)
		}
		prev = res.Overlapped.Mean.E2E
	}
}
