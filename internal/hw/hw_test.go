package hw

import (
	"testing"
	"testing/quick"

	"overlapsim/internal/precision"
)

func TestCatalogMatchesTable1(t *testing.T) {
	want := []struct {
		name   string
		vendor Vendor
		year   int
		fp32   float64
		fp16   float64
		memGB  float64
	}{
		{"A100", NVIDIA, 2020, 19.5, 312, 40},
		{"H100", NVIDIA, 2022, 66.9, 1979, 80},
		{"MI210", AMD, 2021, 22.6, 181.0, 64},
		{"MI250", AMD, 2021, 45.3, 362.1, 128},
	}
	cat := Catalog()
	if len(cat) != len(want) {
		t.Fatalf("catalog has %d GPUs, want %d", len(cat), len(want))
	}
	for i, w := range want {
		g := cat[i]
		if g.Name != w.name || g.Vendor != w.vendor || g.Year != w.year {
			t.Errorf("row %d: got %s/%v/%d", i, g.Name, g.Vendor, g.Year)
		}
		if g.TableFP32TFLOPS != w.fp32 || g.TableFP16TFLOPS != w.fp16 || g.MemGB != w.memGB {
			t.Errorf("%s: Table I numbers %g/%g/%g, want %g/%g/%g",
				g.Name, g.TableFP32TFLOPS, g.TableFP16TFLOPS, g.MemGB, w.fp32, w.fp16, w.memGB)
		}
	}
}

func TestCatalogSanity(t *testing.T) {
	for _, g := range Catalog() {
		if g.SMs <= 0 || g.BoostMHz <= 0 {
			t.Errorf("%s: invalid SMs/clock", g.Name)
		}
		if g.TDPW <= g.Power.IdleW {
			t.Errorf("%s: TDP %g not above idle %g", g.Name, g.TDPW, g.Power.IdleW)
		}
		if g.MemBW() <= 0 || g.UniLinkBW() <= 0 || g.MemBytes() <= 0 {
			t.Errorf("%s: invalid bandwidths", g.Name)
		}
		if g.PeakFLOPS(precision.Matrix, precision.FP16) <= g.PeakFLOPS(precision.Vector, precision.FP32) {
			t.Errorf("%s: matrix FP16 peak should exceed vector FP32", g.Name)
		}
		if g.Power.FMin <= 0 || g.Power.FMin >= 1 {
			t.Errorf("%s: FMin %g outside (0,1)", g.Name, g.Power.FMin)
		}
		if g.Contention.CollSMsReduce <= g.Contention.CollSMsCopy {
			t.Errorf("%s: reducing collectives should occupy more SMs", g.Name)
		}
		if g.Contention.SerializeFrac < 0 || g.Contention.SerializeFrac >= 1 {
			t.Errorf("%s: serialize fraction %g", g.Name, g.Contention.SerializeFrac)
		}
	}
}

func TestRCCLWorseThanNCCL(t *testing.T) {
	// The paper attributes AMD's larger slowdowns to collective-library
	// and architectural differences; the catalog must encode that.
	for _, amd := range []*GPUSpec{MI210(), MI250()} {
		for _, nv := range []*GPUSpec{A100(), H100()} {
			if amd.Contention.SerializeFrac <= nv.Contention.SerializeFrac {
				t.Errorf("%s serialize %g not above %s %g",
					amd.Name, amd.Contention.SerializeFrac, nv.Name, nv.Contention.SerializeFrac)
			}
		}
	}
}

func TestByName(t *testing.T) {
	if ByName("H100") == nil || ByName("H100").Name != "H100" {
		t.Error("ByName(H100) failed")
	}
	if ByName("V100") != nil {
		t.Error("unknown GPU should return nil")
	}
}

func TestGEMMEffSaturates(t *testing.T) {
	g := H100()
	small := g.GEMMEff(512, precision.Matrix, precision.FP16)
	big := g.GEMMEff(16384, precision.Matrix, precision.FP16)
	if small >= big {
		t.Errorf("efficiency must grow with k: %g vs %g", small, big)
	}
	if big >= g.MaxEff {
		t.Errorf("efficiency %g must stay below MaxEff %g", big, g.MaxEff)
	}
	if g.GEMMEff(0, precision.Matrix, precision.FP16) != 0 {
		t.Error("zero k → zero efficiency")
	}
}

func TestMatrixNeedsLargerGEMMs(t *testing.T) {
	// The saturation half-point on the matrix datapath must exceed the
	// vector one — that is what makes Tensor Cores cheap on small models
	// (Fig. 10/11 behaviour).
	for _, g := range Catalog() {
		if g.KHalf(precision.Matrix, precision.FP16) <= g.KHalf(precision.Vector, precision.FP16) {
			t.Errorf("%s: matrix KHalf not above vector", g.Name)
		}
	}
}

func TestKHalfTF32Distinct(t *testing.T) {
	g := H100()
	if g.KHalf(precision.Matrix, precision.TF32) == g.KHalf(precision.Matrix, precision.FP16) {
		t.Error("TF32 and FP16 matrix saturation should differ")
	}
	if g.KHalf(precision.Matrix, precision.FP32) != g.KHalf(precision.Matrix, precision.TF32) {
		t.Error("matrix FP32 executes as TF32")
	}
}

func TestNewSystem(t *testing.T) {
	s := NewSystem(A100(), 4)
	if s.Name != "A100x4" || s.N != 4 {
		t.Errorf("system = %+v", s)
	}
}

func TestNewSystemPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewSystem(nil, 4) },
		func() { NewSystem(A100(), 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestVendorString(t *testing.T) {
	if NVIDIA.String() != "NVIDIA" || AMD.String() != "AMD" {
		t.Error("vendor names")
	}
}

// Property: GEMMEff is monotone in k for every GPU and datapath.
func TestQuickGEMMEffMonotone(t *testing.T) {
	gs := Catalog()
	f := func(gi uint8, k1, k2 uint16, path bool) bool {
		g := gs[int(gi)%len(gs)]
		p := precision.Vector
		if path {
			p = precision.Matrix
		}
		a, b := float64(k1)+1, float64(k2)+1
		if a > b {
			a, b = b, a
		}
		return g.GEMMEff(a, p, precision.FP16) <= g.GEMMEff(b, p, precision.FP16)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
