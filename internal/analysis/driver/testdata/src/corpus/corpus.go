// Package corpus exercises the driver's suppression rules through a
// test-only analyzer that flags every function whose name starts with
// Bad.
package corpus

func Bad() int { return 1 } // want `function Bad is flagged`

func Good() int { return 2 }

//overlaplint:allow flagbad corpus case: suppressed by a directive on the line above
func BadAllowedAbove() int { return 3 }

func BadAllowedInline() int { return 4 } //overlaplint:allow flagbad corpus case: suppressed by an inline directive

//overlaplint:allow flagbad corpus case: a directive two lines up does not reach the finding

func BadDirectiveTooFar() int { return 5 } // want `function BadDirectiveTooFar is flagged`
