// Package tp implements Megatron-style tensor parallelism with sequence
// parallelism — the worst-case overlap scenario the related work targets
// (Rashidi et al.; Cui & Pericàs): every transformer block's GEMMs are
// sharded 1/d across the tensor-parallel group, and the all-gathers that
// materialize activations before each sharded block half plus the
// reduce-scatters that re-shard its output sit directly on the critical
// path. Unlike FSDP's prefetchable parameter gathers or DDP's deferred
// gradient buckets, these collectives cannot be hidden behind independent
// compute in the forward pass; the only genuine overlap window is the
// backward pass, where weight-gradient GEMMs proceed while the next
// layer's activation gather and input-gradient reduce-scatter occupy the
// communication stream.
//
// When the TP degree d is smaller than the node, the n/d tensor-parallel
// groups are data-parallel replicas: each group trains its slice of the
// batch and per-layer gradient shards are all-reduced across groups,
// overlapping the remaining backward pass like DDP buckets.
//
// The package registers itself with the strategy registry under "tp" —
// without a single edit to internal/core, which resolves it purely
// through the registry.
package tp

import (
	"fmt"
	"strings"

	"overlapsim/internal/collective"
	"overlapsim/internal/exec"
	"overlapsim/internal/gpu"
	"overlapsim/internal/kernels"
	"overlapsim/internal/model"
	"overlapsim/internal/sim"
	"overlapsim/internal/strategy"
)

// Strategy implements strategy.Strategy for tensor parallelism.
type Strategy struct{}

func init() { strategy.Register(Strategy{}) }

// Name implements strategy.Strategy.
func (Strategy) Name() string { return "tp" }

// Describe implements strategy.Strategy.
func (Strategy) Describe() strategy.Info {
	return strategy.Info{
		Name:     "tp",
		Display:  "TP",
		Summary:  "tensor parallelism (Megatron, sequence-parallel): per-layer sharded GEMMs with all-gather/reduce-scatter on the critical path",
		Knobs:    []string{"tp_degree"},
		TPDegree: true,
	}
}

// Build implements strategy.Strategy.
func (Strategy) Build(cl *gpu.Cluster, p strategy.Params) (*exec.Plan, error) {
	return Build(cl, p)
}

// CanonicalParams implements strategy.Canonicalizer: the implicit TP
// degree default is the whole node.
func (Strategy) CanonicalParams(p strategy.Params, gpus int) strategy.Params {
	if p.TPDegree <= 0 {
		p.TPDegree = gpus
	}
	return p
}

// withDefaults resolves the implicit defaults; the degree default has a
// single source in CanonicalParams so runtime behavior and fingerprint
// canonicalization cannot drift apart.
func withDefaults(p strategy.Params, n int) strategy.Params {
	return Strategy{}.CanonicalParams(p.WithCommonDefaults(), n)
}

// Build constructs the multi-iteration tensor-parallel task graph on a
// fresh engine bound to the cluster.
func Build(cl *gpu.Cluster, p strategy.Params) (*exec.Plan, error) {
	n := cl.N()
	if p.TPDegree < 0 {
		return nil, fmt.Errorf("tp: invalid degree %d", p.TPDegree)
	}
	p = withDefaults(p, n)
	if err := p.Model.Validate(); err != nil {
		return nil, err
	}
	d := p.TPDegree
	if d < 2 {
		return nil, fmt.Errorf("tp: degree %d needs at least 2 GPUs per group", d)
	}
	if n%d != 0 {
		return nil, fmt.Errorf("tp: degree %d does not divide %d GPUs", d, n)
	}
	if p.Model.Heads%d != 0 {
		return nil, fmt.Errorf("tp: degree %d does not divide %d attention heads", d, p.Model.Heads)
	}
	groups := n / d
	if p.Batch%groups != 0 {
		return nil, fmt.Errorf("tp: batch %d not divisible by %d data-parallel groups", p.Batch, groups)
	}
	local := p.Batch / groups // per-group batch, sharded 1/d inside the group
	g := cl.GPU()
	if !p.SkipMemoryCheck {
		est := p.Model.FootprintTP(local, d, p.Format, p.Checkpoint)
		if est.Total() > g.MemBytes() {
			return nil, &model.ErrOOM{
				Model:     fmt.Sprintf("%s (TP d=%d bs=%d %s)", p.Model.Name, d, p.Batch, p.Format),
				GPU:       g.Name,
				NeedBytes: est.Total(),
				HaveBytes: g.MemBytes(),
			}
		}
	}

	eng := sim.NewEngine(cl)
	eng.AddObserver(cl)
	total := p.Warmup + p.Iterations
	L := p.Model.Layers
	// Per iteration: per group, L forward layers of 2 collectives + 2×d
	// computes, the head block, L backward layers of 2 collectives + 2×d
	// computes, plus cross-group reductions and the optimizer.
	estimate := total * (groups*(L*(4+4*d)+6+4*d) + L + 2)
	b := &builder{cfg: p, eng: eng, cl: cl, n: n, d: d, groups: groups, local: local,
		batch: exec.NewBatch(eng, estimate)}
	b.prepare()
	plan := &exec.Plan{Engine: eng, Cluster: cl, Warmup: p.Warmup, Symmetry: exec.SymmetryRanks}
	for it := 0; it < p.Warmup+p.Iterations; it++ {
		plan.Iterations = append(plan.Iterations, b.buildIteration(it))
	}
	return plan, nil
}

type builder struct {
	cfg    strategy.Params
	eng    *sim.Engine
	cl     *gpu.Cluster
	batch  *exec.Batch
	n      int
	d      int // tensor-parallel degree (GPUs per group)
	groups int // data-parallel group count (n/d)
	local  int // per-group batch

	computeS []*sim.Stream
	tpS      []*sim.Stream // per-group tensor-parallel collective stream
	dpS      *sim.Stream   // cross-group gradient all-reduce stream
	chain    *exec.Chain
	prep     *collective.Preparer

	prevIterEnd []*sim.Task
}

func (b *builder) sequential() bool { return b.cfg.Mode == exec.Sequential }

func (b *builder) prepare() {
	for dev := 0; dev < b.n; dev++ {
		b.computeS = append(b.computeS, b.eng.NewStream(fmt.Sprintf("compute%d", dev), dev))
	}
	if b.sequential() {
		b.chain = exec.NewChain()
	} else {
		for gr := 0; gr < b.groups; gr++ {
			b.tpS = append(b.tpS, b.eng.NewStream(fmt.Sprintf("comm.tp.%d", gr), gr*b.d))
		}
		if b.groups > 1 {
			b.dpS = b.eng.NewStream("comm.dp", 0)
		}
	}
	b.prevIterEnd = make([]*sim.Task, b.n)
}

// ranks returns the device indices of tensor-parallel group gr.
func (b *builder) ranks(gr int) []int {
	out := make([]int, b.d)
	for i := range out {
		out[i] = gr*b.d + i
	}
	return out
}

func (b *builder) allDevices() []int {
	devs := make([]int, b.n)
	for i := range devs {
		devs[i] = i
	}
	return devs
}

// newGroupColl creates one collective over tensor-parallel group gr.
func (b *builder) newGroupColl(name string, gr int, op collective.Op, bytes float64) *sim.Task {
	cd := collective.Desc{Name: name, Op: op, Bytes: bytes, N: b.d, Ranks: b.ranks(gr)}
	if err := cd.Validate(); err != nil {
		//overlaplint:allow nopanic builder invariant: the descriptor is derived from an already-validated config, so Validate failing here is a bug
		panic(err)
	}
	if b.prep == nil {
		b.prep = collective.NewPreparer(b.cl.Fabric())
	}
	cd, work := b.prep.Prepare(cd)
	if b.sequential() {
		s := b.eng.NewStream("seqcomm."+name, gr*b.d)
		t := b.batch.Task(name, sim.KindComm, work, cd, s)
		b.chain.Order(t, b.ranks(gr)...)
		return t
	}
	return b.batch.Task(name, sim.KindComm, work, cd, b.tpS[gr])
}

// newDPAllReduce creates the cross-group gradient all-reduce: every rank
// participates in a groups-way ring with its peers; symmetric groups make
// it one fluid task occupying all devices. The explicit Group records
// the strided placement of one replica set — rank i of every TP group —
// so hierarchical fabrics cost the ring on the tiers it actually
// crosses (one peer per node when a TP group fills a node).
func (b *builder) newDPAllReduce(name string, bytes float64) *sim.Task {
	group := make([]int, b.groups)
	for i := range group {
		group[i] = i * b.d
	}
	cd := collective.Desc{Name: name, Op: collective.AllReduce, Bytes: bytes, N: b.groups, Ranks: b.allDevices(), Group: group}
	if err := cd.Validate(); err != nil {
		//overlaplint:allow nopanic builder invariant: the descriptor is derived from an already-validated config, so Validate failing here is a bug
		panic(err)
	}
	if b.prep == nil {
		b.prep = collective.NewPreparer(b.cl.Fabric())
	}
	cd, work := b.prep.Prepare(cd)
	if b.sequential() {
		s := b.eng.NewStream("seqcomm."+name, 0)
		t := b.batch.Task(name, sim.KindComm, work, cd, s)
		b.chain.Order(t, b.allDevices()...)
		return t
	}
	return b.batch.Task(name, sim.KindComm, work, cd, b.dpS)
}

// newGroupCompute creates one compute task per device of group gr.
func (b *builder) newGroupCompute(name string, gr int, op exec.Op) []*sim.Task {
	return b.batch.Compute(name, op, b.computeS[gr*b.d:(gr+1)*b.d], b.chain)
}

func after(ts []*sim.Task, deps ...*sim.Task) {
	for _, t := range ts {
		t.After(deps...)
	}
}

// shard scales a kernel descriptor to the 1/d slice one tensor-parallel
// rank executes: FLOPs and HBM traffic divide by d, and the
// output/reduction shape of the headline GEMM shrinks accordingly.
func shard(k kernels.Desc, d int) kernels.Desc {
	dd := float64(d)
	k.FLOPs /= dd
	k.Bytes /= dd
	if k.N > 0 {
		k.N /= dd
	}
	for i := range k.Parts {
		k.Parts[i] = shard(k.Parts[i], d)
	}
	return k
}

// split partitions a kernel sequence at the kernel with the given name.
func split(ks []kernels.Desc, name string) (head, tail []kernels.Desc) {
	for i, k := range ks {
		if k.Name == name {
			return ks[:i], ks[i:]
		}
	}
	return ks, nil
}

// partitionBackward separates the weight-gradient GEMMs — the only
// backward work independent of the inter-layer gradient chain, and thus
// TP's overlap window — from the recompute + data-gradient kernels.
func partitionBackward(ks []kernels.Desc) (dgrad, wgrad []kernels.Desc) {
	for _, k := range ks {
		if strings.Contains(k.Name, "wgrad") {
			wgrad = append(wgrad, k)
		} else {
			dgrad = append(dgrad, k)
		}
	}
	return dgrad, wgrad
}

// descs holds the per-layer fused kernel ops, sharded 1/d and pre-boxed
// for per-device fan-out.
type descs struct {
	attnF, mlpF  exec.Op // forward halves (split at ln2)
	dgrad, wgrad exec.Op // backward partition
	embedF       exec.Op
	headF, headB exec.Op
	opt          exec.Op
	actBytes     float64 // full (gathered) activation tensor bytes
	layerShard   float64 // per-rank layer gradient shard bytes
	embedShard   float64 // per-rank embedding gradient shard bytes
	lossBytes    float64 // loss-statistics all-reduce bytes
}

func (b *builder) makeDescs() descs {
	m := b.cfg.Model
	e := float64(b.cfg.Format.Bytes())
	fwd := m.ForwardLayerKernels(b.local, b.cfg.Format, b.cfg.MatrixUnits)
	attnKs, mlpKs := split(fwd, "ln2")
	bwdKs := m.BackwardLayerKernels(b.local, b.cfg.Format, b.cfg.MatrixUnits, b.cfg.Checkpoint)
	dgradKs, wgradKs := partitionBackward(bwdKs)
	headFwd := m.HeadKernels(b.local, b.cfg.Format, b.cfg.MatrixUnits, true)
	headBwd := m.HeadKernels(b.local, b.cfg.Format, b.cfg.MatrixUnits, false)

	tokens := float64(b.local) * float64(m.SeqLen)
	return descs{
		attnF:      exec.KernelOp(shard(kernels.Fuse("fwd.attn", attnKs...), b.d)),
		mlpF:       exec.KernelOp(shard(kernels.Fuse("fwd.mlp", mlpKs...), b.d)),
		dgrad:      exec.KernelOp(shard(kernels.Fuse("bwd.dgrad", dgradKs...), b.d)),
		wgrad:      exec.KernelOp(shard(kernels.Fuse("bwd.wgrad", wgradKs...), b.d)),
		embedF:     exec.KernelOp(shard(kernels.Fuse("fwd.embed", headFwd[0]), b.d)),
		headF:      exec.KernelOp(shard(kernels.Fuse("fwd.lmhead", headFwd[1:]...), b.d)),
		headB:      exec.KernelOp(shard(kernels.Fuse("bwd.head", headBwd...), b.d)),
		opt:        exec.KernelOp(m.OptimizerKernel(m.TotalParams() / float64(b.d))),
		actBytes:   tokens * float64(m.Hidden) * e,
		layerShard: m.ParamsPerLayer() * e / float64(b.d),
		embedShard: m.EmbedParams() * e / float64(b.d),
		lossBytes:  tokens * e,
	}
}

// buildIteration appends one training iteration and returns its tasks.
// Per group and layer, forward runs AG→attn→RS→AG→mlp→RS with every
// collective on the critical path; backward runs AG→dgrad→RS with the
// weight-gradient GEMM overlapping the next layer's collectives, plus a
// cross-group all-reduce of the layer's gradient shard when the node
// holds several data-parallel groups.
func (b *builder) buildIteration(it int) []*sim.Task {
	start := len(b.eng.Tasks())
	L := b.cfg.Model.Layers
	ds := b.makeDescs()

	iterBarrier := func(t *sim.Task, gr int) {
		for _, dev := range b.ranks(gr) {
			if p := b.prevIterEnd[dev]; p != nil {
				t.After(p)
			}
		}
	}

	// Per-group chain state: the latest compute chunk (per rank) and the
	// latest critical-path collective of the group.
	prevC := make([][]*sim.Task, b.groups)
	prevGate := make([]*sim.Task, b.groups)
	headBT := make([][]*sim.Task, b.groups)

	for gr := 0; gr < b.groups; gr++ {
		tag := fmt.Sprintf("it%d.g%d", it, gr)
		agAttnP, fwdAttnP, rsAttnP := tag+".ag.attn.l", tag+".fwd.attn.l", tag+".rs.attn.l"
		agMlpP, fwdMlpP, rsMlpP := tag+".ag.mlp.l", tag+".fwd.mlp.l", tag+".rs.mlp.l"
		embed := b.newGroupCompute(tag+".fwd.embed", gr, ds.embedF)
		for _, t := range embed {
			iterBarrier(t, gr)
		}
		prevC[gr] = embed
		for l := 0; l < L; l++ {
			ag1 := b.newGroupColl(b.batch.Name(agAttnP, l), gr, collective.AllGather, ds.actBytes)
			after([]*sim.Task{ag1}, prevC[gr]...)
			ag1.After(prevGate[gr])
			attn := b.newGroupCompute(b.batch.Name(fwdAttnP, l), gr, ds.attnF)
			for i, t := range attn {
				t.After(ag1, prevC[gr][i])
			}
			rs1 := b.newGroupColl(b.batch.Name(rsAttnP, l), gr, collective.ReduceScatter, ds.actBytes)
			after([]*sim.Task{rs1}, attn...)
			ag2 := b.newGroupColl(b.batch.Name(agMlpP, l), gr, collective.AllGather, ds.actBytes)
			ag2.After(rs1)
			mlp := b.newGroupCompute(b.batch.Name(fwdMlpP, l), gr, ds.mlpF)
			for i, t := range mlp {
				t.After(ag2, attn[i])
			}
			rs2 := b.newGroupColl(b.batch.Name(rsMlpP, l), gr, collective.ReduceScatter, ds.actBytes)
			after([]*sim.Task{rs2}, mlp...)
			prevC[gr], prevGate[gr] = mlp, rs2
		}

		// LM head: gather the last hidden states, compute the sharded
		// logits + loss, and all-reduce the loss statistics (vocab
		// parallelism's softmax denominator exchange).
		agH := b.newGroupColl(tag+".ag.head", gr, collective.AllGather, ds.actBytes)
		after([]*sim.Task{agH}, prevC[gr]...)
		agH.After(prevGate[gr])
		hf := b.newGroupCompute(tag+".fwd.lmhead", gr, ds.headF)
		for i, t := range hf {
			t.After(agH, prevC[gr][i])
		}
		arLoss := b.newGroupColl(tag+".ar.loss", gr, collective.AllReduce, ds.lossBytes)
		after([]*sim.Task{arLoss}, hf...)
		hb := b.newGroupCompute(tag+".bwd.head", gr, ds.headB)
		for i, t := range hb {
			t.After(arLoss, hf[i])
		}
		headBT[gr] = hb
		rsH := b.newGroupColl(tag+".rs.head", gr, collective.ReduceScatter, ds.actBytes)
		after([]*sim.Task{rsH}, hb...)
		prevC[gr], prevGate[gr] = hb, rsH
	}

	// Backward, reverse layer order, groups in lockstep: per layer AG
	// (activation regather) → dgrad → RS (input gradients), the weight
	// gradient off the critical path, and the cross-group shard
	// all-reduce when data-parallel groups exist.
	lastWg := make([][]*sim.Task, b.groups)
	var dpARs []*sim.Task
	arDpPrefix := fmt.Sprintf("it%d.ar.dp.l", it)
	agBwdP := make([]string, b.groups)
	dgradP := make([]string, b.groups)
	rsBwdP := make([]string, b.groups)
	wgradP := make([]string, b.groups)
	for gr := 0; gr < b.groups; gr++ {
		tag := fmt.Sprintf("it%d.g%d", it, gr)
		agBwdP[gr], dgradP[gr] = tag+".ag.bwd.l", tag+".bwd.dgrad.l"
		rsBwdP[gr], wgradP[gr] = tag+".rs.bwd.l", tag+".bwd.wgrad.l"
	}
	for l := L - 1; l >= 0; l-- {
		for gr := 0; gr < b.groups; gr++ {
			agB := b.newGroupColl(b.batch.Name(agBwdP[gr], l), gr, collective.AllGather, ds.actBytes)
			agB.After(prevGate[gr])
			dg := b.newGroupCompute(b.batch.Name(dgradP[gr], l), gr, ds.dgrad)
			for i, t := range dg {
				t.After(agB, prevGate[gr], prevC[gr][i])
			}
			rsB := b.newGroupColl(b.batch.Name(rsBwdP[gr], l), gr, collective.ReduceScatter, ds.actBytes)
			after([]*sim.Task{rsB}, dg...)
			wg := b.newGroupCompute(b.batch.Name(wgradP[gr], l), gr, ds.wgrad)
			for i, t := range wg {
				t.After(dg[i])
			}
			lastWg[gr] = wg
			prevC[gr], prevGate[gr] = dg, rsB
		}
		if b.groups > 1 {
			ar := b.newDPAllReduce(b.batch.Name(arDpPrefix, l), ds.layerShard)
			for gr := 0; gr < b.groups; gr++ {
				after([]*sim.Task{ar}, lastWg[gr]...)
			}
			dpARs = append(dpARs, ar)
		}
	}
	if b.groups > 1 {
		ar := b.newDPAllReduce(fmt.Sprintf("it%d.ar.dp.embed", it), ds.embedShard)
		for gr := 0; gr < b.groups; gr++ {
			after([]*sim.Task{ar}, lastWg[gr]...)
			after([]*sim.Task{ar}, headBT[gr]...)
		}
		dpARs = append(dpARs, ar)
	}

	// Optimizer over the local 1/d shard, gated on the group's gradient
	// chain, its last weight gradients, and every cross-group reduction.
	for gr := 0; gr < b.groups; gr++ {
		opt := b.newGroupCompute(fmt.Sprintf("it%d.g%d.opt", it, gr), gr, ds.opt)
		for i, t := range opt {
			t.After(prevGate[gr], prevC[gr][i], lastWg[gr][i])
			t.After(dpARs...)
		}
		for i, dev := range b.ranks(gr) {
			b.prevIterEnd[dev] = opt[i]
		}
	}

	return b.eng.Tasks()[start:]
}
