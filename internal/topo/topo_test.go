package topo

import (
	"math"
	"testing"

	"overlapsim/internal/hw"
)

func TestKindByVendor(t *testing.T) {
	if ForSystem(hw.NewSystem(hw.H100(), 4)).Kind() != KindSwitched {
		t.Error("NVIDIA nodes are switched (NVLink+NVSwitch)")
	}
	if ForSystem(hw.NewSystem(hw.MI250(), 4)).Kind() != KindMesh {
		t.Error("AMD nodes are Infinity Fabric meshes")
	}
}

// A system's explicit fabric kind overrides the vendor default — the
// vendor enum no longer drives topology directly.
func TestExplicitFabricOverridesVendor(t *testing.T) {
	sys := hw.NewSystem(hw.H100(), 4)
	sys.Fabric = hw.FabricMesh
	if ForSystem(sys).Kind() != KindMesh {
		t.Error("explicit mesh fabric on an NVIDIA system must win")
	}
	amd := hw.NewSystem(hw.MI210(), 4)
	amd.Fabric = hw.FabricSwitched
	if ForSystem(amd).Kind() != KindSwitched {
		t.Error("explicit switched fabric on an AMD system must win")
	}
}

func TestP2PBandwidth(t *testing.T) {
	nv := ForSystem(hw.NewSystem(hw.A100(), 4))
	if nv.P2PBW(0, 1) != nv.GPU().UniLinkBW() {
		t.Error("switched fabric gives full unidirectional bandwidth per pair")
	}
	amd := ForSystem(hw.NewSystem(hw.MI210(), 4))
	if amd.P2PBW(0, 1) >= amd.GPU().UniLinkBW() {
		t.Error("mesh pairs share a subset of links")
	}
}

func TestRingBW(t *testing.T) {
	f := ForSystem(hw.NewSystem(hw.H100(), 8))
	if f.RingBW() != f.GPU().UniLinkBW() {
		t.Error("ring direction sustains the derated unidirectional rate")
	}
	if f.N() != 8 {
		t.Errorf("N = %d", f.N())
	}
}

func TestHopLatency(t *testing.T) {
	nv := ForSystem(hw.NewSystem(hw.H100(), 4))
	if nv.HopLatency() <= nv.GPU().LinkLatency {
		t.Error("switch traversal adds latency")
	}
	amd := ForSystem(hw.NewSystem(hw.MI250(), 4))
	if amd.HopLatency() != amd.GPU().LinkLatency {
		t.Error("direct mesh links have bare latency")
	}
}

func TestSingleNodeTiers(t *testing.T) {
	f := ForSystem(hw.NewSystem(hw.H100(), 8))
	tiers := f.Tiers()
	if len(tiers) != 1 {
		t.Fatalf("single-node fabric has %d tiers, want 1", len(tiers))
	}
	if tiers[0].Ranks != 8 || tiers[0].BW != f.RingBW() || tiers[0].StepLatency != f.HopLatency() {
		t.Errorf("tier = %+v", tiers[0])
	}
}

func TestHierarchicalFromMultiNodeSystem(t *testing.T) {
	sys := hw.NewMultiNode(hw.H100(), 8, 4)
	f := ForSystem(sys)
	if f.Kind() != KindHierarchical {
		t.Fatalf("kind = %v", f.Kind())
	}
	if f.N() != 32 {
		t.Errorf("N = %d, want 32", f.N())
	}
	h := f.(*Hierarchical)
	if h.Nodes() != 4 || h.NodeSize() != 8 {
		t.Errorf("shape = %dx%d", h.NodeSize(), h.Nodes())
	}
	if h.Intra().Kind() != KindSwitched {
		t.Error("H100 nodes keep their switched intra-node fabric")
	}

	tiers := f.Tiers()
	if len(tiers) != 2 {
		t.Fatalf("tiers = %d, want 2", len(tiers))
	}
	if tiers[0].Ranks != 8 || tiers[1].Ranks != 4 {
		t.Errorf("tier ranks = %d,%d, want 8,4", tiers[0].Ranks, tiers[1].Ranks)
	}
	nic := sys.NICSpec()
	if tiers[1].BW != nic.BW() || tiers[1].StepLatency != nic.Latency {
		t.Errorf("inter-node tier = %+v", tiers[1])
	}
	if tiers[0].BW <= tiers[1].BW {
		t.Error("NVLink tier should be faster than the default NIC tier")
	}
	if f.RingBW() != math.Min(tiers[0].BW, tiers[1].BW) {
		t.Error("spanning ring is bottlenecked by the slower tier")
	}
}

func TestHierarchicalP2P(t *testing.T) {
	sys := hw.NewMultiNode(hw.H100(), 4, 2)
	f := ForSystem(sys)
	intra := f.P2PBW(0, 3)
	inter := f.P2PBW(0, 4)
	if intra <= inter {
		t.Errorf("intra-node P2P %g should beat inter-node %g", intra, inter)
	}
	if f.PathLatency(0, 4) <= f.PathLatency(0, 3) {
		t.Error("cross-node transfers pay NIC latency")
	}
}

func TestHierarchicalCustomNIC(t *testing.T) {
	sys := hw.NewMultiNode(hw.H100(), 8, 2)
	sys.NIC = &hw.NICSpec{BWGBs: 12.5, Latency: 20e-6}
	slow := ForSystem(sys)
	fast := ForSystem(hw.NewMultiNode(hw.H100(), 8, 2))
	if slow.RingBW() >= fast.RingBW() {
		t.Error("a slower NIC must lower the spanning ring bandwidth")
	}
}

func TestNewHierarchicalErrors(t *testing.T) {
	intra := NewSwitched(hw.NewSystem(hw.H100(), 8))
	for name, fn := range map[string]func() (*Hierarchical, error){
		"nil intra":  func() (*Hierarchical, error) { return NewHierarchical(nil, 2, hw.DefaultNIC()) },
		"one node":   func() (*Hierarchical, error) { return NewHierarchical(intra, 1, hw.DefaultNIC()) },
		"bad nic bw": func() (*Hierarchical, error) { return NewHierarchical(intra, 2, hw.NICSpec{BWGBs: -1}) },
	} {
		if _, err := fn(); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	h, err := NewHierarchical(intra, 2, hw.DefaultNIC())
	if err != nil {
		t.Fatalf("valid shape: %v", err)
	}
	if h.N() != 16 {
		t.Errorf("N() = %d, want 16", h.N())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	fabrics := map[string]Fabric{
		"switched":     ForSystem(hw.NewSystem(hw.H100(), 4)),
		"mesh":         ForSystem(hw.NewSystem(hw.MI250(), 4)),
		"hierarchical": ForSystem(hw.NewMultiNode(hw.H100(), 4, 2)),
	}
	for name, f := range fabrics {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic for out-of-range GPU", name)
				}
			}()
			f.P2PBW(0, f.N())
		}()
	}
}

func TestKindString(t *testing.T) {
	if KindSwitched.String() != "switched" || KindMesh.String() != "mesh" ||
		KindHierarchical.String() != "hierarchical" {
		t.Error("kind names")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind should still format")
	}
}
