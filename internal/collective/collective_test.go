package collective

import (
	"math"
	"testing"
	"testing/quick"

	"overlapsim/internal/hw"
	"overlapsim/internal/topo"
)

func topo4() topo.Fabric {
	return topo.ForSystem(hw.NewSystem(hw.H100(), 4))
}

func TestWireBytesFormulas(t *testing.T) {
	const S = 1 << 20
	cases := []struct {
		op   Op
		n    int
		want float64
	}{
		{AllReduce, 4, 2 * S * 3.0 / 4.0},
		{AllGather, 4, S * 3.0 / 4.0},
		{ReduceScatter, 4, S * 3.0 / 4.0},
		{Broadcast, 4, S},
		{AllToAll, 4, S * 3.0 / 4.0},
		{SendRecv, 2, S},
	}
	for _, c := range cases {
		d := Desc{Name: c.op.String(), Op: c.op, Bytes: S, N: c.n, Dst: 1}
		if got := d.WireBytesPerRank(); math.Abs(got-c.want) > 1e-6 {
			t.Errorf("%v wire bytes = %g, want %g", c.op, got, c.want)
		}
	}
}

func TestAllReduceEqualsGatherPlusScatter(t *testing.T) {
	// Ring identity: all-reduce = reduce-scatter + all-gather, in both
	// wire bytes and steps.
	f := func(bytes uint32, n uint8) bool {
		ranks := int(n%7) + 2
		s := float64(bytes) + 1
		ar := Desc{Op: AllReduce, Bytes: s, N: ranks}
		ag := Desc{Op: AllGather, Bytes: s, N: ranks}
		rs := Desc{Op: ReduceScatter, Bytes: s, N: ranks}
		wires := math.Abs(ar.WireBytesPerRank()-(ag.WireBytesPerRank()+rs.WireBytesPerRank())) < 1e-6
		steps := ar.Steps() == ag.Steps()+rs.Steps()
		return wires && steps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStepsCount(t *testing.T) {
	d := Desc{Op: AllReduce, Bytes: 1, N: 8}
	if d.Steps() != 14 {
		t.Errorf("allreduce over 8 ranks: %d steps, want 14", d.Steps())
	}
	p2p := Desc{Op: SendRecv, Bytes: 1, N: 2, Dst: 1}
	if p2p.Steps() != 1 {
		t.Errorf("send-recv steps = %d, want 1", p2p.Steps())
	}
}

func TestTimeMonotonicInBytes(t *testing.T) {
	tp := topo4()
	f := func(a, b uint32) bool {
		sa, sb := float64(a)+1, float64(b)+1
		if sa > sb {
			sa, sb = sb, sa
		}
		da := Desc{Op: AllReduce, Bytes: sa, N: 4}
		db := Desc{Op: AllReduce, Bytes: sb, N: 4}
		return Time(da, tp) <= Time(db, tp)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEffWireBytesReproducesTime(t *testing.T) {
	tp := topo4()
	for _, op := range []Op{AllReduce, AllGather, ReduceScatter, Broadcast, AllToAll} {
		d := Desc{Name: op.String(), Op: op, Bytes: 256 << 20, N: 4}
		want := Time(d, tp)
		got := EffWireBytes(d, tp) / BW(d, tp)
		if math.Abs(got-want)/want > 1e-9 {
			t.Errorf("%v: EffWireBytes/BW = %g, Time = %g", op, got, want)
		}
	}
}

func TestBusBWBelowLink(t *testing.T) {
	tp := topo4()
	d := Desc{Op: AllReduce, Bytes: 1 << 30, N: 4}
	bus := BusBW(d, Time(d, tp))
	if bus <= 0 || bus > tp.RingBW()*1.01 {
		t.Errorf("bus bandwidth %g outside (0, %g]", bus, tp.RingBW())
	}
}

func TestBusBWZeroTime(t *testing.T) {
	d := Desc{Op: AllReduce, Bytes: 1, N: 4}
	if BusBW(d, 0) != 0 {
		t.Error("zero time should yield zero bus bandwidth")
	}
}

func TestReducing(t *testing.T) {
	if !AllReduce.Reducing() || !ReduceScatter.Reducing() {
		t.Error("all-reduce and reduce-scatter reduce")
	}
	if AllGather.Reducing() || SendRecv.Reducing() || Broadcast.Reducing() {
		t.Error("copy collectives must not be classified as reducing")
	}
}

func TestSMOccupancyByClass(t *testing.T) {
	g := hw.MI250()
	red := Desc{Op: ReduceScatter, Bytes: 1, N: 4}
	cp := Desc{Op: AllGather, Bytes: 1, N: 4}
	if SMOccupancy(red, g) <= SMOccupancy(cp, g) {
		t.Error("reducing collectives must occupy more CUs than copies")
	}
}

func TestHBMDraw(t *testing.T) {
	g := hw.H100()
	red := Desc{Op: AllReduce, Bytes: 1, N: 4}
	cp := Desc{Op: AllGather, Bytes: 1, N: 4}
	if HBMDraw(red, g, 1e9) <= HBMDraw(cp, g, 1e9) {
		t.Error("reducing collectives must draw more HBM per wire byte")
	}
	if HBMDraw(red, g, 0) != 0 {
		t.Error("no wire rate, no HBM draw")
	}
}

func TestParticipants(t *testing.T) {
	d := Desc{Op: AllGather, Bytes: 1, N: 3}
	if got := d.Participants(); len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Errorf("participants = %v", got)
	}
	p2p := Desc{Op: SendRecv, Bytes: 1, N: 2, Src: 2, Dst: 0}
	if got := p2p.Participants(); len(got) != 2 || got[0] != 2 || got[1] != 0 {
		t.Errorf("send-recv participants = %v", got)
	}
}

func TestValidate(t *testing.T) {
	bad := []Desc{
		{Name: "neg", Op: AllReduce, Bytes: -1, N: 4},
		{Name: "ranks", Op: AllReduce, Bytes: 1, N: 1},
		{Name: "self", Op: SendRecv, Bytes: 1, N: 2, Src: 1, Dst: 1},
	}
	for _, d := range bad {
		if d.Validate() == nil {
			t.Errorf("%s: expected validation error", d.Name)
		}
	}
	ok := Desc{Name: "ok", Op: SendRecv, Bytes: 1, N: 2, Src: 0, Dst: 1}
	if err := ok.Validate(); err != nil {
		t.Error(err)
	}
}

type fakeGate bool

func (g fakeGate) Done() bool { return bool(g) }

func TestWaiting(t *testing.T) {
	d := Desc{Op: SendRecv, Bytes: 1, N: 2, Dst: 1}
	if d.Waiting() {
		t.Error("no gate: never waiting")
	}
	d.Gate = fakeGate(false)
	if !d.Waiting() {
		t.Error("unfinished gate: waiting")
	}
	d.Gate = fakeGate(true)
	if d.Waiting() {
		t.Error("finished gate: not waiting")
	}
}

func TestP2PUsesP2PBandwidth(t *testing.T) {
	amd := topo.ForSystem(hw.NewSystem(hw.MI210(), 4))
	p2p := Desc{Op: SendRecv, Bytes: 1, N: 2, Src: 0, Dst: 1}
	ring := Desc{Op: AllGather, Bytes: 1, N: 4}
	if BW(p2p, amd) >= BW(ring, amd) {
		t.Error("mesh point-to-point bandwidth should be below ring bandwidth")
	}
}

// Subgroup collectives (TP groups, DP replica sets) carry an explicit
// rank set that overrides the default 0..N-1 occupancy.
func TestExplicitRanks(t *testing.T) {
	d := Desc{Name: "tp.ag", Op: AllGather, Bytes: 1 << 20, N: 2, Ranks: []int{4, 5}}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	got := d.Participants()
	if len(got) != 2 || got[0] != 4 || got[1] != 5 {
		t.Errorf("participants %v, want [4 5]", got)
	}
	// A larger occupancy than the algorithm group size models several
	// symmetric groups running the operation as one fluid task.
	dp := Desc{Name: "dp.ar", Op: AllReduce, Bytes: 1 << 20, N: 2, Ranks: []int{0, 1, 2, 3}}
	if err := dp.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(dp.Participants()) != 4 {
		t.Errorf("participants %v, want all four ranks", dp.Participants())
	}

	for name, bad := range map[string]Desc{
		"empty rank set": {Name: "x", Op: AllGather, Bytes: 1, N: 2, Ranks: []int{}},
		"negative rank":  {Name: "x", Op: AllGather, Bytes: 1, N: 2, Ranks: []int{-1, 0}},
		"duplicate rank": {Name: "x", Op: AllGather, Bytes: 1, N: 2, Ranks: []int{1, 1}},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
