package opt

import (
	"sort"

	"overlapsim/internal/report"
	"overlapsim/internal/sweep"
)

// Dominates reports whether objective vector a Pareto-dominates b under
// minimization: no component worse, at least one strictly better. The
// vectors must have equal length.
func Dominates(a, b []float64) bool {
	strict := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			strict = true
		}
	}
	return strict
}

// Front returns the indices of the Pareto-optimal vectors, in
// lexicographic vector order (ties broken by ascending key). Exact
// duplicates — vectors equal in every component — keep only the entry
// with the smallest key, so the frontier is deterministic even when
// distinct configurations measure identically. The filter is exact
// (O(n^2) pairwise dominance), not an approximation.
func Front(vecs [][]float64, keys []string) []int {
	if len(vecs) == 0 {
		return nil
	}
	order := make([]int, len(vecs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		a, b := vecs[order[x]], vecs[order[y]]
		for i := range a {
			if a[i] != b[i] {
				return a[i] < b[i]
			}
		}
		return keys[order[x]] < keys[order[y]]
	})

	var front []int
	for _, i := range order {
		dominated := false
		for _, j := range front {
			if equalVec(vecs[j], vecs[i]) || Dominates(vecs[j], vecs[i]) {
				// Earlier frontier members sort lex-lower, so an equal
				// vector was already admitted with a smaller key.
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		// A lex-later vector can never dominate a lex-earlier one, so
		// admission is final: checking against the incumbent frontier
		// alone is exact.
		front = append(front, i)
	}
	return front
}

func equalVec(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ObjectiveInfo labels one frontier dimension.
type ObjectiveInfo struct {
	Name string `json:"name"`
	Unit string `json:"unit,omitempty"`
}

// FrontierPoint is one Pareto-optimal configuration.
type FrontierPoint struct {
	// Key is the canonical config fingerprint (the cache address).
	Key string `json:"key"`
	// Label is the human-readable configuration label.
	Label string `json:"label"`
	// Experiment is the configuration in the catalog vocabulary, ready
	// to paste into an experiment request or sweep base.
	Experiment sweep.Experiment `json:"experiment"`
	// Values are the objective values, aligned with
	// Frontier.Objectives.
	Values []float64 `json:"values"`
	// Row is the point rendered into the shared sweep row schema (its
	// Status is normalized to "ok" so advice bytes do not depend on
	// which cache satisfied the evaluation).
	Row report.SweepRow `json:"row"`
}

// Frontier is the Pareto-optimal set over the feasible evaluated
// configurations, sorted lexicographically by objective values (first
// objective ascending, ties resolved by the later objectives, then by
// fingerprint). Equal advisor queries therefore marshal to identical
// bytes regardless of evaluation order or cache state.
type Frontier struct {
	Objectives []ObjectiveInfo `json:"objectives"`
	Points     []FrontierPoint `json:"points"`
}

// Rows renders the frontier through the shared sweep row schema.
func (f *Frontier) Rows() []report.SweepRow {
	rows := make([]report.SweepRow, len(f.Points))
	for i, p := range f.Points {
		rows[i] = p.Row
	}
	return rows
}
