// Package telemetry mirrors the real registry's constructor and With
// shapes, so the analyzer's method matching can be exercised without
// importing overlapsim itself.
package telemetry

type Registry struct{}

// Default is the registry the corpus registers against.
var Default = &Registry{}

type Counter struct{}

func (*Counter) Inc() {}

type Family struct{}

func (*Family) With(values ...string) *Counter { return &Counter{} }

func (*Registry) Counter(name, help string) *Counter { return &Counter{} }

func (*Registry) CounterVec(name, help string, labels ...string) *Family { return &Family{} }
