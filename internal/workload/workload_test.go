package workload

import (
	"context"
	"testing"

	"overlapsim/internal/core"
	"overlapsim/internal/hw"
	"overlapsim/internal/model"
	"overlapsim/internal/precision"
)

func TestGridsNonEmptyAndWellFormed(t *testing.T) {
	grids := map[string][]core.Config{
		"fig1a": Figure1a(),
		"fig1b": Figure1b(),
		"main":  MainGrid(),
		"fig9":  Figure9(),
		"fig10": Figure10(),
		"fig11": Figure11(),
	}
	for name, g := range grids {
		if len(g) == 0 {
			t.Errorf("%s: empty grid", name)
		}
		for _, cfg := range g {
			if cfg.System.GPU == nil || cfg.Batch <= 0 {
				t.Errorf("%s: malformed config %+v", name, cfg.Label())
			}
		}
	}
}

func TestMainGridSize(t *testing.T) {
	want := len(Systems()) * len(model.Zoo()) * len(EvalBatches()) * 2
	if got := len(MainGrid()); got != want {
		t.Errorf("main grid has %d points, want %d", got, want)
	}
}

func TestFigure9SweepsCaps(t *testing.T) {
	caps := Figure9Caps()
	grid := Figure9()
	if len(grid) != len(caps) {
		t.Fatalf("fig9 grid %d != caps %d", len(grid), len(caps))
	}
	for i, cfg := range grid {
		if cfg.Caps.PowerW != caps[i] {
			t.Errorf("point %d cap %g, want %g", i, cfg.Caps.PowerW, caps[i])
		}
	}
}

func TestFigure10PairsFormats(t *testing.T) {
	for i := 0; i < len(Figure10()); i += 2 {
		pair := Figure10()[i : i+2]
		if pair[0].Format != precision.FP32 || pair[1].Format != precision.FP16 {
			t.Errorf("pair %d formats: %v, %v", i/2, pair[0].Format, pair[1].Format)
		}
		if pair[0].MatrixUnits || !pair[1].MatrixUnits {
			t.Errorf("pair %d datapaths wrong", i/2)
		}
	}
}

func TestFigure11TogglesMatrixUnits(t *testing.T) {
	for i := 0; i < len(Figure11()); i += 2 {
		pair := Figure11()[i : i+2]
		if pair[0].Format != precision.FP32 || pair[1].Format != precision.FP32 {
			t.Errorf("pair %d must both be FP32", i/2)
		}
		if pair[0].MatrixUnits == pair[1].MatrixUnits {
			t.Errorf("pair %d must toggle matrix units", i/2)
		}
	}
}

func TestFigure7Config(t *testing.T) {
	cfg := Figure7()
	if cfg.System.GPU.Name != "MI250" || cfg.Model.Name != "LLaMA2 13B" {
		t.Errorf("fig7 config = %s", cfg.Label())
	}
	if cfg.TraceInterval <= 0 {
		t.Error("fig7 must record a trace")
	}
}

func tinyConfig() core.Config {
	return core.Config{
		System: hw.SystemH100x4(),
		Model: model.Config{Name: "tiny", Arch: model.GPT3, NominalParams: 1e8,
			Layers: 4, Heads: 4, Hidden: 256, FFN: 1024, Vocab: 2048, SeqLen: 128},
		Parallelism: "fsdp",
		Batch:       8,
		Format:      precision.FP16,
		MatrixUnits: true,
	}
}

func TestRunPointOK(t *testing.T) {
	pt := RunPoint(context.Background(), tinyConfig())
	if pt.Err != nil || pt.Skipped() || pt.Res == nil {
		t.Fatalf("point failed: %+v", pt.Err)
	}
}

func TestRunPointOOMClassified(t *testing.T) {
	cfg := tinyConfig()
	cfg.System = hw.SystemA100x4()
	cfg.Model = model.GPT3_13B()
	pt := RunPoint(context.Background(), cfg)
	if !pt.Skipped() {
		t.Fatalf("expected OOM classification, got err=%v res=%v", pt.Err, pt.Res != nil)
	}
	if pt.Err != nil {
		t.Error("OOM must not also set Err")
	}
}

func TestRunGridPreservesOrder(t *testing.T) {
	cfgs := []core.Config{tinyConfig(), tinyConfig(), tinyConfig()}
	cfgs[1].Batch = 16
	pts := RunGrid(context.Background(), cfgs)
	if len(pts) != 3 {
		t.Fatalf("got %d points", len(pts))
	}
	for i := range pts {
		if pts[i].Cfg.Batch != cfgs[i].Batch {
			t.Errorf("point %d out of order", i)
		}
		if pts[i].Res == nil {
			t.Errorf("point %d missing result", i)
		}
	}
}
