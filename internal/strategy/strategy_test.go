package strategy_test

import (
	"strings"
	"testing"

	"overlapsim/internal/exec"
	"overlapsim/internal/gpu"
	"overlapsim/internal/strategy"
	_ "overlapsim/internal/strategy/all" // the stock set under test
)

// fake is a minimal registrable strategy for registration-failure tests.
type fake struct{ name string }

func (f fake) Name() string { return f.name }
func (f fake) Describe() strategy.Info {
	return strategy.Info{Name: strings.ToLower(strings.TrimSpace(f.name))}
}
func (f fake) Build(*gpu.Cluster, strategy.Params) (*exec.Plan, error) { return nil, nil }

func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s must panic", what)
		}
	}()
	fn()
}

func TestRegisterRejectsEmptyName(t *testing.T) {
	mustPanic(t, "empty-name registration", func() { strategy.Register(fake{name: ""}) })
	mustPanic(t, "blank-name registration", func() { strategy.Register(fake{name: "   "}) })
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	// "fsdp" is registered by the stock set; a second registration under
	// the same name (any case) must fail loudly at init time.
	mustPanic(t, "duplicate registration", func() { strategy.Register(fake{name: "fsdp"}) })
	mustPanic(t, "case-variant duplicate registration", func() { strategy.Register(fake{name: "FSDP"}) })
	// An alias is part of the namespace too.
	mustPanic(t, "registration under an existing alias", func() { strategy.Register(fake{name: "pipeline"}) })
}

func TestLookupUnknown(t *testing.T) {
	_, err := strategy.Lookup("warp")
	if err == nil {
		t.Fatal("unknown strategy must not resolve")
	}
	for _, want := range []string{`"warp"`, "fsdp", "pp", "ddp", "tp"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q should mention %s", err, want)
		}
	}
	if _, err := strategy.Lookup(""); err == nil {
		t.Error("empty name must not resolve")
	}
}

func TestLookupStockSet(t *testing.T) {
	for _, name := range []string{"fsdp", "pp", "ddp", "tp", "FSDP", "Pipeline", "pipeline", " tp "} {
		s, err := strategy.Lookup(name)
		if err != nil {
			t.Errorf("Lookup(%q): %v", name, err)
			continue
		}
		if s.Name() != s.Describe().Name {
			t.Errorf("%q: Name() %q disagrees with Describe().Name %q", name, s.Name(), s.Describe().Name)
		}
	}
}

func TestNamesAndAll(t *testing.T) {
	names := strategy.Names()
	want := []string{"ddp", "fsdp", "pp", "tp"}
	if len(names) < len(want) {
		t.Fatalf("Names() = %v, want at least %v", names, want)
	}
	have := make(map[string]bool, len(names))
	for _, n := range names {
		have[n] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("stock strategy %q missing from Names() = %v", w, names)
		}
	}
	all := strategy.All()
	if len(all) != len(names) {
		t.Fatalf("All() returns %d strategies for %d names", len(all), len(names))
	}
	for i, s := range all {
		if s.Name() != names[i] {
			t.Errorf("All()[%d] = %q, want %q (sorted-name order)", i, s.Name(), names[i])
		}
	}
}

func TestCanonicalName(t *testing.T) {
	for in, want := range map[string]string{
		"pipeline": "pp",
		"PIPELINE": "pp",
		"fsdp":     "fsdp",
		"TP":       "tp",
		"warp":     "warp", // unknown names pass through lowercased
		"WARP":     "warp",
	} {
		if got := strategy.CanonicalName(in); got != want {
			t.Errorf("CanonicalName(%q) = %q, want %q", in, got, want)
		}
	}
}
