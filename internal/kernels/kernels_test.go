package kernels

import (
	"math"
	"testing"
	"testing/quick"

	"overlapsim/internal/hw"
	"overlapsim/internal/precision"
)

func TestGEMMAccounting(t *testing.T) {
	d := GEMM("g", 128, 256, 512, 1, precision.FP16, precision.Matrix)
	if want := 2.0 * 128 * 256 * 512; d.FLOPs != want {
		t.Errorf("FLOPs = %g, want %g", d.FLOPs, want)
	}
	if want := (128*512 + 512*256 + 128*256) * 2.0; d.Bytes != want {
		t.Errorf("Bytes = %g, want %g", d.Bytes, want)
	}
	if err := d.Validate(); err != nil {
		t.Error(err)
	}
}

func TestGEMMBatchMultiplies(t *testing.T) {
	a := GEMM("a", 64, 64, 64, 1, precision.FP16, precision.Matrix)
	b := GEMM("b", 64, 64, 64, 8, precision.FP16, precision.Matrix)
	if b.FLOPs != 8*a.FLOPs || b.Bytes != 8*a.Bytes {
		t.Errorf("batch=8 should scale work by 8: %g vs %g", b.FLOPs, a.FLOPs)
	}
}

func TestValidateRejectsBadDescs(t *testing.T) {
	cases := []Desc{
		{Name: "neg", FLOPs: -1},
		{Name: "empty"},
		{Name: "gemm-no-dims", Op: OpGEMM, FLOPs: 10, Bytes: 10},
	}
	for _, d := range cases {
		if d.Validate() == nil {
			t.Errorf("%s: expected validation error", d.Name)
		}
	}
}

func TestAI(t *testing.T) {
	d := Desc{Name: "x", FLOPs: 100, Bytes: 50}
	if d.AI() != 2 {
		t.Errorf("AI = %g, want 2", d.AI())
	}
	d.Bytes = 0
	if !math.IsInf(d.AI(), 1) {
		t.Errorf("AI with no bytes should be +Inf")
	}
}

func TestFuseTotals(t *testing.T) {
	a := GEMM("a", 128, 128, 4096, 1, precision.FP16, precision.Matrix)
	b := Elementwise("b", 1e6, 2, 0, precision.FP16)
	f := Fuse("fused", a, b)
	if f.FLOPs != a.FLOPs+b.FLOPs {
		t.Errorf("fused FLOPs = %g, want %g", f.FLOPs, a.FLOPs+b.FLOPs)
	}
	if f.Bytes != a.Bytes+b.Bytes {
		t.Errorf("fused Bytes = %g, want %g", f.Bytes, a.Bytes+b.Bytes)
	}
	// Headline shape comes from the dominant GEMM.
	if f.K != a.K || f.Path != precision.Matrix {
		t.Errorf("fused headline = K%g/%v, want K%g/matrix", f.K, f.Path, a.K)
	}
	vec, mat := f.FLOPsByPath()
	if mat != a.FLOPs || vec != b.FLOPs {
		t.Errorf("FLOPsByPath = (%g, %g), want (%g, %g)", vec, mat, b.FLOPs, a.FLOPs)
	}
}

func TestFuseOfFusedPanics(t *testing.T) {
	a := GEMM("a", 16, 16, 16, 1, precision.FP16, precision.Matrix)
	f := Fuse("f", a)
	defer func() {
		if recover() == nil {
			t.Error("expected panic fusing a fused descriptor")
		}
	}()
	Fuse("ff", f)
}

func TestFusedTimeIsSumOfParts(t *testing.T) {
	g := hw.H100()
	a := GEMM("a", 4096, 4096, 4096, 1, precision.FP16, precision.Matrix)
	b := Norm("b", 1e8, precision.FP16)
	f := Fuse("f", a, b)
	want := BaseTime(a, g) + BaseTime(b, g)
	if got := BaseTime(f, g); math.Abs(got-want)/want > 1e-9 {
		t.Errorf("fused time %g, want sum of parts %g", got, want)
	}
}

func TestBaseTimeRoofline(t *testing.T) {
	g := hw.H100()
	// Huge-k GEMM: compute bound — time ≈ flops / (peak·eff).
	cb := GEMM("cb", 8192, 8192, 8192, 1, precision.FP16, precision.Matrix)
	eff := g.GEMMEff(8192, precision.Matrix, precision.FP16)
	wantCB := cb.FLOPs / (g.PeakFLOPS(precision.Matrix, precision.FP16) * eff)
	if got := BaseTime(cb, g); math.Abs(got-wantCB)/wantCB > 1e-9 {
		t.Errorf("compute-bound time %g, want %g", got, wantCB)
	}
	// Pointwise kernel: memory bound — time ≈ bytes / membw.
	mb := Elementwise("mb", 1e9, 1, 0, precision.FP16)
	wantMB := mb.Bytes / g.MemBW()
	if got := BaseTime(mb, g); math.Abs(got-wantMB)/wantMB > 1e-9 {
		t.Errorf("memory-bound time %g, want %g", got, wantMB)
	}
}

func TestRateContentionMonotonic(t *testing.T) {
	g := hw.MI250()
	d := GEMM("d", 4096, 4096, 4096, 1, precision.FP16, precision.Matrix)
	base := Rate(d, g, 1, 0, 0, 0)
	cases := []struct {
		name               string
		freq, sm, hbm, ser float64
	}{
		{"sm-steal", 1, 32, 0, 0},
		{"hbm-steal", 1, 0, 1e12, 0},
		{"serialize", 1, 0, 0, 0.4},
		{"throttle", 0.5, 0, 0, 0},
		{"all", 0.5, 32, 1e12, 0.4},
	}
	for _, c := range cases {
		r := Rate(d, g, c.freq, c.sm, c.hbm, c.ser)
		if r > base {
			t.Errorf("%s: contended rate %g exceeds base %g", c.name, r, base)
		}
		if r <= 0 {
			t.Errorf("%s: rate must stay positive, got %g", c.name, r)
		}
	}
}

func TestMemoryFloorGuaranteesProgress(t *testing.T) {
	g := hw.A100()
	d := Elementwise("e", 1e8, 1, 0, precision.FP16)
	// Absurd HBM steal: the floor keeps the kernel moving.
	r := Rate(d, g, 1, 0, 1e15, 0)
	if r <= 0 || math.IsInf(r, 1) {
		t.Errorf("rate under total bandwidth steal = %g", r)
	}
}

func TestOptimizerBytes(t *testing.T) {
	d := Optimizer("opt", 1e6)
	if want := 1e6 * float64(AdamBytesPerParam); d.Bytes != want {
		t.Errorf("optimizer bytes = %g, want %g", d.Bytes, want)
	}
	if d.Path != precision.Vector {
		t.Error("optimizer must run on the vector datapath")
	}
}

func TestWork(t *testing.T) {
	if w := Work(Desc{FLOPs: 5, Bytes: 10}); w != 5 {
		t.Errorf("Work prefers FLOPs: got %g", w)
	}
	if w := Work(Desc{Bytes: 10}); w != 10 {
		t.Errorf("Work falls back to bytes: got %g", w)
	}
}

func TestUtilizationBounds(t *testing.T) {
	g := hw.H100()
	d := GEMM("d", 4096, 4096, 4096, 1, precision.FP16, precision.Matrix)
	r := BaseRate(d, g)
	uv, um, umem := Utilization(d, g, r)
	for _, u := range []float64{uv, um, umem} {
		if u < 0 || u > 1 {
			t.Errorf("utilization out of [0,1]: %g %g %g", uv, um, umem)
		}
	}
	if um <= 0 {
		t.Error("matrix GEMM should show matrix utilization")
	}
}

// Property: rate is monotone non-increasing in every contention input.
func TestQuickRateMonotone(t *testing.T) {
	g := hw.H100()
	d := GEMM("d", 2048, 2048, 2048, 1, precision.FP16, precision.Matrix)
	f := func(sm1, sm2, hbm1, hbm2, ser1, ser2 uint8) bool {
		s1, s2 := float64(sm1%64), float64(sm2%64)
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		h1, h2 := float64(hbm1)*1e10, float64(hbm2)*1e10
		if h1 > h2 {
			h1, h2 = h2, h1
		}
		e1, e2 := float64(ser1%90)/100, float64(ser2%90)/100
		if e1 > e2 {
			e1, e2 = e2, e1
		}
		return Rate(d, g, 1, s2, h2, e2) <= Rate(d, g, 1, s1, h1, e1)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: GEMM work formulas scale linearly in each dimension.
func TestQuickGEMMLinearity(t *testing.T) {
	f := func(m, n, k uint8) bool {
		mm, nn, kk := float64(m%64+1), float64(n%64+1), float64(k%64+1)
		a := GEMM("a", mm, nn, kk, 1, precision.FP16, precision.Matrix)
		b := GEMM("b", 2*mm, nn, kk, 1, precision.FP16, precision.Matrix)
		return math.Abs(b.FLOPs-2*a.FLOPs) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
