package core

// Golden-shape tests: the paper's seven takeaways (§V) asserted as
// inequalities over simulated results on the real Table I/II
// configurations. These are the reproduction's primary acceptance tests.

import (
	"context"
	"testing"

	"overlapsim/internal/hw"
	"overlapsim/internal/model"
	"overlapsim/internal/power"
	"overlapsim/internal/precision"
)

func mustRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("%s: %v", cfg.Label(), err)
	}
	return res
}

func fsdpCfg(sys hw.System, m model.Config, batch int) Config {
	return Config{System: sys, Model: m, Parallelism: FSDP, Batch: batch,
		Format: precision.FP16, MatrixUnits: true}
}

// Takeaway 1: strategies with complex collectives (FSDP) show higher
// slowdowns than send/recv-based pipeline parallelism at matched
// configuration.
func TestTakeaway1FSDPSlowsMoreThanPP(t *testing.T) {
	sys := hw.SystemMI250x4()
	m := model.GPT3_6_7B()
	f := mustRun(t, Config{System: sys, Model: m, Parallelism: FSDP, Batch: 8,
		Format: precision.FP16, MatrixUnits: true})
	p := mustRun(t, Config{System: sys, Model: m, Parallelism: Pipeline, Batch: 8,
		Format: precision.FP16, MatrixUnits: true})
	if f.Char.ComputeSlowdown <= p.Char.ComputeSlowdown {
		t.Errorf("FSDP slowdown %.1f%% not above PP %.1f%%",
			f.Char.ComputeSlowdown*100, p.Char.ComputeSlowdown*100)
	}
}

// Takeaway 2: larger models suffer larger slowdowns (resource contention
// compounds with model complexity).
func TestTakeaway2ModelSizeIncreasesSlowdown(t *testing.T) {
	sys := hw.SystemMI250x4()
	small := mustRun(t, fsdpCfg(sys, model.GPT3XL(), 8))
	big := mustRun(t, fsdpCfg(sys, model.GPT3_13B(), 8))
	if big.Char.ComputeSlowdown <= small.Char.ComputeSlowdown {
		t.Errorf("13B slowdown %.1f%% not above XL %.1f%%",
			big.Char.ComputeSlowdown*100, small.Char.ComputeSlowdown*100)
	}
	if big.Char.OverlapRatio <= small.Char.OverlapRatio {
		t.Errorf("13B overlap %.1f%% not above XL %.1f%%",
			big.Char.OverlapRatio*100, small.Char.OverlapRatio*100)
	}
}

// FSDP batch-size trend: larger batches dilute communication and shrink
// the slowdown (§V-A).
func TestFSDPBatchTrend(t *testing.T) {
	sys := hw.SystemH100x4()
	m := model.GPT3_2_7B()
	b8 := mustRun(t, fsdpCfg(sys, m, 8))
	b64 := mustRun(t, fsdpCfg(sys, m, 64))
	if b64.Char.ComputeSlowdown >= b8.Char.ComputeSlowdown {
		t.Errorf("FSDP slowdown must fall with batch: bs8 %.2f%% vs bs64 %.2f%%",
			b8.Char.ComputeSlowdown*100, b64.Char.ComputeSlowdown*100)
	}
}

// Pipeline batch-size trend: the opposite — more microbatches mean more
// overlapped steady state and more slowdown (§V-A).
func TestPipelineBatchTrend(t *testing.T) {
	sys := hw.SystemA100x4()
	m := model.GPT3_2_7B()
	b8 := mustRun(t, Config{System: sys, Model: m, Parallelism: Pipeline, Batch: 8,
		Format: precision.FP16, MatrixUnits: true})
	b64 := mustRun(t, Config{System: sys, Model: m, Parallelism: Pipeline, Batch: 64,
		Format: precision.FP16, MatrixUnits: true})
	if b64.Char.ComputeSlowdown <= b8.Char.ComputeSlowdown {
		t.Errorf("PP slowdown must rise with batch: bs8 %.2f%% vs bs64 %.2f%%",
			b8.Char.ComputeSlowdown*100, b64.Char.ComputeSlowdown*100)
	}
}

// Takeaway 3: overlapping beats sequential end-to-end but stays above
// ideal.
func TestTakeaway3E2EOrdering(t *testing.T) {
	for _, sys := range []hw.System{hw.SystemH100x4(), hw.SystemMI250x4()} {
		res := mustRun(t, fsdpCfg(sys, model.GPT3_6_7B(), 8))
		ovl := res.Overlapped.Mean.E2E
		seq := res.Sequential.Mean.E2E
		ideal := res.Char.E2EIdeal
		if !(ideal <= ovl && ovl <= seq) {
			t.Errorf("%s: ordering violated: ideal %.1fms, overlap %.1fms, seq %.1fms",
				sys.Name, ideal*1e3, ovl*1e3, seq*1e3)
		}
	}
}

// Takeaway 4: overlapping raises peak power versus sequential execution.
func TestTakeaway4OverlapRaisesPeakPower(t *testing.T) {
	res := mustRun(t, fsdpCfg(hw.SystemMI250x4(), model.GPT3_13B(), 8))
	if res.Overlapped.PeakTDP < res.Sequential.PeakTDP {
		t.Errorf("overlapped peak %.2fxTDP below sequential %.2fxTDP",
			res.Overlapped.PeakTDP, res.Sequential.PeakTDP)
	}
}

// Takeaway 5: power caps amplify the contention; execution time grows
// monotonically as the cap tightens, severely at 100W (Fig. 9).
func TestTakeaway5PowerCapping(t *testing.T) {
	m := model.GPT3_2_7B()
	prev := 0.0
	var base float64
	for _, cap := range []float64{0, 250, 150, 100} {
		cfg := fsdpCfg(hw.SystemA100x4(), m, 16)
		cfg.Caps = power.Caps{PowerW: cap}
		res := mustRun(t, cfg)
		e2e := res.Overlapped.Mean.E2E
		if e2e < prev {
			t.Errorf("cap %gW: E2E %.1fms fell below looser cap's %.1fms", cap, e2e*1e3, prev*1e3)
		}
		prev = e2e
		if cap == 0 {
			base = e2e
		}
		if cap == 100 && e2e < base*1.8 {
			t.Errorf("100W cap increased E2E only %.0f%%, paper reports ≈107%%", (e2e/base-1)*100)
		}
	}
}

// Takeaway 7 (Fig. 10): FP16 cuts power on small models but raises the
// overlap ratio and slowdown relative to FP32.
func TestTakeaway7Precision(t *testing.T) {
	sys := hw.SystemH100x4()
	m := model.GPT3XL()
	fp32 := mustRun(t, Config{System: sys, Model: m, Parallelism: FSDP, Batch: 8,
		Format: precision.FP32, MatrixUnits: false})
	fp16 := mustRun(t, Config{System: sys, Model: m, Parallelism: FSDP, Batch: 8,
		Format: precision.FP16, MatrixUnits: true})
	if fp16.Overlapped.PeakTDP >= fp32.Overlapped.PeakTDP {
		t.Errorf("FP16 peak %.2fxTDP not below FP32 %.2fxTDP on a small model",
			fp16.Overlapped.PeakTDP, fp32.Overlapped.PeakTDP)
	}
	if fp16.Char.OverlapRatio <= fp32.Char.OverlapRatio {
		t.Errorf("FP16 overlap ratio %.1f%% not above FP32 %.1f%%",
			fp16.Char.OverlapRatio*100, fp32.Char.OverlapRatio*100)
	}
	if fp16.Char.ComputeSlowdown <= fp32.Char.ComputeSlowdown {
		t.Errorf("FP16 slowdown %.2f%% not above FP32 %.2f%%",
			fp16.Char.ComputeSlowdown*100, fp32.Char.ComputeSlowdown*100)
	}
}

// Takeaway 7 (Fig. 11): routing FP32 through Tensor Cores (TF32) lowers
// power on small models but increases slowdown on larger ones.
func TestTakeaway7TensorCores(t *testing.T) {
	sys := hw.SystemH100x4()
	small := model.GPT3XL()
	vec := mustRun(t, Config{System: sys, Model: small, Parallelism: FSDP, Batch: 8,
		Format: precision.FP32, MatrixUnits: false})
	tc := mustRun(t, Config{System: sys, Model: small, Parallelism: FSDP, Batch: 8,
		Format: precision.FP32, MatrixUnits: true})
	if tc.Overlapped.PeakTDP >= vec.Overlapped.PeakTDP {
		t.Errorf("TF32 peak %.2fxTDP not below FP32 %.2fxTDP on GPT-3 XL",
			tc.Overlapped.PeakTDP, vec.Overlapped.PeakTDP)
	}
	big := model.GPT3_6_7B()
	vecB := mustRun(t, Config{System: sys, Model: big, Parallelism: FSDP, Batch: 16,
		Format: precision.FP32, MatrixUnits: false})
	tcB := mustRun(t, Config{System: sys, Model: big, Parallelism: FSDP, Batch: 16,
		Format: precision.FP32, MatrixUnits: true})
	if tcB.Char.ComputeSlowdown <= vecB.Char.ComputeSlowdown {
		t.Errorf("TF32 slowdown %.2f%% not above FP32 %.2f%% on GPT-3 6.7B",
			tcB.Char.ComputeSlowdown*100, vecB.Char.ComputeSlowdown*100)
	}
}

// Vendor shape: at matched workloads AMD systems see larger slowdowns
// than NVIDIA ones (RCCL contention), and MI250 exceeds MI210.
func TestVendorOrdering(t *testing.T) {
	m := model.GPT3_2_7B()
	slow := func(sys hw.System) float64 {
		return mustRun(t, fsdpCfg(sys, m, 8)).Char.ComputeSlowdown
	}
	a100 := slow(hw.SystemA100x4())
	mi210 := slow(hw.SystemMI210x4())
	mi250 := slow(hw.SystemMI250x4())
	if mi210 <= a100 {
		t.Errorf("MI210 %.1f%% not above A100 %.1f%%", mi210*100, a100*100)
	}
	if mi250 <= mi210 {
		t.Errorf("MI250 %.1f%% not above MI210 %.1f%%", mi250*100, mi210*100)
	}
}

// Memory gating reproduces §V-A: the A100 runs up to GPT-3 2.7B only.
func TestA100MemoryConstraint(t *testing.T) {
	if _, err := Run(context.Background(), fsdpCfg(hw.SystemA100x4(), model.GPT3_2_7B(), 8)); err != nil {
		t.Errorf("2.7B must run on A100x4: %v", err)
	}
	if _, err := Run(context.Background(), fsdpCfg(hw.SystemA100x4(), model.GPT3_6_7B(), 8)); err == nil {
		t.Error("6.7B must OOM on A100x4")
	}
}

// The paper's worst case: MI250 GPT-3 13B at batch 8 shows a compute
// slowdown in the tens of percent, with overlapped execution far above
// ideal.
func TestWorstCaseMI250(t *testing.T) {
	res := mustRun(t, fsdpCfg(hw.SystemMI250x4(), model.GPT3_13B(), 8))
	if s := res.Char.ComputeSlowdown; s < 0.25 || s > 0.55 {
		t.Errorf("MI250 13B slowdown %.1f%%, want ≈40%% (paper)", s*100)
	}
	if g := res.Char.IdealGap; g < 0.25 {
		t.Errorf("overlap-vs-ideal gap %.1f%%, paper reports ≈45%%", g*100)
	}
	if r := res.Char.OverlapRatio; r < 0.3 || r > 0.55 {
		t.Errorf("overlap ratio %.1f%%, paper reports ≈42%%", r*100)
	}
}
