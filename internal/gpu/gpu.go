// Package gpu implements the device model: a cluster of identical GPUs
// that serves as the simulation Platform. It converts kernel and
// collective descriptors into execution rates, applying the three
// contention mechanisms the paper identifies — SM stealing by collective
// kernels, HBM bandwidth sharing, and power-cap-induced DVFS throttling —
// and observes every simulated segment to drive the power telemetry.
package gpu

import (
	"fmt"
	"math"
	"math/rand"

	"overlapsim/internal/collective"
	"overlapsim/internal/hw"
	"overlapsim/internal/kernels"
	"overlapsim/internal/power"
	"overlapsim/internal/precision"
	"overlapsim/internal/sim"
	"overlapsim/internal/topo"
)

// Config configures a Cluster.
type Config struct {
	// System is the system under simulation — one node or several joined
	// by a hierarchical fabric; the cluster simulates System.TotalGPUs()
	// devices.
	System hw.System
	// Caps are the power/frequency limits applied to every GPU.
	Caps power.Caps
	// SamplerInterval overrides the vendor-default telemetry interval
	// (seconds); zero selects NVML 100 ms or AMD-SMI 20 ms by vendor.
	SamplerInterval float64
	// TraceInterval, when nonzero, additionally records a fine-grained
	// power trace at this interval (Fig. 7 uses 1 ms).
	TraceInterval float64
	// JitterSigma adds lognormal run-to-run variation to kernel rates
	// (fractional sigma, for example 0.02); zero is fully deterministic.
	JitterSigma float64
	// Seed seeds the jitter stream. Every cluster owns a private
	// generator seeded here — there is no shared or global source — so
	// concurrent simulations (core.Run's two modes, sweep workers) are
	// reproducible independently of scheduling; callers running several
	// clusters of one experiment must derive a distinct seed per cluster.
	Seed int64
}

// Cluster is a system of identical GPUs — one node or several behind a
// hierarchical fabric. It implements sim.Platform (rate assignment) and
// sim.Observer (power integration).
type Cluster struct {
	cfg      Config
	n        int
	g        *hw.GPUSpec
	fabric   topo.Fabric
	freq     []float64
	samplers []*power.Sampler
	traces   []*power.Sampler
	rng      *rand.Rand
	jitter   map[*sim.Task]float64

	// scratch, reused across epochs
	compute [][]*sim.Task
	comms   [][]*sim.Task

	// partFresh marks the scratch partition as computed by Rates for the
	// current epoch; Segment observes the identical running set
	// immediately after and skips repartitioning. partLen guards the
	// reuse against out-of-band Segment calls.
	partFresh bool
	partLen   int

	// idleFreq and idleW are the DVFS solution and power draw of a fully
	// idle device — constant for a given cap configuration, precomputed so
	// per-epoch device sweeps skip the fixed-point solve on quiet devices.
	idleFreq float64
	idleW    float64

	// alias maps each device to its symmetry-class representative when a
	// collapsed plan runs (see SetAliases); active lists the devices that
	// are actually simulated. Both nil for a full simulation.
	alias  []int
	active []int

	// pool, when set, splits the per-device rate and power loops across
	// workers (deterministic configurations only).
	pool *sim.Pool
}

var (
	_ sim.Platform = (*Cluster)(nil)
	_ sim.Observer = (*Cluster)(nil)
)

// New builds a cluster for the given configuration.
func New(cfg Config) (*Cluster, error) {
	if cfg.System.GPU == nil || cfg.System.N < 1 || cfg.System.Nodes < 0 {
		return nil, fmt.Errorf("gpu: invalid system %+v", cfg.System)
	}
	if err := cfg.Caps.Validate(cfg.System.GPU); err != nil {
		return nil, err
	}
	n := cfg.System.TotalGPUs()
	interval := cfg.SamplerInterval
	if interval <= 0 {
		interval = power.SamplerIntervalFor(cfg.System.GPU.Vendor)
	}
	c := &Cluster{
		cfg:     cfg,
		n:       n,
		g:       cfg.System.GPU,
		fabric:  topo.ForSystem(cfg.System),
		freq:    make([]float64, n),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		jitter:  make(map[*sim.Task]float64),
		compute: make([][]*sim.Task, n),
		comms:   make([][]*sim.Task, n),
	}
	for i := range c.freq {
		c.freq[i] = 1
	}
	for i := 0; i < n; i++ {
		s, err := power.NewSampler(interval)
		if err != nil {
			return nil, err
		}
		c.samplers = append(c.samplers, s)
		if cfg.TraceInterval > 0 {
			tr, err := power.NewSampler(cfg.TraceInterval)
			if err != nil {
				return nil, err
			}
			c.traces = append(c.traces, tr)
		}
	}
	c.idleFreq = power.SolveFreq(c.g, power.Activity{}, c.cfg.Caps)
	c.idleW = power.Instant(c.g, power.Activity{}, c.idleFreq)
	return c, nil
}

// Fabric returns the cluster's interconnect model.
func (c *Cluster) Fabric() topo.Fabric { return c.fabric }

// GPU returns the device spec.
func (c *Cluster) GPU() *hw.GPUSpec { return c.g }

// N returns the number of GPUs across all nodes.
func (c *Cluster) N() int { return c.n }

// FreqFactor returns the most recently solved DVFS frequency factor of
// GPU i.
func (c *Cluster) FreqFactor(i int) float64 { return c.freq[i] }

// Sampler returns the telemetry sampler of GPU i.
func (c *Cluster) Sampler(i int) *power.Sampler { return c.samplers[i] }

// Trace returns the fine-grained power trace of GPU i, or nil if tracing
// was not enabled.
func (c *Cluster) Trace(i int) *power.Sampler {
	if c.traces == nil {
		return nil
	}
	return c.traces[i]
}

// PowerStats summarizes the telemetry of GPU i.
func (c *Cluster) PowerStats(i int) power.Stats {
	return power.StatsFor(c.samplers[i], c.g)
}

// jitterFor returns the stable rate multiplier of a task.
func (c *Cluster) jitterFor(t *sim.Task) float64 {
	if c.cfg.JitterSigma <= 0 {
		return 1
	}
	if j, ok := c.jitter[t]; ok {
		return j
	}
	j := math.Exp(c.rng.NormFloat64() * c.cfg.JitterSigma)
	c.jitter[t] = j
	return j
}

// partition groups the running tasks by device into compute and comm sets.
// Aliased (collapsed) devices are excluded: their timelines come from the
// class representative, so accumulating per-epoch comm sets for them would
// re-introduce the O(ranks) cost the collapse removed.
func (c *Cluster) partition(running []*sim.Task) {
	alias := c.alias
	if c.active != nil {
		for _, i := range c.active {
			c.compute[i] = c.compute[i][:0]
			c.comms[i] = c.comms[i][:0]
		}
	} else {
		for i := range c.compute {
			c.compute[i] = c.compute[i][:0]
			c.comms[i] = c.comms[i][:0]
		}
	}
	for _, t := range running {
		switch p := t.Payload().(type) {
		case kernels.Desc:
			d := t.Streams()[0].Device()
			c.compute[d] = append(c.compute[d], t)
		case collective.Desc:
			if p.Op == collective.SendRecv && p.Waiting() {
				// A posted receive spins only on the destination; the
				// sender's kernel does not launch until the producer is
				// done.
				if alias == nil || alias[p.Dst] == p.Dst {
					c.comms[p.Dst] = append(c.comms[p.Dst], t)
				}
				continue
			}
			for _, r := range p.Participants() {
				if alias != nil && alias[r] != r {
					continue
				}
				c.comms[r] = append(c.comms[r], t)
			}
		default:
			// Host tasks run at unit rate and occupy no device resources.
		}
	}
}

// Rates implements sim.Platform.
func (c *Cluster) Rates(now float64, running []*sim.Task) {
	c.partition(running)
	c.partFresh, c.partLen = true, len(running)

	// Communication rates first: collectives are bandwidth-bound and set
	// the contention pressure computes see.
	for _, t := range running {
		switch p := t.Payload().(type) {
		case collective.Desc:
			if p.Waiting() {
				// Posted-early kernel spinning for its producer: resident
				// but moving no data.
				t.SetRate(0)
			} else {
				t.SetRate(p.WireBW(c.fabric) * c.jitterFor(t))
			}
		case kernels.Desc:
			// set below
		default:
			// Host and other non-device tasks run at unit rate.
			t.SetRate(1)
		}
	}

	c.eachDevice(func(dev int) {
		nCompute := len(c.compute[dev])
		if nCompute == 0 && len(c.comms[dev]) == 0 {
			// Fully idle device: the cap solution is a constant,
			// precomputed in New.
			c.freq[dev] = c.idleFreq
			return
		}
		smStolen, hbmStolen, serialize := c.pressure(dev)
		if nCompute == 0 {
			c.freq[dev] = c.solveFreqIdleComm(dev)
			return
		}

		// Fixed-point iteration between rate and DVFS frequency: rates
		// depend on f, the cap-solved f depends on the activity the rates
		// imply. Compute-bound kernels converge immediately; memory-bound
		// ones within a few iterations.
		f := c.freq[dev]
		if f <= 0 {
			f = 1
		}
		for iter := 0; iter < 4; iter++ {
			act := c.deviceActivity(dev, f, smStolen, hbmStolen, serialize)
			nf := power.SolveFreq(c.g, act, c.cfg.Caps)
			if math.Abs(nf-f) < 1e-6 {
				f = nf
				break
			}
			f = nf
		}
		c.freq[dev] = f

		for _, t := range c.compute[dev] {
			kd := t.Payload().(kernels.Desc)
			r := kernels.Rate(kd, c.g, f, smStolen, hbmStolen, serialize)
			if nCompute > 1 {
				r /= float64(nCompute)
			}
			t.SetRate(r * c.jitterFor(t))
		}
	})
}

// SetAliases installs the device→representative map of a collapsed plan
// (alias[d] == d for simulated devices, the class representative for the
// rest). A nil or identity map restores full simulation. The map must
// cover every device. Callers must install aliases before the run and
// call FinalizeAliases after it.
func (c *Cluster) SetAliases(alias []int) {
	c.alias, c.active = nil, nil
	if alias == nil || len(alias) < c.n {
		return
	}
	identity := true
	for d := 0; d < c.n; d++ {
		if alias[d] != d {
			identity = false
			break
		}
	}
	if identity {
		return
	}
	c.alias = alias
	for d := 0; d < c.n; d++ {
		// Clear ghost scratch once here: partition only resets active
		// devices from now on.
		c.compute[d] = c.compute[d][:0]
		c.comms[d] = c.comms[d][:0]
		if alias[d] == d {
			c.active = append(c.active, d)
		}
	}
}

// FinalizeAliases back-fills aliased devices' telemetry from their class
// representatives after a collapsed run. Sharing the sampler and trace
// by reference is exact, not an approximation: class members of a
// deterministic run would have produced bit-identical telemetry.
func (c *Cluster) FinalizeAliases() {
	if c.alias == nil {
		return
	}
	for d := 0; d < c.n; d++ {
		rep := c.alias[d]
		if rep == d {
			continue
		}
		c.freq[d] = c.freq[rep]
		c.samplers[d] = c.samplers[rep]
		if c.traces != nil {
			c.traces[d] = c.traces[rep]
		}
	}
}

// Deterministic reports whether the rate model is free of run-to-run
// jitter — the precondition for collapsing symmetry classes and for
// pooled device loops.
func (c *Cluster) Deterministic() bool { return c.cfg.JitterSigma <= 0 }

// SetPool attaches a worker pool for the per-device rate and power
// loops. Ignored when jitter is enabled: the jitter cache and its
// generator are shared across devices and must stay single-threaded.
func (c *Cluster) SetPool(p *sim.Pool) {
	if !c.Deterministic() {
		return
	}
	c.pool = p
}

// poolMinDevices is the simulated-device count below which the
// per-device loops stay serial.
const poolMinDevices = 64

// eachDevice runs fn once per simulated device. Devices are independent
// within an epoch (each owns its freq slot, sampler and task rates), so
// wide loops split across the pool; order does not matter because no
// cross-device state is written.
func (c *Cluster) eachDevice(fn func(dev int)) {
	if c.active != nil {
		if c.pool != nil && len(c.active) >= poolMinDevices {
			c.pool.RunRange(len(c.active), func(_, lo, hi int) {
				for _, dev := range c.active[lo:hi] {
					fn(dev)
				}
			})
			return
		}
		for _, dev := range c.active {
			fn(dev)
		}
		return
	}
	if c.pool != nil && c.n >= poolMinDevices {
		c.pool.RunRange(c.n, func(_, lo, hi int) {
			for dev := lo; dev < hi; dev++ {
				fn(dev)
			}
		})
		return
	}
	for dev := 0; dev < c.n; dev++ {
		fn(dev)
	}
}

// serializeWeight scales the vendor serialization fraction by operation
// class: reducing ring collectives interfere with the compute scheduler
// most, copy collectives less, and point-to-point kernels (few channels,
// mostly spinning) least.
func serializeWeight(op collective.Op) float64 {
	switch {
	case op.Reducing():
		return 1.0
	case op == collective.SendRecv:
		return 0.35
	default:
		return 0.8
	}
}

// pressure returns the contention collective kernels exert on device dev:
// stolen SMs, stolen HBM bandwidth (bytes/s) and the issue-serialization
// fraction.
func (c *Cluster) pressure(dev int) (smStolen, hbmStolen, serialize float64) {
	for _, t := range c.comms[dev] {
		cd := t.Payload().(collective.Desc)
		sm := float64(collective.SMOccupancy(cd, c.g))
		w := c.g.Contention.SerializeFrac * serializeWeight(cd.Op)
		if cd.Waiting() {
			// A spinning kernel holds its launch footprint but issues
			// little traffic; it steals fewer resources than an active
			// transfer.
			sm = sm / 2
			w = w / 2
		} else {
			wireRate := cd.WireBW(c.fabric)
			hbmStolen += collective.HBMDraw(cd, c.g, wireRate)
		}
		smStolen += sm
		if w > serialize {
			serialize = w
		}
	}
	if max := float64(c.g.SMs) * 0.6; smStolen > max {
		smStolen = max
	}
	return smStolen, hbmStolen, serialize
}

// deviceActivity estimates the power-model activity of device dev when its
// compute tasks run at frequency factor f under the given contention.
func (c *Cluster) deviceActivity(dev int, f, smStolen, hbmStolen, serialize float64) power.Activity {
	var act power.Activity
	for _, t := range c.compute[dev] {
		kd := t.Payload().(kernels.Desc)
		r := kernels.Rate(kd, c.g, f, smStolen, hbmStolen, serialize)
		if n := len(c.compute[dev]); n > 1 {
			r /= float64(n)
		}
		v, m, mem := activityOf(kd, c.g, r, f)
		act.Vec += v
		act.Mat += m
		act.Mem += mem
	}
	commUtil := 0.0
	for _, t := range c.comms[dev] {
		cd := t.Payload().(collective.Desc)
		if cd.Waiting() {
			continue
		}
		wireRate := cd.WireBW(c.fabric)
		commUtil += wireRate / c.g.UniLinkBW()
		act.Mem += collective.HBMDraw(cd, c.g, wireRate) / c.g.MemBW()
	}
	act.Comm = commUtil
	act.Surge = surgeActivity(act)
	return act.Clamped()
}

// surgeMatWeight makes matrix-unit activity contribute disproportionately
// to the overlap power surge: tensor-core current transients are the worst
// case for the voltage regulators, which is how the paper's Fig. 11 sees
// TF32 peak power exceed the FP32 baseline on large models.
const surgeMatWeight = 2.5

// surgeActivity derives the compute∧communication co-activity that drives
// the transient surge component.
func surgeActivity(act power.Activity) float64 {
	computeAct := act.Vec + surgeMatWeight*act.Mat
	if computeAct <= 0.05 || act.Comm <= 0.05 {
		return 0
	}
	return math.Min(computeAct, act.Comm)
}

// solveFreqIdleComm resolves frequency for a device running only
// communication (or nothing).
func (c *Cluster) solveFreqIdleComm(dev int) float64 {
	act := c.deviceActivity(dev, 1, 0, 0, 0)
	return power.SolveFreq(c.g, act, c.cfg.Caps)
}

// activityOf converts a kernel running at rate r (work units/s) under
// frequency factor f into datapath and memory activities. Issue activity
// is normalized to the throughput available at the current frequency, so
// a cap-throttled but fully occupied datapath still shows high activity.
// Fused descriptors split their FLOPs between datapaths by part.
func activityOf(d kernels.Desc, g *hw.GPUSpec, r, f float64) (vec, mat, mem float64) {
	if r <= 0 || math.IsInf(r, 1) || f <= 0 {
		return 0, 0, 0
	}
	w := kernels.Work(d)
	if w <= 0 {
		return 0, 0, 0
	}
	dur := w / r
	vecF, matF := d.FLOPsByPath()
	if vecF > 0 {
		if peak := peakFor(g, precision.Vector, d.Format); peak > 0 {
			vec = (vecF / dur) / (peak * f)
		}
	}
	if matF > 0 {
		if peak := peakFor(g, precision.Matrix, d.Format); peak > 0 {
			mat = (matF / dur) / (peak * f)
		}
	}
	if vec > 1 {
		vec = 1
	}
	if mat > 1 {
		mat = 1
	}
	if d.Bytes > 0 {
		mem = (d.Bytes / dur) / g.MemBW()
		if mem > 1 {
			mem = 1
		}
	}
	return vec, mat, mem
}

// peakFor returns the peak throughput of a datapath in the given format,
// falling back to FP32 when the exact format is not tabulated (fused tasks
// mix formats across parts).
func peakFor(g *hw.GPUSpec, path precision.Datapath, f precision.Format) float64 {
	if p := g.PeakFLOPS(path, f); p > 0 {
		return p
	}
	return g.PeakFLOPS(path, precision.FP32)
}

// Segment implements sim.Observer: it integrates per-GPU power over one
// constant-rate segment. The engine calls Segment immediately after
// Rates with the identical running set, so the device partition computed
// there is reused instead of rebuilt.
func (c *Cluster) Segment(t0, t1 float64, running []*sim.Task) {
	if !c.partFresh || c.partLen != len(running) {
		c.partition(running)
	}
	c.partFresh = false
	c.eachDevice(func(dev int) {
		var w float64
		if len(c.compute[dev]) == 0 && len(c.comms[dev]) == 0 && c.freq[dev] == c.idleFreq {
			w = c.idleW
		} else {
			w = power.Instant(c.g, c.segmentActivity(dev), c.freq[dev])
		}
		c.samplers[dev].Add(t0, t1, w)
		if c.traces != nil {
			c.traces[dev].Add(t0, t1, w)
		}
	})
}

// segmentActivity reads activity directly from the rates the platform
// assigned for the current segment.
func (c *Cluster) segmentActivity(dev int) power.Activity {
	var act power.Activity
	f := c.freq[dev]
	for _, t := range c.compute[dev] {
		kd := t.Payload().(kernels.Desc)
		v, m, mem := activityOf(kd, c.g, t.Rate(), f)
		act.Vec += v
		act.Mat += m
		act.Mem += mem
	}
	for _, t := range c.comms[dev] {
		cd := t.Payload().(collective.Desc)
		wireRate := t.Rate()
		act.Comm += wireRate / c.g.UniLinkBW()
		act.Mem += collective.HBMDraw(cd, c.g, wireRate) / c.g.MemBW()
	}
	computeAct := act.Vec + act.Mat
	if computeAct > 0.05 && act.Comm > 0.05 {
		act.Surge = math.Min(computeAct, act.Comm)
	}
	return act.Clamped()
}
