package store

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"

	"overlapsim/internal/core"
	"overlapsim/internal/sweep"
)

// testEntry returns a distinguishable cache entry and its canonical
// fingerprint.
func testEntry(t testing.TB, batch int) (string, *core.Result) {
	t.Helper()
	res := &core.Result{Config: core.Config{Batch: batch}}
	key, err := res.Config.Fingerprint()
	if err != nil {
		t.Fatalf("fingerprint: %v", err)
	}
	return key, res
}

// failCache is a sweep.Cache whose writes always fail.
type failCache struct{}

func (failCache) Get(string) (*core.Result, bool) { return nil, false }
func (failCache) Put(string, *core.Result) error  { return errors.New("disk full") }

func TestTieredPromotesOnLowerTierHit(t *testing.T) {
	fast, slow := sweep.NewMemCache(), sweep.NewMemCache()
	tiered := NewTiered(fast, slow)
	key, res := testEntry(t, 8)

	if err := slow.Put(key, res); err != nil {
		t.Fatal(err)
	}
	got, ok := tiered.Get(key)
	if !ok || got.Config.Batch != 8 {
		t.Fatalf("Get = %+v, %v; want hit with batch 8", got, ok)
	}
	// The hit must have been promoted into the faster tier.
	if _, ok := fast.Get(key); !ok {
		t.Error("lower-tier hit was not promoted into the faster tier")
	}
}

func TestTieredWritesThroughAllTiers(t *testing.T) {
	fast, slow := sweep.NewMemCache(), sweep.NewMemCache()
	tiered := NewTiered(fast, slow)
	key, res := testEntry(t, 16)

	if err := tiered.Put(key, res); err != nil {
		t.Fatal(err)
	}
	for i, c := range []*sweep.MemCache{fast, slow} {
		if _, ok := c.Get(key); !ok {
			t.Errorf("tier %d missing entry after write-through", i)
		}
	}
}

// A failing tier surfaces its error but never blocks the tiers that
// succeeded: the entry is still served.
func TestTieredPartialWriteFailure(t *testing.T) {
	mem := sweep.NewMemCache()
	tiered := NewTiered(mem, failCache{})
	key, res := testEntry(t, 32)

	if err := tiered.Put(key, res); err == nil {
		t.Fatal("Put with a failing tier returned nil error")
	}
	if _, ok := tiered.Get(key); !ok {
		t.Error("entry lost because one tier failed")
	}
}

func TestTieredSkipsNilBackends(t *testing.T) {
	mem := sweep.NewMemCache()
	if n := len(NewTiered(nil, mem, nil).Tiers()); n != 1 {
		t.Errorf("NewTiered kept %d tiers, want 1 (nils skipped)", n)
	}
}

// N concurrent callers of the same key run the computation exactly once:
// one leads, the rest coalesce onto its result.
func TestFlightCoalescesConcurrentCallers(t *testing.T) {
	f := NewFlight()
	key, want := testEntry(t, 8)

	const waiters = 4
	entered := make(chan struct{})
	release := make(chan struct{})
	runs := 0
	leaderDone := make(chan error, 1)
	go func() {
		_, waited, err := f.Do(context.Background(), key, func() (*core.Result, error) {
			runs++
			close(entered)
			<-release
			return want, nil
		})
		if waited {
			err = errors.Join(err, errors.New("leader reported waited=true"))
		}
		leaderDone <- err
	}()
	<-entered

	type out struct {
		res    *core.Result
		waited bool
		err    error
	}
	outs := make(chan out, waiters)
	base := mFlightWaiters.Value()
	for i := 0; i < waiters; i++ {
		go func() {
			res, waited, err := f.Do(context.Background(), key, func() (*core.Result, error) {
				return nil, errors.New("waiter ran the computation")
			})
			outs <- out{res, waited, err}
		}()
	}
	// The waiter counter ticks before blocking on the leader, so once it
	// reaches the full count every caller is parked and the leader can
	// finish.
	for mFlightWaiters.Value() < base+waiters {
		runtime.Gosched()
	}
	close(release)

	if err := <-leaderDone; err != nil {
		t.Fatalf("leader: %v", err)
	}
	for i := 0; i < waiters; i++ {
		o := <-outs
		if o.err != nil {
			t.Fatalf("waiter: %v", o.err)
		}
		if !o.waited {
			t.Error("coalesced caller reported waited=false")
		}
		if o.res != want {
			t.Errorf("waiter got %+v, want the leader's result", o.res)
		}
	}
	if runs != 1 {
		t.Errorf("computation ran %d times, want 1", runs)
	}
}

// Flight is not a cache: once a call completes, the next caller runs the
// computation again.
func TestFlightSequentialCallsRunAgain(t *testing.T) {
	f := NewFlight()
	key, res := testEntry(t, 8)
	runs := 0
	for i := 0; i < 2; i++ {
		_, waited, err := f.Do(context.Background(), key, func() (*core.Result, error) {
			runs++
			return res, nil
		})
		if err != nil || waited {
			t.Fatalf("Do = waited %v, err %v", waited, err)
		}
	}
	if runs != 2 {
		t.Errorf("computation ran %d times across sequential calls, want 2", runs)
	}
}

// A waiter whose own context expires stops waiting immediately; the
// leader is unaffected.
func TestFlightWaiterCancellation(t *testing.T) {
	f := NewFlight()
	key, res := testEntry(t, 8)

	entered := make(chan struct{})
	release := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		f.Do(context.Background(), key, func() (*core.Result, error) {
			close(entered)
			<-release
			return res, nil
		})
	}()
	<-entered

	ctx, cancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	base := mFlightWaiters.Value()
	go func() {
		_, _, err := f.Do(ctx, key, func() (*core.Result, error) { return res, nil })
		waiterDone <- err
	}()
	for mFlightWaiters.Value() < base+1 {
		runtime.Gosched()
	}
	cancel()
	if err := <-waiterDone; !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled waiter returned %v, want context.Canceled", err)
	}
	close(release)
	<-leaderDone
}

// A leader that ends in a context error must not poison live waiters:
// they re-enter, elect a new leader, and get a real answer.
func TestFlightWaiterRetriesAfterCancelledLeader(t *testing.T) {
	f := NewFlight()
	key, want := testEntry(t, 8)

	entered := make(chan struct{})
	release := make(chan struct{})
	go func() {
		f.Do(context.Background(), key, func() (*core.Result, error) {
			close(entered)
			<-release
			return nil, fmt.Errorf("leader gave up: %w", context.Canceled)
		})
	}()
	<-entered

	waiterDone := make(chan *core.Result, 1)
	base := mFlightWaiters.Value()
	go func() {
		res, _, err := f.Do(context.Background(), key, func() (*core.Result, error) {
			return want, nil
		})
		if err != nil {
			t.Errorf("retried waiter: %v", err)
		}
		waiterDone <- res
	}()
	for mFlightWaiters.Value() < base+1 {
		runtime.Gosched()
	}
	close(release)
	if res := <-waiterDone; res != want {
		t.Errorf("waiter got %+v, want its own computation's result after retry", res)
	}
}

func TestValidFingerprint(t *testing.T) {
	long := make([]byte, 129)
	for i := range long {
		long[i] = 'a'
	}
	cases := []struct {
		key  string
		want bool
	}{
		{"0123456789abcdef", true},
		{"deadbeef", true},
		{"", false},
		{"DEADBEEF", false},            // uppercase
		{"deadbeefg", false},           // non-hex
		{"../../../etc/passwd", false}, // path traversal
		{"dead beef", false},           // whitespace
		{string(long), false},          // oversized
	}
	for _, tc := range cases {
		if got := ValidFingerprint(tc.key); got != tc.want {
			t.Errorf("ValidFingerprint(%q) = %v, want %v", tc.key, got, tc.want)
		}
	}
}
