package fsdp

import (
	"errors"
	"testing"

	"overlapsim/internal/exec"
	"overlapsim/internal/gpu"
	"overlapsim/internal/hw"
	"overlapsim/internal/metrics"
	"overlapsim/internal/model"
	"overlapsim/internal/precision"
	"overlapsim/internal/strategy"
)

func tinyModel() model.Config {
	return model.Config{Name: "tiny", Arch: model.GPT3, NominalParams: 1e8,
		Layers: 4, Heads: 4, Hidden: 256, FFN: 1024, Vocab: 2048, SeqLen: 128}
}

func cluster(t *testing.T, g *hw.GPUSpec, n int) *gpu.Cluster {
	t.Helper()
	cl, err := gpu.New(gpu.Config{System: hw.NewSystem(g, n)})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func runMode(t *testing.T, mode exec.Mode) *exec.Plan {
	t.Helper()
	cl := cluster(t, hw.H100(), 4)
	plan, err := Build(cl, strategy.Params{
		Model: tinyModel(), Batch: 8, Format: precision.FP16, MatrixUnits: true,
		Checkpoint: true, Iterations: 2, Warmup: 1, Mode: mode,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Run(); err != nil {
		t.Fatal(err)
	}
	return plan
}

func measured(t *testing.T, plan *exec.Plan) []metrics.Iteration {
	t.Helper()
	its, err := plan.MeasuredIterations()
	if err != nil {
		t.Fatal(err)
	}
	return its
}

func TestOverlappedRuns(t *testing.T) {
	plan := runMode(t, exec.Overlapped)
	its := measured(t, plan)
	if len(its) != 2 {
		t.Fatalf("measured %d iterations, want 2", len(its))
	}
	for _, it := range its {
		if it.E2E <= 0 || it.ComputeKernelTime <= 0 || it.CommKernelTime <= 0 {
			t.Errorf("degenerate iteration: %+v", it)
		}
		if it.OverlappedComputeTime < 0 || it.OverlappedComputeTime > it.ComputeKernelTime {
			t.Errorf("overlapped compute out of range: %+v", it)
		}
	}
}

func TestSequentialHasNoOverlap(t *testing.T) {
	plan := runMode(t, exec.Sequential)
	for _, it := range measured(t, plan) {
		if ratio := it.OverlapRatio(); ratio > 0.01 {
			t.Errorf("sequential mode overlap ratio = %g, want ≈0", ratio)
		}
	}
}

func TestSequentialSlowerOverlappedComputeFaster(t *testing.T) {
	seq := measured(t, runMode(t, exec.Sequential))
	ovl := measured(t, runMode(t, exec.Overlapped))
	if seq[0].E2E <= ovl[0].E2E {
		t.Errorf("sequential E2E %g must exceed overlapped %g", seq[0].E2E, ovl[0].E2E)
	}
	if ovl[0].ComputeKernelTime < seq[0].ComputeKernelTime {
		t.Errorf("overlapped compute kernel time %g below isolated %g",
			ovl[0].ComputeKernelTime, seq[0].ComputeKernelTime)
	}
}

func TestIterationsAreConsistent(t *testing.T) {
	// With no jitter, measured iterations are identical.
	its := measured(t, runMode(t, exec.Overlapped))
	if d := its[0].E2E - its[1].E2E; d > its[0].E2E*1e-6 || d < -its[0].E2E*1e-6 {
		t.Errorf("deterministic iterations differ: %g vs %g", its[0].E2E, its[1].E2E)
	}
}

func TestOOMGate(t *testing.T) {
	cl := cluster(t, hw.A100(), 4)
	_, err := Build(cl, strategy.Params{
		Model: model.GPT3_13B(), Batch: 8, Format: precision.FP16,
		MatrixUnits: true, Checkpoint: true,
	})
	var oom *model.ErrOOM
	if !errors.As(err, &oom) {
		t.Fatalf("want ErrOOM, got %v", err)
	}
	// SkipMemoryCheck bypasses the gate.
	if _, err := Build(cluster(t, hw.A100(), 4), strategy.Params{
		Model: tinyModel(), Batch: 8, Format: precision.FP16, SkipMemoryCheck: true,
	}); err != nil {
		t.Errorf("skip-check build failed: %v", err)
	}
}

func TestBatchDivisibility(t *testing.T) {
	cl := cluster(t, hw.H100(), 4)
	if _, err := Build(cl, strategy.Params{Model: tinyModel(), Batch: 6, Format: precision.FP16}); err == nil {
		t.Error("batch 6 over 4 GPUs must fail")
	}
}

func TestInvalidModelRejected(t *testing.T) {
	cl := cluster(t, hw.H100(), 4)
	m := tinyModel()
	m.Layers = 0
	if _, err := Build(cl, strategy.Params{Model: m, Batch: 8}); err == nil {
		t.Error("invalid model must fail")
	}
}

func TestTaskCounts(t *testing.T) {
	cl := cluster(t, hw.H100(), 4)
	plan, err := Build(cl, strategy.Params{
		Model: tinyModel(), Batch: 8, Format: precision.FP16,
		Iterations: 1, Warmup: 0, Mode: exec.Overlapped,
	})
	if err != nil {
		t.Fatal(err)
	}
	L, n := 4, 4
	// Per iteration: embed AG + L fwd AG + L bwd AG + L RS + embed RS
	// collectives, plus per-device: embed, L fwd, head fwd, head bwd,
	// L bwd, optimizer.
	wantComm := 1 + L + L + L + 1
	wantCompute := n * (1 + L + 1 + 1 + L + 1)
	got := len(plan.Iterations[0])
	if got != wantComm+wantCompute {
		t.Errorf("iteration has %d tasks, want %d", got, wantComm+wantCompute)
	}
}

func TestPrefetchBoundsOverlapWindows(t *testing.T) {
	// A deeper prefetch must not decrease the overlapped communication
	// time (more gathers may run early).
	run := func(depth int) float64 {
		cl := cluster(t, hw.MI250(), 4)
		plan, err := Build(cl, strategy.Params{
			Model: tinyModel(), Batch: 8, Format: precision.FP16, MatrixUnits: true,
			PrefetchDepth: depth, Iterations: 2, Warmup: 1, Mode: exec.Overlapped,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := plan.Run(); err != nil {
			t.Fatal(err)
		}
		its := measured(t, plan)
		return its[0].E2E
	}
	shallow := run(1)
	deep := run(3)
	if deep > shallow*1.05 {
		t.Errorf("deeper prefetch should not slow the iteration much: %g vs %g", deep, shallow)
	}
}
