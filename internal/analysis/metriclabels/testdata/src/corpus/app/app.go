// Package app registers and labels metrics in every shape the analyzer
// rules on: constant and computed names and keys, and label values from
// each bounded idiom next to an unbounded one.
package app

import "corpus/telemetry"

const requestsName = "app_requests_total"

var dynamicName = "app_dynamic_total"

var (
	mGood    = telemetry.Default.CounterVec(requestsName, "Requests by outcome.", "outcome")
	mBadName = telemetry.Default.CounterVec(dynamicName, "Computed name.", "outcome")       // want `metric name passed to CounterVec must be a compile-time constant`
	mBadKey  = telemetry.Default.CounterVec("app_keys_total", "Computed key.", dynamicName) // want `label key passed to CounterVec must be a compile-time constant`
	mPlain   = telemetry.Default.Counter("app_plain_total", "No labels at all.")
)

// outcome is the closed-vocabulary idiom: a named string type with a
// declared package-level constant.
type outcome string

const outcomeOK outcome = "ok"

func Record(result string, oc outcome) {
	mGood.With("ok").Inc()       // constant: bounded
	mGood.With(string(oc)).Inc() // named type with a constant vocabulary: bounded
	mGood.With(result).Inc()     // want `label value is not from a bounded set`
	o := "miss"
	if result == "" {
		o = "hit"
	}
	mGood.With(o).Inc() // const-only local: bounded

	//overlaplint:allow metriclabels corpus case: bounded by construction in the caller
	mGood.With(result).Inc()
	mPlain.Inc()
}
