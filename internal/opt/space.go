package opt

import (
	"fmt"
	"sort"
	"strconv"

	"overlapsim/internal/core"
	"overlapsim/internal/sweep"
)

// Candidate is one unique configuration of the search space.
type Candidate struct {
	// ID is the candidate's dense index in Space.Cands — the
	// deterministic tiebreak order (row-major grid order).
	ID int
	// Coord is the candidate's first coordinate in the axis grid.
	Coord []int
	// Exp and Config are the resolved experiment.
	Exp    sweep.Experiment
	Config core.Config
	// Key is the canonical config fingerprint — the cache address.
	Key string
}

// Space is the advisor's search space: the fingerprint-deduplicated
// grid of a sweep spec, with coordinate structure retained so the
// search can walk axis neighborhoods.
type Space struct {
	// Axes is the normalized axis set the coordinates index.
	Axes *sweep.Axes
	// Cands are the unique candidates in row-major grid order.
	Cands []Candidate
	// GridPoints is the cartesian point count before deduplication.
	GridPoints int
	// PrunedGPUs counts unique configurations excluded by a MaxGPUs
	// constraint.
	PrunedGPUs int

	dims    []int
	byCoord map[string]int // every coord (dups included) -> candidate ID
}

// coordKey encodes a coordinate for map lookup.
func coordKey(coord []int) string {
	b := make([]byte, 0, 2*len(coord))
	for _, c := range coord {
		b = strconv.AppendInt(b, int64(c), 10)
		b = append(b, ',')
	}
	return string(b)
}

// NewSpace materializes the deduplicated candidate grid of a spec.
// maxGPUs > 0 prunes systems with more total GPUs before any
// evaluation.
func NewSpace(spec *sweep.Spec, maxGPUs int) (*Space, error) {
	axes, err := spec.Axes()
	if err != nil {
		return nil, err
	}
	sp := &Space{
		Axes:    axes,
		dims:    axes.Dims(),
		byCoord: make(map[string]int),
	}
	byKey := make(map[string]int)
	pruned := make(map[string]bool)
	coord := make([]int, len(sp.dims))
	for ok := true; ok; ok = sweep.Next(coord, sp.dims) {
		sp.GridPoints++
		e := axes.At(coord)
		cfg, err := e.Config()
		if err != nil {
			return nil, fmt.Errorf("opt: space point %v: %w", coord, err)
		}
		key, err := cfg.Fingerprint()
		if err != nil {
			return nil, fmt.Errorf("opt: space point %v: %w", coord, err)
		}
		if id, dup := byKey[key]; dup {
			// Duplicate coordinates resolve to their canonical
			// candidate, keeping axis neighborhoods connected across
			// collapsed (e.g. inert-TP-degree) planes.
			sp.byCoord[coordKey(coord)] = id
			continue
		}
		if pruned[key] {
			continue
		}
		if maxGPUs > 0 && cfg.System.TotalGPUs() > maxGPUs {
			pruned[key] = true
			sp.PrunedGPUs++
			continue
		}
		id := len(sp.Cands)
		byKey[key] = id
		sp.byCoord[coordKey(coord)] = id
		sp.Cands = append(sp.Cands, Candidate{
			ID:     id,
			Coord:  append([]int(nil), coord...),
			Exp:    e,
			Config: cfg,
			Key:    key,
		})
	}
	if len(sp.Cands) == 0 {
		return nil, fmt.Errorf("opt: spec %q leaves no candidates (max_gpus pruned %d)", spec.Name, sp.PrunedGPUs)
	}
	return sp, nil
}

// neighbors emits the candidate IDs reachable from c by moving a single
// axis coordinate up to radius steps (other axes held), resolving
// collapsed duplicates and skipping pruned points. Radius-one is the
// classic grid neighborhood; larger radii are the pattern-search rays
// the refinement loop widens to, so frontiers separated from the
// incumbent by exact-tie plateaus or shallow dominated valleys are
// still reached. IDs may repeat; callers dedupe.
func (sp *Space) neighbors(c *Candidate, radius int, emit func(id int)) {
	coord := append([]int(nil), c.Coord...)
	for ax := range coord {
		for d := 1; d <= radius; d++ {
			for _, s := range [2]int{-d, d} {
				v := c.Coord[ax] + s
				if v < 0 || v >= sp.dims[ax] {
					continue
				}
				coord[ax] = v
				if id, ok := sp.byCoord[coordKey(coord)]; ok {
					emit(id)
				}
				coord[ax] = c.Coord[ax]
			}
		}
	}
}

// maxDim returns the longest axis length.
func (sp *Space) maxDim() int {
	m := 1
	for _, d := range sp.dims {
		if d > m {
			m = d
		}
	}
	return m
}

// coarseGrid picks the seed evaluation set: an evenly spaced subgrid
// with per-axis sample counts reduced (largest axis first) until the
// subgrid fits the budget, always retaining both endpoints of every
// sampled axis. The result is deduplicated candidate IDs in ascending
// order; it is a pure function of the space shape and budget.
func (sp *Space) coarseGrid(budget int) []int {
	counts := append([]int(nil), sp.dims...)
	product := func() int {
		p := 1
		for _, c := range counts {
			p *= c
		}
		return p
	}
	for product() > budget {
		// Halve the currently largest axis (ties: lowest axis index).
		largest := 0
		for i, c := range counts {
			if c > counts[largest] {
				largest = i
			}
		}
		if counts[largest] == 1 {
			break
		}
		counts[largest] = (counts[largest] + 1) / 2
	}

	samples := make([][]int, len(counts))
	for ax, k := range counts {
		samples[ax] = sampleIndices(sp.dims[ax], k)
	}

	seen := make(map[int]bool)
	var ids []int
	pick := make([]int, len(counts))
	coord := make([]int, len(counts))
	subDims := make([]int, len(counts))
	for ax := range counts {
		subDims[ax] = len(samples[ax])
	}
	for ok := true; ok; ok = sweep.Next(pick, subDims) {
		for ax := range coord {
			coord[ax] = samples[ax][pick[ax]]
		}
		if id, ok := sp.byCoord[coordKey(coord)]; ok && !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids
}

// sampleIndices returns k evenly spaced indices over [0, n), endpoints
// included (deduplicated when rounding collides).
func sampleIndices(n, k int) []int {
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	if k <= 1 {
		return []int{0}
	}
	out := make([]int, 0, k)
	last := -1
	for j := 0; j < k; j++ {
		idx := (j*(n-1) + (k-1)/2) / (k - 1)
		if idx != last {
			out = append(out, idx)
			last = idx
		}
	}
	return out
}
