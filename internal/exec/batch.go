package exec

import (
	"strconv"

	"overlapsim/internal/kernels"
	"overlapsim/internal/sim"
)

// Op pairs a task's abstract work with its payload boxed exactly once.
// Strategy builders construct a handful of fused kernel descriptors per
// iteration and then fan each out to every device; boxing the descriptor
// into an interface value here — instead of at every NewTask call —
// removes one heap allocation per task from plan construction.
type Op struct {
	Work    float64
	Payload any
}

// KernelOp boxes a fused kernel descriptor into an Op — the one
// construction path every strategy shares.
func KernelOp(d kernels.Desc) Op { return Op{Work: kernels.Work(d), Payload: d} }

// Batch is the batched task-construction API the strategy builders go
// through: it pre-sizes the engine's slab allocators for the plan's
// expected task count and assembles the dotted per-layer/per-device task
// names in a reusable buffer, so building a plan allocates per task only
// what outlives construction (the name string and queue slots).
type Batch struct {
	Eng *sim.Engine
	buf []byte
}

// NewBatch wraps the engine, reserving capacity for about expectTasks
// task creations. The estimate is an allocation hint, not a limit.
func NewBatch(eng *sim.Engine, expectTasks int) *Batch {
	eng.Reserve(expectTasks)
	return &Batch{Eng: eng, buf: make([]byte, 0, 64)}
}

// Name returns prefix followed by the decimal index — the "fwd.l7"
// pattern — with a single string allocation.
func (b *Batch) Name(prefix string, idx int) string {
	b.buf = append(b.buf[:0], prefix...)
	b.buf = strconv.AppendInt(b.buf, int64(idx), 10)
	return string(b.buf)
}

// DevName returns base+"@"+dev, the per-device task-name convention.
func (b *Batch) DevName(base string, dev int) string {
	b.buf = append(b.buf[:0], base...)
	b.buf = append(b.buf, '@')
	b.buf = strconv.AppendInt(b.buf, int64(dev), 10)
	return string(b.buf)
}

// Compute creates one compute task per stream, named base@device. When
// chain is non-nil (sequential mode) each task is chain-ordered on its
// device.
func (b *Batch) Compute(base string, op Op, streams []*sim.Stream, chain *Chain) []*sim.Task {
	out := make([]*sim.Task, len(streams))
	for i, s := range streams {
		t := b.Eng.NewTask(b.DevName(base, s.Device()), sim.KindCompute, op.Work, op.Payload, s)
		if chain != nil {
			chain.Order(t, s.Device())
		}
		out[i] = t
	}
	return out
}

// Task creates a single task — the collective/host path of the batched
// API, kept symmetric with Compute so builders construct every task
// through the batch.
func (b *Batch) Task(name string, kind sim.Kind, work float64, payload any, streams ...*sim.Stream) *sim.Task {
	return b.Eng.NewTask(name, kind, work, payload, streams...)
}
