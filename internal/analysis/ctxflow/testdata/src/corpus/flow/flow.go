// Package flow exercises the cancellation contract below cmd/.
package flow

import "context"

func Detach() error {
	ctx := context.Background() // want `context\.Background below cmd/`
	return ctx.Err()
}

func Todo() error {
	return context.TODO().Err() // want `context\.TODO below cmd/`
}

func Dropped(ctx context.Context, n int) int { // want `exported Dropped never uses its context parameter "ctx"`
	return n + 1
}

func Discarded(_ context.Context) int { // want `exported Discarded discards its context parameter`
	return 1
}

// Threaded is the required shape: the context reaches the work.
func Threaded(ctx context.Context) error {
	return ctx.Err()
}

// unexported helpers may ignore their context; only exported
// entrypoints advertise cancellation.
func quietDrop(ctx context.Context) int {
	return 2
}

// Compat is the sanctioned exception: a no-context convenience wrapper
// kept for compatibility, behind a directive.
func Compat() error {
	//overlaplint:allow ctxflow corpus case: compat wrapper; cancellable callers use Threaded
	return Threaded(context.Background())
}

var _ = quietDrop
