// Command paperfigs regenerates every table and figure of the paper's
// evaluation section on the simulator and prints them as text tables.
// Use -only to restrict to one artifact (e.g. -only fig4), and -out to
// also write CSV files.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"overlapsim/internal/core"
	"overlapsim/internal/exec"
	"overlapsim/internal/power"
	"overlapsim/internal/report"
	"overlapsim/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("paperfigs: ")
	only := flag.String("only", "", "restrict to one artifact: table1, table2, fig1a, fig1b, fig4, fig5, fig6, fig7, fig9, fig10, fig11, headline")
	outDir := flag.String("out", "", "directory to write CSV series into (optional)")
	flag.Parse()

	want := func(name string) bool { return *only == "" || strings.EqualFold(*only, name) }
	w := os.Stdout

	if want("table1") {
		section(w, "Table I — evaluated GPUs")
		check(report.Table1(w))
	}
	if want("table2") {
		section(w, "Table II — workloads")
		check(report.Table2(w))
	}

	var mainPts []workload.Point
	needMain := want("fig4") || want("fig5") || want("fig6") || want("headline")
	if needMain {
		log.Println("running main evaluation grid (Figures 4-6)...")
		mainPts = workload.RunGrid(context.Background(), workload.MainGrid())
		reportErrors(mainPts)
	}

	if want("fig1a") {
		section(w, "Figure 1(a) — overlapped computation, FSDP on H100x8")
		pts := workload.RunGrid(context.Background(), workload.Figure1a())
		reportErrors(pts)
		check(report.OverlapFigure(w, pts))
		writeCSV(*outDir, "fig1a.csv", pts)
	}
	if want("fig1b") {
		section(w, "Figure 1(b) — overlapped computation, PP GPT-3 2.7B on A100x4")
		pts := workload.RunGrid(context.Background(), workload.Figure1b())
		reportErrors(pts)
		check(report.OverlapFigure(w, pts))
		writeCSV(*outDir, "fig1b.csv", pts)
	}
	if want("fig4") {
		section(w, "Figure 4 — computation slowdowns across GPUs")
		check(report.SlowdownFigure(w, mainPts))
		writeCSV(*outDir, "fig4.csv", mainPts)
	}
	if want("fig5") {
		section(w, "Figure 5 — end-to-end training iteration latency")
		check(report.E2EFigure(w, mainPts))
	}
	if want("fig6") {
		section(w, "Figure 6 — power consumption across GPUs")
		check(report.PowerFigure(w, mainPts))
	}
	if want("fig7") {
		section(w, "Figure 7 — MI250 power trace, LLaMA2 13B (1ms sampling)")
		runFig7(w, *outDir)
	}
	if want("fig9") {
		section(w, "Figure 9 — impact of power capping (A100x4)")
		pts := workload.RunGrid(context.Background(), workload.Figure9())
		reportErrors(pts)
		check(report.PowerCapFigure(w, pts))
	}
	if want("fig10") {
		section(w, "Figure 10 — numeric precision (FP32 vs FP16), H100x4")
		pts := workload.RunGrid(context.Background(), workload.Figure10())
		reportErrors(pts)
		check(report.AblationFigure(w, pts, func(p workload.Point) string {
			return p.Cfg.Format.String()
		}))
	}
	if want("fig11") {
		section(w, "Figure 11 — Tensor Core utilization (FP32 vs TF32), H100x4")
		pts := workload.RunGrid(context.Background(), workload.Figure11())
		reportErrors(pts)
		check(report.AblationFigure(w, pts, func(p workload.Point) string {
			if p.Cfg.MatrixUnits {
				return "TF32 tensor core"
			}
			return "FP32 general"
		}))
	}
	if want("headline") {
		section(w, "Headline aggregates (abstract / §V)")
		check(report.Headline(w, mainPts))
	}
}

func runFig7(w *os.File, outDir string) {
	res, err := core.RunMode(context.Background(), workload.Figure7(), exec.Overlapped)
	if err != nil {
		log.Printf("fig7: %v", err)
		return
	}
	if len(res.Traces) == 0 {
		log.Printf("fig7: no trace recorded")
		return
	}
	tr := res.Traces[0]
	g := workload.Figure7().System.GPU
	fmt.Fprintf(w, "samples=%d interval=%.0fms gpu0; normalized power (TDP=%gW):\n",
		len(tr), power.TraceInterval*1e3, g.TDPW)
	// Print a coarse sparkline-style summary: min/mean/max per decile of
	// the run.
	printTraceSummary(w, tr, g.TDPW)
	if outDir != "" {
		path := filepath.Join(outDir, "fig7_trace.csv")
		f, err := os.Create(path)
		if err != nil {
			log.Printf("fig7: %v", err)
			return
		}
		defer f.Close()
		fmt.Fprintln(f, "t_s,watts,tdp_frac")
		for _, s := range tr {
			fmt.Fprintf(f, "%.6f,%.1f,%.4f\n", s.T, s.Watts, s.Watts/g.TDPW)
		}
		log.Printf("fig7: wrote %s", path)
	}
}

func printTraceSummary(w *os.File, tr []power.Sample, tdp float64) {
	if len(tr) == 0 {
		return
	}
	const buckets = 20
	per := (len(tr) + buckets - 1) / buckets
	headers := []string{"phase", "min(TDP)", "mean(TDP)", "max(TDP)"}
	var rows [][]string
	for b := 0; b < buckets && b*per < len(tr); b++ {
		lo := b * per
		hi := lo + per
		if hi > len(tr) {
			hi = len(tr)
		}
		mn, mx, sum := tr[lo].Watts, tr[lo].Watts, 0.0
		for _, s := range tr[lo:hi] {
			if s.Watts < mn {
				mn = s.Watts
			}
			if s.Watts > mx {
				mx = s.Watts
			}
			sum += s.Watts
		}
		rows = append(rows, []string{
			fmt.Sprintf("%2d/%d", b+1, buckets),
			report.TDP(mn / tdp),
			report.TDP(sum / float64(hi-lo) / tdp),
			report.TDP(mx / tdp),
		})
	}
	check(report.Table(w, headers, rows))
}

func writeCSV(dir, name string, pts []workload.Point) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Printf("%s: %v", name, err)
		return
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		log.Printf("%s: %v", name, err)
		return
	}
	defer f.Close()
	headers := []string{"system", "parallelism", "model", "batch", "format",
		"overlap_ratio", "compute_slowdown", "e2e_ideal_ms", "e2e_overlap_ms", "e2e_seq_ms",
		"avg_tdp", "peak_tdp", "status"}
	var rows [][]string
	for _, p := range pts {
		row := []string{p.Cfg.System.Name, p.Cfg.Parallelism.String(), p.Cfg.Model.Name,
			fmt.Sprintf("%d", p.Cfg.Batch), p.Cfg.Format.String()}
		if p.Res != nil {
			row = append(row,
				fmt.Sprintf("%.4f", p.Res.Char.OverlapRatio),
				fmt.Sprintf("%.4f", p.Res.Char.ComputeSlowdown),
				report.Ms(p.Res.Char.E2EIdeal),
				report.Ms(p.Res.Overlapped.Mean.E2E),
				report.Ms(p.Res.Sequential.Mean.E2E),
				fmt.Sprintf("%.3f", p.Res.Overlapped.AvgTDP),
				fmt.Sprintf("%.3f", p.Res.Overlapped.PeakTDP),
				"ok")
		} else if p.Skipped() {
			row = append(row, "", "", "", "", "", "", "", "oom")
		} else {
			row = append(row, "", "", "", "", "", "", "", "error")
		}
		rows = append(rows, row)
	}
	if err := report.CSV(f, headers, rows); err != nil {
		log.Printf("%s: %v", name, err)
		return
	}
	log.Printf("wrote %s", path)
}

func reportErrors(pts []workload.Point) {
	for _, p := range pts {
		if p.Err != nil {
			log.Printf("error: %v", p.Err)
		}
	}
}

func section(w *os.File, title string) {
	fmt.Fprintf(w, "\n== %s ==\n\n", title)
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
