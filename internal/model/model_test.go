package model

import (
	"math"
	"testing"
	"testing/quick"

	"overlapsim/internal/kernels"
	"overlapsim/internal/precision"
)

func TestZooMatchesTable2(t *testing.T) {
	want := []struct {
		name   string
		layers int
		heads  int
		hidden int
	}{
		{"GPT-3 XL", 24, 32, 2048},
		{"GPT-3 2.7B", 32, 32, 2560},
		{"GPT-3 6.7B", 32, 32, 4096},
		{"GPT-3 13B", 40, 40, 5120},
		{"LLaMA2 13B", 40, 40, 5120},
	}
	zoo := Zoo()
	if len(zoo) != len(want) {
		t.Fatalf("zoo has %d models", len(zoo))
	}
	for i, w := range want {
		m := zoo[i]
		if m.Name != w.name || m.Layers != w.layers || m.Heads != w.heads || m.Hidden != w.hidden {
			t.Errorf("row %d: got %s %d/%d/%d", i, m.Name, m.Layers, m.Heads, m.Hidden)
		}
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestParamCountsNearNominal(t *testing.T) {
	for _, m := range Zoo() {
		got := m.TotalParams()
		rel := math.Abs(got-m.NominalParams) / m.NominalParams
		if rel > 0.12 {
			t.Errorf("%s: exact params %.3gB vs nominal %.3gB (%.0f%% off)",
				m.Name, got/1e9, m.NominalParams/1e9, rel*100)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Config{
		{Name: "layers", Layers: 0, Heads: 1, Hidden: 8, FFN: 8, Vocab: 8, SeqLen: 8},
		{Name: "heads", Layers: 1, Heads: 3, Hidden: 8, FFN: 8, Vocab: 8, SeqLen: 8},
		{Name: "vocab", Layers: 1, Heads: 2, Hidden: 8, FFN: 8, Vocab: 0, SeqLen: 8},
		{Name: "seq", Layers: 1, Heads: 2, Hidden: 8, FFN: 8, Vocab: 8, SeqLen: 0},
	}
	for _, m := range bad {
		if m.Validate() == nil {
			t.Errorf("%s: expected validation error", m.Name)
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("GPT-3 13B"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("GPT-5"); err == nil {
		t.Error("unknown model should error")
	}
}

// flopsOf sums FLOPs over kernel descriptors.
func flopsOf(ks []kernels.Desc) float64 {
	s := 0.0
	for _, k := range ks {
		s += k.FLOPs
	}
	return s
}

func TestForwardFLOPsMatch2PT(t *testing.T) {
	// Forward GEMM work per token should be close to 2·params (the
	// standard estimate), within the tolerance of attention and head
	// terms.
	for _, m := range Zoo() {
		b := 4
		tokens := float64(b) * float64(m.SeqLen)
		total := flopsOf(m.HeadKernels(b, precision.FP16, true, true))
		for i := 0; i < m.Layers; i++ {
			total += flopsOf(m.ForwardLayerKernels(b, precision.FP16, true))
			break
		}
		total += flopsOf(m.ForwardLayerKernels(b, precision.FP16, true)) * float64(m.Layers-1)
		want := 2 * m.TotalParams() * tokens
		ratio := total / want
		if ratio < 0.9 || ratio > 1.6 {
			t.Errorf("%s: fwd FLOPs/2PT ratio = %.2f", m.Name, ratio)
		}
	}
}

func TestBackwardRoughlyTwiceForward(t *testing.T) {
	m := GPT3XL()
	fwd := flopsOf(m.ForwardLayerKernels(4, precision.FP16, true))
	bwdNoCkpt := flopsOf(m.BackwardLayerKernels(4, precision.FP16, true, false))
	bwdCkpt := flopsOf(m.BackwardLayerKernels(4, precision.FP16, true, true))
	if r := bwdNoCkpt / fwd; r < 1.8 || r > 2.4 {
		t.Errorf("bwd/fwd = %.2f, want ≈2", r)
	}
	if math.Abs(bwdCkpt-(bwdNoCkpt+fwd))/bwdCkpt > 0.01 {
		t.Errorf("checkpointed bwd should add one forward recompute: %g vs %g",
			bwdCkpt, bwdNoCkpt+fwd)
	}
}

func TestLLaMAHasSwiGLU(t *testing.T) {
	l := LLaMA2_13B()
	ks := l.ForwardLayerKernels(2, precision.FP16, true)
	gate := false
	for _, k := range ks {
		if k.Name == "mlp.gate" {
			gate = true
		}
	}
	if !gate {
		t.Error("LLaMA-2 layers must include the SwiGLU gate GEMM")
	}
	g := GPT3_13B()
	for _, k := range g.ForwardLayerKernels(2, precision.FP16, true) {
		if k.Name == "mlp.gate" {
			t.Error("GPT-3 layers must not have a gate GEMM")
		}
	}
}

func TestMatrixUnitsSelectDatapath(t *testing.T) {
	m := GPT3XL()
	for _, k := range m.ForwardLayerKernels(2, precision.FP16, true) {
		if k.Op == kernels.OpGEMM && k.Path != precision.Matrix {
			t.Errorf("GEMM %s not on matrix path with matrix units enabled", k.Name)
		}
	}
	for _, k := range m.ForwardLayerKernels(2, precision.FP32, false) {
		if k.Path != precision.Vector {
			t.Errorf("kernel %s not on vector path with matrix units disabled", k.Name)
		}
	}
	// FP32 + matrix units = TF32 GEMMs.
	for _, k := range m.ForwardLayerKernels(2, precision.FP32, true) {
		if k.Op == kernels.OpGEMM && k.Format != precision.TF32 {
			t.Errorf("GEMM %s format %v, want TF32", k.Name, k.Format)
		}
	}
}

func TestIterationFLOPs(t *testing.T) {
	m := GPT3XL()
	got := m.IterationFLOPs(8)
	want := 6 * m.TotalParams() * 8 * float64(m.SeqLen)
	if got != want {
		t.Errorf("IterationFLOPs = %g, want %g", got, want)
	}
}

func TestFootprintGatesMatchPaper(t *testing.T) {
	// §V-A: the A100's 40 GB limits it to GPT-3 2.7B and below under
	// FSDP over 4 GPUs; the H100 fits 13B; the MI210 does not fit 13B;
	// the MI250 does.
	a100 := 40.0 * (1 << 30)
	h100 := 80.0 * (1 << 30)
	mi210 := 64.0 * (1 << 30)
	mi250 := 128.0 * (1 << 30)
	fit := func(m Config, local int, mem float64) bool {
		return m.FootprintFSDP(local, 4, precision.FP16, true).Total() <= mem
	}
	if !fit(GPT3_2_7B(), 2, a100) {
		t.Error("GPT-3 2.7B must fit the A100")
	}
	if fit(GPT3_6_7B(), 2, a100) {
		t.Error("GPT-3 6.7B must NOT fit the A100 (paper constraint)")
	}
	if !fit(GPT3_13B(), 2, h100) {
		t.Error("GPT-3 13B must fit the H100")
	}
	if fit(GPT3_13B(), 2, mi210) {
		t.Error("GPT-3 13B must NOT fit the MI210")
	}
	if !fit(GPT3_13B(), 2, mi250) {
		t.Error("GPT-3 13B must fit the MI250")
	}
	if !fit(LLaMA2_13B(), 2, mi250) {
		t.Error("LLaMA-2 13B must fit the MI250 (Fig. 7 workload)")
	}
}

func TestCheckpointShrinksActivations(t *testing.T) {
	m := GPT3_6_7B()
	with := m.FootprintFSDP(8, 4, precision.FP16, true)
	without := m.FootprintFSDP(8, 4, precision.FP16, false)
	if with.Activations >= without.Activations {
		t.Error("checkpointing must reduce stored activations")
	}
}

func TestPipelineFootprint(t *testing.T) {
	m := GPT3_2_7B()
	est := m.FootprintPipeline(64, 2, 4, precision.FP16, true)
	if est.Total() <= 0 || est.States <= 0 {
		t.Errorf("estimate = %+v", est)
	}
	// More in-flight microbatches (larger batch at fixed micro) must not
	// shrink activations.
	small := m.FootprintPipeline(4, 2, 4, precision.FP16, true)
	if est.Activations < small.Activations {
		t.Error("activation memory must not shrink with batch")
	}
}

func TestErrOOM(t *testing.T) {
	e := &ErrOOM{Model: "m", GPU: "g", NeedBytes: 2 << 30, HaveBytes: 1 << 30}
	if e.Error() == "" {
		t.Error("empty error text")
	}
}

// Property: per-layer parameters grow monotonically with hidden size.
func TestQuickParamsMonotone(t *testing.T) {
	f := func(h1, h2 uint8) bool {
		a := float64(h1%64+1) * 64
		b := float64(h2%64+1) * 64
		if a > b {
			a, b = b, a
		}
		ma := Config{Name: "a", Layers: 2, Heads: 2, Hidden: int(a), FFN: int(4 * a), Vocab: 1000, SeqLen: 128}
		mb := Config{Name: "b", Layers: 2, Heads: 2, Hidden: int(b), FFN: int(4 * b), Vocab: 1000, SeqLen: 128}
		return ma.ParamsPerLayer() <= mb.ParamsPerLayer()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: FSDP states shrink proportionally with the shard count.
func TestQuickFSDPSharding(t *testing.T) {
	m := GPT3XL()
	f := func(n uint8) bool {
		k := int(n%7) + 2
		one := m.FootprintFSDP(2, 1, precision.FP16, true).States
		shard := m.FootprintFSDP(2, k, precision.FP16, true).States
		return math.Abs(shard-one/float64(k)) < 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
