// Package power implements the GPU power model, DVFS under power and
// frequency caps, and the telemetry samplers used to reproduce the paper's
// power methodology (§IV-D): NVML-style 100 ms sampling on NVIDIA GPUs,
// AMD-SMI-style 20 ms sampling on AMD GPUs, and the 1 ms trace mode used
// for the Fig. 7 power time-series.
//
// Instantaneous device power is a sum of components gated by engine
// activity:
//
//	P = Idle + (Pvec·aVec + Pmat·aMat)·f^exp + Pmem·uMem + Pcomm·uComm
//	    + Psurge·aSurge
//
// where aVec/aMat are issue-slot activities of the vector and matrix
// datapaths (independent of frequency), uMem/uComm are memory and
// interconnect utilizations, f is the DVFS frequency factor, and aSurge is
// the compute∧communication co-activity that produces the elevated peaks
// the paper measures during overlap.
package power

import (
	"fmt"
	"math"

	"overlapsim/internal/hw"
)

// Activity captures the engine activities of one GPU during one
// constant-rate segment.
type Activity struct {
	// Vec is vector-datapath issue activity in [0,1].
	Vec float64
	// Mat is matrix-datapath issue activity in [0,1].
	Mat float64
	// Mem is HBM bandwidth utilization in [0,1].
	Mem float64
	// Comm is interconnect utilization in [0,1].
	Comm float64
	// Surge is the compute-communication co-activity in [0,1] (zero when
	// either side is idle).
	Surge float64
}

// clamp01 limits v to [0,1].
func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Clamped returns the activity with every component limited to [0,1].
func (a Activity) Clamped() Activity {
	return Activity{
		Vec:   clamp01(a.Vec),
		Mat:   clamp01(a.Mat),
		Mem:   clamp01(a.Mem),
		Comm:  clamp01(a.Comm),
		Surge: clamp01(a.Surge),
	}
}

// Instant returns the instantaneous power in watts of GPU g with activity
// a at frequency factor f.
func Instant(g *hw.GPUSpec, a Activity, f float64) float64 {
	a = a.Clamped()
	if f <= 0 {
		f = g.Power.FMin
	}
	if f > 1 {
		f = 1
	}
	fs := math.Pow(f, g.Power.FreqExp)
	p := g.Power.IdleW
	p += (g.Power.VectorW*a.Vec + g.Power.MatrixW*a.Mat) * fs
	p += g.Power.MemW * a.Mem
	p += g.Power.CommW * a.Comm
	p += g.Power.SurgeW * a.Surge
	return p
}

// Caps holds the operator-imposed limits of the ablation studies.
type Caps struct {
	// PowerW is the power cap in watts; 0 means uncapped (Fig. 9 sets
	// this with nvidia-smi).
	PowerW float64 `json:"PowerW"`
	// FreqFactor caps the DVFS frequency factor in (0,1]; 0 means
	// uncapped.
	FreqFactor float64 `json:"FreqFactor"`
}

// Validate reports whether the caps are usable for GPU g.
func (c Caps) Validate(g *hw.GPUSpec) error {
	if c.PowerW < 0 {
		return fmt.Errorf("power: negative power cap %g", c.PowerW)
	}
	if c.PowerW > 0 && c.PowerW < g.Power.IdleW {
		return fmt.Errorf("power: cap %gW below idle power %gW of %s", c.PowerW, g.Power.IdleW, g.Name)
	}
	if c.FreqFactor < 0 || c.FreqFactor > 1 {
		return fmt.Errorf("power: frequency cap %g outside (0,1]", c.FreqFactor)
	}
	return nil
}

// TDPCeilingFactor is the transient excursion the firmware power governor
// tolerates before throttling: sustained draw is held near
// TDP·TDPCeilingFactor even without an operator-imposed cap. This is what
// makes power a contended resource during overlap (Takeaway 6): when
// compute and communication together demand more than the governor
// allows, the compute clocks drop.
const TDPCeilingFactor = 1.25

// SolveFreq returns the DVFS frequency factor GPU g settles at for the
// given activity and caps: the largest f in [FMin, 1] such that Instant
// does not exceed the effective power limit (the operator cap if set,
// otherwise the firmware TDP ceiling), further limited by the frequency
// cap. Non-frequency-scaled components (memory, comm, surge, idle) may
// keep the device above a very strict cap even at FMin; real GPUs behave
// the same way, which is exactly the contention regime Fig. 9 probes.
func SolveFreq(g *hw.GPUSpec, a Activity, c Caps) float64 {
	fmax := 1.0
	if c.FreqFactor > 0 && c.FreqFactor < fmax {
		fmax = c.FreqFactor
	}
	if fmax < g.Power.FMin {
		fmax = g.Power.FMin
	}
	ceiling := g.TDPW * TDPCeilingFactor
	if c.PowerW <= 0 || c.PowerW > ceiling {
		c.PowerW = ceiling
	}
	a = a.Clamped()
	static := g.Power.IdleW + g.Power.MemW*a.Mem + g.Power.CommW*a.Comm + g.Power.SurgeW*a.Surge
	dyn := g.Power.VectorW*a.Vec + g.Power.MatrixW*a.Mat
	if dyn <= 0 {
		return fmax
	}
	budget := c.PowerW - static
	if budget <= 0 {
		return g.Power.FMin
	}
	f := math.Pow(budget/dyn, 1/g.Power.FreqExp)
	if f > fmax {
		f = fmax
	}
	if f < g.Power.FMin {
		f = g.Power.FMin
	}
	return f
}
