// Package precision defines numeric formats and the GPU datapaths that
// execute them. Precision selection drives three of the paper's ablations:
// FP32 versus FP16 training (Fig. 10), the general-purpose vector datapath
// versus the Tensor-Core/Matrix-Core matrix datapath (Fig. 11), and the
// TF32 mode that routes FP32 inputs through the matrix units.
package precision

import (
	"fmt"
	"strings"
)

// Format is a numeric storage format.
type Format int

// Supported numeric formats.
const (
	// FP32 is IEEE 754 single precision (4 bytes/element).
	FP32 Format = iota
	// TF32 is NVIDIA's TensorFloat-32: FP32 storage, 19-bit matrix-unit
	// arithmetic (4 bytes/element in memory).
	TF32
	// FP16 is IEEE 754 half precision (2 bytes/element).
	FP16
	// BF16 is bfloat16 (2 bytes/element).
	BF16
)

// String returns the conventional name of the format.
func (f Format) String() string {
	switch f {
	case FP32:
		return "FP32"
	case TF32:
		return "TF32"
	case FP16:
		return "FP16"
	case BF16:
		return "BF16"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// Parse maps the conventional lowercase CLI/API names ("fp32", "tf32",
// "fp16", "bf16"; case-insensitive) onto a Format.
func Parse(name string) (Format, error) {
	for _, f := range Formats() {
		if strings.EqualFold(name, f.String()) {
			return f, nil
		}
	}
	return 0, fmt.Errorf("precision: unknown format %q (have fp32, tf32, fp16, bf16)", name)
}

// Formats lists the supported numeric formats.
func Formats() []Format { return []Format{FP32, TF32, FP16, BF16} }

// Bytes returns the storage size of one element in the format.
func (f Format) Bytes() int {
	switch f {
	case FP32, TF32:
		return 4
	case FP16, BF16:
		return 2
	default:
		//overlaplint:allow nopanic enum exhaustiveness: Format values are validated at parse time, so this default is unreachable
		panic(fmt.Sprintf("precision: unknown format %d", int(f)))
	}
}

// Datapath identifies the execution-unit family a kernel runs on.
type Datapath int

// Datapaths.
const (
	// Vector is the general-purpose SIMT FMA datapath (CUDA cores /
	// stream processors).
	Vector Datapath = iota
	// Matrix is the specialized matrix-multiply datapath (NVIDIA Tensor
	// Cores, AMD Matrix Cores).
	Matrix
)

// String returns a short name for the datapath.
func (d Datapath) String() string {
	switch d {
	case Vector:
		return "vector"
	case Matrix:
		return "matrix"
	default:
		return fmt.Sprintf("Datapath(%d)", int(d))
	}
}

// PathFor returns the datapath a GEMM in format f executes on given whether
// matrix units are enabled. FP16/BF16 GEMMs use matrix units whenever
// enabled; FP32 GEMMs use matrix units only via TF32 mode. Non-GEMM kernels
// always use the vector datapath regardless of this selection.
func PathFor(f Format, matrixUnitsEnabled bool) Datapath {
	if !matrixUnitsEnabled {
		return Vector
	}
	switch f {
	case FP16, BF16, TF32:
		return Matrix
	default:
		return Vector
	}
}

// EffectiveGEMMFormat maps a requested training format and matrix-unit
// setting to the arithmetic format GEMMs actually execute in. With matrix
// units enabled, FP32 GEMMs execute as TF32 (the PyTorch
// allow_tf32 behaviour the paper's Fig. 11 toggles); storage bytes are
// unchanged.
func EffectiveGEMMFormat(f Format, matrixUnitsEnabled bool) Format {
	if matrixUnitsEnabled && f == FP32 {
		return TF32
	}
	return f
}
