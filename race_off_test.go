//go:build !race

package overlapsim_bench

// raceEnabled reports whether the race detector is active; the golden
// differential test trims its grid under -race (see race_on_test.go).
const raceEnabled = false
