package opt

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"overlapsim/internal/core"
	"overlapsim/internal/sweep"
)

// DefaultSeedEvals is the default coarse-grid budget (and the initial
// per-round refinement budget).
const DefaultSeedEvals = 16

// Query is one advisor question: a search space (a plain sweep spec),
// the objectives to trade off, constraints on admissible
// configurations, and the evaluation budget.
type Query struct {
	// Name labels the query in reports and job listings.
	Name string `json:"name,omitempty"`
	// Spec declares the search space — exactly the axes a sweep would
	// grid over.
	Spec sweep.Spec `json:"spec"`
	// Objectives are registered objective names (default: iteration
	// time, energy per iteration, average board power).
	Objectives []string `json:"objectives,omitempty"`
	// Minimize names the objective the single recommendation minimizes
	// (default: the first objective). It must be listed in Objectives.
	Minimize string `json:"minimize,omitempty"`
	// Constraints bound the admissible configurations.
	Constraints Constraints `json:"constraints,omitempty"`
	// SeedEvals is the coarse-grid budget (default DefaultSeedEvals,
	// clamped to the space size).
	SeedEvals int `json:"seed_evals,omitempty"`
	// MaxEvals bounds how many candidates the search may evaluate in
	// total (default: the whole space — the budget then only shapes
	// evaluation order).
	MaxEvals int `json:"max_evals,omitempty"`
}

// ParseQuery decodes a JSON advisor query, rejecting unknown fields so
// typos fail loudly.
func ParseQuery(r io.Reader) (*Query, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var q Query
	if err := dec.Decode(&q); err != nil {
		return nil, fmt.Errorf("opt: parsing query: %w", err)
	}
	return &q, nil
}

// resolve returns the query's objectives and the index of the
// recommendation objective.
func (q *Query) resolve() ([]Objective, int, error) {
	names := q.Objectives
	if len(names) == 0 {
		names = DefaultObjectives()
	}
	objs := make([]Objective, len(names))
	for i, name := range names {
		o, err := Lookup(name)
		if err != nil {
			return nil, 0, err
		}
		for j := 0; j < i; j++ {
			if objs[j].Name == name {
				return nil, 0, fmt.Errorf("opt: duplicate objective %q", name)
			}
		}
		objs[i] = o
	}
	minIdx := 0
	if q.Minimize != "" {
		minIdx = -1
		for i, o := range objs {
			if o.Name == q.Minimize {
				minIdx = i
			}
		}
		if minIdx < 0 {
			return nil, 0, fmt.Errorf("opt: minimize objective %q is not among the query objectives %v", q.Minimize, names)
		}
	}
	if q.SeedEvals < 0 || q.MaxEvals < 0 {
		return nil, 0, fmt.Errorf("opt: negative evaluation budget")
	}
	return objs, minIdx, nil
}

// Space materializes the query's candidate space, resolving the
// objectives and every registry name on the way — the expensive half of
// validation, reusable by the search itself.
func (q *Query) Space() (*Space, error) {
	if _, _, err := q.resolve(); err != nil {
		return nil, err
	}
	return NewSpace(&q.Spec, q.Constraints.MaxGPUs)
}

// Validate resolves the query — objectives, budgets, and the search
// space axes/registry names — without running anything, and returns the
// number of unique candidate configurations. CLIs and CI validate
// example queries this way; the service rejects bad queries before
// creating a job.
func (q *Query) Validate() (int, error) {
	space, err := q.Space()
	if err != nil {
		return 0, err
	}
	return len(space.Cands), nil
}

// Stats describes how the search went.
type Stats struct {
	// SpaceSize is the unique candidate count; GridPoints the cartesian
	// size before deduplication.
	SpaceSize  int `json:"space_size"`
	GridPoints int `json:"grid_points"`
	// PrunedGPUs counts candidates excluded by the MaxGPUs constraint.
	PrunedGPUs int `json:"pruned_max_gpus,omitempty"`
	// Evaluated counts candidates submitted to the runner; FreshEvals
	// of those missed every cache (simulated now), CacheHits were free.
	Evaluated  int `json:"evaluated"`
	FreshEvals int `json:"fresh_evals"`
	CacheHits  int `json:"cache_hits"`
	// Coalesced counts evaluations coalesced onto an identical
	// in-flight simulation by a runner singleflight (a concurrent sweep
	// or advisor job computing the same fingerprint). Excluded from the
	// advice JSON like Elapsed: it depends on what else the process was
	// doing, not on the query.
	Coalesced int `json:"-"`
	// Rounds counts refinement rounds after the seed grid.
	Rounds int `json:"rounds"`
	// Infeasible counts evaluated points that violated a constraint;
	// OOMs and Failures points that did not produce a characterization.
	Infeasible int `json:"infeasible"`
	OOMs       int `json:"ooms"`
	Failures   int `json:"failures"`
	// Elapsed is wall-clock search time. It is deliberately excluded
	// from JSON so equal queries produce byte-identical advice.
	Elapsed time.Duration `json:"-"`
}

// Advice is the advisor's answer.
type Advice struct {
	// Name echoes the query name.
	Name string `json:"name,omitempty"`
	// Frontier is the Pareto frontier over feasible evaluated points.
	Frontier Frontier `json:"frontier"`
	// Recommended is the feasible frontier point minimizing the
	// query's Minimize objective (nil when nothing was feasible).
	Recommended *FrontierPoint `json:"recommended,omitempty"`
	// Note explains an empty or degenerate outcome.
	Note string `json:"note,omitempty"`
	// Stats describes the search.
	Stats Stats `json:"stats"`
}

// Advisor runs queries on a sweep runner. The runner's cache is the
// whole scaling story: hot or overlapping queries re-evaluate nothing.
type Advisor struct {
	// Runner executes candidate batches (its Workers bound per-batch
	// concurrency; its Cache memoizes across queries). A nil Runner
	// uses a default runner with an in-memory cache.
	Runner *sweep.Runner
}

// eval is one evaluated candidate.
type eval struct {
	cand     *Candidate
	pt       sweep.Point
	vec      []float64
	feasible bool
}

// Run executes the query: seed the coarse grid, refine around the
// incumbent frontier with successive halving, and report the Pareto
// frontier plus a recommendation. The search is deterministic — same
// query, same advice bytes — and fail-soft like sweeps: points that
// OOM or error are recorded in Stats and excluded from the frontier.
// The returned error is non-nil only for invalid queries or context
// cancellation.
func (a *Advisor) Run(ctx context.Context, q *Query) (*Advice, error) {
	space, err := q.Space()
	if err != nil {
		return nil, err
	}
	return a.RunSpace(ctx, q, space)
}

// RunSpace is Run over an already-materialized candidate space (from
// q.Space()), so callers that validated the query up front — like the
// service's submit handler — do not fingerprint the whole grid twice.
func (a *Advisor) RunSpace(ctx context.Context, q *Query, space *Space) (*Advice, error) {
	//overlaplint:allow simdeterminism Stats.Elapsed is wall-clock diagnostics only, excluded from Advice determinism and fingerprints
	start := time.Now()
	objs, minIdx, err := q.resolve()
	if err != nil {
		return nil, err
	}
	runner := a.Runner
	if runner == nil {
		runner = &sweep.Runner{Cache: sweep.NewMemCache()}
	}

	n := len(space.Cands)
	seedN := q.SeedEvals
	if seedN == 0 {
		seedN = DefaultSeedEvals
	}
	if seedN > n {
		seedN = n
	}
	maxEvals := q.MaxEvals
	if maxEvals == 0 || maxEvals > n {
		maxEvals = n
	}
	if maxEvals < seedN {
		seedN = maxEvals
	}

	st := &searchState{
		space:  space,
		runner: runner,
		objs:   objs,
		cons:   q.Constraints,
		evals:  make(map[int]*eval),
	}
	st.stats.SpaceSize = n
	st.stats.GridPoints = space.GridPoints
	st.stats.PrunedGPUs = space.PrunedGPUs

	// Round 0: the coarse seeded grid.
	if err := st.evalBatch(ctx, space.coarseGrid(seedN)); err != nil {
		return nil, err
	}

	// Refinement: evaluate unexplored axis neighbors of the incumbent
	// frontier. The per-round admission budget starts at the seed
	// budget, halves after every round that fails to improve the
	// frontier (successive halving), and resets when one does. The
	// neighborhood radius widens the same way — doubling on stagnation,
	// snapping back to one on improvement — so frontiers separated from
	// the incumbent by exact-tie plateaus or shallow dominated valleys
	// are still reached. The search stops when the budget is exhausted,
	// the widest neighborhood holds nothing new, or MaxEvals is hit.
	//
	// While the frontier is still empty (every evaluation so far
	// failed, OOMed or violated a constraint) there is nothing to halve
	// around: expansion anchors on everything evaluated and the budget
	// does not decay, so a "no feasible configuration" verdict is
	// backed by exhausting the space or MaxEvals, never by a fast
	// halving schedule that quit next to an unexplored feasible region.
	budget := seedN
	radius := 1
	maxRadius := space.maxDim()
	front := st.frontIDs()
	for budget >= 1 && st.stats.Evaluated < maxEvals {
		anchors := front
		if len(anchors) == 0 {
			anchors = st.order
		}
		nbrs := st.unexploredNeighbors(anchors, radius)
		if len(nbrs) == 0 {
			if radius >= maxRadius {
				break
			}
			radius *= 2 // widen without spending budget
			continue
		}
		if take := maxEvals - st.stats.Evaluated; len(nbrs) > take {
			nbrs = nbrs[:take]
		}
		if len(nbrs) > budget {
			nbrs = nbrs[:budget]
		}
		if err := st.evalBatch(ctx, nbrs); err != nil {
			return nil, err
		}
		st.stats.Rounds++
		next := st.frontIDs()
		switch {
		case len(next) == 0:
			// Still probing for a first feasible point; keep the budget.
		case equalIDs(front, next):
			budget /= 2
			radius *= 2
		default:
			budget = seedN
			radius = 1
		}
		front = next
	}

	adv := st.advice(q, objs, minIdx, front)
	//overlaplint:allow simdeterminism Stats.Elapsed is wall-clock diagnostics only, excluded from Advice determinism and fingerprints
	adv.Stats.Elapsed = time.Since(start)
	noteQuery(adv.Stats)
	return adv, nil
}

// searchState accumulates evaluations over rounds.
type searchState struct {
	space  *Space
	runner *sweep.Runner
	objs   []Objective
	cons   Constraints
	evals  map[int]*eval
	order  []int // evaluated candidate IDs in evaluation order
	stats  Stats
}

// evalBatch runs the (unevaluated, deduplicated) candidate IDs through
// the sweep runner and records objective vectors and feasibility.
func (st *searchState) evalBatch(ctx context.Context, ids []int) error {
	fresh := ids[:0:0]
	for _, id := range ids {
		if _, done := st.evals[id]; !done {
			fresh = append(fresh, id)
		}
	}
	if len(fresh) == 0 {
		return nil
	}
	cfgs := make([]core.Config, len(fresh))
	for i, id := range fresh {
		cfgs[i] = st.space.Cands[id].Config
	}
	res, err := st.runner.Run(ctx, cfgs)
	if err != nil {
		return err
	}
	st.stats.Evaluated += len(fresh)
	st.stats.FreshEvals += res.CacheMisses
	st.stats.CacheHits += res.CacheHits
	st.stats.Coalesced += res.Coalesced
	st.stats.OOMs += res.OOMs
	st.stats.Failures += res.Failures
	for i, id := range fresh {
		pt := res.Points[i]
		ev := &eval{cand: &st.space.Cands[id], pt: pt}
		if pt.Res != nil {
			ev.vec = make([]float64, len(st.objs))
			usable := true
			for j, o := range st.objs {
				v, ok := o.Extract(&pt)
				if !ok {
					usable = false
					break
				}
				ev.vec[j] = v
			}
			if usable {
				ev.feasible = st.cons.feasible(&pt)
				if !ev.feasible {
					st.stats.Infeasible++
				}
			} else {
				ev.vec = nil
				st.stats.Failures++
			}
		}
		st.evals[id] = ev
		st.order = append(st.order, id)
	}
	return nil
}

// frontIDs returns the candidate IDs of the incumbent Pareto frontier
// over the feasible evaluations, in Front's deterministic order.
func (st *searchState) frontIDs() []int {
	var ids []int
	var vecs [][]float64
	var keys []string
	for _, id := range st.order {
		if ev := st.evals[id]; ev.feasible {
			ids = append(ids, id)
			vecs = append(vecs, ev.vec)
			keys = append(keys, ev.cand.Key)
		}
	}
	// Evaluation order varies with cache state, but Front sorts by
	// (vector, key), so the frontier does not.
	idx := Front(vecs, keys)
	out := make([]int, len(idx))
	for i, j := range idx {
		out[i] = ids[j]
	}
	return out
}

// unexploredNeighbors returns the unevaluated axis neighbors (within
// radius) of the anchor candidates, deduplicated, in ascending
// candidate-ID order.
func (st *searchState) unexploredNeighbors(anchors []int, radius int) []int {
	seen := make(map[int]bool)
	var out []int
	for _, id := range anchors {
		st.space.neighbors(&st.space.Cands[id], radius, func(nb int) {
			if _, done := st.evals[nb]; !done && !seen[nb] {
				seen[nb] = true
				out = append(out, nb)
			}
		})
	}
	sort.Ints(out)
	return out
}

// firstFailure returns the failure (or OOM) of the lowest-ID evaluated
// candidate, for diagnosing empty frontiers. Candidate IDs make the
// pick deterministic regardless of worker completion order.
func (st *searchState) firstFailure() string {
	ids := make([]int, 0, len(st.evals))
	for id := range st.evals {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		ev := st.evals[id]
		switch {
		case ev.pt.OOM != nil:
			return fmt.Sprintf("%s: %v", ev.cand.Config.Label(), ev.pt.OOM)
		case ev.pt.Err != nil:
			return fmt.Sprintf("%s: %v", ev.cand.Config.Label(), ev.pt.Err)
		case ev.pt.ErrString != "":
			return fmt.Sprintf("%s: %s", ev.cand.Config.Label(), ev.pt.ErrString)
		}
	}
	return ""
}

// equalIDs reports whether two frontier ID lists are identical.
func equalIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// advice assembles the final report.
func (st *searchState) advice(q *Query, objs []Objective, minIdx int, front []int) *Advice {
	adv := &Advice{Name: q.Name, Stats: st.stats}
	adv.Frontier.Objectives = make([]ObjectiveInfo, len(objs))
	for i, o := range objs {
		adv.Frontier.Objectives[i] = ObjectiveInfo{Name: o.Name, Unit: o.Unit}
	}
	for _, id := range front {
		ev := st.evals[id]
		row := sweep.Row(&ev.pt)
		// Normalize cache provenance out of the advice bytes.
		if row.Status == "hit" {
			row.Status = "ok"
		}
		adv.Frontier.Points = append(adv.Frontier.Points, FrontierPoint{
			Key:        ev.cand.Key,
			Label:      ev.cand.Config.Label(),
			Experiment: ev.cand.Exp,
			Values:     append([]float64(nil), ev.vec...),
			Row:        row,
		})
	}
	if len(adv.Frontier.Points) == 0 {
		adv.Note = "no feasible configuration: every evaluated point failed, OOMed or violated a constraint"
		if example := st.firstFailure(); example != "" {
			adv.Note += "; e.g. " + example
		}
		return adv
	}
	// The recommendation minimizes the chosen objective over the
	// (feasible, by construction) frontier; ties resolve by the full
	// vector, then fingerprint — the frontier's own order.
	rec := 0
	for i := 1; i < len(adv.Frontier.Points); i++ {
		if adv.Frontier.Points[i].Values[minIdx] < adv.Frontier.Points[rec].Values[minIdx] {
			rec = i
		}
	}
	adv.Recommended = &adv.Frontier.Points[rec]
	return adv
}

// RecommendedIndex returns the index of the recommended point within
// the frontier, or -1.
func (a *Advice) RecommendedIndex() int {
	if a.Recommended == nil {
		return -1
	}
	for i := range a.Frontier.Points {
		if a.Frontier.Points[i].Key == a.Recommended.Key {
			return i
		}
	}
	return -1
}
