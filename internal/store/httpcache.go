package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"overlapsim/internal/core"
)

// CachePathPrefix is the URL prefix of the peer cache protocol overlapd
// serves: GET returns the cached result for a fingerprint (200) or a
// miss (404); PUT stores one. Entries are immutable, so the protocol
// needs no conditional requests, no invalidation and no versioning.
const CachePathPrefix = "/v1/cache/"

// DefaultPeerTimeout bounds one peer cache request. A peer that cannot
// answer in this budget is slower than simulating small points locally,
// so the lookup degrades to a miss.
const DefaultPeerTimeout = 10 * time.Second

// HTTPCache is a sweep.Cache backend backed by peer overlapd replicas.
// Each fingerprint is owned by exactly one peer, chosen by rendezvous
// hashing over the configured peer set, so replicas form a
// share-nothing mesh sharded by content address: every replica fronts
// the mesh with its local tiers and asks the owner for the rest.
//
// All failures — unreachable peer, timeout, corrupt body — degrade to a
// cache miss; the mesh can only ever cost recomputation, never
// correctness.
type HTTPCache struct {
	peers  []string // normalized base URLs, no trailing slash
	client *http.Client
}

// NewHTTPCache builds a peer backend over the given base URLs
// (e.g. "http://replica-2:8080"). client may be nil for a default with
// DefaultPeerTimeout.
func NewHTTPCache(peers []string, client *http.Client) (*HTTPCache, error) {
	if len(peers) == 0 {
		return nil, fmt.Errorf("store: no cache peers given")
	}
	c := &HTTPCache{client: client}
	if c.client == nil {
		c.client = &http.Client{Timeout: DefaultPeerTimeout}
	}
	for _, p := range peers {
		u, err := url.Parse(strings.TrimRight(p, "/"))
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("store: invalid cache peer %q (want e.g. http://host:port)", p)
		}
		c.peers = append(c.peers, u.String())
	}
	return c, nil
}

// Peers returns the configured peer base URLs.
func (c *HTTPCache) Peers() []string {
	return append([]string(nil), c.peers...)
}

// owner picks the peer owning a fingerprint by rendezvous (highest
// random weight) hashing: every replica computes the same owner from
// the same peer set, and removing a peer only remaps the keys it owned.
func (c *HTTPCache) owner(key string) string {
	best, bestScore := c.peers[0], uint64(0)
	for i, p := range c.peers {
		h := fnv.New64a()
		io.WriteString(h, p)
		io.WriteString(h, "\x00")
		io.WriteString(h, key)
		if s := h.Sum64(); i == 0 || s > bestScore {
			best, bestScore = p, s
		}
	}
	return best
}

// Get implements sweep.Cache by asking the owning peer.
func (c *HTTPCache) Get(key string) (*core.Result, bool) {
	if !ValidFingerprint(key) {
		return nil, false
	}
	resp, err := c.client.Get(c.owner(key) + CachePathPrefix + key)
	if err != nil {
		notePeer(peerOpGet, peerOutcomeError)
		return nil, false
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		notePeer(peerOpGet, peerOutcomeMiss)
		return nil, false
	}
	var res core.Result
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxEntryBytes)).Decode(&res); err != nil {
		notePeer(peerOpGet, peerOutcomeError)
		return nil, false
	}
	notePeer(peerOpGet, peerOutcomeHit)
	return &res, true
}

// Put implements sweep.Cache by storing the entry on the owning peer.
func (c *HTTPCache) Put(key string, res *core.Result) error {
	if !ValidFingerprint(key) {
		return fmt.Errorf("store: invalid fingerprint %q", key)
	}
	b, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("store: encoding cache entry: %w", err)
	}
	req, err := http.NewRequest(http.MethodPut, c.owner(key)+CachePathPrefix+key, bytes.NewReader(b))
	if err != nil {
		return fmt.Errorf("store: peer put: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		notePeer(peerOpPut, peerOutcomeError)
		return fmt.Errorf("store: peer put: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		notePeer(peerOpPut, peerOutcomeError)
		return fmt.Errorf("store: peer put: %s from %s", resp.Status, c.owner(key))
	}
	notePeer(peerOpPut, peerOutcomeOK)
	return nil
}

// Name labels the backend on cache metrics.
func (c *HTTPCache) Name() string { return "peer" }

// maxEntryBytes bounds one decoded cache entry; real results are a few
// KB, so this only guards against a confused or hostile peer.
const maxEntryBytes = 64 << 20

// ValidFingerprint accepts the canonical content addresses the sweep
// layer mints: non-empty lowercase hex. Anything else is refused before
// it can become a URL path segment; servers refuse it before it can
// name a cache entry.
func ValidFingerprint(key string) bool {
	if key == "" || len(key) > 128 {
		return false
	}
	for _, r := range key {
		switch {
		case r >= '0' && r <= '9':
		case r >= 'a' && r <= 'f':
		default:
			return false
		}
	}
	return true
}
