// Command powertrace regenerates the Fig. 7 experiment: a fine-grained
// (1 ms) per-GPU power trace of LLaMA-2 13B FSDP training on a 4×MI250
// node, normalized to TDP and iteration time, written as CSV to stdout or
// a file. The overlap windows appear as the elevated-power regions the
// paper highlights.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"overlapsim/internal/core"
	"overlapsim/internal/exec"
	"overlapsim/internal/hw"
	"overlapsim/internal/model"
	"overlapsim/internal/power"
	"overlapsim/internal/precision"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("powertrace: ")
	var (
		out      = flag.String("o", "", "output CSV path (default stdout)")
		gpuIdx   = flag.Int("gpu-index", 0, "which GPU's trace to emit")
		interval = flag.Float64("interval-ms", 1, "sampling interval in milliseconds")
	)
	flag.Parse()

	cfg := core.Config{
		System:        hw.SystemMI250x4(),
		Model:         model.LLaMA2_13B(),
		Parallelism:   "fsdp",
		Batch:         8,
		Format:        precision.FP16,
		MatrixUnits:   true,
		TraceInterval: *interval / 1e3,
	}
	res, err := core.RunMode(context.Background(), cfg, exec.Overlapped)
	if err != nil {
		log.Fatal(err)
	}
	if *gpuIdx < 0 || *gpuIdx >= len(res.Traces) {
		log.Fatalf("gpu index %d out of range [0,%d)", *gpuIdx, len(res.Traces))
	}
	trace := res.Traces[*gpuIdx]
	iter := res.Mean.E2E

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	writeTrace(w, trace, cfg.System.GPU.TDPW, iter)
	if *out != "" {
		log.Printf("wrote %d samples to %s (iteration %.1f ms, TDP %gW)",
			len(trace), *out, iter*1e3, cfg.System.GPU.TDPW)
	}
}

func writeTrace(w *os.File, trace []power.Sample, tdp, iter float64) {
	fmt.Fprintln(w, "t_s,t_norm_iter,watts,tdp_frac")
	for _, s := range trace {
		norm := 0.0
		if iter > 0 {
			norm = s.T / iter
		}
		fmt.Fprintf(w, "%.6f,%.4f,%.1f,%.4f\n", s.T, norm, s.Watts, s.Watts/tdp)
	}
}
