// Package ctxflow enforces the repository's cancellation contract:
// context flows down from main. Library packages (anything that is not
// package main) must not mint fresh contexts with context.Background or
// context.TODO — a simulation or sweep that detaches from its caller's
// context cannot be cancelled by the service, the CLI's signal handler,
// or a test timeout. Exported entrypoints that accept a context must
// actually thread it: a dropped ctx parameter advertises cancellation
// the implementation silently ignores.
package ctxflow

import (
	"go/ast"
	"go/types"

	"overlapsim/internal/analysis/driver"
)

// Analyzer checks every non-main package.
var Analyzer = New()

// New returns the analyzer.
func New() *driver.Analyzer {
	return &driver.Analyzer{
		Name: "ctxflow",
		Doc: "below cmd/ (package main), forbid context.Background/context.TODO " +
			"and flag exported functions that accept a context.Context but never " +
			"use it: cancellation must flow from the caller",
		Run: func(pass *driver.Pass) error {
			if pass.Pkg.Name() == "main" {
				return nil // binaries are where fresh root contexts belong
			}
			run(pass)
			return nil
		},
	}
}

func run(pass *driver.Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkFreshContext(pass, n)
			case *ast.FuncDecl:
				checkDroppedContext(pass, n)
			}
			return true
		})
	}
}

func checkFreshContext(pass *driver.Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return
	}
	if name := fn.Name(); name == "Background" || name == "TODO" {
		pass.Reportf(call.Pos(), "context.%s below cmd/: accept a context.Context from the caller so cancellation reaches this code", name)
	}
}

// isContext reports whether t is context.Context.
func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func checkDroppedContext(pass *driver.Pass, fd *ast.FuncDecl) {
	if !fd.Name.IsExported() || fd.Body == nil || fd.Type.Params == nil {
		return
	}
	for _, field := range fd.Type.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok || !isContext(tv.Type) {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				pass.Reportf(name.Pos(), "exported %s discards its context parameter: thread it through (or drop the parameter)", fd.Name.Name)
				continue
			}
			obj := pass.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			used := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					used = true
				}
				return !used
			})
			if !used {
				pass.Reportf(name.Pos(), "exported %s never uses its context parameter %q: thread it through (or drop the parameter)", fd.Name.Name, name.Name)
			}
		}
	}
}
