package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"overlapsim/internal/pipeline"
)

// fingerprintVersion is mixed into every fingerprint so that changes to
// the canonical encoding (or to the semantics behind it) invalidate old
// content-addressed cache entries instead of silently aliasing them.
// Bump it whenever Canonicalize, the executors' default resolution, or
// the simulation semantics behind a Config change.
const fingerprintVersion = "overlapsim-config-v1"

// Canonicalize returns the config with every implicit default made
// explicit and every inert knob cleared, so that two configs that
// describe the same experiment encode (and hash) identically:
// Iterations/Warmup/GradAccumSteps/MicroBatch defaults are replaced by
// the values the executors actually use, knobs the selected strategy
// ignores are zeroed, and the jitter seed is cleared when jitter is
// disabled (a seed without jitter changes nothing).
func (c Config) Canonicalize() Config {
	if c.Iterations <= 0 {
		c.Iterations = 2
	}
	if c.Warmup == 0 {
		c.Warmup = 1
	} else if c.Warmup < 0 {
		c.Warmup = 0 // the executors treat any negative as "no warmup"
	}
	if c.GradAccumSteps <= 0 {
		c.GradAccumSteps = 1
	}
	if c.Parallelism != FSDP {
		c.GradAccumSteps = 1 // only the FSDP executor reads it
	}
	if c.Parallelism == Pipeline {
		if c.MicroBatch <= 0 {
			c.MicroBatch = pipeline.DefaultMicroBatch(c.Batch)
		}
	} else {
		c.MicroBatch = 0 // only the pipeline executor reads it
	}
	if c.JitterSigma == 0 {
		c.Seed = 0
	}
	return c
}

// CanonicalJSON returns the deterministic serialization Fingerprint
// hashes: the canonicalized config marshaled as JSON. The encoding
// covers the full hardware spec (not just its name), so a config built
// against a modified GPUSpec hashes differently from the catalog entry.
func (c Config) CanonicalJSON() ([]byte, error) {
	// encoding/json sorts map keys, so the GPUSpec TFLOPS maps encode
	// deterministically.
	return json.Marshal(c.Canonicalize())
}

// Fingerprint returns the content address of the experiment: a SHA-256
// over the versioned canonical encoding, in hex. Equal configs (up to
// defaulting) share a fingerprint; any semantic field change produces a
// different one.
func (c Config) Fingerprint() (string, error) {
	b, err := c.CanonicalJSON()
	if err != nil {
		return "", fmt.Errorf("core: fingerprint %s: %w", c.Label(), err)
	}
	h := sha256.New()
	h.Write([]byte(fingerprintVersion))
	h.Write([]byte{0})
	h.Write(b)
	return hex.EncodeToString(h.Sum(nil)), nil
}
