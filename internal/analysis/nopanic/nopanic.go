// Package nopanic forbids panic, log.Fatal* and os.Exit in library
// packages (internal/*): a simulator embedded in a long-running service
// must surface invalid configurations as errors the caller can handle,
// not tear the process down. It continues the exec.ErrNotRun
// error-or-valid conversion: every reachable failure returns an error.
//
// Init-time registration panics (duplicate strategy names, malformed
// built-in hardware) and true invariant checks keep their panics behind
// explicit //overlaplint:allow directives, so each remaining call site
// documents why it cannot happen on a reachable path.
package nopanic

import (
	"go/ast"
	"go/types"
	"strings"

	"overlapsim/internal/analysis/driver"
)

// Analyzer checks every internal/* library package.
var Analyzer = New(nil)

// New returns the analyzer. With a nil or empty packages list it
// applies to any package whose import path has an "internal" element;
// otherwise only to the listed import paths.
func New(packages []string) *driver.Analyzer {
	set := make(map[string]bool, len(packages))
	for _, p := range packages {
		set[p] = true
	}
	return &driver.Analyzer{
		Name: "nopanic",
		Doc: "forbid panic, log.Fatal* and os.Exit in internal/* library packages; " +
			"reachable failures must return errors (init-time registration panics " +
			"carry //overlaplint:allow nopanic directives)",
		Run: func(pass *driver.Pass) error {
			if len(set) > 0 {
				if !set[pass.Pkg.Path()] {
					return nil
				}
			} else if !isInternal(pass.Pkg.Path()) {
				return nil
			}
			run(pass)
			return nil
		},
	}
}

func isInternal(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		if seg == "internal" {
			return true
		}
	}
	return false
}

func run(pass *driver.Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				if b, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); ok && b.Name() == "panic" {
					pass.Reportf(call.Pos(), "panic in a library package: return an error (or document the invariant with an allow directive)")
				}
			case *ast.SelectorExpr:
				fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil {
					return true
				}
				switch {
				case fn.Pkg().Path() == "log" && strings.HasPrefix(fn.Name(), "Fatal"):
					pass.Reportf(call.Pos(), "log.%s in a library package exits the process: return an error instead", fn.Name())
				case fn.Pkg().Path() == "os" && fn.Name() == "Exit":
					pass.Reportf(call.Pos(), "os.Exit in a library package: only main may decide to exit")
				}
			}
			return true
		})
	}
}
