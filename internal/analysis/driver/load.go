package driver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// A Package is one type-checked target package.
type Package struct {
	// Path is the package's import path.
	Path string
	// Files is the parsed syntax of the package's non-test Go files.
	Files []*ast.File
	// Types and Info are the type-checker's output.
	Types *types.Package
	Info  *types.Info
}

// A Program is a loaded set of target packages sharing one FileSet.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Export     string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load enumerates the packages matching patterns in dir via
// `go list -export -deps`, parses the matched (non-dependency-only)
// packages from source and type-checks them against their dependencies'
// compiler export data. Test files are not loaded: the determinism and
// error contracts overlaplint enforces bind library code, and corpora
// under testdata stay out of ordinary builds the same way.
func Load(dir string, patterns []string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	var targets []*listPackage
	exports := map[string]string{}
	dec := json.NewDecoder(&stdout)
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("package %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly && lp.Name != "" && len(lp.GoFiles) > 0 {
			targets = append(targets, lp)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	// One shared gc importer resolves every dependency from its export
	// data (and caches it across target packages); per-package wrappers
	// apply the package's ImportMap (vendored stdlib remappings) first.
	base := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	prog := &Program{Fset: fset}
	for _, lp := range targets {
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Implicits:  map[ast.Node]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		conf := types.Config{
			Importer: remapImporter{base: base, importMap: lp.ImportMap},
			Sizes:    types.SizesFor("gc", runtime.GOARCH),
		}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, err)
		}
		prog.Packages = append(prog.Packages, &Package{
			Path:  lp.ImportPath,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	return prog, nil
}

// remapImporter resolves one package's source-level import paths
// through its go list ImportMap before delegating to the shared
// export-data importer.
type remapImporter struct {
	base      types.Importer
	importMap map[string]string
}

func (r remapImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := r.importMap[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return r.base.Import(path)
}
