package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"overlapsim/internal/calib"
	"overlapsim/internal/collective"
	"overlapsim/internal/core"
	"overlapsim/internal/hw"
	"overlapsim/internal/model"
	"overlapsim/internal/precision"
	"overlapsim/internal/topo"
)

// calibProfile builds a small valid profile by measuring the stock
// H100x8 through the simulator itself — the cheapest source of
// internally consistent matmul, collective and step numbers.
func calibProfile(t *testing.T) *calib.Profile {
	t.Helper()
	sys, err := hw.SystemByName("H100x8")
	if err != nil {
		t.Fatal(err)
	}
	g := sys.GPU

	var mats []calib.MatmulPoint
	eff := precision.EffectiveGEMMFormat(precision.FP16, true)
	path := precision.PathFor(eff, true)
	for _, k := range []int{1024, 4096, 16384} {
		frac := g.GEMMEff(float64(k), path, eff)
		mats = append(mats, calib.MatmulPoint{
			M: 8192, N: 8192, K: k, Dtype: "fp16", MatrixUnits: true,
			TFLOPs: frac * g.PeakFLOPS(path, eff) / 1e12,
		})
	}

	fabric := topo.ForSystem(sys)
	var colls []calib.CollectivePoint
	for _, mb := range []float64{1, 16, 256} {
		d := collective.Desc{Name: collective.AllReduce.String(), Op: collective.AllReduce, Bytes: mb * (1 << 20), N: sys.N}
		secs := collective.Time(d, fabric)
		colls = append(colls, calib.CollectivePoint{
			Op: collective.AllReduce.String(), Bytes: d.Bytes, Ranks: sys.N,
			BusGBs: collective.BusBW(d, secs) / 1e9,
		})
	}

	par, err := core.ParseParallelism("ddp")
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{
		System: sys, Parallelism: par,
		Batch: 8, Format: precision.FP16, MatrixUnits: true,
	}
	cfg.Model, err = model.ByName("GPT-3 XL")
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ovl := res.Overlapped

	p := &calib.Profile{
		Version: calib.SchemaVersion,
		Name:    "service test profile",
		GPU:     "H100", System: "H100x8",
		Power:       &calib.PowerProfile{IdleW: g.Power.IdleW},
		Matmuls:     mats,
		Collectives: colls,
		Steps: []calib.StepPoint{{
			Model: "GPT-3 XL", Parallelism: "ddp", Batch: 8,
			Format: "fp16", MatrixUnits: true,
			StepMS:     ovl.Mean.E2E * 1e3,
			AvgPowerW:  ovl.AvgTDP * g.TDPW,
			PeakPowerW: ovl.PeakTDP * g.TDPW,
		}},
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("test profile invalid: %v", err)
	}
	return p
}

func TestCalibrateEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	raw, err := json.Marshal(calibProfile(t))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/calibrate", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	body := decode[calibrateBody](t, resp, http.StatusOK)

	if len(body.Overlay) == 0 {
		t.Fatal("calibrate returned an empty overlay")
	}
	reg := hw.NewRegistry()
	if err := reg.Load(bytes.NewReader(body.Overlay)); err != nil {
		t.Fatalf("returned overlay does not load: %v", err)
	}
	if _, err := reg.System("H100x8" + calib.DefaultSuffix); err != nil {
		t.Errorf("overlay missing calibrated system: %v", err)
	}

	if body.Report == nil {
		t.Fatal("profile with step measurements returned no validation report")
	}
	if body.Report.CalibratedSystem != "H100x8"+calib.DefaultSuffix {
		t.Errorf("report calibrated system %q", body.Report.CalibratedSystem)
	}
	if len(body.Report.Scenarios) != 1 {
		t.Fatalf("report has %d scenarios, want 1", len(body.Report.Scenarios))
	}
}

func TestCalibrateOverrideQuery(t *testing.T) {
	_, ts := newTestServer(t)
	p := calibProfile(t)
	p.Steps = nil // overlay only — no validation replay
	raw, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/calibrate?override=true", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	body := decode[calibrateBody](t, resp, http.StatusOK)
	if body.Report != nil {
		t.Error("profile without steps still produced a report")
	}
	var file struct {
		Systems []struct {
			Name     string `json:"name"`
			Override bool   `json:"override"`
		} `json:"systems"`
	}
	if err := json.Unmarshal(body.Overlay, &file); err != nil {
		t.Fatal(err)
	}
	if len(file.Systems) != 1 || file.Systems[0].Name != "H100x8" || !file.Systems[0].Override {
		t.Errorf("override overlay systems: %+v", file.Systems)
	}
}

func TestCalibrateRejectsBadProfile(t *testing.T) {
	_, ts := newTestServer(t)
	for _, body := range []string{
		`not json`,
		`{"version": 99, "name": "x", "gpu": "H100", "system": "H100x8"}`,
		`{"unknown_field": true}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/calibrate", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		decode[errorBody](t, resp, http.StatusBadRequest)
	}
}

func TestCatalogAdvertisesCalibration(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/catalog")
	if err != nil {
		t.Fatal(err)
	}
	body := decode[catalogBody](t, resp, http.StatusOK)
	info := body.Calibration
	if info.ProfileVersion != calib.SchemaVersion || info.Endpoint != "/v1/calibrate" || info.DefaultSuffix != calib.DefaultSuffix {
		t.Errorf("catalog calibration metadata: %+v", info)
	}
}
