// Package fsdp implements the Fully Sharded Data Parallel (ZeRO-3)
// executor of Fig. 3(a): parameters, gradients and optimizer state are
// sharded across all GPUs; each layer's parameters are all-gathered before
// use in both the forward and backward pass, and gradients are
// reduce-scattered as soon as a layer's backward completes. In overlapped
// mode the gathers are prefetched on a dedicated communication stream
// (bounded lookahead, as PyTorch FSDP and DeepSpeed do); in sequential mode
// every collective is serialized against computation.
//
// The package registers itself with the strategy registry under "fsdp".
package fsdp

import (
	"fmt"

	"overlapsim/internal/collective"
	"overlapsim/internal/exec"
	"overlapsim/internal/gpu"
	"overlapsim/internal/kernels"
	"overlapsim/internal/model"
	"overlapsim/internal/sim"
	"overlapsim/internal/strategy"
)

// Strategy implements strategy.Strategy for FSDP.
type Strategy struct{}

func init() { strategy.Register(Strategy{}) }

// Name implements strategy.Strategy.
func (Strategy) Name() string { return "fsdp" }

// Describe implements strategy.Strategy.
func (Strategy) Describe() strategy.Info {
	return strategy.Info{
		Name:      "fsdp",
		Display:   "FSDP",
		Summary:   "fully sharded data parallelism (ZeRO-3): per-layer parameter all-gathers with bounded prefetch, gradient reduce-scatters",
		Knobs:     []string{"grad_accum_steps"},
		GradAccum: true,
	}
}

// Build implements strategy.Strategy.
func (Strategy) Build(cl *gpu.Cluster, p strategy.Params) (*exec.Plan, error) {
	return Build(cl, p)
}

func withDefaults(p strategy.Params) strategy.Params {
	p = p.WithCommonDefaults()
	if p.PrefetchDepth <= 0 {
		p.PrefetchDepth = 2
	}
	if p.GradAccumSteps <= 0 {
		p.GradAccumSteps = 1
	}
	return p
}

// Build constructs the full multi-iteration task graph on a fresh engine
// bound to the cluster. It returns a model.ErrOOM if the configuration
// does not fit in device memory (the paper's A100 constraint).
func Build(cl *gpu.Cluster, p strategy.Params) (*exec.Plan, error) {
	p = withDefaults(p)
	if err := p.Model.Validate(); err != nil {
		return nil, err
	}
	g := cl.GPU()
	n := cl.N()
	if p.Batch%n != 0 {
		return nil, fmt.Errorf("fsdp: global batch %d not divisible by %d GPUs", p.Batch, n)
	}
	local := p.Batch / n
	if !p.SkipMemoryCheck {
		est := p.Model.FootprintFSDP(local, n, p.Format, p.Checkpoint)
		if est.Total() > g.MemBytes() {
			return nil, &model.ErrOOM{
				Model:     fmt.Sprintf("%s (FSDP bs=%d %s)", p.Model.Name, p.Batch, p.Format),
				GPU:       g.Name,
				NeedBytes: est.Total(),
				HaveBytes: g.MemBytes(),
			}
		}
	}

	eng := sim.NewEngine(cl)
	eng.AddObserver(cl)

	total := p.Warmup + p.Iterations
	L := p.Model.Layers
	accum := p.GradAccumSteps
	// Per iteration: accum × (embed gather+compute, L forward and L
	// backward layers of one gather + n computes, head fwd/bwd), plus the
	// final step's L+1 reduce-scatters and the optimizer — sized so slab
	// allocation covers the whole plan in one reservation.
	estimate := total * (accum*(2*L*(n+1)+3*n+2) + L + 2 + n)

	b := &builder{cfg: p, eng: eng, cl: cl, n: n, local: local,
		batch: exec.NewBatch(eng, estimate)}
	b.makeStreams()
	plan := &exec.Plan{Engine: eng, Cluster: cl, Warmup: p.Warmup, Symmetry: exec.SymmetryRanks}
	for it := 0; it < total; it++ {
		plan.Iterations = append(plan.Iterations, b.buildIteration(it))
	}
	return plan, nil
}

// builder holds the incremental graph-construction state.
type builder struct {
	cfg   strategy.Params
	eng   *sim.Engine
	cl    *gpu.Cluster
	batch *exec.Batch
	n     int
	local int // per-GPU batch

	computeS []*sim.Stream
	agS      *sim.Stream // all-gather stream (parameter prefetch)
	rsS      *sim.Stream // reduce-scatter stream (gradient sync)
	chain    *exec.Chain
	prep     *collective.Preparer

	// prevIterEnd holds the last task per device of the previous
	// iteration (the optimizer step) used as the iteration barrier.
	prevIterEnd []*sim.Task
}

func (b *builder) sequential() bool { return b.cfg.Mode == exec.Sequential }

func (b *builder) makeStreams() {
	for d := 0; d < b.n; d++ {
		b.computeS = append(b.computeS, b.eng.NewStream(fmt.Sprintf("compute%d", d), d))
	}
	if b.sequential() {
		b.chain = exec.NewChain()
	} else {
		// Two communicator streams, as in PyTorch FSDP/DeepSpeed: one
		// serializes the parameter all-gathers (prefetch), the other the
		// gradient reduce-scatters, so backward gathers are not stalled
		// behind pending reductions.
		b.agS = b.eng.NewStream("comm.allgather", 0)
		b.rsS = b.eng.NewStream("comm.reducescatter", 0)
	}
	b.prevIterEnd = make([]*sim.Task, b.n)
}

func (b *builder) allDevices() []int {
	devs := make([]int, b.n)
	for i := range devs {
		devs[i] = i
	}
	return devs
}

// newCollective creates a collective task across all ranks, with the
// fabric-dependent rate constants prepared at construction time.
func (b *builder) newCollective(name string, op collective.Op, bytes float64) *sim.Task {
	cd := collective.Desc{Name: name, Op: op, Bytes: bytes, N: b.n}
	if err := cd.Validate(); err != nil {
		//overlaplint:allow nopanic builder invariant: the descriptor is derived from an already-validated config, so Validate failing here is a bug
		panic(err)
	}
	if b.prep == nil {
		b.prep = collective.NewPreparer(b.cl.Fabric())
	}
	cd, work := b.prep.Prepare(cd)
	var t *sim.Task
	if b.sequential() {
		s := b.eng.NewStream("seqcomm."+name, 0)
		t = b.batch.Task(name, sim.KindComm, work, cd, s)
		b.chain.Order(t, b.allDevices()...)
	} else {
		s := b.agS
		if op == collective.ReduceScatter {
			s = b.rsS
		}
		t = b.batch.Task(name, sim.KindComm, work, cd, s)
	}
	return t
}

// newCompute creates one compute task per device from the pre-boxed
// fused kernel op (identical work on every rank under data parallelism).
func (b *builder) newCompute(name string, op exec.Op) []*sim.Task {
	return b.batch.Compute(name, op, b.computeS, b.chain)
}

func after(ts []*sim.Task, deps ...*sim.Task) {
	for _, t := range ts {
		t.After(deps...)
	}
}

// buildIteration appends one training iteration to the graph and returns
// its tasks. With gradient accumulation the forward/backward body repeats
// per micro-step; gradient reduce-scatters happen only on the final step
// (DDP-style no_sync), which is what dilutes communication relative to
// compute.
func (b *builder) buildIteration(it int) []*sim.Task {
	m := b.cfg.Model
	L := m.Layers
	e := float64(b.cfg.Format.Bytes())
	layerBytes := m.ParamsPerLayer() * e
	embedBytes := m.EmbedParams() * e
	pref := b.cfg.PrefetchDepth
	accum := b.cfg.GradAccumSteps

	start := len(b.eng.Tasks())

	fwdDesc := kernels.Fuse("fwd.layer", m.ForwardLayerKernels(b.local, b.cfg.Format, b.cfg.MatrixUnits)...)
	bwdDesc := kernels.Fuse("bwd.layer", m.BackwardLayerKernels(b.local, b.cfg.Format, b.cfg.MatrixUnits, b.cfg.Checkpoint)...)
	headFwd := kernels.Fuse("fwd.head", m.HeadKernels(b.local, b.cfg.Format, b.cfg.MatrixUnits, true)...)
	headBwd := kernels.Fuse("bwd.head", m.HeadKernels(b.local, b.cfg.Format, b.cfg.MatrixUnits, false)...)
	fwdOp, bwdOp := exec.KernelOp(fwdDesc), exec.KernelOp(bwdDesc)
	embedOp, logitsOp := exec.KernelOp(headFwdEmbedOnly(headFwd)), exec.KernelOp(headFwdLogitsOnly(headFwd))
	headBwdOp := exec.KernelOp(headBwd)

	iterBarrier := func(t *sim.Task) {
		for _, p := range b.prevIterEnd {
			if p != nil {
				t.After(p)
			}
		}
	}

	var lastRS, rsEmbed *sim.Task
	var prevStepB []*sim.Task
	for step := 0; step < accum; step++ {
		lastStep := step == accum-1
		tag := fmt.Sprintf("it%d.s%d", it, step)

		// Forward pass.
		agEmbed := b.newCollective(tag+".ag.embed", collective.AllGather, embedBytes)
		embedF := b.newCompute(tag+".fwd.embed", embedOp)
		after(embedF, agEmbed)
		if step == 0 {
			iterBarrier(agEmbed)
			for _, t := range embedF {
				iterBarrier(t)
			}
		} else {
			for d, t := range embedF {
				t.After(prevStepB[d])
			}
		}

		agFwdPrefix, fwdPrefix := tag+".ag.fwd.l", tag+".fwd.l"
		agF := make([]*sim.Task, L)
		fF := make([][]*sim.Task, L)
		for i := 0; i < L; i++ {
			agF[i] = b.newCollective(b.batch.Name(agFwdPrefix, i), collective.AllGather, layerBytes)
			if !b.sequential() && i >= pref {
				// Bound prefetch: gather of layer i waits for compute of
				// layer i-pref.
				after([]*sim.Task{agF[i]}, fF[i-pref]...)
			}
			fF[i] = b.newCompute(b.batch.Name(fwdPrefix, i), fwdOp)
			after(fF[i], agF[i])
			if i == 0 {
				for d, t := range fF[i] {
					t.After(embedF[d])
				}
			} else {
				for d, t := range fF[i] {
					t.After(fF[i-1][d])
				}
			}
		}

		// LM head + loss.
		headF := b.newCompute(tag+".fwd.lmhead", logitsOp)
		for d, t := range headF {
			t.After(fF[L-1][d], agEmbed)
		}
		headB := b.newCompute(tag+".bwd.lmhead", headBwdOp)
		for d, t := range headB {
			t.After(headF[d])
		}
		if lastStep {
			rsEmbed = b.newCollective(tag+".rs.embed", collective.ReduceScatter, embedBytes)
			after([]*sim.Task{rsEmbed}, headB...)
		}

		// Backward pass (reverse layer order).
		agBwdPrefix, bwdPrefix, rsPrefix := tag+".ag.bwd.l", tag+".bwd.l", tag+".rs.l"
		agB := make([]*sim.Task, L)
		fB := make([][]*sim.Task, L)
		for i := L - 1; i >= 0; i-- {
			agB[i] = b.newCollective(b.batch.Name(agBwdPrefix, i), collective.AllGather, layerBytes)
			if !b.sequential() && i <= L-1-pref {
				after([]*sim.Task{agB[i]}, fB[i+pref]...)
			}
			fB[i] = b.newCompute(b.batch.Name(bwdPrefix, i), bwdOp)
			after(fB[i], agB[i])
			if i == L-1 {
				for d, t := range fB[i] {
					t.After(headB[d])
				}
			} else {
				for d, t := range fB[i] {
					t.After(fB[i+1][d])
				}
			}
			if lastStep {
				rs := b.newCollective(b.batch.Name(rsPrefix, i), collective.ReduceScatter, layerBytes)
				after([]*sim.Task{rs}, fB[i]...)
				lastRS = rs
			}
		}
		prevStepB = fB[0]
	}

	// Optimizer step over the local shard.
	shard := m.TotalParams() / float64(b.n)
	opt := b.newCompute(fmt.Sprintf("it%d.opt", it), exec.KernelOp(m.OptimizerKernel(shard)))
	for d, t := range opt {
		t.After(lastRS, rsEmbed, prevStepB[d])
	}
	b.prevIterEnd = opt

	return b.eng.Tasks()[start:]
}

// headFwdEmbedOnly and headFwdLogitsOnly split the fused head descriptor
// so the embedding lookup runs before layer 0 and the LM head after the
// last layer.
func headFwdEmbedOnly(fused kernels.Desc) kernels.Desc {
	return kernels.Fuse("fwd.embed", fused.Parts[0])
}

func headFwdLogitsOnly(fused kernels.Desc) kernels.Desc {
	return kernels.Fuse("fwd.lmhead", fused.Parts[1:]...)
}
