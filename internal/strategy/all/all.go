// Package all links the stock distribution strategies into a binary: a
// blank import of this package registers FSDP, pipeline parallelism, DDP
// and tensor parallelism with the strategy registry (database/sql driver
// style). internal/core imports it so every consumer of the harness sees
// the full strategy set; a new strategy joins every binary by adding its
// package here — no edits to internal/core.
package all

import (
	_ "overlapsim/internal/ddp"
	_ "overlapsim/internal/fsdp"
	_ "overlapsim/internal/pipeline"
	_ "overlapsim/internal/tp"
)
