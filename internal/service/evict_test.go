package service

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// finishJobForTest moves a job to a terminal status the way the worker
// goroutines do, keeping the lifecycle gauges balanced.
func (s *Server) finishJobForTest(j *job, status jobStatus) {
	j.mu.Lock()
	j.status = status
	j.mu.Unlock()
	s.finishJob(j, status)
}

func TestJobEviction(t *testing.T) {
	srv := New(Options{})
	defer srv.Close()

	// A running job submitted first must survive any amount of finished
	// traffic after it.
	pinned := srv.newJob(kindSweep, "pinned-running", 1)

	const extra = 40
	var oldest *job
	for i := 0; i < maxRetainedJobs+extra; i++ {
		j := srv.newJob(kindSweep, "churn", 1)
		if oldest == nil {
			oldest = j
		}
		srv.finishJobForTest(j, statusDone)
	}

	srv.mu.Lock()
	n := len(srv.jobs)
	_, pinnedKept := srv.jobs[pinned.id]
	_, oldestKept := srv.jobs[oldest.id]
	srv.mu.Unlock()

	if n > maxRetainedJobs {
		t.Errorf("%d jobs retained, cap is %d", n, maxRetainedJobs)
	}
	if !pinnedKept {
		t.Error("running job was evicted")
	}
	if oldestKept {
		t.Error("oldest finished job survived the cap")
	}
	srv.finishJobForTest(pinned, statusCancelled)
}

// Eviction only removes finished jobs: with every job running, the map
// may exceed the cap rather than drop live work.
func TestEvictionSparesRunningJobs(t *testing.T) {
	srv := New(Options{})
	defer srv.Close()

	jobs := make([]*job, 0, maxRetainedJobs+10)
	for i := 0; i < maxRetainedJobs+10; i++ {
		jobs = append(jobs, srv.newJob(kindAdvise, "live", 1))
	}
	srv.mu.Lock()
	n := len(srv.jobs)
	srv.mu.Unlock()
	if n != maxRetainedJobs+10 {
		t.Errorf("running jobs evicted: %d retained of %d", n, maxRetainedJobs+10)
	}
	for _, j := range jobs {
		srv.finishJobForTest(j, statusCancelled)
	}
}

// The job endpoints are kind-scoped: a sweep id does not resolve under
// /v1/advise and vice versa, missing ids 404, and a DELETE of a
// finished job releases it so a second DELETE 404s.
func TestJobEndpointErrorPaths(t *testing.T) {
	srv, ts := newTestServer(t)

	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json",
		strings.NewReader(`{"gpus":["H100"],"models":["GPT-3 XL"],"formats":["fp16"]}`))
	if err != nil {
		t.Fatal(err)
	}
	sub := decode[submitBody](t, resp, http.StatusAccepted)
	if body := waitForJob(t, ts, sub.ID); body.Status != statusDone {
		t.Fatalf("job finished as %q", body.Status)
	}

	get := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	del := func(path string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodDelete, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Wrong kind: the sweep job must not leak through the advise endpoints.
	decode[errorBody](t, get("/v1/advise/"+sub.ID), http.StatusNotFound)
	decode[errorBody](t, del("/v1/advise/"+sub.ID), http.StatusNotFound)

	// Missing ids 404 on both kinds.
	decode[errorBody](t, get("/v1/sweeps/sweep-424242"), http.StatusNotFound)
	decode[errorBody](t, del("/v1/advise/advise-424242"), http.StatusNotFound)

	// First DELETE of the finished job releases it...
	body := decode[jobBody](t, del("/v1/sweeps/"+sub.ID), http.StatusOK)
	if body.Status != statusDone {
		t.Errorf("released job reported %q", body.Status)
	}
	// ...so the second DELETE, and any further GET, 404.
	decode[errorBody](t, del("/v1/sweeps/"+sub.ID), http.StatusNotFound)
	decode[errorBody](t, get("/v1/sweeps/"+sub.ID), http.StatusNotFound)

	// The job map no longer holds it.
	srv.mu.Lock()
	_, held := srv.jobs[sub.ID]
	srv.mu.Unlock()
	if held {
		t.Error("released job still retained")
	}
}

// Listing is also kind-scoped: each list carries only its own kind
// under its own key.
func TestJobListsAreKindScoped(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json",
		strings.NewReader(`{"gpus":["H100"],"models":["GPT-3 XL"],"formats":["fp16"]}`))
	if err != nil {
		t.Fatal(err)
	}
	sub := decode[submitBody](t, resp, http.StatusAccepted)
	waitForJob(t, ts, sub.ID)

	resp, err = http.Get(ts.URL + "/v1/advise")
	if err != nil {
		t.Fatal(err)
	}
	list := decode[map[string][]jobBody](t, resp, http.StatusOK)
	if _, ok := list["advise_jobs"]; !ok {
		t.Errorf("advise list keys: %v", list)
	}
	if n := len(list["advise_jobs"]); n != 0 {
		t.Errorf("sweep job leaked into the advise list (%d entries)", n)
	}
}

// newTestServer variant check: the middleware keeps serving when the
// Options carry no logger (nil Logger must not panic).
func TestNilLoggerServes(t *testing.T) {
	srv := New(Options{Logger: nil})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp.StatusCode)
	}
}
