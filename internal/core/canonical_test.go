package core

import (
	"context"
	"errors"
	"testing"

	"overlapsim/internal/hw"
	"overlapsim/internal/power"
	"overlapsim/internal/precision"
)

func mustFingerprint(t *testing.T, cfg Config) string {
	t.Helper()
	fp, err := cfg.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	return fp
}

func TestFingerprintDeterministic(t *testing.T) {
	a := mustFingerprint(t, tinyCfg(FSDP))
	b := mustFingerprint(t, tinyCfg(FSDP))
	if a != b {
		t.Errorf("same config hashed differently: %s vs %s", a, b)
	}
	if len(a) != 64 {
		t.Errorf("fingerprint %q is not a sha256 hex", a)
	}
}

func TestFingerprintFieldSensitivity(t *testing.T) {
	base := tinyCfg(FSDP)
	seen := map[string]string{mustFingerprint(t, base): "base"}
	mutations := map[string]func(*Config){
		"parallelism":  func(c *Config) { c.Parallelism = Pipeline },
		"tp":           func(c *Config) { c.Parallelism = "tp" },
		"tp degree":    func(c *Config) { c.Parallelism = "tp"; c.TPDegree = 2 },
		"batch":        func(c *Config) { c.Batch = 16 },
		"micro":        func(c *Config) { c.Parallelism = Pipeline; c.MicroBatch = 4 },
		"format":       func(c *Config) { c.Format = precision.BF16 },
		"matrix units": func(c *Config) { c.MatrixUnits = false },
		"checkpoint":   func(c *Config) { c.NoCheckpoint = true },
		"grad accum":   func(c *Config) { c.GradAccumSteps = 4 },
		"iterations":   func(c *Config) { c.Iterations = 5 },
		"warmup":       func(c *Config) { c.Warmup = 3 },
		"power cap":    func(c *Config) { c.Caps = power.Caps{PowerW: 400} },
		"freq cap":     func(c *Config) { c.Caps = power.Caps{FreqFactor: 0.5} },
		"jitter":       func(c *Config) { c.JitterSigma = 0.01 },
		"system size":  func(c *Config) { c.System = hw.SystemH100x8() },
		"gpu":          func(c *Config) { c.System = hw.SystemA100x4() },
		"model layers": func(c *Config) { c.Model.Layers++ },
		"model hidden": func(c *Config) { c.Model.Hidden *= 2 },
		"seq len":      func(c *Config) { c.Model.SeqLen *= 2 },
	}
	for name, mutate := range mutations {
		cfg := base
		mutate(&cfg)
		fp := mustFingerprint(t, cfg)
		if prev, dup := seen[fp]; dup {
			t.Errorf("mutation %q collides with %q: %s", name, prev, fp)
		}
		seen[fp] = name
	}
}

// A modified hardware spec must change the address even when the system
// name stays the same — the hash covers the spec content, not the label.
func TestFingerprintCoversGPUSpec(t *testing.T) {
	a := tinyCfg(FSDP)
	b := tinyCfg(FSDP)
	g := *b.System.GPU
	g.LinkBWGBs *= 2
	b.System.GPU = &g
	if mustFingerprint(t, a) == mustFingerprint(t, b) {
		t.Error("changing the GPU spec did not change the fingerprint")
	}
}

// Implicit defaults and the values they stand for must hash identically,
// so cache keys do not split on spelling.
func TestFingerprintNormalizesDefaults(t *testing.T) {
	base := tinyCfg(FSDP)

	explicit := base
	explicit.Iterations = 2
	explicit.Warmup = 1
	explicit.GradAccumSteps = 1
	if mustFingerprint(t, base) != mustFingerprint(t, explicit) {
		t.Error("explicit defaults hash differently from zero values")
	}

	seeded := base
	seeded.Seed = 42 // irrelevant without jitter
	if mustFingerprint(t, base) != mustFingerprint(t, seeded) {
		t.Error("seed changed the fingerprint despite jitter being disabled")
	}
	seeded.JitterSigma = 0.01
	if mustFingerprint(t, base) == mustFingerprint(t, seeded) {
		t.Error("seed ignored despite jitter being enabled")
	}

	// Every negative warmup means "no warmup" to the executors.
	w1, w2 := base, base
	w1.Warmup = -1
	w2.Warmup = -2
	if mustFingerprint(t, w1) != mustFingerprint(t, w2) {
		t.Error("equivalent negative warmups hash differently")
	}
	if mustFingerprint(t, w1) == mustFingerprint(t, base) {
		t.Error("disabled warmup hashes like default warmup")
	}

	// Knobs the selected strategy ignores must not split the address.
	inert := base // FSDP: MicroBatch unused
	inert.MicroBatch = 2
	if mustFingerprint(t, base) != mustFingerprint(t, inert) {
		t.Error("microbatch changed an FSDP fingerprint")
	}
	pp := base
	pp.Parallelism = Pipeline
	ppDefault := pp // pipeline default microbatch is min(2, batch)
	ppDefault.MicroBatch = 2
	if mustFingerprint(t, pp) != mustFingerprint(t, ppDefault) {
		t.Error("explicit default microbatch hashes differently under pipeline")
	}
	accum := pp // non-FSDP: GradAccumSteps unused
	accum.GradAccumSteps = 8
	if mustFingerprint(t, pp) != mustFingerprint(t, accum) {
		t.Error("grad accum changed a pipeline fingerprint")
	}

	// TPDegree is inert for every strategy but tp; under tp the implicit
	// whole-node default and its explicit spelling must share an address.
	deg := base // FSDP: TPDegree unused
	deg.TPDegree = 2
	if mustFingerprint(t, base) != mustFingerprint(t, deg) {
		t.Error("TP degree changed an FSDP fingerprint")
	}
	tp := base
	tp.Parallelism = "tp"
	tpDefault := tp
	tpDefault.TPDegree = tp.System.N // the implicit default is the whole node
	if mustFingerprint(t, tp) != mustFingerprint(t, tpDefault) {
		t.Error("explicit whole-node TP degree hashes differently from the default")
	}
	tpHalf := tp
	tpHalf.TPDegree = 2
	if mustFingerprint(t, tp) == mustFingerprint(t, tpHalf) {
		t.Error("TP degree ignored under tp")
	}
}

func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, tinyCfg(FSDP)); !errors.Is(err, context.Canceled) {
		t.Errorf("Run on cancelled context: got %v, want context.Canceled", err)
	}
}
