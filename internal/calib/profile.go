// Package calib closes the measurement loop: it ingests measured
// hardware profiles (matmul roofline sweeps, collective bus-bandwidth
// sweeps, end-to-end training-step breakdowns), fits the simulator's
// calibration parameters to them with deterministic closed-form
// least-squares fitters, and scores the simulator against the same
// measurements. The fitted parameters leave the package as an
// hw.Load-compatible JSON overlay, so calibrated hardware flows through
// every name-keyed consumer — core configs, sweep grids, the advisor,
// the service catalog — with zero core edits.
//
// The package is part of the deterministic core: equal profile bytes
// produce byte-identical overlays and validation reports (enforced by
// overlaplint's simdeterminism analyzer and golden tests), so
// calibration artifacts can be committed, diffed and cached like any
// other content-addressed result.
package calib

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"overlapsim/internal/collective"
	"overlapsim/internal/core"
	"overlapsim/internal/model"
	"overlapsim/internal/precision"
)

// SchemaVersion is the profile schema this package reads. Version
// mismatches are errors, not best-effort parses: a measured profile is
// the ground truth of the whole loop and must not be reinterpreted
// silently.
const SchemaVersion = 1

// Profile is one measured hardware profile: what a benchmark run on a
// real machine produced. The GPU and System fields name registered
// hardware (built-in or hw.Load-ed) whose datasheet constants anchor
// the fit; the three point lists are the measurements. Every section is
// optional, but an empty profile is invalid.
type Profile struct {
	// Version must equal SchemaVersion.
	Version int `json:"version"`
	// Name labels the profile in reports.
	Name string `json:"name,omitempty"`
	// GPU is the registry name of the device the measurements ran on.
	GPU string `json:"gpu"`
	// System is the registry name of the system (node/cluster) the
	// collective and step measurements ran on.
	System string `json:"system"`
	// Power holds directly measured power points.
	Power *PowerProfile `json:"power,omitempty"`
	// Matmuls are GEMM roofline sweep points (the matmul overlap
	// benchmark scripts' output shape).
	Matmuls []MatmulPoint `json:"matmuls,omitempty"`
	// Collectives are nccl-tests style bus-bandwidth sweep points.
	Collectives []CollectivePoint `json:"collectives,omitempty"`
	// Steps are end-to-end training-step breakdowns (ddp_analysis style).
	Steps []StepPoint `json:"steps,omitempty"`
}

// PowerProfile holds directly measured power constants.
type PowerProfile struct {
	// IdleW is the measured per-GPU idle board power in watts.
	IdleW float64 `json:"idle_w"`
}

// MatmulPoint is one measured GEMM: its shape, arithmetic format, and
// the achieved dense throughput.
type MatmulPoint struct {
	// M, N, K are the GEMM dimensions (C[M,N] = A[M,K] x B[K,N]).
	M int `json:"m"`
	N int `json:"n"`
	K int `json:"k"`
	// Dtype is the storage format ("fp32", "tf32", "fp16", "bf16").
	Dtype string `json:"dtype"`
	// MatrixUnits reports whether Tensor/Matrix cores were enabled.
	MatrixUnits bool `json:"matrix_units,omitempty"`
	// TFLOPs is the achieved dense throughput in TFLOP/s.
	TFLOPs float64 `json:"tflops"`
}

// CollectivePoint is one measured collective: operation, payload, rank
// count, and the achieved nccl-tests "bus bandwidth".
type CollectivePoint struct {
	// Op names the operation ("all-reduce", "all-gather",
	// "reduce-scatter", "broadcast", "all-to-all").
	Op string `json:"op"`
	// Bytes is the logical payload size.
	Bytes float64 `json:"bytes"`
	// Ranks is the number of participating GPUs.
	Ranks int `json:"ranks"`
	// BusGBs is the achieved bus bandwidth in GB/s (collective.BusBW's
	// convention, the number nccl-tests prints).
	BusGBs float64 `json:"bus_bw_gbs"`
}

// StepPoint is one measured end-to-end training step: the workload
// configuration (in the sweep-spec vocabulary) plus its measured time
// and power breakdown.
type StepPoint struct {
	// Model is a model-zoo name ("GPT-3 XL", ...).
	Model string `json:"model"`
	// Parallelism is a strategy registry name ("fsdp", "ddp", ...).
	Parallelism string `json:"parallelism"`
	// Batch is the batch size.
	Batch int `json:"batch"`
	// MicroBatch is the pipeline microbatch size (pipeline only).
	MicroBatch int `json:"micro_batch,omitempty"`
	// TPDegree is the tensor-parallel group size (tp only).
	TPDegree int `json:"tp_degree,omitempty"`
	// Format is the training precision ("fp16", ...).
	Format string `json:"format"`
	// MatrixUnits reports whether Tensor/Matrix cores were enabled.
	MatrixUnits bool `json:"matrix_units,omitempty"`

	// ForwardMS, BackwardMS, SyncMS and OptimizerMS break the step down
	// (informational; validation scores the wall-clock step time).
	ForwardMS   float64 `json:"forward_ms,omitempty"`
	BackwardMS  float64 `json:"backward_ms,omitempty"`
	SyncMS      float64 `json:"sync_ms,omitempty"`
	OptimizerMS float64 `json:"optimizer_ms,omitempty"`
	// StepMS is the measured wall-clock step time in milliseconds.
	StepMS float64 `json:"step_ms"`

	// AvgPowerW is the mean per-GPU board power over the step; PeakPowerW
	// is the highest sampled reading on any GPU.
	AvgPowerW  float64 `json:"avg_power_w"`
	PeakPowerW float64 `json:"peak_power_w,omitempty"`
	// EnergyJ is the measured per-step energy across all GPUs; 0 derives
	// it as AvgPowerW x GPUs x step time.
	EnergyJ float64 `json:"energy_j,omitempty"`
}

// Parse reads and validates a profile. Unknown fields are rejected —
// a misspelled key in a measurement file must fail loudly, not be
// silently dropped from the fit.
func Parse(r io.Reader) (*Profile, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var p Profile
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("calib: parsing profile: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// ParseFile is Parse over the named file.
func ParseFile(path string) (*Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("calib: %w", err)
	}
	defer f.Close()
	p, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return p, nil
}

// parseOp resolves a profile op name onto a collective.Op. SendRecv is
// deliberately absent: bus-bandwidth sweeps measure algorithm
// collectives, and a point-to-point sweep carries no fittable ring
// parameters.
func parseOp(name string) (collective.Op, error) {
	ops := []collective.Op{
		collective.AllReduce, collective.AllGather,
		collective.ReduceScatter, collective.Broadcast, collective.AllToAll,
	}
	for _, op := range ops {
		if name == op.String() {
			return op, nil
		}
	}
	return 0, fmt.Errorf("calib: unknown collective op %q (have all-reduce, all-gather, reduce-scatter, broadcast, all-to-all)", name)
}

// Validate reports whether the profile is structurally sound: versioned,
// anchored to named hardware, and with every measurement point positive
// and parseable. Registry resolution of the GPU/system names happens at
// Fit time (a profile file is valid independently of which hardware
// files are loaded); workload names resolve here because the model zoo
// and strategy registry are compile-time vocabularies.
func (p *Profile) Validate() error {
	if p == nil {
		return fmt.Errorf("calib: nil profile")
	}
	if p.Version != SchemaVersion {
		return fmt.Errorf("calib: profile version %d, this build reads %d", p.Version, SchemaVersion)
	}
	if p.GPU == "" {
		return fmt.Errorf("calib: profile names no GPU")
	}
	if p.System == "" {
		return fmt.Errorf("calib: profile names no system")
	}
	if len(p.Matmuls) == 0 && len(p.Collectives) == 0 && len(p.Steps) == 0 && p.Power == nil {
		return fmt.Errorf("calib: profile has no measurements")
	}
	if p.Power != nil {
		if p.Power.IdleW <= 0 || !isFinite(p.Power.IdleW) {
			return fmt.Errorf("calib: measured idle power %g must be positive", p.Power.IdleW)
		}
	}
	for i, m := range p.Matmuls {
		if m.M < 1 || m.N < 1 || m.K < 1 {
			return fmt.Errorf("calib: matmul %d: shape %dx%dx%d must be positive", i, m.M, m.N, m.K)
		}
		if _, err := precision.Parse(m.Dtype); err != nil {
			return fmt.Errorf("calib: matmul %d: %w", i, err)
		}
		if m.TFLOPs <= 0 || !isFinite(m.TFLOPs) {
			return fmt.Errorf("calib: matmul %d: achieved %g TFLOP/s must be positive", i, m.TFLOPs)
		}
	}
	for i, c := range p.Collectives {
		if _, err := parseOp(c.Op); err != nil {
			return fmt.Errorf("collective %d: %w", i, err)
		}
		if c.Bytes <= 0 || !isFinite(c.Bytes) {
			return fmt.Errorf("calib: collective %d: payload %g bytes must be positive", i, c.Bytes)
		}
		if c.Ranks < 2 {
			return fmt.Errorf("calib: collective %d: %d ranks, need at least 2", i, c.Ranks)
		}
		if c.BusGBs <= 0 || !isFinite(c.BusGBs) {
			return fmt.Errorf("calib: collective %d: bus bandwidth %g GB/s must be positive", i, c.BusGBs)
		}
	}
	for i, s := range p.Steps {
		if _, err := model.ByName(s.Model); err != nil {
			return fmt.Errorf("calib: step %d: %w", i, err)
		}
		if _, err := core.ParseParallelism(s.Parallelism); err != nil {
			return fmt.Errorf("calib: step %d: %w", i, err)
		}
		if _, err := precision.Parse(s.Format); err != nil {
			return fmt.Errorf("calib: step %d: %w", i, err)
		}
		if s.Batch < 1 {
			return fmt.Errorf("calib: step %d: batch %d must be positive", i, s.Batch)
		}
		if s.MicroBatch < 0 || s.TPDegree < 0 {
			return fmt.Errorf("calib: step %d: negative micro-batch or TP degree", i)
		}
		if s.StepMS <= 0 || !isFinite(s.StepMS) {
			return fmt.Errorf("calib: step %d: step time %g ms must be positive", i, s.StepMS)
		}
		for _, v := range []float64{s.ForwardMS, s.BackwardMS, s.SyncMS, s.OptimizerMS, s.EnergyJ} {
			if v < 0 || !isFinite(v) {
				return fmt.Errorf("calib: step %d: negative or non-finite breakdown component", i)
			}
		}
		if s.AvgPowerW <= 0 || !isFinite(s.AvgPowerW) {
			return fmt.Errorf("calib: step %d: average power %g W must be positive", i, s.AvgPowerW)
		}
		if s.PeakPowerW != 0 && (s.PeakPowerW < s.AvgPowerW || !isFinite(s.PeakPowerW)) {
			return fmt.Errorf("calib: step %d: peak power %g W below average %g W", i, s.PeakPowerW, s.AvgPowerW)
		}
	}
	return nil
}

func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}
