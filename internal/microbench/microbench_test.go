package microbench

import (
	"testing"

	"overlapsim/internal/hw"
	"overlapsim/internal/power"
	"overlapsim/internal/precision"
)

func cfg(g *hw.GPUSpec, n int) Config {
	return Config{
		System:      hw.NewSystem(g, 4),
		N:           n,
		Format:      precision.FP16,
		MatrixUnits: true,
	}
}

func TestOverlapSlowsGEMM(t *testing.T) {
	res, err := Run(cfg(hw.H100(), 4096))
	if err != nil {
		t.Fatal(err)
	}
	if res.Slowdown <= 0 {
		t.Errorf("concurrent all-reduce must slow the GEMM: %g", res.Slowdown)
	}
	if res.OverlappedGEMM <= res.IsolatedGEMM {
		t.Error("overlapped GEMM time not above isolated")
	}
}

func TestOverlapRaisesPower(t *testing.T) {
	res, err := Run(cfg(hw.H100(), 8192))
	if err != nil {
		t.Fatal(err)
	}
	if res.OverlappedPower.PeakTDP < res.IsolatedPower.PeakTDP {
		t.Errorf("overlap peak %.2fxTDP below isolated %.2fxTDP",
			res.OverlappedPower.PeakTDP, res.IsolatedPower.PeakTDP)
	}
}

func TestLargeGEMMNearTDP(t *testing.T) {
	// Takeaway 6: at large N the GPU operates near or beyond its TDP.
	res, err := Run(cfg(hw.H100(), 16384))
	if err != nil {
		t.Fatal(err)
	}
	if res.OverlappedPower.PeakTDP < 0.85 {
		t.Errorf("16K GEMM with all-reduce peaks at %.2fxTDP, want ≥0.85", res.OverlappedPower.PeakTDP)
	}
}

func TestIsolatedTimeGrowsWithN(t *testing.T) {
	small, err := Run(cfg(hw.A100(), 2048))
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(cfg(hw.A100(), 8192))
	if err != nil {
		t.Fatal(err)
	}
	if big.IsolatedGEMM <= small.IsolatedGEMM {
		t.Error("bigger GEMM must take longer")
	}
}

func TestPowerCapAmplifiesSlowdown(t *testing.T) {
	base, err := Run(cfg(hw.A100(), 8192))
	if err != nil {
		t.Fatal(err)
	}
	capped := cfg(hw.A100(), 8192)
	capped.Caps = power.Caps{PowerW: 150}
	cres, err := Run(capped)
	if err != nil {
		t.Fatal(err)
	}
	if cres.OverlappedGEMM <= base.OverlappedGEMM {
		t.Error("power cap must stretch the overlapped GEMM")
	}
}

func TestValidation(t *testing.T) {
	bad := cfg(hw.H100(), 0)
	if _, err := Run(bad); err == nil {
		t.Error("N=0 must fail")
	}
}

func TestDefaults(t *testing.T) {
	c := cfg(hw.H100(), 1024)
	c.Repeats = 0
	c.CollectiveBytes = 0
	if _, err := Run(c); err != nil {
		t.Errorf("defaults failed: %v", err)
	}
	if len(SweepNs()) == 0 {
		t.Error("empty sweep")
	}
}
