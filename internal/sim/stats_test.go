package sim

import "testing"

func TestEngineStats(t *testing.T) {
	e := NewEngine(unitPlatform())
	e.Reserve(8)
	s1 := e.NewStream("s1", 0)
	s2 := e.NewStream("s2", 1)
	a := e.NewTask("a", KindCompute, 1, nil, s1)
	b := e.NewTask("b", KindCompute, 1, nil, s2)
	c := e.NewTask("c", KindComm, 1, nil, s1)
	c.After(b)
	_ = a
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}

	st := e.Stats()
	if st.Tasks != 3 || st.TasksRetired != 3 {
		t.Errorf("tasks = %d retired = %d, want 3/3", st.Tasks, st.TasksRetired)
	}
	if st.Streams != 2 {
		t.Errorf("streams = %d, want 2", st.Streams)
	}
	if st.Epochs <= 0 {
		t.Errorf("epochs = %d, want > 0", st.Epochs)
	}
	if st.Admissions != 3 {
		t.Errorf("admissions = %d, want 3", st.Admissions)
	}
	// The dirty-set scheduler must never examine more streams than a
	// full rescan on every pass would.
	if st.StreamRechecks > st.FullScanChecks {
		t.Errorf("rechecks %d > full-scan counterfactual %d", st.StreamRechecks, st.FullScanChecks)
	}
	if st.MaxRunning < 2 {
		t.Errorf("max running = %d, want >= 2 (a and b overlap)", st.MaxRunning)
	}
	if st.ArenaBytes <= 0 || st.ArenaSlabs <= 0 {
		t.Errorf("arena bytes=%d slabs=%d, want > 0", st.ArenaBytes, st.ArenaSlabs)
	}
	if st.ReservedTasks != 8 {
		t.Errorf("reserved = %d, want 8", st.ReservedTasks)
	}
	if st.SimTime != e.Now() {
		t.Errorf("sim time %g != engine now %g", st.SimTime, e.Now())
	}

	var agg Stats
	agg.Add(st)
	agg.Add(st)
	if agg.Tasks != 6 || agg.Epochs != 2*st.Epochs {
		t.Errorf("Add did not sum counters: %+v", agg)
	}
	if agg.MaxRunning != st.MaxRunning || agg.SimTime != st.SimTime {
		t.Errorf("Add did not max gauges: %+v", agg)
	}
}
