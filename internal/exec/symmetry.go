package exec

import (
	"math"
	"runtime"

	"overlapsim/internal/collective"
	"overlapsim/internal/kernels"
	"overlapsim/internal/sim"
)

// Symmetry declares what rank symmetry a strategy's plan exposes. It is
// a hint, never a proof: the runner always verifies structurally via
// sim.Engine.DetectClasses before collapsing anything, so a wrong
// annotation can only cost speed, not correctness.
type Symmetry int

const (
	// SymmetryAuto probes the plan for symmetry classes — the default,
	// safe for every plan because detection is structural.
	SymmetryAuto Symmetry = iota
	// SymmetryRanks marks plans whose data-parallel ranks execute
	// identical per-iteration schedules (DDP/FSDP/TP replicas).
	SymmetryRanks
	// SymmetryNone marks plans known to be rank-asymmetric (pipeline
	// stages carry different layers); the runner skips detection.
	SymmetryNone
)

// String returns the symmetry name.
func (s Symmetry) String() string {
	switch s {
	case SymmetryAuto:
		return "auto"
	case SymmetryRanks:
		return "ranks"
	case SymmetryNone:
		return "none"
	default:
		return "symmetry(?)"
	}
}

// PayloadEq reports whether two task payloads are equivalent for
// symmetry detection. It understands the payload types the executors
// attach (kernel and collective descriptors) and is deliberately
// conservative for everything else: unknown payload types never compare
// equal, so foreign plans simply stay uncollapsed. Interface equality
// (==) is not usable here — kernel descriptors contain slices.
func PayloadEq(a, b any) bool {
	switch x := a.(type) {
	case nil:
		return b == nil
	case kernels.Desc:
		y, ok := b.(kernels.Desc)
		return ok && kernelDescEq(&x, &y)
	case collective.Desc:
		y, ok := b.(collective.Desc)
		return ok && collectiveDescEq(x, y)
	default:
		return false
	}
}

// kernelDescEq compares kernel descriptors field-wise, floats by bit
// pattern (rate computation is a pure function of these bits). The
// builders box each fused descriptor once and fan it out to every rank,
// so counterpart payloads nearly always share their Parts backing array
// — that identity short-circuits the recursion, which matters because
// detection compares every task of every candidate device.
func kernelDescEq(a, b *kernels.Desc) bool {
	if a.Name != b.Name || a.Op != b.Op ||
		math.Float64bits(a.FLOPs) != math.Float64bits(b.FLOPs) ||
		math.Float64bits(a.Bytes) != math.Float64bits(b.Bytes) ||
		math.Float64bits(a.M) != math.Float64bits(b.M) ||
		math.Float64bits(a.N) != math.Float64bits(b.N) ||
		math.Float64bits(a.K) != math.Float64bits(b.K) ||
		a.Format != b.Format || a.Path != b.Path ||
		len(a.Parts) != len(b.Parts) {
		return false
	}
	if len(a.Parts) == 0 || &a.Parts[0] == &b.Parts[0] {
		return true
	}
	for i := range a.Parts {
		if !kernelDescEq(&a.Parts[i], &b.Parts[i]) {
			return false
		}
	}
	return true
}

// collectiveDescEq compares the exported descriptor fields; the prepared
// (unexported) rate constants are pure functions of these plus the
// fabric, which counterpart tasks of one plan share. Gated descriptors
// only compare equal when neither has a gate — gate state is runtime
// identity, not structure.
func collectiveDescEq(a, b collective.Desc) bool {
	if a.Name != b.Name || a.Op != b.Op ||
		math.Float64bits(a.Bytes) != math.Float64bits(b.Bytes) ||
		a.N != b.N || a.Src != b.Src || a.Dst != b.Dst ||
		a.Gate != nil || b.Gate != nil ||
		len(a.Ranks) != len(b.Ranks) || len(a.Group) != len(b.Group) {
		return false
	}
	for i := range a.Ranks {
		if a.Ranks[i] != b.Ranks[i] {
			return false
		}
	}
	for i := range a.Group {
		if a.Group[i] != b.Group[i] {
			return false
		}
	}
	return true
}

// SymmetryClasses runs the structural symmetry detector on the plan's
// engine and returns the device partition. Valid only before the plan
// has run (nil afterwards). Detection does not modify the schedule.
func (p *Plan) SymmetryClasses() []sim.Class {
	return p.Engine.DetectClasses(PayloadEq)
}

// mergeableClasses filters the detected partition down to the
// multi-member classes that are safe to collapse in the presence of
// collectives. The DAG structure is already proven by detection; what
// it cannot see is the platform's pressure model, where a collective
// exerts contention on every participant device. A class is kept only
// if every collective either includes the whole class or none of it
// (partial overlap would leave the representative with contention its
// ghost members never had), and no collective task is enqueued on a
// class member's stream (its pressure on the other devices would vanish
// with the ghost).
func (p *Plan) mergeableClasses(classes []sim.Class) []sim.Class {
	multi := 0
	maxDev := -1
	for _, c := range classes {
		if len(c.Members) > 1 {
			multi++
		}
		for _, m := range c.Members {
			if m > maxDev {
				maxDev = m
			}
		}
	}
	if multi == 0 {
		return nil
	}
	classOf := make([]int, maxDev+1)
	for i := range classOf {
		classOf[i] = -1
	}
	size := make([]int, len(classes))
	for ci, c := range classes {
		size[ci] = len(c.Members)
		for _, m := range c.Members {
			classOf[m] = ci
		}
	}
	vetoed := make([]bool, len(classes))
	counts := make([]int, len(classes))
	var touched []int
	for _, t := range p.Engine.Tasks() {
		cd, ok := t.Payload().(collective.Desc)
		if !ok {
			continue
		}
		if d := t.Streams()[0].Device(); d <= maxDev {
			if ci := classOf[d]; ci >= 0 && size[ci] > 1 {
				vetoed[ci] = true
			}
		}
		for _, r := range cd.Participants() {
			if r < 0 || r > maxDev {
				continue
			}
			ci := classOf[r]
			if ci < 0 || size[ci] < 2 {
				continue
			}
			if counts[ci] == 0 {
				touched = append(touched, ci)
			}
			counts[ci]++
		}
		for _, ci := range touched {
			if counts[ci] != size[ci] {
				vetoed[ci] = true
			}
			counts[ci] = 0
		}
		touched = touched[:0]
	}
	var out []sim.Class
	for ci, c := range classes {
		if size[ci] > 1 && !vetoed[ci] {
			out = append(out, c)
		}
	}
	return out
}

// aliasVector flattens collapsed classes into the device→representative
// map gpu.Cluster.SetAliases consumes.
func aliasVector(n int, classes []sim.Class) []int {
	alias := make([]int, n)
	for d := range alias {
		alias[d] = d
	}
	for _, c := range classes {
		rep := c.Members[0]
		for _, m := range c.Members[1:] {
			if m < n {
				alias[m] = rep
			}
		}
	}
	return alias
}

// autoPoolMinTasks is the live-task count below which Parallel=0 plans
// stay serial: pooled epoch passes only pay off on wide running sets.
const autoPoolMinTasks = 8192

// autoPoolMaxWorkers caps automatic pool sizing so concurrent plan runs
// (sweep workers) do not oversubscribe the machine.
const autoPoolMaxWorkers = 8

// newPool sizes the run's worker pool from the Parallel knob and the
// live (non-ghost) task count. May return nil (serial execution).
func (p *Plan) newPool(live int) *sim.Pool {
	switch {
	case p.Parallel == 1:
		return nil
	case p.Parallel > 1:
		return sim.NewPool(p.Parallel)
	default:
		if live < autoPoolMinTasks {
			return nil
		}
		w := runtime.GOMAXPROCS(0)
		if w > autoPoolMaxWorkers {
			w = autoPoolMaxWorkers
		}
		return sim.NewPool(w)
	}
}
