package sweep

import (
	"sync"
	"time"

	"overlapsim/internal/core"
	"overlapsim/internal/telemetry"
)

// Process-wide sweep instrumentation, registered on the default
// telemetry registry. Counters are cumulative over the process (not per
// sweep); per-sweep provenance stays in Result.
var (
	mCacheRequests = telemetry.Default.CounterVec("sweep_cache_requests_total",
		"Cache lookups by backend and outcome (hit or miss).",
		"backend", "outcome")
	mCachePutErrors = telemetry.Default.CounterVec("sweep_cache_put_errors_total",
		"Cache writes that failed, by backend.",
		"backend")
	mPoints = telemetry.Default.CounterVec("sweep_points_total",
		"Sweep points simulated (cache misses only), by outcome: ok, oom or error.",
		"outcome")
	mPointSeconds = telemetry.Default.Histogram("sweep_point_sim_seconds",
		"Wall-clock duration of one point's simulation (cache misses only).",
		nil)
	mFingerprints = telemetry.Default.Counter("sweep_fingerprints_total",
		"Config fingerprints computed.")
	mFingerprintRepeats = telemetry.Default.Counter("sweep_fingerprint_repeats_total",
		"Fingerprints seen before in this process - repeat work a singleflight layer could coalesce.")

	mEngineEpochs = telemetry.Default.Counter("sim_engine_epochs_total",
		"Scheduling epochs executed by simulation engines, summed over both modes.")
	mEngineTasks = telemetry.Default.Counter("sim_engine_tasks_retired_total",
		"Tasks retired by simulation engines, summed over both modes.")
	mEngineRechecks = telemetry.Default.Counter("sim_engine_stream_rechecks_total",
		"Dirty-set stream rechecks performed by simulation engines.")
	mEngineFullScans = telemetry.Default.Counter("sim_engine_full_scan_checks_total",
		"Counterfactual full-rescan stream checks - compare with stream rechecks for the dirty-set win.")
	mEngineArenaBytes = telemetry.Default.Counter("sim_engine_arena_bytes_total",
		"Bytes of slab arena allocated by simulation engines.")
	mEngineArenaSlabs = telemetry.Default.Counter("sim_engine_arena_slabs_total",
		"Slab allocations made by simulation engines.")

	// seenFingerprints backs the repeat counter: the set of fingerprints
	// this process has looked up at least once.
	seenFingerprints sync.Map
)

// cacheBackend is the closed label vocabulary identifying a cache
// implementation on cache metrics. One value exists per cache type
// linked into the binary — never per key or per request — so the label
// cardinality is bounded by the (small, compile-time) set of
// implementations.
type cacheBackend string

const (
	backendMem    cacheBackend = "mem"
	backendDir    cacheBackend = "dir"
	backendCustom cacheBackend = "custom"
)

// lookupOutcome is the closed hit/miss vocabulary of cache lookups.
type lookupOutcome string

const (
	lookupHit  lookupOutcome = "hit"
	lookupMiss lookupOutcome = "miss"
)

// pointOutcome is the closed vocabulary of one simulated point's fate.
type pointOutcome string

const (
	outcomeOK    pointOutcome = "ok"
	outcomeOOM   pointOutcome = "oom"
	outcomeError pointOutcome = "error"
)

// cacheName labels a cache backend for metrics: the stock backends map
// to backendMem and backendDir, anything exporting Name() uses that
// (one fixed name per implementation, so still bounded), and other
// implementations fall back to backendCustom.
func cacheName(c Cache) cacheBackend {
	switch c := c.(type) {
	case *MemCache:
		return backendMem
	case *DirCache:
		return backendDir
	case interface{ Name() string }:
		return cacheBackend(c.Name())
	default:
		return backendCustom
	}
}

// NotePutError records a failed cache write against the backend's
// label on sweep_cache_put_errors_total. Composing caches (the store
// package's tiered promotion path) use it to surface per-tier write
// failures on the same series the sweep runner's write-through path
// reports to.
func NotePutError(c Cache) {
	mCachePutErrors.With(string(cacheName(c))).Inc()
}

// PutErrors reads the cumulative failed-write count recorded against
// the backend's label — the observability contract NotePutError writes
// to, exported so composing packages can regression-test it.
func PutErrors(c Cache) uint64 {
	return mCachePutErrors.With(string(cacheName(c))).Value()
}

// noteFingerprint records a computed fingerprint and whether this
// process has seen it before.
func noteFingerprint(key string) {
	mFingerprints.Inc()
	if _, loaded := seenFingerprints.LoadOrStore(key, struct{}{}); loaded {
		mFingerprintRepeats.Inc()
	}
}

// noteCacheLookup records one cache Get.
func noteCacheLookup(backend cacheBackend, hit bool) {
	outcome := lookupMiss
	if hit {
		outcome = lookupHit
	}
	mCacheRequests.With(string(backend), string(outcome)).Inc()
}

// noteSimulated records one freshly simulated point: its outcome, its
// wall-clock duration, and the engine work both modes performed.
func noteSimulated(outcome pointOutcome, elapsed time.Duration, res *core.Result) {
	mPoints.With(string(outcome)).Inc()
	mPointSeconds.Observe(elapsed.Seconds())
	if res == nil {
		return
	}
	var agg = res.Overlapped.Engine
	agg.Add(res.Sequential.Engine)
	mEngineEpochs.Add(uint64(agg.Epochs))
	mEngineTasks.Add(uint64(agg.TasksRetired))
	mEngineRechecks.Add(uint64(agg.StreamRechecks))
	mEngineFullScans.Add(uint64(agg.FullScanChecks))
	mEngineArenaBytes.Add(uint64(agg.ArenaBytes))
	mEngineArenaSlabs.Add(uint64(agg.ArenaSlabs))
}
