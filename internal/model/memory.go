package model

import (
	"fmt"

	"overlapsim/internal/precision"
)

// Memory-footprint estimation. The estimates gate experiment feasibility
// the same way real HBM capacity gates the paper's runs — notably the
// A100's 40 GB limiting it to GPT-3 2.7B and below (§V-A).

const (
	// stateOverheadFactor inflates model/optimizer state for allocator
	// fragmentation and framework bookkeeping observed in
	// DeepSpeed/Megatron runs.
	stateOverheadFactor = 1.5
	// frameworkReserveBytes is the CUDA/HIP context plus framework
	// reserved pool.
	frameworkReserveBytes = 2.0 * (1 << 30)
	// adamStateBytesPerParam is FP32 master weight + two FP32 moments.
	adamStateBytesPerParam = 12.0
)

// MemoryEstimate breaks down the predicted per-GPU memory use in bytes.
type MemoryEstimate struct {
	// States is parameters + gradients + optimizer state (sharded under
	// FSDP).
	States float64
	// Activations is stored activation memory at peak.
	Activations float64
	// Working is transient working-set memory (all-gathered layer
	// parameters under FSDP, recompute buffers, largest kernel
	// workspace).
	Working float64
	// Reserve is framework overhead.
	Reserve float64
}

// Total returns the summed estimate.
func (m MemoryEstimate) Total() float64 {
	return m.States + m.Activations + m.Working + m.Reserve
}

// activationBytesPerToken returns stored activation bytes per token per
// layer with and without checkpointing (full recompute keeps only the
// block input).
func (c Config) activationBytesPerToken(f precision.Format, checkpoint bool) float64 {
	e := float64(f.Bytes())
	h := float64(c.Hidden)
	if checkpoint {
		return h * e
	}
	ffn := float64(c.FFN)
	// Block inputs, QKV, attention output, MLP intermediate(s), softmax
	// statistics (flash-attention style: no S² score tensor stored).
	factor := 6*h + 2*ffn
	if c.Arch == LLaMA2 {
		factor += ffn // gate branch
	}
	return factor * e
}

// FootprintFSDP estimates per-GPU memory for FSDP (ZeRO-3) training over n
// GPUs at local batch b.
func (c Config) FootprintFSDP(b, n int, f precision.Format, checkpoint bool) MemoryEstimate {
	e := float64(f.Bytes())
	p := c.TotalParams()
	shard := p / float64(n)

	states := shard * (e /*params*/ + e /*grads*/ + adamStateBytesPerParam)
	states *= stateOverheadFactor

	tokens := float64(b) * float64(c.SeqLen)
	act := float64(c.Layers) * tokens * c.activationBytesPerToken(f, checkpoint)

	// Working set: two all-gathered layers resident (current + prefetched)
	// plus one layer of recompute activations when checkpointing.
	working := 2 * c.ParamsPerLayer() * e
	if checkpoint {
		working += tokens * c.activationBytesPerToken(f, false)
	}
	// Logits buffer for the LM head.
	working += tokens * float64(c.Vocab) * e

	return MemoryEstimate{States: states, Activations: act, Working: working, Reserve: frameworkReserveBytes}
}

// FootprintPipeline estimates per-GPU (per-stage) memory for pipeline
// parallelism over n stages at local batch b split into microbatches of
// size micro.
func (c Config) FootprintPipeline(b, micro, n int, f precision.Format, checkpoint bool) MemoryEstimate {
	e := float64(f.Bytes())
	layersPerStage := (c.Layers + n - 1) / n
	stageParams := float64(layersPerStage)*c.ParamsPerLayer() + c.EmbedParams()/float64(n)

	states := stageParams * (e + e + adamStateBytesPerParam)
	states *= stateOverheadFactor

	// 1F1B keeps at most n in-flight microbatches of activations per
	// stage.
	if micro <= 0 {
		micro = b
	}
	inflight := n
	if m := (b + micro - 1) / micro; m < inflight {
		inflight = m
	}
	tokens := float64(micro) * float64(c.SeqLen)
	act := float64(inflight) * float64(layersPerStage) * tokens * c.activationBytesPerToken(f, checkpoint)

	working := tokens * float64(c.Vocab) * e / float64(n)
	if checkpoint {
		working += tokens * c.activationBytesPerToken(f, false)
	}

	return MemoryEstimate{States: states, Activations: act, Working: working, Reserve: frameworkReserveBytes}
}

// FootprintTP estimates per-GPU memory for tensor parallelism of degree d
// (Megatron-style, sequence-parallel) at per-group batch b. Parameters,
// gradients and optimizer state shard 1/d within the group (replicated
// across data-parallel groups); stored activations shard 1/d along the
// sequence dimension; the working set holds one layer's fully gathered
// activations plus the vocab-parallel logits shard.
func (c Config) FootprintTP(b, d int, f precision.Format, checkpoint bool) MemoryEstimate {
	e := float64(f.Bytes())
	dd := float64(d)

	states := c.TotalParams() / dd * (e + e + adamStateBytesPerParam)
	states *= stateOverheadFactor

	tokens := float64(b) * float64(c.SeqLen)
	act := float64(c.Layers) * tokens * c.activationBytesPerToken(f, checkpoint) / dd

	// Working set: the current layer's gathered (unsharded) activations,
	// a recompute buffer when checkpointing, and the logits shard.
	working := tokens * c.activationBytesPerToken(f, false) / dd
	if checkpoint {
		working += tokens * c.activationBytesPerToken(f, false) / dd
	}
	working += tokens * float64(c.Vocab) * e / dd

	return MemoryEstimate{States: states, Activations: act, Working: working, Reserve: frameworkReserveBytes}
}

// ErrOOM is the error type reported when a configuration exceeds device
// memory.
type ErrOOM struct {
	Model     string
	GPU       string
	NeedBytes float64
	HaveBytes float64
}

// Error implements error.
func (e *ErrOOM) Error() string {
	return fmt.Sprintf("model: %s does not fit on %s: need %.1f GiB, have %.1f GiB",
		e.Model, e.GPU, e.NeedBytes/(1<<30), e.HaveBytes/(1<<30))
}
