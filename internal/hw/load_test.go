package hw

import (
	"strings"
	"sync"
	"testing"
)

// loadOnce registers a test hardware file exactly once per process — the
// registries are process-global, so tests must stay re-runnable under
// go test -count=N.
var loadedOnce sync.Map // key -> func() error

func loadOnce(key, body string) error {
	f, _ := loadedOnce.LoadOrStore(key, sync.OnceValue(func() error {
		return Load(strings.NewReader(body))
	}))
	return f.(func() error)()
}

// A minimal hardware file: datasheet numbers only, calibration left to
// the vendor-typical defaults.
const minimalHW = `{
  "gpus": [{
    "name": "LoadChip",
    "vendor": "nvidia",
    "year": 2025,
    "sms": 140,
    "boost_mhz": 2100,
    "mem_gb": 120,
    "mem_bw_gbs": 5000,
    "link_bw_gbs": 1800,
    "tdp_w": 1000,
    "vector_tflops": {"fp32": 90, "fp16": 180, "bf16": 180},
    "matrix_tflops": {"tf32": 600, "fp32": 600, "fp16": 1200, "bf16": 1200}
  }],
  "systems": [
    {"name": "LoadChip-x8", "gpu": "LoadChip", "gpus_per_node": 8},
    {"name": "LoadChip-pod", "gpu": "LoadChip", "gpus_per_node": 8, "nodes": 4,
     "fabric": "switched", "nic": {"bw_gbs": 100, "latency_s": 5e-6, "alg_eff": 0.9}}
  ]
}`

func TestLoadRegistersGPUsAndSystems(t *testing.T) {
	if err := loadOnce("minimal", minimalHW); err != nil {
		t.Fatal(err)
	}
	g := ByName("LoadChip")
	if g == nil {
		t.Fatal("loaded GPU not registered")
	}
	if g.Vendor != NVIDIA || g.TDPW != 1000 {
		t.Errorf("spec = %+v", g)
	}
	// Vendor-typical calibration defaults must be applied, not left zero.
	if g.MemHeadroom != 0.85 || g.AlgEff != 0.50 || g.MaxEff != 0.90 {
		t.Errorf("defaults not applied: headroom %g algEff %g maxEff %g", g.MemHeadroom, g.AlgEff, g.MaxEff)
	}
	if g.Power.IdleW <= 0 || g.Power.VectorW <= 0 || g.Power.FMin != 0.30 {
		t.Errorf("power defaults not applied: %+v", g.Power)
	}
	if g.Contention.CollSMsReduce <= g.Contention.CollSMsCopy {
		t.Errorf("contention defaults not applied: %+v", g.Contention)
	}
	if err := g.Validate(); err != nil {
		t.Error(err)
	}

	node, err := SystemByName("LoadChip-x8")
	if err != nil {
		t.Fatal(err)
	}
	if node.TotalGPUs() != 8 || node.NodeCount() != 1 {
		t.Errorf("node = %+v", node)
	}
	pod, err := SystemByName("LoadChip-pod")
	if err != nil {
		t.Fatal(err)
	}
	if pod.TotalGPUs() != 32 || pod.NodeCount() != 4 || pod.FabricKind() != FabricSwitched {
		t.Errorf("pod = %+v", pod)
	}
	if nic := pod.NICSpec(); nic.BWGBs != 100 || nic.AlgEff != 0.9 {
		t.Errorf("pod NIC = %+v", nic)
	}
	// A NIC with latency_s omitted must inherit the default, not run the
	// inter-node tier latency-free.
	if err := loadOnce("nic-default", `{"systems": [{"name": "LoadChip-lat", "gpu": "LoadChip",
	  "gpus_per_node": 8, "nodes": 2, "nic": {"bw_gbs": 25}}]}`); err != nil {
		t.Fatal(err)
	}
	lat, err := SystemByName("LoadChip-lat")
	if err != nil {
		t.Fatal(err)
	}
	if got := lat.NICSpec().Latency; got != DefaultNIC().Latency {
		t.Errorf("omitted latency_s = %g, want default %g", got, DefaultNIC().Latency)
	}
	// Re-loading collides with the already-registered names.
	if err := Load(strings.NewReader(minimalHW)); err == nil {
		t.Error("re-loading the same file must report duplicate names")
	}
}

func TestLoadRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"unknown field":  `{"gpu": []}`,
		"bad vendor":     `{"gpus": [{"name": "X", "vendor": "intel", "sms": 1, "boost_mhz": 1, "mem_gb": 1, "mem_bw_gbs": 1, "link_bw_gbs": 1, "tdp_w": 100, "vector_tflops": {"fp32": 1}}]}`,
		"bad format":     `{"gpus": [{"name": "X", "vendor": "nvidia", "sms": 1, "boost_mhz": 1, "mem_gb": 1, "mem_bw_gbs": 1, "link_bw_gbs": 1, "tdp_w": 100, "vector_tflops": {"fp13": 1}}]}`,
		"no fp32":        `{"gpus": [{"name": "X", "vendor": "nvidia", "sms": 1, "boost_mhz": 1, "mem_gb": 1, "mem_bw_gbs": 1, "link_bw_gbs": 1, "tdp_w": 100, "vector_tflops": {"fp16": 1}}]}`,
		"unknown gpu":    `{"systems": [{"name": "S", "gpu": "nonesuch", "gpus_per_node": 4}]}`,
		"bad shape":      `{"systems": [{"name": "S", "gpu": "H100", "gpus_per_node": 0}]}`,
		"bad fabric":     `{"systems": [{"name": "S", "gpu": "H100", "gpus_per_node": 4, "fabric": "torus"}]}`,
		"bad nic":        `{"systems": [{"name": "S", "gpu": "H100", "gpus_per_node": 4, "nodes": 2, "nic": {"bw_gbs": -5}}]}`,
		"duplicate name": `{"systems": [{"name": "H100x8", "gpu": "H100", "gpus_per_node": 8}]}`,
	}
	for name, body := range cases {
		if err := Load(strings.NewReader(body)); err == nil {
			t.Errorf("%s: accepted %s", name, body)
		}
	}
}

func TestLoadFileMissing(t *testing.T) {
	if err := LoadFile("/nonexistent/hardware.json"); err == nil {
		t.Error("missing file must error")
	}
}
