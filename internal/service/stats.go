package service

import (
	"net/http"
	"time"

	"overlapsim/internal/store"
	"overlapsim/internal/telemetry"
)

// statsBody is the GET /v1/stats response: a JSON mirror of the
// Prometheus exposition plus the server's own uptime and job ledger,
// for clients that want numbers without a scrape pipeline.
type statsBody struct {
	UptimeS float64                   `json:"uptime_s"`
	Jobs    map[string]map[string]int `json:"jobs"`
	// CoalescedTotal counts the experiments this process answered by
	// coalescing onto an identical in-flight simulation (singleflight)
	// instead of simulating again — the thundering-herd savings.
	CoalescedTotal uint64                     `json:"coalesced_total"`
	Metrics        []telemetry.FamilySnapshot `json:"metrics"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	body := statsBody{
		UptimeS:        time.Since(s.started).Seconds(),
		Jobs:           map[string]map[string]int{},
		CoalescedTotal: store.CoalescedTotal(),
		Metrics:        telemetry.Default.Snapshot(),
	}
	s.mu.Lock()
	for _, j := range s.jobs {
		j.mu.Lock()
		st := string(j.status)
		j.mu.Unlock()
		byStatus := body.Jobs[string(j.kind)]
		if byStatus == nil {
			byStatus = map[string]int{}
			body.Jobs[string(j.kind)] = byStatus
		}
		byStatus[st]++
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, body)
}
