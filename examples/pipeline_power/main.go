// Command pipeline_power trains GPT-3 2.7B with pipeline parallelism on a
// 4×A100 node across batch sizes (the Fig. 1(b) setup) while recording a
// fine-grained power trace on the first stage, demonstrating how the
// overlapped communication region — and with it the power envelope — grows
// with batch size.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"overlapsim/internal/core"
	"overlapsim/internal/exec"
	"overlapsim/internal/hw"
	"overlapsim/internal/model"
	"overlapsim/internal/power"
	"overlapsim/internal/precision"
	"overlapsim/internal/report"
)

func main() {
	log.SetFlags(0)

	headers := []string{"Batch", "OverlapRatio", "OverlappedCompute(ms)",
		"Slowdown", "AvgPower(TDP)", "PeakPower(TDP)", "TraceMax(TDP)"}
	var rows [][]string
	for _, bs := range []int{8, 16, 32, 64} {
		cfg := core.Config{
			System:        hw.SystemA100x4(),
			Model:         model.GPT3_2_7B(),
			Parallelism:   "pp",
			Batch:         bs,
			Format:        precision.FP16,
			MatrixUnits:   true,
			TraceInterval: power.TraceInterval,
		}
		ovl, err := core.RunMode(context.Background(), cfg, exec.Overlapped)
		if err != nil {
			log.Fatal(err)
		}
		seq, err := core.RunMode(context.Background(), cfg, exec.Sequential)
		if err != nil {
			log.Fatal(err)
		}
		slow := 0.0
		if seq.Mean.ComputeKernelTime > 0 {
			slow = (ovl.Mean.ComputeKernelTime - seq.Mean.ComputeKernelTime) / seq.Mean.ComputeKernelTime
		}
		traceMax := 0.0
		for _, s := range ovl.Traces[0] {
			if v := s.Watts / cfg.System.GPU.TDPW; v > traceMax {
				traceMax = v
			}
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", bs),
			report.Pct(ovl.OverlapRatio),
			report.Ms(ovl.Mean.OverlappedComputeTime),
			report.Pct(slow),
			report.TDP(ovl.AvgTDP),
			report.TDP(ovl.PeakTDP),
			report.TDP(traceMax),
		})
	}
	fmt.Println("Pipeline parallelism, GPT-3 2.7B on A100x4 (Fig. 1b setup)")
	fmt.Println()
	if err := report.Table(os.Stdout, headers, rows); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nNote: the overlapped computation region grows with batch size")
	fmt.Println("while FSDP shows the opposite trend (see examples/fsdp_characterization).")
}
