// Command precision_ablation reproduces the Fig. 10 and Fig. 11
// ablations on a 4×H100 node: FP32 on the general vector datapath versus
// FP16 and TF32 on the Tensor Cores, showing that reduced precision and
// specialized datapaths cut power on small models but raise the overlap
// ratio, contention and power on larger workloads (Takeaway 7).
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"overlapsim/internal/core"
	"overlapsim/internal/hw"
	"overlapsim/internal/model"
	"overlapsim/internal/precision"
	"overlapsim/internal/report"
)

func main() {
	log.SetFlags(0)

	type variant struct {
		name   string
		format precision.Format
		matrix bool
	}
	variants := []variant{
		{"FP32 vector", precision.FP32, false},
		{"TF32 tensor-core", precision.FP32, true},
		{"FP16 tensor-core", precision.FP16, true},
	}

	headers := []string{"Model", "Batch", "Variant", "Slowdown", "Overlap",
		"Avg(TDP)", "Peak(TDP)", "E2E(ms)"}
	var rows [][]string
	for _, m := range []model.Config{model.GPT3XL(), model.GPT3_6_7B()} {
		for _, bs := range []int{8, 16} {
			for _, v := range variants {
				res, err := core.Run(context.Background(), core.Config{
					System:      hw.SystemH100x4(),
					Model:       m,
					Parallelism: "fsdp",
					Batch:       bs,
					Format:      v.format,
					MatrixUnits: v.matrix,
				})
				if err != nil {
					log.Fatal(err)
				}
				rows = append(rows, []string{
					m.Name, fmt.Sprintf("%d", bs), v.name,
					report.Pct(res.Char.ComputeSlowdown),
					report.Pct(res.Char.OverlapRatio),
					report.TDP(res.Overlapped.AvgTDP),
					report.TDP(res.Overlapped.PeakTDP),
					report.Ms(res.Overlapped.Mean.E2E),
				})
			}
		}
	}
	fmt.Println("Precision & Tensor-Core ablation — FSDP on H100x4 (Figs. 10-11 setup)")
	fmt.Println()
	if err := report.Table(os.Stdout, headers, rows); err != nil {
		log.Fatal(err)
	}
}
