// Command sweep expands a declarative sweep specification into the full
// experiment grid, runs it on a bounded worker pool with
// content-addressed result caching, and emits a result table or CSV plus
// an aggregate summary. Re-running the same spec against a warm cache
// directory is near-free: every point reports a cache hit.
//
// -hw-file loads user-defined GPUs and systems (JSON, see
// examples/custom_hardware) into the platform registry before the spec
// resolves, so custom hardware names work as sweep axes. -validate
// parses and validates the spec — axes, strategy names, system and GPU
// names, shapes — without running anything; CI validates every example
// spec this way.
//
// Example:
//
//	sweep -spec examples/sweeps/paper_grid.json -cache .sweepcache -csv out.csv
//	sweep -validate -spec examples/sweeps/multinode_grid.json
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"syscall"

	"overlapsim/internal/hw"
	"overlapsim/internal/report"
	"overlapsim/internal/store"
	"overlapsim/internal/sweep"
	"overlapsim/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")

	var (
		specPath = flag.String("spec", "", `sweep spec JSON file ("-" reads stdin)`)
		hwFile   = flag.String("hw-file", "", "load custom GPUs/systems from this JSON file before resolving the spec")
		validate = flag.Bool("validate", false, "parse and validate the spec (axes, names, shapes) without running it")
		cacheDir = flag.String("cache", "", "content-addressed cache directory (empty = in-memory only)")
		peers    = flag.String("peers", "", "comma-separated overlapd base URLs to use as a shared result cache (read-through and write-back)")
		workers  = flag.Int("workers", 0, "concurrent simulations (0 = NumCPU)")
		csvPath  = flag.String("csv", "", "also write results as CSV to this file")
		quiet    = flag.Bool("q", false, "suppress the result table (summary only)")
		showTel  = flag.Bool("telemetry", false, "print the process telemetry (Prometheus text format) after the run")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: sweep -spec <spec.json> [flags]\n\n")
		flag.PrintDefaults()
		fmt.Fprintf(flag.CommandLine.Output(), `
example specs:
  examples/sweeps/paper_grid.json      the paper's GPU x model x strategy grid
  examples/sweeps/powercap.json        power capping (Fig. 9 style)
  examples/sweeps/tp_grid.json         tensor-parallel degree x batch x precision
  examples/sweeps/multinode_grid.json  node-count scaling over the NIC tier
`)
	}
	flag.Parse()
	if *specPath == "" {
		flag.Usage()
		log.Fatal("missing -spec")
	}
	if *hwFile != "" {
		if err := hw.LoadFile(*hwFile); err != nil {
			log.Fatal(err)
		}
	}

	var in io.Reader = os.Stdin
	if *specPath != "-" {
		f, err := os.Open(*specPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}
	spec, err := sweep.ParseSpec(in)
	if err != nil {
		log.Fatal(err)
	}

	if *validate {
		n, err := spec.Validate()
		if err != nil {
			log.Fatalf("invalid spec: %v", err)
		}
		fmt.Printf("spec %q ok: %d points\n", spec.Name, n)
		return
	}

	cache, err := store.Compose(*cacheDir, *peers)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	runner := &sweep.Runner{Workers: *workers, Cache: cache}
	res, err := runner.RunSpec(ctx, spec)
	if err != nil {
		log.Fatalf("sweep aborted: %v", err)
	}

	rows := sweep.Rows(res)
	if !*quiet {
		if err := report.SweepTable(os.Stdout, rows); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	agg := report.AggregateSweep(rows)
	fmt.Printf("%s\n", agg)
	fmt.Printf("cache: %d hits, %d misses; elapsed %s\n",
		res.CacheHits, res.CacheMisses, res.Elapsed.Round(1e6))
	if *showTel {
		fmt.Println()
		if err := telemetry.Default.WriteText(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := report.SweepCSV(f, rows); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}
	if res.Failures > 0 {
		log.Fatal(res.Err())
	}
}
