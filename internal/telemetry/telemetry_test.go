package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	g := r.Gauge("test_gauge", "a gauge")
	g.Set(2.5)
	g.Inc()
	g.Dec()
	g.Add(-0.5)
	if g.Value() != 2 {
		t.Errorf("gauge = %g, want 2", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-56.05) > 1e-9 {
		t.Errorf("sum = %g, want 56.05", h.Sum())
	}
	var b bytes.Buffer
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`test_seconds_bucket{le="0.1"} 1`,
		`test_seconds_bucket{le="1"} 3`,
		`test_seconds_bucket{le="10"} 4`,
		`test_seconds_bucket{le="+Inf"} 5`,
		`test_seconds_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("http_requests_total", "requests", "route", "code")
	v.With("/a", "200").Add(3)
	v.With("/a", "500").Inc()
	v.With("/b", "200").Inc()
	if got := v.With("/a", "200").Value(); got != 3 {
		t.Errorf("series = %d, want 3", got)
	}
	var b bytes.Buffer
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP http_requests_total requests
# TYPE http_requests_total counter
http_requests_total{route="/a",code="200"} 3
http_requests_total{route="/a",code="500"} 1
http_requests_total{route="/b",code="200"} 1
`
	if b.String() != want {
		t.Errorf("exposition:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestVecLabelArityPanics(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_total", "t", "a", "b")
	defer func() {
		if recover() == nil {
			t.Error("wrong label arity did not panic")
		}
	}()
	v.With("only-one")
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "first")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	r.Counter("dup_total", "second")
}

func TestInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"", "0starts_with_digit", "has-dash", "has space", "colon:name"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", name)
				}
			}()
			r.Counter(name, "")
		}()
	}
}

func TestLabelValueEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("test_gauge", "g", "path")
	v.With(`C:\dir"x` + "\nend").Set(1)
	var b bytes.Buffer
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `path="C:\\dir\"x\nend"`) {
		t.Errorf("escaping wrong:\n%s", b.String())
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "")
	g := r.Gauge("conc_gauge", "")
	h := r.Histogram("conc_seconds", "", nil)
	v := r.CounterVec("conc_vec_total", "", "w")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lab := string(rune('a' + w%2))
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.01)
				v.With(lab).Inc()
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != 8000 || g.Value() != 8000 || h.Count() != 8000 {
		t.Errorf("lost updates: counter=%d gauge=%g hist=%d", c.Value(), g.Value(), h.Count())
	}
	if v.With("a").Value()+v.With("b").Value() != 8000 {
		t.Errorf("vec lost updates: a=%d b=%d", v.With("a").Value(), v.With("b").Value())
	}
}

func TestSnapshotMirrorsText(t *testing.T) {
	r := NewRegistry()
	r.Counter("one_total", "one").Add(7)
	r.GaugeVec("two_gauge", "two", "k").With("v").Set(1.5)
	r.Histogram("three_seconds", "three", []float64{1}).Observe(0.5)

	snaps := r.Snapshot()
	if len(snaps) != 3 {
		t.Fatalf("%d families, want 3", len(snaps))
	}
	// Sorted by name.
	if snaps[0].Name != "one_total" || snaps[1].Name != "three_seconds" || snaps[2].Name != "two_gauge" {
		t.Errorf("family order: %s, %s, %s", snaps[0].Name, snaps[1].Name, snaps[2].Name)
	}
	if snaps[0].Samples[0].Value != 7 {
		t.Errorf("counter snapshot = %+v", snaps[0].Samples[0])
	}
	if got := snaps[2].Samples[0].Labels["k"]; got != "v" {
		t.Errorf("labels = %v", snaps[2].Samples[0].Labels)
	}
	hist := snaps[1].Samples[0]
	if hist.Count != 1 || hist.Sum != 0.5 || len(hist.Buckets) != 2 || hist.Buckets[1].LE != "+Inf" {
		t.Errorf("histogram snapshot = %+v", hist)
	}
	// The snapshot must be JSON-encodable (it backs /v1/stats).
	if _, err := json.Marshal(snaps); err != nil {
		t.Fatal(err)
	}
}

func TestHandlerServesExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("served_total", "s").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "served_total 1") {
		t.Errorf("body:\n%s", rec.Body.String())
	}
}

func TestRequestIDs(t *testing.T) {
	ctx1, id1 := WithRequestID(context.Background())
	_, id2 := WithRequestID(context.Background())
	if id1 == "" || id1 == id2 {
		t.Errorf("ids not unique: %q %q", id1, id2)
	}
	if got := RequestID(ctx1); got != id1 {
		t.Errorf("RequestID = %q, want %q", got, id1)
	}
	// An inner WithRequestID reuses the outer ID.
	ctx2, id3 := WithRequestID(ctx1)
	if id3 != id1 || RequestID(ctx2) != id1 {
		t.Errorf("nested id %q, want %q", id3, id1)
	}
	if RequestID(context.Background()) != "" {
		t.Error("empty context has an ID")
	}
}

func TestNewLogger(t *testing.T) {
	var b bytes.Buffer
	log, err := NewLogger(&b, "debug", "json")
	if err != nil {
		t.Fatal(err)
	}
	log.Debug("hello", slog.String("k", "v"))
	var entry map[string]any
	if err := json.Unmarshal(b.Bytes(), &entry); err != nil {
		t.Fatalf("log line not JSON: %v (%q)", err, b.String())
	}
	if entry["msg"] != "hello" || entry["k"] != "v" {
		t.Errorf("entry = %v", entry)
	}

	if _, err := NewLogger(&b, "nope", "text"); err == nil {
		t.Error("bad level accepted")
	}
	if _, err := NewLogger(&b, "info", "yaml"); err == nil {
		t.Error("bad format accepted")
	}
	// Info-level text logger suppresses debug records.
	b.Reset()
	log2, err := NewLogger(&b, "", "")
	if err != nil {
		t.Fatal(err)
	}
	log2.Debug("invisible")
	if b.Len() != 0 {
		t.Errorf("debug leaked through info level: %q", b.String())
	}
}
