package hw

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestIsolatedRegistryCannotShadowBuiltins pins the child-registry
// contract: a file that redefines a built-in name fails identically
// against an isolated registry and the default one, so hermetic loads
// can never resolve a built-in name to user hardware.
func TestIsolatedRegistryCannotShadowBuiltins(t *testing.T) {
	file := `{"gpus":[{"name":"H100","vendor":"NVIDIA","sms":10,"boost_mhz":1000,` +
		`"mem_gb":1,"mem_bw_gbs":100,"link_bw_gbs":10,"tdp_w":100,` +
		`"vector_tflops":{"fp32":1}}]}`
	reg := NewRegistry()
	if err := reg.Load(bytes.NewReader([]byte(file))); err == nil {
		t.Fatal("isolated registry accepted a GPU shadowing built-in H100")
	}
	sysFile := `{"systems":[{"name":"H100x8","gpu":"H100","gpus_per_node":4}]}`
	if err := NewRegistry().Load(bytes.NewReader([]byte(sysFile))); err == nil {
		t.Fatal("isolated registry accepted a system shadowing built-in H100x8")
	}
	names := NewRegistry().GPUNames()
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("GPUNames lists %q twice", n)
		}
		seen[n] = true
	}
}

// FuzzLoad feeds arbitrary bytes to the hardware-file loader: every
// input must either return an error or register valid hardware — never
// panic — and successfully loaded systems must be stable under
// System.Canonical (idempotent, and JSON round-trips to the same
// canonical form). Each iteration loads into an isolated registry, so
// the fuzzer cannot pollute the process-wide built-ins.
func FuzzLoad(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"gpus":[{"name":"X1","vendor":"NVIDIA","sms":100,"boost_mhz":1500,` +
		`"mem_gb":80,"mem_bw_gbs":2000,"link_bw_gbs":450,"tdp_w":500,` +
		`"vector_tflops":{"fp32":60},"matrix_tflops":{"fp16":900}}],` +
		`"systems":[{"name":"X1x8","gpu":"X1","gpus_per_node":8}]}`))
	f.Add([]byte(`{"systems":[{"name":"pod","gpu":"H100","gpus_per_node":8,"nodes":4,` +
		`"nic":{"bw_gbs":50}}]}`))
	f.Add([]byte(`{"systems":[{"name":"bad","gpu":"nope","gpus_per_node":8}]}`))
	f.Add([]byte(`{"gpus":[{"name":"dup","vendor":"AMD"}],"gpus":[]}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"gpus":[{"name":"neg","vendor":"NVIDIA","sms":-4}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		reg := NewRegistry()
		if err := reg.Load(bytes.NewReader(data)); err != nil {
			// Malformed input rejected cleanly: exactly the contract.
			return
		}
		for _, name := range reg.LocalSystemNames() {
			s, err := reg.System(name)
			if err != nil {
				t.Fatalf("loaded system %q does not resolve: %v", name, err)
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("loaded system %q invalid: %v", name, err)
			}
			if s.GPU == nil {
				t.Fatalf("loaded system %q has no GPU", name)
			}
			if err := s.GPU.Validate(); err != nil {
				t.Fatalf("loaded system %q carries invalid GPU: %v", name, err)
			}

			// Canonical must be idempotent...
			c := s.Canonical()
			c2 := c.Canonical()
			cj, err := json.Marshal(c)
			if err != nil {
				t.Fatalf("canonical system %q does not encode: %v", name, err)
			}
			c2j, err := json.Marshal(c2)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(cj, c2j) {
				t.Fatalf("Canonical not idempotent for %q:\n  once  %s\n  twice %s", name, cj, c2j)
			}
			// ...and the canonical JSON form must round-trip unchanged.
			var rt System
			if err := json.Unmarshal(cj, &rt); err != nil {
				t.Fatalf("canonical system %q does not decode: %v", name, err)
			}
			rtj, err := json.Marshal(rt.Canonical())
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(cj, rtj) {
				t.Fatalf("canonical JSON of %q does not round-trip:\n  before %s\n  after  %s", name, cj, rtj)
			}
		}
	})
}
