// Package core is the characterization harness — the paper's primary
// contribution turned into a library. One Config names a hardware system,
// a workload, a distribution strategy and the ablation knobs (precision,
// matrix units, power caps); Run executes the workload in both the
// overlapped and sequential modes on the simulated cluster, measures
// kernel times, overlap, power and energy exactly as §IV-D prescribes, and
// derives the paper's metrics (Equations 1–5).
package core

import (
	"context"
	"fmt"
	"strings"

	"overlapsim/internal/ddp"
	"overlapsim/internal/exec"
	"overlapsim/internal/fsdp"
	"overlapsim/internal/gpu"
	"overlapsim/internal/hw"
	"overlapsim/internal/metrics"
	"overlapsim/internal/model"
	"overlapsim/internal/pipeline"
	"overlapsim/internal/power"
	"overlapsim/internal/precision"
)

// Parallelism selects the distribution strategy.
type Parallelism int

// Distribution strategies (§II-B).
const (
	// FSDP is fully sharded data parallelism (ZeRO-3).
	FSDP Parallelism = iota
	// Pipeline is pipeline parallelism.
	Pipeline
	// DDP is classic replicated data parallelism with bucketed gradient
	// all-reduce — the baseline strategy FSDP improves on.
	DDP
)

// String returns the strategy name.
func (p Parallelism) String() string {
	switch p {
	case FSDP:
		return "FSDP"
	case Pipeline:
		return "PP"
	case DDP:
		return "DDP"
	default:
		return fmt.Sprintf("Parallelism(%d)", int(p))
	}
}

// ParseParallelism maps the conventional CLI/API names onto a strategy:
// "fsdp", "pp"/"pipeline" and "ddp" (case-insensitive).
func ParseParallelism(name string) (Parallelism, error) {
	switch strings.ToLower(name) {
	case "fsdp":
		return FSDP, nil
	case "pp", "pipeline":
		return Pipeline, nil
	case "ddp":
		return DDP, nil
	default:
		return 0, fmt.Errorf("core: unknown parallelism %q (have fsdp, pp, ddp)", name)
	}
}

// Parallelisms lists the supported strategies in the paper's order.
func Parallelisms() []Parallelism { return []Parallelism{FSDP, Pipeline, DDP} }

// Config describes one characterization experiment.
type Config struct {
	// System is the GPU node.
	System hw.System
	// Model is the workload (Table II).
	Model model.Config
	// Parallelism is the distribution strategy.
	Parallelism Parallelism
	// Batch is the batch size: per-GPU for FSDP, per-pipeline for
	// pipeline parallelism.
	Batch int
	// MicroBatch is the pipeline microbatch size (pipeline only; 0 picks
	// the default).
	MicroBatch int
	// Format is the training precision (the paper's default is FP16).
	Format precision.Format
	// MatrixUnits enables Tensor-Core/Matrix-Core GEMM execution; the
	// Fig. 11 ablation toggles this with FP32/TF32.
	MatrixUnits bool
	// NoCheckpoint disables activation recomputation (on by default, as
	// in the Megatron/DeepSpeed configurations of this model scale).
	NoCheckpoint bool
	// GradAccumSteps enables gradient accumulation under FSDP (§II-B
	// mitigation; 0 or 1 disables).
	GradAccumSteps int
	// Iterations is the number of measured iterations (0 means 2).
	Iterations int
	// Warmup is the number of unmeasured iterations (0 means 1).
	Warmup int
	// Caps are the power/frequency limits (Fig. 9).
	Caps power.Caps
	// TraceInterval, when nonzero, records per-GPU power traces at this
	// interval (Fig. 7 uses power.TraceInterval).
	TraceInterval float64
	// JitterSigma adds run-to-run kernel-time variation; Seed seeds it.
	JitterSigma float64
	Seed        int64
	// SkipMemoryCheck disables the HBM feasibility gate.
	SkipMemoryCheck bool
}

// Label returns a compact human-readable description of the experiment.
func (c Config) Label() string {
	return fmt.Sprintf("%s %s %s bs=%d %s", c.System.Name, c.Parallelism, c.Model.Name, c.Batch, c.Format)
}

// ModeResult is the measurement of one execution mode.
type ModeResult struct {
	// Mode is the executed mode.
	Mode exec.Mode
	// Mean is the average of the measured iterations.
	Mean metrics.Iteration
	// Iterations are the individual measured iterations.
	Iterations []metrics.Iteration
	// GPUPower is per-GPU power telemetry for the whole run.
	GPUPower []power.Stats
	// AvgTDP and PeakTDP aggregate power across GPUs (mean of averages,
	// max of peaks) normalized to TDP — the Fig. 6 quantities.
	AvgTDP, PeakTDP float64
	// EnergyJ is total energy across GPUs.
	EnergyJ float64
	// Traces holds per-GPU fine-grained power samples when tracing was
	// requested.
	Traces [][]power.Sample
	// OverlapRatio is Eq. 2 measured on this mode's trace.
	OverlapRatio float64
}

// Result is a full characterization: both modes plus derived metrics.
type Result struct {
	// Config echoes the experiment.
	Config Config
	// Overlapped and Sequential are the two measured modes.
	Overlapped, Sequential ModeResult
	// Char holds the derived Eq. 1–5 metrics.
	Char metrics.Characterization
}

// RunMode executes the experiment in a single mode on a fresh cluster.
// Cancelling ctx aborts the simulation between epochs and returns
// ctx.Err().
func RunMode(ctx context.Context, cfg Config, mode exec.Mode) (*ModeResult, error) {
	cl, err := gpu.New(gpu.Config{
		System:        cfg.System,
		Caps:          cfg.Caps,
		TraceInterval: cfg.TraceInterval,
		JitterSigma:   cfg.JitterSigma,
		Seed:          cfg.Seed,
	})
	if err != nil {
		return nil, err
	}

	var plan *exec.Plan
	switch cfg.Parallelism {
	case FSDP:
		plan, err = fsdp.Build(cl, fsdp.Config{
			Model:           cfg.Model,
			Batch:           cfg.Batch,
			Format:          cfg.Format,
			MatrixUnits:     cfg.MatrixUnits,
			Checkpoint:      !cfg.NoCheckpoint,
			GradAccumSteps:  cfg.GradAccumSteps,
			Iterations:      cfg.Iterations,
			Warmup:          cfg.Warmup,
			Mode:            mode,
			SkipMemoryCheck: cfg.SkipMemoryCheck,
		})
	case DDP:
		plan, err = ddp.Build(cl, ddp.Config{
			Model:           cfg.Model,
			Batch:           cfg.Batch,
			Format:          cfg.Format,
			MatrixUnits:     cfg.MatrixUnits,
			Checkpoint:      !cfg.NoCheckpoint,
			Iterations:      cfg.Iterations,
			Warmup:          cfg.Warmup,
			Mode:            mode,
			SkipMemoryCheck: cfg.SkipMemoryCheck,
		})
	case Pipeline:
		plan, err = pipeline.Build(cl, pipeline.Config{
			Model:           cfg.Model,
			Batch:           cfg.Batch,
			MicroBatch:      cfg.MicroBatch,
			Format:          cfg.Format,
			MatrixUnits:     cfg.MatrixUnits,
			Checkpoint:      !cfg.NoCheckpoint,
			Iterations:      cfg.Iterations,
			Warmup:          cfg.Warmup,
			Mode:            mode,
			SkipMemoryCheck: cfg.SkipMemoryCheck,
		})
	default:
		return nil, fmt.Errorf("core: unknown parallelism %v", cfg.Parallelism)
	}
	if err != nil {
		return nil, err
	}
	if err := plan.RunContext(ctx); err != nil {
		return nil, fmt.Errorf("core: %s (%v): %w", cfg.Label(), mode, err)
	}

	res := &ModeResult{Mode: mode, Iterations: plan.MeasuredIterations()}
	res.Mean = metrics.Mean(res.Iterations)
	res.OverlapRatio = res.Mean.OverlapRatio()
	for i := 0; i < cl.N(); i++ {
		st := cl.PowerStats(i)
		res.GPUPower = append(res.GPUPower, st)
		res.AvgTDP += st.AvgTDP / float64(cl.N())
		if st.PeakTDP > res.PeakTDP {
			res.PeakTDP = st.PeakTDP
		}
		res.EnergyJ += st.EnergyJ
		if tr := cl.Trace(i); tr != nil {
			res.Traces = append(res.Traces, tr.Samples())
		}
	}
	return res, nil
}

// Run executes the experiment in both modes and derives the paper's
// characterization metrics. Cancelling ctx aborts the in-flight
// simulation and returns ctx.Err().
func Run(ctx context.Context, cfg Config) (*Result, error) {
	ovl, err := RunMode(ctx, cfg, exec.Overlapped)
	if err != nil {
		return nil, err
	}
	seq, err := RunMode(ctx, cfg, exec.Sequential)
	if err != nil {
		return nil, err
	}
	return &Result{
		Config:     cfg,
		Overlapped: *ovl,
		Sequential: *seq,
		Char:       metrics.Characterize(seq.Mean, ovl.Mean),
	}, nil
}
