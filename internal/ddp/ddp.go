// Package ddp implements classic data-parallel training (PyTorch DDP) as
// the baseline distribution strategy: every GPU holds a full replica;
// gradients are all-reduced in fixed-size buckets that overlap the
// remainder of the backward pass, exactly the "asynchronous gradient
// communication" baseline the FSDP and pipeline strategies of the paper
// are measured against. It reuses the same cluster, kernel and collective
// substrates, so DDP results are directly comparable with the paper's two
// strategies.
//
// The package registers itself with the strategy registry under "ddp".
package ddp

import (
	"fmt"

	"overlapsim/internal/collective"
	"overlapsim/internal/exec"
	"overlapsim/internal/gpu"
	"overlapsim/internal/kernels"
	"overlapsim/internal/model"
	"overlapsim/internal/precision"
	"overlapsim/internal/sim"
	"overlapsim/internal/strategy"
)

// Strategy implements strategy.Strategy for DDP.
type Strategy struct{}

func init() { strategy.Register(Strategy{}) }

// Name implements strategy.Strategy.
func (Strategy) Name() string { return "ddp" }

// Describe implements strategy.Strategy.
func (Strategy) Describe() strategy.Info {
	return strategy.Info{
		Name:    "ddp",
		Display: "DDP",
		Summary: "replicated data parallelism: bucketed gradient all-reduce overlapping the backward pass",
	}
}

// Build implements strategy.Strategy.
func (Strategy) Build(cl *gpu.Cluster, p strategy.Params) (*exec.Plan, error) {
	return Build(cl, p)
}

func withDefaults(p strategy.Params) strategy.Params {
	p = p.WithCommonDefaults()
	if p.BucketBytes <= 0 {
		p.BucketBytes = 25 << 20
	}
	return p
}

// FootprintDDP estimates per-GPU memory: the full (unsharded) replica
// plus optimizer state and activations — the reason DDP cannot train the
// paper's larger models at all and FSDP exists.
func FootprintDDP(m model.Config, local int, f precision.Format, checkpoint bool) model.MemoryEstimate {
	// Equivalent to FSDP over a single GPU (no sharding).
	return m.FootprintFSDP(local, 1, f, checkpoint)
}

// Build constructs the multi-iteration DDP task graph on a fresh engine
// bound to the cluster.
func Build(cl *gpu.Cluster, p strategy.Params) (*exec.Plan, error) {
	p = withDefaults(p)
	if err := p.Model.Validate(); err != nil {
		return nil, err
	}
	g := cl.GPU()
	n := cl.N()
	if p.Batch%n != 0 {
		return nil, fmt.Errorf("ddp: global batch %d not divisible by %d GPUs", p.Batch, n)
	}
	local := p.Batch / n
	if !p.SkipMemoryCheck {
		est := FootprintDDP(p.Model, local, p.Format, p.Checkpoint)
		if est.Total() > g.MemBytes() {
			return nil, &model.ErrOOM{
				Model:     fmt.Sprintf("%s (DDP bs=%d %s)", p.Model.Name, p.Batch, p.Format),
				GPU:       g.Name,
				NeedBytes: est.Total(),
				HaveBytes: g.MemBytes(),
			}
		}
	}

	eng := sim.NewEngine(cl)
	eng.AddObserver(cl)
	total := p.Warmup + p.Iterations
	L := p.Model.Layers
	// Per iteration: L forward + L backward layers and the head pair of n
	// computes each, at most L+1 gradient buckets, and the optimizer.
	estimate := total * (2*L*n + 3*n + L + 2)
	b := &builder{cfg: p, eng: eng, cl: cl, n: n, local: local,
		batch: exec.NewBatch(eng, estimate)}
	b.prepare()
	plan := &exec.Plan{Engine: eng, Cluster: cl, Warmup: p.Warmup, Symmetry: exec.SymmetryRanks}
	for it := 0; it < p.Warmup+p.Iterations; it++ {
		plan.Iterations = append(plan.Iterations, b.buildIteration(it))
	}
	return plan, nil
}

type builder struct {
	cfg   strategy.Params
	eng   *sim.Engine
	cl    *gpu.Cluster
	batch *exec.Batch
	n     int
	local int

	computeS []*sim.Stream
	commS    *sim.Stream
	chain    *exec.Chain
	prep     *collective.Preparer

	prevIterEnd []*sim.Task
}

func (b *builder) sequential() bool { return b.cfg.Mode == exec.Sequential }

func (b *builder) prepare() {
	for d := 0; d < b.n; d++ {
		b.computeS = append(b.computeS, b.eng.NewStream(fmt.Sprintf("compute%d", d), d))
	}
	if b.sequential() {
		b.chain = exec.NewChain()
	} else {
		b.commS = b.eng.NewStream("comm.allreduce", 0)
	}
	b.prevIterEnd = make([]*sim.Task, b.n)
}

func (b *builder) allDevices() []int {
	devs := make([]int, b.n)
	for i := range devs {
		devs[i] = i
	}
	return devs
}

func (b *builder) newCompute(name string, op exec.Op) []*sim.Task {
	return b.batch.Compute(name, op, b.computeS, b.chain)
}

func (b *builder) newAllReduce(name string, bytes float64) *sim.Task {
	cd := collective.Desc{Name: name, Op: collective.AllReduce, Bytes: bytes, N: b.n}
	if b.prep == nil {
		b.prep = collective.NewPreparer(b.cl.Fabric())
	}
	cd, work := b.prep.Prepare(cd)
	if b.sequential() {
		s := b.eng.NewStream("seqcomm."+name, 0)
		t := b.batch.Task(name, sim.KindComm, work, cd, s)
		b.chain.Order(t, b.allDevices()...)
		return t
	}
	return b.batch.Task(name, sim.KindComm, work, cd, b.commS)
}

func after(ts []*sim.Task, deps ...*sim.Task) {
	for _, t := range ts {
		t.After(deps...)
	}
}

// buildIteration appends one DDP iteration: full forward, then backward
// layer by layer with gradient buckets all-reduced as they fill, then the
// optimizer step gated on the last reduction.
func (b *builder) buildIteration(it int) []*sim.Task {
	m := b.cfg.Model
	L := m.Layers
	e := float64(b.cfg.Format.Bytes())
	start := len(b.eng.Tasks())

	fwdOp := exec.KernelOp(kernels.Fuse("fwd.layer", m.ForwardLayerKernels(b.local, b.cfg.Format, b.cfg.MatrixUnits)...))
	bwdOp := exec.KernelOp(kernels.Fuse("bwd.layer", m.BackwardLayerKernels(b.local, b.cfg.Format, b.cfg.MatrixUnits, b.cfg.Checkpoint)...))
	headFOp := exec.KernelOp(kernels.Fuse("fwd.head", m.HeadKernels(b.local, b.cfg.Format, b.cfg.MatrixUnits, true)...))
	headBOp := exec.KernelOp(kernels.Fuse("bwd.head", m.HeadKernels(b.local, b.cfg.Format, b.cfg.MatrixUnits, false)...))

	barrier := func(ts []*sim.Task) {
		for _, t := range ts {
			for _, p := range b.prevIterEnd {
				if p != nil {
					t.After(p)
				}
			}
		}
	}

	// Forward.
	fwdPrefix := fmt.Sprintf("it%d.fwd.l", it)
	var prev []*sim.Task
	for i := 0; i < L; i++ {
		f := b.newCompute(b.batch.Name(fwdPrefix, i), fwdOp)
		if i == 0 {
			barrier(f)
		} else {
			for d, t := range f {
				t.After(prev[d])
			}
		}
		prev = f
	}
	hf := b.newCompute(fmt.Sprintf("it%d.fwd.head", it), headFOp)
	for d, t := range hf {
		t.After(prev[d])
	}
	hb := b.newCompute(fmt.Sprintf("it%d.bwd.head", it), headBOp)
	for d, t := range hb {
		t.After(hf[d])
	}
	prev = hb

	// Backward with bucketed all-reduce overlap.
	layerGradBytes := m.ParamsPerLayer() * e
	pending := m.EmbedParams() * e // head/embedding grads are ready first
	var reduces []*sim.Task
	bucket := 0
	bwdPrefix := fmt.Sprintf("it%d.bwd.l", it)
	arPrefix := fmt.Sprintf("it%d.ar.bucket", it)
	for i := L - 1; i >= 0; i-- {
		bw := b.newCompute(b.batch.Name(bwdPrefix, i), bwdOp)
		for d, t := range bw {
			t.After(prev[d])
		}
		prev = bw
		pending += layerGradBytes
		if pending >= b.cfg.BucketBytes || i == 0 {
			ar := b.newAllReduce(b.batch.Name(arPrefix, bucket), pending)
			after([]*sim.Task{ar}, bw...)
			reduces = append(reduces, ar)
			pending = 0
			bucket++
		}
	}

	// Optimizer over the full replica.
	opt := b.newCompute(fmt.Sprintf("it%d.opt", it), exec.KernelOp(m.OptimizerKernel(m.TotalParams())))
	for d, t := range opt {
		t.After(prev[d])
		t.After(reduces[len(reduces)-1])
	}
	b.prevIterEnd = opt

	return b.eng.Tasks()[start:]
}
