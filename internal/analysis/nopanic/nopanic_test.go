package nopanic_test

import (
	"testing"

	"overlapsim/internal/analysis/driver"
	"overlapsim/internal/analysis/drivertest"
	"overlapsim/internal/analysis/nopanic"
)

// TestCorpus runs the default (nil) scope: corpus/internal/lib is
// checked because its path has an internal element, corpus/pub is not.
func TestCorpus(t *testing.T) {
	drivertest.Run(t, "testdata/src/corpus", []*driver.Analyzer{nopanic.New(nil)})
}

// TestExplicitScope pins the listed-packages mode: with only corpus/pub
// listed, its panic is flagged and internal/lib's are not.
func TestExplicitScope(t *testing.T) {
	prog, err := driver.Load("testdata/src/corpus", nil)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := prog.Run([]*driver.Analyzer{nopanic.New([]string{"corpus/pub"})})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want exactly the one panic in corpus/pub: %v", len(findings), findings)
	}
}
