package opt

import (
	"fmt"
	"math/rand"
	"testing"
)

func TestDominates(t *testing.T) {
	cases := []struct {
		a, b []float64
		want bool
	}{
		{[]float64{1, 1}, []float64{2, 2}, true},
		{[]float64{1, 2}, []float64{1, 3}, true},
		{[]float64{1, 1}, []float64{1, 1}, false}, // equal: no strict component
		{[]float64{1, 3}, []float64{2, 2}, false}, // trade-off: incomparable
		{[]float64{2, 2}, []float64{1, 1}, false},
	}
	for _, tc := range cases {
		if got := Dominates(tc.a, tc.b); got != tc.want {
			t.Errorf("Dominates(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestFrontEdgeCases(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		if got := Front(nil, nil); len(got) != 0 {
			t.Errorf("Front(nil) = %v, want empty", got)
		}
	})
	t.Run("single point", func(t *testing.T) {
		got := Front([][]float64{{3, 4}}, []string{"a"})
		if len(got) != 1 || got[0] != 0 {
			t.Errorf("Front(single) = %v, want [0]", got)
		}
	})
	t.Run("one dominates all", func(t *testing.T) {
		vecs := [][]float64{{5, 5}, {1, 1}, {3, 2}, {2, 9}}
		got := Front(vecs, []string{"a", "b", "c", "d"})
		if len(got) != 1 || got[0] != 1 {
			t.Errorf("Front = %v, want only index 1 ({1,1})", got)
		}
	})
	t.Run("exact ties pick the smallest key", func(t *testing.T) {
		vecs := [][]float64{{2, 2}, {1, 3}, {2, 2}}
		// Indices 0 and 2 tie exactly; the smaller key must win,
		// regardless of input position.
		got := Front(vecs, []string{"zz", "mid", "aa"})
		if len(got) != 2 {
			t.Fatalf("Front = %v, want 2 points", got)
		}
		for _, i := range got {
			if i == 0 {
				t.Errorf("Front kept index 0 (key zz) over its duplicate index 2 (key aa)")
			}
		}
	})
	t.Run("all mutually non-dominated", func(t *testing.T) {
		vecs := [][]float64{{1, 4}, {2, 3}, {3, 2}, {4, 1}}
		got := Front(vecs, []string{"a", "b", "c", "d"})
		if len(got) != 4 {
			t.Errorf("Front = %v, want all 4 points", got)
		}
	})
}

// The frontier is deterministically ordered: lexicographic by vector,
// independent of input order.
func TestFrontDeterministicOrder(t *testing.T) {
	vecs := [][]float64{{3, 1}, {1, 3}, {2, 2}}
	keys := []string{"c", "a", "b"}
	got := Front(vecs, keys)
	want := []int{1, 2, 0} // {1,3} then {2,2} then {3,1}
	if len(got) != len(want) {
		t.Fatalf("Front = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Front = %v, want %v", got, want)
		}
	}
}

// Property test: over random vector sets (drawn from a small discrete
// grid so ties and dominance both occur), the frontier is exactly the
// non-dominated, duplicate-collapsed subset — no member is dominated by
// any input, every excluded input is dominated by or duplicates a
// member — and is invariant under permutation of the input order.
func TestFrontProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(40)
		d := 1 + rng.Intn(3)
		vecs := make([][]float64, n)
		keys := make([]string, n)
		for i := range vecs {
			v := make([]float64, d)
			for j := range v {
				v[j] = float64(rng.Intn(5))
			}
			vecs[i] = v
			keys[i] = fmt.Sprintf("k%03d", i)
		}
		front := Front(vecs, keys)
		inFront := make(map[int]bool, len(front))
		for _, i := range front {
			inFront[i] = true
		}
		for _, i := range front {
			for j := range vecs {
				if Dominates(vecs[j], vecs[i]) {
					t.Fatalf("trial %d: frontier member %d (%v) dominated by %d (%v)",
						trial, i, vecs[i], j, vecs[j])
				}
			}
		}
		for j := range vecs {
			if inFront[j] {
				continue
			}
			covered := false
			for _, i := range front {
				if Dominates(vecs[i], vecs[j]) || equalVec(vecs[i], vecs[j]) {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("trial %d: excluded vector %d (%v) neither dominated nor duplicated by the frontier",
					trial, j, vecs[j])
			}
		}

		// Permutation invariance: shuffle and compare the selected
		// (vector, key) sequences.
		perm := rng.Perm(n)
		pv := make([][]float64, n)
		pk := make([]string, n)
		for to, from := range perm {
			pv[to] = vecs[from]
			pk[to] = keys[from]
		}
		pfront := Front(pv, pk)
		if len(pfront) != len(front) {
			t.Fatalf("trial %d: frontier size changed under permutation: %d vs %d",
				trial, len(front), len(pfront))
		}
		for i := range front {
			if keys[front[i]] != pk[pfront[i]] {
				t.Fatalf("trial %d: frontier order changed under permutation at %d: %s vs %s",
					trial, i, keys[front[i]], pk[pfront[i]])
			}
		}
	}
}
