package core

import (
	"encoding/json"
	"testing"

	"overlapsim/internal/hw"
	"overlapsim/internal/model"
	"overlapsim/internal/power"
	"overlapsim/internal/precision"
)

// The strategy-registry redesign changed Parallelism from a closed int
// enum to a registry-name string. Canonical fingerprints are content
// addresses for persisted caches, so the encoding of every pre-redesign
// config must stay byte-identical: the values below were produced by the
// enum-based implementation (PR 1) and must never change. A failure here
// means existing DirCache entries silently stopped resolving.
func TestFingerprintStableAcrossRedesign(t *testing.T) {
	cases := map[string]struct {
		cfg  Config
		want string
	}{
		"fsdp-tiny": {tinyCfg(FSDP), "58a2ac4a1ae98dddd5a760a8d09b47a28f504651de154485f523b105d9c97eec"},
		"pp-tiny":   {tinyCfg(Pipeline), "7bd08185eeab6d60c88d3acbd5e569720fc8a7bc41b948b4306115dcba95382a"},
		"ddp-tiny":  {tinyCfg(DDP), "5c60d828ee99077a4f8e5a84f5a6edd1e99f70e8525d3701b9fd9c9f01185889"},
		"fsdp-knobs": {
			Config{System: hw.SystemH100x8(), Model: model.GPT3XL(), Parallelism: FSDP, Batch: 16,
				Format: precision.BF16, MatrixUnits: true, GradAccumSteps: 4, Caps: power.Caps{PowerW: 400}},
			"02e7114ba518e252a0c70781943da1ea585cc82bcee0cff954e3a30af5b96c7e",
		},
		"pp-micro": {
			Config{System: hw.SystemA100x4(), Model: model.GPT3_2_7B(), Parallelism: Pipeline, Batch: 32,
				MicroBatch: 4, Format: precision.FP16, MatrixUnits: true},
			"0ee2bef51fc6b884d4aeb077573443e92dd2ad8fbe8c6fb7930ec0a40c57d79c",
		},
		"ddp-vec": {
			Config{System: hw.SystemMI250x4(), Model: model.GPT3XL(), Parallelism: DDP, Batch: 8,
				Format: precision.FP32, MatrixUnits: false, NoCheckpoint: true},
			"5ddf7b48945f2fabd2f442f8ce7e56a9add92bb126a957cce6ed5140d2206d5c",
		},
		// Jittered configs are the one deliberate exception to
		// pre-redesign stability: the platform redesign gave each
		// execution mode an independent seed-derived jitter stream, so
		// their measurements changed and CanonicalJSON salts the encoding
		// ("per-mode-v2") to retire stale cache entries. This hash pins
		// the salted encoding; the deterministic cases above must stay on
		// their PR-1 values forever.
		"fsdp-jitter": {
			Config{System: hw.SystemH100x4(), Model: model.LLaMA2_13B(), Parallelism: FSDP, Batch: 8,
				Format: precision.FP16, MatrixUnits: true, JitterSigma: 0.02, Seed: 9, Iterations: 3, Warmup: 2},
			"2ae34acab1395144d52676869ca48b37d352556dfbe0fcb6047c67e0dff63489",
		},
	}
	for name, tc := range cases {
		got := mustFingerprint(t, tc.cfg)
		if got != tc.want {
			t.Errorf("%s: fingerprint drifted from pre-redesign value:\n got %s\nwant %s", name, got, tc.want)
		}
	}

	// Registry names, their legacy constants and alias spellings are the
	// same experiment, so they must share an address.
	ppName := tinyCfg(Pipeline)
	ppName.Parallelism = "pipeline" // alias
	if mustFingerprint(t, ppName) != cases["pp-tiny"].want {
		t.Error("alias spelling \"pipeline\" hashes differently from the pp constant")
	}
	upper := tinyCfg(FSDP)
	upper.Parallelism = "FSDP"
	if mustFingerprint(t, upper) != cases["fsdp-tiny"].want {
		t.Error("case variant \"FSDP\" hashes differently from \"fsdp\"")
	}
}

// The canonical JSON of legacy strategies must carry the historical enum
// integer — the literal bytes the fingerprint covers — and a config must
// round-trip through JSON with its strategy intact.
func TestParallelismJSONRoundTrip(t *testing.T) {
	for p, want := range map[Parallelism]string{FSDP: "0", Pipeline: "1", DDP: "2"} {
		b, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		if string(b) != want {
			t.Errorf("%s marshals to %s, want legacy enum %s", p, b, want)
		}
		var back Parallelism
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if back != p {
			t.Errorf("%s round-tripped to %s", p, back)
		}
	}
	b, err := json.Marshal(Parallelism("tp"))
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"tp"` {
		t.Errorf("tp marshals to %s, want its registry name", b)
	}
	var back Parallelism
	if err := json.Unmarshal([]byte(`"PIPELINE"`), &back); err != nil {
		t.Fatal(err)
	}
	if back != Pipeline {
		t.Errorf("alias unmarshalled to %q, want pp", back)
	}
	if err := json.Unmarshal([]byte(`7`), &back); err == nil {
		t.Error("unknown legacy enum must fail to unmarshal")
	}
}
