// Package malformed holds directives the driver must reject: a bad
// verb, a missing reason, and an unknown analyzer name. None of them
// suppress the finding below.
package malformed

//overlaplint:deny flagbad no such verb

//overlaplint:allow flagbad

//overlaplint:allow nosuchanalyzer because reasons

//overlaplint:allow flagbad this one is fine but sits nowhere near a finding

func Bad() int { return 1 }
