// Command overlapd serves the characterization harness over HTTP/JSON:
// synchronous single experiments, asynchronous sweep and advisor jobs
// with progress polling, SSE streams and cancellation, and catalog
// discovery, all backed by one content-addressed result cache
// (optionally persisted to disk). Operational surfaces — Prometheus
// metrics, a JSON stats mirror, optional pprof, structured request logs
// — are documented in the README's "Operating overlapd" section;
// -state-dir durability and the -peers cache mesh in "Scaling out".
//
// Example:
//
//	overlapd -addr :8080 -state-dir .overlapd &
//	overlapd -addr :8081 -peers http://localhost:8080 &
//	curl -s localhost:8080/v1/catalog
//	curl -s -X POST localhost:8080/v1/experiments \
//	    -d '{"gpu":"H100","model":"GPT-3 XL","parallelism":"fsdp","batch":16}'
//	curl -s -X POST localhost:8080/v1/sweeps -d @examples/sweeps/paper_grid.json
//	curl -s localhost:8080/v1/sweeps/sweep-000001
//	curl -sN localhost:8080/v1/sweeps/sweep-000001/events
//	curl -s localhost:8080/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"overlapsim/internal/hw"
	"overlapsim/internal/service"
	"overlapsim/internal/store"
	"overlapsim/internal/sweep"
	"overlapsim/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("overlapd: ")

	var (
		addr        = flag.String("addr", ":8080", "listen address")
		hwFile      = flag.String("hw-file", "", "load custom GPUs/systems from this JSON file into the served catalog")
		cacheDir    = flag.String("cache", "", "content-addressed cache directory (empty = in-memory, or <state-dir>/cache with -state-dir)")
		stateDir    = flag.String("state-dir", "", "durable state directory: job journal (and default cache) live here, so jobs survive restarts")
		peers       = flag.String("peers", "", "comma-separated peer overlapd base URLs (e.g. http://b:8080,http://c:8080); replicas form a cache mesh sharded by content address")
		workers     = flag.Int("workers", 0, "concurrent simulations per sweep (0 = NumCPU)")
		maxPts      = flag.Int("max-points", service.DefaultMaxSweepPoints, "largest sweep grid a job may submit")
		logLevel    = flag.String("log-level", "info", "log level: debug, info, warn or error")
		logFormat   = flag.String("log-format", "text", "log format: text or json")
		enablePprof = flag.Bool("pprof", false, "serve net/http/pprof profiles under /debug/pprof/")
		drain       = flag.Duration("drain", 10*time.Second, "graceful-shutdown budget: how long to wait for in-flight requests and jobs")
	)
	flag.Parse()

	logger, err := telemetry.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		log.Fatal(err)
	}

	if *hwFile != "" {
		if err := hw.LoadFile(*hwFile); err != nil {
			log.Fatal(err)
		}
	}

	// Local tiers: memory in front, optionally a durable directory behind
	// it. -state-dir implies a durable cache — resumed jobs depend on it
	// to skip the points that completed before the restart.
	if *cacheDir == "" && *stateDir != "" {
		*cacheDir = filepath.Join(*stateDir, "cache")
	}
	tiers := []sweep.Cache{sweep.NewMemCache()}
	if *cacheDir != "" {
		dc, err := sweep.NewDirCache(*cacheDir)
		if err != nil {
			log.Fatal(err)
		}
		tiers = append(tiers, dc)
	}
	local := store.NewTiered(tiers...)

	// The full lookup path adds the peer mesh as the slowest tier. The
	// peer protocol itself serves only the local tiers, so replicas
	// pointing at each other never recurse.
	var cache sweep.Cache = local
	if list := store.SplitPeers(*peers); len(list) > 0 {
		hc, err := store.NewHTTPCache(list, nil)
		if err != nil {
			log.Fatal(err)
		}
		cache = store.NewTiered(append(local.Tiers(), hc)...)
		logger.Info("cache mesh enabled", slog.Any("peers", hc.Peers()))
	}

	var journal *store.Journal
	if *stateDir != "" {
		if err := os.MkdirAll(*stateDir, 0o755); err != nil {
			log.Fatal(err)
		}
		journal, err = store.OpenJournal(filepath.Join(*stateDir, "jobs.journal"))
		if err != nil {
			log.Fatal(err)
		}
		defer journal.Close()
		logger.Info("job journal open",
			slog.String("path", journal.Path()),
			slog.Int("records", len(journal.Records())),
			slog.Int64("skipped_bytes", journal.SkippedBytes()))
	}

	srv := service.New(service.Options{
		Cache: cache, LocalCache: local, Journal: journal,
		Workers: *workers, MaxSweepPoints: *maxPts,
		Logger: logger,
	})
	mux := http.NewServeMux()
	mux.Handle("/", srv)
	if *enablePprof {
		// Gated behind a flag: profiles expose internals and cost CPU, so
		// production deployments opt in explicitly.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		logger.Info("pprof enabled", slog.String("path", "/debug/pprof/"))
	}
	hs := &http.Server{Addr: *addr, Handler: mux}

	// Graceful shutdown on SIGINT/SIGTERM: stop accepting, let in-flight
	// requests finish, cancel background jobs and drain their workers —
	// all within the -drain budget. A second signal aborts immediately
	// via the default disposition because stop() restores it.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		stop()
		logger.Info("shutting down", slog.Duration("drain", *drain))
		sctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			logger.Warn("http drain incomplete", slog.Any("err", err))
		}
		if err := srv.Shutdown(sctx); err != nil {
			logger.Warn("job drain incomplete", slog.Any("err", err))
		}
	}()

	logger.Info("listening", slog.String("addr", *addr))
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	// ListenAndServe returns as soon as Shutdown begins; wait for the
	// drain (and the background sweep jobs) to actually finish.
	<-done
}
