package overlapsim_bench

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"overlapsim/internal/core"
	"overlapsim/internal/exec"
	"overlapsim/internal/hw"
	"overlapsim/internal/model"
	"overlapsim/internal/precision"
	"overlapsim/internal/workload"
)

// The golden differential test pins the engine's numerical output: it
// hashes every task's (name, start, end) across the paper's main grid
// plus a 4-node × 8-GPU FSDP run, and compares the digests against
// testdata/engine_golden.json. Any scheduling or floating-point change —
// however small — flips a digest, so engine refactors must reproduce the
// committed digests bit for bit. Regenerate deliberately with
//
//	go test -run TestGoldenEngineDigests -update-golden
//
// and justify the diff in the commit message.
var updateGolden = flag.Bool("update-golden", false,
	"rewrite testdata/engine_golden.json from the current engine")

const goldenPath = "testdata/engine_golden.json"

// goldenEntry is one config's digest in the golden file.
type goldenEntry struct {
	Label  string `json:"label"`
	Digest string `json:"digest"`
}

// goldenMultiNode is the multi-node configuration hashed alongside the
// main grid: the BenchmarkMultiNodeFSDP shape, one measured iteration.
func goldenMultiNode() core.Config {
	return core.Config{
		System:      hw.NewMultiNode(hw.H100(), 8, 4),
		Model:       model.GPT3_13B(),
		Parallelism: "fsdp",
		Batch:       64,
		Format:      precision.FP16,
		MatrixUnits: true,
		Iterations:  1,
		Warmup:      0,
	}
}

func goldenConfigs() []core.Config {
	return append(workload.MainGrid(), goldenMultiNode())
}

// digestConfig runs both execution modes of one config and hashes every
// task's (name, start, end) in creation order. Infeasible configs hash a
// fixed "oom" marker so grid shape changes are still caught; any other
// build or run error fails the caller.
func digestConfig(cfg core.Config) (string, error) {
	h := sha256.New()
	var buf [8]byte
	for _, mode := range []exec.Mode{exec.Overlapped, exec.Sequential} {
		fmt.Fprintf(h, "mode=%d\n", int(mode))
		plan, err := core.BuildPlan(cfg, mode)
		if err != nil {
			var oom *model.ErrOOM
			if errors.As(err, &oom) {
				fmt.Fprintf(h, "oom\n")
				continue
			}
			return "", fmt.Errorf("%s (%v): build: %w", cfg.Label(), mode, err)
		}
		if err := plan.Run(); err != nil {
			return "", fmt.Errorf("%s (%v): run: %w", cfg.Label(), mode, err)
		}
		for _, t := range plan.Engine.Tasks() {
			h.Write([]byte(t.Name()))
			h.Write([]byte{0})
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(t.Start()))
			h.Write(buf[:])
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(t.End()))
			h.Write(buf[:])
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// digestConfigs runs the configs on a worker pool (each point is an
// independent simulation, so parallelism cannot affect the digests).
func digestConfigs(t *testing.T, cfgs []core.Config) []goldenEntry {
	t.Helper()
	entries := make([]goldenEntry, len(cfgs))
	errs := make([]error, len(cfgs))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < runtime.GOMAXPROCS(0); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				d, err := digestConfig(cfgs[i])
				entries[i] = goldenEntry{Label: cfgs[i].Label(), Digest: d}
				errs[i] = err
			}
		}()
	}
	for i := range cfgs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	return entries
}

// TestGoldenEngineDigests is the safety net for engine refactors: the
// simulated schedules of the whole characterization grid must reproduce
// the committed digests exactly.
func TestGoldenEngineDigests(t *testing.T) {
	cfgs := goldenConfigs()
	if raceEnabled && !*updateGolden {
		// Under the race detector the full grid is ~10× slower and adds no
		// coverage beyond the non-race run; keep a deterministic subset
		// plus the multi-node config as a smoke check.
		var sub []core.Config
		for i := 0; i < len(cfgs); i += 16 {
			sub = append(sub, cfgs[i])
		}
		if last := cfgs[len(cfgs)-1]; len(sub) == 0 || sub[len(sub)-1].Label() != last.Label() {
			sub = append(sub, last)
		}
		cfgs = sub
	}
	got := digestConfigs(t, cfgs)

	if *updateGolden {
		b, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d digests to %s", len(got), goldenPath)
		return
	}

	b, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update-golden): %v", err)
	}
	var want []goldenEntry
	if err := json.Unmarshal(b, &want); err != nil {
		t.Fatalf("parsing %s: %v", goldenPath, err)
	}
	byLabel := make(map[string]string, len(want))
	for _, e := range want {
		byLabel[e.Label] = e.Digest
	}
	for _, e := range got {
		wantDigest, ok := byLabel[e.Label]
		if !ok {
			t.Errorf("%s: no golden digest (grid changed? regenerate with -update-golden)", e.Label)
			continue
		}
		if e.Digest != wantDigest {
			t.Errorf("%s: engine output changed:\n  got  %s\n  want %s", e.Label, e.Digest, wantDigest)
		}
	}
	if !raceEnabled && len(got) != len(want) {
		t.Errorf("digest count %d != golden count %d", len(got), len(want))
	}
}

// TestGoldenRunTwiceIdentical runs the multi-node config twice and
// demands identical digests — determinism of a single engine build,
// independent of the committed golden file.
func TestGoldenRunTwiceIdentical(t *testing.T) {
	cfg := goldenMultiNode()
	a, err := digestConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := digestConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("two runs of the same config diverged: %s vs %s", a, b)
	}
}
