package fingerprintstable_test

import (
	"strings"
	"testing"

	"overlapsim/internal/analysis/driver"
	"overlapsim/internal/analysis/drivertest"
	"overlapsim/internal/analysis/fingerprintstable"
)

// TestCorpus freezes two fields of the corpus root and checks each
// change shape: kept, renamed, untagged, added with and without
// omitempty, nested descent, and the custom-marshaler stop.
func TestCorpus(t *testing.T) {
	drivertest.Run(t, "testdata/src/corpus", []*driver.Analyzer{
		fingerprintstable.New(fingerprintstable.Config{
			RootPkg:  "corpus/fp",
			RootType: "Config",
			Baseline: map[string]string{
				"corpus/fp.Config.Kept":    "Kept",
				"corpus/fp.Config.Renamed": "Renamed",
				"corpus/fp.Nested.Inner":   "Inner",
			},
		}),
	})
}

// TestRepoBaselineInSync regenerates the baseline from the repository's
// current json tags and requires it to equal the frozen baseline.go —
// the drift this analyzer exists to prevent must also be impossible
// between the baseline file and the source it freezes.
func TestRepoBaselineInSync(t *testing.T) {
	prog, err := driver.Load("../../..", []string{"./internal/core"})
	if err != nil {
		t.Fatal(err)
	}
	entries, err := fingerprintstable.EmitBaseline(prog)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]string, len(entries))
	for _, e := range entries {
		got[e.Key] = e.Tag
	}
	for key, tag := range fingerprintstable.Baseline {
		if got[key] != tag {
			t.Errorf("baseline %s = %q, but current tags give %q", key, tag, got[key])
		}
	}
	for key, tag := range got {
		if _, ok := fingerprintstable.Baseline[key]; ok {
			continue
		}
		// Fields added since the freeze legitimately sit outside the
		// baseline — but only in the omitempty shape the analyzer
		// requires; anything else is drift.
		if !strings.Contains(tag, ",omitempty") {
			t.Errorf("field %s (tag %q) is reachable but neither frozen in the baseline nor omitempty", key, tag)
		}
	}
}
