package hw

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"overlapsim/internal/precision"
)

// File is the JSON schema for user-defined hardware: a set of GPUs and a
// set of systems referencing them (or the built-ins) by name. Load
// registers both, after which the new names work everywhere a built-in
// does — core configs, sweep axes, the service catalog — with no code
// changes. See examples/custom_hardware for a worked file.
type File struct {
	GPUs    []GPUJSON    `json:"gpus,omitempty"`
	Systems []SystemJSON `json:"systems,omitempty"`
}

// GPUJSON is one user-defined GPU. Datasheet numbers are required; the
// calibration coefficients (saturation curve, contention, power split)
// default to values typical of the named vendor's catalog entries, so a
// minimal definition needs only the marketing page.
type GPUJSON struct {
	Name string `json:"name"`
	// Override allows this entry to replace an already-registered GPU of
	// the same name (a previous Load, or a built-in). Without it a name
	// collision is an error, so a typo cannot silently retarget existing
	// hardware. Calibration overlays (internal/calib) set it to swap a
	// fitted spec in for the stock Table I one.
	Override bool   `json:"override,omitempty"`
	Vendor   string `json:"vendor"` // "NVIDIA" or "AMD"
	Year     int    `json:"year,omitempty"`
	SMs      int    `json:"sms"`
	BoostMHz int    `json:"boost_mhz"`

	MemGB       float64 `json:"mem_gb"`
	MemBWGBs    float64 `json:"mem_bw_gbs"`
	MemHeadroom float64 `json:"mem_headroom,omitempty"` // default 0.85

	LinkBWGBs   float64 `json:"link_bw_gbs"`
	LinkLatency float64 `json:"link_latency_s,omitempty"` // default by vendor
	AlgEff      float64 `json:"alg_eff,omitempty"`        // default by vendor

	TDPW float64 `json:"tdp_w"`

	// Peak dense TFLOPS per datapath, keyed by lowercase format name
	// ("fp32", "tf32", "fp16", "bf16").
	VectorTFLOPS map[string]float64 `json:"vector_tflops"`
	MatrixTFLOPS map[string]float64 `json:"matrix_tflops,omitempty"`

	KHalfVector     float64 `json:"khalf_vector,omitempty"`
	KHalfMatrix     float64 `json:"khalf_matrix,omitempty"`
	KHalfMatrixTF32 float64 `json:"khalf_matrix_tf32,omitempty"`
	MaxEff          float64 `json:"max_eff,omitempty"`

	// Power overrides the component power split; omitted components are
	// derived from TDP with the vendor-typical ratios.
	Power *PowerJSON `json:"power,omitempty"`
	// Contention overrides the collective-interference coefficients;
	// omitted fields take the vendor-typical values.
	Contention *ContentionJSON `json:"contention,omitempty"`
}

// PowerJSON mirrors PowerParams with lowercase keys.
type PowerJSON struct {
	IdleW   float64 `json:"idle_w,omitempty"`
	VectorW float64 `json:"vector_w,omitempty"`
	MatrixW float64 `json:"matrix_w,omitempty"`
	MemW    float64 `json:"mem_w,omitempty"`
	CommW   float64 `json:"comm_w,omitempty"`
	SurgeW  float64 `json:"surge_w,omitempty"`
	FMin    float64 `json:"f_min,omitempty"`
	FreqExp float64 `json:"freq_exp,omitempty"`
}

// ContentionJSON mirrors ContentionParams with lowercase keys.
type ContentionJSON struct {
	CollSMsReduce  int     `json:"coll_sms_reduce,omitempty"`
	CollSMsCopy    int     `json:"coll_sms_copy,omitempty"`
	HBMPerWireByte float64 `json:"hbm_per_wire_byte,omitempty"`
	SerializeFrac  float64 `json:"serialize_frac,omitempty"`
}

// SystemJSON is one user-defined system.
type SystemJSON struct {
	Name string `json:"name"`
	// Override allows this entry to replace an already-registered system
	// of the same name; see GPUJSON.Override.
	Override bool `json:"override,omitempty"`
	// GPU names a GPU defined in the same file or already registered.
	GPU string `json:"gpu"`
	// GPUsPerNode is the node size (required).
	GPUsPerNode int `json:"gpus_per_node"`
	// Nodes is the node count (0 and 1 mean single-node).
	Nodes int `json:"nodes,omitempty"`
	// Fabric is the intra-node fabric kind ("switched" or "mesh"; empty
	// keeps the vendor default).
	Fabric string `json:"fabric,omitempty"`
	// NIC describes the inter-node tier of a multi-node system.
	NIC *NICJSON `json:"nic,omitempty"`
}

// NICJSON mirrors NICSpec with lowercase keys. Only the bandwidth is
// required; like every other omitted calibration field in this schema,
// a zero latency_s or alg_eff takes the DefaultNIC value (a NIC with
// literally zero latency is not a thing this model lets JSON describe).
type NICJSON struct {
	BWGBs   float64 `json:"bw_gbs"`
	Latency float64 `json:"latency_s,omitempty"`
	AlgEff  float64 `json:"alg_eff,omitempty"`
}

// Load parses a hardware file and registers its GPUs and systems in the
// default registry. Errors (schema violations, unknown references,
// duplicate names) are returned, not panicked: the input is user data,
// not program code. Registration is not transactional — entries
// preceding the offending one stay registered.
func Load(r io.Reader) error {
	return defaultReg.Load(r)
}

// Load parses a hardware file into this registry. An isolated registry
// (NewRegistry) resolves GPU references through the built-ins but keeps
// every registration local — the hermetic path tests and fuzzers use.
func (reg *Registry) Load(r io.Reader) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var f File
	if err := dec.Decode(&f); err != nil {
		return fmt.Errorf("hw: parsing hardware file: %w", err)
	}
	for i := range f.GPUs {
		spec, err := f.GPUs[i].Spec()
		if err != nil {
			return err
		}
		// Capture a private template; builders hand out fresh copies.
		tmpl := *spec
		if err := reg.registerGPU(func() *GPUSpec { s := tmpl; return cloneGPU(&s) }, f.GPUs[i].Override); err != nil {
			return err
		}
	}
	for i := range f.Systems {
		sys, err := f.Systems[i].system(reg)
		if err != nil {
			return err
		}
		tmpl := sys
		if err := reg.registerSys(func() System {
			s := tmpl
			s.GPU = cloneGPU(tmpl.GPU)
			if tmpl.NIC != nil {
				nic := *tmpl.NIC
				s.NIC = &nic
			}
			return s
		}, f.Systems[i].Override); err != nil {
			return err
		}
	}
	return nil
}

// LoadFile is Load over the named file — what the CLIs' -hw-file flag
// calls.
func LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("hw: %w", err)
	}
	defer f.Close()
	if err := Load(f); err != nil {
		return fmt.Errorf("%w (in %s)", err, path)
	}
	return nil
}

// cloneGPU deep-copies a spec (the TFLOPS maps are the only reference
// fields).
func cloneGPU(g *GPUSpec) *GPUSpec {
	out := *g
	out.VectorTFLOPS = cloneTFLOPS(g.VectorTFLOPS)
	out.MatrixTFLOPS = cloneTFLOPS(g.MatrixTFLOPS)
	return &out
}

func cloneTFLOPS(m map[precision.Format]float64) map[precision.Format]float64 {
	if m == nil {
		return nil
	}
	out := make(map[precision.Format]float64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Spec converts the JSON form into a validated GPUSpec, applying
// vendor-typical defaults for every omitted calibration field.
func (j GPUJSON) Spec() (*GPUSpec, error) {
	v, err := ParseVendor(j.Vendor)
	if err != nil {
		return nil, fmt.Errorf("hw: GPU %q: %w", j.Name, err)
	}
	vec, err := parseTFLOPS(j.Name, "vector_tflops", j.VectorTFLOPS)
	if err != nil {
		return nil, err
	}
	mat, err := parseTFLOPS(j.Name, "matrix_tflops", j.MatrixTFLOPS)
	if err != nil {
		return nil, err
	}
	g := &GPUSpec{
		Name: j.Name, Vendor: v, Year: j.Year,
		SMs: j.SMs, BoostMHz: j.BoostMHz,
		MemGB: j.MemGB, MemBWGBs: j.MemBWGBs, MemHeadroom: j.MemHeadroom,
		LinkBWGBs: j.LinkBWGBs, LinkLatency: j.LinkLatency, AlgEff: j.AlgEff,
		TDPW:         j.TDPW,
		VectorTFLOPS: vec, MatrixTFLOPS: mat,
		KHalfVector: j.KHalfVector, KHalfMatrix: j.KHalfMatrix, KHalfMatrixTF32: j.KHalfMatrixTF32,
		MaxEff: j.MaxEff,
	}
	if g.TableFP32TFLOPS == 0 {
		g.TableFP32TFLOPS = vec[precision.FP32]
	}
	if g.TableFP16TFLOPS == 0 {
		g.TableFP16TFLOPS = mat[precision.FP16]
	}
	applyGPUDefaults(g, j.Power, j.Contention)
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// applyGPUDefaults fills every omitted calibration field with values
// typical of the vendor's Table I entries, scaled to the part's TDP where
// the quantity is a power budget.
func applyGPUDefaults(g *GPUSpec, pw *PowerJSON, ct *ContentionJSON) {
	amd := g.Vendor == AMD
	pick := func(v *float64, nv, am float64) {
		if *v == 0 {
			if amd {
				*v = am
			} else {
				*v = nv
			}
		}
	}
	pick(&g.MemHeadroom, 0.85, 0.85)
	pick(&g.LinkLatency, 5e-6, 8e-6)
	pick(&g.AlgEff, 0.50, 0.32)
	pick(&g.KHalfVector, 192, 192)
	pick(&g.KHalfMatrix, 4096, 3072)
	pick(&g.KHalfMatrixTF32, 2816, 2048)
	pick(&g.MaxEff, 0.90, 0.85)

	var p PowerJSON
	if pw != nil {
		p = *pw
	}
	g.Power = PowerParams{
		IdleW: p.IdleW, VectorW: p.VectorW, MatrixW: p.MatrixW,
		MemW: p.MemW, CommW: p.CommW, SurgeW: p.SurgeW,
		FMin: p.FMin, FreqExp: p.FreqExp,
	}
	// Power-split defaults follow the component ratios of the calibrated
	// catalog entries, scaled to this part's TDP.
	pick(&g.Power.IdleW, 0.12*g.TDPW, 0.15*g.TDPW)
	pick(&g.Power.VectorW, 0.80*g.TDPW, 0.80*g.TDPW)
	pick(&g.Power.MatrixW, 1.30*g.TDPW, 1.30*g.TDPW)
	pick(&g.Power.MemW, 0.43*g.TDPW, 0.43*g.TDPW)
	pick(&g.Power.CommW, 0.17*g.TDPW, 0.17*g.TDPW)
	pick(&g.Power.SurgeW, 0.40*g.TDPW, 0.35*g.TDPW)
	pick(&g.Power.FMin, 0.30, 0.30)
	pick(&g.Power.FreqExp, 2.0, 2.0)

	var c ContentionJSON
	if ct != nil {
		c = *ct
	}
	g.Contention = ContentionParams{
		CollSMsReduce: c.CollSMsReduce, CollSMsCopy: c.CollSMsCopy,
		HBMPerWireByte: c.HBMPerWireByte, SerializeFrac: c.SerializeFrac,
	}
	if g.Contention.CollSMsReduce == 0 {
		if amd {
			g.Contention.CollSMsReduce = max(1, g.SMs/5)
		} else {
			g.Contention.CollSMsReduce = max(1, g.SMs/7)
		}
	}
	if g.Contention.CollSMsCopy == 0 {
		g.Contention.CollSMsCopy = max(1, g.Contention.CollSMsReduce/3)
	}
	pick(&g.Contention.HBMPerWireByte, 2.5, 3.0)
	pick(&g.Contention.SerializeFrac, 0.15, 0.50)
}

func parseTFLOPS(gpu, field string, in map[string]float64) (map[precision.Format]float64, error) {
	if len(in) == 0 {
		return nil, nil
	}
	out := make(map[precision.Format]float64, len(in))
	for name, tf := range in {
		f, err := precision.Parse(name)
		if err != nil {
			return nil, fmt.Errorf("hw: GPU %q %s: %w", gpu, field, err)
		}
		if tf <= 0 {
			return nil, fmt.Errorf("hw: GPU %q %s[%s]: non-positive throughput %g", gpu, field, name, tf)
		}
		out[f] = tf
	}
	return out, nil
}

// System converts the JSON form into a validated System, resolving the
// GPU reference against the default registry (Load registers a file's
// GPUs before its systems, so in-file references resolve too).
func (j SystemJSON) System() (System, error) {
	return j.system(defaultReg)
}

// system is System resolving the GPU reference against reg.
func (j SystemJSON) system(reg *Registry) (System, error) {
	g, err := reg.GPUByName(j.GPU)
	if err != nil {
		return System{}, fmt.Errorf("hw: system %q: %w", j.Name, err)
	}
	s := System{
		Name: j.Name, GPU: g, N: j.GPUsPerNode,
		Fabric: j.Fabric,
	}
	if j.Nodes > 1 {
		s.Nodes = j.Nodes
	}
	if j.NIC != nil {
		nic := NICSpec{BWGBs: j.NIC.BWGBs, Latency: j.NIC.Latency, AlgEff: j.NIC.AlgEff}
		if nic.Latency == 0 {
			nic.Latency = DefaultNIC().Latency
		}
		s.NIC = &nic
	}
	if err := s.Validate(); err != nil {
		return System{}, err
	}
	return s, nil
}
