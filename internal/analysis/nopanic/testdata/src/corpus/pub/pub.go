// Package pub has no internal path element, so nopanic's default scope
// ignores it.
package pub

func Explode() { panic("allowed out here") }
