package service

import (
	"bytes"
	"encoding/json"
	"net/http"

	"overlapsim/internal/calib"
)

// calibrationInfo is the calibration metadata served in the catalog:
// what profile schema POST /v1/calibrate reads and how the fitted
// hardware is named.
type calibrationInfo struct {
	// ProfileVersion is the calib.Profile schema version this build
	// accepts.
	ProfileVersion int `json:"profile_version"`
	// Endpoint is the synchronous fit-and-validate endpoint.
	Endpoint string `json:"endpoint"`
	// DefaultSuffix names calibrated hardware in the returned overlay.
	DefaultSuffix string `json:"default_suffix"`
}

// calibrateBody is the POST /v1/calibrate response: the fitted overlay
// (an hw.Load file the client can save and pass to any CLI's -hw-file)
// and, when the profile carries step measurements, the
// simulated-vs-measured validation report.
type calibrateBody struct {
	Overlay json.RawMessage `json:"overlay"`
	Report  *calib.Report   `json:"report,omitempty"`
	Notes   []string        `json:"notes,omitempty"`
}

// handleCalibrate fits a measured profile synchronously. The request
// body is the profile JSON; ?override=true makes the overlay replace
// the stock names on load, ?suffix= renames the calibrated hardware.
// Nothing is registered server-side — the overlay is returned to the
// client, keeping the server's catalog untouched by other tenants'
// calibrations.
func (s *Server) handleCalibrate(w http.ResponseWriter, r *http.Request) {
	raw, err := readBody(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading profile: %v", err)
		return
	}
	p, err := calib.Parse(bytes.NewReader(raw))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	opts := calib.FitOptions{
		Suffix:   r.URL.Query().Get("suffix"),
		Override: r.URL.Query().Get("override") == "true",
	}
	ctx, cancel := mergeDone(r.Context(), s.ctx)
	defer cancel()
	f, err := calib.Fit(ctx, p, opts)
	if err != nil {
		if ctx.Err() != nil {
			writeError(w, http.StatusServiceUnavailable, "calibration cancelled: %v", err)
			return
		}
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	overlay, err := f.Overlay()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	body := calibrateBody{Overlay: overlay, Notes: f.Notes}
	if len(p.Steps) > 0 {
		rep, err := calib.Validate(ctx, p, f)
		if err != nil {
			if ctx.Err() != nil {
				writeError(w, http.StatusServiceUnavailable, "validation cancelled: %v", err)
				return
			}
			writeError(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
		body.Report = rep
	}
	writeJSON(w, http.StatusOK, body)
}
