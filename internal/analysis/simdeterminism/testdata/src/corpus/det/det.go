// Package det plays the role of a deterministic simulator package:
// everything simdeterminism flags, next to the idioms it must accept.
package det

import (
	"math/rand"
	"sort"
	"time"
)

func Wall() int64 {
	return time.Now().UnixNano() // want `time\.Now in a deterministic package`
}

func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since in a deterministic package`
}

func GlobalDraw() float64 {
	return rand.Float64() // want `global rand\.Float64 in a deterministic package`
}

// SeededDraw is the accepted pattern: constructors of seeded generators
// and methods on the resulting *rand.Rand are deterministic.
func SeededDraw(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

func Keys(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration appends to "out" without a subsequent sort`
		out = append(out, k)
	}
	return out
}

// SortedKeys is the collect-then-sort idiom: the append is fine because
// a later statement in the same block sorts the slice.
func SortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func Total(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `map iteration accumulates into float "sum"`
		sum += v
	}
	return sum
}

// CountEntries accumulates an int, which is associative: no finding.
func CountEntries(m map[string]int) int {
	var n int
	for range m {
		n++
	}
	return n
}

func AllowedWall() int64 {
	//overlaplint:allow simdeterminism corpus case: diagnostics-only timing excluded from simulated outputs
	return time.Now().UnixNano()
}
