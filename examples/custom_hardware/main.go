// Command custom_hardware is the end-to-end proof that the platform
// layer is open: it loads a user-defined GPU ("X200") and two systems
// from hardware.json, then characterizes the multi-node pod through the
// unmodified core harness — no edits to internal/core (or anything else)
// were needed to teach the simulator this hardware.
//
// Run from the repository root:
//
//	go run ./examples/custom_hardware
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"overlapsim/internal/core"
	"overlapsim/internal/hw"
	"overlapsim/internal/model"
	"overlapsim/internal/precision"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("custom_hardware: ")
	hwFile := flag.String("hw-file", "examples/custom_hardware/hardware.json", "hardware definition to load")
	flag.Parse()

	if err := hw.LoadFile(*hwFile); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered systems: %v\n\n", hw.SystemNames())

	for _, name := range []string{"X200x8", "X200-pod"} {
		cfg := core.Config{
			Model:       model.GPT3_13B(),
			Parallelism: "fsdp",
			Batch:       64,
			Format:      precision.FP16,
			MatrixUnits: true,
			Iterations:  2,
		}
		cfg, err := cfg.ResolveSystem(name)
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.Run(context.Background(), cfg)
		if err != nil {
			log.Fatal(err)
		}
		sys := cfg.System
		fmt.Printf("%s (%d GPUs = %d node(s) x %d, %s fabric)\n",
			sys.Name, sys.TotalGPUs(), sys.NodeCount(), sys.N, sys.FabricKind())
		fmt.Printf("  E2E iteration     : %8.2f ms overlapped, %8.2f ms sequential\n",
			res.Overlapped.Mean.E2E*1e3, res.Sequential.Mean.E2E*1e3)
		fmt.Printf("  compute slowdown  : %6.2f %%   overlap ratio: %6.2f %%\n",
			res.Char.ComputeSlowdown*100, res.Char.OverlapRatio*100)
		fmt.Printf("  avg / peak power  : %.2f / %.2f x TDP\n\n",
			res.Overlapped.AvgTDP, res.Overlapped.PeakTDP)
	}
}
