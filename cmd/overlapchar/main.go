// Command overlapchar runs one characterization experiment from the
// command line and prints the full metric set: kernel times, compute
// slowdown (Eq. 1), overlap ratio (Eq. 2), the three end-to-end latencies
// (Eq. 3–5), and per-GPU power telemetry.
//
// Example:
//
//	overlapchar -gpu H100 -n 4 -model "GPT-3 13B" -parallelism fsdp \
//	    -batch 16 -format fp16 -powercap 400
//
// The -parallelism flag accepts any registered strategy name, including
// tensor parallelism ("tp", with -tp-degree). The platform is equally
// open: -hw-file loads user-defined GPUs and systems (JSON, see
// examples/custom_hardware), -system selects any registered system by
// name, and -nodes scales the -gpu/-n node out over the NIC tier:
//
//	overlapchar -hw-file my_gpus.json -system MyPod -model "GPT-3 13B"
//	overlapchar -gpu H100 -n 8 -nodes 4 -model "GPT-3 13B" -batch 64
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"overlapsim/internal/core"
	"overlapsim/internal/hw"
	"overlapsim/internal/model"
	"overlapsim/internal/power"
	"overlapsim/internal/precision"
	"overlapsim/internal/strategy"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("overlapchar: ")

	var (
		hwFile   = flag.String("hw-file", "", "load custom GPUs/systems from this JSON file first")
		sysName  = flag.String("system", "", "registered system name (overrides -gpu/-n/-nodes)")
		gpuName  = flag.String("gpu", "H100", "registered GPU name: A100, H100, MI210, MI250, ...")
		n        = flag.Int("n", 4, "number of GPUs per node")
		nodes    = flag.Int("nodes", 1, "number of nodes joined by the NIC tier")
		modelNm  = flag.String("model", "GPT-3 XL", `workload: "GPT-3 XL", "GPT-3 2.7B", "GPT-3 6.7B", "GPT-3 13B", "LLaMA2 13B"`)
		par      = flag.String("parallelism", "fsdp", "distribution strategy: "+strings.Join(strategy.Names(), ", "))
		batch    = flag.Int("batch", 8, "global batch size")
		micro    = flag.Int("micro", 0, "pipeline microbatch size (0 = default)")
		tpDeg    = flag.Int("tp-degree", 0, "tensor-parallel group size (tp only; 0 = whole node)")
		format   = flag.String("format", "fp16", "numeric format: fp32, tf32, fp16, bf16")
		vector   = flag.Bool("vector-only", false, "disable Tensor/Matrix cores (general datapath)")
		noCkpt   = flag.Bool("no-checkpoint", false, "disable activation checkpointing")
		iters    = flag.Int("iters", 2, "measured iterations")
		powerCap = flag.Float64("powercap", 0, "per-GPU power cap in watts (0 = uncapped)")
		freqCap  = flag.Float64("freqcap", 0, "frequency cap factor in (0,1] (0 = uncapped)")
	)
	flag.Parse()

	if *hwFile != "" {
		if err := hw.LoadFile(*hwFile); err != nil {
			log.Fatal(err)
		}
	}
	var sys hw.System
	if *sysName != "" {
		var err error
		sys, err = hw.SystemByName(*sysName)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		g, err := hw.GPUByName(*gpuName)
		if err != nil {
			log.Fatal(err)
		}
		if *nodes > 1 {
			sys = hw.NewMultiNode(g, *n, *nodes)
		} else {
			sys = hw.NewSystem(g, *n)
		}
	}
	m, err := model.ByName(*modelNm)
	if err != nil {
		log.Fatal(err)
	}
	f, err := precision.Parse(*format)
	if err != nil {
		log.Fatal(err)
	}
	p, err := core.ParseParallelism(*par)
	if err != nil {
		log.Fatal(err)
	}

	cfg := core.Config{
		System:       sys,
		Model:        m,
		Parallelism:  p,
		Batch:        *batch,
		MicroBatch:   *micro,
		TPDegree:     *tpDeg,
		Format:       f,
		MatrixUnits:  !*vector,
		NoCheckpoint: *noCkpt,
		Iterations:   *iters,
		Caps:         power.Caps{PowerW: *powerCap, FreqFactor: *freqCap},
	}

	res, err := core.Run(context.Background(), cfg)
	if err != nil {
		log.Println(err)
		os.Exit(1)
	}
	printResult(res)
}

func printResult(res *core.Result) {
	c := res.Char
	fmt.Printf("experiment        : %s\n", res.Config.Label())
	fmt.Printf("params            : %.2fB exact (%.1fB nominal)\n",
		res.Config.Model.TotalParams()/1e9, res.Config.Model.NominalParams/1e9)
	fmt.Println()
	fmt.Printf("%-34s %12s %12s\n", "", "sequential", "overlapped")
	fmt.Printf("%-34s %10.2fms %10.2fms\n", "compute kernel time (all GPUs)",
		c.Sequential.ComputeKernelTime*1e3, c.Overlapped.ComputeKernelTime*1e3)
	fmt.Printf("%-34s %10.2fms %10.2fms\n", "comm kernel time (all GPUs)",
		c.Sequential.CommKernelTime*1e3, c.Overlapped.CommKernelTime*1e3)
	fmt.Printf("%-34s %10.2fms %10.2fms\n", "E2E iteration",
		res.Sequential.Mean.E2E*1e3, res.Overlapped.Mean.E2E*1e3)
	fmt.Printf("%-34s %10.2fxT %10.2fxT\n", "avg power (TDP)",
		res.Sequential.AvgTDP, res.Overlapped.AvgTDP)
	fmt.Printf("%-34s %10.2fxT %10.2fxT\n", "peak power (TDP)",
		res.Sequential.PeakTDP, res.Overlapped.PeakTDP)
	fmt.Println()
	fmt.Printf("compute slowdown (Eq.1)       : %7.2f %%\n", c.ComputeSlowdown*100)
	fmt.Printf("overlap ratio (Eq.2)          : %7.2f %%\n", c.OverlapRatio*100)
	fmt.Printf("E2E ideal (Eq.4)              : %9.2f ms\n", c.E2EIdeal*1e3)
	fmt.Printf("E2E sequential derived (Eq.5) : %9.2f ms\n", c.E2ESeqDerived*1e3)
	fmt.Printf("sequential penalty vs overlap : %7.2f %%\n", c.SeqPenalty*100)
	fmt.Printf("overlap gap vs ideal          : %7.2f %%\n", c.IdealGap*100)
	fmt.Printf("energy per iteration          : %9.2f kJ (overlapped), %.2f kJ (sequential)\n",
		res.Overlapped.EnergyJ/1e3, res.Sequential.EnergyJ/1e3)
}
