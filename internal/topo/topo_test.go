package topo

import (
	"testing"

	"overlapsim/internal/hw"
)

func TestKindByVendor(t *testing.T) {
	if ForSystem(hw.NewSystem(hw.H100(), 4)).Kind() != Switched {
		t.Error("NVIDIA nodes are switched (NVLink+NVSwitch)")
	}
	if ForSystem(hw.NewSystem(hw.MI250(), 4)).Kind() != Mesh {
		t.Error("AMD nodes are Infinity Fabric meshes")
	}
}

func TestP2PBandwidth(t *testing.T) {
	nv := ForSystem(hw.NewSystem(hw.A100(), 4))
	if nv.P2PBW(0, 1) != nv.GPU().UniLinkBW() {
		t.Error("switched fabric gives full unidirectional bandwidth per pair")
	}
	amd := ForSystem(hw.NewSystem(hw.MI210(), 4))
	if amd.P2PBW(0, 1) >= amd.GPU().UniLinkBW() {
		t.Error("mesh pairs share a subset of links")
	}
}

func TestRingBW(t *testing.T) {
	tp := ForSystem(hw.NewSystem(hw.H100(), 8))
	if tp.RingBW() != tp.GPU().UniLinkBW() {
		t.Error("ring direction sustains the derated unidirectional rate")
	}
	if tp.N() != 8 {
		t.Errorf("N = %d", tp.N())
	}
}

func TestHopLatency(t *testing.T) {
	nv := ForSystem(hw.NewSystem(hw.H100(), 4))
	if nv.HopLatency() <= nv.GPU().LinkLatency {
		t.Error("switch traversal adds latency")
	}
	amd := ForSystem(hw.NewSystem(hw.MI250(), 4))
	if amd.HopLatency() != amd.GPU().LinkLatency {
		t.Error("direct mesh links have bare latency")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	tp := ForSystem(hw.NewSystem(hw.H100(), 4))
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range GPU")
		}
	}()
	tp.P2PBW(0, 4)
}

func TestKindString(t *testing.T) {
	if Switched.String() != "switched" || Mesh.String() != "mesh" {
		t.Error("kind names")
	}
	if Kind(3).String() == "" {
		t.Error("unknown kind should still format")
	}
}
