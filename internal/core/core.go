// Package core is the characterization harness — the paper's primary
// contribution turned into a library. One Config names a hardware system,
// a workload, a distribution strategy and the ablation knobs (precision,
// matrix units, power caps); Run executes the workload in both the
// overlapped and sequential modes on the simulated cluster, measures
// kernel times, overlap, power and energy exactly as §IV-D prescribes, and
// derives the paper's metrics (Equations 1–5).
//
// Strategies are resolved by name through the strategy registry, so a new
// scheme plugs into Run (and everything downstream: sweeps, the service
// catalog) by registering itself — core needs no edits. The stock set is
// linked via internal/strategy/all.
package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"overlapsim/internal/exec"
	"overlapsim/internal/gpu"
	"overlapsim/internal/hw"
	"overlapsim/internal/metrics"
	"overlapsim/internal/model"
	"overlapsim/internal/power"
	"overlapsim/internal/precision"
	"overlapsim/internal/sim"
	"overlapsim/internal/strategy"
	_ "overlapsim/internal/strategy/all" // register the stock strategies
)

// Parallelism names a distribution strategy in the registry vocabulary
// ("fsdp", "pp", "ddp", "tp", ...). The empty value selects FSDP, the
// paper's primary strategy. Lookup is case-insensitive and resolves
// aliases ("pipeline" → "pp").
//
// Parallelism used to be a closed int enum over the paper's three
// strategies; it is now an open registry name. The FSDP/Pipeline/DDP
// constants remain as aliases, and the canonical JSON encoding of the
// three legacy names is still their historical enum integer, so
// fingerprints (and content-addressed caches) of pre-redesign configs
// are unchanged.
type Parallelism string

// Legacy strategy names (§II-B).
//
// Deprecated: use the registry name strings directly ("fsdp", "pp",
// "ddp"); these constants remain for source compatibility.
const (
	// FSDP is fully sharded data parallelism (ZeRO-3).
	FSDP Parallelism = "fsdp"
	// Pipeline is pipeline parallelism.
	Pipeline Parallelism = "pp"
	// DDP is classic replicated data parallelism with bucketed gradient
	// all-reduce — the baseline strategy FSDP improves on.
	DDP Parallelism = "ddp"
)

// Canonical resolves the name to the registry's canonical spelling:
// lowercased, aliases resolved, the empty value defaulted to FSDP.
// Unknown names pass through lowercased (they fail at Run/Lookup time
// with the registry's error, not here).
func (p Parallelism) Canonical() Parallelism {
	if p == "" {
		return FSDP
	}
	return Parallelism(strategy.CanonicalName(string(p)))
}

// String returns the strategy's display label ("FSDP", "PP", ...), the
// spelling the paper's tables use.
func (p Parallelism) String() string {
	if s, err := strategy.Lookup(string(p.Canonical())); err == nil {
		return s.Describe().Display
	}
	return string(p)
}

// legacyEnum maps the paper's three strategies onto their historical enum
// values, keeping the canonical JSON encoding — and therefore every
// pre-redesign fingerprint — byte-identical.
var legacyEnum = map[Parallelism]int{FSDP: 0, Pipeline: 1, DDP: 2}

// MarshalJSON encodes the three legacy strategies as their historical
// enum integers and every other strategy as its canonical name.
func (p Parallelism) MarshalJSON() ([]byte, error) {
	c := p.Canonical()
	if v, ok := legacyEnum[c]; ok {
		return json.Marshal(v)
	}
	return json.Marshal(string(c))
}

// UnmarshalJSON accepts both encodings: a legacy enum integer or a
// registry name.
func (p *Parallelism) UnmarshalJSON(b []byte) error {
	var n int
	if err := json.Unmarshal(b, &n); err == nil {
		for name, v := range legacyEnum {
			if v == n {
				*p = name
				return nil
			}
		}
		return fmt.Errorf("core: unknown legacy parallelism enum %d", n)
	}
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return fmt.Errorf("core: parallelism must be a name or legacy enum: %s", b)
	}
	*p = Parallelism(s).Canonical()
	return nil
}

// ParseParallelism resolves a strategy name against the registry,
// returning its canonical spelling. It accepts the conventional
// lowercase names ("fsdp", "pp"/"pipeline", "ddp", "tp"),
// case-insensitively.
func ParseParallelism(name string) (Parallelism, error) {
	s, err := strategy.Lookup(name)
	if err != nil {
		return "", fmt.Errorf("core: %w", err)
	}
	return Parallelism(s.Name()), nil
}

// Parallelisms lists the registered strategies by canonical name.
func Parallelisms() []Parallelism {
	var out []Parallelism
	for _, n := range strategy.Names() {
		out = append(out, Parallelism(n))
	}
	return out
}

// Config describes one characterization experiment.
type Config struct {
	// System is the GPU platform — a single node or a multi-node fabric.
	// Any registered system works here: set it directly, or resolve a
	// registry name (built-in or JSON-loaded) with ResolveSystem.
	System hw.System `json:"System"`
	// Model is the workload (Table II).
	Model model.Config `json:"Model"`
	// Parallelism is the distribution strategy's registry name.
	Parallelism Parallelism `json:"Parallelism"`
	// Batch is the batch size: per-GPU for FSDP, per-pipeline for
	// pipeline parallelism.
	Batch int `json:"Batch"`
	// MicroBatch is the pipeline microbatch size (pipeline only; 0 picks
	// the default).
	MicroBatch int `json:"MicroBatch"`
	// Format is the training precision (the paper's default is FP16).
	Format precision.Format `json:"Format"`
	// MatrixUnits enables Tensor-Core/Matrix-Core GEMM execution; the
	// Fig. 11 ablation toggles this with FP32/TF32.
	MatrixUnits bool `json:"MatrixUnits"`
	// NoCheckpoint disables activation recomputation (on by default, as
	// in the Megatron/DeepSpeed configurations of this model scale).
	NoCheckpoint bool `json:"NoCheckpoint"`
	// GradAccumSteps enables gradient accumulation under FSDP (§II-B
	// mitigation; 0 or 1 disables).
	GradAccumSteps int `json:"GradAccumSteps"`
	// TPDegree is the tensor-parallel group size (tp only; 0 selects the
	// whole node). The field is omitted from the canonical encoding when
	// zero, so configs of strategies that ignore it fingerprint exactly
	// as before the field existed.
	TPDegree int `json:"TPDegree,omitempty"`
	// Iterations is the number of measured iterations (0 means 2).
	Iterations int `json:"Iterations"`
	// Warmup is the number of unmeasured iterations (0 means 1).
	Warmup int `json:"Warmup"`
	// Caps are the power/frequency limits (Fig. 9).
	Caps power.Caps `json:"Caps"`
	// TraceInterval, when nonzero, records per-GPU power traces at this
	// interval (Fig. 7 uses power.TraceInterval).
	TraceInterval float64 `json:"TraceInterval"`
	// JitterSigma adds run-to-run kernel-time variation; Seed seeds it.
	JitterSigma float64 `json:"JitterSigma"`
	Seed        int64   `json:"Seed"`
	// SkipMemoryCheck disables the HBM feasibility gate.
	SkipMemoryCheck bool `json:"SkipMemoryCheck"`
}

// Label returns a compact human-readable description of the experiment.
// The TP degree and operator caps are appended when set, so
// configurations differing only in those knobs stay distinguishable in
// sweep and advisor reports.
func (c Config) Label() string {
	s := fmt.Sprintf("%s %s %s bs=%d %s", c.System.Name, c.Parallelism, c.Model.Name, c.Batch, c.Format)
	if c.TPDegree > 0 {
		s += fmt.Sprintf(" tp=%d", c.TPDegree)
	}
	if c.Caps.PowerW > 0 {
		s += fmt.Sprintf(" cap=%gW", c.Caps.PowerW)
	}
	if c.Caps.FreqFactor > 0 && c.Caps.FreqFactor < 1 {
		s += fmt.Sprintf(" freq=%g", c.Caps.FreqFactor)
	}
	return s
}

// ResolveSystem returns the config with its system replaced by the
// registry entry of the given name — the hardware analogue of resolving
// a strategy name. The four paper systems resolve to values that
// canonicalize byte-identically to the legacy constructors, so switching
// a caller from hw.SystemH100x8() to ResolveSystem("H100x8") preserves
// fingerprints and cache addresses.
func (c Config) ResolveSystem(name string) (Config, error) {
	sys, err := hw.SystemByName(name)
	if err != nil {
		return c, fmt.Errorf("core: %w", err)
	}
	c.System = sys
	return c, nil
}

// params maps the config onto the shared strategy parameter set for the
// given execution mode.
func (c Config) params(mode exec.Mode) strategy.Params {
	return strategy.Params{
		Model:           c.Model,
		Batch:           c.Batch,
		MicroBatch:      c.MicroBatch,
		Format:          c.Format,
		MatrixUnits:     c.MatrixUnits,
		Checkpoint:      !c.NoCheckpoint,
		GradAccumSteps:  c.GradAccumSteps,
		TPDegree:        c.TPDegree,
		Iterations:      c.Iterations,
		Warmup:          c.Warmup,
		Mode:            mode,
		SkipMemoryCheck: c.SkipMemoryCheck,
	}
}

// ModeResult is the measurement of one execution mode.
type ModeResult struct {
	// Mode is the executed mode.
	Mode exec.Mode
	// Mean is the average of the measured iterations.
	Mean metrics.Iteration
	// Iterations are the individual measured iterations.
	Iterations []metrics.Iteration
	// GPUPower is per-GPU power telemetry for the whole run.
	GPUPower []power.Stats
	// AvgTDP and PeakTDP aggregate power across GPUs (mean of averages,
	// max of peaks) normalized to TDP — the Fig. 6 quantities.
	AvgTDP, PeakTDP float64
	// EnergyJ is total energy across GPUs.
	EnergyJ float64
	// Traces holds per-GPU fine-grained power samples when tracing was
	// requested.
	Traces [][]power.Sample
	// OverlapRatio is Eq. 2 measured on this mode's trace.
	OverlapRatio float64
	// Engine is the simulation engine's self-report for this mode's run
	// (epochs, dirty-set rechecks, arena usage). Deterministic per
	// config, so cached results replay it unchanged; results cached
	// before the field existed decode it as zero.
	Engine sim.Stats `json:"engine_stats"`
}

// Result is a full characterization: both modes plus derived metrics.
type Result struct {
	// Config echoes the experiment.
	Config Config
	// Overlapped and Sequential are the two measured modes.
	Overlapped, Sequential ModeResult
	// Char holds the derived Eq. 1–5 metrics.
	Char metrics.Characterization
}

// BuildPlan constructs the simulation plan of one execution mode on a
// fresh cluster without running it, resolving the strategy through the
// registry. Callers that need the raw task graph (differential testing,
// trace tooling) build here and run the plan themselves; RunMode is the
// measuring wrapper.
func BuildPlan(cfg Config, mode exec.Mode) (*exec.Plan, error) {
	s, err := strategy.Lookup(string(cfg.Parallelism.Canonical()))
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	cl, err := gpu.New(gpu.Config{
		System:        cfg.System,
		Caps:          cfg.Caps,
		TraceInterval: cfg.TraceInterval,
		JitterSigma:   cfg.JitterSigma,
		Seed:          modeSeed(cfg.Seed, mode),
	})
	if err != nil {
		return nil, err
	}
	return s.Build(cl, cfg.params(mode))
}

// RunMode executes the experiment in a single mode on a fresh cluster,
// resolving the strategy through the registry. Cancelling ctx aborts the
// simulation between epochs and returns ctx.Err().
func RunMode(ctx context.Context, cfg Config, mode exec.Mode) (*ModeResult, error) {
	plan, err := BuildPlan(cfg, mode)
	if err != nil {
		return nil, err
	}
	if err := plan.RunContext(ctx); err != nil {
		return nil, fmt.Errorf("core: %s (%v): %w", cfg.Label(), mode, err)
	}

	its, err := plan.MeasuredIterations()
	if err != nil {
		return nil, fmt.Errorf("core: %s (%v): %w", cfg.Label(), mode, err)
	}
	res := &ModeResult{Mode: mode, Iterations: its}
	res.Mean = metrics.Mean(res.Iterations)
	res.OverlapRatio = res.Mean.OverlapRatio()
	res.Engine = plan.EngineStats()
	cl := plan.Cluster
	for i := 0; i < cl.N(); i++ {
		st := cl.PowerStats(i)
		res.GPUPower = append(res.GPUPower, st)
		res.AvgTDP += st.AvgTDP / float64(cl.N())
		if st.PeakTDP > res.PeakTDP {
			res.PeakTDP = st.PeakTDP
		}
		res.EnergyJ += st.EnergyJ
		if tr := cl.Trace(i); tr != nil {
			res.Traces = append(res.Traces, tr.Samples())
		}
	}
	return res, nil
}

// Run executes the experiment in both modes and derives the paper's
// characterization metrics. The two modes simulate concurrently on
// independent clusters (halving wall-clock per characterization); the
// first failure cancels the sibling. Cancelling ctx aborts both
// simulations and returns ctx.Err().
func Run(ctx context.Context, cfg Config) (*Result, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		wg             sync.WaitGroup
		ovl, seq       *ModeResult
		ovlErr, seqErr error
	)
	run := func(mode exec.Mode, res **ModeResult, errp *error) {
		defer wg.Done()
		*res, *errp = RunMode(ctx, cfg, mode)
		if *errp != nil {
			cancel() // fail fast: stop the sibling mode
		}
	}
	wg.Add(2)
	go run(exec.Overlapped, &ovl, &ovlErr)
	go run(exec.Sequential, &seq, &seqErr)
	wg.Wait()

	if err := firstError(ovlErr, seqErr); err != nil {
		return nil, err
	}
	return &Result{
		Config:     cfg,
		Overlapped: *ovl,
		Sequential: *seq,
		Char:       metrics.Characterize(seq.Mean, ovl.Mean),
	}, nil
}

// modeSeed derives the jitter seed of one execution mode from the
// config's seed: a splitmix64-style mix keyed by the mode, so the two
// concurrently simulated modes draw from independent deterministic
// streams. Previously both modes seeded identical streams, correlating
// their "run-to-run" variation sample-for-sample — the sequential run
// inherited the overlapped run's perturbations in task-creation order
// instead of being an independent measurement. Runs stay reproducible:
// the same (Seed, mode) always yields the same stream.
func modeSeed(seed int64, mode exec.Mode) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(uint64(mode)+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e9b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// firstError picks the error to report from the concurrent modes,
// preferring a root cause over the sibling's induced cancellation.
func firstError(errs ...error) error {
	var fallback error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, context.Canceled) {
			return err
		}
		if fallback == nil {
			fallback = err
		}
	}
	return fallback
}
