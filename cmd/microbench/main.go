// Command microbench regenerates the Fig. 8 experiment: an N×N matrix
// multiplication running concurrently with a 1 GB all-reduce, swept over
// N, reporting the compute slowdown and power against the isolated
// baseline.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"overlapsim/internal/hw"
	"overlapsim/internal/microbench"
	"overlapsim/internal/power"
	"overlapsim/internal/precision"
	"overlapsim/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("microbench: ")
	var (
		gpuName  = flag.String("gpu", "H100", "GPU model: A100, H100, MI210, MI250")
		n        = flag.Int("n", 4, "number of GPUs")
		format   = flag.String("format", "fp16", "GEMM format: fp32, tf32, fp16")
		vector   = flag.Bool("vector-only", false, "disable matrix units")
		powerCap = flag.Float64("powercap", 0, "power cap in watts")
	)
	flag.Parse()

	g := hw.ByName(*gpuName)
	if g == nil {
		log.Fatalf("unknown GPU %q", *gpuName)
	}
	var f precision.Format
	switch strings.ToLower(*format) {
	case "fp32":
		f = precision.FP32
	case "tf32":
		f = precision.TF32
	case "fp16":
		f = precision.FP16
	default:
		log.Fatalf("unknown format %q", *format)
	}

	headers := []string{"N", "Isolated(ms)", "Overlapped(ms)", "Slowdown",
		"AvgIso(TDP)", "AvgOvl(TDP)", "PeakIso(TDP)", "PeakOvl(TDP)"}
	var rows [][]string
	for _, dim := range microbench.SweepNs() {
		res, err := microbench.Run(microbench.Config{
			System:      hw.NewSystem(g, *n),
			N:           dim,
			Format:      f,
			MatrixUnits: !*vector,
			Caps:        power.Caps{PowerW: *powerCap},
		})
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", dim),
			report.Ms(res.IsolatedGEMM),
			report.Ms(res.OverlappedGEMM),
			report.Pct(res.Slowdown),
			report.TDP(res.IsolatedPower.AvgTDP),
			report.TDP(res.OverlappedPower.AvgTDP),
			report.TDP(res.IsolatedPower.PeakTDP),
			report.TDP(res.OverlappedPower.PeakTDP),
		})
	}
	fmt.Printf("Fig. 8 microbenchmark — %s x%d, %s, 1GB all-reduce\n\n", g.Name, *n, f)
	if err := report.Table(os.Stdout, headers, rows); err != nil {
		log.Fatal(err)
	}
}
