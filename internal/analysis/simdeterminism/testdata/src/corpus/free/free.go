// Package free sits outside the configured deterministic set: the
// wall-clock read below is legal here.
package free

import "time"

func Wall() time.Time { return time.Now() }
