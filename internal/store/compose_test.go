package store

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"overlapsim/internal/core"
	"overlapsim/internal/sweep"
)

// Compose must accept peer lists the way operators actually write them
// on a command line: spaces after commas, trailing commas, duplicated
// entries. Before the splitPeers fix, a trailing comma produced an
// empty peer URL and Compose hard-failed.
func TestComposePeerParsing(t *testing.T) {
	cases := []struct {
		name  string
		peers string
		want  []string
	}{
		{"plain", "http://a:1,http://b:2", []string{"http://a:1", "http://b:2"}},
		{"spaced", "http://a:1, http://b:2", []string{"http://a:1", "http://b:2"}},
		{"trailing comma", "http://a:1,http://b:2,", []string{"http://a:1", "http://b:2"}},
		{"doubled comma", "http://a:1,,http://b:2", []string{"http://a:1", "http://b:2"}},
		{"duplicates", "http://a:1,http://b:2, http://a:1", []string{"http://a:1", "http://b:2"}},
		{"only separators", " , ,", nil},
		{"empty", "", nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tiered, err := Compose("", tc.peers)
			if err != nil {
				t.Fatalf("Compose(%q): %v", tc.peers, err)
			}
			var hc *HTTPCache
			for _, tier := range tiered.Tiers() {
				if c, ok := tier.(*HTTPCache); ok {
					if hc != nil {
						t.Fatal("Compose built more than one peer tier")
					}
					hc = c
				}
			}
			if tc.want == nil {
				if hc != nil {
					t.Fatalf("peer tier built from %q, want none", tc.peers)
				}
				return
			}
			if hc == nil {
				t.Fatalf("no peer tier built from %q", tc.peers)
			}
			got := hc.Peers()
			if len(got) != len(tc.want) {
				t.Fatalf("peers = %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("peers = %v, want %v", got, tc.want)
				}
			}
		})
	}
}

// A promotion failure must land on the per-backend put-error series,
// not vanish: operators watching sweep_cache_put_errors_total should
// see a persistently failing fast tier even though Get still serves
// the entry from the slower one.
func TestTieredPromotionFailureCounted(t *testing.T) {
	slow := sweep.NewMemCache()
	tiered := NewTiered(failCache{}, slow)
	key, res := testEntry(t, 64)
	if err := slow.Put(key, res); err != nil {
		t.Fatal(err)
	}
	basePromotions := mTieredPromotions.Value()
	baseErrors := sweep.PutErrors(failCache{})
	got, ok := tiered.Get(key)
	if !ok || got.Config.Batch != 64 {
		t.Fatalf("Get = %+v, %v; want hit despite failing fast tier", got, ok)
	}
	if n := mTieredPromotions.Value() - basePromotions; n != 0 {
		t.Errorf("failed promotion counted as %d promotions", n)
	}
	if n := sweep.PutErrors(failCache{}) - baseErrors; n != 1 {
		t.Errorf("promotion failure recorded %d put errors, want 1", n)
	}
}

// A waiter that retries after a cancelled leader is still one coalesced
// caller: the waiter counter must tick once for its whole Do call, not
// once per retry loop.
func TestFlightWaiterCountedOncePerCall(t *testing.T) {
	f := NewFlight()
	key, want := testEntry(t, 8)

	// First in-flight call: ends in a context error, forcing the waiter
	// to retry.
	c1 := &call{done: make(chan struct{})}
	c1.err = fmt.Errorf("leader gave up: %w", context.Canceled)
	f.calls[key] = c1

	base := mFlightWaiters.Value()
	done := make(chan *core.Result, 1)
	go func() {
		res, waited, err := f.Do(context.Background(), key, func() (*core.Result, error) {
			t.Error("waiter ran the computation itself")
			return nil, nil
		})
		if err != nil || !waited {
			t.Errorf("Do = waited %v, err %v; want coalesced success", waited, err)
		}
		done <- res
	}()
	// The waiter has parked on c1 once the counter ticks.
	for mFlightWaiters.Value() < base+1 {
		runtime.Gosched()
	}
	// Swap in a second live call before waking the waiter, so its retry
	// loop finds another leader to wait on.
	c2 := &call{done: make(chan struct{}), res: want}
	f.mu.Lock()
	f.calls[key] = c2
	f.mu.Unlock()
	close(c1.done)

	// Let the waiter re-enter and park on c2, then finish the call.
	runtime.Gosched()
	f.mu.Lock()
	delete(f.calls, key)
	f.mu.Unlock()
	close(c2.done)

	if res := <-done; res != want {
		t.Fatalf("waiter got %+v, want the second leader's result", res)
	}
	if n := mFlightWaiters.Value() - base; n != 1 {
		t.Errorf("one coalesced caller counted %d times", n)
	}
}
