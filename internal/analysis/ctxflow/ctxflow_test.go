package ctxflow_test

import (
	"testing"

	"overlapsim/internal/analysis/ctxflow"
	"overlapsim/internal/analysis/driver"
	"overlapsim/internal/analysis/drivertest"
)

// TestCorpus covers corpus/flow (library: findings) and
// corpus/cmd/tool (package main: silent).
func TestCorpus(t *testing.T) {
	drivertest.Run(t, "testdata/src/corpus", []*driver.Analyzer{ctxflow.New()})
}
