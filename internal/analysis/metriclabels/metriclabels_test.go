package metriclabels_test

import (
	"testing"

	"overlapsim/internal/analysis/driver"
	"overlapsim/internal/analysis/drivertest"
	"overlapsim/internal/analysis/metriclabels"
)

// TestCorpus points the analyzer at the corpus's stand-in telemetry
// package and checks every registration/With shape in corpus/app.
func TestCorpus(t *testing.T) {
	drivertest.Run(t, "testdata/src/corpus", []*driver.Analyzer{
		metriclabels.New([]string{"corpus/telemetry"}),
	})
}
