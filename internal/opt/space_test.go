package opt

import (
	"testing"

	"overlapsim/internal/sweep"
)

func TestSpaceDedupesAndKeepsCoordsConnected(t *testing.T) {
	spec := sweep.Spec{
		GPUs:         []string{"H100"},
		GPUCounts:    []int{8},
		Models:       []string{"GPT-3 XL"},
		Parallelisms: []string{"fsdp", "tp"},
		TPDegrees:    []int{2, 4, 8},
	}
	sp, err := NewSpace(&spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The degree axis is inert for fsdp: 2x3 grid points, 1+3 unique.
	if sp.GridPoints != 6 {
		t.Errorf("GridPoints = %d, want 6", sp.GridPoints)
	}
	if len(sp.Cands) != 4 {
		t.Fatalf("candidates = %d, want 4 (1 fsdp + 3 tp)", len(sp.Cands))
	}
	// Every grid coordinate — including the collapsed fsdp/degree
	// duplicates — must resolve to a candidate, so neighborhoods stay
	// connected across collapsed planes.
	if len(sp.byCoord) != 6 {
		t.Errorf("byCoord holds %d coords, want all 6", len(sp.byCoord))
	}
	// The tp candidate at degree index 1 must see the (collapsed) fsdp
	// candidate as its parallelism-axis neighbor.
	var tpMid *Candidate
	for i := range sp.Cands {
		c := &sp.Cands[i]
		if c.Exp.Parallelism == "tp" && c.Exp.TPDegree == 4 {
			tpMid = c
		}
	}
	if tpMid == nil {
		t.Fatal("no tp degree-4 candidate")
	}
	seen := map[int]bool{}
	sp.neighbors(tpMid, 1, func(id int) { seen[id] = true })
	foundFSDP := false
	for id := range seen {
		if sp.Cands[id].Exp.Parallelism == "fsdp" {
			foundFSDP = true
		}
	}
	if !foundFSDP {
		t.Errorf("tp candidate's neighbors %v never cross into the collapsed fsdp plane", seen)
	}
}

func TestSpaceMaxGPUsPrunes(t *testing.T) {
	spec := sweep.Spec{
		GPUs:      []string{"A100"},
		GPUCounts: []int{4, 8},
		Models:    []string{"GPT-3 XL"},
	}
	sp, err := NewSpace(&spec, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Cands) != 1 || sp.PrunedGPUs != 1 {
		t.Fatalf("candidates = %d pruned = %d, want 1 and 1", len(sp.Cands), sp.PrunedGPUs)
	}
	if got := sp.Cands[0].Config.System.TotalGPUs(); got != 4 {
		t.Errorf("surviving candidate has %d GPUs, want 4", got)
	}
	if _, err := NewSpace(&spec, 2); err == nil {
		t.Error("a space with every candidate pruned must error")
	}
}

func TestCoarseGridFitsBudgetAndKeepsEndpoints(t *testing.T) {
	spec := sweep.Spec{
		GPUs:       []string{"A100"},
		Models:     []string{"GPT-3 XL"},
		Batches:    []int{8, 16},
		PowerCapsW: []float64{100, 150, 200, 250, 300, 350, 400, 0},
	}
	sp, err := NewSpace(&spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	ids := sp.coarseGrid(8)
	if len(ids) == 0 || len(ids) > 8 {
		t.Fatalf("coarse grid has %d points for budget 8", len(ids))
	}
	// Endpoints of every sampled axis survive: both batches at the
	// first and last power cap.
	want := map[[2]interface{}]bool{}
	for _, bs := range []int{8, 16} {
		for _, cap := range []float64{100, 0} {
			want[[2]interface{}{bs, cap}] = false
		}
	}
	for _, id := range ids {
		e := sp.Cands[id].Exp
		k := [2]interface{}{e.Batch, e.PowerCapW}
		if _, ok := want[k]; ok {
			want[k] = true
		}
	}
	for k, got := range want {
		if !got {
			t.Errorf("coarse grid misses corner %v: ids %v", k, ids)
		}
	}
	// Pure function of shape and budget.
	again := sp.coarseGrid(8)
	if len(again) != len(ids) {
		t.Fatalf("coarse grid not deterministic: %v vs %v", ids, again)
	}
	for i := range ids {
		if ids[i] != again[i] {
			t.Fatalf("coarse grid not deterministic: %v vs %v", ids, again)
		}
	}
}

func TestSampleIndices(t *testing.T) {
	cases := []struct {
		n, k int
		want []int
	}{
		{5, 10, []int{0, 1, 2, 3, 4}},
		{5, 1, []int{0}},
		{5, 2, []int{0, 4}},
		{7, 3, []int{0, 3, 6}},
		{2, 2, []int{0, 1}},
	}
	for _, tc := range cases {
		got := sampleIndices(tc.n, tc.k)
		if len(got) != len(tc.want) {
			t.Errorf("sampleIndices(%d,%d) = %v, want %v", tc.n, tc.k, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("sampleIndices(%d,%d) = %v, want %v", tc.n, tc.k, got, tc.want)
				break
			}
		}
	}
}
