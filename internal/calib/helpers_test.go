package calib

import (
	"context"
	"strings"
	"testing"

	"overlapsim/internal/collective"
	"overlapsim/internal/core"
	"overlapsim/internal/hw"
	"overlapsim/internal/model"
	"overlapsim/internal/precision"
	"overlapsim/internal/topo"
)

// groundTruth returns the "real machine" of the synthetic tests: the
// stock spec with every calibration parameter perturbed the way a
// physical H100 deviates from Table I. Tests generate measurements from
// this spec and check the fit recovers it from the stock starting
// point.
func groundTruth(t *testing.T, reg *hw.Registry, system string) (*hw.GPUSpec, hw.System) {
	t.Helper()
	if reg == nil {
		reg = hw.DefaultRegistry()
	}
	sys, err := reg.System(system)
	if err != nil {
		t.Fatal(err)
	}
	g := sys.GPU
	g.MaxEff = 0.93
	g.KHalfMatrix = 5200
	g.KHalfMatrixTF32 = 3500
	g.KHalfVector = 170
	g.MemHeadroom = 0.88
	g.AlgEff = 0.58
	g.LinkLatency = 4.2e-6
	g.Power.IdleW = 88
	g.Power.VectorW *= 1.06
	g.Power.MatrixW *= 1.06
	g.Power.MemW *= 1.06
	g.Power.CommW *= 1.06
	g.Power.SurgeW = 330
	if sys.NodeCount() > 1 {
		nic := sys.NICSpec()
		nic.AlgEff = 0.7
		nic.Latency = 8e-6
		sys.NIC = &nic
	}
	return g, sys
}

// syntheticMatmuls generates roofline sweep points from the ground
// truth with the exact model forms, so the closed-form fitters recover
// the parameters to float precision.
func syntheticMatmuls(g *hw.GPUSpec) []MatmulPoint {
	var pts []MatmulPoint
	for _, k := range []int{512, 1024, 2048, 4096, 8192, 16384} {
		for _, c := range []struct {
			dtype string
			mu    bool
		}{
			{"fp16", true},  // matrix half bucket
			{"fp32", true},  // TF32 bucket
			{"fp32", false}, // vector bucket
		} {
			format, _ := precision.Parse(c.dtype)
			eff := precision.EffectiveGEMMFormat(format, c.mu)
			path := precision.PathFor(eff, c.mu)
			frac := g.GEMMEff(float64(k), path, eff)
			pts = append(pts, MatmulPoint{
				M: 8192, N: 8192, K: k, Dtype: c.dtype, MatrixUnits: c.mu,
				TFLOPs: frac * g.PeakFLOPS(path, eff) / 1e12,
			})
		}
	}
	// One memory-bound point: a skinny GEMM whose time is the measured
	// HBM stream at the ground truth's achievable bandwidth.
	const m, n, k = 64, 64, 65536
	format := precision.FP16
	bytes := float64(m*k+k*n+m*n) * float64(format.Bytes())
	tMem := bytes / g.MemBW()
	flops := 2 * float64(m) * float64(n) * float64(k)
	pts = append(pts, MatmulPoint{
		M: m, N: n, K: k, Dtype: "fp16", MatrixUnits: true,
		TFLOPs: flops / tMem / 1e12,
	})
	return pts
}

// syntheticCollectives generates bus-bandwidth sweep points by running
// the real collective cost model on the ground-truth fabric.
func syntheticCollectives(g *hw.GPUSpec, sys hw.System) []CollectivePoint {
	gtSys := sys
	gtSys.GPU = g
	fabric := topo.ForSystem(gtSys)
	var pts []CollectivePoint
	ops := []collective.Op{collective.AllReduce, collective.AllGather, collective.Broadcast}
	ranks := []int{2, sys.N}
	if sys.NodeCount() > 1 {
		ranks = append(ranks, sys.TotalGPUs())
	}
	for _, op := range ops {
		for _, r := range ranks {
			for _, mb := range []float64{1, 16, 256} {
				d := collective.Desc{Name: op.String(), Op: op, Bytes: mb * (1 << 20), N: r}
				secs := collective.Time(d, fabric)
				pts = append(pts, CollectivePoint{
					Op: op.String(), Bytes: d.Bytes, Ranks: r,
					BusGBs: collective.BusBW(d, secs) / 1e9,
				})
			}
		}
	}
	return pts
}

// syntheticSteps measures end-to-end steps by simulating the
// ground-truth system — the stand-in for profiling a real machine.
func syntheticSteps(t *testing.T, g *hw.GPUSpec, sys hw.System) []StepPoint {
	t.Helper()
	gtSys := sys
	gtSys.GPU = g
	var pts []StepPoint
	for _, par := range []string{"fsdp", "ddp"} {
		cfg := core.Config{
			System: gtSys, Parallelism: mustParallelism(t, par),
			Batch: 8, Format: precision.FP16, MatrixUnits: true,
		}
		cfg.Model = mustModel(t, "GPT-3 XL")
		res, err := core.Run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("simulating ground-truth %s step: %v", par, err)
		}
		ovl := res.Overlapped
		pts = append(pts, StepPoint{
			Model: "GPT-3 XL", Parallelism: par, Batch: 8,
			Format: "fp16", MatrixUnits: true,
			StepMS:     ovl.Mean.E2E * 1e3,
			AvgPowerW:  ovl.AvgTDP * g.TDPW,
			PeakPowerW: ovl.PeakTDP * g.TDPW,
		})
	}
	return pts
}

// syntheticProfile assembles the full measured profile of the
// ground-truth machine.
func syntheticProfile(t *testing.T, gpu, system string, g *hw.GPUSpec, sys hw.System, withSteps bool) *Profile {
	t.Helper()
	p := &Profile{
		Version: SchemaVersion,
		Name:    "synthetic " + system,
		GPU:     gpu, System: system,
		Power:       &PowerProfile{IdleW: g.Power.IdleW},
		Matmuls:     syntheticMatmuls(g),
		Collectives: syntheticCollectives(g, sys),
	}
	if withSteps {
		p.Steps = syntheticSteps(t, g, sys)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("synthetic profile invalid: %v", err)
	}
	return p
}

// podRegistry returns an isolated registry holding a 2-node x 4-GPU
// H100 system named CalPod — the multi-node anchor for NIC-tier tests.
func podRegistry(t *testing.T) *hw.Registry {
	t.Helper()
	reg := hw.NewRegistry()
	err := reg.Load(strings.NewReader(`{"systems": [{
		"name": "CalPod", "gpu": "H100", "gpus_per_node": 4, "nodes": 2,
		"nic": {"bw_gbs": 50, "latency_s": 1e-5, "alg_eff": 0.8}
	}]}`))
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func mustParallelism(t *testing.T, name string) core.Parallelism {
	t.Helper()
	p, err := core.ParseParallelism(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustModel(t *testing.T, name string) model.Config {
	t.Helper()
	m, err := model.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return m
}
