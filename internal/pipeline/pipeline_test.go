package pipeline

import (
	"errors"
	"testing"
	"testing/quick"

	"overlapsim/internal/exec"
	"overlapsim/internal/gpu"
	"overlapsim/internal/hw"
	"overlapsim/internal/metrics"
	"overlapsim/internal/model"
	"overlapsim/internal/precision"
	"overlapsim/internal/strategy"
)

func tinyModel() model.Config {
	return model.Config{Name: "tiny", Arch: model.GPT3, NominalParams: 1e8,
		Layers: 8, Heads: 4, Hidden: 256, FFN: 1024, Vocab: 2048, SeqLen: 128}
}

func cluster(t *testing.T, g *hw.GPUSpec, n int) *gpu.Cluster {
	t.Helper()
	cl, err := gpu.New(gpu.Config{System: hw.NewSystem(g, n)})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func build(t *testing.T, mode exec.Mode, sched Schedule, batch int) *exec.Plan {
	t.Helper()
	cl := cluster(t, hw.A100(), 4)
	plan, err := BuildSchedule(cl, strategy.Params{
		Model: tinyModel(), Batch: batch, MicroBatch: 2, Format: precision.FP16,
		MatrixUnits: true, Checkpoint: true,
		Iterations: 2, Warmup: 1, Mode: mode,
	}, sched)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Run(); err != nil {
		t.Fatal(err)
	}
	return plan
}

func measured(t *testing.T, plan *exec.Plan) []metrics.Iteration {
	t.Helper()
	its, err := plan.MeasuredIterations()
	if err != nil {
		t.Fatal(err)
	}
	return its
}

func TestStageScheduleOneFOneB(t *testing.T) {
	n, m := 4, 6
	for s := 0; s < n; s++ {
		ops := stageSchedule(OneFOneB, s, n, m)
		if len(ops) != 2*m {
			t.Fatalf("stage %d: %d ops, want %d", s, len(ops), 2*m)
		}
		seenF := make(map[int]bool)
		nextF, nextB := 0, 0
		inflight := 0
		maxInflight := 0
		for _, o := range ops {
			if o.fwd {
				if o.mb != nextF {
					t.Fatalf("stage %d: forward out of order: %d want %d", s, o.mb, nextF)
				}
				nextF++
				seenF[o.mb] = true
				inflight++
			} else {
				if o.mb != nextB {
					t.Fatalf("stage %d: backward out of order: %d want %d", s, o.mb, nextB)
				}
				if !seenF[o.mb] {
					t.Fatalf("stage %d: backward %d before its forward", s, o.mb)
				}
				nextB++
				inflight--
			}
			if inflight > maxInflight {
				maxInflight = inflight
			}
		}
		warm := n - 1 - s
		if warm > m {
			warm = m
		}
		if maxInflight != warm+1 && m > warm {
			t.Errorf("stage %d: max in-flight %d, want %d", s, maxInflight, warm+1)
		}
	}
}

func TestStageScheduleGPipe(t *testing.T) {
	ops := stageSchedule(GPipe, 1, 4, 3)
	for i, o := range ops {
		if (i < 3) != o.fwd {
			t.Fatalf("GPipe order wrong at %d: %+v", i, o)
		}
	}
}

func TestStageScheduleFewMicrobatches(t *testing.T) {
	// M smaller than the warmup depth must still emit every op once.
	ops := stageSchedule(OneFOneB, 0, 8, 2)
	if len(ops) != 4 {
		t.Fatalf("%d ops, want 4", len(ops))
	}
}

func TestSplitLayers(t *testing.T) {
	got := splitLayers(10, 4)
	want := []int{3, 3, 2, 2}
	sum := 0
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("splitLayers(10,4) = %v, want %v", got, want)
		}
		sum += got[i]
	}
	if sum != 10 {
		t.Fatalf("layers lost: %v", got)
	}
}

func TestOverlappedRuns(t *testing.T) {
	plan := build(t, exec.Overlapped, OneFOneB, 8)
	its := measured(t, plan)
	if len(its) != 2 {
		t.Fatalf("measured %d iterations", len(its))
	}
	it := its[0]
	if it.E2E <= 0 || it.ComputeKernelTime <= 0 || it.CommKernelTime <= 0 {
		t.Errorf("degenerate iteration %+v", it)
	}
	if it.OverlapRatio() <= 0 {
		t.Error("1F1B with posted receives must show overlap")
	}
}

func TestSequentialBlockingGPipeCompletes(t *testing.T) {
	// The blocking wavefront must be deadlock-free for several shapes.
	for _, batch := range []int{4, 8, 16} {
		plan := build(t, exec.Sequential, OneFOneB, batch)
		for _, it := range measured(t, plan) {
			if ratio := it.OverlapRatio(); ratio > 0.01 {
				t.Errorf("batch %d: sequential overlap ratio %g", batch, ratio)
			}
		}
	}
}

func TestGPipeOverlappedCompletes(t *testing.T) {
	plan := build(t, exec.Overlapped, GPipe, 8)
	if len(measured(t, plan)) != 2 {
		t.Fatal("GPipe overlapped did not measure")
	}
}

func TestSequentialSlower(t *testing.T) {
	seq := measured(t, build(t, exec.Sequential, OneFOneB, 8))[0]
	ovl := measured(t, build(t, exec.Overlapped, OneFOneB, 8))[0]
	if seq.E2E <= ovl.E2E {
		t.Errorf("sequential %g not slower than overlapped %g", seq.E2E, ovl.E2E)
	}
}

func TestBatchDivisibility(t *testing.T) {
	cl := cluster(t, hw.A100(), 4)
	_, err := Build(cl, strategy.Params{Model: tinyModel(), Batch: 7, MicroBatch: 2})
	if err == nil {
		t.Error("batch 7 with microbatch 2 must fail")
	}
}

func TestTooFewGPUsOrLayers(t *testing.T) {
	if _, err := Build(cluster(t, hw.A100(), 1), strategy.Params{Model: tinyModel(), Batch: 8}); err == nil {
		t.Error("1 GPU cannot pipeline")
	}
	m := tinyModel()
	m.Layers = 2
	if _, err := Build(cluster(t, hw.A100(), 4), strategy.Params{Model: m, Batch: 8}); err == nil {
		t.Error("2 layers cannot fill 4 stages")
	}
}

func TestOOMGate(t *testing.T) {
	cl := cluster(t, hw.A100(), 4)
	_, err := Build(cl, strategy.Params{
		Model: model.GPT3_13B(), Batch: 8, MicroBatch: 2, Format: precision.FP16, Checkpoint: true,
	})
	var oom *model.ErrOOM
	if !errors.As(err, &oom) {
		t.Fatalf("want ErrOOM, got %v", err)
	}
}

func TestMoreMicrobatchesLongerIteration(t *testing.T) {
	small := measured(t, build(t, exec.Overlapped, OneFOneB, 4))[0]
	big := measured(t, build(t, exec.Overlapped, OneFOneB, 16))[0]
	if big.E2E <= small.E2E {
		t.Errorf("batch 16 iteration %g not longer than batch 4 %g", big.E2E, small.E2E)
	}
	if big.CommKernelTime <= small.CommKernelTime {
		t.Error("more microbatches must add communication kernel time")
	}
}

// Property: every stage schedule contains each microbatch's F and B
// exactly once, with F before B.
func TestQuickScheduleComplete(t *testing.T) {
	f := func(sRaw, nRaw, mRaw uint8) bool {
		n := int(nRaw%7) + 2
		s := int(sRaw) % n
		m := int(mRaw%12) + 1
		for _, sched := range []Schedule{OneFOneB, GPipe} {
			ops := stageSchedule(sched, s, n, m)
			if len(ops) != 2*m {
				return false
			}
			fSeen := make([]bool, m)
			bSeen := make([]bool, m)
			for _, o := range ops {
				if o.mb < 0 || o.mb >= m {
					return false
				}
				if o.fwd {
					if fSeen[o.mb] {
						return false
					}
					fSeen[o.mb] = true
				} else {
					if bSeen[o.mb] || !fSeen[o.mb] {
						return false
					}
					bSeen[o.mb] = true
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
