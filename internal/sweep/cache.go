package sweep

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"overlapsim/internal/core"
)

// Cache stores characterization results addressed by the canonical
// config fingerprint (core.Config.Fingerprint). Implementations must be
// safe for concurrent use by the sweep worker pool.
type Cache interface {
	// Get returns the cached result for the key, or false.
	Get(key string) (*core.Result, bool)
	// Put stores the result under the key.
	Put(key string, res *core.Result) error
}

// MemCache is an in-process content-addressed cache.
type MemCache struct {
	mu sync.RWMutex
	m  map[string]*core.Result
}

// NewMemCache returns an empty in-memory cache.
func NewMemCache() *MemCache {
	return &MemCache{m: make(map[string]*core.Result)}
}

// Get implements Cache.
func (c *MemCache) Get(key string) (*core.Result, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	res, ok := c.m[key]
	return res, ok
}

// Put implements Cache.
func (c *MemCache) Put(key string, res *core.Result) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = res
	return nil
}

// Len returns the number of cached results.
func (c *MemCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// DirCache is a content-addressed cache persisted as one JSON file per
// fingerprint in a directory, so sweeps hit the cache across process
// runs. Writes are atomic (temp file + rename); concurrent writers of
// the same key converge because the content is a pure function of it.
type DirCache struct {
	dir string
}

// NewDirCache opens (creating if needed) a directory-backed cache.
func NewDirCache(dir string) (*DirCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: cache dir: %w", err)
	}
	return &DirCache{dir: dir}, nil
}

// path maps a fingerprint to its file, refusing anything that is not a
// plain hex key (defense against path traversal via a crafted key).
func (c *DirCache) path(key string) (string, error) {
	if key == "" || strings.ContainsAny(key, "/\\.") {
		return "", fmt.Errorf("sweep: invalid cache key %q", key)
	}
	return filepath.Join(c.dir, key+".json"), nil
}

// Get implements Cache. Unreadable or corrupt entries are treated as
// misses so a damaged cache degrades to recomputation, never to failure.
func (c *DirCache) Get(key string) (*core.Result, bool) {
	p, err := c.path(key)
	if err != nil {
		return nil, false
	}
	b, err := os.ReadFile(p)
	if err != nil {
		return nil, false
	}
	var res core.Result
	if err := json.Unmarshal(b, &res); err != nil {
		return nil, false
	}
	return &res, true
}

// Put implements Cache. The write is crash-safe: the entry is staged in
// a temp file in the cache directory, fsynced, and renamed into place,
// so a killed process can leave an orphaned temp file but never a
// truncated entry visible under its key.
func (c *DirCache) Put(key string, res *core.Result) error {
	p, err := c.path(key)
	if err != nil {
		return err
	}
	b, err := json.Marshal(res)
	if err != nil {
		return fmt.Errorf("sweep: encoding cache entry: %w", err)
	}
	tmp, err := os.CreateTemp(c.dir, "put-*")
	if err != nil {
		return fmt.Errorf("sweep: cache write: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return fmt.Errorf("sweep: cache write: %w", err)
	}
	// Flush to stable storage before the rename publishes the entry: a
	// rename can survive a crash the data didn't, which would leave a
	// valid-looking key with empty or truncated bytes behind it.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("sweep: cache write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("sweep: cache write: %w", err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		return fmt.Errorf("sweep: cache write: %w", err)
	}
	return nil
}
