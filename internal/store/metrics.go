package store

import "overlapsim/internal/telemetry"

// Process-wide distributed-tier instrumentation on the default
// telemetry registry, served by overlapd's /metrics and /v1/stats.
var (
	mFlightLeaders = telemetry.Default.Counter("store_flight_leaders_total",
		"Singleflight computations led: distinct in-flight fingerprints actually computed.")
	mFlightWaiters = telemetry.Default.Counter("store_flight_waiters_total",
		"Singleflight waiters coalesced onto another caller's in-flight computation.")
	mTieredPromotions = telemetry.Default.Counter("store_tiered_promotions_total",
		"Cache entries promoted into a faster tier after a lower-tier hit.")
	mPeerRequests = telemetry.Default.CounterVec("store_peer_cache_requests_total",
		"Peer cache protocol requests, by operation and outcome.",
		"op", "outcome")
	mJournal = telemetry.Default.CounterVec("store_journal_records_total",
		"Job journal records, by event: appended, recovered at open, or skipped (torn tail).",
		"event")
)

// peerOp is the closed vocabulary of peer cache operations.
type peerOp string

const (
	peerOpGet peerOp = "get"
	peerOpPut peerOp = "put"
)

// peerOutcome is the closed vocabulary of peer request outcomes.
type peerOutcome string

const (
	peerOutcomeHit   peerOutcome = "hit"
	peerOutcomeMiss  peerOutcome = "miss"
	peerOutcomeOK    peerOutcome = "ok"
	peerOutcomeError peerOutcome = "error"
)

// journalOp is the closed vocabulary of journal record events.
type journalOp string

const (
	journalOpAppended  journalOp = "appended"
	journalOpRecovered journalOp = "recovered"
	journalOpSkipped   journalOp = "skipped"
)

func notePeer(op peerOp, outcome peerOutcome) {
	mPeerRequests.With(string(op), string(outcome)).Inc()
}

func noteJournal(event journalOp) {
	mJournal.With(string(event)).Inc()
}

// CoalescedTotal reports how many callers this process has coalesced
// onto another caller's in-flight computation — the singleflight win
// the /v1/stats endpoint surfaces.
func CoalescedTotal() uint64 { return mFlightWaiters.Value() }
