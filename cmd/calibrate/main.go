// Command calibrate closes the simulated-vs-measured loop from the
// command line. `calibrate fit` ingests a measured hardware profile
// (matmul roofline sweep, collective bus-bandwidth sweep, step-time and
// power breakdowns) and emits a hardware overlay JSON — an hw.Load
// file whose calibrated GPU and system flow through every name-keyed
// consumer (run, sweep, advise, overlapd) with no code changes.
// `calibrate validate` replays the profiled workloads on both the stock
// and the calibrated hardware and reports per-scenario and aggregate
// error (MAPE on step time, energy and average power).
//
// -validate parses and resolves a profile — schema, measurement
// sanity, registry names — without fitting anything; CI validates every
// example profile this way. -hw-file loads user-defined hardware first,
// so profiles can anchor to custom systems.
//
// Examples:
//
//	calibrate fit -profile examples/calibration/profile_h100x8.json -out overlay.json
//	calibrate validate -profile examples/calibration/profile_h100x8.json
//	calibrate -validate -profile examples/calibration/profile_h100x8.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"overlapsim/internal/calib"
	"overlapsim/internal/hw"
)

func usage(out *flag.FlagSet) func() {
	return func() {
		fmt.Fprintf(out.Output(), `usage:
  calibrate fit      -profile <profile.json> [-out overlay.json] [-override] [-suffix -cal] [-hw-file f]
  calibrate validate -profile <profile.json> [-override] [-suffix -cal] [-hw-file f]
                     [-csv f] [-json f] [-bench f] [-max-mape frac] [-require-improvement]
  calibrate -validate -profile <profile.json> [-hw-file f]

`)
		out.PrintDefaults()
		fmt.Fprintf(out.Output(), `
example profiles:
  examples/calibration/profile_h100x8.json  measured 8xH100 node (matmul, collective, step sweeps)
`)
	}
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("calibrate: ")

	if len(os.Args) >= 2 {
		switch os.Args[1] {
		case "fit":
			runFit(os.Args[2:])
			return
		case "validate":
			runValidate(os.Args[2:])
			return
		}
	}

	// Top-level mode: the -validate spec check (and usage).
	fs := flag.NewFlagSet("calibrate", flag.ExitOnError)
	var (
		profilePath = fs.String("profile", "", "measured profile JSON file")
		hwFile      = fs.String("hw-file", "", "load custom GPUs/systems from this JSON file first")
		validate    = fs.Bool("validate", false, "parse and validate the profile (schema, measurements, registry names) without fitting")
	)
	fs.Usage = usage(fs)
	fs.Parse(os.Args[1:])
	if !*validate {
		fs.Usage()
		log.Fatal("missing subcommand: fit or validate (or -validate for a spec check)")
	}
	loadHW(*hwFile)
	p := parseProfile(*profilePath)
	if _, err := resolveNames(p); err != nil {
		log.Fatalf("invalid profile: %v", err)
	}
	fmt.Printf("profile %q ok: %d matmul, %d collective, %d step points on %s/%s\n",
		p.Name, len(p.Matmuls), len(p.Collectives), len(p.Steps), p.GPU, p.System)
}

func runFit(args []string) {
	fs := flag.NewFlagSet("calibrate fit", flag.ExitOnError)
	var (
		profilePath = fs.String("profile", "", `measured profile JSON file ("-" reads stdin)`)
		outPath     = fs.String("out", "", `overlay output file (default stdout)`)
		override    = fs.Bool("override", false, `emit "override": true entries that replace the stock hardware on load`)
		suffix      = fs.String("suffix", calib.DefaultSuffix, "name suffix for the calibrated GPU/system (ignored with -override)")
		hwFile      = fs.String("hw-file", "", "load custom GPUs/systems from this JSON file first")
		quiet       = fs.Bool("q", false, "suppress the fit notes")
	)
	fs.Usage = usage(fs)
	fs.Parse(args)
	loadHW(*hwFile)
	p := parseProfile(*profilePath)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	f, err := calib.Fit(ctx, p, calib.FitOptions{Suffix: *suffix, Override: *override})
	if err != nil {
		log.Fatal(err)
	}
	if !*quiet {
		for _, n := range f.Notes {
			fmt.Fprintf(os.Stderr, "  %s\n", n)
		}
		fmt.Fprintf(os.Stderr, "fitted %s -> %s, %s -> %s\n", f.BaseGPU, f.GPU.Name, f.BaseSystem, f.System.Name)
	}
	overlay, err := f.Overlay()
	if err != nil {
		log.Fatal(err)
	}
	if *outPath == "" || *outPath == "-" {
		os.Stdout.Write(overlay)
		return
	}
	if err := os.WriteFile(*outPath, overlay, 0o644); err != nil {
		log.Fatal(err)
	}
}

func runValidate(args []string) {
	fs := flag.NewFlagSet("calibrate validate", flag.ExitOnError)
	var (
		profilePath = fs.String("profile", "", `measured profile JSON file ("-" reads stdin)`)
		override    = fs.Bool("override", false, "fit in override mode (calibrated hardware keeps the stock names)")
		suffix      = fs.String("suffix", calib.DefaultSuffix, "name suffix for the calibrated GPU/system (ignored with -override)")
		hwFile      = fs.String("hw-file", "", "load custom GPUs/systems from this JSON file first")
		csvPath     = fs.String("csv", "", "also write the per-scenario table as CSV to this file")
		jsonPath    = fs.String("json", "", `also write the report as JSON to this file ("-" writes stdout)`)
		benchPath   = fs.String("bench", "", "append the report as Markdown table rows to this file (BENCH.md trajectory)")
		maxMAPE     = fs.Float64("max-mape", 0, "exit nonzero if the calibrated aggregate MAPE exceeds this fraction (0 = no threshold)")
		requireImp  = fs.Bool("require-improvement", false, "exit nonzero unless calibration lowers the aggregate MAPE")
		quiet       = fs.Bool("q", false, "suppress the table (aggregate lines only)")
	)
	fs.Usage = usage(fs)
	fs.Parse(args)
	loadHW(*hwFile)
	p := parseProfile(*profilePath)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	f, err := calib.Fit(ctx, p, calib.FitOptions{Suffix: *suffix, Override: *override})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := calib.Validate(ctx, p, f)
	if err != nil {
		log.Fatal(err)
	}

	if !*quiet {
		if err := rep.WriteTable(os.Stdout); err != nil {
			log.Fatal(err)
		}
	} else {
		fmt.Printf("stock MAPE %.2f%%, calibrated MAPE %.2f%%\n",
			rep.StockError.MAPE*100, rep.CalibratedError.MAPE*100)
	}
	if *csvPath != "" {
		out, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := rep.WriteCSV(out); err != nil {
			log.Fatal(err)
		}
		if err := out.Close(); err != nil {
			log.Fatal(err)
		}
	}
	if *jsonPath != "" {
		out := os.Stdout
		if *jsonPath != "-" {
			f, err := os.Create(*jsonPath)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			out = f
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			log.Fatal(err)
		}
	}
	if *benchPath != "" {
		out, err := os.OpenFile(*benchPath, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			log.Fatal(err)
		}
		if err := rep.BenchRows(out); err != nil {
			log.Fatal(err)
		}
		if err := out.Close(); err != nil {
			log.Fatal(err)
		}
	}
	if *requireImp && !rep.Improved {
		log.Fatalf("calibration did not improve: stock MAPE %.2f%%, calibrated %.2f%%",
			rep.StockError.MAPE*100, rep.CalibratedError.MAPE*100)
	}
	if *maxMAPE > 0 && rep.CalibratedError.MAPE > *maxMAPE {
		log.Fatalf("calibrated aggregate MAPE %.2f%% exceeds the %.2f%% threshold",
			rep.CalibratedError.MAPE*100, *maxMAPE*100)
	}
}

func loadHW(path string) {
	if path == "" {
		return
	}
	if err := hw.LoadFile(path); err != nil {
		log.Fatal(err)
	}
}

func parseProfile(path string) *calib.Profile {
	if path == "" {
		log.Fatal("missing -profile")
	}
	if path == "-" {
		p, err := calib.Parse(os.Stdin)
		if err != nil {
			log.Fatal(err)
		}
		return p
	}
	p, err := calib.ParseFile(path)
	if err != nil {
		log.Fatal(err)
	}
	return p
}

// resolveNames checks the profile's hardware names against the
// registry — the part of -validate that Profile.Validate leaves to fit
// time.
func resolveNames(p *calib.Profile) (hw.System, error) {
	if g := hw.ByName(p.GPU); g == nil {
		return hw.System{}, fmt.Errorf("profile GPU %q is not registered", p.GPU)
	}
	return hw.SystemByName(p.System)
}
