// Package sweep is the design-space exploration engine: a declarative
// sweep specification expands cartesian grids over the characterization
// axes the paper studies (GPU, model, parallelism, batch size, precision,
// power cap — strategy names validated against the registry) into
// core.Configs, a bounded worker pool executes them
// concurrently with fail-soft per-point error collection, and a
// content-addressed cache keyed by the canonical config fingerprint makes
// repeated and overlapping sweeps near-free.
package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"overlapsim/internal/core"
	"overlapsim/internal/hw"
	"overlapsim/internal/model"
	"overlapsim/internal/power"
	"overlapsim/internal/precision"
	"overlapsim/internal/strategy"
)

// Experiment names one experiment in the catalog vocabulary the API and
// CLIs share: systems, GPUs and models by registry name, strategies and
// formats by their conventional lowercase spellings. The zero value of
// every optional field selects the paper's base configuration (4 GPUs,
// FSDP, batch 8, FP16 on matrix units, uncapped power).
type Experiment struct {
	// System names a registered system ("H100x8", or anything
	// hw.RegisterSystem/hw.Load added). When set it supplies the whole
	// platform and GPU/GPUCount/Nodes must stay empty.
	System string `json:"system,omitempty"`
	// GPU is a registered GPU name ("A100", "H100", "MI210", "MI250",
	// or a loaded custom part).
	GPU string `json:"gpu,omitempty"`
	// GPUCount is the number of GPUs per node (default 4).
	GPUCount int `json:"gpu_count,omitempty"`
	// Nodes is the number of nodes joined by the NIC tier (0 and 1 mean
	// a single node).
	Nodes int `json:"nodes,omitempty"`
	// Model is the Table II workload name ("GPT-3 XL", ...).
	Model string `json:"model"`
	// Parallelism is a registered strategy name — "fsdp", "pp", "ddp",
	// "tp", or any strategy a build links in (default "fsdp").
	Parallelism string `json:"parallelism,omitempty"`
	// Batch is the global batch size (default 8).
	Batch int `json:"batch,omitempty"`
	// MicroBatch is the pipeline microbatch size (0 picks the default).
	MicroBatch int `json:"micro_batch,omitempty"`
	// TPDegree is the tensor-parallel group size (0 picks the default of
	// the whole node).
	TPDegree int `json:"tp_degree,omitempty"`
	// Format is "fp32", "tf32", "fp16" or "bf16" (default "fp16").
	Format string `json:"format,omitempty"`
	// VectorOnly disables Tensor/Matrix cores (the Fig. 11 ablation).
	VectorOnly bool `json:"vector_only,omitempty"`
	// NoCheckpoint disables activation recomputation.
	NoCheckpoint bool `json:"no_checkpoint,omitempty"`
	// GradAccumSteps enables gradient accumulation under FSDP.
	GradAccumSteps int `json:"grad_accum_steps,omitempty"`
	// Iterations and Warmup override the measured/unmeasured iteration
	// counts (0 keeps the §IV-D defaults).
	Iterations int `json:"iterations,omitempty"`
	Warmup     int `json:"warmup,omitempty"`
	// PowerCapW is the per-GPU power cap in watts (0 = uncapped).
	PowerCapW float64 `json:"power_cap_w,omitempty"`
	// FreqCap is the DVFS frequency cap factor in (0,1] (0 = uncapped).
	FreqCap float64 `json:"freq_cap,omitempty"`
	// SkipMemoryCheck disables the HBM feasibility gate.
	SkipMemoryCheck bool `json:"skip_memory_check,omitempty"`
}

// system resolves the experiment's platform: a registered system by
// name, or one assembled from the GPU/GPUCount/Nodes fields.
func (e Experiment) system() (hw.System, error) {
	if e.System != "" {
		if e.GPU != "" || e.GPUCount != 0 || e.Nodes != 0 {
			return hw.System{}, fmt.Errorf("sweep: system %q and gpu/gpu_count/nodes are mutually exclusive", e.System)
		}
		sys, err := hw.SystemByName(e.System)
		if err != nil {
			return hw.System{}, fmt.Errorf("sweep: %w", err)
		}
		return sys, nil
	}
	g := hw.ByName(e.GPU)
	if g == nil {
		return hw.System{}, fmt.Errorf("sweep: unknown GPU %q (have %v)", e.GPU, hw.Names())
	}
	n := e.GPUCount
	if n == 0 {
		n = 4
	}
	if n < 1 {
		return hw.System{}, fmt.Errorf("sweep: invalid GPU count %d", n)
	}
	if e.Nodes < 0 {
		return hw.System{}, fmt.Errorf("sweep: invalid node count %d", e.Nodes)
	}
	if e.Nodes > 1 {
		return hw.NewMultiNode(g, n, e.Nodes), nil
	}
	return hw.NewSystem(g, n), nil
}

// Config resolves the experiment against the platform and model
// registries into a runnable core.Config.
func (e Experiment) Config() (core.Config, error) {
	sys, err := e.system()
	if err != nil {
		return core.Config{}, err
	}
	m, err := model.ByName(e.Model)
	if err != nil {
		return core.Config{}, fmt.Errorf("sweep: %w (have %v)", err, model.Names())
	}
	parName := e.Parallelism
	if parName == "" {
		parName = "fsdp"
	}
	par, err := core.ParseParallelism(parName)
	if err != nil {
		return core.Config{}, err
	}
	fmtName := e.Format
	if fmtName == "" {
		fmtName = "fp16"
	}
	f, err := precision.Parse(fmtName)
	if err != nil {
		return core.Config{}, err
	}
	batch := e.Batch
	if batch == 0 {
		batch = 8
	}
	if batch < 1 {
		return core.Config{}, fmt.Errorf("sweep: invalid batch %d", batch)
	}
	if e.TPDegree < 0 {
		return core.Config{}, fmt.Errorf("sweep: invalid TP degree %d", e.TPDegree)
	}
	caps := power.Caps{PowerW: e.PowerCapW, FreqFactor: e.FreqCap}
	if err := caps.Validate(sys.GPU); err != nil {
		return core.Config{}, err
	}
	return core.Config{
		System:          sys,
		Model:           m,
		Parallelism:     par,
		Batch:           batch,
		MicroBatch:      e.MicroBatch,
		TPDegree:        e.TPDegree,
		Format:          f,
		MatrixUnits:     !e.VectorOnly,
		NoCheckpoint:    e.NoCheckpoint,
		GradAccumSteps:  e.GradAccumSteps,
		Iterations:      e.Iterations,
		Warmup:          e.Warmup,
		Caps:            caps,
		SkipMemoryCheck: e.SkipMemoryCheck,
	}, nil
}

// Spec is a declarative sweep: the cartesian product of the axis fields,
// with the Base experiment supplying every knob an axis does not cover.
// Empty axes default to the corresponding Base value, so the smallest
// valid spec lists only GPUs and Models.
type Spec struct {
	// Name labels the sweep in reports and job listings.
	Name string `json:"name,omitempty"`
	// Systems are registered system names. A spec lists either Systems
	// or GPUs (with the optional GPUCounts/Nodes shape axes), not both.
	Systems []string `json:"systems,omitempty"`
	// GPUs are registered GPU names.
	GPUs []string `json:"gpus,omitempty"`
	// GPUCounts are node sizes (default: Base.GPUCount or 4).
	GPUCounts []int `json:"gpu_counts,omitempty"`
	// Nodes are node counts joined by the NIC tier (default: Base.Nodes
	// or a single node). Applies to the GPUs axis only — a named system
	// carries its own shape.
	Nodes []int `json:"nodes,omitempty"`
	// Models are Table II workload names (required).
	Models []string `json:"models"`
	// Parallelisms are registered strategy names (default:
	// Base.Parallelism or fsdp); expansion validates each against the
	// strategy registry.
	Parallelisms []string `json:"parallelisms,omitempty"`
	// Batches are global batch sizes (default: Base.Batch or 8).
	Batches []int `json:"batches,omitempty"`
	// TPDegrees are tensor-parallel group sizes (default: Base.TPDegree).
	// The axis applies only to strategies whose registry Info reads the
	// knob; for every other strategy one point is expanded at the base
	// degree, so a mixed fsdp+tp spec does not duplicate fsdp points.
	TPDegrees []int `json:"tp_degrees,omitempty"`
	// Formats are numeric format names (default: Base.Format or fp16).
	Formats []string `json:"formats,omitempty"`
	// PowerCapsW are per-GPU power caps in watts; 0 means uncapped
	// (default: Base.PowerCapW).
	PowerCapsW []float64 `json:"power_caps_w,omitempty"`
	// MatrixUnits sweeps the Tensor/Matrix-core toggle (default: the
	// complement of Base.VectorOnly).
	MatrixUnits []bool `json:"matrix_units,omitempty"`
	// Base supplies the non-swept knobs (microbatch, checkpointing,
	// iteration counts, frequency cap, ...). Its GPU/Model fields are
	// ignored — the axes above own them.
	Base Experiment `json:"base,omitempty"`
}

// ParseSpec decodes a JSON sweep spec, rejecting unknown fields so typos
// in axis names fail loudly instead of silently shrinking the grid.
func ParseSpec(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("sweep: parsing spec: %w", err)
	}
	return &s, nil
}

// effectiveStrategy resolves a parallelism axis value in the experiment
// vocabulary, where the empty name means the fsdp default.
func effectiveStrategy(name string) (strategy.Strategy, error) {
	if name == "" {
		name = "fsdp"
	}
	return strategy.Lookup(name)
}

// degreeAxisLen returns how many TP-degree points the axis contributes
// for one strategy: its full length for strategies that read the knob
// (and for unknown names, keeping Size an upper bound), one otherwise.
func (s *Spec) degreeAxisLen(par string) int {
	if len(s.TPDegrees) == 0 {
		return 1
	}
	if st, err := effectiveStrategy(par); err == nil && !st.Describe().TPDegree {
		return 1
	}
	return len(s.TPDegrees)
}

// platformPoints returns how many points the platform axes (Systems, or
// GPUs × GPUCounts × Nodes) contribute.
func (s *Spec) platformPoints() int {
	if len(s.Systems) > 0 {
		return len(s.Systems)
	}
	pts := len(s.GPUs)
	for _, k := range []int{len(s.GPUCounts), len(s.Nodes)} {
		if k > 0 {
			pts = satMul(pts, k)
		}
	}
	return pts
}

// Size returns the number of cartesian grid points the spec describes,
// including the per-strategy TP-degree axis collapse. Expand additionally
// deduplicates points that canonicalize to the same fingerprint, so Size
// is an exact upper bound on the expansion (equal to it whenever the
// axes hold no overlapping values) — the service's pre-materialization
// limit check therefore never falsely rejects a valid spec. It saturates
// at math.MaxInt so adversarially long axes cannot wrap the product past
// a size limit.
func (s *Spec) Size() int {
	base := satMul(s.platformPoints(), len(s.Models))
	for _, k := range []int{
		len(s.Batches), len(s.Formats),
		len(s.PowerCapsW), len(s.MatrixUnits),
	} {
		if k > 0 {
			base = satMul(base, k)
		}
	}
	pars := s.Parallelisms
	if len(pars) == 0 {
		pars = []string{s.Base.Parallelism}
	}
	total := 0
	for _, par := range pars {
		total = satAdd(total, satMul(base, s.degreeAxisLen(par)))
	}
	return total
}

// satAdd adds non-negative ints, saturating at math.MaxInt.
func satAdd(a, b int) int {
	if a > math.MaxInt-b {
		return math.MaxInt
	}
	return a + b
}

// satMul multiplies non-negative ints, saturating at math.MaxInt.
func satMul(a, b int) int {
	if a == 0 || b == 0 {
		return 0
	}
	if a > math.MaxInt/b {
		return math.MaxInt
	}
	return a * b
}

// Platform is one point of the platform axes: a named system, or a
// GPU/shape triple.
type Platform struct {
	System   string
	GPU      string
	GPUCount int
	Nodes    int
}

// platforms materializes the platform axis, validating the
// Systems-versus-GPUs exclusivity.
func (s *Spec) platforms() ([]Platform, error) {
	if len(s.Systems) > 0 {
		if len(s.GPUs) > 0 || len(s.GPUCounts) > 0 || len(s.Nodes) > 0 {
			return nil, fmt.Errorf("sweep: spec %q lists both systems and gpus/gpu_counts/nodes axes", s.Name)
		}
		out := make([]Platform, len(s.Systems))
		for i, name := range s.Systems {
			out[i] = Platform{System: name}
		}
		return out, nil
	}
	if len(s.GPUs) == 0 {
		return nil, fmt.Errorf("sweep: spec %q lists no systems or GPUs", s.Name)
	}
	counts := s.GPUCounts
	if len(counts) == 0 {
		counts = []int{s.Base.GPUCount}
	}
	nodes := s.Nodes
	if len(nodes) == 0 {
		nodes = []int{s.Base.Nodes}
	}
	var out []Platform
	for _, gpu := range s.GPUs {
		for _, n := range counts {
			for _, nd := range nodes {
				out = append(out, Platform{GPU: gpu, GPUCount: n, Nodes: nd})
			}
		}
	}
	return out, nil
}

// Axes is a spec's normalized axis set: every axis non-empty with the
// Base defaults applied, and the platform axes resolved into one
// Platform per point. Expand iterates it in row-major order, and the
// advisor (internal/opt) derives coordinate search spaces from it, so
// both agree on axis order, defaults and the per-strategy TP-degree
// collapse.
type Axes struct {
	Platforms    []Platform
	Models       []string
	Parallelisms []string
	Batches      []int
	TPDegrees    []int
	Formats      []string
	PowerCapsW   []float64
	MatrixUnits  []bool
	Base         Experiment
}

// Axes normalizes the spec's axes, validating the platform-axis
// exclusivity and that models are present. Registry names are resolved
// later, per point, by Experiment.Config.
func (s *Spec) Axes() (*Axes, error) {
	plats, err := s.platforms()
	if err != nil {
		return nil, err
	}
	if len(s.Models) == 0 {
		return nil, fmt.Errorf("sweep: spec %q lists no models", s.Name)
	}
	a := &Axes{
		Platforms:    plats,
		Models:       s.Models,
		Parallelisms: s.Parallelisms,
		Batches:      s.Batches,
		TPDegrees:    s.TPDegrees,
		Formats:      s.Formats,
		PowerCapsW:   s.PowerCapsW,
		MatrixUnits:  s.MatrixUnits,
		Base:         s.Base,
	}
	if len(a.Parallelisms) == 0 {
		a.Parallelisms = []string{s.Base.Parallelism}
	}
	if len(a.Batches) == 0 {
		a.Batches = []int{s.Base.Batch}
	}
	if len(a.TPDegrees) == 0 {
		a.TPDegrees = []int{s.Base.TPDegree}
	}
	if len(a.Formats) == 0 {
		a.Formats = []string{s.Base.Format}
	}
	if len(a.PowerCapsW) == 0 {
		a.PowerCapsW = []float64{s.Base.PowerCapW}
	}
	if len(a.MatrixUnits) == 0 {
		a.MatrixUnits = []bool{!s.Base.VectorOnly}
	}
	return a, nil
}

// Dims returns the axis lengths in row-major iteration order: platform,
// model, parallelism, batch, TP degree, format, power cap, matrix units.
func (a *Axes) Dims() []int {
	return []int{
		len(a.Platforms), len(a.Models), len(a.Parallelisms),
		len(a.Batches), len(a.TPDegrees), len(a.Formats),
		len(a.PowerCapsW), len(a.MatrixUnits),
	}
}

// At builds the experiment at one coordinate of the axis grid (indices
// in Dims order). Strategies whose registry Info does not read the
// TP-degree knob are pinned to the base degree, so every coordinate
// along an inert degree axis yields the same experiment — Expand and the
// advisor both collapse those through fingerprint deduplication.
func (a *Axes) At(coord []int) Experiment {
	e := a.Base
	plat := a.Platforms[coord[0]]
	e.System = plat.System
	e.GPU = plat.GPU
	e.GPUCount = plat.GPUCount
	e.Nodes = plat.Nodes
	e.Model = a.Models[coord[1]]
	e.Parallelism = a.Parallelisms[coord[2]]
	e.Batch = a.Batches[coord[3]]
	e.TPDegree = a.TPDegrees[coord[4]]
	if st, err := effectiveStrategy(e.Parallelism); err == nil && !st.Describe().TPDegree {
		e.TPDegree = a.Base.TPDegree
	}
	e.Format = a.Formats[coord[5]]
	e.PowerCapW = a.PowerCapsW[coord[6]]
	e.VectorOnly = !a.MatrixUnits[coord[7]]
	return e
}

// Next advances coord to the following row-major grid point, returning
// false after the last one. A coord of all zeros is the first point.
func Next(coord, dims []int) bool {
	for i := len(coord) - 1; i >= 0; i-- {
		coord[i]++
		if coord[i] < dims[i] {
			return true
		}
		coord[i] = 0
	}
	return false
}

// Expand resolves the spec into one Experiment per unique grid point, in
// deterministic row-major axis order (platform outermost, matrix units
// innermost). Points whose configs canonicalize to the same fingerprint
// — overlapping axis values, or knobs inert for a strategy — expand
// once, at their first coordinate, so no grid ever runs (or caches) the
// same configuration twice. It fails on an empty grid or any name that
// does not resolve against the registries — systems, GPUs, models and
// strategies alike.
func (s *Spec) Expand() ([]Experiment, []core.Config, error) {
	axes, err := s.Axes()
	if err != nil {
		return nil, nil, err
	}
	dims := axes.Dims()
	coord := make([]int, len(dims))
	seen := make(map[string]struct{})
	var exps []Experiment
	var cfgs []core.Config
	for ok := true; ok; ok = Next(coord, dims) {
		e := axes.At(coord)
		cfg, err := e.Config()
		if err != nil {
			return nil, nil, fmt.Errorf("sweep: spec %q point %d: %w", s.Name, len(exps), err)
		}
		key, err := cfg.Fingerprint()
		if err != nil {
			return nil, nil, fmt.Errorf("sweep: spec %q point %d: %w", s.Name, len(exps), err)
		}
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		exps = append(exps, e)
		cfgs = append(cfgs, cfg)
	}
	return exps, cfgs, nil
}

// Validate expands the spec without running anything, so a CLI (or CI
// step) can reject bad axes — unknown system/GPU/model/strategy names,
// invalid shapes, conflicting platform axes — before any simulation
// starts. It returns the number of unique grid points the spec expands
// to after fingerprint deduplication.
func (s *Spec) Validate() (int, error) {
	_, cfgs, err := s.Expand()
	if err != nil {
		return 0, err
	}
	return len(cfgs), nil
}
