package power

import (
	"fmt"

	"overlapsim/internal/hw"
)

// Telemetry sampling intervals matching the paper's methodology (§IV-D and
// §V-B).
const (
	// NVMLInterval is the NVML power sampling interval on NVIDIA GPUs
	// (100 ms).
	NVMLInterval = 100e-3
	// AMDSMIInterval is the AMD-SMI sampling interval (20 ms).
	AMDSMIInterval = 20e-3
	// TraceInterval is the fine-grained ROCm-SMI interval used for the
	// Fig. 7 power trace (1 ms).
	TraceInterval = 1e-3
)

// SamplerIntervalFor returns the vendor-default sampling interval.
func SamplerIntervalFor(v hw.Vendor) float64 {
	if v == hw.AMD {
		return AMDSMIInterval
	}
	return NVMLInterval
}

// Sample is one telemetry reading: the instantaneous power at one sampler
// tick.
type Sample struct {
	// T is the reading time in seconds.
	T float64
	// Watts is the power at that instant.
	Watts float64
}

// segment is one span of constant instantaneous power.
type segment struct {
	t0, t1 float64
	watts  float64
}

// Sampler converts piecewise-constant instantaneous power into periodic
// point samples — the way NVML and AMD-SMI read a power register every
// interval — and integrates exact energy on the side. A coarse interval
// therefore misses short excursions, exactly as the paper observes for
// NVML's 100 ms granularity versus AMD-SMI's finer modes. The zero value
// is not usable; construct with NewSampler.
type Sampler struct {
	interval float64
	segs     []segment
	energy   float64
	dur      float64
	peakInst float64
}

// NewSampler returns a sampler reading every interval seconds. The
// interval must be positive: it can come straight from user
// configuration (core.Config.TraceInterval, the JSON hardware schema's
// calibration fields), so a bad value is an error, not a panic.
func NewSampler(interval float64) (*Sampler, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("power: invalid sampler interval %g", interval)
	}
	return &Sampler{interval: interval}, nil
}

// Interval returns the sampler tick period.
func (s *Sampler) Interval() float64 { return s.interval }

// Add records that instantaneous power was watts over [t0, t1). Spans must
// be appended in non-decreasing time order (the simulator guarantees
// this). Adjacent spans at equal power merge to bound memory.
func (s *Sampler) Add(t0, t1, watts float64) {
	if t1 <= t0 {
		return
	}
	s.energy += watts * (t1 - t0)
	s.dur += t1 - t0
	if watts > s.peakInst {
		s.peakInst = watts
	}
	if n := len(s.segs); n > 0 {
		last := &s.segs[n-1]
		if last.watts == watts && t0 <= last.t1+1e-12 {
			if t1 > last.t1 {
				last.t1 = t1
			}
			return
		}
	}
	s.segs = append(s.segs, segment{t0: t0, t1: t1, watts: watts})
}

// Samples returns the periodic point readings: the instantaneous power at
// every tick k·interval that falls inside a recorded span.
func (s *Sampler) Samples() []Sample {
	var out []Sample
	si := 0
	if len(s.segs) == 0 {
		return nil
	}
	end := s.segs[len(s.segs)-1].t1
	for k := 0; ; k++ {
		t := float64(k) * s.interval
		if t > end {
			break
		}
		for si < len(s.segs) && s.segs[si].t1 <= t {
			si++
		}
		if si >= len(s.segs) {
			break
		}
		if seg := s.segs[si]; t >= seg.t0 {
			out = append(out, Sample{T: t, Watts: seg.watts})
		}
	}
	return out
}

// Energy returns total integrated energy in joules (exact, independent of
// the sampling interval).
func (s *Sampler) Energy() float64 { return s.energy }

// Avg returns the time-weighted average power in watts (exact).
func (s *Sampler) Avg() float64 {
	if s.dur <= 0 {
		return 0
	}
	return s.energy / s.dur
}

// peakPhases is the number of sampling-grid phase offsets Peak explores.
// The paper averages over 25 runs; each run's sampler grid lands at a
// different phase of the iteration, so the reported peak is effectively
// the maximum over many phases.
const peakPhases = 25

// Peak returns the highest periodic reading in watts — what a power
// monitor at this interval reports as peak over repeated runs. A segment
// shorter than interval/peakPhases can still escape every grid, exactly
// as sub-millisecond transients escape real monitors.
func (s *Sampler) Peak() float64 {
	p := 0.0
	for ph := 0; ph < peakPhases; ph++ {
		off := s.interval * float64(ph) / peakPhases
		si := 0
		for k := 0; ; k++ {
			t := float64(k)*s.interval + off
			for si < len(s.segs) && s.segs[si].t1 <= t {
				si++
			}
			if si >= len(s.segs) {
				break
			}
			if seg := s.segs[si]; t >= seg.t0 && seg.watts > p {
				p = seg.watts
			}
		}
	}
	return p
}

// PeakInstant returns the highest instantaneous power regardless of
// sampling (the model's true transient peak).
func (s *Sampler) PeakInstant() float64 { return s.peakInst }

// Stats summarizes a sampler relative to a GPU's TDP.
type Stats struct {
	// AvgW is exact average power in watts.
	AvgW float64
	// PeakW is the highest periodic reading in watts.
	PeakW float64
	// PeakInstantW is the unsampled instantaneous peak.
	PeakInstantW float64
	// AvgTDP and PeakTDP are the same normalized to TDP (the paper's
	// Fig. 6/10/11 y-axes; peak uses the sampled reading, as the paper's
	// monitors do).
	AvgTDP, PeakTDP float64
	// EnergyJ is integrated energy in joules.
	EnergyJ float64
}

// StatsFor summarizes sampler s against GPU g. The reported peak is never
// below the exact average: on runs much shorter than the sampling
// interval the sparse point readings could otherwise miss every busy
// segment, which no real monitor's max-reading would.
func StatsFor(s *Sampler, g *hw.GPUSpec) Stats {
	peak := s.Peak()
	if avg := s.Avg(); peak < avg {
		peak = avg
	}
	return Stats{
		AvgW:         s.Avg(),
		PeakW:        peak,
		PeakInstantW: s.PeakInstant(),
		AvgTDP:       s.Avg() / g.TDPW,
		PeakTDP:      peak / g.TDPW,
		EnergyJ:      s.Energy(),
	}
}
