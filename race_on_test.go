//go:build race

package overlapsim_bench

// raceEnabled reports whether the race detector is active.
const raceEnabled = true
