package sweep

import (
	"strings"
	"testing"
)

// The systems axis resolves registered system names — the paper systems
// and anything hw.Load added — directly into platform points.
func TestSpecSystemsAxis(t *testing.T) {
	spec := Spec{
		Systems: []string{"H100x4", "H100x8", "MI250x4"},
		Models:  []string{"GPT-3 XL"},
	}
	if got := spec.Size(); got != 3 {
		t.Fatalf("Size() = %d, want 3", got)
	}
	exps, cfgs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 3 {
		t.Fatalf("expanded to %d points", len(cfgs))
	}
	if exps[1].System != "H100x8" || cfgs[1].System.TotalGPUs() != 8 {
		t.Errorf("point 1 = %+v / %s", exps[1], cfgs[1].System.Name)
	}
	// Registry-resolved points must fingerprint like constructor-built
	// configs (cache compatibility across the API redesign).
	fp, err := cfgs[0].Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	legacy := cfgs[0]
	legacy.System.Nodes, legacy.System.NIC, legacy.System.Fabric = 0, nil, ""
	if lfp, _ := legacy.Fingerprint(); lfp != fp {
		t.Error("registry system fingerprints differ from the bare single-node encoding")
	}
}

// The nodes axis scales a GPU shape across the NIC tier.
func TestSpecNodesAxis(t *testing.T) {
	spec := Spec{
		GPUs:      []string{"H100"},
		GPUCounts: []int{8},
		Nodes:     []int{1, 2, 4},
		Models:    []string{"GPT-3 XL"},
		Batches:   []int{64},
	}
	if got := spec.Size(); got != 3 {
		t.Fatalf("Size() = %d, want 3", got)
	}
	exps, cfgs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	totals := []int{8, 16, 32}
	for i, cfg := range cfgs {
		if cfg.System.TotalGPUs() != totals[i] {
			t.Errorf("point %d: %d total GPUs, want %d", i, cfg.System.TotalGPUs(), totals[i])
		}
	}
	if exps[2].Nodes != 4 || cfgs[2].System.Name != "H100x8x4" {
		t.Errorf("point 2 = %+v / %s", exps[2], cfgs[2].System.Name)
	}
}

func TestSpecPlatformAxesExclusive(t *testing.T) {
	spec := Spec{
		Systems: []string{"H100x8"},
		GPUs:    []string{"H100"},
		Models:  []string{"GPT-3 XL"},
	}
	if _, _, err := spec.Expand(); err == nil || !strings.Contains(err.Error(), "both systems and gpus") {
		t.Errorf("mixed platform axes accepted: %v", err)
	}
	neither := Spec{Models: []string{"GPT-3 XL"}}
	if _, _, err := neither.Expand(); err == nil {
		t.Error("a spec without systems or GPUs must fail")
	}
}

func TestSpecValidate(t *testing.T) {
	good := Spec{Systems: []string{"H100x8"}, Models: []string{"GPT-3 XL"}, Batches: []int{8, 16}}
	n, err := good.Validate()
	if err != nil || n != 2 {
		t.Errorf("Validate() = %d, %v", n, err)
	}
	for name, bad := range map[string]Spec{
		"unknown system":   {Systems: []string{"nonesuch"}, Models: []string{"GPT-3 XL"}},
		"unknown gpu":      {GPUs: []string{"V100"}, Models: []string{"GPT-3 XL"}},
		"unknown model":    {Systems: []string{"H100x8"}, Models: []string{"GPT-9"}},
		"unknown strategy": {Systems: []string{"H100x8"}, Models: []string{"GPT-3 XL"}, Parallelisms: []string{"zz"}},
		"bad nodes":        {GPUs: []string{"H100"}, Nodes: []int{-2}, Models: []string{"GPT-3 XL"}},
	} {
		if _, err := bad.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// Experiment.system mutual exclusivity also guards direct API use (POST
// /v1/experiments with both fields set).
func TestExperimentSystemExclusive(t *testing.T) {
	e := Experiment{System: "H100x8", GPU: "H100", Model: "GPT-3 XL"}
	if _, err := e.Config(); err == nil {
		t.Error("system plus gpu must be rejected")
	}
	ok := Experiment{System: "mi250x4", Model: "GPT-3 XL"}
	cfg, err := ok.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.System.Name != "MI250x4" {
		t.Errorf("system = %s", cfg.System.Name)
	}
	multi := Experiment{GPU: "H100", GPUCount: 8, Nodes: 2, Model: "GPT-3 XL"}
	cfg, err = multi.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.System.TotalGPUs() != 16 || cfg.System.NodeCount() != 2 {
		t.Errorf("multi-node experiment system = %+v", cfg.System)
	}
}
