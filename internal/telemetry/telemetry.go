// Package telemetry is the repo's observability substrate: a
// dependency-free metrics registry (counters, gauges, histograms, and
// labeled families of each, all with atomic hot paths), Prometheus text
// exposition with a JSON mirror, and structured-logging helpers built on
// log/slog with per-request IDs.
//
// Instruments are cheap enough to update from simulation worker pools:
// a counter increment is one atomic add, a histogram observation is two
// atomic adds plus a CAS loop on the sum. Families resolve label values
// to instruments through an RWMutex-guarded map; hot callers keep the
// resolved instrument.
//
// The package-level Default registry is what the overlapd /metrics and
// /v1/stats endpoints serve and what the sweep, advisor and service
// layers register into. Isolated registries (NewRegistry) exist for
// tests and embedders.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Type classifies a metric family.
type Type string

// Metric family types, matching the Prometheus exposition TYPE names.
const (
	TypeCounter   Type = "counter"
	TypeGauge     Type = "gauge"
	TypeHistogram Type = "histogram"
)

// DefBuckets are general-purpose latency buckets in seconds, spanning
// HTTP handler times through multi-second simulations.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10,
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (negative d decrements) with a CAS loop.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram accumulates observations into fixed buckets. Buckets are
// upper bounds; an implicit +Inf bucket catches the rest.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Uint64 // len(bounds)+1, non-cumulative
	sumBits atomic.Uint64
	count   atomic.Uint64
}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			//overlaplint:allow nopanic init-time instrument definition: malformed buckets must fail process start loudly
			panic(fmt.Sprintf("telemetry: histogram buckets not strictly increasing: %v", buckets))
		}
	}
	bounds := append([]float64(nil), buckets...)
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	// Buckets are few (tens); linear scan beats binary search in practice
	// and is branch-predictable for clustered observations.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// metric is the common interface of the three instrument kinds, used at
// exposition time.
type metric interface{}

// Family is one named metric family: a scalar instrument, or a set of
// instruments keyed by label values.
type Family struct {
	name    string
	help    string
	typ     Type
	labels  []string  // label keys; nil for scalar families
	buckets []float64 // histogram families only

	mu       sync.RWMutex
	children map[string]metric // key joins the label values; "" for scalar
	order    []string          // child keys in creation order
}

// Name returns the family name.
func (f *Family) Name() string { return f.name }

// child returns (creating if needed) the instrument for the label-value
// key.
func (f *Family) child(key string) metric {
	f.mu.RLock()
	m := f.children[key]
	f.mu.RUnlock()
	if m != nil {
		return m
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if m := f.children[key]; m != nil {
		return m
	}
	switch f.typ {
	case TypeCounter:
		m = &Counter{}
	case TypeGauge:
		m = &Gauge{}
	case TypeHistogram:
		m = newHistogram(f.buckets)
	}
	f.children[key] = m
	f.order = append(f.order, key)
	return m
}

// labelSep joins label values into child keys; it cannot appear in a
// label value (values are escaped at exposition, not at keying, so the
// separator must be outside the plausible value alphabet).
const labelSep = "\x1f"

func (f *Family) key(values []string) string {
	if len(values) != len(f.labels) {
		//overlaplint:allow nopanic instrument contract: With arity is fixed by the registration in this file; a mismatch is a programming error
		panic(fmt.Sprintf("telemetry: %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	return strings.Join(values, labelSep)
}

// CounterVec is a family of counters keyed by label values.
type CounterVec struct{ f *Family }

// With returns the counter for the given label values, creating it on
// first use.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(v.f.key(values)).(*Counter)
}

// GaugeVec is a family of gauges keyed by label values.
type GaugeVec struct{ f *Family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.child(v.f.key(values)).(*Gauge)
}

// HistogramVec is a family of histograms keyed by label values.
type HistogramVec struct{ f *Family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.child(v.f.key(values)).(*Histogram)
}

// Registry holds metric families and renders them.
type Registry struct {
	mu   sync.RWMutex
	fams map[string]*Family
}

// Default is the process-wide registry the daemon endpoints serve.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*Family)}
}

// register creates the family or panics on a conflicting redefinition.
// Registration happens in package init blocks, where failing loudly
// beats silently shadowing an earlier instrument.
func (r *Registry) register(name, help string, typ Type, labels []string, buckets []float64) *Family {
	if !validName(name) {
		//overlaplint:allow nopanic init-time registration: an invalid or duplicate instrument must fail process start loudly
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l) {
			//overlaplint:allow nopanic init-time registration: an invalid or duplicate instrument must fail process start loudly
			panic(fmt.Sprintf("telemetry: invalid label name %q on %s", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.fams[name]; ok {
		//overlaplint:allow nopanic init-time registration: an invalid or duplicate instrument must fail process start loudly
		panic(fmt.Sprintf("telemetry: duplicate metric %q", name))
	}
	f := &Family{
		name: name, help: help, typ: typ,
		labels:   append([]string(nil), labels...),
		buckets:  buckets,
		children: make(map[string]metric),
	}
	r.fams[name] = f
	return f
}

// validName checks the Prometheus metric/label name alphabet
// ([a-zA-Z_][a-zA-Z0-9_]*; colons are reserved for rules, so rejected).
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Counter registers and returns a scalar counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, TypeCounter, nil, nil)
	return f.child("").(*Counter)
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, TypeCounter, labels, nil)}
}

// Gauge registers and returns a scalar gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, TypeGauge, nil, nil)
	return f.child("").(*Gauge)
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, TypeGauge, labels, nil)}
}

// Histogram registers and returns a scalar histogram with the given
// bucket upper bounds (nil means DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.register(name, help, TypeHistogram, nil, buckets)
	return f.child("").(*Histogram)
}

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{r.register(name, help, TypeHistogram, labels, buckets)}
}

// families returns the registered families sorted by name.
func (r *Registry) families() []*Family {
	r.mu.RLock()
	out := make([]*Family, 0, len(r.fams))
	for _, f := range r.fams {
		out = append(out, f)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
