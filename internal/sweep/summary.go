package sweep

import "overlapsim/internal/report"

// TimePerIterS returns the overlapped-mode mean iteration latency in
// seconds, the canonical time metric sweep rows and advisor objectives
// share. ok is false when the point carries no result.
func (p *Point) TimePerIterS() (float64, bool) {
	if p.Res == nil {
		return 0, false
	}
	return p.Res.Overlapped.Mean.E2E, true
}

// BoardPowerW returns average overlapped-mode board power in watts:
// per-GPU average power summed over every GPU in the system.
func (p *Point) BoardPowerW() (float64, bool) {
	if p.Res == nil || len(p.Res.Overlapped.GPUPower) == 0 {
		return 0, false
	}
	var w float64
	for _, st := range p.Res.Overlapped.GPUPower {
		w += st.AvgW
	}
	return w, true
}

// EnergyPerIterJ returns the energy of an average overlapped iteration
// in joules: mean board power times mean iteration latency (the run's
// total EnergyJ spans warmup too).
func (p *Point) EnergyPerIterJ() (float64, bool) {
	w, ok := p.BoardPowerW()
	if !ok {
		return 0, false
	}
	t, ok := p.TimePerIterS()
	return w * t, ok
}

// Rows converts a sweep result into report rows, in grid order.
func Rows(res *Result) []report.SweepRow {
	rows := make([]report.SweepRow, len(res.Points))
	for i := range res.Points {
		rows[i] = Row(&res.Points[i])
	}
	return rows
}

// Row renders one point into the shared report row schema — the same
// schema advisor frontiers render through, so sweep tables and frontier
// tables stay column-compatible.
func Row(p *Point) report.SweepRow {
	r := report.SweepRow{Label: p.Config.Label()}
	switch {
	case p.OOM != nil:
		r.Status = "OOM"
		r.Detail = p.OOM.Error()
	case p.Err != nil:
		r.Status = "error"
		r.Detail = p.Err.Error()
	case p.Res == nil:
		r.Status = "error"
		r.Detail = p.ErrString
	default:
		r.Status = "ok"
		if p.CacheHit {
			r.Status = "hit"
		}
		c := p.Res.Char
		r.E2EOvl = p.Res.Overlapped.Mean.E2E
		r.E2ESeq = p.Res.Sequential.Mean.E2E
		r.SeqPenalty = c.SeqPenalty
		r.OverlapRatio = c.OverlapRatio
		r.ComputeSlowdown = c.ComputeSlowdown
		r.AvgTDP = p.Res.Overlapped.AvgTDP
		r.PeakTDP = p.Res.Overlapped.PeakTDP
		r.EnergyJ = p.Res.Overlapped.EnergyJ
		r.AvgPowerW, _ = p.BoardPowerW()
		r.EnergyPerIterJ, _ = p.EnergyPerIterJ()
		r.Tasks = p.Res.Overlapped.Engine.Tasks
		r.Epochs = p.Res.Overlapped.Engine.Epochs
	}
	return r
}
