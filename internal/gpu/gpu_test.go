package gpu

import (
	"math"
	"testing"

	"overlapsim/internal/collective"
	"overlapsim/internal/hw"
	"overlapsim/internal/kernels"
	"overlapsim/internal/power"
	"overlapsim/internal/precision"
	"overlapsim/internal/sim"
)

func newCluster(t *testing.T, g *hw.GPUSpec, n int, caps power.Caps) *Cluster {
	t.Helper()
	c, err := New(Config{System: hw.NewSystem(g, n), Caps: caps})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config must fail")
	}
	if _, err := New(Config{System: hw.NewSystem(hw.A100(), 4), Caps: power.Caps{PowerW: 1}}); err == nil {
		t.Error("cap below idle must fail")
	}
}

func TestIsolatedComputeMatchesBaseRate(t *testing.T) {
	g := hw.H100()
	cl := newCluster(t, g, 2, power.Caps{})
	eng := sim.NewEngine(cl)
	eng.AddObserver(cl)
	s := eng.NewStream("c0", 0)
	d := kernels.GEMM("g", 4096, 4096, 4096, 1, precision.FP16, precision.Matrix)
	task := eng.NewTask("g", sim.KindCompute, kernels.Work(d), d, s)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := kernels.BaseTime(d, g)
	got := task.End() - task.Start()
	if math.Abs(got-want)/want > 1e-9 {
		t.Errorf("isolated GEMM time %g, want base %g", got, want)
	}
}

func TestCollectiveSlowsCoRunningCompute(t *testing.T) {
	g := hw.MI250()
	run := func(withComm bool) float64 {
		cl := newCluster(t, g, 4, power.Caps{})
		eng := sim.NewEngine(cl)
		cs := eng.NewStream("c0", 0)
		d := kernels.GEMM("g", 8192, 8192, 8192, 1, precision.FP16, precision.Matrix)
		task := eng.NewTask("g", sim.KindCompute, kernels.Work(d), d, cs)
		if withComm {
			comm := eng.NewStream("comm", 0)
			cd := collective.Desc{Name: "ar", Op: collective.AllReduce, Bytes: 8 << 30, N: 4}
			eng.NewTask("ar", sim.KindComm, collective.EffWireBytes(cd, cl.Fabric()), cd, comm)
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return task.End() - task.Start()
	}
	iso := run(false)
	ovl := run(true)
	if ovl <= iso {
		t.Errorf("co-running collective must slow compute: %g vs %g", ovl, iso)
	}
}

func TestGatedCommWaitsAndReleases(t *testing.T) {
	g := hw.H100()
	cl := newCluster(t, g, 2, power.Caps{})
	eng := sim.NewEngine(cl)
	cs := eng.NewStream("c0", 0)
	link := eng.NewStream("link", 0)
	d := kernels.GEMM("producer", 4096, 4096, 4096, 1, precision.FP16, precision.Matrix)
	producer := eng.NewTask("producer", sim.KindCompute, kernels.Work(d), d, cs)
	cd := collective.Desc{Name: "xfer", Op: collective.SendRecv, Bytes: 64 << 20, N: 2, Src: 0, Dst: 1, Gate: producer}
	xfer := eng.NewTask("xfer", sim.KindComm, collective.EffWireBytes(cd, cl.Fabric()), cd, link)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if xfer.Start() != 0 {
		t.Errorf("posted transfer should become resident immediately, started %g", xfer.Start())
	}
	if xfer.End() <= producer.End() {
		t.Errorf("transfer finished %g before producer %g", xfer.End(), producer.End())
	}
	wire := cd.Bytes / cl.Fabric().P2PBW(0, 1)
	if got := xfer.End() - producer.End(); got < wire*0.5 {
		t.Errorf("post-gate transfer time %g implausibly small vs wire %g", got, wire)
	}
}

func TestPowerCapThrottlesCompute(t *testing.T) {
	g := hw.A100()
	run := func(capW float64) float64 {
		cl := newCluster(t, g, 2, power.Caps{PowerW: capW})
		eng := sim.NewEngine(cl)
		cs := eng.NewStream("c0", 0)
		d := kernels.GEMM("g", 8192, 8192, 8192, 1, precision.FP32, precision.Vector)
		task := eng.NewTask("g", sim.KindCompute, kernels.Work(d), d, cs)
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return task.End()
	}
	uncapped := run(0)
	capped := run(120)
	if capped <= uncapped {
		t.Errorf("120W cap must slow the A100: %g vs %g", capped, uncapped)
	}
}

func TestFreqCap(t *testing.T) {
	g := hw.H100()
	cl := newCluster(t, g, 1, power.Caps{FreqFactor: 0.5})
	eng := sim.NewEngine(cl)
	cs := eng.NewStream("c0", 0)
	d := kernels.GEMM("g", 8192, 8192, 8192, 1, precision.FP16, precision.Matrix)
	task := eng.NewTask("g", sim.KindCompute, kernels.Work(d), d, cs)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := kernels.BaseTime(d, g) / 0.5
	got := task.End()
	if math.Abs(got-want)/want > 0.01 {
		t.Errorf("half-frequency GEMM time %g, want ≈%g", got, want)
	}
	if f := cl.FreqFactor(0); f != 0.5 {
		t.Errorf("frequency factor %g", f)
	}
}

func TestPowerObservation(t *testing.T) {
	g := hw.H100()
	cl := newCluster(t, g, 2, power.Caps{})
	eng := sim.NewEngine(cl)
	eng.AddObserver(cl)
	cs := eng.NewStream("c0", 0)
	d := kernels.GEMM("g", 8192, 8192, 8192, 1, precision.FP16, precision.Matrix)
	eng.NewTask("g", sim.KindCompute, kernels.Work(d), d, cs)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	busy := cl.PowerStats(0)
	idle := cl.PowerStats(1)
	if busy.AvgW <= idle.AvgW {
		t.Errorf("busy GPU avg %gW not above idle GPU %gW", busy.AvgW, idle.AvgW)
	}
	if idle.AvgW < g.Power.IdleW*0.99 {
		t.Errorf("idle GPU below idle power: %g", idle.AvgW)
	}
	if busy.EnergyJ <= 0 {
		t.Error("no energy integrated")
	}
}

func TestJitterDeterministicBySeed(t *testing.T) {
	g := hw.H100()
	run := func(seed int64) float64 {
		cl, err := New(Config{System: hw.NewSystem(g, 1), JitterSigma: 0.05, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		eng := sim.NewEngine(cl)
		cs := eng.NewStream("c0", 0)
		d := kernels.GEMM("g", 4096, 4096, 4096, 1, precision.FP16, precision.Matrix)
		task := eng.NewTask("g", sim.KindCompute, kernels.Work(d), d, cs)
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return task.End()
	}
	if run(1) != run(1) {
		t.Error("same seed must reproduce")
	}
	if run(1) == run(2) {
		t.Error("different seeds should differ under jitter")
	}
}

func TestTraceRecording(t *testing.T) {
	g := hw.MI250()
	cl, err := New(Config{System: hw.NewSystem(g, 1), TraceInterval: power.TraceInterval})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine(cl)
	eng.AddObserver(cl)
	cs := eng.NewStream("c0", 0)
	d := kernels.GEMM("g", 8192, 8192, 8192, 1, precision.FP16, precision.Matrix)
	eng.NewTask("g", sim.KindCompute, kernels.Work(d), d, cs)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	tr := cl.Trace(0)
	if tr == nil || len(tr.Samples()) == 0 {
		t.Fatal("trace not recorded")
	}
}

// A multi-node system simulates TotalGPUs devices behind a hierarchical
// fabric; collectives spanning nodes run at the NIC-bottlenecked rate.
func TestMultiNodeCluster(t *testing.T) {
	sys := hw.NewMultiNode(hw.H100(), 4, 2)
	cl, err := New(Config{System: sys})
	if err != nil {
		t.Fatal(err)
	}
	if cl.N() != 8 {
		t.Fatalf("N = %d, want 8", cl.N())
	}
	f := cl.Fabric()
	if f.N() != 8 {
		t.Errorf("fabric N = %d", f.N())
	}
	if f.RingBW() >= cl.GPU().UniLinkBW() {
		t.Error("spanning ring must be bottlenecked below NVLink by the NIC tier")
	}
	// Every device has telemetry.
	for i := 0; i < cl.N(); i++ {
		if cl.Sampler(i) == nil {
			t.Fatalf("device %d has no sampler", i)
		}
	}

	eng := sim.NewEngine(cl)
	eng.AddObserver(cl)
	comm := eng.NewStream("comm", 0)
	cd := collective.Desc{Name: "ar", Op: collective.AllReduce, Bytes: 64 << 20, N: 8}
	task := eng.NewTask("ar", sim.KindComm, collective.EffWireBytes(cd, f), cd, comm)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	got := task.End() - task.Start()
	want := collective.Time(cd, f)
	if math.Abs(got-want)/want > 1e-9 {
		t.Errorf("spanning all-reduce took %g, want per-tier time %g", got, want)
	}
}
