package calib

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// TestValidateImprovesOnSyntheticProfile is the subsystem's acceptance
// contract in miniature: on measurements from a machine that deviates
// from Table I, the calibrated system must track the measurements
// strictly better than the stock one.
func TestValidateImprovesOnSyntheticProfile(t *testing.T) {
	gt, gtSys := groundTruth(t, nil, "H100x8")
	p := syntheticProfile(t, "H100", "H100x8", gt, gtSys, true)

	f, err := Fit(context.Background(), p, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Validate(context.Background(), p, f)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Scenarios) != len(p.Steps) {
		t.Fatalf("%d scenarios for %d steps", len(rep.Scenarios), len(p.Steps))
	}
	if !rep.Improved {
		t.Errorf("calibration did not improve: stock MAPE %.4g, calibrated %.4g",
			rep.StockError.MAPE, rep.CalibratedError.MAPE)
	}
	if rep.CalibratedError.MAPE >= rep.StockError.MAPE {
		t.Errorf("aggregate MAPE did not drop: %.4g -> %.4g",
			rep.StockError.MAPE, rep.CalibratedError.MAPE)
	}
	if rep.CalibratedGPU != "H100-cal" || rep.GPU != "H100" {
		t.Errorf("report names: %q / %q", rep.GPU, rep.CalibratedGPU)
	}
	for i, sc := range rep.Scenarios {
		if sc.MeasuredStepS <= 0 || sc.MeasuredEnergy <= 0 {
			t.Errorf("scenario %d missing measured columns: %+v", i, sc)
		}
		if sc.Stock.StepS <= 0 || sc.Calibrated.StepS <= 0 {
			t.Errorf("scenario %d missing predictions: %+v", i, sc)
		}
	}
}

// TestValidateReportDeterministic: equal inputs produce byte-identical
// report JSON — the report carries no timestamps or wall-clock fields,
// matching the advisor's conventions.
func TestValidateReportDeterministic(t *testing.T) {
	gt, gtSys := groundTruth(t, nil, "H100x8")
	p := syntheticProfile(t, "H100", "H100x8", gt, gtSys, true)
	f, err := Fit(context.Background(), p, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	render := func() []byte {
		rep, err := Validate(context.Background(), p, f)
		if err != nil {
			t.Fatal(err)
		}
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatal("two validation runs of the same fit produced different report bytes")
	}
}

func TestValidateRequiresSteps(t *testing.T) {
	gt, gtSys := groundTruth(t, nil, "H100x8")
	p := syntheticProfile(t, "H100", "H100x8", gt, gtSys, false)
	f, err := Fit(context.Background(), p, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Validate(context.Background(), p, f); err == nil {
		t.Fatal("validating a profile without step measurements must error")
	}
}

func TestReportRenderers(t *testing.T) {
	gt, gtSys := groundTruth(t, nil, "H100x8")
	p := syntheticProfile(t, "H100", "H100x8", gt, gtSys, true)
	f, err := Fit(context.Background(), p, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Validate(context.Background(), p, f)
	if err != nil {
		t.Fatal(err)
	}

	var tbl bytes.Buffer
	if err := rep.WriteTable(&tbl); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"scenario", "stock", "calibrated", "MAPE"} {
		if !strings.Contains(tbl.String(), want) {
			t.Errorf("table output missing %q:\n%s", want, tbl.String())
		}
	}

	var csv bytes.Buffer
	if err := rep.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 1+len(rep.Scenarios) {
		t.Errorf("CSV has %d lines, want %d", len(lines), 1+len(rep.Scenarios))
	}

	var md bytes.Buffer
	if err := rep.BenchRows(&md); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md.String(), "aggregate MAPE") {
		t.Errorf("bench rows missing aggregate row:\n%s", md.String())
	}
}
