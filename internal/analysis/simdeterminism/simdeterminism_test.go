package simdeterminism_test

import (
	"testing"

	"overlapsim/internal/analysis/driver"
	"overlapsim/internal/analysis/drivertest"
	"overlapsim/internal/analysis/simdeterminism"
)

// TestCorpus scopes the analyzer to corpus/det; corpus/free holds the
// same wall-clock read outside the set and must stay silent.
func TestCorpus(t *testing.T) {
	drivertest.Run(t, "testdata/src/corpus", []*driver.Analyzer{
		simdeterminism.New([]string{"corpus/det"}),
	})
}
