package sim

import "math"

// Rank-symmetry fast path.
//
// DDP/FSDP/TP training iterations are identical across ranks: every
// device executes the same kernel sequence with the same dependency
// shape, so the fluid engine computes the exact same start/end times for
// every rank of a class. DetectClasses proves that symmetry structurally
// — it never trusts a builder's word — and Collapse then simulates one
// representative device per class, reconstructing the other members'
// timelines by copying the representative's task times after the run.
// The reconstruction is bit-exact, not approximate: class members would
// have executed the identical float operations in the identical order,
// so the golden schedule digests are unchanged while the simulated work
// drops from O(ranks) to O(classes).
//
// Detection is conservative by construction. Any device the proof cannot
// cover — multi-stream (rendezvous) tasks, completion callbacks, a
// dependency whose position cannot be paired — falls back to a singleton
// class and is simulated for real. A wrong answer is therefore
// impossible; the worst case is a missed speedup.

// Class is one device symmetry class: Members lists the device indices
// in ascending order, and Members[0] is the representative that is
// actually simulated when the class is collapsed.
type Class struct {
	Members []int
}

// Rep returns the class representative (the lowest member device).
func (c Class) Rep() int { return c.Members[0] }

// DetectClasses partitions the devices that own streams into symmetry
// classes. Two devices land in one class only when they carry the same
// streams with the same task queues — task kind, work, payload (compared
// via eq) and dependency structure all pairwise identical, with every
// dependency either shared (the same *Task, e.g. a collective) or the
// positional counterpart on the other device. Devices with rendezvous
// (multi-stream) tasks or completion callbacks are never merged.
//
// DetectClasses must run before the engine has executed; on an engine
// that already ran (or with a nil eq) it returns nil. The result also
// records, on every task of a non-representative member, which
// representative task mirrors it — Collapse consumes that mapping.
func (e *Engine) DetectClasses(eq func(a, b any) bool) []Class {
	if e.ran || eq == nil || len(e.streams) == 0 {
		return nil
	}
	maxDev := -1
	for _, s := range e.streams {
		if s.device > maxDev {
			maxDev = s.device
		}
	}
	if maxDev < 0 {
		return nil
	}
	// Streams per device, in creation order: the order the builder made
	// them is the alignment the pairwise verification walks.
	devStreams := make([][]*Stream, maxDev+1)
	for _, s := range e.streams {
		devStreams[s.device] = append(devStreams[s.device], s)
	}

	// Position index: for single-stream tasks, (device, stream index
	// within the device, queue position) identifies the task's structural
	// slot; counterpart dependencies are paired through it. Multi-stream
	// tasks get no position and veto every device they touch.
	const (
		devUnset = -1
		devMulti = -2
	)
	nT := len(e.tasks)
	posDev := make([]int32, nT)
	posStream := make([]int32, nT)
	posQueue := make([]int32, nT)
	for i := range posDev {
		posDev[i] = devUnset
	}
	mergeable := make([]bool, maxDev+1)
	for dev, ss := range devStreams {
		mergeable[dev] = len(ss) > 0
	}
	for dev, ss := range devStreams {
		for si, s := range ss {
			for qi, t := range s.queue {
				if len(t.streams) > 1 || len(t.onDone) > 0 || t.st != statePending {
					for _, ts := range t.streams {
						mergeable[ts.device] = false
					}
					posDev[t.seq] = devMulti
					continue
				}
				posDev[t.seq] = int32(dev)
				posStream[t.seq] = int32(si)
				posQueue[t.seq] = int32(qi)
			}
		}
	}

	// Flat predecessor index, filled by one walk over the tasks in
	// creation order. Symmetric builders emit counterpart edges in the
	// same global order on every member device, so the per-task pred
	// lists of counterpart tasks align positionally. The index stores
	// seq numbers, not pointers: tasks[i].seq == i makes them
	// equivalent, and a pointer-free slab is invisible to the garbage
	// collector — at cluster scale this index is the detector's largest
	// allocation.
	cnt := make([]int32, nT+1)
	for _, t := range e.tasks {
		for _, s := range t.succs {
			cnt[s.seq+1]++
		}
	}
	for i := 1; i <= nT; i++ {
		cnt[i] += cnt[i-1]
	}
	flat := make([]int32, cnt[nT])
	fill := make([]int32, nT)
	copy(fill, cnt[:nT])
	for _, t := range e.tasks {
		for _, s := range t.succs {
			flat[fill[s.seq]] = int32(t.seq)
			fill[s.seq]++
		}
	}
	preds := func(t *Task) []int32 { return flat[cnt[t.seq]:cnt[t.seq+1]] }

	// Cheap structural signature per mergeable device; devices bucket by
	// hash, then verify pairwise against each bucketed class rep.
	sig := make([]uint64, maxDev+1)
	for dev, ss := range devStreams {
		if !mergeable[dev] {
			continue
		}
		// Word-at-a-time FNV-style mix: collisions only cost a failed
		// pairwise verify, so a fast weak hash beats a slow strong one.
		h := uint64(14695981039346656037)
		mix := func(v uint64) {
			h = (h ^ v) * 1099511628211
		}
		mix(uint64(len(ss)))
		for _, s := range ss {
			mix(uint64(len(s.queue)))
			for _, t := range s.queue {
				mix(uint64(t.kind)<<32 ^ uint64(t.deps))
				mix(math.Float64bits(t.work))
				mix(uint64(len(preds(t))))
			}
		}
		sig[dev] = h
	}

	verify := func(a, b int) bool {
		sa, sb := devStreams[a], devStreams[b]
		if len(sa) != len(sb) {
			return false
		}
		for si := range sa {
			qa, qb := sa[si].queue, sb[si].queue
			if len(qa) != len(qb) {
				return false
			}
			for qi := range qa {
				ta, tb := qa[qi], qb[qi]
				if ta.kind != tb.kind ||
					math.Float64bits(ta.work) != math.Float64bits(tb.work) ||
					ta.deps != tb.deps ||
					!eq(ta.payload, tb.payload) {
					return false
				}
				pa, pb := preds(ta), preds(tb)
				if len(pa) != len(pb) {
					return false
				}
				for i := range pa {
					da, db := pa[i], pb[i]
					if da == db {
						continue // shared dependency (collective, barrier)
					}
					if posDev[da] == int32(a) && posDev[db] == int32(b) &&
						posStream[da] == posStream[db] &&
						posQueue[da] == posQueue[db] {
						continue // positional counterpart on the peer device
					}
					return false
				}
			}
		}
		// Proven: record the mirror mapping for Collapse.
		for si := range sa {
			qa, qb := sa[si].queue, sb[si].queue
			for qi := range qa {
				qb[qi].mirror = qa[qi]
			}
		}
		return true
	}

	var classes []Class
	buckets := make(map[uint64][]int) // signature -> class indices (looked up, never ranged)
	for dev := 0; dev <= maxDev; dev++ {
		if len(devStreams[dev]) == 0 {
			continue
		}
		if !mergeable[dev] {
			classes = append(classes, Class{Members: []int{dev}})
			continue
		}
		matched := -1
		for _, ci := range buckets[sig[dev]] {
			rep := classes[ci].Members[0]
			if mergeable[rep] && verify(rep, dev) {
				matched = ci
				break
			}
		}
		if matched >= 0 {
			classes[matched].Members = append(classes[matched].Members, dev)
			continue
		}
		buckets[sig[dev]] = append(buckets[sig[dev]], len(classes))
		classes = append(classes, Class{Members: []int{dev}})
	}
	return classes
}

// Collapse merges the given multi-member classes (as returned by
// DetectClasses on this engine): every task on a non-representative
// member becomes a ghost — marked complete up front, excluded from
// scheduling — and its outgoing dependency edges are transferred to its
// representative mirror, so successors outside the class see the exact
// dependency-count decrements at the exact times the full simulation
// would have produced. After a successful run the ghosts' start/end
// times are reconstructed from their mirrors.
//
// Collapse returns the number of ghost tasks created. Classes with
// fewer than two members are ignored; a class whose mirror mapping is
// incomplete (not produced by DetectClasses) is skipped entirely.
func (e *Engine) Collapse(classes []Class) int {
	if e.ran {
		return 0
	}
	var devStreams [][]*Stream
	for _, s := range e.streams {
		for len(devStreams) <= s.device {
			devStreams = append(devStreams, nil)
		}
		devStreams[s.device] = append(devStreams[s.device], s)
	}
	ghosts := 0
	for _, c := range classes {
		if len(c.Members) < 2 {
			continue
		}
		ok := true
	check:
		for _, dev := range c.Members[1:] {
			for _, s := range devStreams[dev] {
				for _, t := range s.queue {
					if t.mirror == nil || t.st != statePending {
						ok = false
						break check
					}
				}
			}
		}
		if !ok {
			continue
		}
		e.stCollapsed++
		first := len(e.ghosts)
		if cap(e.ghosts)-first < 16 {
			// Size the ghost list for the class in one growth step.
			total := 0
			for _, dev := range c.Members[1:] {
				for _, s := range devStreams[dev] {
					total += len(s.queue)
				}
			}
			if cap(e.ghosts)-first < total {
				grown := make([]*Task, first, first+total)
				copy(grown, e.ghosts)
				e.ghosts = grown
			}
		}
		for _, dev := range c.Members[1:] {
			for _, s := range devStreams[dev] {
				for _, t := range s.queue {
					t.st = stateDone
					t.remaining = 0
					e.ghosts = append(e.ghosts, t)
				}
			}
		}
		// Transfer ghost → live edges onto the mirrors. All ghosts of the
		// class are marked done above before any transfer, so class-internal
		// edges drop out and only edges into genuinely simulated tasks move.
		// The first member's transfer counts pre-size each mirror's list:
		// the remaining members repeat the identical counts, so the append
		// loop below never reallocates mid-class.
		extra := len(c.Members) - 1
		for _, s := range devStreams[c.Members[1]] {
			for _, t := range s.queue {
				live := 0
				for _, succ := range t.succs {
					if succ.st != stateDone {
						live++
					}
				}
				if live == 0 {
					continue
				}
				m := t.mirror
				if need := len(m.succs) + live*extra; cap(m.succs) < need {
					grown := make([]*Task, len(m.succs), need)
					copy(grown, m.succs)
					m.succs = grown
				}
			}
		}
		for _, g := range e.ghosts[first:] {
			m := g.mirror
			for _, succ := range g.succs {
				if succ.st == stateDone {
					continue
				}
				if m.succs == nil && m.eng != nil {
					m.succs = m.eng.succChunk()
				}
				m.succs = append(m.succs, succ)
			}
		}
		ghosts += len(e.ghosts) - first
	}
	e.stGhosts += ghosts
	return ghosts
}

// finalizeGhosts reconstructs the collapsed tasks' timelines from their
// class representatives. Called once, when a collapsed run completes.
func (e *Engine) finalizeGhosts() {
	for _, g := range e.ghosts {
		m := g.mirror
		g.started = m.started
		g.start = m.start
		g.end = m.end
	}
}
