// Package service implements the overlapd HTTP/JSON API: synchronous
// single experiments, asynchronous sweep and advisor jobs with progress
// polling and cancellation, and catalog discovery. All endpoints share
// one content-addressed result cache, so a result computed for any
// client is served from memory for every later request with the same
// canonical configuration — and a repeated or overlapping advisor query
// evaluates nothing fresh.
//
//	POST   /v1/experiments         — run one experiment, return its point
//	POST   /v1/calibrate           — fit a measured profile, return the hardware
//	                                 overlay and (with step data) a validation report
//	POST   /v1/sweeps              — submit a sweep spec, returns a job id
//	GET    /v1/sweeps              — list sweep jobs
//	GET    /v1/sweeps/{id}         — job status, progress and (when done) results
//	GET    /v1/sweeps/{id}/events  — live progress stream (SSE)
//	DELETE /v1/sweeps/{id}         — cancel a running job, or forget a finished one
//	POST   /v1/advise              — submit an advisor query, returns a job id
//	GET    /v1/advise              — list advisor jobs
//	GET    /v1/advise/{id}         — job status and (when done) frontier + recommendation
//	GET    /v1/advise/{id}/events  — live progress stream (SSE)
//	DELETE /v1/advise/{id}         — cancel a running job, or forget a finished one
//	GET    /v1/cache/{fingerprint} — peer cache protocol: fetch a result by content address
//	PUT    /v1/cache/{fingerprint} — peer cache protocol: store a result
//	GET    /v1/catalog             — available GPUs, systems, models, strategies,
//	                                 formats, advisor objectives
//	GET    /healthz                — liveness
//
// Deployments scale out by composing these: a store.Tiered cache whose
// last tier is a store.HTTPCache over the peer replicas turns N
// overlapds into a share-nothing cache mesh, a store.Journal makes jobs
// survive restarts (interrupted jobs resume against the warm cache),
// and the server-wide singleflight collapses a thundering herd of
// identical experiments into one simulation.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"overlapsim/internal/calib"
	"overlapsim/internal/core"
	"overlapsim/internal/hw"
	"overlapsim/internal/model"
	"overlapsim/internal/opt"
	"overlapsim/internal/precision"
	"overlapsim/internal/report"
	"overlapsim/internal/store"
	"overlapsim/internal/strategy"
	"overlapsim/internal/sweep"
	"overlapsim/internal/telemetry"
)

// Options configure a Server.
type Options struct {
	// Cache is the shared result cache; nil creates a fresh MemCache.
	Cache sweep.Cache
	// LocalCache is what the peer cache protocol (/v1/cache/{fp})
	// serves; nil means Cache. Meshed deployments pass the local tiers
	// only, so a peer's lookup is answered from this replica's own
	// storage and never recurses back into the mesh.
	LocalCache sweep.Cache
	// Journal, when set, makes jobs durable: submissions and terminal
	// results are journaled, and a restarted server lists finished jobs
	// and resumes interrupted ones against the warm cache.
	Journal *store.Journal
	// Workers bounds concurrent simulations per sweep (<= 0 means
	// runtime.NumCPU()).
	Workers int
	// MaxSweepPoints rejects sweep specs that expand beyond this many
	// points (0 means DefaultMaxSweepPoints).
	MaxSweepPoints int
	// Logger receives one structured line per request and per job
	// transition; nil discards logs.
	Logger *slog.Logger
	// KeepAlive is the idle interval after which an event stream emits
	// an SSE comment line, so proxies and load balancers with idle
	// timeouts do not silently reap a healthy connection between
	// progress events (<= 0 means DefaultKeepAlive).
	KeepAlive time.Duration
}

// DefaultKeepAlive is the event-stream keepalive interval: shorter than
// the common 30–60 s proxy idle timeouts, long enough to stay noise.
const DefaultKeepAlive = 15 * time.Second

// DefaultMaxSweepPoints bounds the grid size one job may submit.
const DefaultMaxSweepPoints = 4096

// Server is the overlapd request handler.
type Server struct {
	opts    Options
	mux     *http.ServeMux
	log     *slog.Logger
	started time.Time
	// flight coalesces concurrent identical cache misses across every
	// runner this server builds — sweeps, advisor jobs and synchronous
	// experiments alike.
	flight *store.Flight

	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	jobs   map[string]*job
	nextID int
	wg     sync.WaitGroup
}

// jobStatus is the lifecycle of an asynchronous job.
type jobStatus string

const (
	statusRunning   jobStatus = "running"
	statusDone      jobStatus = "done"
	statusCancelled jobStatus = "cancelled"
	statusFailed    jobStatus = "failed"
)

// jobKind separates the two asynchronous job families; each is listed
// and addressed only under its own endpoint.
type jobKind string

const (
	kindSweep  jobKind = "sweep"
	kindAdvise jobKind = "advise"
)

// listKey is the field the kind's job list is keyed by.
func (k jobKind) listKey() string {
	if k == kindAdvise {
		return "advise_jobs"
	}
	return "sweeps"
}

// job is one asynchronous sweep or advisor query.
type job struct {
	id      string
	kind    jobKind
	name    string
	total   int
	started time.Time
	// ctx governs the job's execution; cancel aborts it. Jobs recovered
	// from the journal in a terminal state carry a no-op cancel.
	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	status    jobStatus
	completed int
	hits      int
	coalesced int
	ooms      int
	failures  int
	res       *sweep.Result
	// subs are the progress subscribers (SSE streams): each channel has
	// capacity 1 and receives a nudge on every job update; a slow
	// subscriber misses intermediate nudges, never the latest state.
	subs map[chan struct{}]struct{}
	// aggregate is the precomputed summary of res; a finished job's
	// result is immutable, so status polls never recompute it.
	aggregate string
	// advice is an advise job's result; errMsg its failure, if any.
	advice *opt.Advice
	errMsg string
}

// New returns a ready-to-serve Server. Close releases its background
// jobs.
func New(opts Options) *Server {
	if opts.Cache == nil {
		opts.Cache = sweep.NewMemCache()
	}
	if opts.MaxSweepPoints <= 0 {
		opts.MaxSweepPoints = DefaultMaxSweepPoints
	}
	if opts.Logger == nil {
		opts.Logger = telemetry.NopLogger()
	}
	if opts.KeepAlive <= 0 {
		opts.KeepAlive = DefaultKeepAlive
	}
	//overlaplint:allow ctxflow server-lifetime root context: jobs outlive the submitting request by design; Shutdown cancels it
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:    opts,
		mux:     http.NewServeMux(),
		log:     opts.Logger,
		started: time.Now(),
		flight:  store.NewFlight(),
		ctx:     ctx,
		cancel:  cancel,
		jobs:    make(map[string]*job),
	}
	s.handle("GET /healthz", s.handleHealth)
	s.handle("GET /v1/catalog", s.handleCatalog)
	s.handle("POST /v1/experiments", s.handleExperiment)
	s.handle("POST /v1/calibrate", s.handleCalibrate)
	s.handle("POST /v1/sweeps", s.handleSweepSubmit)
	s.handle("GET /v1/sweeps", s.handleList(kindSweep))
	s.handle("GET /v1/sweeps/{id}", s.handleGet(kindSweep))
	s.handle("GET /v1/sweeps/{id}/events", s.handleEvents(kindSweep))
	s.handle("DELETE /v1/sweeps/{id}", s.handleCancel(kindSweep))
	s.handle("POST /v1/advise", s.handleAdviseSubmit)
	s.handle("GET /v1/advise", s.handleList(kindAdvise))
	s.handle("GET /v1/advise/{id}", s.handleGet(kindAdvise))
	s.handle("GET /v1/advise/{id}/events", s.handleEvents(kindAdvise))
	s.handle("DELETE /v1/advise/{id}", s.handleCancel(kindAdvise))
	// The peer cache protocol: replicas (and CLIs) fetch and store
	// results by fingerprint, making this replica one shard of the mesh.
	s.handle("GET "+store.CachePathPrefix+"{fp}", s.handleCacheGet)
	s.handle("PUT "+store.CachePathPrefix+"{fp}", s.handleCachePut)
	// The metrics endpoint is deliberately uninstrumented: scrapes should
	// not inflate the request series they are reading.
	s.mux.Handle("GET /metrics", telemetry.Default.Handler())
	s.handle("GET /v1/stats", s.handleStats)
	if opts.Journal != nil {
		s.recoverJobs()
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close cancels every running job and waits for their workers to exit.
func (s *Server) Close() {
	//overlaplint:allow ctxflow Close is the no-deadline convenience wrapper over Shutdown
	_ = s.Shutdown(context.Background())
}

// Shutdown cancels every running job and waits for their workers to
// exit, giving up with ctx.Err() when ctx expires first. Jobs observe
// the cancellation between simulation epochs, so a drain normally
// completes in milliseconds; a ctx deadline bounds the wait against a
// wedged worker. Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.cancel()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.log.Info("shutdown complete")
		return nil
	case <-ctx.Done():
		s.log.Error("shutdown drain timed out", slog.Any("err", ctx.Err()))
		return ctx.Err()
	}
}

// runner builds the sweep runner every endpoint shares. All runners
// share the server's singleflight, so identical in-flight experiments
// coalesce across sweeps, advisor jobs and synchronous requests.
func (s *Server) runner(onPoint func(sweep.Point)) *sweep.Runner {
	return &sweep.Runner{Workers: s.opts.Workers, Cache: s.opts.Cache, Flight: s.flight, OnPoint: onPoint}
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// errorBody is the uniform error payload.
type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// catalogGPU is one catalog GPU entry.
type catalogGPU struct {
	Name   string  `json:"name"`
	Vendor string  `json:"vendor"`
	Year   int     `json:"year"`
	MemGB  float64 `json:"mem_gb"`
	TDPW   float64 `json:"tdp_w"`
	SMs    int     `json:"sms"`
}

// catalogSystem is one registry-derived system entry: its name, shape
// and fabric, so clients can discover every platform a deployment
// registered (built-ins plus -hw-file loads) instead of assuming the
// paper's single-node systems. The name is the exact spelling the
// "system" experiment field and the "systems" sweep axis accept.
type catalogSystem struct {
	Name        string  `json:"name"`
	GPU         string  `json:"gpu"`
	GPUsPerNode int     `json:"gpus_per_node"`
	Nodes       int     `json:"nodes"`
	TotalGPUs   int     `json:"total_gpus"`
	Fabric      string  `json:"fabric"`
	NICBWGBs    float64 `json:"nic_bw_gbs,omitempty"`
}

// catalogModel is one catalog workload entry.
type catalogModel struct {
	Name    string  `json:"name"`
	Arch    string  `json:"arch"`
	ParamsB float64 `json:"params_b"`
	Layers  int     `json:"layers"`
	Hidden  int     `json:"hidden"`
	SeqLen  int     `json:"seq_len"`
}

// catalogStrategy is one registry-derived strategy entry: its name,
// display label, knobs and capability flags, so clients can discover
// what a deployment's build links in instead of assuming the paper's
// three strategies.
type catalogStrategy struct {
	Name       string   `json:"name"`
	Aliases    []string `json:"aliases,omitempty"`
	Display    string   `json:"display"`
	Summary    string   `json:"summary"`
	Knobs      []string `json:"knobs,omitempty"`
	MicroBatch bool     `json:"micro_batch"`
	GradAccum  bool     `json:"grad_accum"`
	TPDegree   bool     `json:"tp_degree"`
}

// catalogBody is the /v1/catalog response. Strategies carries the full
// registry metadata; Parallelisms is the flat list of registry names —
// the exact spellings POST /v1/experiments and sweep specs accept
// (earlier releases served display labels like "FSDP" here).
type catalogBody struct {
	GPUs         []catalogGPU      `json:"gpus"`
	Systems      []catalogSystem   `json:"systems"`
	Models       []catalogModel    `json:"models"`
	Strategies   []catalogStrategy `json:"strategies"`
	Parallelisms []string          `json:"parallelisms"`
	Formats      []string          `json:"formats"`
	// Objectives are the advisor objective names POST /v1/advise
	// queries may trade off.
	Objectives []string `json:"objectives"`
	// Calibration advertises the measured-profile schema version the
	// POST /v1/calibrate endpoint accepts.
	Calibration calibrationInfo `json:"calibration"`
}

func (s *Server) handleCatalog(w http.ResponseWriter, _ *http.Request) {
	var body catalogBody
	for _, g := range hw.All() {
		body.GPUs = append(body.GPUs, catalogGPU{
			Name: g.Name, Vendor: g.Vendor.String(), Year: g.Year,
			MemGB: g.MemGB, TDPW: g.TDPW, SMs: g.SMs,
		})
	}
	for _, sys := range hw.Systems() {
		entry := catalogSystem{
			Name: sys.Name, GPU: sys.GPU.Name,
			GPUsPerNode: sys.N, Nodes: sys.NodeCount(), TotalGPUs: sys.TotalGPUs(),
			Fabric: sys.FabricKind(),
		}
		if sys.NodeCount() > 1 {
			entry.NICBWGBs = sys.NICSpec().BWGBs
		}
		body.Systems = append(body.Systems, entry)
	}
	for _, m := range model.Zoo() {
		body.Models = append(body.Models, catalogModel{
			Name: m.Name, Arch: m.Arch.String(), ParamsB: m.NominalParams / 1e9,
			Layers: m.Layers, Hidden: m.Hidden, SeqLen: m.SeqLen,
		})
	}
	for _, st := range strategy.All() {
		info := st.Describe()
		body.Strategies = append(body.Strategies, catalogStrategy{
			Name: info.Name, Aliases: info.Aliases, Display: info.Display,
			Summary: info.Summary, Knobs: info.Knobs,
			MicroBatch: info.MicroBatch, GradAccum: info.GradAccum,
			TPDegree: info.TPDegree,
		})
		body.Parallelisms = append(body.Parallelisms, info.Name)
	}
	for _, f := range precision.Formats() {
		body.Formats = append(body.Formats, f.String())
	}
	body.Objectives = opt.Names()
	body.Calibration = calibrationInfo{
		ProfileVersion: calib.SchemaVersion,
		Endpoint:       "/v1/calibrate",
		DefaultSuffix:  calib.DefaultSuffix,
	}
	writeJSON(w, http.StatusOK, body)
}

// experimentBody is the /v1/experiments response: the executed point
// plus the compact metric summary the sweep reports use.
type experimentBody struct {
	Point   sweep.Point     `json:"point"`
	Summary report.SweepRow `json:"summary"`
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var exp sweep.Experiment
	if err := dec.Decode(&exp); err != nil {
		writeError(w, http.StatusBadRequest, "decoding experiment: %v", err)
		return
	}
	cfg, err := exp.Config()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Run under the request context so a disconnected client aborts the
	// simulation, but bound by server lifetime.
	ctx, cancel := mergeDone(r.Context(), s.ctx)
	defer cancel()
	res, err := s.runner(nil).Run(ctx, []core.Config{cfg})
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "experiment cancelled: %v", err)
		return
	}
	pt := res.Points[0]
	if pt.Err != nil {
		writeError(w, http.StatusInternalServerError, "%v", pt.Err)
		return
	}
	rows := sweep.Rows(res)
	writeJSON(w, http.StatusOK, experimentBody{Point: pt, Summary: rows[0]})
}

// mergeDone returns a context cancelled when either parent is.
func mergeDone(a, b context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(a)
	stop := context.AfterFunc(b, cancel)
	return ctx, func() { stop(); cancel() }
}

// submitBody is the /v1/sweeps accepted response.
type submitBody struct {
	ID     string `json:"id"`
	Name   string `json:"name,omitempty"`
	Points int    `json:"points"`
}

// maxSubmitBytes bounds one submitted spec or query body.
const maxSubmitBytes = 8 << 20

// readBody drains the (bounded) request body; the raw bytes are kept
// verbatim for the journal so a restart resumes exactly what the
// client submitted.
func readBody(r *http.Request) ([]byte, error) {
	return io.ReadAll(io.LimitReader(r.Body, maxSubmitBytes))
}

func (s *Server) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	raw, err := readBody(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading spec: %v", err)
		return
	}
	spec, err := sweep.ParseSpec(bytes.NewReader(raw))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Check the grid size arithmetically before materializing it, so an
	// oversized spec is rejected without allocating its expansion.
	if n := spec.Size(); n > s.opts.MaxSweepPoints {
		writeError(w, http.StatusRequestEntityTooLarge,
			"sweep expands to %d points, limit %d", n, s.opts.MaxSweepPoints)
		return
	}
	_, cfgs, err := spec.Expand()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	j := s.newJob(kindSweep, spec.Name, len(cfgs))
	s.journalSubmit(j, raw)
	s.launchSweep(j, spec.Name, cfgs)

	writeJSON(w, http.StatusAccepted, submitBody{ID: j.id, Name: spec.Name, Points: len(cfgs)})
}

// launchSweep runs a registered sweep job's grid on a background
// worker. Shared by fresh submissions and journal-recovered resumes —
// a resume re-runs the full grid, and every point that reached the
// durable cache before the interruption comes back as a hit.
func (s *Server) launchSweep(j *job, name string, cfgs []core.Config) {
	runner := s.runner(j.onPoint)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer j.cancel()
		res, err := runner.Run(j.ctx, cfgs)
		res.Name = name
		// Snapshot the final counters and aggregate once; the result is
		// immutable from here on, so polls serve the snapshot.
		aggregate := report.AggregateSweep(sweep.Rows(res)).String()
		completed := 0
		for i := range res.Points {
			if res.Points[i].Key != "" { // dispatched (fingerprinted) points
				completed++
			}
		}
		status := statusDone
		if err != nil {
			status = statusCancelled
		}
		j.mu.Lock()
		j.res = res
		j.aggregate = aggregate
		j.completed = completed
		j.hits = res.CacheHits
		j.coalesced = res.Coalesced
		j.ooms = res.OOMs
		j.failures = res.Failures
		j.status = status
		j.notifyLocked()
		j.mu.Unlock()
		s.finishJob(j, status)
		s.journalFinish(j, status, res, "")
	}()
}

// onPoint folds one completed point into the job's progress counters
// and nudges the progress subscribers. Called from runner worker
// goroutines.
func (j *job) onPoint(p sweep.Point) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.completed++
	switch {
	case p.OOM != nil:
		j.ooms++
	case p.Err != nil:
		j.failures++
	case p.CacheHit:
		j.hits++
	}
	if p.Coalesced {
		j.coalesced++
	}
	j.notifyLocked()
}

// newJob registers a running job of the given kind.
func (s *Server) newJob(kind jobKind, name string, total int) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	return s.registerLocked(fmt.Sprintf("%s-%06d", kind, s.nextID), kind, name, total, time.Now())
}

// registerLocked registers a running job under an explicit id (fresh or
// recovered from the journal). Callers must hold s.mu.
func (s *Server) registerLocked(id string, kind jobKind, name string, total int, started time.Time) *job {
	ctx, cancel := context.WithCancel(s.ctx)
	j := &job{
		id:      id,
		kind:    kind,
		name:    name,
		total:   total,
		started: started,
		ctx:     ctx,
		cancel:  cancel,
		status:  statusRunning,
	}
	s.jobs[j.id] = j
	s.evictLocked()
	noteJobStarted(kind)
	s.log.Info("job started",
		slog.String("job", j.id), slog.String("kind", string(kind)),
		slog.String("name", name), slog.Int("total", total))
	return j
}

// finishJob records a job's terminal transition in the gauges and the
// log. Callers invoke it exactly once per job, after releasing j.mu.
func (s *Server) finishJob(j *job, status jobStatus) {
	noteJobFinished(j.kind, status)
	s.log.Info("job finished",
		slog.String("job", j.id), slog.String("kind", string(j.kind)),
		slog.String("status", string(status)),
		slog.Duration("elapsed", time.Since(j.started)))
}

// jobBody is the job status payload shared by sweep and advise jobs.
type jobBody struct {
	ID        string    `json:"id"`
	Kind      jobKind   `json:"kind"`
	Name      string    `json:"name,omitempty"`
	Status    jobStatus `json:"status"`
	Total     int       `json:"total"`
	Completed int       `json:"completed"`
	CacheHits int       `json:"cache_hits"`
	// CacheMisses counts completed points not served from the cache
	// (fresh simulations, including failed ones) — with CacheHits, the
	// job's cache provenance.
	CacheMisses int `json:"cache_misses"`
	// Coalesced counts points that neither hit the cache nor simulated
	// themselves: their miss was coalesced onto an identical in-flight
	// simulation (singleflight). Included in CacheMisses.
	Coalesced int     `json:"coalesced"`
	OOMs      int     `json:"ooms"`
	Failures  int     `json:"failures"`
	ElapsedMS float64 `json:"elapsed_ms"`
	Error     string  `json:"error,omitempty"`

	// Aggregate and Points are present once a sweep job has finished.
	Aggregate string        `json:"aggregate,omitempty"`
	Points    []sweep.Point `json:"points,omitempty"`
	// Advice is present once an advise job has finished.
	Advice *opt.Advice `json:"advice,omitempty"`
}

// body snapshots the job under its lock. includePoints controls whether
// the full per-point results ride along. Once the sweep has finished,
// the counters are derived from its result so they agree with the
// points and aggregate — in particular, points a cancellation left
// undispatched are reported as failures carrying the context error,
// and only dispatched points count as completed.
func (j *job) body(includePoints bool) jobBody {
	j.mu.Lock()
	defer j.mu.Unlock()
	b := jobBody{
		ID: j.id, Kind: j.kind, Name: j.name, Status: j.status,
		Total: j.total, Completed: j.completed,
		CacheHits: j.hits, CacheMisses: j.completed - j.hits,
		Coalesced: j.coalesced,
		OOMs:      j.ooms, Failures: j.failures,
		ElapsedMS: float64(time.Since(j.started)) / float64(time.Millisecond),
		Error:     j.errMsg,
	}
	if j.res != nil {
		b.ElapsedMS = float64(j.res.Elapsed) / float64(time.Millisecond)
		b.Aggregate = j.aggregate
		if includePoints {
			b.Points = j.res.Points
		}
	}
	if j.advice != nil {
		b.ElapsedMS = float64(j.advice.Stats.Elapsed) / float64(time.Millisecond)
		b.Advice = j.advice
	}
	return b
}

// maxRetainedJobs bounds how many jobs (and their retained results) the
// server keeps; beyond it the oldest finished jobs are dropped, so a
// long-lived daemon under steady sweep traffic has bounded memory.
// Running jobs are never evicted.
const maxRetainedJobs = 256

// evictLocked drops the oldest finished jobs while the map exceeds
// maxRetainedJobs. Callers must hold s.mu.
func (s *Server) evictLocked() {
	if len(s.jobs) <= maxRetainedJobs {
		return
	}
	var finished []*job
	for _, j := range s.jobs {
		j.mu.Lock()
		st := j.status
		j.mu.Unlock()
		if st != statusRunning {
			finished = append(finished, j)
		}
	}
	// Oldest first; submission time orders across job kinds.
	sort.Slice(finished, func(i, k int) bool { return finished[i].started.Before(finished[k].started) })
	for _, j := range finished {
		if len(s.jobs) <= maxRetainedJobs {
			break
		}
		delete(s.jobs, j.id)
		mJobsEvicted.Inc()
		s.log.Debug("job evicted", slog.String("job", j.id))
	}
}

func (s *Server) lookup(id string, kind jobKind) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j := s.jobs[id]; j != nil && j.kind == kind {
		return j
	}
	return nil
}

// handleList lists the jobs of one kind, keyed by the kind's plural.
func (s *Server) handleList(kind jobKind) http.HandlerFunc {
	return func(w http.ResponseWriter, _ *http.Request) {
		s.mu.Lock()
		jobs := make([]*job, 0, len(s.jobs))
		for _, j := range s.jobs {
			if j.kind == kind {
				jobs = append(jobs, j)
			}
		}
		s.mu.Unlock()
		sort.Slice(jobs, func(i, k int) bool { return jobs[i].id < jobs[k].id })
		bodies := make([]jobBody, len(jobs))
		for i, j := range jobs {
			bodies[i] = j.body(false)
		}
		writeJSON(w, http.StatusOK, map[string][]jobBody{kind.listKey(): bodies})
	}
}

func (s *Server) handleGet(kind jobKind) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j := s.lookup(r.PathValue("id"), kind)
		if j == nil {
			writeError(w, http.StatusNotFound, "unknown %s %q", kind, r.PathValue("id"))
			return
		}
		writeJSON(w, http.StatusOK, j.body(r.URL.Query().Get("points") != "0"))
	}
}

// handleCancel cancels a running job; on a finished job it instead
// releases the job (and its retained results) from the server.
func (s *Server) handleCancel(kind jobKind) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j := s.lookup(r.PathValue("id"), kind)
		if j == nil {
			writeError(w, http.StatusNotFound, "unknown %s %q", kind, r.PathValue("id"))
			return
		}
		j.cancel()
		body := j.body(false)
		if body.Status != statusRunning {
			s.mu.Lock()
			delete(s.jobs, j.id)
			s.mu.Unlock()
		}
		writeJSON(w, http.StatusOK, body)
	}
}

// handleAdviseSubmit validates and launches an advisor query as an
// asynchronous job with the sweep job lifecycle. Total reports the
// query's candidate-space size — an upper bound on evaluations; the
// advisor usually finishes well short of it, and entirely from cache
// when an overlapping query ran before.
func (s *Server) handleAdviseSubmit(w http.ResponseWriter, r *http.Request) {
	raw, err := readBody(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading query: %v", err)
		return
	}
	q, err := opt.ParseQuery(bytes.NewReader(raw))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Check the grid size arithmetically before materializing the
	// candidate space, mirroring sweep submission.
	if n := q.Spec.Size(); n > s.opts.MaxSweepPoints {
		writeError(w, http.StatusRequestEntityTooLarge,
			"advisor space expands to %d points, limit %d", n, s.opts.MaxSweepPoints)
		return
	}
	space, err := q.Space()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	n := len(space.Cands)

	j := s.newJob(kindAdvise, q.Name, n)
	s.journalSubmit(j, raw)
	s.launchAdvise(j, q, space)

	writeJSON(w, http.StatusAccepted, submitBody{ID: j.id, Name: q.Name, Points: n})
}

// launchAdvise runs a registered advisor job on a background worker.
// Shared by fresh submissions and journal-recovered resumes.
func (s *Server) launchAdvise(j *job, q *opt.Query, space *opt.Space) {
	advisor := &opt.Advisor{Runner: s.runner(j.onPoint)}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer j.cancel()
		adv, err := advisor.RunSpace(j.ctx, q, space)
		j.mu.Lock()
		switch {
		case err == nil:
			j.advice = adv
			j.completed = adv.Stats.Evaluated
			j.hits = adv.Stats.CacheHits
			j.coalesced = adv.Stats.Coalesced
			j.ooms = adv.Stats.OOMs
			j.failures = adv.Stats.Failures
			j.status = statusDone
		case j.ctx.Err() != nil:
			j.status = statusCancelled
		default:
			// Queries validate before the job starts, so this is an
			// internal failure worth surfacing verbatim.
			j.errMsg = err.Error()
			j.status = statusFailed
		}
		status := j.status
		errMsg := j.errMsg
		j.notifyLocked()
		j.mu.Unlock()
		s.finishJob(j, status)
		s.journalFinish(j, status, adv, errMsg)
	}()
}
