package trace

import (
	"math"
	"testing"
	"testing/quick"

	"overlapsim/internal/sim"
)

func iv(a, b float64, k sim.Kind, dev int) Interval {
	return Interval{Start: a, End: b, Kind: k, Device: dev}
}

func timelineOf(ivs ...Interval) *Timeline {
	tl := New()
	for _, i := range ivs {
		tl.add(i)
	}
	tl.sortAll()
	return tl
}

func TestUnionMerges(t *testing.T) {
	u := Union([]Interval{iv(0, 2, 0, 0), iv(1, 3, 0, 0), iv(5, 6, 0, 0)})
	if len(u) != 2 {
		t.Fatalf("union = %v, want 2 spans", u)
	}
	if u[0].Start != 0 || u[0].End != 3 || u[1].Start != 5 || u[1].End != 6 {
		t.Errorf("union = %v", u)
	}
	if got := UnionLen([]Interval{iv(0, 2, 0, 0), iv(1, 3, 0, 0)}); got != 3 {
		t.Errorf("union length = %g, want 3", got)
	}
}

func TestUnionEmpty(t *testing.T) {
	if Union(nil) != nil {
		t.Error("union of nothing should be nil")
	}
	if UnionLen(nil) != 0 {
		t.Error("union length of nothing should be 0")
	}
}

func TestKernelAndBusyTime(t *testing.T) {
	tl := timelineOf(
		iv(0, 2, sim.KindCompute, 0),
		iv(1, 3, sim.KindCompute, 0), // overlapping kernels
		iv(4, 5, sim.KindComm, 0),
	)
	if got := tl.KernelTime(0, sim.KindCompute); got != 4 {
		t.Errorf("kernel time = %g, want 4 (durations add)", got)
	}
	if got := tl.BusyTime(0, sim.KindCompute); got != 3 {
		t.Errorf("busy time = %g, want 3 (union)", got)
	}
	if got := tl.KernelTime(0, sim.KindComm); got != 1 {
		t.Errorf("comm kernel time = %g, want 1", got)
	}
}

func TestOverlappedTime(t *testing.T) {
	tl := timelineOf(
		iv(0, 10, sim.KindCompute, 0),
		iv(2, 5, sim.KindComm, 0),
		iv(8, 12, sim.KindComm, 0),
	)
	// compute ∩ comm = [2,5) + [8,10) = 5
	if got := tl.OverlappedTime(0, sim.KindCompute, sim.KindComm); got != 5 {
		t.Errorf("overlapped compute = %g, want 5", got)
	}
	// comm ∩ compute = same span lengths within comm = 5
	if got := tl.OverlappedTime(0, sim.KindComm, sim.KindCompute); got != 5 {
		t.Errorf("overlapped comm = %g, want 5", got)
	}
	if got := tl.OverlapRatio(0); got != 0.5 {
		t.Errorf("overlap ratio = %g, want 0.5", got)
	}
}

func TestOverlapRatioNoCompute(t *testing.T) {
	tl := timelineOf(iv(0, 1, sim.KindComm, 0))
	if tl.OverlapRatio(0) != 0 {
		t.Error("no compute: ratio must be 0")
	}
}

func TestDevicesIsolated(t *testing.T) {
	tl := timelineOf(
		iv(0, 1, sim.KindCompute, 0),
		iv(0, 1, sim.KindComm, 1),
	)
	if got := tl.OverlappedTime(0, sim.KindCompute, sim.KindComm); got != 0 {
		t.Errorf("cross-device overlap = %g, want 0", got)
	}
	devs := tl.Devices()
	if len(devs) != 2 || devs[0] != 0 || devs[1] != 1 {
		t.Errorf("devices = %v", devs)
	}
}

func TestSpanAndKindSpan(t *testing.T) {
	tl := timelineOf(
		iv(1, 2, sim.KindComm, 0),
		iv(3, 7, sim.KindCompute, 0),
	)
	s, e := tl.Span()
	if s != 1 || e != 7 {
		t.Errorf("span = [%g,%g]", s, e)
	}
	cs, ce, ok := tl.KindSpan(sim.KindCompute)
	if !ok || cs != 3 || ce != 7 {
		t.Errorf("compute span = [%g,%g] ok=%v", cs, ce, ok)
	}
	if _, _, ok := tl.KindSpan(sim.KindHost); ok {
		t.Error("no host intervals: ok must be false")
	}
}

// Property: overlapped time never exceeds either side's busy time.
func TestQuickOverlapBounded(t *testing.T) {
	f := func(spans []uint16) bool {
		if len(spans) < 2 || len(spans) > 40 {
			return true
		}
		tl := New()
		for i, sp := range spans {
			start := float64(sp % 500)
			dur := float64(sp%97)/10 + 0.1
			k := sim.KindCompute
			if i%2 == 1 {
				k = sim.KindComm
			}
			tl.add(iv(start, start+dur, k, 0))
		}
		tl.sortAll()
		ov := tl.OverlappedTime(0, sim.KindCompute, sim.KindComm)
		if ov < -1e-9 {
			return false
		}
		if ov > tl.KernelTime(0, sim.KindCompute)+1e-9 {
			return false
		}
		return ov <= tl.BusyTime(0, sim.KindComm)*100+1e-9 // many compute kernels may share one comm span
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: UnionLen is invariant under permutation and never exceeds the
// summed durations.
func TestQuickUnionProperties(t *testing.T) {
	f := func(spans []uint16) bool {
		if len(spans) == 0 || len(spans) > 40 {
			return true
		}
		var ivs []Interval
		sum := 0.0
		for _, sp := range spans {
			start := float64(sp % 300)
			dur := float64(sp%31)/7 + 0.05
			ivs = append(ivs, iv(start, start+dur, 0, 0))
			sum += dur
		}
		u := UnionLen(ivs)
		if u > sum+1e-9 {
			return false
		}
		// Reverse and compare.
		rev := make([]Interval, len(ivs))
		for i, v := range ivs {
			rev[len(ivs)-1-i] = v
		}
		return math.Abs(UnionLen(rev)-u) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
