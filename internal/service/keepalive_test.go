package service

import (
	"bufio"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// A long-running job can legitimately go minutes between progress
// events; without traffic, proxy idle timeouts reap the connection and
// the client silently loses the terminal "done". The stream therefore
// emits SSE comment lines while idle — invisible to event parsers, but
// keeping the connection warm — and the slow consumer still receives
// the done event when the job finishes.
func TestEventsKeepAlive(t *testing.T) {
	srv := New(Options{KeepAlive: 5 * time.Millisecond})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})

	// A running job with no progress traffic: the stream sits idle after
	// the first snapshot, exactly the window keepalives exist for.
	srv.mu.Lock()
	j := srv.registerLocked("sweep-keepalive", kindSweep, "idle", 3, time.Now())
	srv.mu.Unlock()

	resp, err := http.Get(ts.URL + "/v1/sweeps/sweep-keepalive/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: status %d", resp.StatusCode)
	}

	// Finish the job only after several keepalive intervals have passed
	// with the consumer attached.
	go func() {
		time.Sleep(50 * time.Millisecond)
		j.mu.Lock()
		j.status = statusDone
		j.completed = j.total
		j.notifyLocked()
		j.mu.Unlock()
		// Balance the running-jobs gauge, as the real run loop does.
		srv.finishJob(j, statusDone)
	}()

	keepalives, done := 0, false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, ":") {
			keepalives++
		}
		if line == "event: done" {
			done = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Error("stream ended without the terminal done event")
	}
	if keepalives == 0 {
		t.Error("no keepalive comments on an idle stream")
	}
}

// KeepAlive defaults when unset, so existing constructors keep their
// behavior without opting in.
func TestKeepAliveDefault(t *testing.T) {
	srv := New(Options{})
	defer srv.Close()
	if srv.opts.KeepAlive != DefaultKeepAlive {
		t.Fatalf("KeepAlive = %v, want %v", srv.opts.KeepAlive, DefaultKeepAlive)
	}
}
