// Package collective implements cost models for the GPU collective
// communication operations used in distributed training — the NCCL/RCCL
// operations of §II-B: all-reduce, all-gather, reduce-scatter, broadcast,
// all-to-all and point-to-point send/receive.
//
// Collectives follow the standard ring algorithm α-β cost model: an
// operation over payload S on N ranks moves a well-defined number of wire
// bytes per rank in a fixed number of latency-bound steps. On a
// hierarchical (multi-node) fabric the cost decomposes per tier — an
// intra-node ring phase followed by an inter-node phase over the NIC
// tier, the NCCL hierarchical algorithms — and reduces exactly to the
// single-ring closed form on one node. On top of pure transfer time the
// package exposes the on-GPU resources a resident collective kernel
// consumes — SM/CU occupancy and HBM bandwidth — which is what couples
// communication to compute slowdown in the device model.
package collective

import (
	"fmt"
	"math"

	"overlapsim/internal/hw"
	"overlapsim/internal/topo"
)

// Op is a collective operation type.
type Op int

// Collective operations.
const (
	// AllReduce combines gradients across ranks (ring: reduce-scatter +
	// all-gather).
	AllReduce Op = iota
	// AllGather materializes a sharded tensor on every rank (FSDP
	// parameter gathering).
	AllGather
	// ReduceScatter reduces and shards a tensor across ranks (FSDP
	// gradient synchronization).
	ReduceScatter
	// Broadcast sends one rank's tensor to all ranks.
	Broadcast
	// AllToAll exchanges distinct shards between every pair of ranks
	// (mixture-of-experts routing).
	AllToAll
	// SendRecv is a point-to-point transfer between two ranks (pipeline
	// activations and gradients).
	SendRecv
)

// String returns the conventional name of the operation.
func (o Op) String() string {
	switch o {
	case AllReduce:
		return "all-reduce"
	case AllGather:
		return "all-gather"
	case ReduceScatter:
		return "reduce-scatter"
	case Broadcast:
		return "broadcast"
	case AllToAll:
		return "all-to-all"
	case SendRecv:
		return "send-recv"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Reducing reports whether the operation performs arithmetic reduction on
// the GPU (these occupy more SMs and generate more HBM traffic per wire
// byte — the "complex communication collectives" of Takeaway 1).
func (o Op) Reducing() bool {
	return o == AllReduce || o == ReduceScatter
}

// Gate abstracts a producer whose completion releases a posted
// communication kernel (satisfied by *sim.Task).
type Gate interface {
	// Done reports whether the producer has finished.
	Done() bool
}

// Desc describes one collective invocation.
type Desc struct {
	// Name is a diagnostic label.
	Name string
	// Op is the operation.
	Op Op
	// Bytes is the logical payload: the full (unsharded) tensor size for
	// AllReduce/AllGather/ReduceScatter/Broadcast, the per-rank buffer for
	// AllToAll, and the message size for SendRecv.
	Bytes float64
	// N is the number of ranks the collective algorithm runs over (2 for
	// SendRecv).
	N int
	// Ranks, when non-nil, lists the device indices the operation
	// occupies, overriding the default 0..N-1. Subgroup collectives
	// (tensor-parallel groups, data-parallel replica sets) use this; the
	// algorithm's cost still follows N, so a Desc may occupy more devices
	// than its group size when several symmetric groups run the same
	// operation as one fluid task.
	Ranks []int
	// Group, when non-nil, lists the device indices of one
	// representative algorithm group (length N). Hierarchical fabrics
	// read its placement to decide which tiers the ring crosses; it
	// defaults to the first N Ranks (or 0..N-1), which is right for
	// contiguous groups. Strided symmetric groups — tp's cross-group
	// gradient all-reduce, whose N peers sit one per TP group — must set
	// it, or a spanning collective would be costed entirely intra-node.
	Group []int
	// Src and Dst identify the endpoints of a SendRecv.
	Src, Dst int
	// Gate, when non-nil, marks the operation as posted early: the kernel
	// becomes resident (occupying SMs and serializing issue, as NCCL/RCCL
	// spin-wait kernels do) as soon as its queue slot opens, but moves no
	// data until the gate completes. Pipeline receives use this — it is
	// how communication kernel time comes to overlap computation in the
	// profiles the paper analyzes.
	Gate Gate

	// wireBW and participants cache the fabric-dependent quantities the
	// device model reads on every simulation epoch; Prepare fills them at
	// task-construction time. A zero wireBW falls back to recomputation,
	// so hand-built descriptors keep working unchanged.
	wireBW       float64
	participants []int
}

// Prepare returns the descriptor with its per-fabric constants — wire
// bandwidth and the resolved participant set — computed once, plus the
// effective wire bytes the simulator uses as the task's work. The device
// model reads these quantities on every constant-rate epoch; preparing
// them at task-construction time removes the tier decomposition from the
// simulation hot path without changing a single value.
//
// The cache binds the descriptor to f: a prepared Desc must only be
// rated against the fabric it was prepared for (WireBW returns the
// cached bandwidth regardless of its argument). Re-Prepare against the
// new fabric to re-rate a plan elsewhere.
func Prepare(d Desc, f topo.Fabric) (Desc, float64) {
	d.wireBW = BW(d, f)
	d.participants = d.Participants()
	return d, EffWireBytes(d, f)
}

// Preparer memoizes Prepare against one fabric. Strategy builders emit
// the same few descriptor shapes hundreds of times per plan (one gather
// per layer per iteration, all with identical bytes), and the tier
// decomposition behind Prepare is not free at cluster scale — the memo
// turns plan construction's Prepare cost from O(collectives) fabric
// walks into O(distinct shapes). Results are exact: a hit returns the
// identical prepared constants, renamed for the caller.
type Preparer struct {
	fabric topo.Fabric
	m      map[prepSig][]prepEntry
}

// prepSig is the comparable part of a descriptor's Prepare inputs;
// Ranks/Group are verified exactly on the entry list.
type prepSig struct {
	op          Op
	bytes       uint64
	n, src, dst int
	nRank, nGrp int
}

type prepEntry struct {
	ranks, group []int
	prepared     Desc
	work         float64
}

// NewPreparer returns a memoizing Prepare bound to the fabric.
func NewPreparer(f topo.Fabric) *Preparer {
	return &Preparer{fabric: f, m: make(map[prepSig][]prepEntry)}
}

// Prepare is Prepare(d, fabric) with memoization. Gated descriptors are
// never cached (a gate is runtime identity, not shape); set Gate after
// preparing, as the builders do.
func (p *Preparer) Prepare(d Desc) (Desc, float64) {
	if d.Gate != nil {
		return Prepare(d, p.fabric)
	}
	sig := prepSig{op: d.Op, bytes: math.Float64bits(d.Bytes),
		n: d.N, src: d.Src, dst: d.Dst, nRank: len(d.Ranks), nGrp: len(d.Group)}
	for _, e := range p.m[sig] {
		if intsEqual(e.ranks, d.Ranks) && intsEqual(e.group, d.Group) {
			out := e.prepared
			out.Name = d.Name
			return out, e.work
		}
	}
	pd, w := Prepare(d, p.fabric)
	p.m[sig] = append(p.m[sig], prepEntry{ranks: d.Ranks, group: d.Group, prepared: pd, work: w})
	return pd, w
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// WireBW returns the per-rank wire bandwidth on the fabric, using the
// Prepare-time cache when present.
func (d Desc) WireBW(f topo.Fabric) float64 {
	if d.wireBW > 0 {
		return d.wireBW
	}
	return BW(d, f)
}

// Waiting reports whether the operation is posted but still blocked on its
// producer.
func (d Desc) Waiting() bool {
	return d.Gate != nil && !d.Gate.Done()
}

// Validate reports whether the descriptor is well formed.
func (d Desc) Validate() error {
	if d.Bytes < 0 {
		return fmt.Errorf("collective: %q has negative bytes %g", d.Name, d.Bytes)
	}
	min := 2
	if d.N < min {
		return fmt.Errorf("collective: %q has %d ranks, need at least %d", d.Name, d.N, min)
	}
	if d.Op == SendRecv && d.Src == d.Dst {
		return fmt.Errorf("collective: %q sends to itself (rank %d)", d.Name, d.Src)
	}
	if d.Ranks != nil {
		if len(d.Ranks) == 0 {
			return fmt.Errorf("collective: %q has an empty rank set", d.Name)
		}
		seen := make(map[int]bool, len(d.Ranks))
		for _, r := range d.Ranks {
			if r < 0 {
				return fmt.Errorf("collective: %q lists negative rank %d", d.Name, r)
			}
			if seen[r] {
				return fmt.Errorf("collective: %q lists rank %d twice", d.Name, r)
			}
			seen[r] = true
		}
	}
	if d.Group != nil {
		if len(d.Group) != d.N {
			return fmt.Errorf("collective: %q group lists %d ranks, algorithm runs over %d", d.Name, len(d.Group), d.N)
		}
		seen := make(map[int]bool, len(d.Group))
		for _, r := range d.Group {
			if r < 0 {
				return fmt.Errorf("collective: %q group lists negative rank %d", d.Name, r)
			}
			if seen[r] {
				return fmt.Errorf("collective: %q group lists rank %d twice", d.Name, r)
			}
			seen[r] = true
		}
	}
	return nil
}

// groupPlacement returns the device indices of one representative
// algorithm group: the explicit Group, else the first N ranks of the
// occupancy set, else 0..N-1.
func (d Desc) groupPlacement() []int {
	if d.Group != nil {
		return d.Group
	}
	if d.Ranks != nil && len(d.Ranks) >= d.N {
		return d.Ranks[:d.N]
	}
	out := make([]int, d.N)
	for i := range out {
		out[i] = i
	}
	return out
}

// WireBytesPerRank returns the bytes each rank transmits on the wire under
// the ring algorithm.
func (d Desc) WireBytesPerRank() float64 {
	n := float64(d.N)
	switch d.Op {
	case AllReduce:
		return 2 * d.Bytes * (n - 1) / n
	case AllGather, ReduceScatter:
		return d.Bytes * (n - 1) / n
	case Broadcast:
		return d.Bytes
	case AllToAll:
		return d.Bytes * (n - 1) / n
	case SendRecv:
		return d.Bytes
	default:
		//overlaplint:allow nopanic op-enum exhaustiveness: Desc.Validate rejects unknown ops, so this default is unreachable
		panic(fmt.Sprintf("collective: unknown op %d", int(d.Op)))
	}
}

// Steps returns the number of latency-bound algorithm steps.
func (d Desc) Steps() int {
	switch d.Op {
	case AllReduce:
		return 2 * (d.N - 1)
	case AllGather, ReduceScatter, Broadcast:
		return d.N - 1
	case AllToAll:
		return d.N - 1
	case SendRecv:
		return 1
	default:
		//overlaplint:allow nopanic op-enum exhaustiveness: Desc.Validate rejects unknown ops, so this default is unreachable
		panic(fmt.Sprintf("collective: unknown op %d", int(d.Op)))
	}
}

// BW returns the wire bandwidth in bytes/s the operation sustains per
// rank on the given fabric: the pairwise path rate for SendRecv, the
// bottleneck rate of the tiers the operation's ring actually crosses
// otherwise — a subgroup contained in one node of a multi-node fabric
// keeps its intra-node rate. It is the rate the simulator assigns the
// fluid task and the rate the HBM-draw model sees.
func BW(d Desc, f topo.Fabric) float64 {
	if d.Op == SendRecv {
		return f.P2PBW(d.Src, d.Dst)
	}
	tiers := f.Tiers()
	if len(tiers) == 1 {
		return f.RingBW()
	}
	bw := 0.0
	for i, k := range tierSpans(d, tiers) {
		if k >= 2 && (bw == 0 || tiers[i].BW < bw) {
			bw = tiers[i].BW
		}
	}
	if bw == 0 {
		bw = f.RingBW()
	}
	return bw
}

// phase is one tier of the hierarchical ring decomposition: the per-rank
// bytes crossing the tier, the tier bandwidth, and the latency-bound step
// count.
type phase struct {
	bytes float64
	bw    float64
	steps int
	lat   float64
}

// fillSpans distributes n ranks over the tiers innermost-first by
// filling: each tier takes at most its fan-out, the outermost takes the
// rest. A tier left with one rank contributes a no-op phase.
func fillSpans(n int, tiers []topo.Tier) []int {
	spans := make([]int, len(tiers))
	rem := n
	for i, t := range tiers {
		k := t.Ranks
		if i == len(tiers)-1 || rem < k {
			k = rem
		}
		if k < 1 {
			k = 1
		}
		spans[i] = k
		rem = (rem + k - 1) / k
	}
	return spans
}

// tierSpans returns the ring fan-out of the collective at each fabric
// tier, innermost first. On a multi-tier fabric the outermost (node)
// span follows the actual placement of the algorithm group — how many
// nodes its N ranks touch — so a strided cross-node group (tp's DP
// all-reduce, one peer per node) is costed on the NIC tier, while a
// group contained in one node never pays it. The inner ranks fill the
// intra-node tiers.
func tierSpans(d Desc, tiers []topo.Tier) []int {
	if len(tiers) == 1 {
		return []int{d.N}
	}
	nodeSize := 1
	for _, t := range tiers[:len(tiers)-1] {
		nodeSize *= t.Ranks
	}
	nodes := make(map[int]bool, len(tiers))
	for _, r := range d.groupPlacement() {
		nodes[r/nodeSize] = true
	}
	m := len(nodes)
	if m < 1 {
		m = 1
	}
	perNode := (d.N + m - 1) / m
	spans := fillSpans(perNode, tiers[:len(tiers)-1])
	return append(spans, m)
}

// phases returns the per-tier ring decomposition of the collective. On a
// single-tier fabric this is exactly the classic closed form: the
// operation's per-rank wire bytes at ring bandwidth in Steps() latency
// steps.
func phases(d Desc, f topo.Fabric) []phase {
	tiers := f.Tiers()
	spans := tierSpans(d, tiers)
	var out []phase
	// shard is the payload fraction entering the tier (all-gather /
	// reduce-scatter payloads shrink by the fan-out of each inner tier);
	// filled is the rank count covered by inner tiers (all-to-all
	// bookkeeping).
	shard := d.Bytes
	filled := 1
	n := float64(d.N)
	for i, k := range spans {
		if k < 2 {
			continue
		}
		kf := float64(k)
		ph := phase{bw: tiers[i].BW, lat: tiers[i].StepLatency}
		switch d.Op {
		case AllReduce:
			ph.bytes = 2 * shard * (kf - 1) / kf
			ph.steps = 2 * (k - 1)
		case AllGather, ReduceScatter:
			ph.bytes = shard * (kf - 1) / kf
			ph.steps = k - 1
		case Broadcast:
			// The full payload crosses every tier.
			ph.bytes = d.Bytes
			ph.steps = k - 1
		case AllToAll:
			// Each rank exchanges Bytes/N with every peer; this tier
			// carries the peers it newly reaches.
			ph.bytes = d.Bytes * float64(filled*k-filled) / n
			ph.steps = k - 1
		default:
			//overlaplint:allow nopanic op-enum exhaustiveness: Desc.Validate rejects unknown ops, so this default is unreachable
			panic(fmt.Sprintf("collective: unknown op %d", int(d.Op)))
		}
		if ph.bw <= 0 {
			//overlaplint:allow nopanic defensive: GPUSpec/NICSpec Validate enforce positive bandwidths, so a zero tier rate is a broken invariant, not user input
			panic(fmt.Sprintf("collective: zero tier bandwidth for %q", d.Name))
		}
		out = append(out, ph)
		shard /= kf
		filled *= k
	}
	return out
}

// Time returns the contention-free completion time of the collective on
// the fabric: per tier, transfer of the bytes crossing that tier at the
// tier's bandwidth plus its latency-bound ring steps. SendRecv pays the
// pairwise path rate and latency (NIC latency when the endpoints sit on
// different nodes).
func Time(d Desc, f topo.Fabric) float64 {
	if d.Op == SendRecv {
		bw := f.P2PBW(d.Src, d.Dst)
		if bw <= 0 {
			//overlaplint:allow nopanic defensive: GPUSpec/NICSpec Validate enforce positive bandwidths, so a zero pair rate is a broken invariant, not user input
			panic(fmt.Sprintf("collective: zero bandwidth for %q", d.Name))
		}
		return d.Bytes/bw + f.PathLatency(d.Src, d.Dst)
	}
	total := 0.0
	for _, ph := range phases(d, f) {
		total += ph.bytes/ph.bw + float64(ph.steps)*ph.lat
	}
	return total
}

// EffWireBytes returns the latency- and tier-adjusted wire bytes the
// simulator uses as the task's work: executing this work at BW reproduces
// Time exactly, letting a multi-phase collective be one fluid task.
func EffWireBytes(d Desc, f topo.Fabric) float64 {
	return Time(d, f) * d.WireBW(f)
}

// BusBW returns the nccl-tests style "bus bandwidth" implied by a measured
// completion time: the algorithm-normalized bandwidth that lets different
// collectives be compared against link speed.
func BusBW(d Desc, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	n := float64(d.N)
	algBytes := d.Bytes / seconds
	switch d.Op {
	case AllReduce:
		return algBytes * 2 * (n - 1) / n
	case AllGather, ReduceScatter, AllToAll:
		return algBytes * (n - 1) / n
	default:
		return algBytes
	}
}

// SMOccupancy returns the SMs/CUs a resident kernel of this collective
// occupies on GPU g.
func SMOccupancy(d Desc, g *hw.GPUSpec) int {
	if d.Op.Reducing() {
		return g.Contention.CollSMsReduce
	}
	return g.Contention.CollSMsCopy
}

// HBMDraw returns the HBM bandwidth in bytes/s the collective consumes on
// each participant while its wire transfer proceeds at wireRate bytes/s.
func HBMDraw(d Desc, g *hw.GPUSpec, wireRate float64) float64 {
	if wireRate <= 0 {
		return 0
	}
	k := g.Contention.HBMPerWireByte
	if !d.Op.Reducing() {
		// Copy collectives skip the reduction read stream.
		k *= 0.75
	}
	return k * wireRate
}

// Participants returns the rank indices the collective occupies. For
// SendRecv these are the two endpoints; with an explicit Ranks set those
// ranks; otherwise ranks 0..N-1. Prepared descriptors return the
// resolved set without allocating.
func (d Desc) Participants() []int {
	if d.participants != nil {
		return d.participants
	}
	if d.Op == SendRecv {
		return []int{d.Src, d.Dst}
	}
	if d.Ranks != nil {
		return d.Ranks
	}
	ranks := make([]int, d.N)
	for i := range ranks {
		ranks[i] = i
	}
	return ranks
}
