package store

import (
	"strings"

	"overlapsim/internal/sweep"
)

// Compose builds the standard lookup path the CLIs and overlapd share:
// a memory tier, then the cache directory (when non-empty), then the
// peer mesh (when peers, a comma-separated list of overlapd base URLs,
// is non-empty). Reads promote toward memory; writes publish through
// every tier, so a CLI run warms the mesh for everyone else.
func Compose(cacheDir, peers string) (*Tiered, error) {
	tiers := []sweep.Cache{sweep.NewMemCache()}
	if cacheDir != "" {
		dc, err := sweep.NewDirCache(cacheDir)
		if err != nil {
			return nil, err
		}
		tiers = append(tiers, dc)
	}
	if list := SplitPeers(peers); len(list) > 0 {
		hc, err := NewHTTPCache(list, nil)
		if err != nil {
			return nil, err
		}
		tiers = append(tiers, hc)
	}
	return NewTiered(tiers...), nil
}

// SplitPeers parses a comma-separated peer list the way operators write
// them: entries are whitespace-trimmed, empties (trailing commas,
// doubled commas, a blank flag) are dropped, and duplicates collapse to
// the first occurrence so one peer is never dialed twice per lookup.
// Compose and the overlapd -peers flag share it, so the CLI and the
// library accept the same grammar.
func SplitPeers(peers string) []string {
	var out []string
	seen := make(map[string]bool)
	for _, p := range strings.Split(peers, ",") {
		p = strings.TrimSpace(p)
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		out = append(out, p)
	}
	return out
}
