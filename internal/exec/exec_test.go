package exec

import (
	"errors"
	"testing"

	"overlapsim/internal/kernels"
	"overlapsim/internal/precision"
	"overlapsim/internal/sim"
)

func TestModeString(t *testing.T) {
	if Overlapped.String() != "overlapped" || Sequential.String() != "sequential" {
		t.Error("mode names")
	}
	if Mode(5).String() == "" {
		t.Error("unknown mode should still format")
	}
}

func TestChainOrdersPerDevice(t *testing.T) {
	e := sim.NewEngine(nil)
	s0 := e.NewStream("s0", 0)
	s1 := e.NewStream("s1", 1)
	c := NewChain()
	a := e.NewTask("a", sim.KindCompute, 1, nil, s0)
	c.Order(a, 0)
	b := e.NewTask("b", sim.KindCompute, 1, nil, s1)
	c.Order(b, 1)
	// Barrier across both devices.
	s2 := e.NewStream("s2", 0)
	bar := e.NewTask("bar", sim.KindComm, 1, nil, s2)
	c.Order(bar, 0, 1)
	d := e.NewTask("d", sim.KindCompute, 1, nil, s0)
	c.Order(d, 0)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if bar.Start() < a.End() || bar.Start() < b.End() {
		t.Error("barrier must follow both devices' prior ops")
	}
	if d.Start() < bar.End() {
		t.Error("chained op must follow the barrier")
	}
	if c.Last(0) != d || c.Last(1) != bar {
		t.Error("chain bookkeeping wrong")
	}
}

func TestChainSelfOrderIgnored(t *testing.T) {
	e := sim.NewEngine(nil)
	s := e.NewStream("s", 0)
	c := NewChain()
	a := e.NewTask("a", sim.KindCompute, 1, nil, s)
	c.Order(a, 0)
	c.Order(a, 0) // must not self-depend
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestIterationMeasurement(t *testing.T) {
	e := sim.NewEngine(nil)
	s0 := e.NewStream("c0", 0)
	s1 := e.NewStream("c1", 1)
	d := kernels.Elementwise("k", 1e6, 1, 0, precision.FP16)
	a := e.NewTask("a", sim.KindCompute, 2, d, s0)
	b := e.NewTask("b", sim.KindCompute, 4, d, s1)
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	it := IterationMeasurement([]*sim.Task{a, b})
	// Kernel times average across the two devices: (2+4)/2 = 3.
	if it.ComputeKernelTime != 3 {
		t.Errorf("compute kernel time %g, want 3", it.ComputeKernelTime)
	}
	if it.E2E != 4 {
		t.Errorf("E2E %g, want 4 (span)", it.E2E)
	}
}

func TestIterationMeasurementEmpty(t *testing.T) {
	it := IterationMeasurement(nil)
	if it.E2E != 0 || it.ComputeKernelTime != 0 {
		t.Errorf("empty measurement %+v", it)
	}
}

func TestPlanGuards(t *testing.T) {
	p := &Plan{Engine: sim.NewEngine(nil)}
	if _, err := p.MeasuredIterations(); !errors.Is(err, ErrNotRun) {
		t.Errorf("MeasuredIterations before Run: got %v, want ErrNotRun", err)
	}
	if _, err := p.MeasuredTimeline(); !errors.Is(err, ErrNotRun) {
		t.Errorf("MeasuredTimeline before Run: got %v, want ErrNotRun", err)
	}
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if err := p.Run(); err == nil {
		t.Error("second Run must fail")
	}
	if _, err := p.MeasuredIterations(); err != nil {
		t.Errorf("MeasuredIterations after Run: %v", err)
	}
	if _, err := p.MeasuredTimeline(); err != nil {
		t.Errorf("MeasuredTimeline after Run: %v", err)
	}
}
