package sweep

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"overlapsim/internal/core"
)

// fakeFlight is a deterministic Flight: the first caller of a key runs
// fn, every later caller is served the stored result as coalesced. It
// lets the runner's singleflight plumbing be tested without real
// concurrency races.
type fakeFlight struct {
	mu   sync.Mutex
	done map[string]*core.Result
	runs int
}

func (f *fakeFlight) Do(_ context.Context, key string, fn func() (*core.Result, error)) (*core.Result, bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if res, ok := f.done[key]; ok {
		return res, true, nil
	}
	res, err := fn()
	if err != nil {
		return nil, false, err
	}
	if f.done == nil {
		f.done = make(map[string]*core.Result)
	}
	f.done[key] = res
	f.runs++
	return res, false, nil
}

// Duplicate grid points flow through the runner's Flight: one simulates,
// the rest are marked coalesced, and coalesced points stay inside the
// CacheHits+CacheMisses == len(Points) invariant as misses.
func TestRunnerCoalescesThroughFlight(t *testing.T) {
	spec := testSpec()
	spec.GPUs = []string{"H100"}
	spec.Parallelisms = []string{"fsdp"}
	_, cfgs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	dup := []core.Config{cfgs[0], cfgs[0], cfgs[0], cfgs[0]}

	flight := &fakeFlight{}
	// Workers: 1 makes the interleaving deterministic; no cache, so every
	// point is a miss and must go through the flight.
	res, err := (&Runner{Workers: 1, Flight: flight}).Run(context.Background(), dup)
	if err != nil {
		t.Fatal(err)
	}
	if flight.runs != 1 {
		t.Errorf("flight ran the simulation %d times for 4 identical points, want 1", flight.runs)
	}
	if res.Coalesced != 3 {
		t.Errorf("Result.Coalesced = %d, want 3", res.Coalesced)
	}
	if res.CacheHits != 0 || res.CacheMisses != 4 {
		t.Errorf("hits/misses = %d/%d, want 0/4 (coalesced points count as misses)",
			res.CacheHits, res.CacheMisses)
	}
	var flagged int
	for _, p := range res.Points {
		if p.Coalesced {
			flagged++
		}
		if p.Res == nil {
			t.Errorf("point %d has no result", p.Index)
		}
	}
	if flagged != 3 {
		t.Errorf("%d points flagged coalesced, want 3", flagged)
	}
}

// Canonical strips execution provenance: a cold run and a warm re-run of
// the same grid — whose raw results differ in hit counts and flags —
// encode to byte-identical canonical results.
func TestResultCanonicalIsCacheStateInvariant(t *testing.T) {
	spec := testSpec()
	_, cfgs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	cache := NewMemCache()
	cold, err := (&Runner{Workers: 2, Cache: cache}).Run(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := (&Runner{Workers: 2, Cache: cache}).Run(context.Background(), cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if warm.CacheHits == 0 {
		t.Fatal("warm run hit nothing; cache is broken")
	}

	rawCold, err := json.Marshal(cold)
	if err != nil {
		t.Fatal(err)
	}
	rawWarm, err := json.Marshal(warm)
	if err != nil {
		t.Fatal(err)
	}
	if string(rawCold) == string(rawWarm) {
		t.Error("raw cold and warm results identical; provenance fields are not being recorded")
	}

	canonCold, err := json.Marshal(cold.Canonical())
	if err != nil {
		t.Fatal(err)
	}
	canonWarm, err := json.Marshal(warm.Canonical())
	if err != nil {
		t.Fatal(err)
	}
	if string(canonCold) != string(canonWarm) {
		t.Errorf("canonical results differ between cold and warm runs:\ncold: %s\nwarm: %s",
			canonCold, canonWarm)
	}
}

// DirCache.Put stages entries in a temp file and renames: a completed
// Put leaves no droppings, and a stray half-written temp file (a crashed
// writer) is invisible to Get and harmless to later Puts.
func TestDirCachePutAtomicity(t *testing.T) {
	dir := t.TempDir()
	c, err := NewDirCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	res := &core.Result{Config: core.Config{Batch: 8}}
	key, err := res.Config.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}

	// Simulate a writer killed mid-Put: a partial temp file in the dir.
	tornPath := filepath.Join(dir, "put-1234torn")
	if err := os.WriteFile(tornPath, []byte(`{"Config":{"Ba`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("Get served a hit from a torn temp file")
	}

	if err := c.Put(key, res); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); !ok {
		t.Fatal("miss after Put")
	}

	// The completed Put must not have left its own temp file behind; only
	// the published entry and the pre-existing torn file may remain.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() == key+".json" || e.Name() == filepath.Base(tornPath) {
			continue
		}
		if strings.HasPrefix(e.Name(), "put-") {
			t.Errorf("Put left temp file %s behind", e.Name())
		} else {
			t.Errorf("unexpected file %s in cache dir", e.Name())
		}
	}
}
