package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"overlapsim/internal/sim"
)

// chromeEvent is one complete ("X" phase) event in the Chrome trace-event
// JSON format, loadable in chrome://tracing or Perfetto.
type chromeEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`  // microseconds
	Dur  float64 `json:"dur"` // microseconds
	Pid  int     `json:"pid"` // device
	Tid  string  `json:"tid"` // kind
	Cat  string  `json:"cat"`
}

// WriteChrome serializes the timeline in Chrome trace-event format so
// simulated schedules can be inspected in the same viewers used for real
// torch-profiler traces.
func (tl *Timeline) WriteChrome(w io.Writer) error {
	var events []chromeEvent
	for _, dev := range tl.Devices() {
		for _, iv := range tl.Intervals(dev) {
			events = append(events, chromeEvent{
				Name: iv.Name,
				Ph:   "X",
				Ts:   iv.Start * 1e6,
				Dur:  iv.Dur() * 1e6,
				Pid:  dev,
				Tid:  iv.Kind.String(),
				Cat:  iv.Kind.String(),
			})
		}
	}
	enc := json.NewEncoder(w)
	if _, err := fmt.Fprint(w, ""); err != nil {
		return err
	}
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{events})
}

// ReadChromeEventCount is a test helper that decodes a Chrome trace and
// returns the number of events of each kind.
func ReadChromeEventCount(r io.Reader) (compute, comm int, err error) {
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return 0, 0, err
	}
	for _, e := range doc.TraceEvents {
		switch e.Tid {
		case sim.KindCompute.String():
			compute++
		case sim.KindComm.String():
			comm++
		}
	}
	return compute, comm, nil
}
