// Package trace records kernel execution intervals from a finished
// simulation and implements the interval algebra behind the paper's
// profiling methodology: per-device compute and communication kernel time,
// and the overlapped fractions of each (Eq. 2), exactly as the authors
// extract them from the PyTorch profiler and torch.cuda.event timelines.
package trace

import (
	"fmt"
	"sort"

	"overlapsim/internal/collective"
	"overlapsim/internal/kernels"
	"overlapsim/internal/sim"
)

// Interval is one kernel execution span on one device.
type Interval struct {
	// Start and End bound the span in simulated seconds.
	Start, End float64
	// Name is the kernel's diagnostic name.
	Name string
	// Kind distinguishes compute from communication.
	Kind sim.Kind
	// Device is the GPU index.
	Device int
}

// Dur returns the interval length.
func (iv Interval) Dur() float64 { return iv.End - iv.Start }

// Timeline is a set of kernel intervals grouped by device.
type Timeline struct {
	byDevice map[int][]Interval
	start    float64
	end      float64
	any      bool
}

// New returns an empty timeline.
func New() *Timeline {
	return &Timeline{byDevice: make(map[int][]Interval)}
}

// FromTasks builds a timeline from completed simulation tasks. Compute
// kernels contribute an interval on their stream's device; collectives
// contribute an interval on every participant. Tasks that never ran are
// skipped.
func FromTasks(tasks []*sim.Task) *Timeline {
	return FromTasksKept(tasks, nil)
}

// FromTasksKept builds a timeline restricted to the devices keep accepts
// (nil keeps every device). The symmetry fast path uses it to extract
// measurements from class representatives only: a collapsed device's
// intervals are bitwise copies of its representative's, so skipping them
// here loses no information and keeps measurement O(live devices).
func FromTasksKept(tasks []*sim.Task, keep func(device int) bool) *Timeline {
	tl := New()
	for _, t := range tasks {
		tl.addTask(t, keep)
	}
	tl.sortAll()
	return tl
}

// AddTask appends the intervals of one completed task.
func (tl *Timeline) AddTask(t *sim.Task) {
	tl.addTask(t, nil)
}

func (tl *Timeline) addTask(t *sim.Task, keep func(device int) bool) {
	if !t.Done() {
		return
	}
	switch p := t.Payload().(type) {
	case kernels.Desc:
		dev := t.Streams()[0].Device()
		if keep != nil && !keep(dev) {
			return
		}
		tl.add(Interval{Start: t.Start(), End: t.End(), Name: p.Name, Kind: sim.KindCompute, Device: dev})
	case collective.Desc:
		for _, r := range p.Participants() {
			if keep != nil && !keep(r) {
				continue
			}
			tl.add(Interval{Start: t.Start(), End: t.End(), Name: p.Name, Kind: sim.KindComm, Device: r})
		}
	}
}

func (tl *Timeline) add(iv Interval) {
	tl.byDevice[iv.Device] = append(tl.byDevice[iv.Device], iv)
	if !tl.any || iv.Start < tl.start {
		tl.start = iv.Start
	}
	if !tl.any || iv.End > tl.end {
		tl.end = iv.End
	}
	tl.any = true
}

func (tl *Timeline) sortAll() {
	for _, ivs := range tl.byDevice {
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].Start < ivs[j].Start })
	}
}

// Devices returns the device indices present, in ascending order.
func (tl *Timeline) Devices() []int {
	out := make([]int, 0, len(tl.byDevice))
	for d := range tl.byDevice {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

// Span returns the earliest start and latest end across all intervals.
func (tl *Timeline) Span() (start, end float64) { return tl.start, tl.end }

// KindSpan returns the earliest start and latest end of intervals of one
// kind across all devices; ok is false when none exist. Iteration latency
// uses the compute span start so that communication kernels posted early
// (before the iteration's first compute) do not stretch the window.
func (tl *Timeline) KindSpan(k sim.Kind) (start, end float64, ok bool) {
	for _, ivs := range tl.byDevice {
		for _, iv := range ivs {
			if iv.Kind != k {
				continue
			}
			if !ok || iv.Start < start {
				start = iv.Start
			}
			if !ok || iv.End > end {
				end = iv.End
			}
			ok = true
		}
	}
	return start, end, ok
}

// Intervals returns the intervals of one device (sorted by start).
func (tl *Timeline) Intervals(device int) []Interval {
	ivs := tl.byDevice[device]
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].Start < ivs[j].Start })
	return ivs
}

// kindIntervals returns [start,end) pairs of one kind on one device.
func (tl *Timeline) kindIntervals(device int, k sim.Kind) []Interval {
	var out []Interval
	for _, iv := range tl.byDevice[device] {
		if iv.Kind == k {
			out = append(out, iv)
		}
	}
	return out
}

// KernelTime returns the summed duration of kernels of the given kind on
// the device (kernel time in the paper's sense — durations add even if
// spans overlap).
func (tl *Timeline) KernelTime(device int, k sim.Kind) float64 {
	s := 0.0
	for _, iv := range tl.kindIntervals(device, k) {
		s += iv.Dur()
	}
	return s
}

// BusyTime returns the length of the union of the device's intervals of
// the given kind.
func (tl *Timeline) BusyTime(device int, k sim.Kind) float64 {
	return UnionLen(tl.kindIntervals(device, k))
}

// OverlappedTime returns the total duration of kind-a kernels that is
// covered by the union of kind-b kernels on the device: with a=compute,
// b=comm this is the numerator of the paper's Eq. 2; with a=comm,
// b=compute it is the hidden communication time of Eq. 5.
func (tl *Timeline) OverlappedTime(device int, a, b sim.Kind) float64 {
	cover := Union(tl.kindIntervals(device, b))
	s := 0.0
	for _, iv := range tl.kindIntervals(device, a) {
		s += intersectLen(iv, cover)
	}
	return s
}

// DeviceOverlap returns the device's summed compute and comm kernel
// times plus the portion of each covered by the union of the other kind
// — the per-device quantities of Eqs. 2 and 5 — in one pass over the
// device's intervals. It is the batched equivalent of KernelTime and
// OverlappedTime called pairwise, with identical arithmetic (same
// interval order, same per-interval summation grouping), sized for the
// per-iteration measurement hot path.
func (tl *Timeline) DeviceOverlap(device int) (computeT, commT, computeOv, commOv float64) {
	ivs := tl.byDevice[device]
	if !sortedByStart(ivs) {
		sort.Slice(ivs, func(i, j int) bool { return ivs[i].Start < ivs[j].Start })
	}
	compute := make([]Interval, 0, len(ivs))
	comm := make([]Interval, 0, len(ivs))
	for _, iv := range ivs {
		switch iv.Kind {
		case sim.KindCompute:
			compute = append(compute, iv)
			computeT += iv.Dur()
		case sim.KindComm:
			comm = append(comm, iv)
			commT += iv.Dur()
		}
	}
	computeOv = sweepIntersect(compute, unionSorted(comm))
	commOv = sweepIntersect(comm, unionSorted(compute))
	return computeT, commT, computeOv, commOv
}

// sortedByStart reports whether the intervals are already sorted.
func sortedByStart(ivs []Interval) bool {
	for i := 1; i < len(ivs); i++ {
		if ivs[i].Start < ivs[i-1].Start {
			return false
		}
	}
	return true
}

// unionSorted is Union for input already sorted by start: it skips the
// defensive copy and sort, producing the identical disjoint cover.
func unionSorted(ivs []Interval) []Interval {
	if len(ivs) == 0 {
		return nil
	}
	out := make([]Interval, 0, len(ivs))
	out = append(out, ivs[0])
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if iv.Start <= last.End {
			if iv.End > last.End {
				last.End = iv.End
			}
		} else {
			out = append(out, iv)
		}
	}
	return out
}

// sweepIntersect sums, over the start-sorted intervals as, the length of
// each interval's intersection with the sorted disjoint cover. The cover
// cursor only moves forward, so the sweep is linear in practice; each
// interval accumulates its own subtotal first, reproducing intersectLen's
// float grouping exactly.
func sweepIntersect(as, cover []Interval) float64 {
	s := 0.0
	j := 0
	for _, a := range as {
		for j < len(cover) && cover[j].End <= a.Start {
			j++
		}
		sub := 0.0
		for k := j; k < len(cover) && cover[k].Start < a.End; k++ {
			lo := a.Start
			if cover[k].Start > lo {
				lo = cover[k].Start
			}
			hi := a.End
			if cover[k].End < hi {
				hi = cover[k].End
			}
			if hi > lo {
				sub += hi - lo
			}
		}
		s += sub
	}
	return s
}

// OverlapRatio returns Eq. 2 for the device: the fraction of compute
// kernel time overlapped with communication. It returns 0 when the device
// has no compute time.
func (tl *Timeline) OverlapRatio(device int) float64 {
	c := tl.KernelTime(device, sim.KindCompute)
	if c <= 0 {
		return 0
	}
	return tl.OverlappedTime(device, sim.KindCompute, sim.KindComm) / c
}

// Union merges intervals into a minimal sorted set of disjoint spans.
func Union(ivs []Interval) []Interval {
	if len(ivs) == 0 {
		return nil
	}
	sorted := make([]Interval, len(ivs))
	copy(sorted, ivs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Start < sorted[j].Start })
	out := []Interval{sorted[0]}
	for _, iv := range sorted[1:] {
		last := &out[len(out)-1]
		if iv.Start <= last.End {
			if iv.End > last.End {
				last.End = iv.End
			}
		} else {
			out = append(out, iv)
		}
	}
	return out
}

// UnionLen returns the length of the union of the intervals.
func UnionLen(ivs []Interval) float64 {
	s := 0.0
	for _, iv := range Union(ivs) {
		s += iv.Dur()
	}
	return s
}

// intersectLen returns the length of iv ∩ cover, where cover is disjoint
// and sorted.
func intersectLen(iv Interval, cover []Interval) float64 {
	s := 0.0
	for _, c := range cover {
		lo := iv.Start
		if c.Start > lo {
			lo = c.Start
		}
		hi := iv.End
		if c.End < hi {
			hi = c.End
		}
		if hi > lo {
			s += hi - lo
		}
		if c.Start >= iv.End {
			break
		}
	}
	return s
}

// String renders a compact per-device summary for debugging.
func (tl *Timeline) String() string {
	s := ""
	for _, d := range tl.Devices() {
		s += fmt.Sprintf("dev%d: compute=%.3fms comm=%.3fms overlap=%.1f%%\n",
			d,
			tl.KernelTime(d, sim.KindCompute)*1e3,
			tl.KernelTime(d, sim.KindComm)*1e3,
			tl.OverlapRatio(d)*100)
	}
	return s
}
