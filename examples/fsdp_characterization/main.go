// Command fsdp_characterization sweeps FSDP training across the Table II
// model zoo and batch sizes on a chosen system, printing the Fig. 4/5
// quantities: compute slowdown, overlap ratio and the ideal / overlapped /
// sequential end-to-end latencies. Infeasible configurations are reported
// as OOM, exactly as the paper's A100 runs were limited by 40 GB.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"overlapsim/internal/core"
	"overlapsim/internal/hw"
	"overlapsim/internal/model"
	"overlapsim/internal/precision"
	"overlapsim/internal/report"
	"overlapsim/internal/workload"
)

func main() {
	log.SetFlags(0)
	gpuName := flag.String("gpu", "MI250", "GPU model: A100, H100, MI210, MI250")
	n := flag.Int("n", 4, "GPUs in the node")
	flag.Parse()

	g := hw.ByName(*gpuName)
	if g == nil {
		log.Fatalf("unknown GPU %q", *gpuName)
	}

	var cfgs []core.Config
	for _, m := range model.Zoo() {
		for _, bs := range workload.EvalBatches() {
			cfgs = append(cfgs, core.Config{
				System:      hw.NewSystem(g, *n),
				Model:       m,
				Parallelism: "fsdp",
				Batch:       bs,
				Format:      precision.FP16,
				MatrixUnits: true,
			})
		}
	}

	fmt.Printf("FSDP characterization on %sx%d (FP16, matrix units)\n\n", g.Name, *n)
	pts := workload.RunGrid(context.Background(), cfgs)

	headers := []string{"Model", "Batch", "Slowdown", "Overlap",
		"Ideal(ms)", "Overlapped(ms)", "Sequential(ms)", "SeqPenalty"}
	var rows [][]string
	for _, p := range pts {
		row := []string{p.Cfg.Model.Name, fmt.Sprintf("%d", p.Cfg.Batch)}
		switch {
		case p.Skipped():
			row = append(row, "OOM", "-", "-", "-", "-", "-")
		case p.Err != nil:
			log.Fatal(p.Err)
		default:
			c := p.Res.Char
			row = append(row,
				report.Pct(c.ComputeSlowdown),
				report.Pct(c.OverlapRatio),
				report.Ms(c.E2EIdeal),
				report.Ms(p.Res.Overlapped.Mean.E2E),
				report.Ms(p.Res.Sequential.Mean.E2E),
				report.Pct(c.SeqPenalty))
		}
		rows = append(rows, row)
	}
	if err := report.Table(os.Stdout, headers, rows); err != nil {
		log.Fatal(err)
	}
}
