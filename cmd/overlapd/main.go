// Command overlapd serves the characterization harness over HTTP/JSON:
// synchronous single experiments, asynchronous sweep jobs with progress
// polling, and catalog discovery, all backed by one content-addressed
// result cache (optionally persisted to disk).
//
// Example:
//
//	overlapd -addr :8080 -cache .sweepcache &
//	curl -s localhost:8080/v1/catalog
//	curl -s -X POST localhost:8080/v1/experiments \
//	    -d '{"gpu":"H100","model":"GPT-3 XL","parallelism":"fsdp","batch":16}'
//	curl -s -X POST localhost:8080/v1/sweeps -d @examples/sweeps/paper_grid.json
//	curl -s localhost:8080/v1/sweeps/sweep-000001
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"overlapsim/internal/hw"
	"overlapsim/internal/service"
	"overlapsim/internal/sweep"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("overlapd: ")

	var (
		addr     = flag.String("addr", ":8080", "listen address")
		hwFile   = flag.String("hw-file", "", "load custom GPUs/systems from this JSON file into the served catalog")
		cacheDir = flag.String("cache", "", "content-addressed cache directory (empty = in-memory only)")
		workers  = flag.Int("workers", 0, "concurrent simulations per sweep (0 = NumCPU)")
		maxPts   = flag.Int("max-points", service.DefaultMaxSweepPoints, "largest sweep grid a job may submit")
	)
	flag.Parse()

	if *hwFile != "" {
		if err := hw.LoadFile(*hwFile); err != nil {
			log.Fatal(err)
		}
	}

	var cache sweep.Cache
	if *cacheDir != "" {
		dc, err := sweep.NewDirCache(*cacheDir)
		if err != nil {
			log.Fatal(err)
		}
		cache = dc
	}

	srv := service.New(service.Options{Cache: cache, Workers: *workers, MaxSweepPoints: *maxPts})
	hs := &http.Server{Addr: *addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-ctx.Done()
		log.Print("shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = hs.Shutdown(sctx)
		srv.Close()
	}()

	log.Printf("listening on %s", *addr)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	// ListenAndServe returns as soon as Shutdown begins; wait for the
	// drain (and the background sweep jobs) to actually finish.
	<-done
}
