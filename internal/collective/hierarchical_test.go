package collective

import (
	"math"
	"testing"

	"overlapsim/internal/hw"
	"overlapsim/internal/topo"
)

func multinode(perNode, nodes int, nicGBs float64) topo.Fabric {
	sys := hw.NewMultiNode(hw.H100(), perNode, nodes)
	if nicGBs > 0 {
		sys.NIC = &hw.NICSpec{BWGBs: nicGBs, Latency: 10e-6}
	}
	return topo.ForSystem(sys)
}

// Hierarchical ring all-gather / reduce-scatter time must degrade
// monotonically as inter-node bandwidth drops — the NIC tier is on the
// critical path of every spanning collective.
func TestHierarchicalTimeMonotoneInNICBandwidth(t *testing.T) {
	for _, op := range []Op{AllGather, ReduceScatter, AllReduce} {
		d := Desc{Name: op.String(), Op: op, Bytes: 1 << 30, N: 16}
		prev := 0.0
		for i, gbs := range []float64{100, 50, 25, 12.5, 6.25} {
			got := Time(d, multinode(8, 2, gbs))
			if i > 0 && got <= prev {
				t.Errorf("%v: time %g at %g GB/s not above %g at the faster NIC", op, got, gbs, prev)
			}
			prev = got
		}
	}
}

// With one node the hierarchical decomposition must reduce to the
// single-ring closed form: per-rank wire bytes at ring bandwidth plus
// Steps() hop latencies.
func TestSingleNodeReducesToClosedForm(t *testing.T) {
	f := topo.ForSystem(hw.NewSystem(hw.H100(), 8))
	for _, op := range []Op{AllReduce, AllGather, ReduceScatter, Broadcast, AllToAll} {
		d := Desc{Name: op.String(), Op: op, Bytes: 256 << 20, N: 8}
		want := d.WireBytesPerRank()/f.RingBW() + float64(d.Steps())*f.HopLatency()
		got := Time(d, f)
		if math.Abs(got-want)/want > 1e-12 {
			t.Errorf("%v: Time = %g, closed form = %g", op, got, want)
		}
	}
	// A multi-node System with Nodes canonicalized to one node is the
	// same fabric.
	sys := hw.NewMultiNode(hw.H100(), 8, 1)
	if sys.NodeCount() != 1 {
		t.Fatal("one-node multi-node system must be single-node")
	}
	d := Desc{Op: AllGather, Bytes: 1 << 26, N: 8}
	if Time(d, topo.ForSystem(sys)) != Time(d, topo.ForSystem(hw.NewSystem(hw.H100(), 8))) {
		t.Error("Nodes == 1 must cost exactly like the single-node fabric")
	}
}

// The hierarchical decomposition matches the hand-computed two-phase
// cost: an intra-node ring over the full payload plus an inter-node ring
// over the per-node shard.
func TestHierarchicalTwoPhaseCost(t *testing.T) {
	f := multinode(8, 4, 50)
	tiers := f.Tiers()
	const S = 1 << 30
	d := Desc{Op: ReduceScatter, Bytes: S, N: 32}
	intra := S * 7.0 / 8.0 / tiers[0].BW
	inter := (S / 8.0) * 3.0 / 4.0 / tiers[1].BW
	lat := 7*tiers[0].StepLatency + 3*tiers[1].StepLatency
	want := intra + inter + lat
	if got := Time(d, f); math.Abs(got-want)/want > 1e-9 {
		t.Errorf("Time = %g, want %g", got, want)
	}
	// All-reduce is the symmetric double of that.
	ar := Desc{Op: AllReduce, Bytes: S, N: 32}
	if got := Time(ar, f); math.Abs(got-2*want)/(2*want) > 1e-9 {
		t.Errorf("all-reduce Time = %g, want %g", got, 2*want)
	}
}

// Collectives spanning more nodes pay more inter-node phases, so at a
// fixed payload time grows with the node count.
func TestHierarchicalTimeGrowsWithNodes(t *testing.T) {
	prev := 0.0
	for i, nodes := range []int{1, 2, 4, 8} {
		var f topo.Fabric
		if nodes == 1 {
			f = topo.ForSystem(hw.NewSystem(hw.H100(), 8))
		} else {
			f = multinode(8, nodes, 50)
		}
		d := Desc{Op: AllGather, Bytes: 1 << 30, N: 8 * nodes}
		got := Time(d, f)
		if i > 0 && got <= prev {
			t.Errorf("%d nodes: time %g not above %g for fewer nodes", nodes, got, prev)
		}
		prev = got
	}
}

// A subgroup that fits inside one node must never pay the NIC tier.
func TestSubgroupInsideOneNode(t *testing.T) {
	f := multinode(8, 4, 1) // 1 GB/s NIC: crossing it would dominate
	single := topo.ForSystem(hw.NewSystem(hw.H100(), 8))
	d := Desc{Op: AllGather, Bytes: 1 << 26, N: 8}
	got, want := Time(d, f), Time(d, single)
	if math.Abs(got-want)/want > 1e-12 {
		t.Errorf("intra-node subgroup pays the NIC: %g vs %g", got, want)
	}
}

// EffWireBytes/BW must reproduce Time on hierarchical fabrics too — the
// simulator runs a multi-phase collective as one fluid task.
func TestHierarchicalEffWireBytesReproducesTime(t *testing.T) {
	f := multinode(4, 4, 25)
	for _, op := range []Op{AllReduce, AllGather, ReduceScatter, Broadcast, AllToAll} {
		d := Desc{Name: op.String(), Op: op, Bytes: 64 << 20, N: 16}
		want := Time(d, f)
		got := EffWireBytes(d, f) / BW(d, f)
		if math.Abs(got-want)/want > 1e-9 {
			t.Errorf("%v: EffWireBytes/BW = %g, Time = %g", op, got, want)
		}
	}
}

// A strided algorithm group — one peer per node, the shape of tp's
// cross-group DP all-reduce under TP degree == node size — must be
// costed on the NIC tier it actually crosses, not as an intra-node
// ring; and an intra-node subgroup on the same fabric must keep NVLink
// rates even though it occupies devices of a multi-node cluster.
func TestGroupPlacementSelectsTiers(t *testing.T) {
	f := multinode(8, 4, 50) // 4 nodes x 8 GPUs
	all := make([]int, 32)
	for i := range all {
		all[i] = i
	}
	strided := Desc{
		Name: "dp.ar", Op: AllReduce, Bytes: 1 << 30, N: 4,
		Ranks: all, Group: []int{0, 8, 16, 24}, // rank 0 of each node
	}
	if err := strided.Validate(); err != nil {
		t.Fatal(err)
	}
	nicBound := Time(strided, f)
	// The same 4-rank all-reduce placed inside one node.
	intra := Desc{Name: "tp.ar", Op: AllReduce, Bytes: 1 << 30, N: 4, Ranks: []int{0, 1, 2, 3}}
	intraTime := Time(intra, f)
	if nicBound < 4*intraTime {
		t.Errorf("strided cross-node ring %gs not NIC-bound (intra-node: %gs)", nicBound, intraTime)
	}
	// It must match the explicit inter-node closed form: a 4-way ring
	// entirely on the NIC tier.
	nic := f.Tiers()[1]
	want := 2*strided.Bytes*(3.0/4.0)/nic.BW + 6*nic.StepLatency
	if math.Abs(nicBound-want)/want > 1e-9 {
		t.Errorf("strided ring = %g, want NIC closed form %g", nicBound, want)
	}
	if BW(strided, f) != nic.BW {
		t.Error("strided ring must run at the NIC rate")
	}
	// The intra-node subgroup keeps the NVLink rate and the single-node
	// closed form despite living on a multi-node fabric.
	if BW(intra, f) != f.Tiers()[0].BW {
		t.Error("intra-node subgroup must keep the NVLink rate")
	}
	single := topo.ForSystem(hw.NewSystem(hw.H100(), 8))
	if got := Time(intra, single); math.Abs(intraTime-got)/got > 1e-12 {
		t.Errorf("intra-node subgroup time %g differs from single-node %g", intraTime, got)
	}
	if bad := (Desc{Op: AllReduce, Bytes: 1, N: 4, Group: []int{0, 8}}); bad.Validate() == nil {
		t.Error("a group whose length differs from N must fail validation")
	}
}

// Cross-node send/recv pays NIC bandwidth and latency; intra-node pairs
// keep NVLink rates.
func TestHierarchicalSendRecv(t *testing.T) {
	f := multinode(8, 2, 50)
	intra := Desc{Op: SendRecv, Bytes: 1 << 24, N: 2, Src: 0, Dst: 1}
	inter := Desc{Op: SendRecv, Bytes: 1 << 24, N: 2, Src: 0, Dst: 8}
	if Time(intra, f) >= Time(inter, f) {
		t.Error("cross-node P2P must be slower than intra-node")
	}
}

// The tree variant also decomposes per tier and must stay ahead of ring
// for latency-bound payloads on a multi-node fabric.
func TestHierarchicalTreeSmallPayload(t *testing.T) {
	f := multinode(8, 4, 50)
	small := Desc{Op: AllReduce, Bytes: 4 << 10, N: 32}
	if BestAlgo(small, f) != Tree {
		t.Errorf("small all-reduce over 32 ranks should pick tree (ring %g vs tree %g)",
			TimeWith(small, f, Ring), TimeWith(small, f, Tree))
	}
	big := Desc{Op: AllReduce, Bytes: 1 << 30, N: 32}
	if TimeWith(big, f, Auto) > TimeWith(big, f, Ring) {
		t.Error("auto must never lose to ring")
	}
}
