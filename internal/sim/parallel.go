package sim

import "sync"

// Pool runs sharded per-epoch work across persistent worker goroutines.
//
// The engine's epoch structure is a sequence of barriers: every epoch the
// platform recomputes rates for all running tasks, the scheduler scans
// them for the epoch length, decrements residual work, and retires the
// finished. Each of those passes is embarrassingly parallel over tasks
// (or devices), and the barrier between passes is the only
// synchronization the fluid model needs. Pool provides exactly that
// shape: Run/RunRange fan a function out over fixed contiguous shards
// and return only when every shard finished, so the caller's view before
// and after is identical to a serial pass. Shards are contiguous and
// merge order is fixed (shard 0, 1, 2, ...), which keeps pooled runs
// bit-identical to serial ones.
//
// Workers are persistent: a run at ranks=4096 executes hundreds of
// thousands of epochs, so per-epoch goroutine spawning would dominate.
// The calling goroutine always executes shard 0 itself, so a Pool of n
// workers uses n-1 background goroutines.
type Pool struct {
	n    int
	work []chan func()
	wg   sync.WaitGroup
}

// NewPool returns a pool of n workers, or nil when n < 2 (a nil *Pool is
// valid and executes everything serially on the caller). Close must be
// called to release the background goroutines.
func NewPool(n int) *Pool {
	if n < 2 {
		return nil
	}
	p := &Pool{n: n, work: make([]chan func(), n-1)}
	for i := range p.work {
		ch := make(chan func())
		p.work[i] = ch
		go func() {
			for fn := range ch {
				fn()
			}
		}()
	}
	return p
}

// Workers returns the number of shards Run and RunRange split into (1 for
// a nil pool).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.n
}

// Run executes fn(shard) for every shard in [0, Workers()) concurrently
// and returns when all have finished. The caller runs shard 0.
func (p *Pool) Run(fn func(shard int)) {
	if p == nil {
		fn(0)
		return
	}
	p.wg.Add(p.n - 1)
	for i, ch := range p.work {
		shard := i + 1
		ch <- func() {
			defer p.wg.Done()
			fn(shard)
		}
	}
	fn(0)
	p.wg.Wait()
}

// RunRange splits [0, n) into Workers() contiguous shards and executes
// fn(shard, lo, hi) for each. Shard boundaries depend only on n and the
// worker count, so the same input always produces the same partition.
func (p *Pool) RunRange(n int, fn func(shard, lo, hi int)) {
	w := p.Workers()
	if w == 1 || n < w {
		fn(0, 0, n)
		return
	}
	p.Run(func(shard int) {
		lo := shard * n / w
		hi := (shard + 1) * n / w
		if lo < hi {
			fn(shard, lo, hi)
		}
	})
}

// Close shuts the background workers down. The pool must not be used
// after Close. Safe on a nil pool.
func (p *Pool) Close() {
	if p == nil {
		return
	}
	for _, ch := range p.work {
		close(ch)
	}
}
