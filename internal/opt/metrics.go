package opt

import "overlapsim/internal/telemetry"

// Process-wide advisor instrumentation on the default telemetry
// registry. Per-query numbers stay in Stats; these accumulate across
// queries so /metrics shows how hard the advisor is working and how
// much the shared cache is saving.
var (
	mQueries = telemetry.Default.Counter("advisor_queries_total",
		"Advisor queries completed.")
	mRounds = telemetry.Default.Counter("advisor_rounds_total",
		"Successive-halving refinement rounds run after the seed grid.")
	mEvals = telemetry.Default.CounterVec("advisor_evals_total",
		"Candidate evaluations by source: fresh (simulated) or cached.",
		"source")
)

// noteQuery records one finished query's search effort.
func noteQuery(st Stats) {
	mQueries.Inc()
	mRounds.Add(uint64(st.Rounds))
	mEvals.With("fresh").Add(uint64(st.FreshEvals))
	mEvals.With("cached").Add(uint64(st.CacheHits))
}
