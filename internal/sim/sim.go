// Package sim implements a deterministic discrete-event simulation engine
// with fluid (rate-based) task execution.
//
// The engine models a set of streams (FIFO command queues, one or more per
// device) executing tasks. A task carries an abstract amount of work (FLOPs
// for compute kernels, bytes for communication) and consumes it at a rate
// that a Platform recomputes every time the set of running tasks changes.
// Between such epochs all rates are constant, so task completion times are
// exact; this is the classic fluid processor-sharing formulation used by
// architectural simulators to model bandwidth and execution-unit contention
// without cycle-level detail.
//
// Dependencies form a DAG across streams: a task starts only when all its
// dependencies have finished and it is at the head of every stream it is
// enqueued on. Enqueuing one task on several streams models rendezvous
// operations such as collectives, which occupy the communication queue of
// every participating GPU simultaneously.
package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
)

// Kind classifies a task for rate computation and tracing.
type Kind int

// Task kinds.
const (
	// KindCompute is a compute kernel (work measured in FLOPs).
	KindCompute Kind = iota
	// KindComm is a communication operation (work measured in bytes on the
	// wire per participant).
	KindComm
	// KindHost is host-side or fixed-latency work (work measured in
	// seconds; executed at rate 1).
	KindHost
)

// String returns a short human-readable name for the kind.
func (k Kind) String() string {
	switch k {
	case KindCompute:
		return "compute"
	case KindComm:
		return "comm"
	case KindHost:
		return "host"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// state is the lifecycle of a task.
type state int

const (
	statePending state = iota
	stateRunning
	stateDone
)

// Task is one unit of simulated work. Create tasks with Engine.NewTask and
// configure them before Engine.Run is called.
type Task struct {
	name    string
	kind    Kind
	work    float64
	payload any

	streams []*Stream
	deps    int
	succs   []*Task
	onDone  []func(now float64)

	remaining float64
	rate      float64
	st        state
	started   bool
	start     float64
	end       float64

	seq int // creation order, for deterministic iteration
}

// Name returns the task's diagnostic name.
func (t *Task) Name() string { return t.name }

// Kind returns the task's kind.
func (t *Task) Kind() Kind { return t.kind }

// Work returns the total abstract work of the task.
func (t *Task) Work() float64 { return t.work }

// Payload returns the opaque payload attached at creation (for example a
// kernel or collective descriptor used by the Platform to compute rates).
func (t *Task) Payload() any { return t.payload }

// Streams returns the streams the task occupies.
func (t *Task) Streams() []*Stream { return t.streams }

// SetRate sets the task's current execution rate in work units per second.
// It must only be called by the Platform from within Rates.
func (t *Task) SetRate(r float64) {
	if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
		panic(fmt.Sprintf("sim: invalid rate %v for task %q", r, t.name))
	}
	t.rate = r
}

// Rate returns the rate most recently assigned by the Platform.
func (t *Task) Rate() float64 { return t.rate }

// Start returns the simulated time at which the task started running. Valid
// only after the task has started.
func (t *Task) Start() float64 { return t.start }

// End returns the simulated time at which the task finished. Valid only
// after Engine.Run returns.
func (t *Task) End() float64 { return t.end }

// Done reports whether the task has finished.
func (t *Task) Done() bool { return t.st == stateDone }

// Running reports whether the task is currently executing.
func (t *Task) Running() bool { return t.st == stateRunning }

// After declares that t must not start before each of deps has finished.
// It must be called before Engine.Run.
func (t *Task) After(deps ...*Task) *Task {
	for _, d := range deps {
		if d == nil {
			continue
		}
		if d.st == stateDone {
			continue
		}
		d.succs = append(d.succs, t)
		t.deps++
	}
	return t
}

// OnDone registers a callback invoked when the task completes. Callbacks may
// create new tasks and enqueue them on streams.
func (t *Task) OnDone(f func(now float64)) *Task {
	t.onDone = append(t.onDone, f)
	return t
}

// Stream is a FIFO command queue. Tasks enqueued on a stream execute in
// order; at most one task per stream runs at a time.
type Stream struct {
	name   string
	device int
	queue  []*Task
	head   int
	seq    int
}

// Name returns the stream's diagnostic name.
func (s *Stream) Name() string { return s.name }

// Device returns the device index the stream belongs to.
func (s *Stream) Device() int { return s.device }

// Len returns the number of tasks not yet completed on the stream.
func (s *Stream) Len() int { return len(s.queue) - s.head }

func (s *Stream) headTask() *Task {
	if s.head < len(s.queue) {
		return s.queue[s.head]
	}
	return nil
}

func (s *Stream) pop(t *Task) {
	if s.headTask() != t {
		panic("sim: pop of non-head task")
	}
	s.queue[s.head] = nil
	s.head++
}

// Platform assigns execution rates to running tasks. Rates must be set via
// Task.SetRate for every task in running; a rate of zero stalls the task
// until the running set changes again.
type Platform interface {
	Rates(now float64, running []*Task)
}

// PlatformFunc adapts a function to the Platform interface.
type PlatformFunc func(now float64, running []*Task)

// Rates implements Platform.
func (f PlatformFunc) Rates(now float64, running []*Task) { f(now, running) }

// Observer is notified of every constant-rate segment of simulated time.
// Observers are used for power sampling and energy integration.
type Observer interface {
	Segment(t0, t1 float64, running []*Task)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(t0, t1 float64, running []*Task)

// Segment implements Observer.
func (f ObserverFunc) Segment(t0, t1 float64, running []*Task) { f(t0, t1, running) }

// Engine drives the simulation.
type Engine struct {
	platform  Platform
	streams   []*Stream
	tasks     []*Task
	running   []*Task
	observers []Observer
	now       float64
	nextSeq   int
	ran       bool
}

// timeEps is the tolerance used when comparing simulated times and residual
// work, to absorb floating-point rounding across epochs.
const timeEps = 1e-12

// NewEngine returns an engine whose task rates are provided by p.
func NewEngine(p Platform) *Engine {
	if p == nil {
		p = PlatformFunc(func(now float64, running []*Task) {
			for _, t := range running {
				t.SetRate(1)
			}
		})
	}
	return &Engine{platform: p}
}

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Tasks returns every task created on the engine, in creation order.
func (e *Engine) Tasks() []*Task { return e.tasks }

// AddObserver registers an observer for constant-rate segments.
func (e *Engine) AddObserver(o Observer) { e.observers = append(e.observers, o) }

// NewStream creates a stream bound to the given device index.
func (e *Engine) NewStream(name string, device int) *Stream {
	s := &Stream{name: name, device: device, seq: len(e.streams)}
	e.streams = append(e.streams, s)
	return s
}

// NewTask creates a task with the given diagnostic name, kind, total work
// and opaque payload, enqueued on the given streams in order. Work must be
// non-negative; zero-work tasks complete immediately upon starting.
func (e *Engine) NewTask(name string, kind Kind, work float64, payload any, streams ...*Stream) *Task {
	if work < 0 || math.IsNaN(work) || math.IsInf(work, 0) {
		panic(fmt.Sprintf("sim: invalid work %v for task %q", work, name))
	}
	if len(streams) == 0 {
		panic(fmt.Sprintf("sim: task %q enqueued on no stream", name))
	}
	t := &Task{
		name:      name,
		kind:      kind,
		work:      work,
		payload:   payload,
		remaining: work,
		seq:       e.nextSeq,
	}
	e.nextSeq++
	seen := make(map[*Stream]bool, len(streams))
	for _, s := range streams {
		if s == nil {
			panic(fmt.Sprintf("sim: nil stream for task %q", name))
		}
		if seen[s] {
			continue
		}
		seen[s] = true
		t.streams = append(t.streams, s)
		s.queue = append(s.queue, t)
	}
	e.tasks = append(e.tasks, t)
	return t
}

// ErrDeadlock is returned by Run when unfinished tasks remain but none can
// make progress (circular dependencies, or every runnable task stalled at
// rate zero).
var ErrDeadlock = errors.New("sim: deadlock: unfinished tasks cannot make progress")

// Run executes the simulation until every task has completed. It returns
// ErrDeadlock (wrapped with diagnostics) if progress stops.
func (e *Engine) Run() error {
	return e.RunContext(context.Background())
}

// RunContext executes the simulation like Run, additionally stopping
// between constant-rate epochs when ctx is cancelled. On cancellation it
// returns ctx.Err(); completed tasks keep their measurements but the
// simulation is not resumable.
func (e *Engine) RunContext(ctx context.Context) error {
	e.ran = true
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		e.admit()
		if len(e.running) == 0 {
			if e.pendingCount() == 0 {
				return nil
			}
			return fmt.Errorf("%w: %s", ErrDeadlock, e.diagnose())
		}
		e.platform.Rates(e.now, e.running)

		// Zero-work or infinite-rate tasks complete immediately.
		if e.completeInstant() {
			continue
		}

		dt := math.Inf(1)
		stalled := true
		for _, t := range e.running {
			if t.rate <= 0 {
				continue
			}
			stalled = false
			if d := t.remaining / t.rate; d < dt {
				dt = d
			}
		}
		if stalled {
			return fmt.Errorf("%w: all %d running tasks stalled at rate 0 at t=%g: %s",
				ErrDeadlock, len(e.running), e.now, e.diagnose())
		}

		t0, t1 := e.now, e.now+dt
		for _, o := range e.observers {
			o.Segment(t0, t1, e.running)
		}
		for _, t := range e.running {
			t.remaining -= t.rate * dt
		}
		e.now = t1
		e.finishCompleted()
	}
}

// admit moves ready stream heads into the running set. A single pass
// suffices: admission never pops a stream, so it cannot make further heads
// ready within the same call.
func (e *Engine) admit() {
	for _, s := range e.streams {
		t := s.headTask()
		if t == nil || t.st != statePending || t.deps > 0 {
			continue
		}
		if !headOfAll(t) {
			continue
		}
		t.st = stateRunning
		if !t.started {
			t.started = true
			t.start = e.now
		}
		e.running = append(e.running, t)
	}
	sort.Slice(e.running, func(i, j int) bool { return e.running[i].seq < e.running[j].seq })
}

func headOfAll(t *Task) bool {
	for _, s := range t.streams {
		if s.headTask() != t {
			return false
		}
	}
	return true
}

// completeInstant finishes running tasks with no remaining work without
// advancing time. It reports whether any task completed.
func (e *Engine) completeInstant() bool {
	any := false
	for _, t := range e.running {
		if t.remaining <= timeEps {
			any = true
		}
	}
	if any {
		e.finishCompleted()
	}
	return any
}

// finishCompleted retires every running task whose work is exhausted and
// fires completion callbacks.
func (e *Engine) finishCompleted() {
	var done []*Task
	keep := e.running[:0]
	for _, t := range e.running {
		if t.remaining <= timeEps {
			done = append(done, t)
		} else {
			keep = append(keep, t)
		}
	}
	e.running = keep
	for _, t := range done {
		t.st = stateDone
		t.end = e.now
		t.remaining = 0
		for _, s := range t.streams {
			s.pop(t)
		}
		for _, succ := range t.succs {
			succ.deps--
		}
	}
	// Callbacks fire after all pops/dep updates so that they observe a
	// consistent queue state and may enqueue follow-on work.
	for _, t := range done {
		for _, f := range t.onDone {
			f(e.now)
		}
	}
}

func (e *Engine) pendingCount() int {
	n := 0
	for _, t := range e.tasks {
		if t.st != stateDone {
			n++
		}
	}
	return n
}

// diagnose summarizes stuck state for deadlock errors.
func (e *Engine) diagnose() string {
	n := 0
	var first *Task
	for _, t := range e.tasks {
		if t.st == stateDone {
			continue
		}
		n++
		if first == nil {
			first = t
		}
	}
	if first == nil {
		return "no pending tasks"
	}
	return fmt.Sprintf("%d unfinished tasks; first=%q (deps=%d, kind=%s)",
		n, first.name, first.deps, first.kind)
}
