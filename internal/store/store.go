// Package store is the distributed serving tier behind overlapd: the
// pieces that turn one process's content-addressed result cache into a
// cluster-wide, restart-surviving substrate.
//
// Everything here leans on the same invariant the sweep caches already
// exploit: a simulation result is a pure function of its canonical
// config fingerprint. That makes every layer trivial to distribute —
// entries never invalidate, replicas never disagree, and any copy of a
// result is as good as any other.
//
//   - Tiered composes sweep.Cache backends (Mem → Dir → peers) with
//     write-back promotion, so hot entries migrate toward the fastest
//     tier.
//   - HTTPCache is a peer backend speaking the tiny GET/PUT-by-
//     fingerprint protocol overlapd serves under /v1/cache/{fp},
//     sharding ownership across replicas by rendezvous hashing — a
//     share-nothing cache mesh with no coordinator.
//   - Flight coalesces concurrent computations of the same fingerprint
//     onto one leader; a thundering herd of identical experiments
//     simulates exactly once per process.
//   - Journal is an append-only, checksum-framed record log under a
//     state directory; overlapd journals job submissions and terminal
//     results through it so a restart can list finished jobs and resume
//     interrupted ones against the warm cache.
package store
