package store

import (
	"context"
	"errors"
	"sync"

	"overlapsim/internal/core"
)

// Flight coalesces concurrent computations of the same canonical
// fingerprint onto one leader. The cache layer already makes repeated
// work free *after* the first result lands; Flight closes the window
// while it is still being computed — within one sweep, across
// concurrent sweeps, and across advisor jobs sharing a runner, N
// identical in-flight experiments simulate exactly once.
//
// The zero value is not usable; call NewFlight.
type Flight struct {
	mu    sync.Mutex
	calls map[string]*call
}

// call is one in-flight computation.
type call struct {
	done chan struct{} // closed when res/err are set
	res  *core.Result
	err  error
}

// NewFlight returns an empty singleflight group.
func NewFlight() *Flight {
	return &Flight{calls: make(map[string]*call)}
}

// Do returns the result of fn for the key, running fn at most once
// across concurrent callers. The second return reports whether this
// caller waited on another caller's computation instead of running its
// own (it was coalesced).
//
// Cancellation stays per-caller: a waiter whose own ctx expires returns
// its ctx error immediately, and a leader whose computation ends in a
// context error does not poison the waiters — they re-enter and elect a
// new leader, because the leader's cancellation says nothing about the
// key.
func (f *Flight) Do(ctx context.Context, key string, fn func() (*core.Result, error)) (*core.Result, bool, error) {
	waited := false
	for {
		f.mu.Lock()
		if c, ok := f.calls[key]; ok {
			f.mu.Unlock()
			// Count each coalesced caller once, not once per retry: a
			// waiter re-entering after a cancelled leader is still the
			// same coalesced request.
			if !waited {
				mFlightWaiters.Inc()
				waited = true
			}
			select {
			case <-ctx.Done():
				return nil, waited, ctx.Err()
			case <-c.done:
			}
			// A leader that was cancelled produced no verdict about the
			// key; retry (and possibly lead) rather than propagate its
			// context error to callers that are still alive.
			if isContextErr(c.err) && ctx.Err() == nil {
				continue
			}
			return c.res, waited, c.err
		}
		c := &call{done: make(chan struct{})}
		f.calls[key] = c
		f.mu.Unlock()
		mFlightLeaders.Inc()

		c.res, c.err = fn()
		f.mu.Lock()
		delete(f.calls, key)
		f.mu.Unlock()
		close(c.done)
		return c.res, waited, c.err
	}
}

// isContextErr reports whether err is (or wraps) a context
// cancellation or deadline error.
func isContextErr(err error) bool {
	return err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
}
