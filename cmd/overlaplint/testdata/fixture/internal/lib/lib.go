// Package lib carries one deliberate finding for each analyzer whose
// scope applies outside overlapsim's own import paths.
package lib

import "context"

func Explode() {
	panic("boom")
}

func Dropped(ctx context.Context) int {
	return 0
}
