package hw

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// The platform registries mirror internal/strategy: GPUs and systems are
// keyed by case-insensitive name, built-ins self-register in init
// functions, and user hardware joins through Register/RegisterSystem (or
// the JSON path, Load). Builders return fresh values on every lookup so
// callers can mutate a spec for an ablation without corrupting the
// registry.
//
// Registration state lives in a Registry value. The package-level
// functions operate on the process-wide default registry; NewRegistry
// creates an isolated child that resolves missing names through the
// default (so user files can reference built-in GPUs) without ever
// writing to it — which is what lets tests and fuzzers load arbitrary
// hardware files hermetically.

// Registry holds named GPU and system builders.
type Registry struct {
	mu         sync.RWMutex
	gpusByName map[string]func() *GPUSpec
	gpuOrder   []string
	sysByName  map[string]func() System
	sysOrder   []string
	parent     *Registry // read-only fallback for lookups; nil at the root
}

var defaultReg = &Registry{
	gpusByName: make(map[string]func() *GPUSpec),
	sysByName:  make(map[string]func() System),
}

// DefaultRegistry returns the process-wide registry the package-level
// functions operate on.
func DefaultRegistry() *Registry { return defaultReg }

// NewRegistry returns an empty registry whose lookups fall back to the
// default registry. Registrations go to the new registry only.
func NewRegistry() *Registry {
	return &Registry{
		gpusByName: make(map[string]func() *GPUSpec),
		sysByName:  make(map[string]func() System),
		parent:     defaultReg,
	}
}

func regKey(name string) string {
	return strings.ToLower(strings.TrimSpace(name))
}

// Register adds a GPU builder to the registry under the spec's name,
// case-insensitively. It panics on an invalid spec or a duplicate name —
// registration happens in init functions, where a collision is a
// programming error that must fail loudly. Runtime-loaded hardware goes
// through Load, which reports errors instead.
func Register(build func() *GPUSpec) {
	if err := defaultReg.register(build); err != nil {
		//overlaplint:allow nopanic init-time registration: a duplicate or invalid builtin must fail process start loudly; runtime-loaded hardware goes through Load, which returns errors
		panic(err)
	}
}

func (reg *Registry) register(build func() *GPUSpec) error {
	return reg.registerGPU(build, false)
}

// registerGPU adds or — with override — replaces a GPU builder. Without
// override a name collision (a local duplicate, or shadowing a parent
// entry from a child registry) is an error: hardware files replace an
// existing name only when they say so explicitly ("override": true),
// so a typo cannot silently retarget a built-in. With override the new
// builder wins: a local duplicate is replaced in place (keeping its
// position in GPUNames), and a child registry may shadow a parent
// entry — the calibration overlay path, where a fitted "H100" must
// take over from the Table I one.
func (reg *Registry) registerGPU(build func() *GPUSpec, override bool) error {
	g := build()
	if err := g.Validate(); err != nil {
		return err
	}
	key := regKey(g.Name)
	if !override && reg.parent != nil {
		// A child registry must not shadow a built-in: the same file must
		// load (or fail) identically against any registry.
		if _, shadow := reg.parent.gpuBuilder(g.Name); shadow {
			return fmt.Errorf("hw: duplicate GPU registration of %q (set \"override\": true to replace it)", g.Name)
		}
	}
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if _, dup := reg.gpusByName[key]; dup {
		if !override {
			return fmt.Errorf("hw: duplicate GPU registration of %q (set \"override\": true to replace it)", g.Name)
		}
		reg.gpusByName[key] = build // replace in place; listing order unchanged
		return nil
	}
	reg.gpusByName[key] = build
	reg.gpuOrder = append(reg.gpuOrder, g.Name)
	return nil
}

// RegisterSystem adds a system builder to the registry under its name,
// case-insensitively. Panics on an invalid system or duplicate name, like
// Register.
func RegisterSystem(build func() System) {
	if err := defaultReg.registerSystem(build); err != nil {
		//overlaplint:allow nopanic init-time registration: a duplicate or invalid builtin must fail process start loudly; runtime-loaded hardware goes through Load, which returns errors
		panic(err)
	}
}

func (reg *Registry) registerSystem(build func() System) error {
	return reg.registerSys(build, false)
}

// registerSys is registerGPU's system counterpart; see there for the
// override semantics.
func (reg *Registry) registerSys(build func() System, override bool) error {
	s := build()
	if err := s.Validate(); err != nil {
		return err
	}
	key := regKey(s.Name)
	if !override && reg.parent != nil {
		if _, shadow := reg.parent.sysBuilder(s.Name); shadow {
			return fmt.Errorf("hw: duplicate system registration of %q (set \"override\": true to replace it)", s.Name)
		}
	}
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if _, dup := reg.sysByName[key]; dup {
		if !override {
			return fmt.Errorf("hw: duplicate system registration of %q (set \"override\": true to replace it)", s.Name)
		}
		reg.sysByName[key] = build
		return nil
	}
	reg.sysByName[key] = build
	reg.sysOrder = append(reg.sysOrder, s.Name)
	return nil
}

// gpuBuilder resolves a GPU name in this registry, then its parent chain.
func (reg *Registry) gpuBuilder(name string) (func() *GPUSpec, bool) {
	key := regKey(name)
	for r := reg; r != nil; r = r.parent {
		r.mu.RLock()
		build, ok := r.gpusByName[key]
		r.mu.RUnlock()
		if ok {
			return build, true
		}
	}
	return nil, false
}

// sysBuilder resolves a system name in this registry, then its parent
// chain.
func (reg *Registry) sysBuilder(name string) (func() System, bool) {
	key := regKey(name)
	for r := reg; r != nil; r = r.parent {
		r.mu.RLock()
		build, ok := r.sysByName[key]
		r.mu.RUnlock()
		if ok {
			return build, true
		}
	}
	return nil, false
}

// ByName returns a fresh copy of the registered GPU with the given name
// (case-insensitive), or nil.
func ByName(name string) *GPUSpec { return defaultReg.GPU(name) }

// GPU returns a fresh copy of the named GPU from this registry or its
// parents, or nil.
func (reg *Registry) GPU(name string) *GPUSpec {
	build, ok := reg.gpuBuilder(name)
	if !ok {
		return nil
	}
	return build()
}

// GPUByName is ByName with an actionable error listing the registered
// names.
func GPUByName(name string) (*GPUSpec, error) { return defaultReg.GPUByName(name) }

// GPUByName returns a fresh copy of the named GPU, with an error listing
// the registered names on a miss.
func (reg *Registry) GPUByName(name string) (*GPUSpec, error) {
	if g := reg.GPU(name); g != nil {
		return g, nil
	}
	return nil, fmt.Errorf("hw: unknown GPU %q (have %s)", name, strings.Join(reg.GPUNames(), ", "))
}

// Names returns every registered GPU name: the Table I built-ins in the
// paper's order first, then user registrations in registration order.
func Names() []string { return defaultReg.GPUNames() }

// GPUNames returns the GPU names visible from this registry: parent
// entries first (the built-ins, in their registration order), then local
// registrations. A local entry overriding a parent name keeps the
// parent's position and appears once.
func (reg *Registry) GPUNames() []string {
	var out []string
	if reg.parent != nil {
		out = reg.parent.GPUNames()
	}
	seen := make(map[string]bool, len(out))
	for _, n := range out {
		seen[regKey(n)] = true
	}
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	for _, n := range reg.gpuOrder {
		if !seen[regKey(n)] {
			out = append(out, n)
		}
	}
	return out
}

// All returns a fresh copy of every registered GPU, in Names order.
func All() []*GPUSpec { return defaultReg.GPUs() }

// GPUs returns a fresh copy of every GPU visible from this registry, in
// GPUNames order.
func (reg *Registry) GPUs() []*GPUSpec {
	names := reg.GPUNames()
	out := make([]*GPUSpec, 0, len(names))
	for _, n := range names {
		out = append(out, reg.GPU(n))
	}
	return out
}

// SystemByName returns a fresh copy of the registered system with the
// given name (case-insensitive). The error lists the registered names.
func SystemByName(name string) (System, error) { return defaultReg.System(name) }

// System returns a fresh copy of the named system from this registry or
// its parents; the error lists the registered names.
func (reg *Registry) System(name string) (System, error) {
	build, ok := reg.sysBuilder(name)
	if !ok {
		return System{}, fmt.Errorf("hw: unknown system %q (have %s)",
			name, strings.Join(reg.SystemNames(), ", "))
	}
	return build(), nil
}

// SystemNames returns the registered system names, sorted.
func SystemNames() []string { return defaultReg.SystemNames() }

// SystemNames returns the system names visible from this registry,
// sorted. A local entry overriding a parent name appears once.
func (reg *Registry) SystemNames() []string {
	var out []string
	if reg.parent != nil {
		out = reg.parent.SystemNames()
	}
	seen := make(map[string]bool, len(out))
	for _, n := range out {
		seen[regKey(n)] = true
	}
	reg.mu.RLock()
	for _, n := range reg.sysOrder {
		if !seen[regKey(n)] {
			out = append(out, n)
		}
	}
	reg.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Systems returns a fresh copy of every registered system in sorted-name
// order — what the service catalog serves.
func Systems() []System { return defaultReg.Systems() }

// Systems returns a fresh copy of every system visible from this
// registry in sorted-name order.
func (reg *Registry) Systems() []System {
	names := reg.SystemNames()
	out := make([]System, 0, len(names))
	for _, n := range names {
		s, err := reg.System(n)
		if err != nil {
			// Registrations are add-only, so a listed name always
			// resolves; a miss means the registry invariant broke.
			//overlaplint:allow nopanic registry invariant: registrations are add-only, so a listed name always resolves
			panic(fmt.Sprintf("hw: registered system %q does not resolve: %v", n, err))
		}
		out = append(out, s)
	}
	return out
}

// LocalSystemNames returns only the systems registered directly in this
// registry (no parent fallback) in registration order — the entries a
// Load call just added.
func (reg *Registry) LocalSystemNames() []string {
	reg.mu.RLock()
	defer reg.mu.RUnlock()
	return append([]string(nil), reg.sysOrder...)
}
