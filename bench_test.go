// Package overlapsim_bench regenerates every table and figure of the
// paper's evaluation section as Go benchmarks: one benchmark per artifact.
// Each benchmark runs the corresponding simulation grid and reports the
// headline quantity as custom benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. Shapes to compare against the paper are
// recorded in EXPERIMENTS.md.
package overlapsim_bench

import (
	"context"
	"fmt"
	"testing"

	"overlapsim/internal/core"
	"overlapsim/internal/exec"
	"overlapsim/internal/hw"
	"overlapsim/internal/metrics"
	"overlapsim/internal/microbench"
	"overlapsim/internal/model"
	"overlapsim/internal/power"
	"overlapsim/internal/precision"
	"overlapsim/internal/workload"
)

// BenchmarkTable1GPUs walks the Table I catalog (trivially cheap; included
// so every artifact has a bench target).
func BenchmarkTable1GPUs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, g := range hw.Catalog() {
			if g.TDPW <= 0 {
				b.Fatal("bad catalog entry")
			}
		}
	}
	b.ReportMetric(float64(len(hw.Catalog())), "gpus")
}

// BenchmarkTable2Workloads validates the Table II model zoo accounting.
func BenchmarkTable2Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, m := range model.Zoo() {
			if m.TotalParams() <= 0 {
				b.Fatal("bad model")
			}
		}
	}
	b.ReportMetric(float64(len(model.Zoo())), "models")
}

// runPoints executes a grid once per benchmark iteration and reports
// slowdown aggregates.
func runPoints(b *testing.B, cfgs []core.Config) []workload.Point {
	b.Helper()
	var pts []workload.Point
	for i := 0; i < b.N; i++ {
		pts = workload.RunGrid(context.Background(), cfgs)
	}
	for _, p := range pts {
		if p.Err != nil {
			b.Fatal(p.Err)
		}
	}
	return pts
}

func reportSlowdowns(b *testing.B, pts []workload.Point) {
	b.Helper()
	var slows, ratios []float64
	for _, p := range pts {
		if p.Res == nil {
			continue
		}
		slows = append(slows, p.Res.Char.ComputeSlowdown)
		ratios = append(ratios, p.Res.Char.OverlapRatio)
	}
	s := metrics.Summarize(slows)
	r := metrics.Summarize(ratios)
	b.ReportMetric(s.Mean*100, "slowdown_mean_%")
	b.ReportMetric(s.Max*100, "slowdown_max_%")
	b.ReportMetric(r.Max*100, "overlap_max_%")
}

// BenchmarkFigure1aOverlapFSDP regenerates Fig. 1(a): overlapped
// computation versus model size, FSDP on H100x8.
func BenchmarkFigure1aOverlapFSDP(b *testing.B) {
	pts := runPoints(b, workload.Figure1a())
	reportSlowdowns(b, pts)
}

// BenchmarkFigure1bOverlapPipeline regenerates Fig. 1(b): overlapped
// computation versus batch size, pipeline parallelism on A100x4.
func BenchmarkFigure1bOverlapPipeline(b *testing.B) {
	pts := runPoints(b, workload.Figure1b())
	var amounts []float64
	for _, p := range pts {
		if p.Res != nil {
			amounts = append(amounts, p.Res.Overlapped.Mean.OverlappedComputeTime*1e3)
		}
	}
	if len(amounts) > 1 && amounts[len(amounts)-1] <= amounts[0] {
		b.Errorf("overlapped computation must grow with batch: %v", amounts)
	}
	b.ReportMetric(amounts[len(amounts)-1], "overlapped_ms_bs64")
}

// BenchmarkFigure4Slowdowns regenerates Fig. 4: compute slowdowns across
// every system, model, batch and strategy.
func BenchmarkFigure4Slowdowns(b *testing.B) {
	pts := runPoints(b, workload.MainGrid())
	reportSlowdowns(b, pts)
}

// BenchmarkFigure5EndToEnd regenerates Fig. 5: the ideal / overlapped /
// sequential end-to-end latencies, reporting how much sequential trails
// overlapped execution.
func BenchmarkFigure5EndToEnd(b *testing.B) {
	pts := runPoints(b, workload.MainGrid())
	var pen, gap []float64
	for _, p := range pts {
		if p.Res == nil {
			continue
		}
		pen = append(pen, p.Res.Char.SeqPenalty)
		gap = append(gap, p.Res.Char.IdealGap)
	}
	b.ReportMetric(metrics.Summarize(pen).Mean*100, "seq_penalty_mean_%")
	b.ReportMetric(metrics.Summarize(pen).Max*100, "seq_penalty_max_%")
	b.ReportMetric(metrics.Summarize(gap).Max*100, "ideal_gap_max_%")
}

// BenchmarkFigure6Power regenerates Fig. 6: power across GPUs and models.
func BenchmarkFigure6Power(b *testing.B) {
	pts := runPoints(b, workload.MainGrid())
	var avg, peak []float64
	for _, p := range pts {
		if p.Res == nil {
			continue
		}
		avg = append(avg, p.Res.Overlapped.AvgTDP)
		peak = append(peak, p.Res.Overlapped.PeakTDP)
	}
	b.ReportMetric(metrics.Summarize(avg).Mean, "avg_tdp_mean")
	b.ReportMetric(metrics.Summarize(peak).Max, "peak_tdp_max")
}

// BenchmarkFigure7PowerTrace regenerates Fig. 7: the 1 ms MI250 power
// trace during LLaMA-2 13B training.
func BenchmarkFigure7PowerTrace(b *testing.B) {
	var res *core.ModeResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = core.RunMode(context.Background(), workload.Figure7(), exec.Overlapped)
		if err != nil {
			b.Fatal(err)
		}
	}
	tr := res.Traces[0]
	tdp := workload.Figure7().System.GPU.TDPW
	maxW := 0.0
	for _, s := range tr {
		if s.Watts > maxW {
			maxW = s.Watts
		}
	}
	b.ReportMetric(float64(len(tr)), "samples")
	b.ReportMetric(maxW/tdp, "trace_peak_tdp")
}

// BenchmarkFigure8Microbench regenerates Fig. 8: N×N GEMM concurrent with
// a 1 GB all-reduce, swept over N on H100x4.
func BenchmarkFigure8Microbench(b *testing.B) {
	var last *microbench.Result
	for i := 0; i < b.N; i++ {
		for _, n := range microbench.SweepNs() {
			res, err := microbench.Run(microbench.Config{
				System:      hw.SystemH100x4(),
				N:           n,
				Format:      precision.FP16,
				MatrixUnits: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
	}
	b.ReportMetric(last.Slowdown*100, "slowdown_16k_%")
	b.ReportMetric(last.OverlappedPower.PeakTDP, "peak_tdp_16k")
}

// BenchmarkFigure9PowerCap regenerates Fig. 9: the power-cap sweep on
// A100x4, reporting the execution-time increase at the strictest cap.
func BenchmarkFigure9PowerCap(b *testing.B) {
	var pts []workload.Point
	for i := 0; i < b.N; i++ {
		pts = workload.RunGrid(context.Background(), workload.Figure9())
	}
	var base, strict float64
	for _, p := range pts {
		if p.Err != nil {
			b.Fatal(p.Err)
		}
		if p.Cfg.Caps.PowerW == 0 {
			base = p.Res.Overlapped.Mean.E2E
		}
		if p.Cfg.Caps.PowerW == 100 {
			strict = p.Res.Overlapped.Mean.E2E
		}
	}
	b.ReportMetric((strict/base-1)*100, "e2e_increase_100W_%")
}

// BenchmarkFigure10Precision regenerates Fig. 10: FP32 versus FP16 on
// H100x4.
func BenchmarkFigure10Precision(b *testing.B) {
	pts := runPoints(b, workload.Figure10())
	reportPairDelta(b, pts)
}

// BenchmarkFigure11TensorCores regenerates Fig. 11: FP32 general datapath
// versus TF32 Tensor Cores on H100x4.
func BenchmarkFigure11TensorCores(b *testing.B) {
	pts := runPoints(b, workload.Figure11())
	reportPairDelta(b, pts)
}

// reportPairDelta reports the mean slowdown increase of the second variant
// of each (baseline, ablated) pair.
func reportPairDelta(b *testing.B, pts []workload.Point) {
	b.Helper()
	var deltas []float64
	for i := 0; i+1 < len(pts); i += 2 {
		if pts[i].Res == nil || pts[i+1].Res == nil {
			continue
		}
		deltas = append(deltas, pts[i+1].Res.Char.ComputeSlowdown-pts[i].Res.Char.ComputeSlowdown)
	}
	b.ReportMetric(metrics.Summarize(deltas).Mean*100, "slowdown_delta_mean_pp")
}

// BenchmarkHeadlineAggregates reproduces the abstract's aggregates over
// the main grid: mean/max compute slowdown from overlap and mean/max
// sequential penalty (paper: 18.9%/40.0% and 10.2%/26.6%).
func BenchmarkHeadlineAggregates(b *testing.B) {
	pts := runPoints(b, workload.MainGrid())
	var slows, pens []float64
	for _, p := range pts {
		if p.Res == nil {
			continue
		}
		slows = append(slows, p.Res.Char.ComputeSlowdown)
		pens = append(pens, p.Res.Char.SeqPenalty)
	}
	s := metrics.Summarize(slows)
	q := metrics.Summarize(pens)
	b.ReportMetric(s.Mean*100, "slowdown_mean_%")
	b.ReportMetric(s.Max*100, "slowdown_max_%")
	b.ReportMetric(q.Mean*100, "seqpen_mean_%")
	b.ReportMetric(q.Max*100, "seqpen_max_%")
}

// BenchmarkSingleIterationFSDP measures raw simulator throughput for one
// overlapped FSDP iteration of GPT-3 13B on MI250x4 — the paper's
// worst-case configuration — as an engine microbenchmark.
func BenchmarkSingleIterationFSDP(b *testing.B) {
	cfg := core.Config{
		System:      hw.SystemMI250x4(),
		Model:       model.GPT3_13B(),
		Parallelism: "fsdp",
		Batch:       8,
		Format:      precision.FP16,
		MatrixUnits: true,
		Iterations:  1,
		Warmup:      0,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunMode(context.Background(), cfg, exec.Overlapped); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiNodeFSDP measures engine throughput beyond one node: an
// overlapped FSDP iteration of GPT-3 13B on a 4-node × 8-GPU H100
// cluster (32 ranks, hierarchical NVLink+NIC fabric). Alongside
// BenchmarkSingleIterationFSDP it tracks how simulation cost scales with
// cluster size, and its characterization metrics expose the NIC tier:
// the overlap ratio reported here should exceed the single-node runs'.
func BenchmarkMultiNodeFSDP(b *testing.B) {
	cfg := core.Config{
		System:      hw.NewMultiNode(hw.H100(), 8, 4),
		Model:       model.GPT3_13B(),
		Parallelism: "fsdp",
		Batch:       64,
		Format:      precision.FP16,
		MatrixUnits: true,
		Iterations:  1,
		Warmup:      0,
	}
	var res *core.ModeResult
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res, err = core.RunMode(context.Background(), cfg, exec.Overlapped); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cfg.System.TotalGPUs()), "gpus")
	b.ReportMetric(res.Mean.E2E*1e3, "e2e_ms")
	b.ReportMetric(res.OverlapRatio*100, "overlap_%")
}

// BenchmarkEngineScale is the engine's scale trajectory: one overlapped
// FSDP iteration of GPT-3 XL at 8 to 4096 ranks (H100 nodes of
// 8, hierarchical NVLink+NIC fabric beyond one node). ns/op and
// allocs/op at each rank count are the numbers BENCH.md tracks; a
// scheduling or allocation regression shows up here before it shows up
// in a paper grid. The per-GPU batch is fixed at 1 so the task graph —
// and therefore simulation cost — grows linearly with ranks, while the
// rank-symmetry fast path keeps the simulated portion at O(classes).
func BenchmarkEngineScale(b *testing.B) {
	for _, ranks := range []int{8, 32, 128, 512, 4096} {
		b.Run(fmt.Sprintf("ranks=%d", ranks), func(b *testing.B) {
			nodes := (ranks + 7) / 8
			cfg := core.Config{
				System:      hw.NewMultiNode(hw.H100(), 8, nodes),
				Model:       model.GPT3XL(),
				Parallelism: "fsdp",
				Batch:       ranks,
				Format:      precision.FP16,
				MatrixUnits: true,
				Iterations:  1,
				Warmup:      0,
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.RunMode(context.Background(), cfg, exec.Overlapped); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(cfg.System.TotalGPUs()), "gpus")
		})
	}
}

// BenchmarkPowerSampling measures telemetry overhead.
func BenchmarkPowerSampling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := power.NewSampler(power.AMDSMIInterval)
		if err != nil {
			b.Fatal(err)
		}
		for k := 0; k < 1000; k++ {
			s.Add(float64(k)*1e-3, float64(k+1)*1e-3, float64(100+k%300))
		}
		if s.Peak() <= 0 {
			b.Fatal("no peak")
		}
	}
}
