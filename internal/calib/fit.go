package calib

import (
	"context"
	"encoding/json"
	"fmt"
	"math"

	"overlapsim/internal/collective"
	"overlapsim/internal/core"
	"overlapsim/internal/hw"
	"overlapsim/internal/model"
	"overlapsim/internal/precision"
)

// FitOptions configure a fit.
type FitOptions struct {
	// Registry resolves the profile's GPU and system names; nil uses the
	// default registry. Fitted hardware is never registered here — the
	// fit's output is the overlay, which the caller loads where it
	// wants it.
	Registry *hw.Registry
	// Suffix names the calibrated GPU/system: stock name + Suffix
	// (default "-cal"). Ignored when Override is set.
	Suffix string
	// Override keeps the stock names and marks the overlay entries
	// "override": true, so loading it replaces the stock hardware
	// in-registry instead of registering parallel "-cal" entries.
	Override bool
}

// Fitted is the result of a fit: the calibrated hardware plus
// human-readable notes on what each fitter did.
type Fitted struct {
	// ProfileName echoes the profile's label.
	ProfileName string `json:"profile,omitempty"`
	// BaseGPU and BaseSystem are the stock registry names the fit
	// anchored to.
	BaseGPU    string `json:"base_gpu"`
	BaseSystem string `json:"base_system"`
	// GPU and System are the calibrated hardware.
	GPU    *hw.GPUSpec `json:"gpu"`
	System hw.System   `json:"system"`
	// Base is the stock system, kept for validation's side-by-side runs.
	Base hw.System `json:"-"`
	// Override mirrors FitOptions.Override into the overlay.
	Override bool `json:"override,omitempty"`
	// Notes describe each fitter's outcome, in fit order.
	Notes []string `json:"notes,omitempty"`
}

// DefaultSuffix names calibrated hardware when FitOptions leave Suffix
// empty: "H100" fits to "H100-cal".
const DefaultSuffix = "-cal"

// Fit maps a measured profile onto calibrated simulator parameters:
// GEMM roofline knees and memory headroom from the matmul sweep,
// per-tier collective efficiency and step latency from the collective
// sweep, and power-model components from the step profiles. Every
// fitter is a deterministic closed form — equal profiles (and equal
// stock hardware) fit to byte-identical overlays. The context bounds
// the step-replay simulations the power fitter runs.
func Fit(ctx context.Context, p *Profile, opts FitOptions) (*Fitted, error) {
	if err := p.Validate(); err != nil {
		recordFit(outcomeError)
		return nil, err
	}
	reg := opts.Registry
	if reg == nil {
		reg = hw.DefaultRegistry()
	}
	base := reg.GPU(p.GPU)
	if base == nil {
		recordFit(outcomeError)
		return nil, fmt.Errorf("calib: profile GPU %q is not registered", p.GPU)
	}
	baseSys, err := reg.System(p.System)
	if err != nil {
		recordFit(outcomeError)
		return nil, fmt.Errorf("calib: profile system: %w", err)
	}
	if baseSys.GPU == nil || !sameName(baseSys.GPU.Name, base.Name) {
		recordFit(outcomeError)
		return nil, fmt.Errorf("calib: profile system %q runs %q GPUs, profile measures %q",
			p.System, baseSys.GPU.Name, p.GPU)
	}

	g := cloneSpec(base)
	f := &Fitted{
		ProfileName: p.Name,
		BaseGPU:     base.Name, BaseSystem: baseSys.Name,
		Base:     baseSys,
		Override: opts.Override,
	}

	if notes, err := fitRoofline(g, p.Matmuls); err != nil {
		recordFit(outcomeError)
		return nil, err
	} else {
		f.Notes = append(f.Notes, notes...)
	}
	nic, notes, err := fitCollectives(g, baseSys, p.Collectives)
	if err != nil {
		recordFit(outcomeError)
		return nil, err
	}
	f.Notes = append(f.Notes, notes...)
	if notes, err := fitPower(ctx, g, base, baseSys, nic, p); err != nil {
		recordFit(outcomeError)
		return nil, err
	} else {
		f.Notes = append(f.Notes, notes...)
	}

	suffix := opts.Suffix
	if suffix == "" {
		suffix = DefaultSuffix
	}
	if opts.Override {
		suffix = ""
	}
	g.Name = base.Name + suffix
	sys := baseSys
	sys.GPU = g
	sys.Name = baseSys.Name + suffix
	if nic != nil {
		sys.NIC = nic
	}
	f.GPU = g
	f.System = sys.Canonical()
	if err := f.System.Validate(); err != nil {
		recordFit(outcomeError)
		return nil, fmt.Errorf("calib: fitted system is not simulable: %w", err)
	}
	recordFit(outcomeOK)
	return f, nil
}

func sameName(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// cloneSpec deep-copies a GPU spec (the TFLOPS maps are the only
// reference fields).
func cloneSpec(g *hw.GPUSpec) *hw.GPUSpec {
	out := *g
	out.VectorTFLOPS = cloneMap(g.VectorTFLOPS)
	out.MatrixTFLOPS = cloneMap(g.MatrixTFLOPS)
	return &out
}

func cloneMap(m map[precision.Format]float64) map[precision.Format]float64 {
	if m == nil {
		return nil
	}
	out := make(map[precision.Format]float64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// effPoint is one compute-bound GEMM observation: reduction size and
// achieved fraction of peak.
type effPoint struct{ k, eff float64 }

// memBoundFrac classifies a GEMM as memory-bound when its peak-bandwidth
// memory time covers at least this fraction of the measured time; such
// points calibrate MemHeadroom and are excluded from the saturation fit.
// A genuinely memory-bound point sits near the achievable-bandwidth
// fraction (~0.85), a compute-bound one orders of magnitude lower, so
// the halfway threshold separates the regimes with wide margins.
const memBoundFrac = 0.5

// fitRoofline fits the GEMM saturation curve eff(k) = MaxEff*k/(k+KHalf)
// per datapath, and MemHeadroom from memory-bound points. The curve
// linearizes exactly: 1/eff = 1/MaxEff + (KHalf/MaxEff)*(1/k), so an
// ordinary least-squares line through (1/k, 1/eff) recovers both
// parameters in closed form. MaxEff is shared across datapaths (it
// models scheduling overheads, not datapath width), so the richest
// bucket fits (MaxEff, KHalf) jointly and the others fit KHalf with
// MaxEff held.
func fitRoofline(g *hw.GPUSpec, pts []MatmulPoint) ([]string, error) {
	if len(pts) == 0 {
		return []string{"roofline: no matmul points; saturation curve kept at stock"}, nil
	}
	var matHalf, matTF32, vec []effPoint
	var headrooms []float64
	for i, m := range pts {
		format, err := precision.Parse(m.Dtype)
		if err != nil {
			return nil, fmt.Errorf("calib: matmul %d: %w", i, err)
		}
		eff := precision.EffectiveGEMMFormat(format, m.MatrixUnits)
		path := precision.PathFor(eff, m.MatrixUnits)
		peak := g.PeakFLOPS(path, eff)
		if peak <= 0 {
			return nil, fmt.Errorf("calib: matmul %d: GPU %s has no %s %s throughput", i, g.Name, path, eff)
		}
		flops := 2 * float64(m.M) * float64(m.N) * float64(m.K)
		t := flops / (m.TFLOPs * 1e12)
		bytes := (float64(m.M)*float64(m.K) + float64(m.K)*float64(m.N) + float64(m.M)*float64(m.N)) * float64(format.Bytes())
		if tMem := bytes / (g.MemBWGBs * 1e9); tMem >= memBoundFrac*t {
			// Memory-bound: the achieved HBM bandwidth fraction is the
			// measurement, not the FLOP rate.
			headrooms = append(headrooms, (bytes/t)/(g.MemBWGBs*1e9))
			continue
		}
		frac := m.TFLOPs * 1e12 / peak
		if frac >= 1 {
			return nil, fmt.Errorf("calib: matmul %d: achieved %g TFLOP/s is at or above the %s %s peak %g TFLOP/s",
				i, m.TFLOPs, path, eff, peak/1e12)
		}
		pt := effPoint{k: float64(m.K), eff: frac}
		switch {
		case path == precision.Vector:
			vec = append(vec, pt)
		case eff == precision.TF32:
			matTF32 = append(matTF32, pt)
		default:
			matHalf = append(matHalf, pt)
		}
	}

	var notes []string
	if len(headrooms) > 0 {
		h := 0.0
		for _, v := range headrooms {
			if v > h {
				h = v
			}
		}
		if h > 1 {
			notes = append(notes, fmt.Sprintf("roofline: measured HBM bandwidth %.4g of peak clamped to 1", h))
			h = 1
		}
		g.MemHeadroom = h
		notes = append(notes, fmt.Sprintf("roofline: MemHeadroom=%.4g from %d memory-bound points", h, len(headrooms)))
	}

	// The richest compute-bound bucket anchors MaxEff; prefer the
	// half-precision matrix bucket (the paper's training format) on ties.
	type bucket struct {
		name string
		pts  []effPoint
		kh   *float64
	}
	buckets := []bucket{
		{"KHalfMatrix", matHalf, &g.KHalfMatrix},
		{"KHalfMatrixTF32", matTF32, &g.KHalfMatrixTF32},
		{"KHalfVector", vec, &g.KHalfVector},
	}
	joint := -1
	for i, b := range buckets {
		if len(b.pts) >= 2 && distinctK(b.pts) && (joint < 0 || len(b.pts) > len(buckets[joint].pts)) {
			joint = i
		}
	}
	if joint >= 0 {
		b := buckets[joint]
		maxEff, kh, ok := fitSaturation(b.pts)
		if ok {
			if maxEff > 1 {
				notes = append(notes, fmt.Sprintf("roofline: fitted MaxEff %.4g clamped to 1", maxEff))
				maxEff = 1
			}
			g.MaxEff = maxEff
			*b.kh = kh
			notes = append(notes, fmt.Sprintf("roofline: MaxEff=%.4g %s=%.4g from %d points", maxEff, b.name, kh, len(b.pts)))
		} else {
			notes = append(notes, fmt.Sprintf("roofline: %s joint fit degenerate; kept at stock", b.name))
			joint = -1
		}
	}
	for i, b := range buckets {
		if i == joint || len(b.pts) == 0 {
			continue
		}
		kh, ok := fitKHalf(b.pts, g.MaxEff)
		if !ok {
			notes = append(notes, fmt.Sprintf("roofline: %s fit degenerate (points above MaxEff?); kept at stock", b.name))
			continue
		}
		*b.kh = kh
		notes = append(notes, fmt.Sprintf("roofline: %s=%.4g from %d points", b.name, kh, len(b.pts)))
	}
	if len(notes) == 0 {
		notes = append(notes, "roofline: no compute-bound points; saturation curve kept at stock")
	}
	return notes, nil
}

func distinctK(pts []effPoint) bool {
	for _, p := range pts[1:] {
		if p.k != pts[0].k {
			return true
		}
	}
	return false
}

// fitSaturation solves the linearized saturation curve for (MaxEff,
// KHalf): least squares of y = a + b*x with x=1/k, y=1/eff, giving
// MaxEff=1/a, KHalf=b/a.
func fitSaturation(pts []effPoint) (maxEff, kHalf float64, ok bool) {
	n := float64(len(pts))
	var sx, sy, sxx, sxy float64
	for _, p := range pts {
		x, y := 1/p.k, 1/p.eff
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	det := n*sxx - sx*sx
	if det <= 0 {
		return 0, 0, false
	}
	a := (sy*sxx - sx*sxy) / det
	b := (n*sxy - sx*sy) / det
	if a <= 0 || b <= 0 {
		return 0, 0, false
	}
	return 1 / a, b / a, true
}

// fitKHalf solves for KHalf with MaxEff held: least squares through the
// origin of (y - 1/E) = (K/E)*x.
func fitKHalf(pts []effPoint, maxEff float64) (float64, bool) {
	var num, den float64
	for _, p := range pts {
		x := 1 / p.k
		num += x * (1/p.eff - 1/maxEff)
		den += x * x
	}
	if den <= 0 {
		return 0, false
	}
	k := maxEff * num / den
	if k <= 0 || math.IsInf(k, 0) || math.IsNaN(k) {
		return 0, false
	}
	return k, true
}

// collPoint is one collective observation reduced to the a-b model's
// terms: wire bytes (or residual bytes for the NIC tier), latency-bound
// steps, and measured (or residual) seconds.
type collPoint struct {
	wire  float64
	steps float64
	secs  float64
}

// fitCollectives fits the intra-node collective efficiency (AlgEff) and
// step latency from points whose ring stays inside one node, then — on
// a multi-node system — the NIC tier's efficiency and latency from the
// residual of spanning points after the fitted intra-node phases are
// subtracted. The model per tier is T = wireBytes/bw + steps*latency,
// linear in (1/bw, latency): a 2x2 least-squares solve.
func fitCollectives(g *hw.GPUSpec, sys hw.System, pts []CollectivePoint) (*hw.NICSpec, []string, error) {
	if len(pts) == 0 {
		return nil, []string{"collective: no points; efficiencies kept at stock"}, nil
	}
	hop := hopFactor(sys)
	var intra, inter []CollectivePoint
	for i, c := range pts {
		if c.Ranks > sys.TotalGPUs() {
			return nil, nil, fmt.Errorf("calib: collective %d: %d ranks exceed system %s (%d GPUs)",
				i, c.Ranks, sys.Name, sys.TotalGPUs())
		}
		if c.Ranks <= sys.N {
			intra = append(intra, c)
		} else {
			inter = append(inter, c)
		}
	}

	var notes []string
	if len(intra) > 0 {
		var obs []collPoint
		for _, c := range intra {
			d := descFor(c)
			obs = append(obs, collPoint{
				wire:  d.WireBytesPerRank(),
				steps: float64(d.Steps()),
				secs:  measuredTime(d, c.BusGBs),
			})
		}
		u, lat, ok := fitAlphaBeta(obs, g.LinkLatency*hop)
		if !ok || u <= 0 {
			notes = append(notes, "collective: intra-node fit degenerate; kept at stock")
		} else {
			algEff := (1 / u) / (g.LinkBWGBs / 2 * 1e9)
			if algEff > 1 {
				notes = append(notes, fmt.Sprintf("collective: intra-node efficiency %.4g above link peak clamped to 1", algEff))
				algEff = 1
			}
			g.AlgEff = algEff
			if lat >= 0 {
				g.LinkLatency = lat / hop
			} else {
				notes = append(notes, "collective: fitted negative intra-node latency; kept at stock")
			}
			notes = append(notes, fmt.Sprintf("collective: AlgEff=%.4g LinkLatency=%.4gs from %d intra-node points",
				g.AlgEff, g.LinkLatency, len(intra)))
		}
	} else {
		notes = append(notes, "collective: no intra-node points; link efficiency kept at stock")
	}

	if len(inter) == 0 {
		return nil, notes, nil
	}
	if sys.NodeCount() < 2 {
		return nil, nil, fmt.Errorf("calib: profile has %d-rank collective points but system %s is a single %d-GPU node",
			inter[0].Ranks, sys.Name, sys.N)
	}
	stock := sys.NICSpec()
	var obs []collPoint
	for i, c := range inter {
		d := descFor(c)
		intraT, nicWire, nicSteps := nicDecompose(d, sys, g, hop)
		resid := measuredTime(d, c.BusGBs) - intraT
		if resid <= 0 {
			return nil, nil, fmt.Errorf("calib: collective %d: measured time is below the fitted intra-node phases (bus bandwidth %g GB/s too high for %d ranks)",
				i, c.BusGBs, c.Ranks)
		}
		obs = append(obs, collPoint{wire: nicWire, steps: nicSteps, secs: resid})
	}
	u, lat, ok := fitAlphaBeta(obs, stock.Latency)
	if !ok || u <= 0 {
		notes = append(notes, "collective: NIC-tier fit degenerate; kept at stock")
		return nil, notes, nil
	}
	nic := stock
	algEff := (1 / u) / (stock.BWGBs * 1e9)
	if algEff > 1 {
		notes = append(notes, fmt.Sprintf("collective: NIC efficiency %.4g above wire peak clamped to 1", algEff))
		algEff = 1
	}
	nic.AlgEff = algEff
	if lat >= 0 {
		nic.Latency = lat
	} else {
		notes = append(notes, "collective: fitted negative NIC latency; kept at stock")
	}
	notes = append(notes, fmt.Sprintf("collective: NIC AlgEff=%.4g Latency=%.4gs from %d spanning points",
		nic.AlgEff, nic.Latency, len(inter)))
	return &nic, notes, nil
}

// hopFactor is the ratio of one intra-node collective step's latency to
// the GPU's link latency: switched fabrics pay an extra half hop for
// the switch traversal (topo.Switched.HopLatency), meshes do not.
func hopFactor(sys hw.System) float64 {
	if sys.FabricKind() == hw.FabricMesh {
		return 1
	}
	return 1.5
}

func descFor(c CollectivePoint) collective.Desc {
	op, err := parseOp(c.Op)
	if err != nil {
		// Validate gates Fit, so an unparseable op cannot reach here;
		// fall back to the factor-1 op rather than panicking in a
		// library path.
		op = collective.Broadcast
	}
	return collective.Desc{Name: c.Op, Op: op, Bytes: c.Bytes, N: c.Ranks}
}

// measuredTime inverts collective.BusBW: the completion time a measured
// bus bandwidth implies. For every ring collective the bus-bandwidth
// normalization equals WireBytesPerRank/Bytes, so the time is simply
// wire bytes over bus rate.
func measuredTime(d collective.Desc, busGBs float64) float64 {
	return d.WireBytesPerRank() / (busGBs * 1e9)
}

// nicDecompose mirrors the hierarchical ring decomposition of
// collective.Time for a two-tier (node + NIC) fabric with contiguous
// rank placement: it returns the time of the intra-node phase under the
// currently fitted GPU parameters, plus the NIC phase's wire bytes and
// step count. A unit test pins this mirror against collective.Time so
// the two cannot drift apart.
func nicDecompose(d collective.Desc, sys hw.System, g *hw.GPUSpec, hop float64) (intraT, nicWire, nicSteps float64) {
	nodes := (d.N + sys.N - 1) / sys.N
	perNode := (d.N + nodes - 1) / nodes
	n := float64(d.N)
	shard := d.Bytes
	filled := 1

	bytesFor := func(k int) (float64, int) {
		kf := float64(k)
		switch d.Op {
		case collective.AllReduce:
			return 2 * shard * (kf - 1) / kf, 2 * (k - 1)
		case collective.AllGather, collective.ReduceScatter:
			return shard * (kf - 1) / kf, k - 1
		case collective.Broadcast:
			return d.Bytes, k - 1
		case collective.AllToAll:
			return d.Bytes * float64(filled*k-filled) / n, k - 1
		default:
			return 0, 0
		}
	}
	if perNode >= 2 {
		b, s := bytesFor(perNode)
		intraBW := g.LinkBWGBs / 2 * g.AlgEff * 1e9
		intraT = b/intraBW + float64(s)*g.LinkLatency*hop
		shard /= float64(perNode)
		filled = perNode
	}
	if nodes >= 2 {
		b, s := bytesFor(nodes)
		nicWire, nicSteps = b, float64(s)
	}
	return intraT, nicWire, nicSteps
}

// fitAlphaBeta solves min sum (u*wire + lat*steps - secs)^2 over (u,
// lat) — the inverse bandwidth and per-step latency of one tier. With a
// singular system (one point, or bytes and steps collinear) it holds
// lat at the fallback and solves for u alone.
func fitAlphaBeta(obs []collPoint, fallbackLat float64) (u, lat float64, ok bool) {
	var sww, sws, sss, swt, sst float64
	for _, o := range obs {
		sww += o.wire * o.wire
		sws += o.wire * o.steps
		sss += o.steps * o.steps
		swt += o.wire * o.secs
		sst += o.steps * o.secs
	}
	det := sww*sss - sws*sws
	if det > 1e-9*sww*sss {
		u = (swt*sss - sws*sst) / det
		lat = (sww*sst - sws*swt) / det
		if u > 0 {
			return u, lat, true
		}
	}
	// Singular: hold latency, fit bandwidth alone.
	if sww <= 0 {
		return 0, 0, false
	}
	var num float64
	for _, o := range obs {
		num += o.wire * (o.secs - o.steps*fallbackLat)
	}
	u = num / sww
	if u <= 0 {
		return 0, 0, false
	}
	return u, fallbackLat, true
}

// fitPower fits the dynamic power components. The measured idle power
// (when profiled) becomes IdleW directly. Each step profile is then
// replayed on the already-fitted timing parameters with the base power
// split — so the simulated component durations match the measured
// machine, and all that is left to fit is the power magnitudes. The
// single scale factor s minimizing sum (measuredDyn - s*simulatedDyn)^2
// — least squares through the origin — multiplies every dynamic
// component, and the mean residual of the measured peaks lands on
// SurgeW (the component that only shows under compute/communication
// co-activity, which is where peaks occur).
func fitPower(ctx context.Context, g, base *hw.GPUSpec, baseSys hw.System, nic *hw.NICSpec, p *Profile) ([]string, error) {
	var notes []string
	if p.Power != nil {
		if p.Power.IdleW >= g.TDPW {
			return nil, fmt.Errorf("calib: measured idle power %g W at or above TDP %g W", p.Power.IdleW, g.TDPW)
		}
		g.Power.IdleW = p.Power.IdleW
		notes = append(notes, fmt.Sprintf("power: IdleW=%.4g measured", g.Power.IdleW))
	}
	if len(p.Steps) == 0 {
		notes = append(notes, "power: no step profiles; dynamic components kept at stock")
		return notes, nil
	}

	replayG := *g
	replayG.Power = base.Power
	replaySys := baseSys
	replaySys.GPU = &replayG
	if nic != nil {
		replaySys.NIC = nic
	}

	type peakPair struct{ measDyn, simDyn float64 }
	var sMeasSim, sSimSim float64
	var peaks []peakPair
	for i, st := range p.Steps {
		cfg, err := stepConfig(replaySys, st)
		if err != nil {
			return nil, fmt.Errorf("calib: step %d: %w", i, err)
		}
		res, err := core.Run(ctx, cfg)
		if err != nil {
			return nil, fmt.Errorf("calib: step %d (%s): replaying on fitted timing: %w", i, cfg.Label(), err)
		}
		simAvg := res.Overlapped.AvgTDP * base.TDPW
		simDyn := simAvg - base.Power.IdleW
		measDyn := st.AvgPowerW - g.Power.IdleW
		if simDyn <= 0 || measDyn <= 0 {
			notes = append(notes, fmt.Sprintf("power: step %d has no dynamic draw; skipped", i))
			continue
		}
		sMeasSim += measDyn * simDyn
		sSimSim += simDyn * simDyn
		if st.PeakPowerW > 0 {
			peaks = append(peaks, peakPair{
				measDyn: st.PeakPowerW - g.Power.IdleW,
				simDyn:  res.Overlapped.PeakTDP*base.TDPW - base.Power.IdleW,
			})
		}
	}
	if sSimSim <= 0 {
		notes = append(notes, "power: no usable step profiles; dynamic components kept at stock")
		return notes, nil
	}
	s := sMeasSim / sSimSim
	g.Power.VectorW = s * base.Power.VectorW
	g.Power.MatrixW = s * base.Power.MatrixW
	g.Power.MemW = s * base.Power.MemW
	g.Power.CommW = s * base.Power.CommW
	g.Power.SurgeW = s * base.Power.SurgeW
	notes = append(notes, fmt.Sprintf("power: dynamic components scaled %.4gx from %d step profiles", s, len(p.Steps)))

	if len(peaks) > 0 {
		// What the scaled model still misses at the peaks — the
		// co-activity spike the average fit cannot see — lands on the
		// surge component.
		adj := 0.0
		for _, pk := range peaks {
			adj += pk.measDyn - s*pk.simDyn
		}
		adj /= float64(len(peaks))
		g.Power.SurgeW = math.Max(0, g.Power.SurgeW+adj)
		notes = append(notes, fmt.Sprintf("power: SurgeW=%.4g after peak residual %+.4g W over %d peaks", g.Power.SurgeW, adj, len(peaks)))
	}
	return notes, nil
}

// stepConfig maps a step profile onto a core config on the given
// system.
func stepConfig(sys hw.System, st StepPoint) (core.Config, error) {
	m, err := model.ByName(st.Model)
	if err != nil {
		return core.Config{}, err
	}
	par, err := core.ParseParallelism(st.Parallelism)
	if err != nil {
		return core.Config{}, err
	}
	format, err := precision.Parse(st.Format)
	if err != nil {
		return core.Config{}, err
	}
	return core.Config{
		System:      sys,
		Model:       m,
		Parallelism: par,
		Batch:       st.Batch,
		MicroBatch:  st.MicroBatch,
		TPDegree:    st.TPDegree,
		Format:      format,
		MatrixUnits: st.MatrixUnits,
	}, nil
}

// Overlay renders the fitted hardware as an hw.Load-compatible JSON
// file, every calibration field explicit so none of hw's vendor-typical
// defaults apply. Equal fits produce byte-identical overlays:
// encoding/json sorts the TFLOPS map keys and struct fields encode in
// declaration order.
func (f *Fitted) Overlay() ([]byte, error) {
	g := f.GPU
	sys := f.System.Canonical()
	gj := hw.GPUJSON{
		Name:     g.Name,
		Override: f.Override,
		Vendor:   g.Vendor.String(),
		Year:     g.Year,
		SMs:      g.SMs,
		BoostMHz: g.BoostMHz,

		MemGB:       g.MemGB,
		MemBWGBs:    g.MemBWGBs,
		MemHeadroom: g.MemHeadroom,

		LinkBWGBs:   g.LinkBWGBs,
		LinkLatency: g.LinkLatency,
		AlgEff:      g.AlgEff,

		TDPW: g.TDPW,

		VectorTFLOPS: tflopsJSON(g.VectorTFLOPS),
		MatrixTFLOPS: tflopsJSON(g.MatrixTFLOPS),

		KHalfVector:     g.KHalfVector,
		KHalfMatrix:     g.KHalfMatrix,
		KHalfMatrixTF32: g.KHalfMatrixTF32,
		MaxEff:          g.MaxEff,

		Power: &hw.PowerJSON{
			IdleW: g.Power.IdleW, VectorW: g.Power.VectorW, MatrixW: g.Power.MatrixW,
			MemW: g.Power.MemW, CommW: g.Power.CommW, SurgeW: g.Power.SurgeW,
			FMin: g.Power.FMin, FreqExp: g.Power.FreqExp,
		},
		Contention: &hw.ContentionJSON{
			CollSMsReduce: g.Contention.CollSMsReduce, CollSMsCopy: g.Contention.CollSMsCopy,
			HBMPerWireByte: g.Contention.HBMPerWireByte, SerializeFrac: g.Contention.SerializeFrac,
		},
	}
	sj := hw.SystemJSON{
		Name:        sys.Name,
		Override:    f.Override,
		GPU:         g.Name,
		GPUsPerNode: sys.N,
		Nodes:       sys.Nodes,
		Fabric:      sys.Fabric,
	}
	if sys.NodeCount() > 1 {
		nic := sys.NICSpec()
		if nic.Latency <= 0 {
			// NICJSON treats latency_s 0 as "take the default"; a fitted
			// zero would not round-trip. The fitters clamp at stock before
			// this point, so this is a belt against future fitters.
			nic.Latency = hw.DefaultNIC().Latency
		}
		sj.NIC = &hw.NICJSON{BWGBs: nic.BWGBs, Latency: nic.Latency, AlgEff: nic.AlgEff}
	}
	file := hw.File{GPUs: []hw.GPUJSON{gj}, Systems: []hw.SystemJSON{sj}}
	out, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("calib: encoding overlay: %w", err)
	}
	return append(out, '\n'), nil
}

func tflopsJSON(m map[precision.Format]float64) map[string]float64 {
	if m == nil {
		return nil
	}
	out := make(map[string]float64, len(m))
	for f, v := range m {
		out[lowerFormat(f)] = v
	}
	return out
}

func lowerFormat(f precision.Format) string {
	switch f {
	case precision.FP32:
		return "fp32"
	case precision.TF32:
		return "tf32"
	case precision.FP16:
		return "fp16"
	case precision.BF16:
		return "bf16"
	default:
		return fmt.Sprintf("format%d", int(f))
	}
}
