package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"overlapsim/internal/core"
	"overlapsim/internal/store"
	"overlapsim/internal/sweep"
)

// distSpec is a small sweep used across the distributed-tier tests.
const distSpec = `{
	"name": "dist-test",
	"gpus": ["H100"],
	"models": ["GPT-3 XL"],
	"parallelisms": ["fsdp", "pp"],
	"batches": [8, 16]
}`

func postSweep(t *testing.T, ts *httptest.Server, spec string) submitBody {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	return decode[submitBody](t, resp, http.StatusAccepted)
}

// canonicalResult returns the canonical JSON encoding of a finished
// sweep job's result — the bytes that must be identical across cache
// states, replicas and restarts.
func canonicalResult(t *testing.T, srv *Server, id string) string {
	t.Helper()
	j := srv.lookup(id, kindSweep)
	if j == nil {
		t.Fatalf("job %s not found", id)
	}
	j.mu.Lock()
	res := j.res
	j.mu.Unlock()
	if res == nil {
		t.Fatalf("job %s has no result", id)
	}
	b, err := json.Marshal(res.Canonical())
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// The peer cache protocol endpoints: refuse junk fingerprints, miss
// cleanly, round-trip entries, and reject entries that do not hash to
// the fingerprint they claim.
func TestCacheProtocolEndpoints(t *testing.T) {
	_, ts := newTestServer(t)
	client := ts.Client()

	res := &core.Result{Config: core.Config{Batch: 8}}
	key, err := res.Config.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	put := func(fp string, body any) *http.Response {
		b, _ := json.Marshal(body)
		req, err := http.NewRequest(http.MethodPut, ts.URL+store.CachePathPrefix+fp, strings.NewReader(string(b)))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Invalid fingerprints are refused before touching the cache.
	resp, err := client.Get(ts.URL + store.CachePathPrefix + "NOT-HEX")
	if err != nil {
		t.Fatal(err)
	}
	decode[errorBody](t, resp, http.StatusBadRequest)

	// A miss is 404.
	resp, err = client.Get(ts.URL + store.CachePathPrefix + key)
	if err != nil {
		t.Fatal(err)
	}
	decode[errorBody](t, resp, http.StatusNotFound)

	// An entry that hashes to a different fingerprint is refused: content
	// addressing doubles as the anti-poisoning integrity check.
	other := &core.Result{Config: core.Config{Batch: 999}}
	if resp := put(key, other); resp.StatusCode != http.StatusConflict {
		t.Fatalf("mismatched PUT: status %d, want %d", resp.StatusCode, http.StatusConflict)
	} else {
		resp.Body.Close()
	}

	// A valid PUT stores; the GET round-trips it.
	if resp := put(key, res); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT: status %d, want %d", resp.StatusCode, http.StatusNoContent)
	} else {
		resp.Body.Close()
	}
	resp, err = client.Get(ts.URL + store.CachePathPrefix + key)
	if err != nil {
		t.Fatal(err)
	}
	got := decode[core.Result](t, resp, http.StatusOK)
	if got.Config.Batch != 8 {
		t.Errorf("round-tripped batch %d, want 8", got.Config.Batch)
	}
}

// Two replicas meshed through store.HTTPCache + store.Tiered share
// results: a sweep replica A already ran is served on replica B entirely
// from cache, with zero fresh simulations.
func TestPeeredReplicasShareResults(t *testing.T) {
	memA := sweep.NewMemCache()
	srvA := New(Options{Cache: memA, LocalCache: memA})
	tsA := httptest.NewServer(srvA)
	defer tsA.Close()
	defer srvA.Close()

	subA := postSweep(t, tsA, distSpec)
	if body := waitForJob(t, tsA, subA.ID); body.Status != statusDone {
		t.Fatalf("replica A job: %+v", body)
	}

	// Replica B: its own memory tier fronting the mesh, with A the only
	// peer — so A owns every fingerprint.
	peer, err := store.NewHTTPCache([]string{tsA.URL}, tsA.Client())
	if err != nil {
		t.Fatal(err)
	}
	memB := sweep.NewMemCache()
	srvB := New(Options{Cache: store.NewTiered(memB, peer), LocalCache: memB})
	tsB := httptest.NewServer(srvB)
	defer tsB.Close()
	defer srvB.Close()

	subB := postSweep(t, tsB, distSpec)
	bodyB := waitForJob(t, tsB, subB.ID)
	if bodyB.Status != statusDone {
		t.Fatalf("replica B job: %+v", bodyB)
	}
	if bodyB.CacheHits != subB.Points || bodyB.CacheMisses != 0 {
		t.Errorf("replica B simulated fresh points: %d hits / %d misses over %d points",
			bodyB.CacheHits, bodyB.CacheMisses, subB.Points)
	}
	for _, p := range bodyB.Points {
		if !p.CacheHit {
			t.Errorf("point %d on replica B was not a cache hit", p.Index)
		}
	}
	// The peer fetches must have been promoted into B's own tier.
	if memB.Len() == 0 {
		t.Error("no entries promoted into replica B's memory tier")
	}
	// And the shared results are byte-identical across the mesh.
	if a, b := canonicalResult(t, srvA, subA.ID), canonicalResult(t, srvB, subB.ID); a != b {
		t.Error("canonical results differ between replicas")
	}
}

// N concurrent identical submissions simulate each grid point exactly
// once: the first caller per point leads, the rest either coalesce onto
// the in-flight simulation or hit the cache it filled.
func TestConcurrentIdenticalSubmissionsCoalesce(t *testing.T) {
	_, ts := newTestServer(t)
	const n = 4
	spec := `{"gpus": ["H100"], "models": ["GPT-3 XL"], "batches": [8]}`

	var wg sync.WaitGroup
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(spec))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var sub submitBody
			if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
				t.Error(err)
				return
			}
			ids[i] = sub.ID
		}(i)
	}
	wg.Wait()

	fresh := 0
	for _, id := range ids {
		if id == "" {
			t.Fatal("a submission failed")
		}
		body := waitForJob(t, ts, id)
		if body.Status != statusDone || body.Completed != 1 {
			t.Fatalf("job %s: %+v", id, body)
		}
		if body.CacheHits == 0 && body.Coalesced == 0 {
			fresh++
		}
	}
	if fresh != 1 {
		t.Errorf("%d of %d identical concurrent sweeps simulated fresh, want exactly 1", fresh, n)
	}
}

// stateDirServer builds a server wired the way cmd/overlapd wires a
// -state-dir: a durable cache tier and a job journal under one
// directory.
func stateDirServer(t *testing.T, dir string) (*Server, *httptest.Server, func()) {
	t.Helper()
	dc, err := sweep.NewDirCache(filepath.Join(dir, "cache"))
	if err != nil {
		t.Fatal(err)
	}
	jn, err := store.OpenJournal(filepath.Join(dir, "jobs.journal"))
	if err != nil {
		t.Fatal(err)
	}
	local := store.NewTiered(sweep.NewMemCache(), dc)
	srv := New(Options{Cache: local, LocalCache: local, Journal: jn, Workers: 1})
	ts := httptest.NewServer(srv)
	return srv, ts, func() {
		ts.Close()
		srv.Close()
		jn.Close()
	}
}

// A finished job survives a restart: the journal replays its submission
// and terminal result, and the restarted server serves it byte-identical
// without resimulating anything.
func TestFinishedJobSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	srv1, ts1, stop1 := stateDirServer(t, dir)
	sub := postSweep(t, ts1, distSpec)
	if body := waitForJob(t, ts1, sub.ID); body.Status != statusDone {
		t.Fatalf("job: %+v", body)
	}
	want := canonicalResult(t, srv1, sub.ID)
	stop1()

	srv2, ts2, stop2 := stateDirServer(t, dir)
	defer stop2()
	body := waitForJob(t, ts2, sub.ID)
	if body.Status != statusDone {
		t.Fatalf("recovered job: %+v", body)
	}
	if len(body.Points) != sub.Points || body.Aggregate == "" {
		t.Errorf("recovered job lost its results: %d points, aggregate %q", len(body.Points), body.Aggregate)
	}
	if got := canonicalResult(t, srv2, sub.ID); got != want {
		t.Error("recovered result differs from the original")
	}
}

// An interrupted job resumes on restart: the journal holds its submission
// with no terminal record, so the restarted server re-runs the spec —
// with every point that reached the durable cache before the crash
// served as a hit — and converges on a result byte-identical to an
// uninterrupted run.
func TestInterruptedJobResumesByteIdentical(t *testing.T) {
	// Reference: the same spec run uninterrupted on a fresh server.
	refSrv, refTS := newTestServer(t)
	refSub := postSweep(t, refTS, distSpec)
	if body := waitForJob(t, refTS, refSub.ID); body.Status != statusDone {
		t.Fatalf("reference job: %+v", body)
	}
	want := canonicalResult(t, refSrv, refSub.ID)

	// Simulate the crash aftermath directly: a journal holding a
	// submission with no finish, and a cache warmed with a strict subset
	// of the grid (the points that completed before the kill).
	dir := t.TempDir()
	dc, err := sweep.NewDirCache(filepath.Join(dir, "cache"))
	if err != nil {
		t.Fatal(err)
	}
	partial := `{"gpus": ["H100"], "models": ["GPT-3 XL"], "parallelisms": ["fsdp"], "batches": [8, 16]}`
	spec, err := sweep.ParseSpec(strings.NewReader(partial))
	if err != nil {
		t.Fatal(err)
	}
	pre, err := (&sweep.Runner{Cache: dc}).RunSpec(t.Context(), spec)
	if err != nil {
		t.Fatal(err)
	}
	warmed := len(pre.Points)

	jn, err := store.OpenJournal(filepath.Join(dir, "jobs.journal"))
	if err != nil {
		t.Fatal(err)
	}
	err = jn.Append(store.Record{
		Op: store.OpSubmit, Kind: string(kindSweep), ID: "sweep-000007",
		Name: "dist-test", Time: time.Now(), Total: 4, Spec: json.RawMessage(distSpec),
	})
	jn.Close()
	if err != nil {
		t.Fatal(err)
	}

	srv, ts, stop := stateDirServer(t, dir)
	defer stop()
	body := waitForJob(t, ts, "sweep-000007")
	if body.Status != statusDone {
		t.Fatalf("resumed job: %+v", body)
	}
	// Only the uncached remainder simulated.
	if body.CacheHits != warmed {
		t.Errorf("resumed job hit %d cached points, want %d", body.CacheHits, warmed)
	}
	if got := canonicalResult(t, srv, "sweep-000007"); got != want {
		t.Error("resumed result differs from the uninterrupted run")
	}

	// The resumed job's id stays reserved: the next submission must mint
	// a higher id, never reuse a journaled one.
	sub := postSweep(t, ts, distSpec)
	if sub.ID <= "sweep-000007" {
		t.Errorf("fresh id %s not after the recovered id", sub.ID)
	}
}

// Killing the server mid-sweep (shutdown, not user cancellation) leaves
// the job unterminated in the journal; the restarted server resumes and
// completes it with the same canonical bytes as an uninterrupted run.
func TestShutdownMidSweepResumesOnRestart(t *testing.T) {
	refSrv, refTS := newTestServer(t)
	refSub := postSweep(t, refTS, distSpec)
	if body := waitForJob(t, refTS, refSub.ID); body.Status != statusDone {
		t.Fatalf("reference job: %+v", body)
	}
	want := canonicalResult(t, refSrv, refSub.ID)

	dir := t.TempDir()
	_, ts1, stop1 := stateDirServer(t, dir)
	sub := postSweep(t, ts1, distSpec)
	stop1() // kill mid-sweep: cancels the job without a terminal record

	srv2, ts2, stop2 := stateDirServer(t, dir)
	defer stop2()
	body := waitForJob(t, ts2, sub.ID)
	if body.Status != statusDone {
		t.Fatalf("job after restart: %+v", body)
	}
	if got := canonicalResult(t, srv2, sub.ID); got != want {
		t.Error("post-restart result differs from the uninterrupted run")
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	name string
	body jobBody
}

func readSSE(t *testing.T, url string) []sseEvent {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events: content-type %q", ct)
	}
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur = sseEvent{name: strings.TrimPrefix(line, "event: ")}
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &cur.body); err != nil {
				t.Fatalf("bad SSE data: %v", err)
			}
		case line == "":
			if cur.name != "" {
				events = append(events, cur)
			}
			cur = sseEvent{}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

// The SSE stream serves progress snapshots and always terminates with a
// "done" event carrying the terminal job state; a stream opened on an
// already-finished job gets the done event immediately.
func TestEventsStream(t *testing.T) {
	_, ts := newTestServer(t)
	sub := postSweep(t, ts, distSpec)

	events := readSSE(t, fmt.Sprintf("%s/v1/sweeps/%s/events", ts.URL, sub.ID))
	if len(events) == 0 {
		t.Fatal("empty event stream")
	}
	for i, ev := range events {
		switch ev.name {
		case "progress":
			if i == len(events)-1 {
				t.Error("stream ended on a progress event")
			}
		case "done":
			if i != len(events)-1 {
				t.Errorf("done event at position %d of %d", i, len(events))
			}
		default:
			t.Errorf("unexpected event %q", ev.name)
		}
	}
	last := events[len(events)-1]
	if last.name != "done" || last.body.Status != statusDone || last.body.Completed != sub.Points {
		t.Errorf("terminal event %q %+v", last.name, last.body)
	}

	// Reconnecting to the finished job yields the done snapshot at once.
	again := readSSE(t, fmt.Sprintf("%s/v1/sweeps/%s/events", ts.URL, sub.ID))
	if len(again) != 1 || again[0].name != "done" {
		t.Errorf("finished-job stream: %d events, first %q", len(again), again[0].name)
	}

	resp, err := http.Get(ts.URL + "/v1/sweeps/sweep-999999/events")
	if err != nil {
		t.Fatal(err)
	}
	decode[errorBody](t, resp, http.StatusNotFound)
}

// Coalesced counts surface everywhere the job does: status body, the
// stats endpoint's process-wide total, and the points themselves.
func TestStatsSurfacesCoalescing(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	body := decode[statsBody](t, resp, http.StatusOK)
	if body.CoalescedTotal != store.CoalescedTotal() {
		t.Errorf("stats coalesced_total %d, store reports %d", body.CoalescedTotal, store.CoalescedTotal())
	}
}
