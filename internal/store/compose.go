package store

import (
	"strings"

	"overlapsim/internal/sweep"
)

// Compose builds the standard lookup path the CLIs and overlapd share:
// a memory tier, then the cache directory (when non-empty), then the
// peer mesh (when peers, a comma-separated list of overlapd base URLs,
// is non-empty). Reads promote toward memory; writes publish through
// every tier, so a CLI run warms the mesh for everyone else.
func Compose(cacheDir, peers string) (*Tiered, error) {
	tiers := []sweep.Cache{sweep.NewMemCache()}
	if cacheDir != "" {
		dc, err := sweep.NewDirCache(cacheDir)
		if err != nil {
			return nil, err
		}
		tiers = append(tiers, dc)
	}
	if peers != "" {
		hc, err := NewHTTPCache(strings.Split(peers, ","), nil)
		if err != nil {
			return nil, err
		}
		tiers = append(tiers, hc)
	}
	return NewTiered(tiers...), nil
}
