package overlapsim_bench

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
	"testing"

	"overlapsim/internal/core"
	"overlapsim/internal/exec"
	"overlapsim/internal/hw"
	"overlapsim/internal/model"
	"overlapsim/internal/precision"
)

// symTestConfig is a small multi-node shape every strategy can build:
// 2 nodes × 4 GPUs, GPT-3 XL, one measured iteration.
func symTestConfig(parallelism core.Parallelism) core.Config {
	return core.Config{
		System:      hw.NewMultiNode(hw.H100(), 4, 2),
		Model:       model.GPT3XL(),
		Parallelism: parallelism,
		Batch:       8,
		Format:      precision.FP16,
		MatrixUnits: true,
		Iterations:  1,
		Warmup:      0,
	}
}

// planDigest hashes every task's (name, start, end) of a finished plan.
func planDigest(t *testing.T, plan *exec.Plan) string {
	t.Helper()
	h := sha256.New()
	var buf [8]byte
	for _, task := range plan.Engine.Tasks() {
		h.Write([]byte(task.Name()))
		h.Write([]byte{0})
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(task.Start()))
		h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(task.End()))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestStrategySymmetryClasses pins the collapse behavior per strategy:
// the data-parallel strategies expose rank symmetry the runner actually
// exploits, while pipeline stages (different layers per device) are
// declared asymmetric and never probed.
func TestStrategySymmetryClasses(t *testing.T) {
	cases := []struct {
		parallelism core.Parallelism
		wantGhosts  bool
	}{
		{"ddp", true},
		{"fsdp", true},
		{"tp", true},
		{"pipeline", false},
	}
	for _, tc := range cases {
		t.Run(string(tc.parallelism), func(t *testing.T) {
			plan, err := core.BuildPlan(symTestConfig(tc.parallelism), exec.Overlapped)
			if err != nil {
				t.Fatal(err)
			}
			if err := plan.Run(); err != nil {
				t.Fatal(err)
			}
			if got := plan.GhostTasks() > 0; got != tc.wantGhosts {
				t.Fatalf("GhostTasks() = %d, want ghosts: %v (classes %v)",
					plan.GhostTasks(), tc.wantGhosts, plan.CollapsedClasses())
			}
			for _, c := range plan.CollapsedClasses() {
				if len(c.Members) < 2 {
					t.Fatalf("collapsed singleton class %v", c.Members)
				}
			}
		})
	}
}

// TestCollapseMatchesFullRun is the end-to-end differential: for every
// strategy, the collapsed fast path must reproduce the full simulation's
// schedule digest and measurements bit for bit.
func TestCollapseMatchesFullRun(t *testing.T) {
	for _, parallelism := range []core.Parallelism{"ddp", "fsdp", "tp", "pipeline"} {
		t.Run(string(parallelism), func(t *testing.T) {
			full, err := core.BuildPlan(symTestConfig(parallelism), exec.Overlapped)
			if err != nil {
				t.Fatal(err)
			}
			full.NoCollapse = true
			if err := full.Run(); err != nil {
				t.Fatal(err)
			}
			fast, err := core.BuildPlan(symTestConfig(parallelism), exec.Overlapped)
			if err != nil {
				t.Fatal(err)
			}
			if err := fast.Run(); err != nil {
				t.Fatal(err)
			}
			if a, b := planDigest(t, full), planDigest(t, fast); a != b {
				t.Fatalf("schedule digests diverged: full %s vs collapsed %s (ghosts=%d)",
					a, b, fast.GhostTasks())
			}
			mFull, err := full.MeasuredIterations()
			if err != nil {
				t.Fatal(err)
			}
			mFast, err := fast.MeasuredIterations()
			if err != nil {
				t.Fatal(err)
			}
			if len(mFull) != len(mFast) {
				t.Fatalf("iteration counts diverged: %d vs %d", len(mFull), len(mFast))
			}
			for i := range mFull {
				if mFull[i] != mFast[i] {
					t.Fatalf("iteration %d measurements diverged:\nfull %+v\nfast %+v", i, mFull[i], mFast[i])
				}
			}
		})
	}
}

// TestJitterDisablesCollapse: a jittered cluster is nondeterministic per
// device, so the runner must simulate every rank for real.
func TestJitterDisablesCollapse(t *testing.T) {
	cfg := symTestConfig("fsdp")
	cfg.JitterSigma = 0.02
	cfg.Seed = 7
	plan, err := core.BuildPlan(cfg, exec.Overlapped)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Run(); err != nil {
		t.Fatal(err)
	}
	if plan.GhostTasks() != 0 {
		t.Fatalf("jittered plan collapsed %d tasks", plan.GhostTasks())
	}
}

// TestParallelMatchesSerial: a forced worker pool must not change one
// bit of the schedule — the pooled scans reduce in shard order.
func TestParallelMatchesSerial(t *testing.T) {
	run := func(parallel int) string {
		plan, err := core.BuildPlan(symTestConfig("fsdp"), exec.Overlapped)
		if err != nil {
			t.Fatal(err)
		}
		plan.Parallel = parallel
		plan.NoCollapse = true // keep the running set wide enough to matter
		if err := plan.RunContext(context.Background()); err != nil {
			t.Fatal(err)
		}
		return planDigest(t, plan)
	}
	if serial, pooled := run(1), run(4); serial != pooled {
		t.Fatalf("pooled run diverged from serial: %s vs %s", pooled, serial)
	}
}
