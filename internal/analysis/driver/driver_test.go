package driver_test

import (
	"go/ast"
	"strings"
	"testing"

	"overlapsim/internal/analysis/driver"
	"overlapsim/internal/analysis/drivertest"
)

// flagBad is a minimal analyzer for exercising the driver machinery:
// it flags every function whose name starts with Bad.
func flagBad() *driver.Analyzer {
	return &driver.Analyzer{
		Name: "flagbad",
		Doc:  "test analyzer flagging functions named Bad*",
		Run: func(pass *driver.Pass) error {
			for _, file := range pass.Files {
				for _, decl := range file.Decls {
					if fd, ok := decl.(*ast.FuncDecl); ok && strings.HasPrefix(fd.Name.Name, "Bad") {
						pass.Reportf(fd.Name.Pos(), "function %s is flagged", fd.Name.Name)
					}
				}
			}
			return nil
		},
	}
}

// TestSuppression checks the allow-directive placement rules: a
// directive on the finding's line or the line above suppresses it, a
// directive further away does not.
func TestSuppression(t *testing.T) {
	drivertest.Run(t, "testdata/src/corpus", []*driver.Analyzer{flagBad()}, ".")
}

// TestMalformedDirectives checks that directives with a bad verb, a
// missing reason, or an unknown analyzer name are reported as findings
// of the reserved "overlaplint" analyzer and suppress nothing.
func TestMalformedDirectives(t *testing.T) {
	prog, err := driver.Load("testdata/src/corpus", []string{"./malformed"})
	if err != nil {
		t.Fatal(err)
	}
	findings, err := prog.Run([]*driver.Analyzer{flagBad()})
	if err != nil {
		t.Fatal(err)
	}
	var hygiene, flagged []driver.Finding
	for _, f := range findings {
		switch f.Analyzer {
		case "overlaplint":
			hygiene = append(hygiene, f)
		case "flagbad":
			flagged = append(flagged, f)
		default:
			t.Errorf("finding from unexpected analyzer: %s", f)
		}
	}
	if len(flagged) != 1 {
		t.Errorf("got %d flagbad findings, want 1 (malformed directives must not suppress)", len(flagged))
	}
	wantMsgs := []string{"unknown directive", "needs a reason", "unknown analyzer"}
	if len(hygiene) != len(wantMsgs) {
		t.Fatalf("got %d directive-hygiene findings, want %d: %v", len(hygiene), len(wantMsgs), hygiene)
	}
	for i, want := range wantMsgs {
		if !strings.Contains(hygiene[i].Message, want) {
			t.Errorf("hygiene finding %d = %q, want it to mention %q", i, hygiene[i].Message, want)
		}
	}
}
