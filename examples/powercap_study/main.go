// Command powercap_study reproduces the Fig. 9 ablation: GPT-3 2.7B
// trained with FSDP on a 4×A100 node under progressively stricter power
// caps, showing how power contention amplifies the overlap slowdown —
// up to roughly doubling iteration time at a 100 W cap.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"overlapsim/internal/core"
	"overlapsim/internal/hw"
	"overlapsim/internal/model"
	"overlapsim/internal/power"
	"overlapsim/internal/precision"
	"overlapsim/internal/report"
)

func main() {
	log.SetFlags(0)

	headers := []string{"Cap(W)", "E2E Overlapped(ms)", "vs uncapped",
		"E2E Sequential(ms)", "ComputeSlowdown", "Avg(TDP)", "Energy(kJ)"}
	var rows [][]string
	var base float64
	for _, capW := range []float64{0, 400, 300, 250, 200, 150, 100} {
		res, err := core.Run(context.Background(), core.Config{
			System:      hw.SystemA100x4(),
			Model:       model.GPT3_2_7B(),
			Parallelism: "fsdp",
			Batch:       16,
			Format:      precision.FP16,
			MatrixUnits: true,
			Caps:        power.Caps{PowerW: capW},
		})
		if err != nil {
			log.Fatal(err)
		}
		e2e := res.Overlapped.Mean.E2E
		if base == 0 {
			base = e2e
		}
		label := "none"
		if capW > 0 {
			label = fmt.Sprintf("%.0f", capW)
		}
		rows = append(rows, []string{
			label,
			report.Ms(e2e),
			fmt.Sprintf("+%.0f%%", (e2e/base-1)*100),
			report.Ms(res.Sequential.Mean.E2E),
			report.Pct(res.Char.ComputeSlowdown),
			report.TDP(res.Overlapped.AvgTDP),
			report.F(res.Overlapped.EnergyJ/1e3, 2),
		})
	}
	fmt.Println("Power capping study — FSDP GPT-3 2.7B, A100x4 (Fig. 9 setup)")
	fmt.Println()
	if err := report.Table(os.Stdout, headers, rows); err != nil {
		log.Fatal(err)
	}
}
