package report

import (
	"fmt"
	"io"
)

// SweepRow is one rendered sweep point: the characterization metrics the
// paper reports per configuration, plus the point's execution status.
type SweepRow struct {
	// Label identifies the configuration (core.Config.Label).
	Label string
	// Status is "ok", "hit" (served from cache), "OOM" or "error".
	Status string
	// Detail carries the OOM/error message for failed points.
	Detail string

	// E2EOvl and E2ESeq are the end-to-end iteration latencies in
	// seconds (Eq. 3).
	E2EOvl, E2ESeq float64
	// SeqPenalty, OverlapRatio and ComputeSlowdown are Eq. 1–2 derived
	// fractions.
	SeqPenalty, OverlapRatio, ComputeSlowdown float64
	// AvgTDP and PeakTDP are the overlapped-mode power aggregates
	// normalized to TDP (Fig. 6).
	AvgTDP, PeakTDP float64
	// EnergyJ is overlapped-mode total energy in joules.
	EnergyJ float64
	// AvgPowerW is average overlapped-mode board power in watts, summed
	// across every GPU in the system.
	AvgPowerW float64
	// EnergyPerIterJ is the energy of an average overlapped iteration in
	// joules (board power x mean iteration latency) — the advisor's
	// energy objective, reported for plain sweeps too so both share one
	// row schema.
	EnergyPerIterJ float64
	// Tasks and Epochs are the overlapped-mode engine self-stats (task
	// count and scheduling epochs) — the explanatory columns that relate
	// a point's latency to how much scheduling work the simulation did.
	Tasks  int
	Epochs int64
}

// ok reports whether the row carries metrics (computed or cached).
func (r SweepRow) ok() bool { return r.Status == "ok" || r.Status == "hit" }

// sweepHeaders are the sweep table/CSV columns. Every row fills every
// column (failed points leave the metric columns empty and put their
// diagnostic in the trailing detail column), keeping the CSV
// rectangular for strict readers.
var sweepHeaders = []string{
	"config", "status", "e2e_ovl_ms", "e2e_seq_ms", "seq_penalty_%",
	"overlap_%", "slowdown_%", "avg_tdp_%", "peak_tdp_%", "energy_j",
	"avg_power_w", "energy_per_iter_j", "tasks", "epochs", "detail",
}

// cells renders the row.
func (r SweepRow) cells() []string {
	if !r.ok() {
		return []string{r.Label, r.Status, "", "", "", "", "", "", "", "", "", "", "", "", r.Detail}
	}
	// Engine stats are zero for results cached before the stats existed;
	// render those as empty rather than a misleading 0.
	tasks, epochs := "", ""
	if r.Tasks > 0 {
		tasks = fmt.Sprintf("%d", r.Tasks)
		epochs = fmt.Sprintf("%d", r.Epochs)
	}
	return []string{
		r.Label,
		r.Status,
		fmt.Sprintf("%.2f", r.E2EOvl*1e3),
		fmt.Sprintf("%.2f", r.E2ESeq*1e3),
		fmt.Sprintf("%.1f", r.SeqPenalty*100),
		fmt.Sprintf("%.1f", r.OverlapRatio*100),
		fmt.Sprintf("%.1f", r.ComputeSlowdown*100),
		fmt.Sprintf("%.0f", r.AvgTDP*100),
		fmt.Sprintf("%.0f", r.PeakTDP*100),
		fmt.Sprintf("%.0f", r.EnergyJ),
		fmt.Sprintf("%.0f", r.AvgPowerW),
		fmt.Sprintf("%.1f", r.EnergyPerIterJ),
		tasks,
		epochs,
		"",
	}
}

func sweepCells(rows []SweepRow) [][]string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = r.cells()
	}
	return out
}

// SweepTable writes the sweep results as an aligned text table.
func SweepTable(w io.Writer, rows []SweepRow) error {
	return Table(w, sweepHeaders, sweepCells(rows))
}

// SweepCSV writes the sweep results as CSV.
func SweepCSV(w io.Writer, rows []SweepRow) error {
	return CSV(w, sweepHeaders, sweepCells(rows))
}

// SweepAggregate summarizes a sweep: outcome counts plus the mean of
// each characterization metric over the successful points — the
// "sequential is on average X% slower" style of number the paper quotes
// across its grids.
type SweepAggregate struct {
	Points, OK, Hits, OOMs, Errors            int
	MeanSeqPenalty, MeanOverlap, MeanSlowdown float64
	MeanAvgTDP, MaxPeakTDP                    float64
	// Misses counts points not served from the cache (fresh simulations,
	// including the ones that ended in OOM or error) — together with Hits
	// this is the sweep's cache provenance.
	Misses int
	// TotalTasks and TotalEpochs sum the overlapped-mode engine
	// self-stats over the rows that carry them.
	TotalTasks, TotalEpochs int64
}

// AggregateSweep computes the aggregate over the rows.
func AggregateSweep(rows []SweepRow) SweepAggregate {
	var a SweepAggregate
	a.Points = len(rows)
	n := 0.0
	for _, r := range rows {
		switch r.Status {
		case "hit":
			a.Hits++
		case "OOM":
			a.OOMs++
		case "error":
			a.Errors++
		}
		if r.Status != "hit" {
			a.Misses++
		}
		a.TotalTasks += int64(r.Tasks)
		a.TotalEpochs += r.Epochs
		if !r.ok() {
			continue
		}
		a.OK++
		n++
		a.MeanSeqPenalty += r.SeqPenalty
		a.MeanOverlap += r.OverlapRatio
		a.MeanSlowdown += r.ComputeSlowdown
		a.MeanAvgTDP += r.AvgTDP
		if r.PeakTDP > a.MaxPeakTDP {
			a.MaxPeakTDP = r.PeakTDP
		}
	}
	if n > 0 {
		a.MeanSeqPenalty /= n
		a.MeanOverlap /= n
		a.MeanSlowdown /= n
		a.MeanAvgTDP /= n
	}
	return a
}

// String renders the aggregate as a one-paragraph summary.
func (a SweepAggregate) String() string {
	s := fmt.Sprintf("%d points: %d ok (%d cached), %d OOM, %d errors",
		a.Points, a.OK, a.Hits, a.OOMs, a.Errors)
	if a.OK > 0 {
		s += fmt.Sprintf("; mean seq penalty %.1f%%, mean overlap %.1f%%, mean compute slowdown %.1f%%, mean avg power %.0f%% TDP, max peak %.0f%% TDP",
			a.MeanSeqPenalty*100, a.MeanOverlap*100, a.MeanSlowdown*100,
			a.MeanAvgTDP*100, a.MaxPeakTDP*100)
	}
	s += fmt.Sprintf("; cache: %d hits, %d misses", a.Hits, a.Misses)
	if a.TotalTasks > 0 {
		s += fmt.Sprintf("; engine: %d tasks over %d epochs", a.TotalTasks, a.TotalEpochs)
	}
	return s
}
