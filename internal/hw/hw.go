// Package hw is the hardware catalog: the four GPUs the paper evaluates
// (Table I) together with the microarchitectural and power parameters the
// simulator needs. Peak-rate and capacity numbers come from vendor
// datasheets (the same sources as the paper's Table I); contention and
// power-component coefficients are calibration parameters whose values are
// justified against the paper's measurements in EXPERIMENTS.md.
package hw

import (
	"fmt"

	"overlapsim/internal/precision"
)

// Vendor identifies a GPU vendor, which selects the collective library
// behaviour (NCCL versus RCCL) in the contention model.
type Vendor int

// Vendors.
const (
	NVIDIA Vendor = iota
	AMD
)

// String returns the vendor name.
func (v Vendor) String() string {
	switch v {
	case NVIDIA:
		return "NVIDIA"
	case AMD:
		return "AMD"
	default:
		return fmt.Sprintf("Vendor(%d)", int(v))
	}
}

// PowerParams are the component power model for one GPU. Components are
// peak draws in watts at full utilization and nominal frequency; see
// internal/power for how they compose.
type PowerParams struct {
	// IdleW is static power with no work running.
	IdleW float64
	// VectorW is the vector (CUDA-core / stream-processor) datapath peak
	// dynamic power.
	VectorW float64
	// MatrixW is the matrix-unit (Tensor Core / Matrix Core) datapath peak
	// dynamic power.
	MatrixW float64
	// MemW is HBM and memory-system peak dynamic power.
	MemW float64
	// CommW is interconnect (NVLink / Infinity Fabric PHY + copy engine)
	// peak dynamic power.
	CommW float64
	// SurgeW is the additional transient draw observed when compute and
	// communication are simultaneously active (di/dt and duplicated
	// LSU/L2 activity). This component reproduces the paper's finding that
	// overlapping execution shows up to ~25% higher peak power.
	SurgeW float64
	// FMin is the lowest DVFS frequency factor power capping can reach.
	FMin float64
	// FreqExp is the exponent of dynamic power in the frequency factor
	// (P_dyn ∝ f^FreqExp, capturing combined f·V² scaling).
	FreqExp float64
}

// ContentionParams govern how concurrent communication degrades compute on
// the same GPU. These are the simulator's representation of the effects the
// paper attributes its slowdowns to (§V-A).
type ContentionParams struct {
	// CollSMsReduce is the number of SMs/CUs a reducing collective
	// (all-reduce, reduce-scatter) occupies while running.
	CollSMsReduce int
	// CollSMsCopy is the number of SMs/CUs a pure-copy collective
	// (all-gather, broadcast, send/recv) occupies.
	CollSMsCopy int
	// HBMPerWireByte is the HBM traffic generated per byte moved on the
	// wire by a collective (read + write + reduction traffic).
	HBMPerWireByte float64
	// SerializeFrac is the fraction by which compute issue rate drops
	// while any collective kernel is resident, beyond explicit SM and
	// bandwidth stealing. It models collective-library scheduler
	// interference; RCCL's coarser kernel scheduling gives AMD parts a
	// larger value (the "architectural distinctions" of §IV-B).
	SerializeFrac float64
}

// GPUSpec describes one GPU model.
type GPUSpec struct {
	// Name is the marketing name used throughout reports ("A100", ...).
	Name string
	// Vendor selects NCCL- or RCCL-like collective behaviour.
	Vendor Vendor
	// Year is the launch year (Table I).
	Year int

	// SMs is the number of streaming multiprocessors (NVIDIA) or compute
	// units (AMD; both GCDs for MI250).
	SMs int
	// BoostMHz is the nominal boost clock; frequency factors are relative
	// to it.
	BoostMHz int

	// MemGB is HBM capacity in GiB (Table I).
	MemGB float64
	// MemBWGBs is peak HBM bandwidth in GB/s.
	MemBWGBs float64
	// MemHeadroom is the fraction of peak HBM bandwidth achievable by
	// well-tuned kernels.
	MemHeadroom float64

	// LinkBWGBs is the aggregate bidirectional interconnect bandwidth in
	// GB/s as marketed (NVLink 900/600, Infinity Fabric 300) — the numbers
	// the paper quotes in §IV-A.
	LinkBWGBs float64
	// LinkLatency is the per-hop latency of one collective step in
	// seconds.
	LinkLatency float64
	// AlgEff is the fraction of unidirectional link bandwidth a tuned
	// collective sustains (protocol + pipelining overheads).
	AlgEff float64

	// TDPW is the thermal design power in watts; power plots normalize to
	// it.
	TDPW float64

	// VectorTFLOPS is peak dense TFLOPS on the vector datapath per format.
	VectorTFLOPS map[precision.Format]float64
	// MatrixTFLOPS is peak dense TFLOPS on the matrix datapath per format.
	MatrixTFLOPS map[precision.Format]float64

	// TableFP32TFLOPS and TableFP16TFLOPS are the headline Table I numbers
	// (the FP16 entries are the vendor marketing peaks the paper prints).
	TableFP32TFLOPS float64
	TableFP16TFLOPS float64

	// KHalfVector, KHalfMatrix and KHalfMatrixTF32 parameterize the GEMM
	// saturation-efficiency curve eff(k) = MaxEff·k/(k+KHalf) on each
	// datapath: the reduction-dimension size at which the datapath reaches
	// half of its achievable efficiency. Matrix units need much larger
	// GEMMs to saturate than vector units, which is what makes low
	// precision and Tensor Cores cheap on small models and contended on
	// large ones (Figs. 10 and 11).
	KHalfVector     float64
	KHalfMatrix     float64
	KHalfMatrixTF32 float64
	// MaxEff is the asymptotic fraction of peak a perfect-size GEMM
	// reaches.
	MaxEff float64

	Power      PowerParams
	Contention ContentionParams
}

// PeakFLOPS returns the peak dense throughput in FLOP/s for the given
// datapath and format. It returns 0 if the combination is unsupported.
func (g *GPUSpec) PeakFLOPS(path precision.Datapath, f precision.Format) float64 {
	var tf float64
	switch path {
	case precision.Vector:
		tf = g.VectorTFLOPS[f]
	case precision.Matrix:
		tf = g.MatrixTFLOPS[f]
	}
	return tf * 1e12
}

// KHalf returns the saturation half-point of the GEMM efficiency curve for
// the given datapath and format.
func (g *GPUSpec) KHalf(path precision.Datapath, f precision.Format) float64 {
	if path == precision.Vector {
		return g.KHalfVector
	}
	if f == precision.TF32 || f == precision.FP32 {
		return g.KHalfMatrixTF32
	}
	return g.KHalfMatrix
}

// GEMMEff returns the achievable fraction of peak for a GEMM whose
// reduction dimension is k, on the given datapath and format.
func (g *GPUSpec) GEMMEff(k float64, path precision.Datapath, f precision.Format) float64 {
	if k <= 0 {
		return 0
	}
	kh := g.KHalf(path, f)
	return g.MaxEff * k / (k + kh)
}

// UniLinkBW returns the achievable unidirectional collective bandwidth in
// bytes/s: half the marketed bidirectional aggregate, derated by AlgEff.
func (g *GPUSpec) UniLinkBW() float64 {
	return g.LinkBWGBs / 2 * g.AlgEff * 1e9
}

// MemBW returns achievable HBM bandwidth in bytes/s.
func (g *GPUSpec) MemBW() float64 {
	return g.MemBWGBs * g.MemHeadroom * 1e9
}

// MemBytes returns HBM capacity in bytes.
func (g *GPUSpec) MemBytes() float64 {
	return g.MemGB * (1 << 30)
}

// System is a single-node multi-GPU configuration (the paper studies
// single-node systems only, §IV-A).
type System struct {
	// Name labels the system in reports ("H100x8", ...).
	Name string
	// GPU is the device model every GPU in the node instantiates.
	GPU *GPUSpec
	// N is the number of GPUs.
	N int
}

// NewSystem builds a system of n identical GPUs.
func NewSystem(g *GPUSpec, n int) System {
	if g == nil {
		panic("hw: nil GPU spec")
	}
	if n < 1 {
		panic(fmt.Sprintf("hw: invalid GPU count %d", n))
	}
	return System{Name: fmt.Sprintf("%sx%d", g.Name, n), GPU: g, N: n}
}
