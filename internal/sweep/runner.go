package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"overlapsim/internal/core"
	"overlapsim/internal/model"
	"overlapsim/internal/sim"
)

// Point is the outcome of one grid point.
type Point struct {
	// Index is the point's position in the expanded grid.
	Index int `json:"index"`
	// Config is the executed configuration.
	Config core.Config `json:"config"`
	// Key is the config's content address (canonical fingerprint).
	Key string `json:"key"`
	// Res is the characterization (nil when the point failed).
	Res *core.Result `json:"result,omitempty"`
	// CacheHit reports whether Res was served from the cache.
	CacheHit bool `json:"cache_hit"`
	// Coalesced reports that the point's cache miss was satisfied by
	// waiting on an identical in-flight computation (singleflight)
	// instead of simulating on its own.
	Coalesced bool `json:"coalesced,omitempty"`
	// OOM is non-nil when the configuration did not fit in HBM — an
	// expected outcome the paper reports as a skipped configuration.
	OOM *model.ErrOOM `json:"oom,omitempty"`
	// Err is any other failure, as fail-soft per-point collection: one
	// bad point never aborts the sweep.
	Err error `json:"-"`
	// ErrString carries Err across JSON encoding.
	ErrString string `json:"error,omitempty"`
	// Note records non-fatal oddities (e.g. a failed cache write) on an
	// otherwise successful point.
	Note string `json:"note,omitempty"`
}

// Result is the outcome of a whole sweep.
type Result struct {
	// Name echoes the spec name, when the sweep came from one.
	Name string `json:"name,omitempty"`
	// Points are the per-point outcomes in grid order.
	Points []Point `json:"points"`
	// CacheHits and CacheMisses count how points were satisfied; their
	// sum is len(Points). Only successful characterizations are cached:
	// OOM and failed points are re-evaluated on every run (the HBM
	// feasibility gate rejects an infeasible config before any
	// simulation, so this costs microseconds). A re-run of an identical
	// spec against a warm cache therefore reports CacheHits ==
	// len(Points) − OOMs − Failures.
	CacheHits   int `json:"cache_hits"`
	CacheMisses int `json:"cache_misses"`
	// Coalesced counts the misses that were satisfied by an identical
	// in-flight computation rather than a fresh simulation of their own
	// (always 0 without a Flight on the runner). Coalesced points are
	// included in CacheMisses.
	Coalesced int `json:"coalesced,omitempty"`
	// OOMs counts infeasible configurations, Failures all other errors.
	OOMs     int `json:"ooms"`
	Failures int `json:"failures"`
	// Engine aggregates the per-point engine self-stats (both modes
	// summed) over every point carrying a result, cached or fresh —
	// cached results replay the stats their simulation recorded.
	Engine sim.Stats `json:"engine_stats"`
	// Elapsed is the wall-clock duration of the sweep.
	Elapsed time.Duration `json:"elapsed_ns"`
}

// Err returns an aggregate error describing the failed points, or nil.
func (r *Result) Err() error {
	if r.Failures == 0 {
		return nil
	}
	var errs []error
	for i := range r.Points {
		if p := &r.Points[i]; p.Err != nil {
			errs = append(errs, fmt.Errorf("point %d (%s): %w", p.Index, p.Config.Label(), p.Err))
		}
	}
	return fmt.Errorf("sweep: %d/%d points failed: %w", r.Failures, len(r.Points), errors.Join(errs...))
}

// Flight coalesces concurrent computations of the same fingerprint
// onto one leader. Do runs fn at most once across concurrent callers of
// the same key and reports (result, waited, error), where waited marks
// callers served by another caller's computation. store.Flight is the
// standard implementation; the interface lives here so the runner does
// not depend on the serving tier.
type Flight interface {
	Do(ctx context.Context, key string, fn func() (*core.Result, error)) (*core.Result, bool, error)
}

// Runner executes grids on a bounded worker pool with content-addressed
// memoization.
type Runner struct {
	// Workers bounds concurrent simulations; <= 0 means runtime.NumCPU().
	Workers int
	// Cache memoizes results by config fingerprint; nil disables caching.
	Cache Cache
	// Flight, when set, coalesces concurrent identical cache misses —
	// within this runner and across every runner sharing the Flight —
	// onto one simulation.
	Flight Flight
	// OnPoint, when set, is called from worker goroutines as each point
	// completes (for progress reporting). It must be safe for concurrent
	// use.
	OnPoint func(Point)
}

// RunSpec expands the spec and runs the resulting grid.
func (r *Runner) RunSpec(ctx context.Context, spec *Spec) (*Result, error) {
	_, cfgs, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	res, err := r.Run(ctx, cfgs)
	if res != nil {
		res.Name = spec.Name
	}
	return res, err
}

// Run executes the configurations and returns per-point outcomes in
// input order. Point errors are collected, not propagated; the returned
// error is non-nil only when ctx was cancelled, in which case the
// partial Result marks every unstarted point with the context error.
func (r *Runner) Run(ctx context.Context, cfgs []core.Config) (*Result, error) {
	start := time.Now()
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	if workers < 1 {
		workers = 1
	}

	res := &Result{Points: make([]Point, len(cfgs))}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				res.Points[i] = r.runPoint(ctx, i, cfgs[i])
				if r.OnPoint != nil {
					r.OnPoint(res.Points[i])
				}
			}
		}()
	}

dispatch:
	for i := range cfgs {
		select {
		case idx <- i:
		case <-ctx.Done():
			// Mark everything not yet dispatched; in-flight points
			// abort inside the engine and record the error themselves.
			for j := i; j < len(cfgs); j++ {
				if res.Points[j].Key == "" && res.Points[j].Err == nil {
					res.Points[j] = Point{Index: j, Config: cfgs[j], Err: ctx.Err(), ErrString: ctx.Err().Error()}
				}
			}
			break dispatch
		}
	}
	close(idx)
	wg.Wait()

	for i := range res.Points {
		p := &res.Points[i]
		switch {
		case p.OOM != nil:
			res.OOMs++
			res.CacheMisses++
		case p.Err != nil:
			res.Failures++
			res.CacheMisses++
		case p.CacheHit:
			res.CacheHits++
		default:
			res.CacheMisses++
		}
		if p.Coalesced {
			res.Coalesced++
		}
		if p.Res != nil {
			res.Engine.Add(p.Res.Overlapped.Engine)
			res.Engine.Add(p.Res.Sequential.Engine)
		}
	}
	res.Elapsed = time.Since(start)
	if err := ctx.Err(); err != nil {
		return res, err
	}
	return res, nil
}

// runPoint satisfies one grid point from the cache or by simulation.
func (r *Runner) runPoint(ctx context.Context, i int, cfg core.Config) Point {
	pt := Point{Index: i, Config: cfg}
	key, err := cfg.Fingerprint()
	if err != nil {
		pt.Err = err
		pt.ErrString = err.Error()
		return pt
	}
	pt.Key = key
	noteFingerprint(key)
	if r.Cache != nil {
		cached, ok := r.Cache.Get(key)
		noteCacheLookup(cacheName(r.Cache), ok)
		if ok {
			pt.Res = cached
			pt.CacheHit = true
			return pt
		}
	}
	// simulate runs the point fresh and stores a successful result. When
	// a Flight is set it runs at most once across concurrent identical
	// points — only on the leader's goroutine, so the closure touching
	// pt.Note is safe.
	simulate := func() (*core.Result, error) {
		simStart := time.Now()
		res, err := core.Run(ctx, cfg)
		if err != nil {
			var oom *model.ErrOOM
			if errors.As(err, &oom) {
				noteSimulated(outcomeOOM, time.Since(simStart), nil)
			} else {
				noteSimulated(outcomeError, time.Since(simStart), nil)
			}
			return nil, err
		}
		noteSimulated(outcomeOK, time.Since(simStart), res)
		if r.Cache != nil {
			if err := r.Cache.Put(key, res); err != nil {
				// A cache write failure costs recomputation later, not
				// correctness now — the point stays successful.
				pt.Note = fmt.Sprintf("cache put: %v", err)
				mCachePutErrors.With(string(cacheName(r.Cache))).Inc()
			}
		}
		return res, nil
	}

	var res *core.Result
	var err2 error
	if r.Flight != nil {
		// The Flight implementation counts leaders and waiters in
		// telemetry; per-job provenance rides on the point.
		res, pt.Coalesced, err2 = r.Flight.Do(ctx, key, simulate)
	} else {
		res, err2 = simulate()
	}
	if err2 != nil {
		var oom *model.ErrOOM
		if errors.As(err2, &oom) {
			pt.OOM = oom
		} else {
			pt.Err = err2
			pt.ErrString = err2.Error()
		}
		return pt
	}
	pt.Res = res
	return pt
}

// Canonical returns a deep copy of the result with execution provenance
// — cache hits, coalescing, notes, wall-clock — normalized out, leaving
// only content that is a pure function of the executed grid. Equal
// grids therefore yield byte-identical canonical results regardless of
// cache state, scheduling interleavings, or an interrupt-and-resume in
// between (cached results replay the engine stats their simulation
// recorded, so Engine survives normalization).
func (r *Result) Canonical() *Result {
	out := *r
	out.CacheHits = 0
	out.CacheMisses = 0
	out.Coalesced = 0
	out.Elapsed = 0
	out.Points = make([]Point, len(r.Points))
	for i, p := range r.Points {
		p.CacheHit = false
		p.Coalesced = false
		p.Note = ""
		out.Points[i] = p
	}
	return &out
}
