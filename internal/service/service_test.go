package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"overlapsim/internal/hw"
	"overlapsim/internal/strategy"
)

// loadTestPod registers the custom test system exactly once — the hw
// registry is process-global, so the test must survive go test -count=N.
var loadTestPod = sync.OnceValue(func() error {
	return hw.Load(strings.NewReader(`{
	  "systems": [{"name": "svc-test-pod", "gpu": "H100", "gpus_per_node": 8, "nodes": 2,
	               "nic": {"bw_gbs": 25}}]
	}`))
})

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(Options{})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func decode[T any](t *testing.T, resp *http.Response, wantCode int) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if resp.StatusCode != wantCode {
		var e errorBody
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("status %d, want %d (error: %s)", resp.StatusCode, wantCode, e.Error)
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestCatalog(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/catalog")
	if err != nil {
		t.Fatal(err)
	}
	body := decode[catalogBody](t, resp, http.StatusOK)
	if len(body.GPUs) != len(hw.Names()) || len(body.Models) != 5 {
		t.Errorf("catalog lists %d GPUs / %d models, want %d / 5",
			len(body.GPUs), len(body.Models), len(hw.Names()))
	}
	if body.GPUs[0].Name != "A100" || body.GPUs[0].Vendor != "NVIDIA" {
		t.Errorf("first GPU %+v", body.GPUs[0])
	}
	if len(body.Formats) != 4 {
		t.Errorf("catalog lists formats %v", body.Formats)
	}
}

// The catalog must serve the platform registry: every registered system
// with its shape and fabric — including JSON-loaded customs — under the
// exact names experiments and sweep axes accept.
func TestCatalogServesSystemRegistry(t *testing.T) {
	if err := loadTestPod(); err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/catalog")
	if err != nil {
		t.Fatal(err)
	}
	body := decode[catalogBody](t, resp, http.StatusOK)
	if len(body.Systems) != len(hw.SystemNames()) {
		t.Fatalf("catalog lists %d systems, registry has %d", len(body.Systems), len(hw.SystemNames()))
	}
	served := make(map[string]catalogSystem, len(body.Systems))
	for _, cs := range body.Systems {
		served[cs.Name] = cs
	}
	h8, ok := served["H100x8"]
	if !ok || h8.GPU != "H100" || h8.GPUsPerNode != 8 || h8.Nodes != 1 || h8.TotalGPUs != 8 ||
		h8.Fabric != "switched" || h8.NICBWGBs != 0 {
		t.Errorf("H100x8 entry = %+v", h8)
	}
	mi, ok := served["MI250x4"]
	if !ok || mi.Fabric != "mesh" {
		t.Errorf("MI250x4 entry = %+v", mi)
	}
	pod, ok := served["svc-test-pod"]
	if !ok || pod.Nodes != 2 || pod.TotalGPUs != 16 || pod.NICBWGBs != 25 {
		t.Errorf("custom pod entry = %+v", pod)
	}
	// The served name must run as an experiment without further setup.
	expResp, err := http.Post(ts.URL+"/v1/experiments", "application/json",
		strings.NewReader(`{"system": "svc-test-pod", "model": "GPT-3 XL", "batch": 16, "iterations": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	exp := decode[experimentBody](t, expResp, http.StatusOK)
	if exp.Point.Err != nil || exp.Point.Res == nil {
		t.Errorf("custom-system experiment failed: %+v", exp.Point.Err)
	}
}

// The catalog must round-trip the strategy registry: every registered
// strategy — including TP, which core never names — appears with its
// metadata, and every served name resolves back through the registry.
func TestCatalogServesStrategyRegistry(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/catalog")
	if err != nil {
		t.Fatal(err)
	}
	body := decode[catalogBody](t, resp, http.StatusOK)

	names := strategy.Names()
	if len(body.Strategies) != len(names) || len(body.Parallelisms) != len(names) {
		t.Fatalf("catalog lists %d strategies / %d parallelisms, registry has %d",
			len(body.Strategies), len(body.Parallelisms), len(names))
	}
	served := make(map[string]catalogStrategy, len(body.Strategies))
	for _, cs := range body.Strategies {
		served[cs.Name] = cs
	}
	for _, name := range names {
		cs, ok := served[name]
		if !ok {
			t.Errorf("registered strategy %q missing from catalog", name)
			continue
		}
		s, err := strategy.Lookup(cs.Name)
		if err != nil {
			t.Errorf("served name %q does not resolve: %v", cs.Name, err)
			continue
		}
		info := s.Describe()
		if cs.Display != info.Display || cs.Summary != info.Summary ||
			cs.MicroBatch != info.MicroBatch || cs.GradAccum != info.GradAccum ||
			cs.TPDegree != info.TPDegree {
			t.Errorf("catalog entry %q diverges from registry info:\n got %+v\nwant %+v", name, cs, info)
		}
	}
	tp, ok := served["tp"]
	if !ok {
		t.Fatal("tensor parallelism missing from the catalog")
	}
	if !tp.TPDegree || tp.Display != "TP" {
		t.Errorf("tp entry %+v", tp)
	}
}

func TestExperimentEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	req := `{"gpu":"H100","model":"GPT-3 XL","parallelism":"fsdp","batch":8}`

	resp, err := http.Post(ts.URL+"/v1/experiments", "application/json", strings.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	body := decode[experimentBody](t, resp, http.StatusOK)
	if body.Point.CacheHit {
		t.Error("first run reported a cache hit")
	}
	if body.Point.Res == nil || body.Point.Res.Overlapped.Mean.E2E <= 0 {
		t.Fatalf("experiment returned no result: %+v", body.Point)
	}
	if body.Summary.Status != "ok" || !strings.Contains(body.Summary.Label, "H100x4 FSDP") {
		t.Errorf("summary %+v", body.Summary)
	}

	// The same experiment again is served from the shared cache.
	resp, err = http.Post(ts.URL+"/v1/experiments", "application/json", strings.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	body = decode[experimentBody](t, resp, http.StatusOK)
	if !body.Point.CacheHit {
		t.Error("repeated experiment missed the cache")
	}
}

func TestExperimentEndpointRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t)
	for name, req := range map[string]string{
		"unknown gpu":   `{"gpu":"B200","model":"GPT-3 XL"}`,
		"unknown model": `{"gpu":"H100","model":"GPT-5"}`,
		"unknown field": `{"gpu":"H100","model":"GPT-3 XL","batchsize":8}`,
		"not json":      `gpu=H100`,
	} {
		resp, err := http.Post(ts.URL+"/v1/experiments", "application/json", strings.NewReader(req))
		if err != nil {
			t.Fatal(err)
		}
		body := decode[errorBody](t, resp, http.StatusBadRequest)
		if body.Error == "" {
			t.Errorf("%s: empty error message", name)
		}
	}
}

// waitForJob polls the job endpoint until the sweep leaves the running
// state.
func waitForJob(t *testing.T, ts *httptest.Server, id string) jobBody {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/sweeps/" + id)
		if err != nil {
			t.Fatal(err)
		}
		body := decode[jobBody](t, resp, http.StatusOK)
		if body.Status != statusRunning {
			return body
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep %s still running: %+v", id, body)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestSweepJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t)
	spec := `{
		"name": "api-test",
		"gpus": ["H100", "MI250"],
		"models": ["GPT-3 XL"],
		"parallelisms": ["fsdp", "pp"],
		"formats": ["fp16"]
	}`

	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	sub := decode[submitBody](t, resp, http.StatusAccepted)
	if sub.ID == "" || sub.Points != 4 {
		t.Fatalf("submit response %+v", sub)
	}

	body := waitForJob(t, ts, sub.ID)
	if body.Status != statusDone {
		t.Fatalf("job finished as %q: %+v", body.Status, body)
	}
	if body.Completed != 4 || body.Failures != 0 || body.OOMs != 0 {
		t.Errorf("progress %+v", body)
	}
	if len(body.Points) != 4 {
		t.Fatalf("done job returned %d points", len(body.Points))
	}
	for _, p := range body.Points {
		if p.Res == nil {
			t.Errorf("point %d missing result", p.Index)
		}
	}
	if !strings.Contains(body.Aggregate, "4 points: 4 ok") {
		t.Errorf("aggregate %q", body.Aggregate)
	}

	// Resubmitting the identical spec is served fully from the cache.
	resp, err = http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	sub2 := decode[submitBody](t, resp, http.StatusAccepted)
	body = waitForJob(t, ts, sub2.ID)
	if body.Status != statusDone || body.CacheHits != 4 {
		t.Errorf("warm job hit %d/4 points (status %s)", body.CacheHits, body.Status)
	}

	// Both jobs are listed.
	resp, err = http.Get(ts.URL + "/v1/sweeps")
	if err != nil {
		t.Fatal(err)
	}
	list := decode[map[string][]jobBody](t, resp, http.StatusOK)
	if len(list["sweeps"]) != 2 {
		t.Errorf("listed %d sweeps, want 2", len(list["sweeps"]))
	}
}

func TestSweepJobValidation(t *testing.T) {
	_, ts := newTestServer(t)

	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(`{"gpus":[],"models":["GPT-3 XL"]}`))
	if err != nil {
		t.Fatal(err)
	}
	decode[errorBody](t, resp, http.StatusBadRequest)

	resp, err = http.Get(ts.URL + "/v1/sweeps/sweep-999999")
	if err != nil {
		t.Fatal(err)
	}
	decode[errorBody](t, resp, http.StatusNotFound)
}

func TestSweepJobPointLimit(t *testing.T) {
	srv := New(Options{MaxSweepPoints: 2})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json",
		strings.NewReader(`{"gpus":["H100"],"models":["GPT-3 XL"],"batches":[8,16,32]}`))
	if err != nil {
		t.Fatal(err)
	}
	decode[errorBody](t, resp, http.StatusRequestEntityTooLarge)
}

func TestSweepJobCancellation(t *testing.T) {
	srv := New(Options{Workers: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer srv.Close()

	// A deliberately heavy serial grid so cancellation lands mid-flight.
	spec := `{
		"gpus": ["MI250"],
		"models": ["GPT-3 13B", "LLaMA2 13B"],
		"parallelisms": ["fsdp", "pp"],
		"batches": [32, 64]
	}`
	resp, err := http.Post(ts.URL+"/v1/sweeps", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	sub := decode[submitBody](t, resp, http.StatusAccepted)

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sweeps/"+sub.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	decode[jobBody](t, resp, http.StatusOK)

	body := waitForJob(t, ts, sub.ID)
	if body.Status != statusCancelled {
		t.Fatalf("cancelled job finished as %q", body.Status)
	}
	if body.Completed >= sub.Points {
		t.Errorf("job ran all %d points despite cancellation", sub.Points)
	}
	// The status payload must stay internally consistent: every point
	// is accounted for as completed or failed (undispatched points are
	// failures carrying the context error), and the counters match the
	// returned points.
	if body.Completed+body.Failures < sub.Points {
		t.Errorf("counters leak points: completed=%d failures=%d of %d",
			body.Completed, body.Failures, sub.Points)
	}
	resp, err = http.Get(ts.URL + "/v1/sweeps/" + sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	full := decode[jobBody](t, resp, http.StatusOK)
	errPoints := 0
	for _, p := range full.Points {
		if p.ErrString != "" {
			errPoints++
		}
	}
	if errPoints != full.Failures {
		t.Errorf("payload shows %d error points but failures=%d", errPoints, full.Failures)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if got := decode[map[string]string](t, resp, http.StatusOK); got["status"] != "ok" {
		t.Errorf("healthz %v", got)
	}
}

// The service must survive concurrent identical submissions sharing the
// cache (the heavy-traffic path): every job completes with consistent
// counters.
func TestConcurrentExperimentRequests(t *testing.T) {
	_, ts := newTestServer(t)
	const n = 8
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			req := `{"gpu":"H100","model":"GPT-3 XL","batch":8}`
			resp, err := http.Post(ts.URL+"/v1/experiments", "application/json", strings.NewReader(req))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			var body experimentBody
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				errs <- err
				return
			}
			if body.Point.Res == nil {
				errs <- fmt.Errorf("missing result")
				return
			}
			errs <- nil
		}()
	}
	var buf bytes.Buffer
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			fmt.Fprintf(&buf, "request: %v\n", err)
		}
	}
	if buf.Len() > 0 {
		t.Error(buf.String())
	}
}
