// Command quickstart runs a single characterization experiment — GPT-3 XL
// trained with FSDP on a simulated 4×H100 node in FP16 — and prints the
// paper's headline metrics for it: compute slowdown under overlap (Eq. 1),
// the overlap ratio (Eq. 2), the three end-to-end latencies (Eq. 3–5) and
// the power summary.
package main

import (
	"context"
	"fmt"
	"log"

	"overlapsim/internal/core"
	"overlapsim/internal/hw"
	"overlapsim/internal/model"
	"overlapsim/internal/precision"
)

func main() {
	cfg := core.Config{
		System:      hw.SystemH100x4(),
		Model:       model.GPT3XL(),
		Parallelism: "fsdp",
		Batch:       8,
		Format:      precision.FP16,
		MatrixUnits: true,
	}

	res, err := core.Run(context.Background(), cfg)
	if err != nil {
		log.Fatalf("quickstart: %v", err)
	}

	fmt.Printf("experiment: %s\n\n", cfg.Label())
	fmt.Printf("compute kernel time (sequential) : %8.2f ms\n", res.Char.Sequential.ComputeKernelTime*1e3)
	fmt.Printf("compute kernel time (overlapped) : %8.2f ms\n", res.Char.Overlapped.ComputeKernelTime*1e3)
	fmt.Printf("compute slowdown (Eq.1)          : %8.2f %%\n", res.Char.ComputeSlowdown*100)
	fmt.Printf("overlap ratio (Eq.2)             : %8.2f %%\n", res.Char.OverlapRatio*100)
	fmt.Println()
	fmt.Printf("E2E overlapped                   : %8.2f ms\n", res.Overlapped.Mean.E2E*1e3)
	fmt.Printf("E2E sequential (measured)        : %8.2f ms\n", res.Sequential.Mean.E2E*1e3)
	fmt.Printf("E2E ideal (Eq.4)                 : %8.2f ms\n", res.Char.E2EIdeal*1e3)
	fmt.Printf("E2E sequential (Eq.5 derived)    : %8.2f ms\n", res.Char.E2ESeqDerived*1e3)
	fmt.Printf("sequential penalty vs overlapped : %8.2f %%\n", res.Char.SeqPenalty*100)
	fmt.Printf("overlap gap vs ideal             : %8.2f %%\n", res.Char.IdealGap*100)
	fmt.Println()
	fmt.Printf("power overlapped: avg %.2fx TDP, peak %.2fx TDP, energy %.1f kJ\n",
		res.Overlapped.AvgTDP, res.Overlapped.PeakTDP, res.Overlapped.EnergyJ/1e3)
	fmt.Printf("power sequential: avg %.2fx TDP, peak %.2fx TDP, energy %.1f kJ\n",
		res.Sequential.AvgTDP, res.Sequential.PeakTDP, res.Sequential.EnergyJ/1e3)
}
