// Package microbench implements the controlled experiment of Fig. 8: an
// N×N×N matrix multiplication executed concurrently with a 1 GB
// all-reduce, compared against the same matrix multiplication in
// isolation. It isolates the contention mechanism from training-schedule
// effects and exposes the power behaviour near TDP.
package microbench

import (
	"fmt"

	"overlapsim/internal/collective"
	"overlapsim/internal/gpu"
	"overlapsim/internal/hw"
	"overlapsim/internal/kernels"
	"overlapsim/internal/power"
	"overlapsim/internal/precision"
	"overlapsim/internal/sim"
	"overlapsim/internal/trace"
)

// Config configures one microbenchmark run.
type Config struct {
	// System is the GPU node.
	System hw.System
	// N is the square GEMM dimension.
	N int
	// Format is the GEMM numeric format.
	Format precision.Format
	// MatrixUnits selects the matrix datapath.
	MatrixUnits bool
	// CollectiveBytes is the payload of the concurrent all-reduce
	// (the paper uses 1 GB).
	CollectiveBytes float64
	// Repeats is how many GEMMs are timed (0 means 8).
	Repeats int
	// Caps are optional power/frequency limits.
	Caps power.Caps
}

// DefaultCollectiveBytes is the paper's 1 GB all-reduce payload.
const DefaultCollectiveBytes = 1 << 30

// Result reports the microbenchmark outcome.
type Result struct {
	// N echoes the GEMM dimension.
	N int
	// IsolatedGEMM and OverlappedGEMM are mean per-GEMM times in seconds.
	IsolatedGEMM, OverlappedGEMM float64
	// Slowdown is (overlapped − isolated) / isolated.
	Slowdown float64
	// IsolatedPower and OverlappedPower summarize GPU 0 power in each run.
	IsolatedPower, OverlappedPower power.Stats
}

// Run executes the isolated and overlapped microbenchmarks and reports
// the contention effect.
func Run(cfg Config) (*Result, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("microbench: invalid GEMM dimension %d", cfg.N)
	}
	if cfg.Repeats <= 0 {
		cfg.Repeats = 8
	}
	if cfg.CollectiveBytes <= 0 {
		cfg.CollectiveBytes = DefaultCollectiveBytes
	}

	iso, err := runOnce(cfg, false)
	if err != nil {
		return nil, err
	}
	ovl, err := runOnce(cfg, true)
	if err != nil {
		return nil, err
	}

	res := &Result{
		N:               cfg.N,
		IsolatedGEMM:    iso.meanGEMM,
		OverlappedGEMM:  ovl.meanGEMM,
		IsolatedPower:   iso.power,
		OverlappedPower: ovl.power,
	}
	if iso.meanGEMM > 0 {
		res.Slowdown = (ovl.meanGEMM - iso.meanGEMM) / iso.meanGEMM
	}
	return res, nil
}

type runResult struct {
	meanGEMM float64
	power    power.Stats
}

func runOnce(cfg Config, overlap bool) (*runResult, error) {
	cl, err := gpu.New(gpu.Config{System: cfg.System, Caps: cfg.Caps})
	if err != nil {
		return nil, err
	}
	eng := sim.NewEngine(cl)
	eng.AddObserver(cl)

	gf := precision.EffectiveGEMMFormat(cfg.Format, cfg.MatrixUnits)
	path := precision.PathFor(gf, cfg.MatrixUnits)
	n := float64(cfg.N)
	gemm := kernels.GEMM(fmt.Sprintf("matmul.%dx%d", cfg.N, cfg.N), n, n, n, 1, gf, path)

	computeS := eng.NewStream("compute", 0)
	var gemms []*sim.Task
	for i := 0; i < cfg.Repeats; i++ {
		gemms = append(gemms, eng.NewTask(fmt.Sprintf("gemm%d", i), sim.KindCompute,
			kernels.Work(gemm), gemm, computeS))
	}

	if overlap {
		// Enough back-to-back all-reduces to cover the GEMM stream: sized
		// from contention-free times, with margin for the slowdown.
		commS := eng.NewStream("comm", 0)
		cd := collective.Desc{Name: "allreduce.1g", Op: collective.AllReduce,
			Bytes: cfg.CollectiveBytes, N: cfg.System.N}
		if err := cd.Validate(); err != nil {
			return nil, err
		}
		gemmTime := kernels.BaseTime(gemm, cfg.System.GPU) * float64(cfg.Repeats)
		collTime := collective.Time(cd, cl.Fabric())
		reps := int(gemmTime*2/collTime) + 1
		pcd, work := collective.Prepare(cd, cl.Fabric())
		for i := 0; i < reps; i++ {
			eng.NewTask(fmt.Sprintf("allreduce%d", i), sim.KindComm, work, pcd, commS)
		}
	}

	if err := eng.Run(); err != nil {
		return nil, err
	}

	tl := trace.FromTasks(gemms)
	total := tl.KernelTime(0, sim.KindCompute)
	return &runResult{
		meanGEMM: total / float64(cfg.Repeats),
		power:    cl.PowerStats(0),
	}, nil
}

// SweepNs are the GEMM dimensions of the Fig. 8 sweep.
func SweepNs() []int { return []int{1024, 2048, 4096, 8192, 16384} }
