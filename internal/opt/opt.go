// Package opt is the overlap advisor: multi-objective configuration
// search over the sweep design space. Where internal/sweep answers "what
// does every point of this grid look like", opt answers the paper's
// trade-off question directly — "which strategy / TP degree / precision
// / power cap minimizes energy within a time budget on this system?" —
// by searching a sweep.Spec-derived space for the Pareto frontier of
// (iteration time, energy/iteration, average board power) and picking a
// recommended configuration under user constraints.
//
// The search driver is deterministic: a coarse seeded subgrid first,
// then successive-halving refinement around the incumbent frontier.
// Every candidate runs through sweep.Runner, so evaluations share the
// content-addressed result caches with plain sweeps — a repeated or
// overlapping advisor query is answered almost entirely from cache.
package opt

import (
	"fmt"

	"overlapsim/internal/sweep"
)

// Objective is one dimension of the multi-objective search, extracted
// from an evaluated sweep point. All objectives are minimized; wrap a
// metric as its negation to maximize it.
type Objective struct {
	// Name is the registry key query JSON refers to.
	Name string
	// Unit documents the extracted value ("s", "J", "W").
	Unit string
	// Extract pulls the value out of one successfully evaluated point.
	// ok=false excludes the point from the search (treated like a failed
	// evaluation).
	Extract func(p *sweep.Point) (float64, bool)
}

// objectives is the ordered registry; registration order is the catalog
// and default-objective order.
var objectives []Objective

// Register adds an objective to the registry. It panics on a duplicate
// name — registration happens at init time, where failing loudly beats
// shadowing an earlier definition.
func Register(o Objective) {
	if o.Name == "" || o.Extract == nil {
		//overlaplint:allow nopanic init-time registration: an objective missing a name or extractor must fail process start loudly
		panic("opt: objective needs a name and an extractor")
	}
	for _, have := range objectives {
		if have.Name == o.Name {
			//overlaplint:allow nopanic init-time registration: a duplicate objective must fail process start loudly
			panic(fmt.Sprintf("opt: duplicate objective %q", o.Name))
		}
	}
	objectives = append(objectives, o)
}

// Lookup resolves an objective by name.
func Lookup(name string) (Objective, error) {
	for _, o := range objectives {
		if o.Name == name {
			return o, nil
		}
	}
	return Objective{}, fmt.Errorf("opt: unknown objective %q (have %v)", name, Names())
}

// Names lists the registered objective names in registration order.
func Names() []string {
	out := make([]string, len(objectives))
	for i, o := range objectives {
		out[i] = o.Name
	}
	return out
}

// DefaultObjectives are the paper's trade-off triple: iteration time,
// energy per iteration, average board power.
func DefaultObjectives() []string {
	return []string{"time_per_iter_s", "energy_per_iter_j", "avg_power_w"}
}

// The built-in objectives extract the canonical metrics sweep.Point
// exposes — the exact quantities sweep and frontier rows render — so
// the advisor's objective values and its report columns can never
// disagree.
func init() {
	Register(Objective{
		Name: "time_per_iter_s", Unit: "s",
		Extract: (*sweep.Point).TimePerIterS,
	})
	Register(Objective{
		Name: "energy_per_iter_j", Unit: "J",
		Extract: (*sweep.Point).EnergyPerIterJ,
	})
	Register(Objective{
		Name: "avg_power_w", Unit: "W",
		Extract: (*sweep.Point).BoardPowerW,
	})
	Register(Objective{
		Name: "peak_power_w", Unit: "W",
		// Sum of per-GPU peaks: an upper bound on simultaneous board
		// peak, the quantity a provisioning cap must tolerate.
		Extract: func(p *sweep.Point) (float64, bool) {
			if p.Res == nil || len(p.Res.Overlapped.GPUPower) == 0 {
				return 0, false
			}
			var w float64
			for _, st := range p.Res.Overlapped.GPUPower {
				w += st.PeakW
			}
			return w, true
		},
	})
}

// Constraints bound which evaluated configurations are admissible.
// MaxGPUs prunes the space structurally before any evaluation; the
// budget fields filter evaluated points by their measured metrics (a
// zero field means unconstrained).
type Constraints struct {
	// MaxTimePerIterS is the iteration-latency budget in seconds.
	MaxTimePerIterS float64 `json:"max_time_per_iter_s,omitempty"`
	// MaxEnergyPerIterJ is the per-iteration energy budget in joules.
	MaxEnergyPerIterJ float64 `json:"max_energy_per_iter_j,omitempty"`
	// MaxBoardPowerW caps measured average board power in watts (the
	// provisioning-side complement of the per-GPU power_cap_w knob).
	MaxBoardPowerW float64 `json:"max_board_power_w,omitempty"`
	// MaxGPUs bounds the total GPU count of admissible systems.
	MaxGPUs int `json:"max_gpus,omitempty"`
}

// feasible reports whether an evaluated point satisfies the measured
// budgets. Points whose metrics cannot be extracted are infeasible.
func (c Constraints) feasible(p *sweep.Point) bool {
	t, ok := p.TimePerIterS()
	if !ok {
		return false
	}
	w, ok := p.BoardPowerW()
	if !ok {
		return false
	}
	if c.MaxTimePerIterS > 0 && t > c.MaxTimePerIterS {
		return false
	}
	if c.MaxEnergyPerIterJ > 0 && w*t > c.MaxEnergyPerIterJ {
		return false
	}
	if c.MaxBoardPowerW > 0 && w > c.MaxBoardPowerW {
		return false
	}
	return true
}
