// Command overlaplint is the repository's determinism and contract
// linter: a multichecker over five custom analyzers that enforce, at
// compile time, the guarantees the runtime test suite asserts after the
// fact — bit-identical schedules (simdeterminism), byte-identical
// canonical fingerprints (fingerprintstable), the error-or-valid
// library contract (nopanic), caller-driven cancellation (ctxflow) and
// bounded metric cardinality (metriclabels).
//
// Usage:
//
//	overlaplint [-run list] [-json] [packages]
//
// Packages default to ./... in the current directory. Findings print as
// file:line:col: analyzer: message; the exit status is 1 when there are
// findings, 2 when analysis could not run, and 0 on a clean pass, so
// the CI job (and any pre-commit hook) can gate on it directly.
//
// Intentional exceptions are written in the source, not in a config
// file:
//
//	//overlaplint:allow <analyzer> <reason>
//
// on the offending line or the line above. The reason is mandatory.
//
// -write-baseline prints the fingerprintstable baseline computed from
// the current json tags, for pasting into
// internal/analysis/fingerprintstable/baseline.go when a deliberate
// encoding change (with a fingerprintVersion bump) re-freezes the
// canonical encoding.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"overlapsim/internal/analysis/ctxflow"
	"overlapsim/internal/analysis/driver"
	"overlapsim/internal/analysis/fingerprintstable"
	"overlapsim/internal/analysis/metriclabels"
	"overlapsim/internal/analysis/nopanic"
	"overlapsim/internal/analysis/simdeterminism"
)

func analyzers() []*driver.Analyzer {
	return []*driver.Analyzer{
		simdeterminism.Analyzer,
		fingerprintstable.Analyzer,
		nopanic.Analyzer,
		ctxflow.Analyzer,
		metriclabels.Analyzer,
	}
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("overlaplint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		runList       = fs.String("run", "", "comma-separated analyzer names to run (default: all)")
		jsonOut       = fs.Bool("json", false, "print findings as a JSON array")
		list          = fs.Bool("list", false, "list the analyzers and exit")
		writeBaseline = fs.Bool("write-baseline", false, "print the fingerprintstable baseline from current json tags and exit")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: overlaplint [flags] [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers() {
			fmt.Fprintf(stderr, "  %-18s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stderr, "\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	all := analyzers()
	if *list {
		for _, a := range all {
			fmt.Fprintln(stdout, a.Name)
		}
		return 0
	}

	selected := all
	if *runList != "" {
		byName := map[string]*driver.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		selected = nil
		for _, name := range strings.Split(*runList, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "overlaplint: unknown analyzer %q\n", name)
				return 2
			}
			selected = append(selected, a)
		}
	}

	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "overlaplint: %v\n", err)
		return 2
	}
	prog, err := driver.Load(dir, fs.Args())
	if err != nil {
		fmt.Fprintf(stderr, "overlaplint: %v\n", err)
		return 2
	}

	if *writeBaseline {
		entries, err := fingerprintstable.EmitBaseline(prog)
		if err != nil {
			fmt.Fprintf(stderr, "overlaplint: %v\n", err)
			return 2
		}
		for _, e := range entries {
			fmt.Fprintf(stdout, "\t%q: %q,\n", e.Key, e.Tag)
		}
		return 0
	}

	findings, err := prog.Run(selected)
	if err != nil {
		fmt.Fprintf(stderr, "overlaplint: %v\n", err)
		return 2
	}
	if *jsonOut {
		type jsonFinding struct {
			Analyzer string `json:"analyzer"`
			Position string `json:"position"`
			Message  string `json:"message"`
		}
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{f.Analyzer, f.Position.String(), f.Message})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "overlaplint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "overlaplint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}
