package core

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"overlapsim/internal/strategy"
)

// fingerprintVersion is mixed into every fingerprint so that changes to
// the canonical encoding (or to the semantics behind it) invalidate old
// content-addressed cache entries instead of silently aliasing them.
// Bump it whenever Canonicalize, the executors' default resolution, or
// the simulation semantics behind a Config change.
//
// The strategy-registry redesign deliberately did NOT bump it: the three
// legacy strategies encode exactly as before (Parallelism marshals to the
// historical enum integer, new knobs are omitted when inert), so every
// pre-redesign cache entry stays addressable. The platform-registry
// redesign follows the same discipline: hw.System's multi-node fields
// (Nodes, Fabric, NIC) are omitted when inert and Canonicalize clears
// them, so single-node configs — everything expressible before — keep
// their addresses.
const fingerprintVersion = "overlapsim-config-v1"

// Canonicalize returns the config with every implicit default made
// explicit and every inert knob cleared, so that two configs that
// describe the same experiment encode (and hash) identically: the
// strategy name is resolved to its canonical registry spelling, the
// system's inert platform fields (a node count of one, a NIC tier that
// is never crossed, a fabric naming the vendor default) are cleared,
// Iterations/Warmup defaults are replaced by the values the executors
// actually use, knobs the selected strategy ignores (per its registry
// Info) are zeroed, strategy-specific defaults (pipeline microbatch, TP
// degree) are made explicit by the strategy itself, and the jitter seed
// is cleared when jitter is disabled (a seed without jitter changes
// nothing).
func (c Config) Canonicalize() Config {
	c.System = c.System.Canonical()
	if c.Iterations <= 0 {
		c.Iterations = 2
	}
	if c.Warmup == 0 {
		c.Warmup = 1
	} else if c.Warmup < 0 {
		// The executors treat any negative as "no warmup". The canonical
		// spelling must be negative too: 0 canonicalizes to the default 1,
		// so using 0 here would make canonicalization non-idempotent (a
		// re-canonicalized no-warmup config would silently take the
		// default-warmup address — the aliasing FuzzCanonicalConfig
		// guards against).
		c.Warmup = -1
	}
	if c.GradAccumSteps <= 0 {
		c.GradAccumSteps = 1
	}
	c.Parallelism = c.Parallelism.Canonical()
	s, err := strategy.Lookup(string(c.Parallelism))
	if err != nil {
		// Unregistered strategies cannot run; clear their knobs so the
		// (unrunnable) config at least hashes deterministically.
		c.MicroBatch, c.TPDegree, c.GradAccumSteps = 0, 0, 1
	} else {
		info := s.Describe()
		if !info.GradAccum {
			c.GradAccumSteps = 1
		}
		if !info.MicroBatch {
			c.MicroBatch = 0
		}
		if !info.TPDegree {
			c.TPDegree = 0
		}
		if canon, ok := s.(strategy.Canonicalizer); ok {
			p := canon.CanonicalParams(c.params(0), c.System.TotalGPUs())
			if info.MicroBatch {
				c.MicroBatch = p.MicroBatch
			}
			if info.TPDegree {
				c.TPDegree = p.TPDegree
			}
		}
	}
	if c.JitterSigma == 0 {
		c.Seed = 0
	}
	return c
}

// CanonicalJSON returns the deterministic serialization Fingerprint
// hashes: the canonicalized config marshaled as JSON. The encoding
// covers the full hardware spec (not just its name), so a config built
// against a modified GPUSpec hashes differently from the catalog entry.
func (c Config) CanonicalJSON() ([]byte, error) {
	// encoding/json sorts map keys, so the GPUSpec TFLOPS maps encode
	// deterministically.
	cc := c.Canonicalize()
	if cc.JitterSigma != 0 {
		// The platform redesign changed jittered semantics: each mode
		// now draws from its own seed-derived stream (modeSeed) instead
		// of both sharing the config seed, so a jittered config's
		// measurements differ from pre-redesign runs. Salting only the
		// jittered encoding retires those stale cache entries while the
		// deterministic default — every paper grid, example and sweep —
		// keeps its pre-redesign address.
		return json.Marshal(struct {
			Config
			JitterScheme string
		}{cc, "per-mode-v2"})
	}
	return json.Marshal(cc)
}

// Fingerprint returns the content address of the experiment: a SHA-256
// over the versioned canonical encoding, in hex. Equal configs (up to
// defaulting) share a fingerprint; any semantic field change produces a
// different one.
func (c Config) Fingerprint() (string, error) {
	b, err := c.CanonicalJSON()
	if err != nil {
		return "", fmt.Errorf("core: fingerprint %s: %w", c.Label(), err)
	}
	h := sha256.New()
	h.Write([]byte(fingerprintVersion))
	h.Write([]byte{0})
	h.Write(b)
	return hex.EncodeToString(h.Sum(nil)), nil
}
