// Package simdeterminism flags nondeterminism sources in the packages
// whose output must be bit-identical run to run: wall-clock reads,
// global math/rand state, and map iteration feeding order-sensitive
// writes. These are exactly the bug classes the golden engine digests
// and the canonical-fingerprint regression tests exist to catch — this
// analyzer catches them before a simulation ever runs.
package simdeterminism

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"overlapsim/internal/analysis/driver"
)

// DefaultPackages is the repository's deterministic core: every package
// whose outputs feed the golden digests, canonical fingerprints or the
// advisor's byte-identical frontiers.
var DefaultPackages = []string{
	"overlapsim/internal/sim",
	"overlapsim/internal/core",
	"overlapsim/internal/collective",
	"overlapsim/internal/topo",
	"overlapsim/internal/strategy",
	"overlapsim/internal/strategy/all",
	"overlapsim/internal/fsdp",
	"overlapsim/internal/ddp",
	"overlapsim/internal/tp",
	"overlapsim/internal/pipeline",
	"overlapsim/internal/trace",
	"overlapsim/internal/opt",
	"overlapsim/internal/calib",
}

// Analyzer checks the repository's deterministic packages.
var Analyzer = New(DefaultPackages)

// New returns the analyzer scoped to the given package import paths.
func New(packages []string) *driver.Analyzer {
	set := make(map[string]bool, len(packages))
	for _, p := range packages {
		set[p] = true
	}
	return &driver.Analyzer{
		Name: "simdeterminism",
		Doc: "forbid nondeterminism in the simulator's deterministic packages: " +
			"time.Now/Since/Until, global math/rand functions (seeded *rand.Rand " +
			"values are fine), and map iteration that feeds appends without a " +
			"subsequent sort or accumulates floats (map order is random; float " +
			"addition is not associative)",
		Run: func(pass *driver.Pass) error {
			if !set[pass.Pkg.Path()] {
				return nil
			}
			run(pass)
			return nil
		},
	}
}

func run(pass *driver.Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.BlockStmt:
				checkBlock(pass, n)
			}
			return true
		})
	}
}

// calleeFunc resolves a call's callee to its function object, or nil.
func calleeFunc(pass *driver.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// checkCall flags wall-clock reads and global math/rand functions.
func checkCall(pass *driver.Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			pass.Reportf(call.Pos(), "time.%s in a deterministic package: simulated timelines must not read the wall clock", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() != nil {
			return // methods on a seeded *rand.Rand are deterministic
		}
		if strings.HasPrefix(fn.Name(), "New") {
			return // constructors of seeded generators
		}
		pass.Reportf(call.Pos(), "global %s.%s in a deterministic package: draw from a seeded *rand.Rand instead", fn.Pkg().Name(), fn.Name())
	}
}

// checkBlock looks for range-over-map loops in the block whose bodies
// perform order-sensitive writes: appends to variables declared outside
// the loop with no subsequent sort over them in the same block, and
// floating-point accumulation (+= over map order is not associative).
func checkBlock(pass *driver.Pass, block *ast.BlockStmt) {
	for i, stmt := range block.List {
		rng, ok := stmt.(*ast.RangeStmt)
		if !ok {
			continue
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok {
			continue
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			continue
		}
		appended, floatAccum := mapOrderWrites(pass, rng)
		for _, obj := range floatAccum {
			pass.Reportf(rng.Pos(), "map iteration accumulates into float %q: float addition is not associative, so the result depends on map order", obj.Name())
		}
		for _, obj := range appended {
			if sortedAfter(pass, block.List[i+1:], obj) {
				continue
			}
			pass.Reportf(rng.Pos(), "map iteration appends to %q without a subsequent sort: map order is random, so the slice's order differs run to run", obj.Name())
		}
	}
}

// mapOrderWrites collects the outer-scope variables the range body
// appends to, and those it accumulates floats into.
func mapOrderWrites(pass *driver.Pass, rng *ast.RangeStmt) (appended, floatAccum []*types.Var) {
	outer := func(e ast.Expr) *types.Var {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if ok && (v.Pos() < rng.Pos() || v.Pos() > rng.End()) {
			return v
		}
		return nil
	}
	seen := map[*types.Var]bool{}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch asg.Tok {
		case token.ASSIGN, token.DEFINE:
			for i, rhs := range asg.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || i >= len(asg.Lhs) {
					continue
				}
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
					continue
				} else if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
					continue
				}
				if v := outer(asg.Lhs[i]); v != nil && !seen[v] {
					seen[v] = true
					appended = append(appended, v)
				}
			}
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			for _, lhs := range asg.Lhs {
				v := outer(lhs)
				if v == nil || seen[v] {
					continue
				}
				if b, ok := v.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
					seen[v] = true
					floatAccum = append(floatAccum, v)
				}
			}
		}
		return true
	})
	return appended, floatAccum
}

// sortedAfter reports whether any statement after the loop in the same
// block passes obj to a sort/slices function — the collect-then-sort
// idiom that makes a map-fed slice deterministic.
func sortedAfter(pass *driver.Pass, rest []ast.Stmt, obj *types.Var) bool {
	for _, stmt := range rest {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
				return true
			}
			for _, arg := range call.Args {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
