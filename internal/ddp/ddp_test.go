package ddp

import (
	"errors"
	"testing"

	"overlapsim/internal/exec"
	"overlapsim/internal/gpu"
	"overlapsim/internal/hw"
	"overlapsim/internal/metrics"
	"overlapsim/internal/model"
	"overlapsim/internal/precision"
	"overlapsim/internal/strategy"
)

func tinyModel() model.Config {
	return model.Config{Name: "tiny", Arch: model.GPT3, NominalParams: 1e8,
		Layers: 6, Heads: 4, Hidden: 256, FFN: 1024, Vocab: 2048, SeqLen: 128}
}

func cluster(t *testing.T, g *hw.GPUSpec, n int) *gpu.Cluster {
	t.Helper()
	cl, err := gpu.New(gpu.Config{System: hw.NewSystem(g, n)})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func run(t *testing.T, mode exec.Mode, bucket float64) *exec.Plan {
	t.Helper()
	cl := cluster(t, hw.H100(), 4)
	plan, err := Build(cl, strategy.Params{
		Model: tinyModel(), Batch: 8, Format: precision.FP16, MatrixUnits: true,
		Checkpoint: true, BucketBytes: bucket, Iterations: 2, Warmup: 1, Mode: mode,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Run(); err != nil {
		t.Fatal(err)
	}
	return plan
}

func measured(t *testing.T, plan *exec.Plan) []metrics.Iteration {
	t.Helper()
	its, err := plan.MeasuredIterations()
	if err != nil {
		t.Fatal(err)
	}
	return its
}

func TestOverlappedRuns(t *testing.T) {
	// 1 MiB buckets so the tiny model produces several overlapping
	// all-reduces (its whole gradient fits one default 25 MiB bucket).
	its := measured(t, run(t, exec.Overlapped, 1<<20))
	if len(its) != 2 {
		t.Fatalf("measured %d iterations", len(its))
	}
	it := its[0]
	if it.E2E <= 0 || it.CommKernelTime <= 0 {
		t.Errorf("degenerate iteration %+v", it)
	}
	if it.OverlapRatio() <= 0 {
		t.Error("bucketed all-reduce must overlap the backward pass")
	}
}

func TestSequentialNoOverlapAndSlower(t *testing.T) {
	seq := measured(t, run(t, exec.Sequential, 1<<20))[0]
	ovl := measured(t, run(t, exec.Overlapped, 1<<20))[0]
	if seq.OverlapRatio() > 0.01 {
		t.Errorf("sequential overlap %g", seq.OverlapRatio())
	}
	if seq.E2E <= ovl.E2E {
		t.Errorf("sequential %g not slower than overlapped %g", seq.E2E, ovl.E2E)
	}
}

func TestSmallerBucketsMoreCollectives(t *testing.T) {
	coarse := measured(t, run(t, exec.Overlapped, 1<<30))[0]
	fine := measured(t, run(t, exec.Overlapped, 1<<20))[0]
	// Finer buckets add per-collective latency overhead.
	if fine.CommKernelTime <= coarse.CommKernelTime {
		t.Errorf("finer buckets should not reduce comm kernel time: %g vs %g",
			fine.CommKernelTime, coarse.CommKernelTime)
	}
}

func TestMemoryGateFullReplica(t *testing.T) {
	// DDP holds a full replica, so models FSDP can train will OOM under
	// DDP on the same GPUs — the reason FSDP exists.
	cl := cluster(t, hw.H100(), 4)
	_, err := Build(cl, strategy.Params{
		Model: model.GPT3_13B(), Batch: 8, Format: precision.FP16, Checkpoint: true,
	})
	var oom *model.ErrOOM
	if !errors.As(err, &oom) {
		t.Fatalf("13B DDP on 80GB must OOM, got %v", err)
	}
}

func TestBatchDivisibility(t *testing.T) {
	cl := cluster(t, hw.H100(), 4)
	if _, err := Build(cl, strategy.Params{Model: tinyModel(), Batch: 9}); err == nil {
		t.Error("batch 9 over 4 GPUs must fail")
	}
}

func TestDDPCommLessThanFSDPPattern(t *testing.T) {
	// DDP moves ~1×P of gradients per iteration; FSDP moves ~3×P
	// (two gathers + one reduce-scatter). DDP comm kernel time should be
	// well below what an FSDP run of the same model shows. Here we just
	// sanity-check DDP's total comm against the model's gradient volume.
	its := measured(t, run(t, exec.Overlapped, 0))
	if its[0].CommKernelTime <= 0 {
		t.Fatal("no communication measured")
	}
}
