package report

import (
	"context"
	"strings"
	"testing"

	"overlapsim/internal/core"
	"overlapsim/internal/hw"
	"overlapsim/internal/model"
	"overlapsim/internal/precision"
	"overlapsim/internal/workload"
)

func TestTableAlignment(t *testing.T) {
	var b strings.Builder
	err := Table(&b, []string{"A", "Long Header"}, [][]string{
		{"x", "1"},
		{"longer-cell", "2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Errorf("separator missing: %q", lines[1])
	}
	if !strings.Contains(lines[2], "x") || !strings.Contains(lines[3], "longer-cell") {
		t.Error("rows missing")
	}
}

func TestCSVQuoting(t *testing.T) {
	var b strings.Builder
	err := CSV(&b, []string{"a", "b"}, [][]string{{`with,comma`, `with"quote`}})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `"with,comma"`) || !strings.Contains(out, `"with""quote"`) {
		t.Errorf("quoting wrong: %q", out)
	}
}

func TestFormatters(t *testing.T) {
	if Pct(0.123) != "12.3%" {
		t.Errorf("Pct = %q", Pct(0.123))
	}
	if Ms(0.0015) != "1.50" {
		t.Errorf("Ms = %q", Ms(0.0015))
	}
	if TDP(1.234) != "1.23x" {
		t.Errorf("TDP = %q", TDP(1.234))
	}
	if F(3.14159, 2) != "3.14" {
		t.Errorf("F = %q", F(3.14159, 2))
	}
}

func TestTable1MatchesCatalog(t *testing.T) {
	var b strings.Builder
	if err := Table1(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, g := range hw.Catalog() {
		if !strings.Contains(out, g.Name) {
			t.Errorf("Table I missing %s", g.Name)
		}
	}
	if !strings.Contains(out, "1979.0") {
		t.Error("Table I missing the H100 FP16 headline")
	}
}

func TestTable2MatchesZoo(t *testing.T) {
	var b strings.Builder
	if err := Table2(&b); err != nil {
		t.Fatal(err)
	}
	for _, m := range model.Zoo() {
		if !strings.Contains(b.String(), m.Name) {
			t.Errorf("Table II missing %s", m.Name)
		}
	}
}

func samplePoints(t *testing.T) []workload.Point {
	t.Helper()
	tiny := model.Config{Name: "tiny", Arch: model.GPT3, NominalParams: 1e8,
		Layers: 4, Heads: 4, Hidden: 256, FFN: 1024, Vocab: 2048, SeqLen: 128}
	ok := workload.RunPoint(context.Background(), core.Config{
		System: hw.SystemH100x4(), Model: tiny, Parallelism: "fsdp",
		Batch: 8, Format: precision.FP16, MatrixUnits: true,
	})
	if ok.Err != nil {
		t.Fatal(ok.Err)
	}
	oom := workload.RunPoint(context.Background(), core.Config{
		System: hw.SystemA100x4(), Model: model.GPT3_13B(), Parallelism: "fsdp",
		Batch: 8, Format: precision.FP16, MatrixUnits: true,
	})
	return []workload.Point{ok, oom}
}

func TestFigureRenderersHandleOOM(t *testing.T) {
	pts := samplePoints(t)
	renderers := map[string]func(w *strings.Builder) error{
		"overlap": func(w *strings.Builder) error { return OverlapFigure(w, pts) },
		"slow":    func(w *strings.Builder) error { return SlowdownFigure(w, pts) },
		"e2e":     func(w *strings.Builder) error { return E2EFigure(w, pts) },
		"power":   func(w *strings.Builder) error { return PowerFigure(w, pts) },
	}
	for name, r := range renderers {
		var b strings.Builder
		if err := r(&b); err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if !strings.Contains(b.String(), "OOM") {
			t.Errorf("%s: OOM row not rendered", name)
		}
		if !strings.Contains(b.String(), "tiny") {
			t.Errorf("%s: result row not rendered", name)
		}
	}
}

func TestHeadline(t *testing.T) {
	pts := samplePoints(t)
	var b strings.Builder
	if err := Headline(&b, pts); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "paper") {
		t.Error("headline should cite the paper targets")
	}
}

func TestAblationFigure(t *testing.T) {
	pts := samplePoints(t)
	var b strings.Builder
	err := AblationFigure(&b, pts, func(p workload.Point) string { return p.Cfg.Format.String() })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "FP16") {
		t.Error("variant column missing")
	}
}
