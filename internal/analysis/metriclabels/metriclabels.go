// Package metriclabels guards the telemetry exposition path against
// cardinality blowups: every Prometheus series a process can emit must
// be enumerable at compile time. Metric names and label keys passed to
// the telemetry registry must be compile-time constants, and label
// values handed to With(...) must come from bounded sets — constants,
// locals only ever assigned constants, or values of a named string type
// that declares its vocabulary as package-level constants (the jobKind
// idiom). An interpolated request path or error string used as a label
// value would mint an unbounded series per distinct input; this
// analyzer makes that a compile failure instead of an ops incident.
package metriclabels

import (
	"go/ast"
	"go/types"

	"overlapsim/internal/analysis/driver"
)

// registerMethods are the registry constructors: argument 0 is the
// metric name, and for the *Vec variants every trailing variadic string
// is a label key. All must be compile-time constants.
var registerMethods = map[string]bool{
	"Counter": true, "CounterVec": true,
	"Gauge": true, "GaugeVec": true,
	"Histogram": true, "HistogramVec": true,
}

// Analyzer checks calls into overlapsim's telemetry package.
var Analyzer = New([]string{"overlapsim/internal/telemetry"})

// New returns the analyzer scoped to the given telemetry package import
// paths (the packages whose registry constructors and With methods are
// checked).
func New(telemetryPkgs []string) *driver.Analyzer {
	pkgs := make(map[string]bool, len(telemetryPkgs))
	for _, p := range telemetryPkgs {
		pkgs[p] = true
	}
	return &driver.Analyzer{
		Name: "metriclabels",
		Doc: "require telemetry metric names and label keys to be compile-time " +
			"constants and With(...) label values to come from bounded sets " +
			"(constants, const-only locals, or named string types with a " +
			"declared constant vocabulary), preventing exposition cardinality " +
			"blowups",
		Run: func(pass *driver.Pass) error {
			run(pass, pkgs)
			return nil
		},
	}
}

func run(pass *driver.Pass, pkgs map[string]bool) {
	for _, file := range pass.Files {
		var stack []ast.Node // enclosing nodes, for finding the current function body
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || !pkgs[fn.Pkg().Path()] {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil {
				return true
			}
			switch {
			case registerMethods[fn.Name()]:
				checkRegistration(pass, call, fn.Name(), sig)
			case fn.Name() == "With":
				checkWith(pass, call, enclosingBody(stack))
			}
			return true
		})
	}
}

// enclosingBody returns the body of the innermost function declaration
// or literal on the node stack.
func enclosingBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.FuncDecl:
			return n.Body
		case *ast.FuncLit:
			return n.Body
		}
	}
	return nil
}

func isConst(pass *driver.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

// checkRegistration requires the metric name (arg 0) and, past the
// signature's fixed parameters, every variadic label key to be
// constant.
func checkRegistration(pass *driver.Pass, call *ast.CallExpr, method string, sig *types.Signature) {
	if len(call.Args) > 0 && !isConst(pass, call.Args[0]) {
		pass.Reportf(call.Args[0].Pos(), "metric name passed to %s must be a compile-time constant", method)
	}
	if !sig.Variadic() || call.Ellipsis.IsValid() {
		if call.Ellipsis.IsValid() {
			pass.Reportf(call.Ellipsis, "label keys passed to %s must be listed as compile-time constants, not spread from a slice", method)
		}
		return
	}
	for _, arg := range call.Args[sig.Params().Len()-1:] {
		if !isConst(pass, arg) {
			pass.Reportf(arg.Pos(), "label key passed to %s must be a compile-time constant", method)
		}
	}
}

// checkWith requires every label value to be bounded.
func checkWith(pass *driver.Pass, call *ast.CallExpr, body *ast.BlockStmt) {
	if call.Ellipsis.IsValid() {
		pass.Reportf(call.Ellipsis, "label values passed to With must be listed individually, not spread from a slice")
		return
	}
	for _, arg := range call.Args {
		if !bounded(pass, arg, body) {
			pass.Reportf(arg.Pos(), "label value is not from a bounded set: use a constant, a local assigned only constants, or a named string type with a declared constant vocabulary")
		}
	}
}

// bounded reports whether the expression's values are enumerable at
// compile time.
func bounded(pass *driver.Pass, e ast.Expr, body *ast.BlockStmt) bool {
	e = ast.Unparen(e)
	if isConst(pass, e) {
		return true
	}
	// A conversion — string(kind) or labelType(x) — is bounded when its
	// operand is, or when either side's named type declares a constant
	// vocabulary.
	if call, ok := e.(*ast.CallExpr); ok && len(call.Args) == 1 {
		if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
			if boundedType(tv.Type) {
				return true
			}
			return bounded(pass, call.Args[0], body)
		}
	}
	if tv, ok := pass.TypesInfo.Types[e]; ok && boundedType(tv.Type) {
		return true
	}
	if id, ok := e.(*ast.Ident); ok {
		if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
			return constOnlyLocal(pass, v, body)
		}
	}
	return false
}

// boundedType reports whether t is a named string type whose defining
// package declares at least one constant of it — evidence the type is a
// closed vocabulary rather than an open string.
func boundedType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	b, ok := named.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsString == 0 {
		return false
	}
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return false
	}
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		if c, ok := scope.Lookup(name).(*types.Const); ok && types.Identical(c.Type(), t) {
			return true
		}
	}
	return false
}

// constOnlyLocal reports whether v is a non-parameter local variable
// whose every assignment inside body is a constant expression (the
// `outcome := "miss"; if hit { outcome = "hit" }` idiom).
func constOnlyLocal(pass *driver.Pass, v *types.Var, body *ast.BlockStmt) bool {
	if body == nil || v.Pos() < body.Pos() || v.Pos() > body.End() {
		return false // parameters and outer-scope variables: assigned elsewhere
	}
	allConst := true
	assigned := false
	ast.Inspect(body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || !allConst {
			return allConst
		}
		for i, lhs := range asg.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj != v {
				continue
			}
			assigned = true
			if len(asg.Rhs) == len(asg.Lhs) {
				if !isConst(pass, asg.Rhs[i]) {
					allConst = false
				}
			} else {
				allConst = false // multi-value assignment: not a constant source
			}
		}
		return allConst
	})
	return assigned && allConst
}
