package power

import (
	"math"
	"testing"
	"testing/quick"

	"overlapsim/internal/hw"
)

func TestInstantComponents(t *testing.T) {
	g := hw.H100()
	idle := Instant(g, Activity{}, 1)
	if idle != g.Power.IdleW {
		t.Errorf("idle power = %g, want %g", idle, g.Power.IdleW)
	}
	full := Instant(g, Activity{Vec: 1, Mat: 1, Mem: 1, Comm: 1, Surge: 1}, 1)
	want := g.Power.IdleW + g.Power.VectorW + g.Power.MatrixW + g.Power.MemW + g.Power.CommW + g.Power.SurgeW
	if math.Abs(full-want) > 1e-9 {
		t.Errorf("full power = %g, want %g", full, want)
	}
}

func TestInstantFrequencyScaling(t *testing.T) {
	g := hw.A100()
	a := Activity{Vec: 0.5}
	p1 := Instant(g, a, 1)
	pHalf := Instant(g, a, 0.5)
	wantDyn := g.Power.VectorW * 0.5 * math.Pow(0.5, g.Power.FreqExp)
	if math.Abs(pHalf-(g.Power.IdleW+wantDyn)) > 1e-9 {
		t.Errorf("half-frequency power = %g, want %g", pHalf, g.Power.IdleW+wantDyn)
	}
	if pHalf >= p1 {
		t.Error("lower frequency must lower dynamic power")
	}
}

func TestInstantClampsActivity(t *testing.T) {
	g := hw.H100()
	over := Instant(g, Activity{Vec: 5, Mem: -3}, 1)
	want := Instant(g, Activity{Vec: 1, Mem: 0}, 1)
	if over != want {
		t.Errorf("clamped power = %g, want %g", over, want)
	}
}

func TestSolveFreqUncappedHitsTDPCeiling(t *testing.T) {
	g := hw.H100()
	// Mild activity: no throttle even against the TDP ceiling.
	if f := SolveFreq(g, Activity{Mat: 0.3}, Caps{}); f != 1 {
		t.Errorf("mild activity throttled to %g", f)
	}
	// Power-virus activity: the firmware ceiling engages with no operator
	// cap set.
	f := SolveFreq(g, Activity{Vec: 1, Mat: 1, Mem: 1, Comm: 1, Surge: 1}, Caps{})
	if f >= 1 {
		t.Error("power-virus activity must throttle at the TDP ceiling")
	}
	p := Instant(g, Activity{Vec: 1, Mat: 1, Mem: 1, Comm: 1, Surge: 1}, f)
	if p > g.TDPW*TDPCeilingFactor*1.001 && f > g.Power.FMin {
		t.Errorf("throttled power %g exceeds ceiling %g", p, g.TDPW*TDPCeilingFactor)
	}
}

func TestSolveFreqStrictCapFloorsAtFMin(t *testing.T) {
	g := hw.A100()
	f := SolveFreq(g, Activity{Vec: 1, Mem: 1, Comm: 1}, Caps{PowerW: g.Power.IdleW + 1})
	if f != g.Power.FMin {
		t.Errorf("strict cap should floor at FMin %g, got %g", g.Power.FMin, f)
	}
}

func TestSolveFreqFrequencyCap(t *testing.T) {
	g := hw.A100()
	if f := SolveFreq(g, Activity{Vec: 0.1}, Caps{FreqFactor: 0.6}); f != 0.6 {
		t.Errorf("frequency cap not applied: %g", f)
	}
}

func TestSolveFreqMonotoneInCap(t *testing.T) {
	g := hw.A100()
	a := Activity{Vec: 0.9, Mem: 0.5, Comm: 0.5}
	f := func(c1, c2 uint16) bool {
		lo := float64(c1%350) + float64(g.Power.IdleW) + 1
		hi := float64(c2%350) + float64(g.Power.IdleW) + 1
		if lo > hi {
			lo, hi = hi, lo
		}
		return SolveFreq(g, a, Caps{PowerW: lo}) <= SolveFreq(g, a, Caps{PowerW: hi})+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCapsValidate(t *testing.T) {
	g := hw.A100()
	if (Caps{PowerW: -5}).Validate(g) == nil {
		t.Error("negative cap must fail")
	}
	if (Caps{PowerW: 10}).Validate(g) == nil {
		t.Error("cap below idle must fail")
	}
	if (Caps{FreqFactor: 1.5}).Validate(g) == nil {
		t.Error("frequency cap above 1 must fail")
	}
	if (Caps{PowerW: 250, FreqFactor: 0.8}).Validate(g) != nil {
		t.Error("valid caps rejected")
	}
}

func mustSampler(t *testing.T, interval float64) *Sampler {
	t.Helper()
	s, err := NewSampler(interval)
	if err != nil {
		t.Fatalf("NewSampler(%g): %v", interval, err)
	}
	return s
}

func TestNewSamplerRejectsBadInterval(t *testing.T) {
	for _, interval := range []float64{0, -0.1} {
		if _, err := NewSampler(interval); err == nil {
			t.Errorf("NewSampler(%g): expected error", interval)
		}
	}
}

func TestSamplerEnergyExact(t *testing.T) {
	s := mustSampler(t, 0.1)
	s.Add(0, 1, 100)
	s.Add(1, 3, 50)
	if got, want := s.Energy(), 100.0+100.0; got != want {
		t.Errorf("energy = %g, want %g", got, want)
	}
	if got, want := s.Avg(), 200.0/3.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("avg = %g, want %g", got, want)
	}
}

func TestSamplerPointSamples(t *testing.T) {
	s := mustSampler(t, 0.1)
	s.Add(0, 0.25, 100) // ticks 0.0, 0.1, 0.2
	s.Add(0.25, 0.5, 300)
	samples := s.Samples()
	if len(samples) != 5 {
		t.Fatalf("got %d samples, want 5 (ticks 0..0.4)", len(samples))
	}
	if samples[2].Watts != 100 || samples[3].Watts != 300 {
		t.Errorf("samples = %+v", samples)
	}
}

func TestSamplerPeakCatchesWideExcursion(t *testing.T) {
	s := mustSampler(t, 0.1)
	s.Add(0, 0.5, 100)
	s.Add(0.5, 0.65, 500) // 150ms spike: wider than the interval
	s.Add(0.65, 1, 100)
	if p := s.Peak(); p != 500 {
		t.Errorf("peak = %g, want 500", p)
	}
}

func TestSamplerPeakMayMissNarrowSpike(t *testing.T) {
	// A spike much narrower than interval/phases can escape every grid;
	// PeakInstant still records it.
	s := mustSampler(t, 0.1)
	s.Add(0, 0.0501, 100)
	s.Add(0.0501, 0.0502, 900) // 0.1ms spike
	s.Add(0.0502, 1, 100)
	if s.PeakInstant() != 900 {
		t.Errorf("instantaneous peak = %g, want 900", s.PeakInstant())
	}
	if p := s.Peak(); p > s.PeakInstant() {
		t.Errorf("sampled peak %g above instantaneous %g", p, s.PeakInstant())
	}
}

func TestSamplerMergesEqualSegments(t *testing.T) {
	s := mustSampler(t, 0.1)
	for i := 0; i < 1000; i++ {
		s.Add(float64(i)*0.001, float64(i+1)*0.001, 42)
	}
	if len(s.segs) != 1 {
		t.Errorf("equal-power spans should merge: %d segments", len(s.segs))
	}
}

func TestSamplerIgnoresEmptySpans(t *testing.T) {
	s := mustSampler(t, 0.1)
	s.Add(1, 1, 100)
	s.Add(2, 1, 100)
	if s.Energy() != 0 || len(s.Samples()) != 0 {
		t.Error("empty or inverted spans must be ignored")
	}
}

func TestStatsFor(t *testing.T) {
	g := hw.A100()
	s := mustSampler(t, 0.02)
	s.Add(0, 1, 200)
	st := StatsFor(s, g)
	if st.AvgTDP != 200/g.TDPW || st.AvgW != 200 {
		t.Errorf("stats = %+v", st)
	}
	if st.EnergyJ != 200 {
		t.Errorf("energy = %g", st.EnergyJ)
	}
}

func TestSamplerIntervalFor(t *testing.T) {
	if SamplerIntervalFor(hw.NVIDIA) != NVMLInterval {
		t.Error("NVIDIA should sample at the NVML interval")
	}
	if SamplerIntervalFor(hw.AMD) != AMDSMIInterval {
		t.Error("AMD should sample at the AMD-SMI interval")
	}
}

// Property: energy equals the integral of the piecewise-constant power.
func TestQuickEnergyIntegral(t *testing.T) {
	f := func(spans []uint16) bool {
		if len(spans) == 0 || len(spans) > 64 {
			return true
		}
		s := mustSampler(t, 0.05)
		tme, want := 0.0, 0.0
		for _, sp := range spans {
			dt := float64(sp%100)/1000 + 0.001
			w := float64(sp % 700)
			s.Add(tme, tme+dt, w)
			want += w * dt
			tme += dt
		}
		return math.Abs(s.Energy()-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: instantaneous power is never below idle and is monotone in
// each activity component.
func TestQuickInstantBounds(t *testing.T) {
	g := hw.MI250()
	f := func(v, m, mem, comm, surge uint8) bool {
		a := Activity{
			Vec:   float64(v) / 255,
			Mat:   float64(m) / 255,
			Mem:   float64(mem) / 255,
			Comm:  float64(comm) / 255,
			Surge: float64(surge) / 255,
		}
		p := Instant(g, a, 1)
		if p < g.Power.IdleW {
			return false
		}
		bumped := a
		bumped.Mat = math.Min(1, a.Mat+0.1)
		return Instant(g, bumped, 1) >= p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
