package sim

import (
	"errors"
	"math"
	"testing"
)

// fuzzDAG builds a randomized multi-stream DAG from the fuzz input and
// returns the engine plus the total work created. The same bytes always
// build the same graph, which is what lets the harness demand identical
// results across two runs.
//
// Layout: byte 0 → stream count (1..8), byte 1 → task count (1..48),
// then per task three bytes: work selector, stream selector(s), and a
// dependency selector. Rendezvous tasks (two streams) and cross-stream
// dependencies — including ones that can deadlock — arise naturally from
// the byte soup; the harness only demands the engine never hangs or
// panics and that every terminating run conserves work.
type fuzzDAG struct {
	eng     *Engine
	tasks   []*Task
	total   float64
	stalled []bool // per-task: platform pins rate to zero while peers run
}

func buildFuzzDAG(data []byte) *fuzzDAG {
	if len(data) < 2 {
		return nil
	}
	nStreams := int(data[0])%8 + 1
	nTasks := int(data[1])%48 + 1
	d := &fuzzDAG{}
	var plat PlatformFunc = func(now float64, running []*Task) {
		// Rate pattern derived from the task's seq so the two differential
		// runs see identical rates: stalled tasks run at zero while any
		// non-stalled peer runs (possible deadlock, must be detected).
		anyLive := false
		for _, t := range running {
			if !d.stalled[t.Payload().(int)] {
				anyLive = true
			}
		}
		for _, t := range running {
			id := t.Payload().(int)
			switch {
			case d.stalled[id] && anyLive:
				t.SetRate(0)
			default:
				t.SetRate(float64(id%3) + 0.5)
			}
		}
	}
	d.eng = NewEngine(plat)
	streams := make([]*Stream, nStreams)
	for i := range streams {
		streams[i] = d.eng.NewStream(name(i), i)
	}
	at := func(i int) byte {
		if 2+i < len(data) {
			return data[2+i]
		}
		return byte(i * 37)
	}
	for i := 0; i < nTasks; i++ {
		wb, sb, db := at(3*i), at(3*i+1), at(3*i+2)
		work := float64(wb%32) / 4 // 0..7.75, zero-work included
		ss := []*Stream{streams[int(sb)%nStreams]}
		if sb >= 128 && nStreams > 1 {
			// Rendezvous on a second stream (may repeat the first: the
			// engine must dedup).
			ss = append(ss, streams[int(sb/2)%nStreams])
		}
		t := d.eng.NewTask(name(i), Kind(int(wb)%3), work, i, ss...)
		d.total += work
		d.stalled = append(d.stalled, db >= 240)
		if db < 200 && i > 0 {
			// Dependency on an earlier task (forward edges only would
			// always be acyclic, so sometimes depend on a LATER index via
			// OnDone-free After below, creating potential deadlock with
			// stream FIFO order).
			t.After(d.tasks[int(db)%i])
		}
		if db >= 200 && db < 220 && len(d.tasks) > 1 {
			// Backward edge from an earlier task to this one: cycles with
			// stream order become possible.
			d.tasks[int(db)%len(d.tasks)].After(t)
		}
		d.tasks = append(d.tasks, t)
	}
	return d
}

// runFuzzDAG executes the DAG and returns the terminal (err, end-times)
// observation. Invariants that must hold on every input are asserted via
// t.Fatalf by the caller.
func runFuzzDAG(d *fuzzDAG) (error, []float64) {
	err := d.eng.Run()
	ends := make([]float64, len(d.tasks))
	for i, t := range d.tasks {
		ends[i] = t.End()
	}
	return err, ends
}

// FuzzEngine feeds random multi-stream DAGs to the engine and asserts
// the scheduler's safety net: Run always terminates — returning nil or
// ErrDeadlock, never hanging or panicking — completed tasks satisfy
// end ≥ start, total retired work equals total created work on clean
// runs, and two runs of the same input are bit-identical.
func FuzzEngine(f *testing.F) {
	f.Add([]byte{3, 12, 0x10, 0x81, 0x05, 0x1f, 0x40, 0xd0})
	f.Add([]byte{1, 4, 0, 0, 0, 0xff, 0xff, 0xff})
	f.Add([]byte{8, 48})
	f.Add([]byte{2, 6, 9, 200, 210, 31, 129, 245})
	f.Fuzz(func(t *testing.T, data []byte) {
		d1 := buildFuzzDAG(data)
		if d1 == nil {
			return
		}
		err1, ends1 := runFuzzDAG(d1)
		if err1 != nil && !errors.Is(err1, ErrDeadlock) {
			t.Fatalf("engine returned unexpected error class: %v", err1)
		}

		var retired float64
		for i, task := range d1.tasks {
			if task.Done() {
				if task.End() < task.Start() {
					t.Fatalf("task %d: end %g < start %g", i, task.End(), task.Start())
				}
				retired += task.Work()
			} else if err1 == nil {
				t.Fatalf("run returned nil but task %d unfinished", i)
			}
		}
		if err1 == nil {
			if math.Abs(retired-d1.total) > 1e-9*(1+d1.total) {
				t.Fatalf("work not conserved: retired %g, created %g", retired, d1.total)
			}
			if now := d1.eng.Now(); now < 0 || math.IsNaN(now) || math.IsInf(now, 0) {
				t.Fatalf("terminal time %g invalid", now)
			}
		}

		// Determinism: the identical input must reproduce the identical
		// outcome, bit for bit.
		d2 := buildFuzzDAG(data)
		err2, ends2 := runFuzzDAG(d2)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("two runs disagree on success: %v vs %v", err1, err2)
		}
		for i := range ends1 {
			if ends1[i] != ends2[i] {
				t.Fatalf("task %d end diverged across identical runs: %g vs %g", i, ends1[i], ends2[i])
			}
		}
	})
}

// symFuzzDAG builds a rank-replicated DAG from fuzz bytes: byte 0 →
// rank count (2..9), byte 1 → per-rank slot count (1..12), then per
// slot two bytes (work selector, dependency selector). Every rank gets
// the identical schedule hanging off one shared source, converging on
// one shared sink — the strategy-builder shape — except that a high
// dependency byte perturbs the work of one rank's slot, breaking that
// rank out of the class. Payloads are template slot indices, so the
// exported PayloadEq stand-in (plain int equality) pairs counterparts.
func symFuzzDAG(data []byte) (*Engine, [][]*Task) {
	if len(data) < 2 {
		return nil, nil
	}
	ranks := int(data[0])%8 + 2
	slots := int(data[1])%12 + 1
	at := func(i int) byte {
		if 2+i < len(data) {
			return data[2+i]
		}
		return byte(i * 53)
	}
	e := NewEngine(PlatformFunc(func(now float64, running []*Task) {
		for _, t := range running {
			t.SetRate(float64(t.Payload().(int)%4) + 0.25)
		}
	}))
	shared := e.NewStream("shared", ranks)
	src := e.NewTask("src", KindCompute, 1, 1000, shared)
	tasks := make([][]*Task, ranks)
	for r := 0; r < ranks; r++ {
		s := e.NewStream(name(r), r)
		tasks[r] = make([]*Task, slots)
		for i := 0; i < slots; i++ {
			wb, db := at(2*i), at(2*i+1)
			work := float64(wb%40)/8 + 0.25
			if db >= 250 && r == ranks-1 {
				work *= 2 // perturb the last rank out of the class
			}
			t := e.NewTask(name(i), Kind(int(wb)%3), work, i, s)
			if i == 0 {
				t.After(src)
			} else {
				t.After(tasks[r][int(db)%i])
				t.After(tasks[r][i-1])
			}
			tasks[r][i] = t
		}
	}
	sink := e.NewTask("sink", KindCompute, 1, 1001, shared)
	for r := 0; r < ranks; r++ {
		sink.After(tasks[r][slots-1])
	}
	return e, tasks
}

// FuzzEngineSymmetry is the collapse differential: whatever classes the
// detector proves on a fuzzed rank-replicated DAG, the collapsed run
// must reproduce the full run bit for bit — every task end, the ghosts'
// reconstructed times included, and the terminal clock.
func FuzzEngineSymmetry(f *testing.F) {
	f.Add([]byte{4, 6, 0x10, 0x81, 0x05, 0x1f, 0x40, 0xd0})
	f.Add([]byte{2, 1})
	f.Add([]byte{7, 11, 9, 200, 210, 31, 129, 250, 17, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		ref, refTasks := symFuzzDAG(data)
		if ref == nil {
			return
		}
		errRef := ref.Run()

		e, tasks := symFuzzDAG(data)
		classes := e.DetectClasses(func(a, b any) bool { return a == b })
		ghosts := e.Collapse(classes)
		err := e.Run()

		if (errRef == nil) != (err == nil) {
			t.Fatalf("collapsed run disagrees on success: %v vs %v (ghosts=%d)", err, errRef, ghosts)
		}
		if errRef != nil {
			return // deadlocked inputs carry no timeline to compare
		}
		for r := range tasks {
			for i := range tasks[r] {
				g, fl := tasks[r][i], refTasks[r][i]
				if !g.Done() {
					t.Fatalf("rank %d slot %d unfinished after collapsed run", r, i)
				}
				if math.Float64bits(g.Start()) != math.Float64bits(fl.Start()) ||
					math.Float64bits(g.End()) != math.Float64bits(fl.End()) {
					t.Fatalf("rank %d slot %d diverged: [%g,%g] vs [%g,%g] (ghosts=%d)",
						r, i, g.Start(), g.End(), fl.Start(), fl.End(), ghosts)
				}
			}
		}
		if math.Float64bits(e.Now()) != math.Float64bits(ref.Now()) {
			t.Fatalf("terminal time diverged: %g vs %g", e.Now(), ref.Now())
		}
	})
}
