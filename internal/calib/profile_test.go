package calib

import (
	"encoding/json"
	"strings"
	"testing"
)

// validProfileJSON is a minimal profile exercising every section.
const validProfileJSON = `{
	"version": 1,
	"name": "unit",
	"gpu": "H100",
	"system": "H100x8",
	"power": {"idle_w": 85},
	"matmuls": [{"m": 4096, "n": 4096, "k": 4096, "dtype": "fp16", "matrix_units": true, "tflops": 650}],
	"collectives": [{"op": "all-reduce", "bytes": 1048576, "ranks": 8, "bus_bw_gbs": 200}],
	"steps": [{"model": "GPT-3 XL", "parallelism": "fsdp", "batch": 8, "format": "fp16",
		"matrix_units": true, "step_ms": 95.2, "avg_power_w": 520, "peak_power_w": 610}]
}`

func TestParseValidProfile(t *testing.T) {
	p, err := Parse(strings.NewReader(validProfileJSON))
	if err != nil {
		t.Fatal(err)
	}
	if p.GPU != "H100" || p.System != "H100x8" {
		t.Errorf("hardware names lost: %q / %q", p.GPU, p.System)
	}
	if len(p.Matmuls) != 1 || len(p.Collectives) != 1 || len(p.Steps) != 1 {
		t.Errorf("sections lost: %d/%d/%d", len(p.Matmuls), len(p.Collectives), len(p.Steps))
	}
}

func TestParseRejectsBadProfiles(t *testing.T) {
	mutate := func(from, to string) string {
		s := strings.Replace(validProfileJSON, from, to, 1)
		if s == validProfileJSON {
			t.Fatalf("mutation %q not applied", from)
		}
		return s
	}
	cases := []struct {
		name, in, want string
	}{
		{"unknown field", mutate(`"name": "unit"`, `"nam": "unit"`), "unknown field"},
		{"bad version", mutate(`"version": 1`, `"version": 2`), "version"},
		{"no gpu", mutate(`"gpu": "H100"`, `"gpu": ""`), "no GPU"},
		{"no system", mutate(`"system": "H100x8"`, `"system": ""`), "no system"},
		{"empty", `{"version": 1, "gpu": "H100", "system": "H100x8"}`, "no measurements"},
		{"bad dtype", mutate(`"dtype": "fp16"`, `"dtype": "fp12"`), "fp12"},
		{"bad shape", mutate(`"m": 4096`, `"m": 0`), "shape"},
		{"bad tflops", mutate(`"tflops": 650`, `"tflops": -1`), "positive"},
		{"bad op", mutate(`"op": "all-reduce"`, `"op": "send-recv"`), "unknown collective op"},
		{"one rank", mutate(`"ranks": 8`, `"ranks": 1`), "at least 2"},
		{"bad bus", mutate(`"bus_bw_gbs": 200`, `"bus_bw_gbs": 0`), "positive"},
		{"bad model", mutate(`"model": "GPT-3 XL"`, `"model": "GPT-9"`), "GPT-9"},
		{"bad parallelism", mutate(`"parallelism": "fsdp"`, `"parallelism": "magic"`), "magic"},
		{"bad batch", mutate(`"batch": 8`, `"batch": 0`), "batch"},
		{"bad step time", mutate(`"step_ms": 95.2`, `"step_ms": 0`), "positive"},
		{"bad idle", mutate(`"idle_w": 85`, `"idle_w": -3`), "idle"},
		{"peak below avg", mutate(`"peak_power_w": 610`, `"peak_power_w": 400`), "below average"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(strings.NewReader(tc.in))
			if err == nil {
				t.Fatal("want error, got nil")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// FuzzProfile enforces the ingestion contract: any byte input either
// fails Parse with an error or yields a profile that re-validates and
// round-trips through JSON to an equally valid profile — mirroring
// hw.FuzzLoad's error-or-valid contract for hardware files.
func FuzzProfile(f *testing.F) {
	f.Add([]byte(validProfileJSON))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version": 1, "gpu": "H100", "system": "H100x8", "power": {"idle_w": 80}}`))
	f.Add([]byte(`{"version": 1, "gpu": "H100", "system": "H100x8",
		"matmuls": [{"m": 1, "n": 1, "k": 1, "dtype": "fp32", "tflops": 1e308}]}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"version": 1e99}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Parse(strings.NewReader(string(data)))
		if err != nil {
			return // rejected cleanly: exactly the contract
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("parsed profile fails re-validation: %v", err)
		}
		out, err := json.Marshal(p)
		if err != nil {
			t.Fatalf("valid profile does not re-encode: %v", err)
		}
		if _, err := Parse(strings.NewReader(string(out))); err != nil {
			t.Fatalf("re-encoded profile does not re-parse: %v\n%s", err, out)
		}
	})
}
