package trace

import (
	"bytes"
	"testing"

	"overlapsim/internal/sim"
)

func TestWriteChromeRoundTrip(t *testing.T) {
	tl := timelineOf(
		iv(0, 1, sim.KindCompute, 0),
		iv(0.5, 2, sim.KindComm, 0),
		iv(1, 3, sim.KindCompute, 1),
	)
	var b bytes.Buffer
	if err := tl.WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	compute, comm, err := ReadChromeEventCount(&b)
	if err != nil {
		t.Fatal(err)
	}
	if compute != 2 || comm != 1 {
		t.Errorf("round trip: %d compute, %d comm", compute, comm)
	}
}

func TestWriteChromeEmpty(t *testing.T) {
	var b bytes.Buffer
	if err := New().WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadChromeEventCount(&b); err != nil {
		t.Fatal(err)
	}
}
